// relm-lint — plan-integrity linter for DML scripts.
//
// Compiles each script, runs the structural analysis passes, then
// compiles and audits the runtime plan at the three container-memory
// extremes (min, mid, max) of the cluster model; --grid additionally
// runs the full resource-optimizer grid sweep with strict analysis on,
// so every enumerated grid point is audited. Exits non-zero when any
// error-severity diagnostic (or a compile/optimize failure) surfaces.
//
// With --artifact it additionally audits persistent plan-artifact
// files (store/artifact_format.h): header dump, record counts, and the
// full integrity validation the store runs at load time. A corrupt,
// truncated, or version-skewed artifact is an error-severity finding.
//
// Usage:
//   relm-lint [options] SCRIPT.dml [SCRIPT.dml ...]
//     --input NAME=PATH:RxC[:SP]  input metadata (default: the canonical
//                                 X 1000000x1000 / Y 1000000x1 bindings)
//     --arg NAME=VALUE            extra script argument
//     --grid                      strict-mode optimizer grid sweep
//     --points N                  grid resolution for --grid (default 15)
//     --artifact PATH             audit a plan-artifact file (repeatable;
//                                 =PATH form also accepted)
//     --dataflow                  dump the dataflow summary: per-block
//                                 live ranges, static peak-memory bounds,
//                                 dead writes and undefined reads with
//                                 script line/column
//     --json                      machine-readable report
//
// Quick start:
//   relm-lint scripts/linreg_cg.dml
//   relm-lint --grid --json scripts/*.dml
//   relm-lint --dataflow scripts/linreg_ds.dml
//   relm-lint --artifact /var/cache/relm/plans.relmplan

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analysis.h"
#include "analysis/dataflow.h"
#include "api/session.h"
#include "common/string_util.h"
#include "lops/compiler_backend.h"
#include "obs/json_util.h"
#include "store/plan_artifact_store.h"

using namespace relm;  // NOLINT — tool brevity

namespace {

struct InputSpec {
  std::string arg_name;
  std::string path;
  int64_t rows = 0;
  int64_t cols = 0;
  double sparsity = 1.0;
};

void Usage() {
  std::fprintf(stderr,
               "usage: relm-lint [--input NAME=PATH:RxC[:SP] ...]\n"
               "                 [--arg NAME=VALUE ...] [--grid]\n"
               "                 [--points N] [--artifact PATH ...]\n"
               "                 [--dataflow] [--json] SCRIPT.dml ...\n");
  std::exit(2);
}

/// Audits one plan-artifact file. Returns true when the file is valid;
/// fills *json_entry when JSON reporting is on.
bool LintArtifact(const std::string& path, bool json,
                  std::string* json_entry) {
  auto info = store::InspectArtifact(path);
  if (!info.ok()) {
    if (json) {
      *json_entry = "{\"path\":" + obs::JsonQuote(path) +
                    ",\"ok\":false,\"error\":" +
                    obs::JsonQuote(info.status().ToString()) + "}";
    } else {
      std::printf("%s: unreadable: %s\n", path.c_str(),
                  info.status().ToString().c_str());
    }
    return false;
  }
  bool ok = info->integrity.ok();
  if (json) {
    char magic_hex[32];
    std::snprintf(magic_hex, sizeof(magic_hex), "0x%016llx",
                  static_cast<unsigned long long>(info->magic));
    *json_entry =
        "{\"path\":" + obs::JsonQuote(path) +
        ",\"ok\":" + std::string(ok ? "true" : "false") +
        ",\"file_bytes\":" + std::to_string(info->file_bytes) +
        ",\"magic\":" + obs::JsonQuote(magic_hex) +
        ",\"version\":" + std::to_string(info->version) +
        ",\"programs\":" + std::to_string(info->program_count) +
        ",\"inputs\":" + std::to_string(info->input_count) +
        ",\"whatif\":" + std::to_string(info->whatif_count) +
        ",\"block_heaps\":" + std::to_string(info->block_heap_count) +
        ",\"string_bytes\":" + std::to_string(info->string_bytes) +
        ",\"integrity\":" +
        obs::JsonQuote(ok ? "ok" : info->integrity.ToString()) + "}";
  } else {
    std::printf("%s: %s\n", path.c_str(), ok ? "valid" : "CORRUPT");
    std::printf("  size      %llu bytes\n",
                static_cast<unsigned long long>(info->file_bytes));
    std::printf("  magic     0x%016llx  version %u\n",
                static_cast<unsigned long long>(info->magic),
                info->version);
    std::printf("  checksum  stored 0x%016llx  computed 0x%016llx\n",
                static_cast<unsigned long long>(info->stored_checksum),
                static_cast<unsigned long long>(info->computed_checksum));
    std::printf("  records   %u programs, %u inputs, %u what-ifs, "
                "%u block heaps, %llu string bytes\n",
                info->program_count, info->input_count,
                info->whatif_count, info->block_heap_count,
                static_cast<unsigned long long>(info->string_bytes));
    if (!ok) {
      std::printf("  [artifact] error: %s\n",
                  info->integrity.ToString().c_str());
    }
  }
  return ok;
}

bool ParseInput(const std::string& spec, InputSpec* out) {
  auto eq = spec.find('=');
  if (eq == std::string::npos) return false;
  out->arg_name = spec.substr(0, eq);
  std::vector<std::string> parts = Split(spec.substr(eq + 1), ':');
  if (parts.size() < 2) return false;
  out->path = parts[0];
  std::vector<std::string> dims = Split(parts[1], 'x');
  if (dims.size() != 2) return false;
  out->rows = std::strtoll(dims[0].c_str(), nullptr, 10);
  out->cols = std::strtoll(dims[1].c_str(), nullptr, 10);
  if (parts.size() >= 3) {
    out->sparsity = std::strtod(parts[2].c_str(), nullptr);
  }
  return out->rows > 0 && out->cols > 0;
}

/// One analyzed stage of one script.
struct StageResult {
  std::string stage;  // "compile", "min", "mid", "max", "grid"
  analysis::AnalysisReport report;
};

std::string JoinSet(const std::set<std::string>& vars) {
  std::string out;
  for (const std::string& v : vars) {
    if (!out.empty()) out += ", ";
    out += v;
  }
  return out;
}

std::string JsonStringArray(const std::set<std::string>& vars) {
  std::string out = "[";
  bool first = true;
  for (const std::string& v : vars) {
    if (!first) out += ",";
    first = false;
    out += obs::JsonQuote(v);
  }
  return out + "]";
}

/// Human-readable dump of the dataflow summary: per-block live ranges,
/// the peak bounds, and every dead write / undefined read with script
/// provenance. Informational — the corresponding diagnostics already
/// surface through the dead-write / use-liveness / memory-bound passes
/// in the stage reports above.
void PrintDataflow(const analysis::DataflowSummary& df) {
  std::printf("  dataflow:\n");
  for (const auto& [id, bl] : df.liveness) {
    std::printf("    block %d [%s]  live-in {%s}  live-out {%s}\n", id,
                BlockKindName(bl.kind), JoinSet(bl.live_in).c_str(),
                JoinSet(bl.live_out).c_str());
  }
  const analysis::PeakMemory& pk = df.peak;
  if (pk.bounded) {
    std::printf("    peak: resident %lld bytes (block %d), live %lld "
                "bytes, max-op %lld bytes",
                static_cast<long long>(pk.resident_bytes),
                pk.peak_block_id, static_cast<long long>(pk.live_bytes),
                static_cast<long long>(pk.max_op_bytes));
    if (pk.max_op_hop_id >= 0) {
      std::printf(" (hop %lld, block %d",
                  static_cast<long long>(pk.max_op_hop_id),
                  pk.max_op_block_id);
      if (pk.max_op_line > 0) std::printf(", line %d", pk.max_op_line);
      std::printf(")");
    }
    std::printf("\n");
  } else {
    std::printf("    peak: unbounded (unknown dimensions or recursion "
                "forced the worst-case sentinel)\n");
  }
  for (const auto& dw : df.dead_writes) {
    std::printf("    dead write: '%s' in block %d", dw.var.c_str(),
                dw.block_id);
    if (dw.line > 0) std::printf(" at line %d:%d", dw.line, dw.column);
    std::printf("%s\n", dw.materialized ? " (materialized in the IR)" : "");
  }
  for (const auto& ur : df.undefined_reads) {
    std::printf("    %s read: '%s' in block %d",
                ur.definite ? "undefined" : "possibly-undefined",
                ur.var.c_str(), ur.block_id);
    if (ur.line > 0) std::printf(" at line %d:%d", ur.line, ur.column);
    std::printf("\n");
  }
}

/// JSON form of the same dump, embedded per script under "dataflow".
std::string DataflowToJson(const analysis::DataflowSummary& df) {
  const analysis::PeakMemory& pk = df.peak;
  std::string out = "{\"peak\":{";
  out += "\"bounded\":" + std::string(pk.bounded ? "true" : "false") +
         ",\"resident_bytes\":" + std::to_string(pk.resident_bytes) +
         ",\"live_bytes\":" + std::to_string(pk.live_bytes) +
         ",\"max_op_bytes\":" + std::to_string(pk.max_op_bytes) +
         ",\"max_op_hop\":" + std::to_string(pk.max_op_hop_id) +
         ",\"max_op_block\":" + std::to_string(pk.max_op_block_id) +
         ",\"max_op_line\":" + std::to_string(pk.max_op_line) +
         ",\"peak_block\":" + std::to_string(pk.peak_block_id) + "}";
  out += ",\"blocks\":[";
  bool first = true;
  for (const auto& [id, bl] : df.liveness) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":" + std::to_string(id) + ",\"kind\":" +
           obs::JsonQuote(BlockKindName(bl.kind)) +
           ",\"live_in\":" + JsonStringArray(bl.live_in) +
           ",\"live_out\":" + JsonStringArray(bl.live_out) + "}";
  }
  out += "],\"dead_writes\":[";
  first = true;
  for (const auto& dw : df.dead_writes) {
    if (!first) out += ",";
    first = false;
    out += "{\"var\":" + obs::JsonQuote(dw.var) +
           ",\"block\":" + std::to_string(dw.block_id) +
           ",\"line\":" + std::to_string(dw.line) +
           ",\"column\":" + std::to_string(dw.column) +
           ",\"materialized\":" +
           std::string(dw.materialized ? "true" : "false") + "}";
  }
  out += "],\"undefined_reads\":[";
  first = true;
  for (const auto& ur : df.undefined_reads) {
    if (!first) out += ",";
    first = false;
    out += "{\"var\":" + obs::JsonQuote(ur.var) +
           ",\"block\":" + std::to_string(ur.block_id) +
           ",\"line\":" + std::to_string(ur.line) +
           ",\"column\":" + std::to_string(ur.column) +
           ",\"definite\":" +
           std::string(ur.definite ? "true" : "false") + "}";
  }
  return out + "]}";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> scripts;
  std::vector<std::string> artifacts;
  std::vector<InputSpec> inputs;
  ScriptArgs args;
  bool grid = false;
  bool json = false;
  bool dataflow = false;
  int points = 15;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage();
      return argv[++i];
    };
    if (flag == "--input") {
      InputSpec spec;
      if (!ParseInput(next(), &spec)) Usage();
      inputs.push_back(spec);
    } else if (flag == "--arg") {
      std::string kv = next();
      auto eq = kv.find('=');
      if (eq == std::string::npos) Usage();
      args[kv.substr(0, eq)] = kv.substr(eq + 1);
    } else if (flag == "--grid") {
      grid = true;
    } else if (flag == "--points") {
      points = std::atoi(next().c_str());
    } else if (flag == "--artifact") {
      artifacts.push_back(next());
    } else if (flag.rfind("--artifact=", 0) == 0) {
      artifacts.push_back(flag.substr(std::string("--artifact=").size()));
    } else if (flag == "--dataflow") {
      dataflow = true;
    } else if (flag == "--json") {
      json = true;
    } else if (!flag.empty() && flag[0] == '-') {
      Usage();
    } else {
      scripts.push_back(flag);
    }
  }
  if (scripts.empty() && artifacts.empty()) Usage();
  if (inputs.empty()) {
    // Canonical bindings shared with the test suite: a 1M x 1k feature
    // matrix and its label vector, under the standard argument names.
    inputs.push_back({"X", "/data/X", 1000000, 1000, 1.0});
    inputs.push_back({"Y", "/data/y", 1000000, 1, 1.0});
  }
  if (args.find("B") == args.end()) args["B"] = "/out/B";
  if (args.find("model") == args.end()) args["model"] = "/out/w";

  bool any_errors = false;
  std::string json_out = "{\"scripts\":[";
  bool first_script = true;

  for (const std::string& script : scripts) {
    // Lint owns the reporting: no read-through cache, no double
    // analysis inside CompileSource.
    SessionOptions options;
    options.enable_plan_cache = false;
    options.analyze_compiles = false;
    Session session(ClusterConfig::PaperCluster(), options);
    for (const InputSpec& in : inputs) {
      Status st = session.RegisterMatrixMetadata(in.path, in.rows,
                                                 in.cols, in.sparsity);
      if (!st.ok()) {
        std::fprintf(stderr, "%s: bad input: %s\n", script.c_str(),
                     st.ToString().c_str());
        return 1;
      }
      args[in.arg_name] = in.path;
    }

    auto prog = session.CompileFile(script, args);
    if (!prog.ok()) {
      std::fprintf(stderr, "%s: compile error: %s\n", script.c_str(),
                   prog.status().ToString().c_str());
      any_errors = true;
      continue;
    }

    std::vector<StageResult> stages;
    stages.push_back(
        {"compile", analysis::AnalyzeProgram(prog->get())});

    const ClusterConfig& cc = session.cluster();
    int64_t min_heap = cc.MinHeapSize();
    int64_t max_heap = cc.MaxHeapSize();
    int64_t mid_heap = (min_heap + max_heap) / 2;
    const std::pair<const char*, int64_t> budgets[] = {
        {"min", min_heap}, {"mid", mid_heap}, {"max", max_heap}};
    for (const auto& [name, heap] : budgets) {
      ResourceConfig rc(heap, heap);
      CompileCounters counters;
      auto rp = GenerateRuntimeProgram(prog->get(), cc, rc, &counters);
      if (!rp.ok()) {
        std::fprintf(stderr, "%s: plan compile at %s budget failed: %s\n",
                     script.c_str(), name,
                     rp.status().ToString().c_str());
        any_errors = true;
        continue;
      }
      stages.push_back(
          {name, analysis::AnalyzeRuntimePlan(prog->get(), *rp, cc)});
    }

    if (grid) {
      OptimizerOptions opts;
      opts.grid_points = points;
      opts.strict_analysis = true;
      auto outcome = session.Optimize(prog->get(), opts);
      analysis::AnalysisReport grid_report;
      if (!outcome.ok()) {
        grid_report.Add(analysis::Severity::kError, "strict-grid-sweep",
                        script, outcome.status().ToString());
      }
      stages.push_back({"grid", std::move(grid_report)});
    }

    int errors = 0;
    int warnings = 0;
    for (const StageResult& s : stages) {
      errors += s.report.NumErrors();
      warnings += s.report.NumWarnings();
    }
    if (errors > 0) any_errors = true;

    // Program-only dataflow summary (no runtime plan): the peak is the
    // configuration-independent bound, the same one the plan cache
    // stores and JobService admission consults.
    analysis::DataflowSummary df;
    if (dataflow) df = analysis::AnalyzeDataflow(*prog->get());

    if (json) {
      if (!first_script) json_out += ",";
      first_script = false;
      json_out += "{\"script\":" + obs::JsonQuote(script) +
                  ",\"errors\":" + std::to_string(errors) +
                  ",\"warnings\":" + std::to_string(warnings) +
                  ",\"stages\":[";
      for (size_t i = 0; i < stages.size(); ++i) {
        if (i > 0) json_out += ",";
        json_out += "{\"stage\":" + obs::JsonQuote(stages[i].stage) +
                    ",\"report\":" + stages[i].report.ToJson() + "}";
      }
      json_out += "]";
      if (dataflow) json_out += ",\"dataflow\":" + DataflowToJson(df);
      json_out += "}";
    } else {
      std::printf("%s: %d error(s), %d warning(s)\n", script.c_str(),
                  errors, warnings);
      for (const StageResult& s : stages) {
        for (const auto& d : s.report.diagnostics()) {
          std::printf("  [%s] %s\n", s.stage.c_str(),
                      d.ToString().c_str());
        }
      }
      if (dataflow) PrintDataflow(df);
    }
  }

  std::string artifact_json = "";
  for (const std::string& artifact : artifacts) {
    std::string entry;
    if (!LintArtifact(artifact, json, &entry)) any_errors = true;
    if (json) {
      if (!artifact_json.empty()) artifact_json += ",";
      artifact_json += entry;
    }
  }

  if (json) {
    json_out += "],\"artifacts\":[" + artifact_json + "]}";
    std::printf("%s\n", json_out.c_str());
  }
  return any_errors ? 1 : 0;
}

// Multi-tenancy demo: the optimizer's secondary objective — avoiding
// unnecessary over-provisioning — directly buys cluster throughput.
// Reproduces the effect of Figure 12: a right-sized AM container admits
// many concurrent applications, while the large static baseline (B-LL)
// saturates at six.

#include <cstdio>
#include <string>

#include "api/session.h"
#include "mrsim/throughput.h"

using namespace relm;  // NOLINT — example brevity

int main() {
  Session sys;
  // Scenario S, dense1000: 800 MB input (the Figure 12(a) workload).
  sys.RegisterMatrixMetadata("/data/X", 100000, 1000);
  sys.RegisterMatrixMetadata("/data/y", 100000, 1);
  ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"}};

  auto prog = sys.CompileFile(
      std::string(RELM_SCRIPTS_DIR) + "/linreg_ds.dml", args);
  if (!prog.ok()) {
    std::printf("compile error: %s\n", prog.status().ToString().c_str());
    return 1;
  }
  auto outcome = sys.Optimize(prog->get());
  if (!outcome.ok()) return 1;
  const ResourceConfig& opt_config = outcome->config;
  ResourceConfig bll = sys.StaticBaselines().back().config;  // B-LL

  const ClusterConfig& cc = sys.cluster();
  auto run_opt = sys.Simulate((*prog)->Clone()->get(), opt_config);
  auto run_bll = sys.Simulate((*prog)->Clone()->get(), bll);
  double solo_opt = run_opt->elapsed_seconds;
  double solo_bll = run_bll->elapsed_seconds;

  int64_t c_opt = cc.ContainerRequestForHeap(opt_config.cp_heap);
  int64_t c_bll = cc.ContainerRequestForHeap(bll.cp_heap);
  std::printf("Opt  : %s -> AM container %s, solo %.1fs\n",
              opt_config.ToString().c_str(), FormatBytes(c_opt).c_str(),
              solo_opt);
  std::printf("B-LL : %s -> AM container %s, solo %.1fs\n\n",
              bll.ToString().c_str(), FormatBytes(c_bll).c_str(),
              solo_bll);

  std::printf("%8s %16s %16s %8s\n", "#users", "Opt [app/min]",
              "B-LL [app/min]", "speedup");
  for (int users : {1, 2, 4, 8, 16, 32, 64, 128}) {
    auto t_opt = SimulateThroughput(cc, c_opt, solo_opt, users);
    auto t_bll = SimulateThroughput(cc, c_bll, solo_bll, users);
    std::printf("%8d %16.1f %16.1f %7.1fx\n", users,
                t_opt.apps_per_minute, t_bll.apps_per_minute,
                t_opt.apps_per_minute / t_bll.apps_per_minute);
  }
  return 0;
}

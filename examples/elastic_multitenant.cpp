// Multi-tenancy demo: cost-aware SLO scheduling through the job
// service (DESIGN.md §16). Two tenants share one cluster: "batch"
// floods twelve no-deadline jobs under a one-byte memory quota, while
// "svc" submits four deadline jobs at priority. The cost-aware policy
// orders by least slack over cached what-if estimates and defers the
// over-quota flood, so the service tenant's deadlines hold no matter
// how deep the batch backlog is — run it and compare each tenant's
// queue-wait percentiles and the scheduler's per-job decision tags.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/session.h"
#include "serve/job_service.h"

using namespace relm;  // NOLINT — example brevity

namespace {

/// One linear-regression job over inputs under `base` (scenario S,
/// dense100). Distinct bases give distinct script signatures: each
/// batch job below pays a full compile, so the backlog is still alive
/// when the service tenant's submissions arrive.
serve::JobRequest LinregJob(const std::string& source,
                            const std::string& base) {
  serve::JobRequest request;
  request.source = source;
  request.args = ScriptArgs{{"X", base + "/X"}, {"Y", base + "/y"},
                            {"B", "/out/B"}};
  request.inputs = {{base + "/X", 1000000, 100, 1.0},
                    {base + "/y", 1000000, 1, 1.0}};
  return request;
}

}  // namespace

int main() {
  std::string script_path =
      std::string(RELM_SCRIPTS_DIR) + "/linreg_ds.dml";
  std::ifstream in(script_path);
  if (!in.good()) {
    std::printf("cannot read %s\n", script_path.c_str());
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string script = ss.str();

  // Cost-aware scheduling: "batch" gets a one-byte memory quota, so it
  // is over quota whenever it holds a container — its queued work
  // defers to "svc" and its containers stay preemptible.
  serve::JobService service(
      ClusterConfig::PaperCluster(),
      serve::ServeOptions()
          .WithWorkers(2)
          .WithScheduler(sched::SchedulerPolicy::kCostAware)
          .WithTenantQuota("batch", sched::TenantQuota{1, 0}));
  if (!service.startup_status().ok()) {
    std::printf("startup failed: %s\n",
                service.startup_status().ToString().c_str());
    return 1;
  }

  std::vector<serve::JobHandle> handles;
  for (int i = 0; i < 12; ++i) {
    auto handle = service.Submit(
        "batch", LinregJob(script, "/batch" + std::to_string(i)));
    if (handle.ok()) handles.push_back(std::move(*handle));
  }
  for (int i = 0; i < 4; ++i) {
    serve::JobRequest request = LinregJob(script, "/svc");
    request.deadline_seconds = 10.0;  // SLO: finish within 10s
    request.priority = 5;
    auto handle = service.Submit("svc", std::move(request));
    if (handle.ok()) handles.push_back(std::move(*handle));
  }
  service.Drain();

  std::printf("%-8s %-10s %s\n", "tenant", "job", "scheduler decision");
  for (serve::JobHandle& handle : handles) {
    auto outcome = handle.Await();
    if (!outcome.ok()) {
      std::printf("%-8s #%-9llu FAILED: %s\n", handle.tenant().c_str(),
                  static_cast<unsigned long long>(handle.id()),
                  outcome.status().ToString().c_str());
      continue;
    }
    std::printf("%-8s #%-9llu %s\n", handle.tenant().c_str(),
                static_cast<unsigned long long>(handle.id()),
                outcome->telemetry.trace.sched_decision.c_str());
  }

  serve::JobService::Stats stats = service.stats();
  std::printf("\npolicy=%s  dispatched=%lld  held_over_quota=%lld\n",
              stats.scheduler.c_str(),
              static_cast<long long>(stats.sched.dispatched),
              static_cast<long long>(stats.sched.held_over_quota));
  for (const auto& [tenant, t] : stats.per_tenant) {
    std::printf(
        "tenant %-6s completed=%lld deadline_misses=%lld "
        "wait p50=%.2fms p95=%.2fms\n",
        tenant.c_str(), static_cast<long long>(t.completed),
        static_cast<long long>(t.deadline_misses), t.wait_ms.p50,
        t.wait_ms.p95);
  }
  return stats.per_tenant["svc"].deadline_misses == 0 ? 0 : 1;
}

// Runtime resource adaptation demo (Section 4): multinomial logistic
// regression's table() expression defeats compile-time size inference,
// so the initial resource optimization under-provisions the control
// program. Once the indicator matrix's size becomes known at runtime,
// re-optimization migrates the AM to a larger container.

#include <cstdio>
#include <string>

#include "api/session.h"

using namespace relm;  // NOLINT — example brevity

int main() {
  Session sys;
  // 8 GB dense100 with k = 2 classes — the paper's Section 4.2 example.
  const int64_t rows = 10000000;
  sys.RegisterMatrixMetadata("/data/X", rows, 100);
  sys.RegisterMatrixMetadata("/data/y", rows, 1);
  ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"}};

  auto prog = sys.CompileFile(
      std::string(RELM_SCRIPTS_DIR) + "/mlogreg.dml", args);
  if (!prog.ok()) {
    std::printf("compile error: %s\n", prog.status().ToString().c_str());
    return 1;
  }
  std::printf("initial compilation has unknowns: %s\n",
              (*prog)->has_unknowns() ? "yes" : "no");

  auto initial = sys.Optimize(prog->get());
  if (!initial.ok()) return 1;
  std::printf("initial resource optimization: %s\n\n",
              initial->config.ToString().c_str());

  // The true size of the table() output (2 label classes).
  SymbolMap oracle;
  SymbolInfo y_info;
  y_info.dtype = DataType::kMatrix;
  y_info.mc = MatrixCharacteristics(rows, 2, rows);
  oracle["Y"] = y_info;

  for (bool adapt : {false, true}) {
    SimOptions opts;
    opts.WithAdaptation(adapt);
    auto clone = (*prog)->Clone();
    auto run = sys.Simulate(clone->get(), initial->config, opts, oracle);
    if (!run.ok()) {
      std::printf("simulation error: %s\n",
                  run.status().ToString().c_str());
      return 1;
    }
    std::printf("--- adaptation %s ---\n", adapt ? "ENABLED" : "disabled");
    std::printf("elapsed %.1fs, %d recompiles, %d re-optimizations, "
                "%d migrations, %d MR jobs\n",
                run->elapsed_seconds, run->dynamic_recompiles,
                run->reoptimizations, run->migrations,
                run->mr_jobs_executed);
    for (const auto& ev : run->events) {
      std::printf("  [%8.1fs] %s\n", ev.at_seconds, ev.what.c_str());
    }
    std::printf("final config: %s\n\n",
                run->final_config.ToString().c_str());
  }
  return 0;
}

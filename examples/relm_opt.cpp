// relm_opt — command-line resource optimizer.
//
// Compiles a DML script against described inputs, runs the resource
// optimizer, and reports the chosen memory configuration next to the
// static baselines; optionally dumps the compiled runtime plan.
//
// Usage:
//   relm_opt --script scripts/linreg_cg.dml \
//            --input X=/data/X:1000000x1000:1.0 \
//            --input Y=/data/y:1000000x1"    \
//            --arg B=/out/B [--explain] [--simulate] [--adapt]
//            [--grid equi|exp|mem|hybrid] [--points N] [--threads N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "api/session.h"
#include "common/string_util.h"
#include "lops/compiler_backend.h"

using namespace relm;  // NOLINT — tool brevity

namespace {

struct InputSpec {
  std::string arg_name;  // script parameter name ($X)
  std::string path;
  int64_t rows = 0;
  int64_t cols = 0;
  double sparsity = 1.0;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: relm_opt --script FILE --input NAME=PATH:RxC[:SP] ...\n"
      "                [--arg NAME=VALUE ...] [--explain] [--simulate]\n"
      "                [--adapt] [--grid equi|exp|mem|hybrid]\n"
      "                [--points N] [--threads N]\n");
  std::exit(2);
}

bool ParseInput(const std::string& spec, InputSpec* out) {
  // NAME=PATH:RxC[:SPARSITY]
  auto eq = spec.find('=');
  if (eq == std::string::npos) return false;
  out->arg_name = spec.substr(0, eq);
  std::vector<std::string> parts = Split(spec.substr(eq + 1), ':');
  if (parts.size() < 2) return false;
  out->path = parts[0];
  std::vector<std::string> dims = Split(parts[1], 'x');
  if (dims.size() != 2) return false;
  out->rows = std::strtoll(dims[0].c_str(), nullptr, 10);
  out->cols = std::strtoll(dims[1].c_str(), nullptr, 10);
  if (parts.size() >= 3) {
    out->sparsity = std::strtod(parts[2].c_str(), nullptr);
  }
  return out->rows > 0 && out->cols > 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string script;
  std::vector<InputSpec> inputs;
  ScriptArgs args;
  bool explain = false;
  bool simulate = false;
  bool adapt = false;
  OptimizerOptions opt_options;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage();
      return argv[++i];
    };
    if (flag == "--script") {
      script = next();
    } else if (flag == "--input") {
      InputSpec spec;
      if (!ParseInput(next(), &spec)) Usage();
      inputs.push_back(spec);
    } else if (flag == "--arg") {
      std::string kv = next();
      auto eq = kv.find('=');
      if (eq == std::string::npos) Usage();
      args[kv.substr(0, eq)] = kv.substr(eq + 1);
    } else if (flag == "--explain") {
      explain = true;
    } else if (flag == "--simulate") {
      simulate = true;
    } else if (flag == "--adapt") {
      adapt = true;
    } else if (flag == "--points") {
      opt_options.grid_points = std::atoi(next().c_str());
    } else if (flag == "--threads") {
      opt_options.num_threads = std::atoi(next().c_str());
    } else if (flag == "--grid") {
      std::string g = next();
      GridType type = g == "equi"  ? GridType::kEquiSpaced
                      : g == "exp" ? GridType::kExpSpaced
                      : g == "mem" ? GridType::kMemBased
                                   : GridType::kHybrid;
      opt_options.cp_grid = type;
      opt_options.mr_grid = type;
    } else {
      Usage();
    }
  }
  if (script.empty() || inputs.empty()) Usage();

  Session sys;
  for (const InputSpec& in : inputs) {
    sys.RegisterMatrixMetadata(in.path, in.rows, in.cols, in.sparsity);
    args[in.arg_name] = in.path;
  }

  auto prog = sys.CompileFile(script, args);
  if (!prog.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 prog.status().ToString().c_str());
    return 1;
  }
  std::printf("program: %d lines, %d blocks, unknown sizes: %s\n",
              (*prog)->source_lines(), (*prog)->total_blocks(),
              (*prog)->has_unknowns() ? "yes" : "no");

  auto outcome = sys.Optimize(prog->get(), opt_options);
  if (!outcome.ok()) {
    std::fprintf(stderr, "optimizer error: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  const ResourceConfig& config = outcome->config;
  const OptimizerStats& stats = outcome->stats;
  std::printf("optimized resources: %s\n", config.ToString().c_str());
  std::printf("container request: %s (AM)\n",
              FormatBytes(sys.cluster().ContainerRequestForHeap(
                              config.cp_heap))
                  .c_str());
  std::printf("optimizer: %s\n\n", stats.ToString().c_str());

  std::printf("%-6s %-26s %12s\n", "config", "resources", "est. [s]");
  for (const auto& baseline : sys.StaticBaselines()) {
    auto est = sys.EstimateCost(prog->get(), baseline.config);
    std::printf("%-6s %-26s %12.1f\n", baseline.name,
                baseline.config.ToString().c_str(), *est);
  }
  auto est = sys.EstimateCost(prog->get(), config);
  std::printf("%-6s %-26s %12.1f\n", "Opt", config.ToString().c_str(),
              *est);

  if (explain) {
    CompileCounters counters;
    auto rp = GenerateRuntimeProgram(prog->get(), sys.cluster(), config,
                                     &counters);
    if (rp.ok()) {
      std::printf("\n---- runtime plan under Opt ----\n%s",
                  rp->ToString().c_str());
    }
  }

  if (simulate) {
    SimOptions sim_options;
    sim_options.enable_adaptation = adapt;
    auto clone = (*prog)->Clone();
    auto run = sys.Simulate(clone->get(), config, sim_options);
    if (run.ok()) {
      std::printf("\nsimulated execution: %.1fs, %d MR jobs, "
                  "%d recompiles, %d migrations\n",
                  run->elapsed_seconds, run->mr_jobs_executed,
                  run->dynamic_recompiles, run->migrations);
      for (const auto& ev : run->events) {
        std::printf("  [%8.1fs] %s\n", ev.at_seconds, ev.what.c_str());
      }
    }
  }
  return 0;
}

// Quickstart: compile a declarative ML script, let the resource
// optimizer pick memory configurations, and compare the result against
// the static baseline configurations on the simulated cluster.
//
// This walks the full pipeline of the paper: DML script -> HOP DAGs ->
// memory-sensitive runtime plans -> cost-based resource optimization ->
// measured execution.

#include <cstdio>
#include <string>

#include "api/session.h"
#include "common/string_util.h"

using namespace relm;  // NOLINT — example brevity

int main() {
  Session sys;  // the paper's 1+6 node YARN cluster
  std::printf("cluster: %s\n\n", sys.cluster().ToString().c_str());

  // An 8 GB dense feature matrix and its label vector (Figure 1 setup).
  sys.RegisterMatrixMetadata("/data/X", 1000000, 1000);
  sys.RegisterMatrixMetadata("/data/y", 1000000, 1);

  ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"}};

  for (const char* script : {"linreg_ds.dml", "linreg_cg.dml"}) {
    std::printf("=== %s ===\n", script);
    auto prog = sys.CompileFile(
        std::string(RELM_SCRIPTS_DIR) + "/" + script, args);
    if (!prog.ok()) {
      std::printf("compile error: %s\n", prog.status().ToString().c_str());
      return 1;
    }
    std::printf("program: %d source lines, %d blocks, unknowns=%s\n",
                (*prog)->source_lines(), (*prog)->total_blocks(),
                (*prog)->has_unknowns() ? "yes" : "no");

    auto outcome = sys.Optimize(prog->get());
    if (!outcome.ok()) {
      std::printf("optimizer error: %s\n",
                  outcome.status().ToString().c_str());
      return 1;
    }
    const ResourceConfig& config = outcome->config;
    std::printf("optimized resources: %s\n", config.ToString().c_str());
    std::printf("optimization: %s\n\n", outcome->stats.ToString().c_str());

    std::printf("%-6s %-24s %12s %12s\n", "config", "resources",
                "est. [s]", "meas. [s]");
    for (const auto& baseline : sys.StaticBaselines()) {
      double est = *sys.EstimateCost(prog->get(), baseline.config);
      auto clone = (*prog)->Clone();
      auto run = sys.Simulate(clone->get(), baseline.config);
      std::printf("%-6s %-24s %12.1f %12.1f\n", baseline.name,
                  baseline.config.ToString().c_str(), est,
                  run->elapsed_seconds);
    }
    double est = *sys.EstimateCost(prog->get(), config);
    auto clone = (*prog)->Clone();
    auto run = sys.Simulate(clone->get(), config);
    std::printf("%-6s %-24s %12.1f %12.1f\n\n", "Opt",
                config.ToString().c_str(), est, run->elapsed_seconds);
  }
  return 0;
}

// Real end-to-end training: generates small synthetic data sets and
// executes the actual DML scripts in-process (real matrix kernels, real
// control flow, real UDFs) — the correctness path of the library.

#include <cmath>
#include <cstdio>
#include <string>

#include "api/session.h"
#include "common/random.h"
#include "matrix/kernels.h"

using namespace relm;  // NOLINT — example brevity

namespace {

Status RunScript(Session* sys, const std::string& script,
                 ScriptArgs args) {
  std::printf("=== %s ===\n", script.c_str());
  auto prog = sys->CompileFile(std::string(RELM_SCRIPTS_DIR) + "/" + script,
                               args);
  RELM_RETURN_IF_ERROR(prog.status());
  auto run = sys->ExecuteReal(prog->get());
  RELM_RETURN_IF_ERROR(run.status());
  for (const auto& line : run->printed) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("\n");
  return Status::OK();
}

}  // namespace

int main() {
  Session sys;
  Random rng(42);

  // ---- regression data: y = X beta + small noise ----
  const int n = 500;
  const int m = 12;
  MatrixBlock x = MatrixBlock::Rand(n, m, 1.0, -1, 1, &rng);
  MatrixBlock beta = MatrixBlock::Rand(m, 1, 1.0, -2, 2, &rng);
  MatrixBlock y = *MatMult(x, beta);
  for (int64_t i = 0; i < n; ++i) {
    y.Set(i, 0, y.Get(i, 0) + rng.Uniform(-0.01, 0.01));
  }
  sys.RegisterMatrix("/data/X", x);
  sys.RegisterMatrix("/data/y", y);

  ScriptArgs reg_args{{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"}};
  if (auto st = RunScript(&sys, "linreg_ds.dml", reg_args); !st.ok()) {
    std::printf("error: %s\n", st.ToString().c_str());
    return 1;
  }
  ScriptArgs cg_args = reg_args;
  cg_args["maxi"] = "25";
  if (auto st = RunScript(&sys, "linreg_cg.dml", cg_args); !st.ok()) {
    std::printf("error: %s\n", st.ToString().c_str());
    return 1;
  }

  // ---- binary classification: y = sign(x1 + x2) ----
  MatrixBlock ysvm(n, 1, false);
  for (int64_t i = 0; i < n; ++i) {
    ysvm.Set(i, 0, x.Get(i, 0) + x.Get(i, 1) > 0 ? 1.0 : -1.0);
  }
  sys.RegisterMatrix("/data/ysvm", ysvm);
  ScriptArgs svm_args{{"X", "/data/X"},
                      {"Y", "/data/ysvm"},
                      {"model", "/out/w"},
                      {"maxiter", "15"}};
  if (auto st = RunScript(&sys, "l2svm.dml", svm_args); !st.ok()) {
    std::printf("error: %s\n", st.ToString().c_str());
    return 1;
  }

  // ---- multinomial classification: three clusters ----
  MatrixBlock xc(n, 2, false);
  MatrixBlock yc(n, 1, false);
  double centers[3][2] = {{4, 0}, {-4, 4}, {0, -5}};
  for (int64_t i = 0; i < n; ++i) {
    int c = static_cast<int>(i % 3);
    xc.Set(i, 0, centers[c][0] + rng.Uniform(-1, 1));
    xc.Set(i, 1, centers[c][1] + rng.Uniform(-1, 1));
    yc.Set(i, 0, c + 1);
  }
  sys.RegisterMatrix("/data/Xc", xc);
  sys.RegisterMatrix("/data/yc", yc);
  ScriptArgs mlog_args{{"X", "/data/Xc"}, {"Y", "/data/yc"},
                       {"B", "/out/Bc"}, {"moi", "40"},
                       {"mii", "15"},    {"reg", "0.001"}};
  if (auto st = RunScript(&sys, "mlogreg.dml", mlog_args); !st.ok()) {
    std::printf("error: %s\n", st.ToString().c_str());
    return 1;
  }

  // ---- Poisson regression: log-linear counts ----
  MatrixBlock yp(n, 1, false);
  for (int64_t i = 0; i < n; ++i) {
    double mu = std::exp(0.5 * x.Get(i, 0) - 0.3 * x.Get(i, 1) + 1.0);
    yp.Set(i, 0, std::max(0.0, std::round(mu + rng.Uniform(-0.5, 0.5))));
  }
  sys.RegisterMatrix("/data/yp", yp);
  ScriptArgs glm_args{{"X", "/data/X"}, {"Y", "/data/yp"},
                      {"B", "/out/Bp"}, {"icpt", "1"},
                      {"moi", "20"},    {"mii", "10"},
                      {"reg", "0.0001"}};
  if (auto st = RunScript(&sys, "glm.dml", glm_args); !st.ok()) {
    std::printf("error: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("all five algorithms trained successfully\n");
  return 0;
}

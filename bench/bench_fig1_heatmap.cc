// Figure 1: estimated runtime [s] of the two linear-regression scripts
// under different control-program (CP) and MapReduce (MR) memory
// configurations, for X of 8 GB (1e6 x 1000 dense) and y of 8 MB.
// Expected shape: Linreg DS prefers a massively parallel plan with small
// CP memory; the iterative Linreg CG prefers a large CP memory that
// keeps X resident across iterations.

#include "bench_common.h"

using namespace relm;         // NOLINT
using namespace relm::bench;  // NOLINT

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  PrintHeader("Figure 1: estimated runtime heatmap, CP x MR memory");
  const std::vector<double> grid_gb = {1, 2,  4,  6,  8, 10,
                                       12, 14, 16, 18, 20};
  for (const char* script : {"linreg_ds.dml", "linreg_cg.dml"}) {
    Session sys = UncachedSession();
    RegisterData(&sys, 1000000000LL, 1000, 1.0);  // 8GB dense X
    auto prog = MustCompile(&sys, script);
    std::printf("\n%s, X(8GB)/y(8MB): estimated runtime [s]\n", script);
    std::printf("%8s", "CP\\MR");
    for (double mr : grid_gb) std::printf("%8.0fG", mr);
    std::printf("\n");
    for (double cp : grid_gb) {
      std::printf("%7.0fG", cp);
      for (double mr : grid_gb) {
        ResourceConfig rc(GigaBytes(cp), GigaBytes(mr));
        auto cost = sys.EstimateCost(prog.get(), rc);
        std::printf("%9.0f", *cost);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nExpected: DS cheapest at small CP (distributed plan); CG cheapest"
      "\nat CP >= ~12GB (X stays in memory across iterations).\n");
  return 0;
}

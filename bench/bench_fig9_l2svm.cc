// Figure 9: end-to-end baseline comparison for L2SVM on scenarios XS-L.
// Expected shape: like LinregCG, the nested-loop iterative script favors
// a CP memory large enough to keep X resident; Opt finds it without
// over-provisioning.

#include "baseline_comparison.h"

using namespace relm;         // NOLINT
using namespace relm::bench;  // NOLINT

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  PrintHeader("Figure 9: L2SVM vs static baselines, XS-L");
  ComparisonOptions options;
  options.label = [](int, double response) {
    return response > 0 ? 1.0 : -1.0;
  };
  RunBaselineComparison("l2svm.dml", options);
  return 0;
}

// Figure 18 (Appendix C): parallel resource optimization for GLM.
// (a) Equi grid m=45, dense1000 L: optimization time vs worker threads
//     (1 thread already beats serial thanks to pipelining).
// (b) Hybrid default grid: serial vs parallel across scenarios XS-L.
// Note: on a single-core host the wall-clock speedup is limited to the
// pipelining effect; the worker decomposition itself is still exercised.

#include "bench_common.h"
#include "core/plan_cache.h"
#include "core/resource_optimizer.h"

using namespace relm;         // NOLINT
using namespace relm::bench;  // NOLINT

namespace {

double OptimizeTime(Session* sys, MlProgram* prog,
                    const OptimizerOptions& options) {
  OptimizerStats stats;
  ResourceOptimizer opt(sys->cluster(), options);
  auto cfg = opt.Optimize(prog, &stats);
  if (!cfg.ok()) return -1;
  return stats.opt_time_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  PrintHeader("Figure 18: parallel resource optimizer (GLM)");

  // (a) Equi m=45, scenario L dense1000, thread sweep.
  {
    Session sys = UncachedSession();
    RegisterData(&sys, 10000000000LL, 1000, 1.0);
    auto prog = MustCompile(&sys, "glm.dml");
    OptimizerOptions serial;
    serial.WithGrids(GridType::kEquiSpaced).WithGridPoints(45);
    double t_serial = OptimizeTime(&sys, prog.get(), serial);
    std::printf("\n(a) Equi m=45, dense1000 L\n");
    std::printf("%10s %12s %10s\n", "threads", "time [s]", "speedup");
    std::printf("%10s %12.3f %10s\n", "serial", t_serial, "1.0x");
    for (int threads : {1, 2, 4, 8, 16}) {
      OptimizerOptions parallel = serial;
      parallel.WithThreads(threads);
      double t = OptimizeTime(&sys, prog.get(), parallel);
      std::printf("%10d %12.3f %9.1fx\n", threads, t, t_serial / t);
    }
  }

  // (b) Hybrid default, all scenarios, serial vs 4 workers.
  {
    std::printf("\n(b) Hybrid grid, serial vs parallel (4 workers)\n");
    std::printf("%-5s %12s %12s\n", "scen", "serial [s]", "parallel [s]");
    for (const Scenario& scenario : Scenarios()) {
      if (std::string(scenario.name) == "XL") continue;
      Session sys = UncachedSession();
      RegisterData(&sys, scenario.cells, 1000, 1.0);
      auto prog = MustCompile(&sys, "glm.dml");
      double t_serial = OptimizeTime(&sys, prog.get(), {});
      double t_parallel = OptimizeTime(&sys, prog.get(),
                                       OptimizerOptions().WithThreads(4));
      std::printf("%-5s %12.3f %12.3f\n", scenario.name, t_serial,
                  t_parallel);
    }
  }

  // (c) Shared what-if cache read-through: the parallel enumeration's
  // pre-planned grid points populate the cache; a second parallel run
  // and a serial run of the same program read it back (the context hash
  // excludes num_threads, so serial and parallel share entries).
  {
    std::printf("\n(c) Equi m=45, dense1000 L, shared what-if cache\n");
    Session sys = UncachedSession();
    RegisterData(&sys, 10000000000LL, 1000, 1.0);
    auto prog = MustCompile(&sys, "glm.dml");
    PlanCache cache;
    OptimizerOptions options;
    options.WithGrids(GridType::kEquiSpaced)
        .WithGridPoints(45)
        .WithThreads(4)
        .WithPlanCache(&cache);
    std::printf("%-28s %12s %16s\n", "run", "time [s]", "what-if hits");
    PlanCache::Stats before = cache.stats();
    const char* labels[] = {"parallel cold (4 workers)",
                            "parallel warm (4 workers)",
                            "serial warm (shared cache)"};
    double times[3] = {0, 0, 0};
    for (int run = 0; run < 3; ++run) {
      OptimizerOptions run_options = options;
      if (run == 2) run_options.WithThreads(1);
      times[run] = OptimizeTime(&sys, prog.get(), run_options);
      PlanCache::Stats now = cache.stats();
      std::printf("%-28s %12.3f %7lld/%-8lld\n", labels[run], times[run],
                  static_cast<long long>(now.whatif_hits - before.whatif_hits),
                  static_cast<long long>(now.whatif_hits + now.whatif_misses -
                                         before.whatif_hits -
                                         before.whatif_misses));
      before = now;
    }
    std::printf("overall what-if hit rate: %.0f%%  (speedup warm vs cold: "
                "%.1fx)\n",
                100.0 * cache.stats().WhatIfHitRate(),
                times[1] > 0 ? times[0] / times[1] : 0.0);
  }
  return 0;
}

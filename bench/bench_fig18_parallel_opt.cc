// Figure 18 (Appendix C): parallel resource optimization for GLM.
// (a) Equi grid m=45, dense1000 L: optimization time vs worker threads
//     (1 thread already beats serial thanks to pipelining).
// (b) Hybrid default grid: serial vs parallel across scenarios XS-L.
// Note: on a single-core host the wall-clock speedup is limited to the
// pipelining effect; the worker decomposition itself is still exercised.

#include "bench_common.h"
#include "core/resource_optimizer.h"

using namespace relm;         // NOLINT
using namespace relm::bench;  // NOLINT

namespace {

double OptimizeTime(RelmSystem* sys, MlProgram* prog,
                    const OptimizerOptions& options) {
  OptimizerStats stats;
  ResourceOptimizer opt(sys->cluster(), options);
  auto cfg = opt.Optimize(prog, &stats);
  if (!cfg.ok()) return -1;
  return stats.opt_time_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  PrintHeader("Figure 18: parallel resource optimizer (GLM)");

  // (a) Equi m=45, scenario L dense1000, thread sweep.
  {
    RelmSystem sys;
    RegisterData(&sys, 10000000000LL, 1000, 1.0);
    auto prog = MustCompile(&sys, "glm.dml");
    OptimizerOptions serial;
    serial.cp_grid = GridType::kEquiSpaced;
    serial.mr_grid = GridType::kEquiSpaced;
    serial.grid_points = 45;
    double t_serial = OptimizeTime(&sys, prog.get(), serial);
    std::printf("\n(a) Equi m=45, dense1000 L\n");
    std::printf("%10s %12s %10s\n", "threads", "time [s]", "speedup");
    std::printf("%10s %12.3f %10s\n", "serial", t_serial, "1.0x");
    for (int threads : {1, 2, 4, 8, 16}) {
      OptimizerOptions parallel = serial;
      parallel.num_threads = threads;
      double t = OptimizeTime(&sys, prog.get(), parallel);
      std::printf("%10d %12.3f %9.1fx\n", threads, t, t_serial / t);
    }
  }

  // (b) Hybrid default, all scenarios, serial vs 4 workers.
  {
    std::printf("\n(b) Hybrid grid, serial vs parallel (4 workers)\n");
    std::printf("%-5s %12s %12s\n", "scen", "serial [s]", "parallel [s]");
    for (const Scenario& scenario : Scenarios()) {
      if (std::string(scenario.name) == "XL") continue;
      RelmSystem sys;
      RegisterData(&sys, scenario.cells, 1000, 1.0);
      auto prog = MustCompile(&sys, "glm.dml");
      double t_serial = OptimizeTime(&sys, prog.get(), {});
      OptimizerOptions parallel;
      parallel.num_threads = 4;
      double t_parallel = OptimizeTime(&sys, prog.get(), parallel);
      std::printf("%-5s %12.3f %12.3f\n", scenario.name, t_serial,
                  t_parallel);
    }
  }
  return 0;
}

// Figure 13: number of generated grid points per generator strategy as a
// function of data size, for base grids of m=15 and m=45 (LinregDS,
// dense1000). Expected shape: Equi is constant (m points), Exp is
// logarithmic and data-independent, Mem depends on the input data and
// needs few points (one at XS where every estimate is below mincc),
// Hybrid adapts while keeping systematic coverage.

#include "bench_common.h"
#include "core/grid_generators.h"
#include "core/resource_optimizer.h"

using namespace relm;         // NOLINT
using namespace relm::bench;  // NOLINT

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  PrintHeader("Figure 13: grid point generation strategies");
  for (int m : {15, 45}) {
    std::printf("\nbase grid m=%d (LinregDS, dense1000)\n", m);
    std::printf("%-5s %10s %8s %8s %8s %8s\n", "scen", "data", "Equi",
                "Exp", "Mem", "Hybrid");
    for (const Scenario& scenario : Scenarios()) {
      Session sys = UncachedSession();
      RegisterData(&sys, scenario.cells, 1000, 1.0);
      auto prog = MustCompile(&sys, "linreg_ds.dml");
      const ClusterConfig& cc = sys.cluster();
      auto count = [&](GridType type) {
        return EnumGridPoints(prog.get(), cc, type, m).size();
      };
      std::printf("%-5s %10s %8zu %8zu %8zu %8zu\n", scenario.name,
                  FormatBytes(scenario.cells * 8).c_str(),
                  count(GridType::kEquiSpaced),
                  count(GridType::kExpSpaced),
                  count(GridType::kMemBased), count(GridType::kHybrid));
    }
    // One full optimizer run at M documents what this base grid means
    // end to end (self-describing provenance JSON incl. decision trace).
    Session sys = UncachedSession();
    RegisterData(&sys, Scenarios()[2].cells, 1000, 1.0);
    auto prog = MustCompile(&sys, "linreg_ds.dml");
    OptimizerStats stats;
    ResourceOptimizer opt(sys.cluster(), OptimizerOptions().WithGridPoints(m));
    if (opt.Optimize(prog.get(), &stats).ok()) {
      std::printf("provenance (M): %s\n", stats.ToJson().c_str());
    }
  }
  return 0;
}

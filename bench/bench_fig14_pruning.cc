// Figure 14: percentage of program blocks remaining after pruning, per
// ML program and data scenario (dense, 1000 columns). Expected shape:
// 0% for small data (everything fits in CP under any config), growing
// with data size; pruning of all-unknown blocks keeps MLogreg/GLM from
// carrying a constant offset of unprunable blocks.

#include "bench_common.h"
#include "core/resource_optimizer.h"

using namespace relm;         // NOLINT
using namespace relm::bench;  // NOLINT

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  PrintHeader("Figure 14: effect of block pruning");
  std::printf("%-10s %8s", "Prog.", "|B|");
  for (const Scenario& scenario : Scenarios()) {
    std::printf(" %7s", scenario.name);
  }
  std::printf("   (remaining blocks after pruning [%%])\n");
  for (const char* script :
       {"linreg_ds.dml", "linreg_cg.dml", "l2svm.dml", "mlogreg.dml",
        "glm.dml"}) {
    int total = 0;
    std::vector<double> remaining;
    for (const Scenario& scenario : Scenarios()) {
      Session sys = UncachedSession();
      RegisterData(&sys, scenario.cells, 1000, 1.0);
      auto prog = MustCompile(&sys, script);
      OptimizerStats stats;
      ResourceOptimizer opt(sys.cluster(), OptimizerOptions{});
      auto cfg = opt.Optimize(prog.get(), &stats);
      if (!cfg.ok()) {
        remaining.push_back(-1);
        continue;
      }
      total = stats.total_generic_blocks;
      remaining.push_back(100.0 * stats.remaining_blocks_after_pruning /
                          std::max(1, stats.total_generic_blocks));
    }
    std::printf("%-10s %8d", script, total);
    for (double r : remaining) std::printf(" %6.1f%%", r);
    std::printf("\n");
  }
  return 0;
}

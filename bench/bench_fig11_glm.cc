// Figure 11: end-to-end baseline comparison for GLM (Poisson/log) on
// scenarios XS-L. GLM's unknowns come from UDF outputs; sizes become
// derivable at runtime via dynamic recompilation of the function bodies.

#include "baseline_comparison.h"

using namespace relm;         // NOLINT
using namespace relm::bench;  // NOLINT

int main() {
  PrintHeader("Figure 11: GLM vs static baselines, XS-L");
  RunBaselineComparison("glm.dml", ComparisonOptions{});
  return 0;
}

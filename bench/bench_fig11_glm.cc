// Figure 11: end-to-end baseline comparison for GLM (Poisson/log) on
// scenarios XS-L. GLM's unknowns come from UDF outputs; sizes become
// derivable at runtime via dynamic recompilation of the function bodies.

#include <cmath>

#include "baseline_comparison.h"

using namespace relm;         // NOLINT
using namespace relm::bench;  // NOLINT

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  PrintHeader("Figure 11: GLM vs static baselines, XS-L");
  ComparisonOptions options;
  options.label = [](int, double response) {
    // Poisson-flavored counts: nonnegative integers.
    return std::floor(std::exp(response / 2.0));
  };
  RunBaselineComparison("glm.dml", options);
  return 0;
}

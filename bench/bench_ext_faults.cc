// Extension: fault injection and failure recovery in the simulated
// YARN/MR cluster. Runs LinregCG and L2SVM (8GB dense, B-SL resources,
// i.e. MR-heavy plans) under increasing failure pressure and reports
// how the recovery machinery (task retries, speculation, node
// re-execution, AM restart) stretches execution time; closes with the
// optimizer's blast-radius response to a nonzero expected failure rate.

#include <chrono>

#include "bench_common.h"
#include "common/random.h"
#include "exec/fault_hooks.h"
#include "exec/worker_pool.h"
#include "runtime/interpreter.h"

using namespace relm;         // NOLINT
using namespace relm::bench;  // NOLINT

namespace {

/// MeasureClone that tolerates failed runs (retry exhaustion is a
/// legitimate outcome at high fault rates, not a harness error).
Result<SimResult> TryMeasure(Session* sys, const MlProgram& prog,
                             const ResourceConfig& config,
                             const SimOptions& opts) {
  auto clone = prog.Clone();
  if (!clone.ok()) return clone.status();
  return sys->Simulate(clone->get(), config, opts);
}

void FaultRateSweep(const char* script) {
  Session sys = UncachedSession();
  RegisterData(&sys, 1000000000LL, 1000, 1.0);
  auto prog = MustCompile(&sys, script);
  ResourceConfig bsl(512 * kMB, GigaBytes(4.4));
  std::printf("\n%s (8GB dense, B-SL)\n", script);
  std::printf("%10s %10s %10s %10s %10s\n", "fail rate", "elapsed",
              "retries", "specul.", "MR jobs");
  for (double rate : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    FaultPlan faults;
    faults.transient_task_failure_rate = rate;
    faults.straggler_probability = rate;  // stragglers scale along
    faults.straggler_slowdown = 3.0;
    SimOptions opts;
    opts.WithNoise(0).WithFaults(faults);
    auto run = TryMeasure(&sys, *prog, bsl, opts);
    if (!run.ok()) {
      std::printf("%10.2f %s\n", rate, run.status().ToString().c_str());
      continue;
    }
    std::printf("%10.2f %9.1fs %10d %10d %10d\n", rate,
                run->elapsed_seconds, run->task_retries,
                run->speculative_launches, run->mr_jobs_executed);
  }
}

void NodeCrashScenarios(const char* script) {
  Session sys = UncachedSession();
  RegisterData(&sys, 1000000000LL, 1000, 1.0);
  auto prog = MustCompile(&sys, script);
  ResourceConfig bsl(512 * kMB, GigaBytes(4.4));
  std::printf("\n%s: node crash at t=60s (mid MR job)\n", script);
  struct Scenario {
    const char* label;
    SimOptions opts;
  };
  std::vector<Scenario> scenarios;
  {
    Scenario s{"no faults", {}};
    s.opts.WithNoise(0);
    scenarios.push_back(s);
  }
  {
    Scenario s{"crash, no recovery", {}};
    s.opts.WithNoise(0);
    s.opts.faults.node_crashes.push_back(NodeCrash{0, 60.0, -1.0});
    scenarios.push_back(s);
  }
  {
    Scenario s{"crash, back after 30s", {}};
    s.opts.WithNoise(0);
    s.opts.faults.node_crashes.push_back(NodeCrash{0, 60.0, 30.0});
    scenarios.push_back(s);
  }
  {
    Scenario s{"crash + AM crash at 70s", {}};
    s.opts.WithNoise(0);
    s.opts.faults.node_crashes.push_back(NodeCrash{0, 60.0, -1.0});
    s.opts.faults.am_crash_at_seconds = 70.0;
    scenarios.push_back(s);
  }
  std::printf("%-26s %10s %9s %9s %9s\n", "scenario", "elapsed",
              "survived", "retries", "AM rest.");
  for (const Scenario& s : scenarios) {
    auto run = TryMeasure(&sys, *prog, bsl, s.opts);
    if (!run.ok()) {
      std::printf("%-26s %s\n", s.label,
                  run.status().ToString().c_str());
      continue;
    }
    std::printf("%-26s %9.1fs %9d %9d %9d\n", s.label,
                run->elapsed_seconds, run->node_failures_survived,
                run->task_retries, run->am_restarts);
  }
}

void BlastRadiusOptimization() {
  Session sys = UncachedSession();
  RegisterData(&sys, 1000000000LL, 1000, 1.0);
  auto prog = MustCompile(&sys, "linreg_cg.dml");
  std::printf("\noptimizer under expected failure rate "
              "(LinregCG, 8GB dense)\n");
  std::printf("%12s %-26s %12s\n", "fail rate", "chosen config",
              "est [s]");
  for (double rate : {0.0, 1e-4, 1e-3, 1e-2}) {
    OptimizerOptions oo;
    oo.WithExpectedFailureRate(rate);
    ResourceOptimizer opt(sys.cluster(), oo);
    OptimizerStats stats;
    auto cfg = opt.Optimize(prog.get(), &stats);
    if (!cfg.ok()) {
      std::printf("%12.0e %s\n", rate, cfg.status().ToString().c_str());
      continue;
    }
    // best_cost is the failure-aware estimate the optimizer minimized.
    std::printf("%12.0e %-26s %12.1f\n", rate, cfg->ToString().c_str(),
                stats.best_cost);
  }
}

// ---- chaos injection on the REAL engine --------------------------------
// Unlike the tables above (simulated cluster faults), this section runs
// mlogreg training for real through the interpreter under the exec
// layer's seeded ChaosInjector, with the serving layer's retry idiom
// (persistent injector across attempts) wrapped around it. Reports
// attempts burned, faults fired, and wall-clock overhead vs fault-free.

void ChaosSetup(SimulatedHdfs* hdfs) {
  Random rng(42);
  const int n = 2000;
  MatrixBlock x(n, 32, false);
  MatrixBlock y(n, 1, false);
  for (int64_t i = 0; i < n; ++i) {
    int c = static_cast<int>(i % 3);
    for (int64_t j = 0; j < 32; ++j) {
      x.Set(i, j, c * 2.0 + rng.Uniform(-1, 1));
    }
    y.Set(i, 0, c + 1);
  }
  hdfs->PutMatrix("/data/X", x);
  hdfs->PutMatrix("/data/y", y);
}

void ChaosRealExecution() {
  std::string source;
  {
    std::ifstream in(ScriptPath("mlogreg.dml"));
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }
  const ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"},
                        {"B", "/out/B"},  {"moi", "10"},
                        {"mii", "5"},     {"reg", "0.001"}};

  std::printf("\nchaos injection on the real engine "
              "(mlogreg, 8 workers, 2MB budget)\n");
  std::printf("%12s %10s %10s %10s %10s %10s\n", "inject rate", "ms",
              "attempts", "fired", "spills", "outcome");
  constexpr int kMaxAttempts = 20;
  double base_ms = 0.0;
  for (double rate : {0.0, 0.001, 0.005, 0.02}) {
    exec::FaultPolicy policy;
    policy.WithSeed(7)
        .WithRate(exec::FaultSite::kHdfsRead, rate)
        .WithRate(exec::FaultSite::kHdfsWrite, rate)
        .WithRate(exec::FaultSite::kSpillWrite, rate)
        .WithRate(exec::FaultSite::kSpillReload, rate)
        .WithRate(exec::FaultSite::kTaskAbort, rate / 10);
    exec::ChaosInjector chaos(policy);
    auto t0 = std::chrono::steady_clock::now();
    int attempts = 0;
    int64_t spill_bytes = 0;
    Status st;
    while (attempts < kMaxAttempts) {
      ++attempts;
      SimulatedHdfs hdfs;
      ChaosSetup(&hdfs);
      auto prog = MlProgram::Compile(source, args, &hdfs);
      if (!prog.ok()) {
        st = prog.status();
        break;
      }
      Interpreter interp(prog->get(), &hdfs);
      exec::ExecOptions opts;
      opts.workers = 8;
      opts.memory_budget = 2 << 20;
      opts.chaos = &chaos;
      interp.set_exec_options(opts);
      st = interp.Run();
      spill_bytes = interp.exec_stats().spill_bytes;
      if (st.ok() || st.code() != StatusCode::kUnavailable) break;
    }
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    if (rate == 0.0) base_ms = ms;
    char outcome[32];
    std::snprintf(outcome, sizeof(outcome), "%s (%.2fx)",
                  st.ok() ? "ok" : "failed", ms / base_ms);
    std::printf("%12.3f %10.2f %10d %10lld %10lld %10s\n", rate, ms,
                attempts, static_cast<long long>(chaos.total_fired()),
                static_cast<long long>(spill_bytes), outcome);
  }
  exec::SetWorkers(1);
}

}  // namespace

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  PrintHeader("Extension: fault injection + failure recovery");
  FaultRateSweep("linreg_cg.dml");
  FaultRateSweep("l2svm.dml");
  NodeCrashScenarios("linreg_cg.dml");
  BlastRadiusOptimization();
  ChaosRealExecution();
  return 0;
}

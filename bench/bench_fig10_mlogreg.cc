// Figure 10: end-to-end baseline comparison for MLogreg on scenarios
// XS-L. The table() indicator matrix (k=5 classes here) is unknown
// during initial compilation, so initial resource optimization is
// systematically misled in the core loops — the paper's motivation for
// runtime adaptation (Figure 15 re-runs this with adaptation enabled).

#include "baseline_comparison.h"

using namespace relm;         // NOLINT
using namespace relm::bench;  // NOLINT

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  PrintHeader("Figure 10: MLogreg vs static baselines, XS-L (k=5)");
  ComparisonOptions options;
  options.oracle = [](int64_t rows) { return MlogregOracle(rows, 5); };
  options.label = [](int row, double) {
    return 1.0 + (row % 5);  // class labels 1..5
  };
  RunBaselineComparison("mlogreg.dml", options);
  return 0;
}

// Micro-benchmarks (google-benchmark) for the optimizer's hot paths and
// the ablations called out in DESIGN.md: grid generation strategies,
// per-block recompilation, runtime-plan costing, dynamic recompilation,
// and full optimization with/without pruning and across grid types.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/grid_generators.h"
#include "core/resource_optimizer.h"
#include "lops/compiler_backend.h"

namespace relm {
namespace bench {
namespace {

struct Fixture {
  Fixture(const char* script, int64_t cells, int64_t cols) {
    RegisterData(&sys, cells, cols, 1.0);
    prog = MustCompile(&sys, script);
  }
  Session sys = UncachedSession();
  std::unique_ptr<MlProgram> prog;
};

Fixture& L2svmM() {
  static Fixture* f = new Fixture("l2svm.dml", 1000000000LL, 1000);
  return *f;
}

Fixture& GlmM() {
  static Fixture* f = new Fixture("glm.dml", 1000000000LL, 1000);
  return *f;
}

void BM_GridGeneration(benchmark::State& state) {
  Fixture& f = L2svmM();
  GridType type = static_cast<GridType>(state.range(0));
  for (auto _ : state) {
    auto points = EnumGridPoints(f.prog.get(), f.sys.cluster(), type, 15);
    benchmark::DoNotOptimize(points);
  }
  state.SetLabel(GridTypeName(type));
}
BENCHMARK(BM_GridGeneration)->DenseRange(0, 3);

void BM_ProgramCompile(benchmark::State& state) {
  Fixture& f = L2svmM();
  ResourceConfig rc(2 * kGB, 2 * kGB);
  for (auto _ : state) {
    CompileCounters counters;
    auto rp = GenerateRuntimeProgram(f.prog.get(), f.sys.cluster(), rc,
                                     &counters);
    benchmark::DoNotOptimize(rp);
  }
}
BENCHMARK(BM_ProgramCompile);

void BM_BlockRecompile(benchmark::State& state) {
  Fixture& f = L2svmM();
  ResourceConfig rc(2 * kGB, 2 * kGB);
  StatementBlock* block = f.prog->GenericBlocks().front();
  for (auto _ : state) {
    CompileCounters counters;
    auto rb = CompileBlockPlan(f.prog.get(), f.sys.cluster(), block, rc,
                               &counters);
    benchmark::DoNotOptimize(rb);
  }
}
BENCHMARK(BM_BlockRecompile);

void BM_ProgramCosting(benchmark::State& state) {
  Fixture& f = L2svmM();
  ResourceConfig rc(2 * kGB, 2 * kGB);
  CompileCounters counters;
  auto rp = *GenerateRuntimeProgram(f.prog.get(), f.sys.cluster(), rc,
                                    &counters);
  CostModel cm(f.sys.cluster());
  for (auto _ : state) {
    double cost = cm.EstimateProgramCost(rp);
    benchmark::DoNotOptimize(cost);
  }
}
BENCHMARK(BM_ProgramCosting);

void BM_FrontendCompile(benchmark::State& state) {
  Fixture& f = GlmM();
  for (auto _ : state) {
    auto clone = f.prog->Clone();
    benchmark::DoNotOptimize(clone);
  }
}
BENCHMARK(BM_FrontendCompile);

void BM_DynamicRecompile(benchmark::State& state) {
  Fixture f("mlogreg.dml", 1000000000LL, 1000);
  SymbolMap overrides = MlogregOracle(1000000, 5);
  for (auto _ : state) {
    Status st = f.prog->Rebuild(overrides);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_DynamicRecompile);

/// Ablation: full optimization under different grid strategies.
void BM_OptimizeGrid(benchmark::State& state) {
  Fixture& f = L2svmM();
  OptimizerOptions options;
  options.WithGrids(static_cast<GridType>(state.range(0)));
  ResourceOptimizer opt(f.sys.cluster(), options);
  for (auto _ : state) {
    auto cfg = opt.Optimize(f.prog.get());
    benchmark::DoNotOptimize(cfg);
  }
  state.SetLabel(GridTypeName(options.cp_grid));
}
BENCHMARK(BM_OptimizeGrid)->DenseRange(0, 3);

/// Ablation: pruning on/off (Table 3 deltas).
void BM_OptimizePruning(benchmark::State& state) {
  Fixture& f = GlmM();
  OptimizerOptions options;
  options.WithPruning(state.range(0) != 0, state.range(0) != 0);
  ResourceOptimizer opt(f.sys.cluster(), options);
  for (auto _ : state) {
    auto cfg = opt.Optimize(f.prog.get());
    benchmark::DoNotOptimize(cfg);
  }
  state.SetLabel(state.range(0) != 0 ? "pruning-on" : "pruning-off");
}
BENCHMARK(BM_OptimizePruning)->Arg(0)->Arg(1);

}  // namespace
}  // namespace bench
}  // namespace relm

BENCHMARK_MAIN();

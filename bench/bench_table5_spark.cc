// Table 5 (Appendix D): SystemML with the resource optimizer on
// MapReduce vs the SystemML runtime hand-coded on Spark (hybrid and full
// RDD plans), L2SVM across data sizes. Expected shape: single-node CP
// matters for small data (Spark's static executors are under-utilized
// and every stage pays latency in the Full plan); Spark has a sweet spot
// where the data fits aggregate executor memory but not a single node
// (L); beyond ~2x aggregate memory the difference vanishes.

#include "bench_common.h"
#include "spark/spark_model.h"

using namespace relm;         // NOLINT
using namespace relm::bench;  // NOLINT

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  PrintHeader("Table 5: MR + resource optimizer vs Spark plans (L2SVM)");
  std::printf("%-4s %10s %14s %14s %14s %8s\n", "scen", "dense size",
              "MR w/ Opt", "Spark Hybrid", "Spark Full", "cached");
  SparkConfig spark;
  for (const Scenario& scenario : Scenarios()) {
    Session sys = UncachedSession();
    RegisterData(&sys, scenario.cells, 1000, 1.0);
    auto prog = MustCompile(&sys, "l2svm.dml");
    auto outcome = sys.Optimize(prog.get());
    if (!outcome.ok()) continue;
    double t_mr =
        MeasureClone(&sys, *prog, outcome->config).elapsed_seconds;

    SparkWorkload workload;
    workload.x = MatrixCharacteristics::Dense(scenario.cells / 1000, 1000);
    SparkRunEstimate hybrid =
        EstimateSparkRun(spark, sys.cluster(), workload,
                         SparkPlan::kHybrid);
    SparkRunEstimate full = EstimateSparkRun(spark, sys.cluster(),
                                             workload, SparkPlan::kFull);
    std::printf("%-4s %10s %13.0fs %13.0fs %13.0fs %8s\n", scenario.name,
                FormatBytes(scenario.cells * 8).c_str(), t_mr,
                hybrid.seconds, full.seconds,
                hybrid.x_cached ? "yes" : "no");
  }
  std::printf("\nExpected: MR+Opt wins XS-M (CP execution, no standing "
              "executors);\nSpark wins at L (RDD cache sweet spot); "
              "comparable at XL.\n");
  return 0;
}

#ifndef RELM_BENCH_BASELINE_COMPARISON_H_
#define RELM_BENCH_BASELINE_COMPARISON_H_

// Shared end-to-end baseline-comparison runner behind Figures 7-11:
// for each scenario x data shape, measures the four static baselines
// (B-SS, B-LS, B-SL, B-LL) and the optimizer's configuration (Opt) on
// the cluster simulator, reporting elapsed times and the configuration
// Opt chose (Table 2).

#include <algorithm>
#include <functional>

#include "bench_common.h"

namespace relm {
namespace bench {

struct ComparisonOptions {
  /// Scenarios to include (names from Scenarios()).
  std::vector<std::string> scenarios = {"XS", "S", "M", "L"};
  /// Oracle factory per (rows) for data-dependent sizes; may be null.
  std::function<SymbolMap(int64_t rows)> oracle;
  /// Enable runtime adaptation during the Opt run (Figure 15 uses this).
  bool adaptation = false;
};

inline void RunBaselineComparison(const std::string& script,
                                  const ComparisonOptions& options) {
  double max_speedup = 1.0;
  std::printf("%-4s %-10s %10s %10s %10s %10s %10s   %s\n", "scen",
              "shape", "B-SS", "B-LS", "B-SL", "B-LL", "Opt",
              "Opt config (CP/maxMR)");
  for (const Scenario& scenario : Scenarios()) {
    if (std::find(options.scenarios.begin(), options.scenarios.end(),
                  scenario.name) == options.scenarios.end()) {
      continue;
    }
    for (const Shape& shape : Shapes()) {
      RelmSystem sys;
      RegisterData(&sys, scenario.cells, shape.cols, shape.sparsity);
      auto prog = MustCompile(&sys, script);
      int64_t rows = scenario.cells / shape.cols;
      SymbolMap oracle =
          options.oracle ? options.oracle(rows) : SymbolMap{};

      std::printf("%-4s %-10s", scenario.name, shape.name);
      double worst = 0.0;
      for (const auto& baseline : sys.StaticBaselines()) {
        SimResult run = MeasureClone(&sys, *prog, baseline.config, {},
                                     oracle);
        worst = std::max(worst, run.elapsed_seconds);
        std::printf(" %9.1fs", run.elapsed_seconds);
      }
      OptimizerStats stats;
      auto config = sys.OptimizeResources(prog.get(), &stats);
      if (!config.ok()) {
        std::printf("  optimizer error: %s\n",
                    config.status().ToString().c_str());
        continue;
      }
      SimOptions opts;
      opts.enable_adaptation = options.adaptation;
      SimResult opt_run = MeasureClone(&sys, *prog, *config, opts, oracle);
      // Include the optimization overhead in Opt's elapsed time (the
      // paper reports end-to-end client elapsed time).
      double opt_elapsed = opt_run.elapsed_seconds +
                           stats.opt_time_seconds;
      max_speedup = std::max(max_speedup, worst / opt_elapsed);
      std::printf(" %9.1fs   %s/%s", opt_elapsed,
                  FormatBytes(config->cp_heap).c_str(),
                  FormatBytes(config->MaxMrHeap()).c_str());
      if (opt_run.migrations > 0) {
        std::printf(" (%d migration%s)", opt_run.migrations,
                    opt_run.migrations > 1 ? "s" : "");
      }
      std::printf("\n");
    }
  }
  std::printf("\nmax speedup of Opt over the worst static baseline: "
              "%.1fx\n", max_speedup);
}

}  // namespace bench
}  // namespace relm

#endif  // RELM_BENCH_BASELINE_COMPARISON_H_

#ifndef RELM_BENCH_BASELINE_COMPARISON_H_
#define RELM_BENCH_BASELINE_COMPARISON_H_

// Shared end-to-end baseline-comparison runner behind Figures 7-11:
// for each scenario x data shape, measures the four static baselines
// (B-SS, B-LS, B-SL, B-LL) and the optimizer's configuration (Opt) on
// the cluster simulator, reporting elapsed times and the configuration
// Opt chose (Table 2).

#include <algorithm>
#include <functional>

#include "bench_common.h"
#include "common/random.h"
#include "matrix/matrix_block.h"

namespace relm {
namespace bench {

struct ComparisonOptions {
  /// Scenarios to include (names from Scenarios()).
  std::vector<std::string> scenarios = {"XS", "S", "M", "L"};
  /// Oracle factory per (rows) for data-dependent sizes; may be null.
  std::function<SymbolMap(int64_t rows)> oracle;
  /// Enable runtime adaptation during the Opt run (Figure 15 uses this).
  bool adaptation = false;
  /// Label generator for the tiny real CP run: maps (row index, linear
  /// response) to a y value the script accepts. Defaults to the linear
  /// response itself (regression scripts).
  std::function<double(int row, double response)> label;
};

/// Executes the script for real on the CP interpreter over a tiny
/// synthetic dataset. This cross-checks that the algorithm actually
/// runs end to end, and it gives `--trace-out` traces per-block
/// interpreter spans alongside the optimizer and simulator ones.
inline void RunRealCpValidation(const std::string& script,
                                const ComparisonOptions& options) {
  Random rng(42);
  const int n = 240, d = 8;
  MatrixBlock x(n, d, false);
  MatrixBlock y(n, 1, false);
  for (int i = 0; i < n; ++i) {
    double response = 0.0;
    for (int j = 0; j < d; ++j) {
      double v = rng.Uniform(-1, 1);
      x.Set(i, j, v);
      response += (j % 2 == 0 ? 1.0 : -0.5) * v;
    }
    y.Set(i, 0, options.label ? options.label(i, response) : response);
  }
  Session sys = UncachedSession();
  sys.hdfs().PutMatrix("/data/X", std::move(x));
  sys.hdfs().PutMatrix("/data/y", std::move(y));
  auto prog = MustCompile(&sys, script);
  auto run = sys.ExecuteReal(prog.get(), RealRunOptions());
  if (!run.ok()) {
    std::printf("real CP validation run failed: %s\n",
                run.status().ToString().c_str());
    return;
  }
  std::printf("real CP validation run (%dx%d): %lld blocks executed\n",
              n, d, static_cast<long long>(run->blocks_executed));
}

inline void RunBaselineComparison(const std::string& script,
                                  const ComparisonOptions& options) {
  double max_speedup = 1.0;
  std::printf("%-4s %-10s %10s %10s %10s %10s %10s   %s\n", "scen",
              "shape", "B-SS", "B-LS", "B-SL", "B-LL", "Opt",
              "Opt config (CP/maxMR)");
  for (const Scenario& scenario : Scenarios()) {
    if (std::find(options.scenarios.begin(), options.scenarios.end(),
                  scenario.name) == options.scenarios.end()) {
      continue;
    }
    for (const Shape& shape : Shapes()) {
      Session sys = UncachedSession();
      RegisterData(&sys, scenario.cells, shape.cols, shape.sparsity);
      auto prog = MustCompile(&sys, script);
      int64_t rows = scenario.cells / shape.cols;
      SymbolMap oracle =
          options.oracle ? options.oracle(rows) : SymbolMap{};

      std::printf("%-4s %-10s", scenario.name, shape.name);
      double worst = 0.0;
      for (const auto& baseline : sys.StaticBaselines()) {
        SimResult run = MeasureClone(&sys, *prog, baseline.config, {},
                                     oracle);
        worst = std::max(worst, run.elapsed_seconds);
        std::printf(" %9.1fs", run.elapsed_seconds);
      }
      auto outcome = sys.Optimize(prog.get());
      if (!outcome.ok()) {
        std::printf("  optimizer error: %s\n",
                    outcome.status().ToString().c_str());
        continue;
      }
      SimOptions opts;
      opts.enable_adaptation = options.adaptation;
      SimResult opt_run = MeasureClone(&sys, *prog, outcome->config, opts,
                                       oracle);
      // Include the optimization overhead in Opt's elapsed time (the
      // paper reports end-to-end client elapsed time).
      double opt_elapsed = opt_run.elapsed_seconds +
                           outcome->stats.opt_time_seconds;
      max_speedup = std::max(max_speedup, worst / opt_elapsed);
      std::printf(" %9.1fs   %s/%s", opt_elapsed,
                  FormatBytes(outcome->config.cp_heap).c_str(),
                  FormatBytes(outcome->config.MaxMrHeap()).c_str());
      if (opt_run.migrations > 0) {
        std::printf(" (%d migration%s)", opt_run.migrations,
                    opt_run.migrations > 1 ? "s" : "");
      }
      std::printf("\n");
    }
  }
  std::printf("\nmax speedup of Opt over the worst static baseline: "
              "%.1fx\n", max_speedup);
  RunRealCpValidation(script, options);
}

}  // namespace bench
}  // namespace relm

#endif  // RELM_BENCH_BASELINE_COMPARISON_H_

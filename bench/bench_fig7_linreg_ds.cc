// Figure 7 + Table 2: end-to-end baseline comparison for LinregDS on
// scenarios XS-XL across all four data shapes. Expected shape: no single
// static baseline wins everywhere (small CP wins at M+ for dense1000,
// in-memory wins for sparse shapes), and Opt tracks the best baseline
// while choosing small resources. The Opt config column reproduces
// Table 2.

#include "baseline_comparison.h"

using namespace relm;         // NOLINT
using namespace relm::bench;  // NOLINT

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  PrintHeader(
      "Figure 7 / Table 2: LinregDS vs static baselines, XS-XL");
  ComparisonOptions options;
  options.scenarios = {"XS", "S", "M", "L", "XL"};
  RunBaselineComparison("linreg_ds.dml", options);
  return 0;
}

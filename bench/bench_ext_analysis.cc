// Extension harness: cost of the plan-integrity analysis at its three
// choke points. Prints, per script, the wall-clock of (a) the
// structural program analysis that gates Session compiles and PlanCache
// inserts, (b) the full plan audit at the min/max budgets, and (c) the
// optimizer grid sweep with and without strict mode — the overhead a
// deployment pays for running every grid point through the passes.

#include <chrono>
#include <cstdio>

#include "analysis/analysis.h"
#include "bench_common.h"
#include "core/resource_optimizer.h"
#include "lops/compiler_backend.h"

namespace relm {
namespace bench {
namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void Run() {
  const char* const scripts[] = {"linreg_ds.dml", "linreg_cg.dml",
                                 "l2svm.dml", "glm.dml", "mlogreg.dml"};
  std::printf("%-14s %12s %12s %12s %12s\n", "script", "program_ms",
              "plan_ms", "sweep_ms", "strict_ms");
  for (const char* script : scripts) {
    Session sys = UncachedSession();
    RegisterData(&sys, 1000000000LL, 1000, 1.0);  // M scenario, 8 GB
    auto prog = MustCompile(&sys, script);
    const ClusterConfig& cc = sys.cluster();

    auto t0 = std::chrono::steady_clock::now();
    analysis::AnalysisReport program_report =
        analysis::AnalyzeProgram(prog.get());
    double program_ms = MsSince(t0);
    if (program_report.has_errors()) {
      std::fprintf(stderr, "%s: unexpected analysis errors:\n%s", script,
                   program_report.ToString().c_str());
      std::exit(1);
    }

    double plan_ms = 0.0;
    for (int64_t heap : {cc.MinHeapSize(), cc.MaxHeapSize()}) {
      CompileCounters counters;
      auto rp = GenerateRuntimeProgram(prog.get(), cc,
                                       ResourceConfig(heap, heap),
                                       &counters);
      if (!rp.ok()) {
        std::fprintf(stderr, "%s: plan compile failed: %s\n", script,
                     rp.status().ToString().c_str());
        std::exit(1);
      }
      auto t1 = std::chrono::steady_clock::now();
      analysis::AnalysisReport plan_report =
          analysis::AnalyzeRuntimePlan(prog.get(), *rp, cc);
      plan_ms += MsSince(t1);
      if (plan_report.has_errors()) {
        std::fprintf(stderr, "%s: unexpected plan errors:\n%s", script,
                     plan_report.ToString().c_str());
        std::exit(1);
      }
    }

    OptimizerOptions base;
    base.plan_cache = nullptr;  // measure compiles, not cache hits
    auto t2 = std::chrono::steady_clock::now();
    auto sweep = sys.Optimize(prog.get(), base);
    double sweep_ms = MsSince(t2);

    OptimizerOptions strict = base;
    strict.WithStrictAnalysis(true);
    auto t3 = std::chrono::steady_clock::now();
    auto strict_sweep = sys.Optimize(prog.get(), strict);
    double strict_ms = MsSince(t3);
    if (!sweep.ok() || !strict_sweep.ok()) {
      std::fprintf(stderr, "%s: optimize failed\n", script);
      std::exit(1);
    }

    std::printf("%-14s %12.2f %12.2f %12.2f %12.2f\n", script, program_ms,
                plan_ms, sweep_ms, strict_ms);
  }
}

}  // namespace
}  // namespace bench
}  // namespace relm

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  relm::bench::Run();
  return 0;
}

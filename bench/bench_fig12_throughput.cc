// Figure 12: end-to-end throughput comparison Opt vs B-LL with 1..128
// concurrent users (8 applications each). Expected shape: identical up
// to ~4 users; from 8 users on, B-LL saturates at 6 concurrent 80 GB AM
// containers while Opt's right-sized containers admit 36+ applications,
// for multi-x throughput gains.

#include "bench_common.h"
#include "mrsim/throughput.h"

using namespace relm;         // NOLINT
using namespace relm::bench;  // NOLINT

namespace {

void RunWorkload(const char* label, const char* script, int64_t cells,
                 int64_t cols, double sparsity) {
  RelmSystem sys;
  RegisterData(&sys, cells, cols, sparsity);
  auto prog = MustCompile(&sys, script);
  auto config = sys.OptimizeResources(prog.get());
  if (!config.ok()) {
    std::printf("optimizer error\n");
    return;
  }
  ResourceConfig bll = sys.StaticBaselines().back().config;
  double solo_opt =
      MeasureClone(&sys, *prog, *config).elapsed_seconds;
  double solo_bll = MeasureClone(&sys, *prog, bll).elapsed_seconds;
  const ClusterConfig& cc = sys.cluster();
  int64_t c_opt = cc.ContainerRequestForHeap(config->cp_heap);
  int64_t c_bll = cc.ContainerRequestForHeap(bll.cp_heap);

  std::printf("\n%s: Opt=%s (AM %s, solo %.1fs), B-LL (AM %s, solo %.1fs)\n",
              label, config->ToString().c_str(),
              FormatBytes(c_opt).c_str(), solo_opt,
              FormatBytes(c_bll).c_str(), solo_bll);
  std::printf("%8s %14s %14s %10s %12s %12s\n", "#users", "Opt[app/min]",
              "B-LL[app/min]", "speedup", "Opt#conc", "B-LL#conc");
  double best_speedup = 0;
  for (int users : {1, 2, 4, 8, 16, 32, 64, 128}) {
    auto t_opt = SimulateThroughput(cc, c_opt, solo_opt, users);
    auto t_bll = SimulateThroughput(cc, c_bll, solo_bll, users);
    double speedup = t_opt.apps_per_minute / t_bll.apps_per_minute;
    best_speedup = std::max(best_speedup, speedup);
    std::printf("%8d %14.1f %14.1f %9.1fx %12d %12d\n", users,
                t_opt.apps_per_minute, t_bll.apps_per_minute, speedup,
                t_opt.max_concurrent, t_bll.max_concurrent);
  }
  std::printf("peak speedup: %.1fx\n", best_speedup);
}

}  // namespace

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  PrintHeader("Figure 12: end-to-end throughput, Opt vs B-LL");
  // (a) LinregDS, scenario S, dense1000 (800 MB).
  RunWorkload("(a) LinregDS, S dense1000", "linreg_ds.dml", 100000000LL,
              1000, 1.0);
  // (b) L2SVM, scenario M, sparse100 (8 GB cells, 1% sparse).
  RunWorkload("(b) L2SVM, M sparse100", "l2svm.dml", 1000000000LL, 100,
              0.01);
  return 0;
}

// Figure 12: end-to-end throughput comparison Opt vs B-LL with 1..128
// concurrent users (8 applications each). Expected shape: identical up
// to ~4 users; from 8 users on, B-LL saturates at 6 concurrent 80 GB AM
// containers while Opt's right-sized containers admit 36+ applications,
// for multi-x throughput gains.
//
// Multi-client serving mode (--clients=N [--jobs=M]): N client threads
// submit a mixed workload through serve::JobService (shared plan/what-if
// cache, per-tenant fairness, admission control) and the bench reports
// jobs/minute against a serial uncached baseline doing the identical
// work. Cache hit rates are exported as obs gauges, so they appear in
// --trace-out dumps alongside the plan_cache.* counters.
//
// Cold-start mode (--cold-start [--artifact=PATH]): two simulated
// optimizer processes share a persistent plan artifact. The first
// (cold) pays the full compile + grid sweep and flushes its plans; the
// second (warm) starts with an empty in-memory cache, hydrates from the
// artifact, and must reach its first optimized plan >= 2x faster with
// zero full compiles. Exits non-zero when either bar is missed, so CI
// can gate on it. The section also runs at the end of the default
// Figure-12 report.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include <unistd.h>

#include "bench_common.h"
#include "core/plan_cache.h"
#include "mrsim/throughput.h"
#include "obs/metrics.h"
#include "serve/job_service.h"
#include "store/plan_artifact_store.h"

using namespace relm;         // NOLINT
using namespace relm::bench;  // NOLINT

namespace {

void RunWorkload(const char* label, const char* script, int64_t cells,
                 int64_t cols, double sparsity) {
  Session sys = UncachedSession();
  RegisterData(&sys, cells, cols, sparsity);
  auto prog = MustCompile(&sys, script);
  auto outcome = sys.Optimize(prog.get());
  if (!outcome.ok()) {
    std::printf("optimizer error\n");
    return;
  }
  ResourceConfig config = outcome->config;
  ResourceConfig bll = sys.StaticBaselines().back().config;
  double solo_opt =
      MeasureClone(&sys, *prog, config).elapsed_seconds;
  double solo_bll = MeasureClone(&sys, *prog, bll).elapsed_seconds;
  const ClusterConfig& cc = sys.cluster();
  int64_t c_opt = cc.ContainerRequestForHeap(config.cp_heap);
  int64_t c_bll = cc.ContainerRequestForHeap(bll.cp_heap);

  std::printf("\n%s: Opt=%s (AM %s, solo %.1fs), B-LL (AM %s, solo %.1fs)\n",
              label, config.ToString().c_str(),
              FormatBytes(c_opt).c_str(), solo_opt,
              FormatBytes(c_bll).c_str(), solo_bll);
  std::printf("%8s %14s %14s %10s %12s %12s\n", "#users", "Opt[app/min]",
              "B-LL[app/min]", "speedup", "Opt#conc", "B-LL#conc");
  double best_speedup = 0;
  for (int users : {1, 2, 4, 8, 16, 32, 64, 128}) {
    auto t_opt = SimulateThroughput(cc, c_opt, solo_opt, users);
    auto t_bll = SimulateThroughput(cc, c_bll, solo_bll, users);
    double speedup = t_opt.apps_per_minute / t_bll.apps_per_minute;
    best_speedup = std::max(best_speedup, speedup);
    std::printf("%8d %14.1f %14.1f %9.1fx %12d %12d\n", users,
                t_opt.apps_per_minute, t_bll.apps_per_minute, speedup,
                t_opt.max_concurrent, t_bll.max_concurrent);
  }
  std::printf("peak speedup: %.1fx\n", best_speedup);
}

// ---- multi-client serving mode ----------------------------------------

/// One entry of the served workload mix.
struct ServedWorkload {
  const char* label;
  const char* script;
  int64_t cells;
  int64_t cols;
  double sparsity;
};

const std::vector<ServedWorkload>& ServedMix() {
  static const std::vector<ServedWorkload> kMix = {
      {"LinregDS S dense1000", "linreg_ds.dml", 100000000LL, 1000, 1.0},
      {"LinregCG S dense100", "linreg_cg.dml", 100000000LL, 100, 1.0},
      {"L2SVM M sparse100", "l2svm.dml", 1000000000LL, 100, 0.01},
  };
  return kMix;
}

/// Per-workload argument map: every mix entry reads/writes its own HDFS
/// paths so concurrent jobs never race on input metadata.
ScriptArgs ServedArgs(size_t idx) {
  std::string base = "/data/w" + std::to_string(idx);
  std::string out = "/out/w" + std::to_string(idx);
  return ScriptArgs{{"X", base + "/X"},
                    {"Y", base + "/y"},
                    {"B", out + "/B"},
                    {"model", out + "/w"}};
}

std::vector<serve::InputSpec> ServedInputs(size_t idx,
                                           const ServedWorkload& wl) {
  std::string base = "/data/w" + std::to_string(idx);
  int64_t rows = wl.cells / wl.cols;
  return {{base + "/X", rows, wl.cols, wl.sparsity},
          {base + "/y", rows, 1, 1.0}};
}

std::string MustReadSource(const std::string& script) {
  std::ifstream in(ScriptPath(script));
  if (!in.good()) {
    std::fprintf(stderr, "cannot read script %s\n", script.c_str());
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Registers the full served namespace on a session (used up front for
/// both the baseline and the service, so the input fingerprint is
/// stable before any compile gets cached).
void RegisterServedInputs(Session* session) {
  const auto& mix = ServedMix();
  for (size_t i = 0; i < mix.size(); ++i) {
    for (const serve::InputSpec& input : ServedInputs(i, mix[i])) {
      Status st = session->RegisterMatrixMetadata(input.path, input.rows,
                                                  input.cols, input.sparsity);
      if (!st.ok()) {
        std::fprintf(stderr, "register failed: %s\n", st.ToString().c_str());
        std::exit(1);
      }
    }
  }
}

/// Serial uncached baseline: one thread, plan caching off, running the
/// legacy per-job workflow (compile, optimize, estimate, simulate —
/// the loop the pre-serving examples and benches perform). Returns
/// wall seconds.
double RunSerialBaseline(const ClusterConfig& cc,
                         const std::vector<std::string>& sources,
                         int total_jobs,
                         const OptimizerOptions& optimizer) {
  SessionOptions so;
  so.enable_plan_cache = false;
  Session session(cc, so);
  RegisterServedInputs(&session);
  const auto& mix = ServedMix();
  const auto start = std::chrono::steady_clock::now();
  for (int j = 0; j < total_jobs; ++j) {
    size_t idx = static_cast<size_t>(j) % mix.size();
    auto prog = session.CompileSource(sources[idx], ServedArgs(idx));
    if (!prog.ok()) {
      std::fprintf(stderr, "baseline compile failed: %s\n",
                   prog.status().ToString().c_str());
      std::exit(1);
    }
    auto opt = session.Optimize(prog->get(), optimizer);
    if (!opt.ok()) {
      std::fprintf(stderr, "baseline optimize failed: %s\n",
                   opt.status().ToString().c_str());
      std::exit(1);
    }
    auto cost = session.EstimateCost(prog->get(), opt->config);
    auto sim = session.Simulate(prog->get(), opt->config);
    if (!cost.ok() || !sim.ok()) {
      std::fprintf(stderr, "baseline run failed\n");
      std::exit(1);
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void RunMultiClient(int clients, int jobs_per_client, int grid_points) {
  PrintHeader("Multi-client serving: JobService + shared plan cache");
  const auto& mix = ServedMix();
  std::vector<std::string> sources;
  for (const ServedWorkload& wl : mix) {
    sources.push_back(MustReadSource(wl.script));
  }
  const int total_jobs = clients * jobs_per_client;
  ClusterConfig cc = ClusterConfig::PaperCluster();
  std::printf("\nworkload mix (%d clients x %d jobs, %d total):\n", clients,
              jobs_per_client, total_jobs);
  for (const ServedWorkload& wl : mix) {
    std::printf("  - %s (%s)\n", wl.label, wl.script);
  }

  // Both sides run the paper's fine 45-point grid so per-job optimizer
  // work is realistic; the serial side re-derives every plan, the
  // service reads through the shared cache.
  OptimizerOptions optimizer;
  optimizer.WithGridPoints(grid_points);

  double serial_seconds =
      RunSerialBaseline(cc, sources, total_jobs, optimizer);
  double serial_rate = 60.0 * total_jobs / serial_seconds;
  std::printf("\nserial uncached baseline: %d jobs in %.2fs  (%.1f jobs/min)\n",
              total_jobs, serial_seconds, serial_rate);

  PlanCache cache;
  serve::ServeOptions options;
  options.WithWorkers(clients).WithPlanCache(&cache).WithOptimizer(optimizer);
  serve::JobService service(cc, options);
  RegisterServedInputs(&service.session());
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> client_threads;
  client_threads.reserve(static_cast<size_t>(clients));
  std::atomic<int> failures{0};
  for (int c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      std::vector<serve::JobHandle> handles;
      for (int j = 0; j < jobs_per_client; ++j) {
        size_t idx = static_cast<size_t>(c + j) % mix.size();
        serve::JobRequest request;
        request.source = sources[idx];
        request.args = ServedArgs(idx);
        request.inputs = ServedInputs(idx, mix[idx]);
        auto handle =
            service.Submit("client" + std::to_string(c), std::move(request));
        if (!handle.ok()) {
          failures.fetch_add(1);
          continue;
        }
        handles.push_back(std::move(*handle));
      }
      for (serve::JobHandle& handle : handles) {
        if (!handle.Await().ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : client_threads) t.join();
  double served_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  service.Shutdown();

  double served_rate = 60.0 * total_jobs / served_seconds;
  double speedup = served_rate / serial_rate;
  PlanCache::Stats cs = cache.stats();
  // Export the hit rates so --trace-out dumps carry them next to the
  // plan_cache.* counters.
  RELM_GAUGE_SET("plan_cache.whatif_hit_rate", cs.WhatIfHitRate());
  double program_rate =
      cs.program_hits + cs.program_misses == 0
          ? 0.0
          : static_cast<double>(cs.program_hits) /
                static_cast<double>(cs.program_hits + cs.program_misses);
  RELM_GAUGE_SET("plan_cache.program_hit_rate", program_rate);

  serve::JobService::Stats ss = service.stats();
  std::printf(
      "concurrent service (%d workers): %d jobs in %.2fs  (%.1f jobs/min)\n",
      clients, total_jobs, served_seconds, served_rate);
  std::printf("  completed=%lld failed=%lld rejected=%lld await_failures=%d\n",
              static_cast<long long>(ss.completed),
              static_cast<long long>(ss.failed),
              static_cast<long long>(ss.rejected), failures.load());
  const auto print_slo = [](const char* name,
                            const serve::JobService::Stats::Slo& slo) {
    std::printf("  %-10s p50=%8.2fms  p95=%8.2fms  p99=%8.2fms  (n=%lld)\n",
                name, slo.p50, slo.p95, slo.p99,
                static_cast<long long>(slo.count));
  };
  std::printf("  serve SLO latencies:\n");
  print_slo("wait", ss.wait_ms);
  print_slo("run", ss.run_ms);
  print_slo("end-to-end", ss.e2e_ms);
  std::printf(
      "  plan cache: program %lld/%lld hits (%.0f%%), what-if %lld/%lld "
      "hits (%.0f%%), evictions=%lld\n",
      static_cast<long long>(cs.program_hits),
      static_cast<long long>(cs.program_hits + cs.program_misses),
      100.0 * program_rate, static_cast<long long>(cs.whatif_hits),
      static_cast<long long>(cs.whatif_hits + cs.whatif_misses),
      100.0 * cs.WhatIfHitRate(), static_cast<long long>(cs.evictions));
  std::printf("speedup vs serial uncached: %.1fx %s\n", speedup,
              speedup >= 2.0 ? "[PASS >= 2x]" : "[below 2x target]");
}

// ---- cold-start mode --------------------------------------------------

/// Everything one simulated optimizer process produced: time to the
/// first optimized plan, the cache counters proving where the work
/// went, and the optimizer's own stats (block recompiles, best cost).
struct ColdStartRun {
  double ms = 0.0;
  PlanCache::Stats cache;
  OptimizerStats opt;
  ResourceConfig config;
};

/// One "process" against the persistent plan artifact at `path`: a
/// fresh PlanCache (nothing warm in memory, exactly like a restarted
/// service) whose only head start is whatever the artifact holds.
/// Times compile + optimize — the time to the first optimized plan —
/// then flushes so the next process can start warm.
ColdStartRun RunColdStartProcess(const std::string& path,
                                 const OptimizerOptions& optimizer) {
  PlanCache cache;
  Session sys(ClusterConfig::PaperCluster(),
              SessionOptions().WithPlanCache(&cache).WithArtifactStore(
                  ArtifactStoreOptions().WithPath(path)));
  if (!sys.artifact_store_status().ok()) {
    std::fprintf(stderr, "artifact store unavailable: %s\n",
                 sys.artifact_store_status().ToString().c_str());
    std::exit(1);
  }
  RegisterData(&sys, 100000000LL, 1000, 1.0);  // S dense1000, Fig 12(a)
  const auto start = std::chrono::steady_clock::now();
  auto prog = MustCompile(&sys, "linreg_ds.dml");
  auto outcome = sys.Optimize(prog.get(), optimizer);
  if (!outcome.ok()) {
    std::fprintf(stderr, "optimize failed: %s\n",
                 outcome.status().ToString().c_str());
    std::exit(1);
  }
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  Status flushed = sys.FlushArtifacts();
  if (!flushed.ok()) {
    std::fprintf(stderr, "artifact flush failed: %s\n",
                 flushed.ToString().c_str());
    std::exit(1);
  }
  return {ms, cache.stats(), outcome->stats, outcome->config};
}

/// Returns false when the warm process misses the ISSUE bars (>= 2x
/// faster time-to-first-result, zero full compiles, identical config).
bool RunColdStart(std::string artifact_path) {
  PrintHeader("Cold start: persistent plan artifacts vs clean recompile");
  const bool keep = !artifact_path.empty();
  if (artifact_path.empty()) {
    artifact_path = "/tmp/relm_cold_start_" +
                    std::to_string(static_cast<long long>(getpid())) +
                    ".relmplan";
  }
  std::remove(artifact_path.c_str());

  OptimizerOptions optimizer;
  optimizer.WithGridPoints(45);  // the paper's fine grid
  ColdStartRun cold = RunColdStartProcess(artifact_path, optimizer);
  ColdStartRun warm = RunColdStartProcess(artifact_path, optimizer);

  std::printf("\nLinregDS S dense1000, artifact %s\n", artifact_path.c_str());
  std::printf("%-6s %12s %10s %10s %12s %12s\n", "proc", "first(ms)",
              "compiles", "recompiles", "store-prog", "store-whatif");
  std::printf("%-6s %12.2f %10lld %10lld %12lld %12lld\n", "cold", cold.ms,
              static_cast<long long>(cold.cache.program_misses),
              static_cast<long long>(cold.opt.block_recompiles),
              static_cast<long long>(cold.cache.store_program_hits),
              static_cast<long long>(cold.cache.store_whatif_hits));
  std::printf("%-6s %12.2f %10lld %10lld %12lld %12lld\n", "warm", warm.ms,
              static_cast<long long>(warm.cache.program_misses),
              static_cast<long long>(warm.opt.block_recompiles),
              static_cast<long long>(warm.cache.store_program_hits),
              static_cast<long long>(warm.cache.store_whatif_hits));

  double speedup = cold.ms / warm.ms;
  bool zero_compiles =
      warm.cache.program_misses == 0 && warm.opt.block_recompiles == 0;
  bool same_plan =
      warm.config.cp_heap == cold.config.cp_heap &&
      warm.config.default_mr_heap == cold.config.default_mr_heap &&
      warm.config.per_block_mr_heap == cold.config.per_block_mr_heap &&
      warm.config.cp_cores == cold.config.cp_cores &&
      warm.opt.best_cost == cold.opt.best_cost;
  std::printf("time-to-first-result speedup: %.1fx %s\n", speedup,
              speedup >= 2.0 ? "[PASS >= 2x]" : "[below 2x target]");
  std::printf("warm full compiles: %lld %s\n",
              static_cast<long long>(warm.cache.program_misses +
                                     warm.opt.block_recompiles),
              zero_compiles ? "[PASS]" : "[FAIL: expected 0]");
  std::printf("warm plan %s cold plan (%s)\n",
              same_plan ? "==" : "!=", warm.config.ToString().c_str());

  if (keep) {
    std::printf("artifact kept at %s\n", artifact_path.c_str());
  } else {
    std::remove(artifact_path.c_str());
  }
  return speedup >= 2.0 && zero_compiles && same_plan;
}

const char* ParseStrFlag(int argc, char** argv, const char* flag) {
  size_t len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, len) == 0) return argv[i] + len;
  }
  return nullptr;
}

int ParseIntFlag(int argc, char** argv, const char* flag, int fallback) {
  size_t len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, len) == 0) {
      return std::atoi(argv[i] + len);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  int clients = ParseIntFlag(argc, argv, "--clients=", 0);
  int jobs_per_client = ParseIntFlag(argc, argv, "--jobs=", 12);
  int grid_points = ParseIntFlag(argc, argv, "--grid=", 45);
  const char* artifact = ParseStrFlag(argc, argv, "--artifact=");
  bool cold_start_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cold-start") == 0) cold_start_only = true;
  }
  if (cold_start_only) {
    return RunColdStart(artifact ? artifact : "") ? 0 : 1;
  }
  if (clients > 0) {
    RunMultiClient(clients, std::max(1, jobs_per_client),
                   std::max(2, grid_points));
    return 0;
  }
  PrintHeader("Figure 12: end-to-end throughput, Opt vs B-LL");
  // (a) LinregDS, scenario S, dense1000 (800 MB).
  RunWorkload("(a) LinregDS, S dense1000", "linreg_ds.dml", 100000000LL,
              1000, 1.0);
  // (b) L2SVM, scenario M, sparse100 (8 GB cells, 1% sparse).
  RunWorkload("(b) L2SVM, M sparse100", "l2svm.dml", 1000000000LL, 100,
              0.01);
  // (c) cold start via the persistent plan artifact store (informative
  // here; --cold-start runs it standalone and gates on the result).
  RunColdStart(artifact ? artifact : "");
  return 0;
}

// Table 1: overview of ML program characteristics — source lines,
// number of program blocks, and whether sizes remain unknown during
// initial compilation ('?'). Script-level parameters mirror the paper's
// defaults (icpt=0, lambda=0.01, tol=1e-9, maxi=5).

#include "bench_common.h"

using namespace relm;         // NOLINT
using namespace relm::bench;  // NOLINT

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  PrintHeader("Table 1: ML program characteristics");
  std::printf("%-12s %8s %8s %4s %5s %8s %8s %6s\n", "Prog.", "#Lines",
              "#Blocks", "?", "Icp.", "lambda", "eps", "Maxi.");
  struct Row {
    const char* label;
    const char* file;
    const char* eps;
    const char* maxi;
  };
  for (const Row& row : std::vector<Row>{
           {"LinregDS", "linreg_ds.dml", "N/A", "N/A"},
           {"LinregCG", "linreg_cg.dml", "1e-9", "5"},
           {"L2SVM", "l2svm.dml", "1e-9", "5/inf"},
           {"MLogreg", "mlogreg.dml", "1e-9", "5/5"},
           {"GLM", "glm.dml", "1e-9", "5/5"}}) {
    Session sys = UncachedSession();
    RegisterData(&sys, 1000000000LL, 1000, 1.0);
    auto prog = MustCompile(&sys, row.file);
    std::printf("%-12s %8d %8d %4s %5d %8.2f %8s %6s\n", row.label,
                prog->source_lines(), prog->total_blocks(),
                prog->has_unknowns() ? "Y" : "N", 0, 0.01, row.eps,
                row.maxi);
  }
  std::printf(
      "\nExpected: MLogreg and GLM carry unknowns ('?') from table() and"
      "\nUDF outputs; GLM is by far the largest program.\n");
  return 0;
}

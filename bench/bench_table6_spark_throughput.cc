// Table 6 (Appendix D): throughput vs number of users — SystemML with
// the resource optimizer on MR vs SystemML-on-Spark (Full plan) whose
// static executors occupy the whole cluster. L2SVM, scenario S (800 MB).
// Expected shape: Opt's small AM containers scale to tens of apps/min;
// a single Spark application already holds every executor, so its
// throughput stays flat regardless of user count.

#include "bench_common.h"
#include "mrsim/throughput.h"
#include "spark/spark_model.h"

using namespace relm;         // NOLINT
using namespace relm::bench;  // NOLINT

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  PrintHeader("Table 6: throughput, MR + Opt vs Spark Full (L2SVM, S)");
  Session sys = UncachedSession();
  RegisterData(&sys, 100000000LL, 1000, 1.0);
  auto prog = MustCompile(&sys, "l2svm.dml");
  auto outcome = sys.Optimize(prog.get());
  if (!outcome.ok()) return 1;
  ResourceConfig config = outcome->config;
  double solo_mr = MeasureClone(&sys, *prog, config).elapsed_seconds;
  const ClusterConfig& cc = sys.cluster();
  int64_t c_opt = cc.ContainerRequestForHeap(config.cp_heap);

  SparkConfig spark;
  spark.driver_memory = 512 * kMB;  // as reduced in the paper's setup
  SparkWorkload workload;
  workload.x = MatrixCharacteristics::Dense(100000, 1000);
  double solo_spark =
      EstimateSparkRun(spark, cc, workload, SparkPlan::kFull).seconds;
  int spark_conc = MaxConcurrentSparkApps(spark, cc);

  std::printf("MR+Opt solo: %.1fs (AM %s); Spark Full solo: %.1fs "
              "(max %d concurrent app%s)\n\n",
              solo_mr, FormatBytes(c_opt).c_str(), solo_spark,
              spark_conc, spark_conc == 1 ? "" : "s");
  std::printf("%8s %16s %18s %10s\n", "#users", "MR+Opt[app/min]",
              "Spark Full[app/min]", "speedup");
  for (int users : {1, 8, 32}) {
    auto t_mr = SimulateThroughput(cc, c_opt, solo_mr, users);
    // Spark applications occupy the whole cluster: spark_conc at a time,
    // back to back. With queued users, driver/executor spin-up overlaps
    // the previous application's tail (the paper's slight throughput
    // increase beyond one user).
    double overlap = users > spark_conc ? spark.app_startup_seconds : 0.0;
    double spark_apm =
        spark_conc * 60.0 / std::max(1.0, solo_spark - overlap);
    std::printf("%8d %16.1f %18.2f %9.1fx\n", users,
                t_mr.apps_per_minute, spark_apm,
                t_mr.apps_per_minute / spark_apm);
  }
  return 0;
}

// Extension harness: throughput of the unified execution engine.
// Four tables:
//   (a) kernel speedup — tiled matmult / elementwise / row-aggregate
//       wall-clock at 1/2/4/8 workers against the serial baseline;
//   (b) end-to-end speedup — a matmult-heavy script and a real mlogreg
//       training run through the interpreter at 1/2/8 workers;
//   (c) spill overhead — the same run unmanaged vs under shrinking CP
//       budgets, with the MemoryManager's spill/reload traffic;
//   (d) cold start — time to the first optimized plan for a process
//       that recompiles from scratch vs one hydrating the persistent
//       plan artifact store.
// All numbers are host wall-clock (the engine does real work, unlike
// the simulator benches); speedups depend on available cores.
// `--json-out=PATH` exports every row as JSON; `--trace-out=PATH`
// dumps engine spans and exec.* metrics as Chrome-trace JSON;
// `--metrics-out=PATH` dumps a metrics + per-operator-profile JSONL
// snapshot (scripts/bench_gate.py compares the JSON export against the
// committed BENCH_exec.json baseline).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_common.h"
#include "common/random.h"
#include "core/plan_cache.h"
#include "exec/worker_pool.h"
#include "store/plan_artifact_store.h"
#include "hdfs/file_system.h"
#include "hops/ml_program.h"
#include "matrix/kernels.h"
#include "runtime/interpreter.h"

namespace relm {
namespace bench {
namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::ostringstream& Json() {
  static std::ostringstream json;
  return json;
}

void JsonRow(const std::string& table, const std::string& label,
             int workers, double ms, double speedup, int64_t spill_bytes,
             int64_t reload_bytes, int64_t parallel_blocks = 0,
             int64_t tasks_scheduled = 0) {
  std::ostringstream& json = Json();
  if (json.tellp() > 0) json << ",\n";
  json << "  {\"table\":\"" << table << "\",\"label\":\"" << label
       << "\",\"workers\":" << workers << ",\"ms\":" << ms
       << ",\"speedup\":" << speedup << ",\"spill_bytes\":" << spill_bytes
       << ",\"reload_bytes\":" << reload_bytes
       << ",\"parallel_blocks\":" << parallel_blocks
       << ",\"tasks_scheduled\":" << tasks_scheduled << "}";
}

// ---- (a) kernel speedup ------------------------------------------------

double TimeKernel(const std::function<void()>& body, int reps) {
  body();  // warm up
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) body();
  return MsSince(t0) / reps;
}

void KernelTable() {
  Random rng(42);
  const MatrixBlock a = MatrixBlock::Rand(512, 512, 1.0, -1, 1, &rng);
  const MatrixBlock b = MatrixBlock::Rand(512, 512, 1.0, -1, 1, &rng);
  const MatrixBlock v = MatrixBlock::Rand(2000, 2000, 1.0, -1, 1, &rng);

  struct Kernel {
    const char* name;
    std::function<void()> body;
    int reps;
  };
  const Kernel kernels[] = {
      {"matmult_512", [&] { (void)MatMult(a, b); }, 3},
      {"elementwise_4M",
       [&] { (void)ElementwiseBinary(BinOp::kMul, v, v); }, 5},
      {"rowsums_4M", [&] { (void)AggregateAxis(AggOp::kSum, AggDir::kRow, v); },
       5},
  };

  std::printf("(a) kernel wall-clock vs workers\n");
  std::printf("%-16s %10s %10s %10s %10s %8s\n", "kernel", "w=1(ms)",
              "w=2(ms)", "w=4(ms)", "w=8(ms)", "speedup");
  for (const Kernel& k : kernels) {
    double ms[4] = {0, 0, 0, 0};
    const int counts[4] = {1, 2, 4, 8};
    for (int i = 0; i < 4; ++i) {
      exec::SetWorkers(counts[i]);
      ms[i] = TimeKernel(k.body, k.reps);
      JsonRow("kernel", k.name, counts[i], ms[i], ms[0] / ms[i], 0, 0);
    }
    exec::SetWorkers(1);
    std::printf("%-16s %10.2f %10.2f %10.2f %10.2f %7.2fx\n", k.name,
                ms[0], ms[1], ms[2], ms[3], ms[0] / ms[3]);
  }
  std::printf("\n");
}

// ---- (b) end-to-end speedup --------------------------------------------

struct RunResult {
  double ms = 0.0;
  exec::ExecStats stats;
};

RunResult RunScript(const std::string& source, const ScriptArgs& args,
                    const std::function<void(SimulatedHdfs*)>& setup,
                    int workers, int64_t budget) {
  SimulatedHdfs hdfs;
  setup(&hdfs);
  auto prog = MlProgram::Compile(source, args, &hdfs);
  if (!prog.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 prog.status().ToString().c_str());
    std::exit(1);
  }
  Interpreter interp(prog->get(), &hdfs);
  exec::ExecOptions opts;
  opts.workers = workers;
  opts.memory_budget = budget;
  interp.set_exec_options(opts);
  auto t0 = std::chrono::steady_clock::now();
  Status st = interp.Run();
  RunResult out;
  out.ms = MsSince(t0);
  out.stats = interp.exec_stats();
  if (!st.ok()) {
    std::fprintf(stderr, "run failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return out;
}

void ChainSetup(SimulatedHdfs* hdfs) {
  Random rng(42);
  hdfs->PutMatrix("/data/X", MatrixBlock::Rand(384, 384, 1.0, -1, 1, &rng));
}

const char kChainScript[] =
    "X = read($X)\n"
    "A = X %*% X\n"
    "B = t(X) %*% X\n"
    "C = X %*% t(X)\n"
    "s = sum(A) + sum(B) + sum(C)\n"
    "print(\"s=\" + s)\n";

void MlogregSetup(SimulatedHdfs* hdfs) {
  Random rng(42);
  const int n = 2000;
  MatrixBlock x(n, 32, false);
  MatrixBlock y(n, 1, false);
  for (int64_t i = 0; i < n; ++i) {
    int c = static_cast<int>(i % 3);
    for (int64_t j = 0; j < 32; ++j) {
      x.Set(i, j, c * 2.0 + rng.Uniform(-1, 1));
    }
    y.Set(i, 0, c + 1);
  }
  hdfs->PutMatrix("/data/X", x);
  hdfs->PutMatrix("/data/y", y);
}

std::string ReadScriptFile(const std::string& name) {
  std::ifstream in(ScriptPath(name));
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void EndToEndTable() {
  const ScriptArgs mlog_args{{"X", "/data/X"}, {"Y", "/data/y"},
                             {"B", "/out/B"},  {"moi", "10"},
                             {"mii", "5"},     {"reg", "0.001"}};
  struct Case {
    const char* name;
    std::string source;
    ScriptArgs args;
    void (*setup)(SimulatedHdfs*);
  };
  const Case cases[] = {
      {"matmult_chain", kChainScript, {{"X", "/data/X"}}, ChainSetup},
      {"mlogreg_real", ReadScriptFile("mlogreg.dml"), mlog_args,
       MlogregSetup},
  };

  std::printf("(b) end-to-end wall-clock vs workers\n");
  std::printf("%-16s %10s %10s %10s %8s\n", "program", "w=1(ms)",
              "w=2(ms)", "w=8(ms)", "speedup");
  for (const Case& c : cases) {
    const int counts[3] = {1, 2, 8};
    double ms[3] = {0, 0, 0};
    for (int i = 0; i < 3; ++i) {
      exec::SetWorkers(counts[i]);
      RunResult r = RunScript(c.source, c.args, c.setup, counts[i], 0);
      ms[i] = r.ms;
      JsonRow("end_to_end", c.name, counts[i], ms[i], ms[0] / ms[i], 0, 0,
              r.stats.parallel_blocks, r.stats.tasks_scheduled);
    }
    exec::SetWorkers(1);
    std::printf("%-16s %10.2f %10.2f %10.2f %7.2fx\n", c.name, ms[0],
                ms[1], ms[2], ms[0] / ms[2]);
  }
  std::printf("\n");
}

// ---- (c) spill overhead ------------------------------------------------

void SpillTable() {
  // Three loop-carried 1.3 MB matrices; budgets below 4 MB force the
  // MemoryManager to spill on every iteration.
  const char kLoopScript[] =
      "X = read($X)\n"
      "A = X %*% X\n"
      "B = t(X)\n"
      "for (i in 1:6) {\n"
      "  A = t(A) + X\n"
      "  B = B %*% X\n"
      "}\n"
      "print(\"a=\" + sum(A))\n"
      "print(\"b=\" + sum(B))\n";
  auto setup = [](SimulatedHdfs* hdfs) {
    Random rng(42);
    hdfs->PutMatrix("/data/X",
                    MatrixBlock::Rand(400, 400, 1.0, -1, 1, &rng));
  };
  const struct {
    const char* label;
    int64_t budget;
  } budgets[] = {
      {"unlimited", 0},
      {"4MB", 4 << 20},
      {"2MB", 2 << 20},
      {"1.5MB", 3 << 19},
  };

  std::printf("(c) spill overhead under shrinking CP budgets\n");
  std::printf("%-12s %10s %12s %12s %10s\n", "budget", "ms",
              "spill_bytes", "reload_bytes", "overhead");
  double base_ms = 0.0;
  for (const auto& b : budgets) {
    RunResult r =
        RunScript(kLoopScript, {{"X", "/data/X"}}, setup, 1, b.budget);
    if (b.budget == 0) base_ms = r.ms;
    JsonRow("spill", b.label, 1, r.ms, base_ms / r.ms,
            r.stats.spill_bytes, r.stats.reload_bytes,
            r.stats.parallel_blocks, r.stats.tasks_scheduled);
    std::printf("%-12s %10.2f %12lld %12lld %9.2fx\n", b.label, r.ms,
                static_cast<long long>(r.stats.spill_bytes),
                static_cast<long long>(r.stats.reload_bytes),
                r.ms / base_ms);
  }
  std::printf("\n");
}

// ---- (d) cold start ----------------------------------------------------

/// One optimizer "process" against the persistent plan artifact at
/// `path`: a fresh PlanCache whose only head start is the artifact.
/// Compiles and optimizes a three-script mix on the paper's fine
/// 45-point grid (one script alone finishes in ~3 ms, too little wall
/// clock for the perf gate to judge). Returns the wall-clock to the
/// last optimized plan and the cache counters proving where the work
/// went.
double ColdStartProcessMs(const std::string& path, PlanCache::Stats* stats) {
  PlanCache cache;
  Session sys(ClusterConfig::PaperCluster(),
              SessionOptions().WithPlanCache(&cache).WithArtifactStore(
                  ArtifactStoreOptions().WithPath(path)));
  if (!sys.artifact_store_status().ok()) {
    std::fprintf(stderr, "artifact store unavailable: %s\n",
                 sys.artifact_store_status().ToString().c_str());
    std::exit(1);
  }
  RegisterData(&sys, 100000000LL, 1000, 1.0);  // S dense1000
  auto t0 = std::chrono::steady_clock::now();
  for (const char* script : {"linreg_ds.dml", "linreg_cg.dml", "l2svm.dml"}) {
    auto prog = MustCompile(&sys, script);
    auto outcome =
        sys.Optimize(prog.get(), OptimizerOptions().WithGridPoints(45));
    if (!outcome.ok()) {
      std::fprintf(stderr, "optimize failed for %s: %s\n", script,
                   outcome.status().ToString().c_str());
      std::exit(1);
    }
  }
  double ms = MsSince(t0);
  Status flushed = sys.FlushArtifacts();
  if (!flushed.ok()) {
    std::fprintf(stderr, "artifact flush failed: %s\n",
                 flushed.ToString().c_str());
    std::exit(1);
  }
  *stats = cache.stats();
  return ms;
}

void ColdStartTable() {
  const std::string path =
      "/tmp/relm_bench_cold_" +
      std::to_string(static_cast<long long>(getpid())) + ".relmplan";
  std::remove(path.c_str());

  PlanCache::Stats cold_stats;
  double cold_ms = ColdStartProcessMs(path, &cold_stats);
  // Average several warm processes: each one re-opens and re-hydrates
  // the artifact from scratch, so the mean is a stable gate row even
  // though a single warm start is only a few milliseconds.
  const int kWarmReps = 5;
  PlanCache::Stats warm_stats;
  double warm_ms = 0.0;
  for (int r = 0; r < kWarmReps; ++r) {
    warm_ms += ColdStartProcessMs(path, &warm_stats);
  }
  warm_ms /= kWarmReps;
  std::remove(path.c_str());

  double speedup = cold_ms / warm_ms;
  JsonRow("cold_start", "mix3_cold", 1, cold_ms, 1.0, 0, 0);
  JsonRow("cold_start", "mix3_warm", 1, warm_ms, speedup, 0, 0);

  std::printf("(d) cold start: persistent plan artifacts\n");
  std::printf("%-6s %12s %10s %12s %12s\n", "proc", "first(ms)",
              "compiles", "store-prog", "store-whatif");
  std::printf("%-6s %12.2f %10lld %12lld %12lld\n", "cold", cold_ms,
              static_cast<long long>(cold_stats.program_misses),
              static_cast<long long>(cold_stats.store_program_hits),
              static_cast<long long>(cold_stats.store_whatif_hits));
  std::printf("%-6s %12.2f %10lld %12lld %12lld\n", "warm", warm_ms,
              static_cast<long long>(warm_stats.program_misses),
              static_cast<long long>(warm_stats.store_program_hits),
              static_cast<long long>(warm_stats.store_whatif_hits));
  std::printf("%-6s %11.2fx %s\n\n", "", speedup,
              speedup >= 2.0 ? "[PASS >= 2x]" : "[below 2x target]");
}

void Run(const std::string& json_out) {
  KernelTable();
  EndToEndTable();
  SpillTable();
  ColdStartTable();
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << "[\n" << Json().str() << "\n]\n";
    std::printf("wrote JSON results to %s\n", json_out.c_str());
  }
}

}  // namespace
}  // namespace bench
}  // namespace relm

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const char* kFlag = "--json-out=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      json_out = argv[i] + std::strlen(kFlag);
    }
  }
  relm::bench::Run(json_out);
  return 0;
}

// Figure 8: end-to-end baseline comparison for LinregCG on scenarios
// XS-L. Expected shape: a large CP memory wins from S/M upward (the
// input is read once and the CG iterations run in memory), so B-LS/B-LL
// beat B-SS/B-SL; Opt matches the winners with a right-sized CP heap.

#include "baseline_comparison.h"

using namespace relm;         // NOLINT
using namespace relm::bench;  // NOLINT

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  PrintHeader("Figure 8: LinregCG vs static baselines, XS-L");
  RunBaselineComparison("linreg_cg.dml", ComparisonOptions{});
  return 0;
}

// Extensions beyond the paper's evaluation (its Sections 2.3 and 6
// discussion items), exercised end to end:
//   (a) offer-based allocation (Mesos-style): optimize over a fixed menu
//       of offered CP containers;
//   (b) CP cores as an additional resource dimension;
//   (c) cluster-utilization-based adaptation: fall back toward
//       single-node in-memory execution when the cluster gets loaded.

#include "bench_common.h"

using namespace relm;         // NOLINT
using namespace relm::bench;  // NOLINT

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  PrintHeader("Extensions: offers, CP cores, utilization adaptation");

  // (a) offer-based allocation, LinregCG 8GB.
  {
    Session sys = UncachedSession();
    RegisterData(&sys, 1000000000LL, 1000, 1.0);
    auto prog = MustCompile(&sys, "linreg_cg.dml");
    ResourceOptimizer opt(sys.cluster(), OptimizerOptions{});
    std::printf("\n(a) offer-based allocation (LinregCG, 8GB dense)\n");
    std::printf("%-34s %-12s %10s\n", "offers", "chosen CP", "est [s]");
    struct OfferSet {
      const char* label;
      std::vector<int64_t> offers;
    };
    for (const OfferSet& set : std::vector<OfferSet>{
             {"{1GB, 4GB, 16GB}", {1 * kGB, 4 * kGB, 16 * kGB}},
             {"{1GB, 2GB} (none fits X)", {1 * kGB, 2 * kGB}},
             {"{32GB} (over-sized)", {32 * kGB}}}) {
      auto cfg = opt.OptimizeForOffers(prog.get(), set.offers);
      if (!cfg.ok()) {
        std::printf("%-34s %s\n", set.label,
                    cfg.status().ToString().c_str());
        continue;
      }
      std::printf("%-34s %-12s %10.1f\n", set.label,
                  FormatBytes(cfg->cp_heap).c_str(),
                  *sys.EstimateCost(prog.get(), *cfg));
    }
  }

  // (b) CP cores dimension, LinregDS forced local vs distributed.
  {
    Session sys = UncachedSession();
    RegisterData(&sys, 1000000000LL, 1000, 1.0);
    auto prog = MustCompile(&sys, "linreg_ds.dml");
    std::printf("\n(b) CP cores (LinregDS, 8GB dense, max CP heap)\n");
    std::printf("%8s %12s %14s\n", "cores", "est [s]", "budget");
    int64_t heap = sys.cluster().MaxHeapSize();
    for (int cores : {1, 2, 4, 8, 12}) {
      ResourceConfig rc(heap, 4 * kGB, cores);
      std::printf("%8d %12.1f %14s\n", cores,
                  *sys.EstimateCost(prog.get(), rc),
                  FormatBytes(rc.CpBudget()).c_str());
    }
    OptimizerOptions multi;
    multi.WithCpCoreOptions({1, 2, 4, 8, 12});
    ResourceOptimizer opt(sys.cluster(), multi);
    auto best = opt.Optimize(prog.get());
    if (best.ok()) {
      std::printf("3-dim optimizer choice: %s + %d core(s), est %.1fs\n",
                  best->ToString().c_str(), best->cp_cores,
                  *sys.EstimateCost(prog.get(), *best));
    }
  }

  // (c) utilization-triggered adaptation, L2SVM 8GB from B-SL.
  {
    Session sys = UncachedSession();
    RegisterData(&sys, 1000000000LL, 1000, 1.0);
    auto prog = MustCompile(&sys, "l2svm.dml");
    ResourceConfig bsl(512 * kMB, GigaBytes(4.4));
    std::printf("\n(c) cluster load jumps to 95%% at t=20s "
                "(L2SVM, 8GB dense, started on B-SL)\n");
    for (bool adapt : {false, true}) {
      SimOptions opts;
      opts.WithNoise(0).WithLoadChange(20.0, 0.95).WithAdaptation(adapt);
      SimResult run = MeasureClone(&sys, *prog, bsl, opts);
      std::printf("  adaptation %-8s elapsed %8.1fs  reopts=%d "
                  "migrations=%d final=%s\n",
                  adapt ? "ENABLED" : "off", run.elapsed_seconds,
                  run.reoptimizations, run.migrations,
                  run.final_config.ToString().c_str());
    }
  }
  return 0;
}

// Figure 15: end-to-end baseline comparison with runtime plan adaptation
// for the two ML programs with initial unknowns (MLogreg with k=2
// classes, GLM), on scenarios S and M across all shapes. Columns:
//   B-LL  — large static baseline,
//   Opt   — initial resource optimization only,
//   ReOpt — initial optimization + runtime re-optimization/migration.
// Expected shape: ReOpt recovers (near) best-baseline performance with
// at most two migrations, and never hurts when no adaptation is needed.

#include <functional>

#include "bench_common.h"

using namespace relm;         // NOLINT
using namespace relm::bench;  // NOLINT

namespace {

void RunProgram(const char* label, const char* script,
                std::function<SymbolMap(int64_t)> oracle_fn) {
  std::printf("\n%s\n", label);
  std::printf("%-4s %-10s %10s %10s %10s %6s\n", "scen", "shape", "B-LL",
              "Opt", "ReOpt", "#migr");
  for (const Scenario& scenario : Scenarios()) {
    if (std::string(scenario.name) != "S" &&
        std::string(scenario.name) != "M") {
      continue;
    }
    for (const Shape& shape : Shapes()) {
      Session sys = UncachedSession();
      RegisterData(&sys, scenario.cells, shape.cols, shape.sparsity);
      auto prog = MustCompile(&sys, script);
      int64_t rows = scenario.cells / shape.cols;
      SymbolMap oracle = oracle_fn ? oracle_fn(rows) : SymbolMap{};

      ResourceConfig bll = sys.StaticBaselines().back().config;
      double t_bll =
          MeasureClone(&sys, *prog, bll, {}, oracle).elapsed_seconds;

      auto outcome = sys.Optimize(prog.get());
      if (!outcome.ok()) continue;
      const ResourceConfig& config = outcome->config;
      double t_opt = MeasureClone(&sys, *prog, config, {}, oracle)
                         .elapsed_seconds +
                     outcome->stats.opt_time_seconds;

      SimResult reopt = MeasureClone(&sys, *prog, config,
                                     SimOptions().WithAdaptation(true),
                                     oracle);
      double t_reopt =
          reopt.elapsed_seconds + outcome->stats.opt_time_seconds;

      std::printf("%-4s %-10s %9.1fs %9.1fs %9.1fs %6d\n", scenario.name,
                  shape.name, t_bll, t_opt, t_reopt, reopt.migrations);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  PrintHeader("Figure 15: runtime plan adaptation (Opt vs ReOpt)");
  RunProgram("MLogreg (k=2 classes)", "mlogreg.dml",
             [](int64_t rows) { return MlogregOracle(rows, 2); });
  RunProgram("GLM (Poisson/log)", "glm.dml", nullptr);
  return 0;
}

// Extension harness: the pluggable scheduling subsystem (DESIGN.md §16).
// Two tables:
//   (a) burst — a mixed-tenant burst through a one-worker service, run
//       once per policy. Tenant "batch" floods cold-compile jobs with
//       no deadline; tenant "svc" submits warm-cache jobs with a
//       deadline calibrated from a measured cold compile (so the shape
//       is machine-independent, sanitizers included). Round-robin
//       interleaves the tenants and the later svc jobs sink behind the
//       flood past their deadlines; cost-aware (svc at priority,
//       "batch" quota-bounded) dispatches every svc job first and
//       misses none.
//   (b) chaos — cost-aware under real execution on a two-node cluster
//       where every container fills a node: straggler stalls keep
//       containers held while rolling node-loss injections and
//       priority preemption reclaim the over-quota co-tenant's grants.
//       The in-quota tenant's deadlines must hold regardless.
// The binary is also the scheduling SLO gate: it exits non-zero when
// cost-aware misses an in-quota deadline, fails to beat round-robin on
// the miss count, or the chaos phase never observes a preemption.
// `--json-out=PATH` exports every row as JSON (the "sched" table is
// compared against BENCH_sched.json by scripts/bench_gate.py; the
// chaos row goes to "sched_chaos", informative but ungated — its
// wall-clock depends on fault timing); `--quick` shrinks the workload
// for CI smoke runs.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/bytes.h"
#include "common/random.h"
#include "core/plan_cache.h"
#include "exec/worker_pool.h"
#include "matrix/kernels.h"
#include "serve/job_service.h"

namespace relm {
namespace bench {
namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::ostringstream& Json() {
  static std::ostringstream json;
  return json;
}

void JsonRow(const std::string& table, const std::string& label,
             int workers, double ms, int64_t svc_misses,
             double svc_p95_wait_ms, int64_t svc_completed,
             int64_t preempted, int64_t held_over_quota) {
  std::ostringstream& json = Json();
  if (json.tellp() > 0) json << ",\n";
  json << "  {\"table\":\"" << table << "\",\"label\":\"" << label
       << "\",\"workers\":" << workers << ",\"ms\":" << ms
       << ",\"svc_misses\":" << svc_misses
       << ",\"svc_p95_wait_ms\":" << svc_p95_wait_ms
       << ",\"svc_completed\":" << svc_completed
       << ",\"preempted\":" << preempted
       << ",\"held_over_quota\":" << held_over_quota << "}";
}

std::string MustReadScript(const std::string& name) {
  std::ifstream in(ScriptPath(name));
  if (!in.good()) {
    std::fprintf(stderr, "cannot read script %s\n", name.c_str());
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

ScriptArgs LinregArgs() {
  return ScriptArgs{{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"}};
}

/// Warm-path service job: shares one script signature across the whole
/// run, so after one warm-up every instance is a sub-millisecond plan
/// cache hit.
serve::JobRequest SvcRequest(const std::string& source) {
  serve::JobRequest request;
  request.source = source;
  request.args = LinregArgs();
  request.inputs = {{"/data/X", 1000000, 100, 1.0},
                    {"/data/y", 1000000, 1, 1.0}};
  return request;
}

/// Cold-path batch job: `base` gives each instance its own input paths
/// and therefore its own script signature — every one is a full
/// (milliseconds-scale) compile, never a cache hit.
serve::JobRequest ColdBatchRequest(const std::string& source,
                                   const std::string& base) {
  serve::JobRequest request;
  request.source = source;
  request.args =
      ScriptArgs{{"X", base + "/X"}, {"Y", base + "/y"}, {"B", "/out/B"}};
  request.inputs = {{base + "/X", 1000000, 100, 1.0},
                    {base + "/y", 1000000, 1, 1.0}};
  return request;
}

serve::JobHandle MustSubmit(serve::JobService* service,
                            const std::string& tenant,
                            serve::JobRequest request) {
  auto handle = service->Submit(tenant, std::move(request));
  if (!handle.ok()) {
    std::fprintf(stderr, "submit failed for %s: %s\n", tenant.c_str(),
                 handle.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*handle);
}

// ---- (a) burst: round_robin vs cost_aware ------------------------------

struct BurstConfig {
  int batch_jobs = 12;
  int svc_jobs = 8;
};

struct BurstResult {
  double wall_ms = 0.0;
  double t_batch_ms = 0.0;    // calibrated cold-compile service time
  double deadline_ms = 0.0;   // svc deadline derived from it
  double svc_p95_wait_ms = 0.0;
  int64_t svc_misses = 0;
  int64_t svc_completed = 0;
  int64_t batch_completed = 0;
  int64_t held_over_quota = 0;
};

BurstResult RunBurst(sched::SchedulerPolicy policy,
                     const BurstConfig& cfg) {
  const std::string svc_source = MustReadScript("linreg_ds.dml");
  const std::string batch_source = MustReadScript("linreg_cg.dml");
  PlanCache cache;
  serve::ServeOptions options;
  options.WithWorkers(1).WithPlanCache(&cache).WithScheduler(policy);
  if (policy == sched::SchedulerPolicy::kCostAware) {
    // One-byte memory quota: "batch" is over quota whenever it holds
    // any container, so its queued work defers to "svc".
    options.WithTenantQuota("batch", sched::TenantQuota{1, 0});
  }
  serve::JobService service(ClusterConfig::PaperCluster(), options);
  if (!service.startup_status().ok()) {
    std::fprintf(stderr, "service startup failed: %s\n",
                 service.startup_status().ToString().c_str());
    std::exit(1);
  }

  // Warm the svc script's plan so every raced svc job is a uniform
  // cache hit.
  if (!MustSubmit(&service, "warm", SvcRequest(svc_source)).Await().ok()) {
    std::fprintf(stderr, "warm-up job failed\n");
    std::exit(1);
  }
  // Calibrate one cold compile of the batch script (max of two pilots,
  // so a lucky fast pilot cannot produce an unmeetable deadline).
  BurstResult result;
  for (int i = 0; i < 2; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    if (!MustSubmit(&service, "warm",
                    ColdBatchRequest(batch_source,
                                     "/cal" + std::to_string(i)))
             .Await()
             .ok()) {
      std::fprintf(stderr, "calibration job failed\n");
      std::exit(1);
    }
    result.t_batch_ms = std::max(result.t_batch_ms, MsSince(t0));
  }
  // Deadline budget per svc job: 3.5 cold compiles. Under round-robin
  // the k-th svc job waits ~(k+1) batch compiles, so jobs beyond the
  // third miss; under cost-aware it waits at most the in-flight batch
  // job plus earlier (sub-millisecond) svc jobs — ~3x headroom.
  result.deadline_ms = 3.5 * result.t_batch_ms;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<serve::JobHandle> batch_handles;
  for (int i = 0; i < cfg.batch_jobs; ++i) {
    batch_handles.push_back(MustSubmit(
        &service, "batch",
        ColdBatchRequest(batch_source, "/b" + std::to_string(i))));
  }
  std::vector<serve::JobHandle> svc_handles;
  for (int i = 0; i < cfg.svc_jobs; ++i) {
    serve::JobRequest request = SvcRequest(svc_source);
    request.deadline_seconds = result.deadline_ms / 1000.0;
    request.priority = 5;
    svc_handles.push_back(MustSubmit(&service, "svc", std::move(request)));
  }
  service.Drain();
  result.wall_ms = MsSince(t0);

  for (serve::JobHandle& handle : batch_handles) {
    if (!handle.Await().ok()) {
      std::fprintf(stderr, "batch job failed unexpectedly\n");
      std::exit(1);
    }
  }
  for (serve::JobHandle& handle : svc_handles) {
    auto outcome = handle.Await();
    // Deadline misses are the measured signal; any other failure is a
    // harness bug.
    if (!outcome.ok() &&
        outcome.status().code() != StatusCode::kDeadlineExceeded) {
      std::fprintf(stderr, "svc job failed: %s\n",
                   outcome.status().ToString().c_str());
      std::exit(1);
    }
  }
  serve::JobService::Stats stats = service.stats();
  result.batch_completed = static_cast<int64_t>(cfg.batch_jobs);
  auto it = stats.per_tenant.find("svc");
  if (it != stats.per_tenant.end()) {
    result.svc_misses = it->second.deadline_misses;
    result.svc_completed = it->second.completed;
    result.svc_p95_wait_ms = it->second.wait_ms.p95;
  }
  result.held_over_quota = stats.sched.held_over_quota;
  return result;
}

// ---- (b) chaos: node loss + co-tenant preemption -----------------------

struct ChaosResult {
  double wall_ms = 0.0;
  int64_t preempted = 0;
  int64_t svc_misses = 0;
  int64_t svc_completed = 0;
  int64_t batch_resolved = 0;
  bool timed_out = false;
};

/// Deterministic small regression data with real payloads (the chaos
/// phase executes for real; simulated runs never hold containers long
/// enough to preempt).
void RegisterRealRegressionData(Session* session) {
  Random rng(42);
  MatrixBlock x = MatrixBlock::Rand(200, 8, 1.0, -1, 1, &rng);
  MatrixBlock beta = MatrixBlock::Rand(8, 1, 1.0, -2, 2, &rng);
  MatrixBlock y = *MatMult(x, beta);
  if (!session->RegisterMatrix("/data/X", std::move(x)).ok() ||
      !session->RegisterMatrix("/data/y", std::move(y)).ok()) {
    std::fprintf(stderr, "matrix registration failed\n");
    std::exit(1);
  }
}

ChaosResult RunChaos(int batch_jobs, int svc_jobs) {
  const std::string source = MustReadScript("linreg_ds.dml");
  // Two-node cluster where every AM container rounds up to a full
  // node: a third concurrent allocation always contends, so in-quota
  // grants go through preemption.
  ClusterConfig cc;
  cc.num_worker_nodes = 2;
  cc.memory_per_node = 2 * kGB;
  cc.min_allocation = 2 * kGB;
  cc.max_allocation = 2 * kGB;
  // Stragglers (every parallel task stalls 1ms) keep containers held
  // long enough for injections to catch live grants.
  exec::FaultPolicy chaos;
  chaos.WithSeed(7)
      .WithRate(exec::FaultSite::kHdfsRead, 0.2)
      .WithRate(exec::FaultSite::kTaskStall, 1.0)
      .WithStallMicros(1000);
  exec::SetWorkers(2);  // task-site faults fire on the parallel path only
  PlanCache cache;
  serve::JobService service(
      cc, serve::ServeOptions()
              .WithWorkers(3)
              .WithSimulation(false)
              .WithExecWorkers(2)
              .WithScheduler(sched::SchedulerPolicy::kCostAware)
              .WithTenantQuota("batch", sched::TenantQuota{1, 0})
              .WithFaultPolicy(chaos)
              .WithRetry(RetryPolicy()
                             .WithInitialBackoffSeconds(0.001)
                             .WithMaxBackoffSeconds(0.01))
              .WithPlanCache(&cache));
  if (!service.startup_status().ok()) {
    std::fprintf(stderr, "chaos service startup failed: %s\n",
                 service.startup_status().ToString().c_str());
    std::exit(1);
  }
  RegisterRealRegressionData(&service.session());

  const auto t0 = std::chrono::steady_clock::now();
  // No InputSpec list here: metadata registration would replace the
  // real payloads registered above.
  const auto real_request = [&source] {
    serve::JobRequest request;
    request.source = source;
    request.args = LinregArgs();
    request.execute_real = true;
    request.max_attempts = 10;
    return request;
  };
  std::vector<serve::JobHandle> batch_handles;
  for (int i = 0; i < batch_jobs; ++i) {
    batch_handles.push_back(MustSubmit(&service, "batch", real_request()));
  }
  std::vector<serve::JobHandle> svc_handles;
  for (int i = 0; i < svc_jobs; ++i) {
    serve::JobRequest request = real_request();
    request.deadline_seconds = 120.0;
    request.priority = 5;
    svc_handles.push_back(MustSubmit(&service, "svc", std::move(request)));
  }
  // Rolling node loss until at least one live container has been
  // reclaimed (injected kills and priority preemptions both count),
  // bounded by a wall-clock guard so a wedged run reports instead of
  // hanging.
  ChaosResult result;
  const int total = batch_jobs + svc_jobs;
  int node = 0;
  while (true) {
    if (MsSince(t0) > 60000.0) {
      result.timed_out = true;
      break;
    }
    serve::JobService::Stats s = service.stats();
    if (s.completed + s.failed + s.cancelled >= total) break;
    if (s.preempted == 0) {
      service.InjectNodeLoss(node);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      if (!service.RestoreNode(node).ok()) {
        std::fprintf(stderr, "node restore failed\n");
        std::exit(1);
      }
      node ^= 1;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  service.Drain();
  result.wall_ms = MsSince(t0);

  for (serve::JobHandle& handle : svc_handles) {
    auto outcome = handle.Await();
    if (!outcome.ok()) {
      std::fprintf(stderr, "in-quota chaos job failed: %s\n",
                   outcome.status().ToString().c_str());
    }
  }
  // Over-quota work resolves as success or a typed retryable error when
  // chaos + preemption burned its attempt budget; either counts as
  // resolved.
  for (serve::JobHandle& handle : batch_handles) {
    auto outcome = handle.Await();
    if (outcome.ok() ||
        outcome.status().code() == StatusCode::kUnavailable ||
        outcome.status().code() == StatusCode::kOverloaded) {
      result.batch_resolved++;
    }
  }
  serve::JobService::Stats stats = service.stats();
  result.preempted = stats.preempted;
  auto it = stats.per_tenant.find("svc");
  if (it != stats.per_tenant.end()) {
    result.svc_misses = it->second.deadline_misses;
    result.svc_completed = it->second.completed;
  }
  service.Shutdown();
  exec::SetWorkers(1);  // restore the process-wide serial default
  return result;
}

// ---- driver ------------------------------------------------------------

bool Check(bool ok, const char* what) {
  std::printf("  %-58s %s\n", what, ok ? "[PASS]" : "[FAIL]");
  return ok;
}

int Run(const std::string& json_out, bool quick) {
  PrintHeader("Scheduling: cost-aware multi-tenant SLO vs round-robin");
  BurstConfig cfg;
  if (quick) {
    cfg.batch_jobs = 8;
    cfg.svc_jobs = 4;
  }
  std::printf("\n(a) mixed-tenant burst: %d cold batch + %d deadline svc "
              "jobs, 1 worker\n",
              cfg.batch_jobs, cfg.svc_jobs);
  BurstResult rr = RunBurst(sched::SchedulerPolicy::kRoundRobin, cfg);
  BurstResult ca = RunBurst(sched::SchedulerPolicy::kCostAware, cfg);
  std::printf("%-14s %10s %12s %10s %12s %14s %10s\n", "policy",
              "wall(ms)", "deadline(ms)", "misses", "svc done",
              "p95 wait(ms)", "held OQ");
  const auto print_burst = [](const char* name, const BurstResult& r,
                              int svc_jobs) {
    std::printf("%-14s %10.1f %12.1f %6lld/%-3d %9lld/%-2d %14.2f %10lld\n",
                name, r.wall_ms, r.deadline_ms,
                static_cast<long long>(r.svc_misses), svc_jobs,
                static_cast<long long>(r.svc_completed), svc_jobs,
                r.svc_p95_wait_ms,
                static_cast<long long>(r.held_over_quota));
  };
  print_burst("round_robin", rr, cfg.svc_jobs);
  print_burst("cost_aware", ca, cfg.svc_jobs);
  JsonRow("sched", "burst_round_robin", 1, rr.wall_ms, rr.svc_misses,
          rr.svc_p95_wait_ms, rr.svc_completed, 0, rr.held_over_quota);
  JsonRow("sched", "burst_cost_aware", 1, ca.wall_ms, ca.svc_misses,
          ca.svc_p95_wait_ms, ca.svc_completed, 0, ca.held_over_quota);

  const int chaos_batch = quick ? 4 : 6;
  const int chaos_svc = quick ? 2 : 3;
  std::printf("\n(b) chaos: node loss + preemption, %d batch + %d svc "
              "real-exec jobs, cost_aware\n",
              chaos_batch, chaos_svc);
  ChaosResult chaos = RunChaos(chaos_batch, chaos_svc);
  std::printf("%-14s %10.1f  preempted=%lld  misses=%lld  svc=%lld/%d  "
              "batch resolved=%lld/%d%s\n",
              "cost_aware", chaos.wall_ms,
              static_cast<long long>(chaos.preempted),
              static_cast<long long>(chaos.svc_misses),
              static_cast<long long>(chaos.svc_completed), chaos_svc,
              static_cast<long long>(chaos.batch_resolved), chaos_batch,
              chaos.timed_out ? "  [TIMED OUT]" : "");
  JsonRow("sched_chaos", "chaos_cost_aware", 3, chaos.wall_ms,
          chaos.svc_misses, 0.0, chaos.svc_completed, chaos.preempted, 0);

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << "[\n" << Json().str() << "\n]\n";
    std::printf("\nwrote JSON results to %s\n", json_out.c_str());
  }

  std::printf("\nscheduling SLO gate:\n");
  bool pass = true;
  pass &= Check(ca.svc_misses == 0, "cost_aware: zero in-quota misses");
  pass &= Check(ca.svc_completed == cfg.svc_jobs,
                "cost_aware: every svc job completed");
  pass &= Check(rr.svc_misses > ca.svc_misses,
                "cost_aware beats round_robin on deadline misses");
  pass &= Check(chaos.preempted >= 1,
                "chaos: >= 1 container preempted/reclaimed");
  pass &= Check(chaos.svc_misses == 0,
                "chaos: zero in-quota misses under node loss");
  pass &= Check(chaos.svc_completed == chaos_svc && !chaos.timed_out,
                "chaos: every in-quota job completed in time");
  std::printf("scheduling gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace relm

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  std::string json_out;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const char* kFlag = "--json-out=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      json_out = argv[i] + std::strlen(kFlag);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  return relm::bench::Run(json_out, quick);
}

// Table 3: optimization details for all ML programs on dense1000 —
// number of block recompilations, cost-model invocations, optimization
// time, and relative overhead w.r.t. total (simulated) execution time.
// Expected shape: sub-second optimization for the small programs,
// growing with program size (GLM largest); relative overhead shrinks
// with data size.

#include <algorithm>

#include "bench_common.h"
#include "core/resource_optimizer.h"

using namespace relm;         // NOLINT
using namespace relm::bench;  // NOLINT

int main(int argc, char** argv) {
  relm::bench::InitBench(argc, argv);
  PrintHeader("Table 3: optimization details, dense1000");
  std::printf("%-10s %-5s %9s %9s %11s %8s\n", "Prog.", "Scen.",
              "# Comp.", "# Cost.", "Opt. Time", "%");
  struct Case {
    const char* script;
    std::vector<std::string> scenarios;
  };
  // Self-describing stats of the largest scenario per program, printed
  // after the table (provenance: m, threads, failure rate, grids).
  std::vector<std::pair<std::string, std::string>> provenance;
  for (const Case& c : std::vector<Case>{
           {"linreg_ds.dml", {"XS", "S", "M", "L", "XL"}},
           {"linreg_cg.dml", {"XS", "S", "M", "L"}},
           {"l2svm.dml", {"XS", "S", "M", "L"}},
           {"mlogreg.dml", {"XS", "S", "M", "L"}},
           {"glm.dml", {"XS", "S", "M", "L"}}}) {
    for (const Scenario& scenario : Scenarios()) {
      if (std::find(c.scenarios.begin(), c.scenarios.end(),
                    scenario.name) == c.scenarios.end()) {
        continue;
      }
      Session sys = UncachedSession();
      RegisterData(&sys, scenario.cells, 1000, 1.0);
      auto prog = MustCompile(&sys, c.script);
      OptimizerStats stats;
      ResourceOptimizer opt(sys.cluster(), OptimizerOptions{});
      auto cfg = opt.Optimize(prog.get(), &stats);
      if (!cfg.ok()) continue;
      // Relative overhead w.r.t. simulated end-to-end execution.
      SimResult run = MeasureClone(&sys, *prog, *cfg);
      double pct = 100.0 * stats.opt_time_seconds /
                   (run.elapsed_seconds + stats.opt_time_seconds);
      std::printf("%-10s %-5s %9lld %9lld %10.3fs %7.2f%%\n", c.script,
                  scenario.name,
                  static_cast<long long>(stats.block_recompiles),
                  static_cast<long long>(stats.cost_invocations),
                  stats.opt_time_seconds, pct);
      if (scenario.name == c.scenarios.back()) {
        provenance.emplace_back(c.script, stats.ToString());
      }
    }
  }
  std::printf("\noptimizer provenance (largest scenario per program):\n");
  for (const auto& [script, line] : provenance) {
    std::printf("  %-10s %s\n", script.c_str(), line.c_str());
  }
  return 0;
}

#ifndef RELM_BENCH_BENCH_COMMON_H_
#define RELM_BENCH_BENCH_COMMON_H_

// Shared helpers for the experiment harnesses that regenerate the
// paper's tables and figures. Each bench binary prints the same rows /
// series the paper reports; absolute numbers come from the cluster
// simulator, so the shapes (who wins, by what factor, where crossovers
// fall) are the reproduction target, not the exact values.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/session.h"
#include "obs/profile.h"
#include "obs/telemetry_sink.h"
#include "obs/trace.h"

namespace relm {
namespace bench {

/// Destination of `--trace-out=`; empty means no dump.
inline std::string& TraceOutPath() {
  static std::string path;
  return path;
}

/// Destination of `--metrics-out=`; empty means no dump.
inline std::string& MetricsOutPath() {
  static std::string path;
  return path;
}

/// Writes one JSONL snapshot line (metrics registry + operator
/// profiles) through a TelemetrySink; registered via atexit by
/// InitBench when `--metrics-out=` is given.
inline void DumpMetricsAtExit() {
  const std::string& path = MetricsOutPath();
  if (path.empty()) return;
  obs::TelemetrySink::Options options;
  options.path = path;
  obs::TelemetrySink sink(options);
  Status st = sink.Flush();
  if (!st.ok()) {
    std::fprintf(stderr, "metrics dump failed: %s\n",
                 st.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "\nwrote metrics+profile snapshot (%zu op cells) to %s\n",
               obs::OpProfileStore::Global().Snapshot().size(), path.c_str());
}

/// Writes the collected telemetry (spans + metrics snapshot) and a text
/// flamegraph summary; registered via atexit by InitBench.
inline void DumpTraceAtExit() {
  const std::string& path = TraceOutPath();
  if (path.empty()) return;
  Status st = Session::DumpTelemetry(path);
  if (!st.ok()) {
    std::fprintf(stderr, "trace dump failed: %s\n", st.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "\nwrote %zu trace events to %s\n",
               obs::Tracer::Global().NumEvents(), path.c_str());
  std::string flame = obs::Tracer::Global().FlamegraphSummary();
  if (!flame.empty()) {
    std::fprintf(stderr, "wall-clock flamegraph:\n%s", flame.c_str());
  }
}

/// Common bench flag handling. `--trace-out=PATH` enables span
/// collection and dumps Chrome-trace JSON (plus a metrics snapshot) at
/// exit. `--metrics-out=PATH` enables operator profiling and dumps one
/// JSONL line of metrics + per-op profiles at exit. Unknown flags are
/// ignored so benches stay forgiving about extra arguments.
inline void InitBench(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* kTraceFlag = "--trace-out=";
    const char* kMetricsFlag = "--metrics-out=";
    if (std::strncmp(arg, kTraceFlag, std::strlen(kTraceFlag)) == 0) {
      TraceOutPath() = arg + std::strlen(kTraceFlag);
      obs::Tracer::Global().SetEnabled(true);
      std::atexit(DumpTraceAtExit);
    } else if (std::strncmp(arg, kMetricsFlag,
                            std::strlen(kMetricsFlag)) == 0) {
      MetricsOutPath() = arg + std::strlen(kMetricsFlag);
      obs::OpProfileStore::Global().set_enabled(true);
      std::atexit(DumpMetricsAtExit);
    }
  }
}

/// Data scenarios of Section 5.1: XS..XL total cells, with 1000 or 100
/// columns and dense (1.0) or sparse (0.01) data.
struct Scenario {
  const char* name;   // "XS".."XL"
  int64_t cells;
};

inline const std::vector<Scenario>& Scenarios() {
  static const std::vector<Scenario> kScenarios = {
      {"XS", 10000000LL},      // 80 MB dense
      {"S", 100000000LL},      // 800 MB
      {"M", 1000000000LL},     // 8 GB
      {"L", 10000000000LL},    // 80 GB
      {"XL", 100000000000LL},  // 800 GB
  };
  return kScenarios;
}

/// The four data shapes of Figures 7-11.
struct Shape {
  const char* name;
  int64_t cols;
  double sparsity;
};

inline const std::vector<Shape>& Shapes() {
  static const std::vector<Shape> kShapes = {
      {"dense1000", 1000, 1.0},
      {"sparse1000", 1000, 0.01},
      {"dense100", 100, 1.0},
      {"sparse100", 100, 0.01},
  };
  return kShapes;
}

/// Fresh Session with plan caching disabled: per-iteration costs
/// (recompiles, cost invocations) match the pre-caching system, which
/// the benchmark baselines depend on. The harnesses that *measure*
/// caching (bench_fig12, cold-start) construct cached sessions
/// explicitly instead.
inline Session UncachedSession(
    ClusterConfig cc = ClusterConfig::PaperCluster()) {
  return Session(std::move(cc),
                 SessionOptions().WithPlanCacheEnabled(false));
}

inline std::string ScriptPath(const std::string& name) {
  return std::string(RELM_SCRIPTS_DIR) + "/" + name;
}

inline ScriptArgs DefaultArgs() {
  return ScriptArgs{{"X", "/data/X"}, {"Y", "/data/y"},
                    {"B", "/out/B"},  {"model", "/out/w"}};
}

/// Registers the scenario's X / y metadata on a fresh session.
inline void RegisterData(Session* sys, int64_t cells, int64_t cols,
                         double sparsity) {
  int64_t rows = cells / cols;
  sys->hdfs().PutMetadata("/data/X", MatrixCharacteristics::WithSparsity(
                                         rows, cols, sparsity));
  sys->hdfs().PutMetadata("/data/y",
                          MatrixCharacteristics::Dense(rows, 1));
}

/// Oracle entry for mlogreg's table() output with k classes.
inline SymbolMap MlogregOracle(int64_t rows, int64_t k) {
  SymbolMap oracle;
  SymbolInfo info;
  info.dtype = DataType::kMatrix;
  info.mc = MatrixCharacteristics(rows, k, rows);
  oracle["Y"] = info;
  return oracle;
}

/// Measured execution of a pristine clone under `config`.
inline SimResult MeasureClone(Session* sys, const MlProgram& prog,
                              const ResourceConfig& config,
                              const SimOptions& opts = SimOptions(),
                              const SymbolMap& oracle = {}) {
  auto clone = prog.Clone();
  if (!clone.ok()) {
    std::fprintf(stderr, "clone failed: %s\n",
                 clone.status().ToString().c_str());
    std::exit(1);
  }
  auto run = sys->Simulate(clone->get(), config, opts, oracle);
  if (!run.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 run.status().ToString().c_str());
    std::exit(1);
  }
  return *run;
}

/// Loads + compiles a script for the current session, exiting on error.
inline std::unique_ptr<MlProgram> MustCompile(Session* sys,
                                              const std::string& script,
                                              ScriptArgs args =
                                                  DefaultArgs()) {
  auto prog = sys->CompileFile(ScriptPath(script), args);
  if (!prog.ok()) {
    std::fprintf(stderr, "compile failed for %s: %s\n", script.c_str(),
                 prog.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*prog);
}

/// Prints a standard header naming the experiment.
inline void PrintHeader(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace relm

#endif  // RELM_BENCH_BENCH_COMMON_H_

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/hdfs_yarn_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/hops_test[1]_include.cmake")
include("/root/repo/build/tests/lops_cost_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/mrsim_test[1]_include.cmake")
include("/root/repo/build/tests/api_spark_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/rewrites_test[1]_include.cmake")
include("/root/repo/build/tests/cost_details_test[1]_include.cmake")
include("/root/repo/build/tests/left_indexing_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")

# Empty compiler generated dependencies file for hops_test.
# This may be replaced when dependencies are built.

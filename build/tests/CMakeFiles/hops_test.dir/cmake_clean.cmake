file(REMOVE_RECURSE
  "CMakeFiles/hops_test.dir/hops_test.cc.o"
  "CMakeFiles/hops_test.dir/hops_test.cc.o.d"
  "hops_test"
  "hops_test.pdb"
  "hops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

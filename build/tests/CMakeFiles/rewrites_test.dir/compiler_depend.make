# Empty compiler generated dependencies file for rewrites_test.
# This may be replaced when dependencies are built.

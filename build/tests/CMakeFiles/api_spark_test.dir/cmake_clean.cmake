file(REMOVE_RECURSE
  "CMakeFiles/api_spark_test.dir/api_spark_test.cc.o"
  "CMakeFiles/api_spark_test.dir/api_spark_test.cc.o.d"
  "api_spark_test"
  "api_spark_test.pdb"
  "api_spark_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_spark_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

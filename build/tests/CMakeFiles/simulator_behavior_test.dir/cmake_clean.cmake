file(REMOVE_RECURSE
  "CMakeFiles/simulator_behavior_test.dir/simulator_behavior_test.cc.o"
  "CMakeFiles/simulator_behavior_test.dir/simulator_behavior_test.cc.o.d"
  "simulator_behavior_test"
  "simulator_behavior_test.pdb"
  "simulator_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

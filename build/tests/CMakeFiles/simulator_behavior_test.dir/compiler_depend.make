# Empty compiler generated dependencies file for simulator_behavior_test.
# This may be replaced when dependencies are built.

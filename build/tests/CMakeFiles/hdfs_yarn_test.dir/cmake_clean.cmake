file(REMOVE_RECURSE
  "CMakeFiles/hdfs_yarn_test.dir/hdfs_yarn_test.cc.o"
  "CMakeFiles/hdfs_yarn_test.dir/hdfs_yarn_test.cc.o.d"
  "hdfs_yarn_test"
  "hdfs_yarn_test.pdb"
  "hdfs_yarn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdfs_yarn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

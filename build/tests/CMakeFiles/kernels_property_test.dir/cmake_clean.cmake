file(REMOVE_RECURSE
  "CMakeFiles/kernels_property_test.dir/kernels_property_test.cc.o"
  "CMakeFiles/kernels_property_test.dir/kernels_property_test.cc.o.d"
  "kernels_property_test"
  "kernels_property_test.pdb"
  "kernels_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/left_indexing_test.dir/left_indexing_test.cc.o"
  "CMakeFiles/left_indexing_test.dir/left_indexing_test.cc.o.d"
  "left_indexing_test"
  "left_indexing_test.pdb"
  "left_indexing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/left_indexing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

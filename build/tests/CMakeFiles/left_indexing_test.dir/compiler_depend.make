# Empty compiler generated dependencies file for left_indexing_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lops_cost_test.dir/lops_cost_test.cc.o"
  "CMakeFiles/lops_cost_test.dir/lops_cost_test.cc.o.d"
  "lops_cost_test"
  "lops_cost_test.pdb"
  "lops_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lops_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

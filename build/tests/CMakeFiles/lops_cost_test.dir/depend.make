# Empty dependencies file for lops_cost_test.
# This may be replaced when dependencies are built.

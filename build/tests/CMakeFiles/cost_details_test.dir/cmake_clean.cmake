file(REMOVE_RECURSE
  "CMakeFiles/cost_details_test.dir/cost_details_test.cc.o"
  "CMakeFiles/cost_details_test.dir/cost_details_test.cc.o.d"
  "cost_details_test"
  "cost_details_test.pdb"
  "cost_details_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_details_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

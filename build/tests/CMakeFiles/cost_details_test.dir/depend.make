# Empty dependencies file for cost_details_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_adaptation.dir/bench_fig15_adaptation.cc.o"
  "CMakeFiles/bench_fig15_adaptation.dir/bench_fig15_adaptation.cc.o.d"
  "bench_fig15_adaptation"
  "bench_fig15_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_linreg_ds.dir/bench_fig7_linreg_ds.cc.o"
  "CMakeFiles/bench_fig7_linreg_ds.dir/bench_fig7_linreg_ds.cc.o.d"
  "bench_fig7_linreg_ds"
  "bench_fig7_linreg_ds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_linreg_ds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig7_linreg_ds.
# This may be replaced when dependencies are built.

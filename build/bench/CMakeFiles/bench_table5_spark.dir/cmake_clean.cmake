file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_spark.dir/bench_table5_spark.cc.o"
  "CMakeFiles/bench_table5_spark.dir/bench_table5_spark.cc.o.d"
  "bench_table5_spark"
  "bench_table5_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_mlogreg.dir/bench_fig10_mlogreg.cc.o"
  "CMakeFiles/bench_fig10_mlogreg.dir/bench_fig10_mlogreg.cc.o.d"
  "bench_fig10_mlogreg"
  "bench_fig10_mlogreg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_mlogreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_mlogreg.cc" "bench/CMakeFiles/bench_fig10_mlogreg.dir/bench_fig10_mlogreg.cc.o" "gcc" "bench/CMakeFiles/bench_fig10_mlogreg.dir/bench_fig10_mlogreg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/relm_api.dir/DependInfo.cmake"
  "/root/repo/build/src/mrsim/CMakeFiles/relm_mrsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/relm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/relm_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/lops/CMakeFiles/relm_lops.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/relm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/hops/CMakeFiles/relm_hops.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/relm_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/relm_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/spark/CMakeFiles/relm_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/yarn/CMakeFiles/relm_yarn.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/relm_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/relm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

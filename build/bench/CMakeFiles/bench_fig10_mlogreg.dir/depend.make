# Empty dependencies file for bench_fig10_mlogreg.
# This may be replaced when dependencies are built.

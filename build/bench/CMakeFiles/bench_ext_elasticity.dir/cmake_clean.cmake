file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_elasticity.dir/bench_ext_elasticity.cc.o"
  "CMakeFiles/bench_ext_elasticity.dir/bench_ext_elasticity.cc.o.d"
  "bench_ext_elasticity"
  "bench_ext_elasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

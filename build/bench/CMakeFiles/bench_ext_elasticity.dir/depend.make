# Empty dependencies file for bench_ext_elasticity.
# This may be replaced when dependencies are built.

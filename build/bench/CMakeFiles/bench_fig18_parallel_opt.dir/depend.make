# Empty dependencies file for bench_fig18_parallel_opt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_linreg_cg.dir/bench_fig8_linreg_cg.cc.o"
  "CMakeFiles/bench_fig8_linreg_cg.dir/bench_fig8_linreg_cg.cc.o.d"
  "bench_fig8_linreg_cg"
  "bench_fig8_linreg_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_linreg_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig8_linreg_cg.
# This may be replaced when dependencies are built.

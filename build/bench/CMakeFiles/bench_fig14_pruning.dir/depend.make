# Empty dependencies file for bench_fig14_pruning.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_glm.dir/bench_fig11_glm.cc.o"
  "CMakeFiles/bench_fig11_glm.dir/bench_fig11_glm.cc.o.d"
  "bench_fig11_glm"
  "bench_fig11_glm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_glm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig11_glm.
# This may be replaced when dependencies are built.

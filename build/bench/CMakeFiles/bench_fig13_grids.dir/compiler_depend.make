# Empty compiler generated dependencies file for bench_fig13_grids.
# This may be replaced when dependencies are built.

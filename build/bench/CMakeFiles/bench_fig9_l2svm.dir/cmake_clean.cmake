file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_l2svm.dir/bench_fig9_l2svm.cc.o"
  "CMakeFiles/bench_fig9_l2svm.dir/bench_fig9_l2svm.cc.o.d"
  "bench_fig9_l2svm"
  "bench_fig9_l2svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_l2svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

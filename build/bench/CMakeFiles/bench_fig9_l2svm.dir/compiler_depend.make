# Empty compiler generated dependencies file for bench_fig9_l2svm.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for elastic_multitenant.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/elastic_multitenant.dir/elastic_multitenant.cpp.o"
  "CMakeFiles/elastic_multitenant.dir/elastic_multitenant.cpp.o.d"
  "elastic_multitenant"
  "elastic_multitenant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_multitenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/adaptive_mlogreg.dir/adaptive_mlogreg.cpp.o"
  "CMakeFiles/adaptive_mlogreg.dir/adaptive_mlogreg.cpp.o.d"
  "adaptive_mlogreg"
  "adaptive_mlogreg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_mlogreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for adaptive_mlogreg.
# This may be replaced when dependencies are built.

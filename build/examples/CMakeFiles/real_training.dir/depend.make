# Empty dependencies file for real_training.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/real_training.dir/real_training.cpp.o"
  "CMakeFiles/real_training.dir/real_training.cpp.o.d"
  "real_training"
  "real_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

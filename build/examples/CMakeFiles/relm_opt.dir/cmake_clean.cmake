file(REMOVE_RECURSE
  "CMakeFiles/relm_opt.dir/relm_opt.cpp.o"
  "CMakeFiles/relm_opt.dir/relm_opt.cpp.o.d"
  "relm_opt"
  "relm_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

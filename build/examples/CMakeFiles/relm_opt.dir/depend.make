# Empty dependencies file for relm_opt.
# This may be replaced when dependencies are built.

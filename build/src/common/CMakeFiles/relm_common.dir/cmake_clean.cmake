file(REMOVE_RECURSE
  "CMakeFiles/relm_common.dir/logging.cc.o"
  "CMakeFiles/relm_common.dir/logging.cc.o.d"
  "CMakeFiles/relm_common.dir/status.cc.o"
  "CMakeFiles/relm_common.dir/status.cc.o.d"
  "CMakeFiles/relm_common.dir/string_util.cc.o"
  "CMakeFiles/relm_common.dir/string_util.cc.o.d"
  "librelm_common.a"
  "librelm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

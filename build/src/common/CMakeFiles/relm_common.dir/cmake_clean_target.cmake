file(REMOVE_RECURSE
  "librelm_common.a"
)

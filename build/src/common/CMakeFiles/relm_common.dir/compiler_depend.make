# Empty compiler generated dependencies file for relm_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librelm_matrix.a"
)

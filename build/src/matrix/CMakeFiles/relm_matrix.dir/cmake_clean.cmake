file(REMOVE_RECURSE
  "CMakeFiles/relm_matrix.dir/kernels.cc.o"
  "CMakeFiles/relm_matrix.dir/kernels.cc.o.d"
  "CMakeFiles/relm_matrix.dir/matrix_block.cc.o"
  "CMakeFiles/relm_matrix.dir/matrix_block.cc.o.d"
  "CMakeFiles/relm_matrix.dir/matrix_characteristics.cc.o"
  "CMakeFiles/relm_matrix.dir/matrix_characteristics.cc.o.d"
  "librelm_matrix.a"
  "librelm_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

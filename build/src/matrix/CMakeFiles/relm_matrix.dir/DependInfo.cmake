
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matrix/kernels.cc" "src/matrix/CMakeFiles/relm_matrix.dir/kernels.cc.o" "gcc" "src/matrix/CMakeFiles/relm_matrix.dir/kernels.cc.o.d"
  "/root/repo/src/matrix/matrix_block.cc" "src/matrix/CMakeFiles/relm_matrix.dir/matrix_block.cc.o" "gcc" "src/matrix/CMakeFiles/relm_matrix.dir/matrix_block.cc.o.d"
  "/root/repo/src/matrix/matrix_characteristics.cc" "src/matrix/CMakeFiles/relm_matrix.dir/matrix_characteristics.cc.o" "gcc" "src/matrix/CMakeFiles/relm_matrix.dir/matrix_characteristics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/relm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for relm_matrix.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librelm_hops.a"
)

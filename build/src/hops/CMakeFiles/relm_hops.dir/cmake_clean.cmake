file(REMOVE_RECURSE
  "CMakeFiles/relm_hops.dir/dag_builder.cc.o"
  "CMakeFiles/relm_hops.dir/dag_builder.cc.o.d"
  "CMakeFiles/relm_hops.dir/hop.cc.o"
  "CMakeFiles/relm_hops.dir/hop.cc.o.d"
  "CMakeFiles/relm_hops.dir/ml_program.cc.o"
  "CMakeFiles/relm_hops.dir/ml_program.cc.o.d"
  "CMakeFiles/relm_hops.dir/rewrites.cc.o"
  "CMakeFiles/relm_hops.dir/rewrites.cc.o.d"
  "CMakeFiles/relm_hops.dir/size_propagation.cc.o"
  "CMakeFiles/relm_hops.dir/size_propagation.cc.o.d"
  "librelm_hops.a"
  "librelm_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

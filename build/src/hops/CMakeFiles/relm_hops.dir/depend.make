# Empty dependencies file for relm_hops.
# This may be replaced when dependencies are built.

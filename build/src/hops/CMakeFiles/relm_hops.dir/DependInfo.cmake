
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hops/dag_builder.cc" "src/hops/CMakeFiles/relm_hops.dir/dag_builder.cc.o" "gcc" "src/hops/CMakeFiles/relm_hops.dir/dag_builder.cc.o.d"
  "/root/repo/src/hops/hop.cc" "src/hops/CMakeFiles/relm_hops.dir/hop.cc.o" "gcc" "src/hops/CMakeFiles/relm_hops.dir/hop.cc.o.d"
  "/root/repo/src/hops/ml_program.cc" "src/hops/CMakeFiles/relm_hops.dir/ml_program.cc.o" "gcc" "src/hops/CMakeFiles/relm_hops.dir/ml_program.cc.o.d"
  "/root/repo/src/hops/rewrites.cc" "src/hops/CMakeFiles/relm_hops.dir/rewrites.cc.o" "gcc" "src/hops/CMakeFiles/relm_hops.dir/rewrites.cc.o.d"
  "/root/repo/src/hops/size_propagation.cc" "src/hops/CMakeFiles/relm_hops.dir/size_propagation.cc.o" "gcc" "src/hops/CMakeFiles/relm_hops.dir/size_propagation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/relm_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/relm_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/relm_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/relm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

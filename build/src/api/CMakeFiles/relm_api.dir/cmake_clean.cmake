file(REMOVE_RECURSE
  "CMakeFiles/relm_api.dir/relm_system.cc.o"
  "CMakeFiles/relm_api.dir/relm_system.cc.o.d"
  "librelm_api.a"
  "librelm_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

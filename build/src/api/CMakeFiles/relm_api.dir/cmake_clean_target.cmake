file(REMOVE_RECURSE
  "librelm_api.a"
)

# Empty dependencies file for relm_api.
# This may be replaced when dependencies are built.

# Empty dependencies file for relm_lops.
# This may be replaced when dependencies are built.

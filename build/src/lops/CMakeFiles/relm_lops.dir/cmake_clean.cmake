file(REMOVE_RECURSE
  "CMakeFiles/relm_lops.dir/compiler_backend.cc.o"
  "CMakeFiles/relm_lops.dir/compiler_backend.cc.o.d"
  "CMakeFiles/relm_lops.dir/resources.cc.o"
  "CMakeFiles/relm_lops.dir/resources.cc.o.d"
  "CMakeFiles/relm_lops.dir/runtime_program.cc.o"
  "CMakeFiles/relm_lops.dir/runtime_program.cc.o.d"
  "librelm_lops.a"
  "librelm_lops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_lops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

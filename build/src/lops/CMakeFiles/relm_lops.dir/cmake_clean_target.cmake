file(REMOVE_RECURSE
  "librelm_lops.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/relm_spark.dir/spark_model.cc.o"
  "CMakeFiles/relm_spark.dir/spark_model.cc.o.d"
  "librelm_spark.a"
  "librelm_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

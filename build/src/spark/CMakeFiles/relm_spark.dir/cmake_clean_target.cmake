file(REMOVE_RECURSE
  "librelm_spark.a"
)

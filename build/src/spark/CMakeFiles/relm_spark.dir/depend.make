# Empty dependencies file for relm_spark.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spark/spark_model.cc" "src/spark/CMakeFiles/relm_spark.dir/spark_model.cc.o" "gcc" "src/spark/CMakeFiles/relm_spark.dir/spark_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/relm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/relm_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/yarn/CMakeFiles/relm_yarn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

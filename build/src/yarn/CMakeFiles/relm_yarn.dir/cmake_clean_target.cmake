file(REMOVE_RECURSE
  "librelm_yarn.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/relm_yarn.dir/cluster_config.cc.o"
  "CMakeFiles/relm_yarn.dir/cluster_config.cc.o.d"
  "CMakeFiles/relm_yarn.dir/resource_manager.cc.o"
  "CMakeFiles/relm_yarn.dir/resource_manager.cc.o.d"
  "librelm_yarn.a"
  "librelm_yarn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_yarn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for relm_yarn.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/yarn/cluster_config.cc" "src/yarn/CMakeFiles/relm_yarn.dir/cluster_config.cc.o" "gcc" "src/yarn/CMakeFiles/relm_yarn.dir/cluster_config.cc.o.d"
  "/root/repo/src/yarn/resource_manager.cc" "src/yarn/CMakeFiles/relm_yarn.dir/resource_manager.cc.o" "gcc" "src/yarn/CMakeFiles/relm_yarn.dir/resource_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/relm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

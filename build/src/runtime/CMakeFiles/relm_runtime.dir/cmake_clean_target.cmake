file(REMOVE_RECURSE
  "librelm_runtime.a"
)

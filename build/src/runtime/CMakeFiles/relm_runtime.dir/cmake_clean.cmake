file(REMOVE_RECURSE
  "CMakeFiles/relm_runtime.dir/interpreter.cc.o"
  "CMakeFiles/relm_runtime.dir/interpreter.cc.o.d"
  "librelm_runtime.a"
  "librelm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for relm_runtime.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librelm_lang.a"
)

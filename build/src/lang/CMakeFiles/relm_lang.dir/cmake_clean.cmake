file(REMOVE_RECURSE
  "CMakeFiles/relm_lang.dir/ast.cc.o"
  "CMakeFiles/relm_lang.dir/ast.cc.o.d"
  "CMakeFiles/relm_lang.dir/lexer.cc.o"
  "CMakeFiles/relm_lang.dir/lexer.cc.o.d"
  "CMakeFiles/relm_lang.dir/parser.cc.o"
  "CMakeFiles/relm_lang.dir/parser.cc.o.d"
  "CMakeFiles/relm_lang.dir/statement_block.cc.o"
  "CMakeFiles/relm_lang.dir/statement_block.cc.o.d"
  "CMakeFiles/relm_lang.dir/validator.cc.o"
  "CMakeFiles/relm_lang.dir/validator.cc.o.d"
  "librelm_lang.a"
  "librelm_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for relm_lang.
# This may be replaced when dependencies are built.

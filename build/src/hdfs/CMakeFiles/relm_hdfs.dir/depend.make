# Empty dependencies file for relm_hdfs.
# This may be replaced when dependencies are built.

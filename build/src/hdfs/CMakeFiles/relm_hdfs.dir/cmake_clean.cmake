file(REMOVE_RECURSE
  "CMakeFiles/relm_hdfs.dir/file_system.cc.o"
  "CMakeFiles/relm_hdfs.dir/file_system.cc.o.d"
  "librelm_hdfs.a"
  "librelm_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

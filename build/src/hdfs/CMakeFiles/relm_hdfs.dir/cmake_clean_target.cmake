file(REMOVE_RECURSE
  "librelm_hdfs.a"
)

file(REMOVE_RECURSE
  "librelm_mrsim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/relm_mrsim.dir/buffer_pool.cc.o"
  "CMakeFiles/relm_mrsim.dir/buffer_pool.cc.o.d"
  "CMakeFiles/relm_mrsim.dir/cluster_simulator.cc.o"
  "CMakeFiles/relm_mrsim.dir/cluster_simulator.cc.o.d"
  "CMakeFiles/relm_mrsim.dir/throughput.cc.o"
  "CMakeFiles/relm_mrsim.dir/throughput.cc.o.d"
  "librelm_mrsim.a"
  "librelm_mrsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_mrsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

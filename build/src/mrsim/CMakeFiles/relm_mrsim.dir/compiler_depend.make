# Empty compiler generated dependencies file for relm_mrsim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/relm_core.dir/grid_generators.cc.o"
  "CMakeFiles/relm_core.dir/grid_generators.cc.o.d"
  "CMakeFiles/relm_core.dir/resource_optimizer.cc.o"
  "CMakeFiles/relm_core.dir/resource_optimizer.cc.o.d"
  "librelm_core.a"
  "librelm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librelm_cost.a"
)

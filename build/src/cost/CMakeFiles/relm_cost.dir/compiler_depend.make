# Empty compiler generated dependencies file for relm_cost.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/relm_cost.dir/cost_model.cc.o"
  "CMakeFiles/relm_cost.dir/cost_model.cc.o.d"
  "librelm_cost.a"
  "librelm_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Differential testing of the whole front end + interpreter pipeline:
// randomly generated straight-line scalar programs are rendered to DML
// source, compiled, executed — and the printed result must match a
// direct evaluation of the same expressions in C++.

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.h"
#include "common/bytes.h"
#include "common/random.h"
#include "obs/trace.h"

namespace relm {
namespace {

// These suites predate plan caching: an uncached Session keeps every
// call's compile and optimize costs identical to the retired
// RelmSystem facade they were written against.
Session UncachedSession() {
  return Session(ClusterConfig::PaperCluster(),
                 SessionOptions().WithPlanCacheEnabled(false));
}

/// Generator state: variables defined so far and their true values.
struct GenState {
  std::vector<double> values;  // v0, v1, ...
  std::ostringstream script;
  Random rng;
  explicit GenState(uint64_t seed) : rng(seed) {}
};

/// Emits one random expression over existing variables and literals;
/// returns (text, value). Depth-bounded recursive generation.
std::pair<std::string, double> GenExpr(GenState* state, int depth) {
  auto literal = [&]() -> std::pair<std::string, double> {
    double v = std::floor(state->rng.Uniform(-9, 10));
    std::ostringstream os;
    os << v;
    return {os.str(), v};
  };
  auto variable = [&]() -> std::pair<std::string, double> {
    if (state->values.empty()) return literal();
    size_t i = state->rng.NextBelow(state->values.size());
    return {"v" + std::to_string(i), state->values[i]};
  };
  if (depth <= 0) {
    return state->rng.NextBelow(2) == 0 ? literal() : variable();
  }
  switch (state->rng.NextBelow(8)) {
    case 0:
      return literal();
    case 1:
      return variable();
    case 2: {  // addition
      auto [lt, lv] = GenExpr(state, depth - 1);
      auto [rt, rv] = GenExpr(state, depth - 1);
      return {"(" + lt + " + " + rt + ")", lv + rv};
    }
    case 3: {  // subtraction
      auto [lt, lv] = GenExpr(state, depth - 1);
      auto [rt, rv] = GenExpr(state, depth - 1);
      return {"(" + lt + " - " + rt + ")", lv - rv};
    }
    case 4: {  // multiplication
      auto [lt, lv] = GenExpr(state, depth - 1);
      auto [rt, rv] = GenExpr(state, depth - 1);
      return {"(" + lt + " * " + rt + ")", lv * rv};
    }
    case 5: {  // abs / unary minus
      auto [t, v] = GenExpr(state, depth - 1);
      if (state->rng.NextBelow(2) == 0) return {"abs(" + t + ")",
                                                std::fabs(v)};
      return {"(0 - " + t + ")", -v};
    }
    case 6: {  // min / max
      auto [lt, lv] = GenExpr(state, depth - 1);
      auto [rt, rv] = GenExpr(state, depth - 1);
      if (state->rng.NextBelow(2) == 0) {
        return {"min(" + lt + ", " + rt + ")", std::min(lv, rv)};
      }
      return {"max(" + lt + ", " + rt + ")", std::max(lv, rv)};
    }
    default: {  // comparison folded into arithmetic (0/1)
      auto [lt, lv] = GenExpr(state, depth - 1);
      auto [rt, rv] = GenExpr(state, depth - 1);
      return {"(" + lt + " < " + rt + ")", lv < rv ? 1.0 : 0.0};
    }
  }
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, RandomScalarProgramsMatchReference) {
  GenState state(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  const int num_statements = 12;
  for (int i = 0; i < num_statements; ++i) {
    auto [text, value] = GenExpr(&state, 3);
    state.script << "v" << i << " = " << text << "\n";
    state.values.push_back(value);
  }
  // Print every variable (so nothing is dead code).
  for (int i = 0; i < num_statements; ++i) {
    state.script << "print(\"v" << i << "=\" + v" << i << ")\n";
  }
  Session sys = UncachedSession();
  auto prog = sys.CompileSource(state.script.str(), {});
  ASSERT_TRUE(prog.ok()) << prog.status().ToString() << "\nscript:\n"
                         << state.script.str();
  auto run = sys.ExecuteReal(prog->get());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->printed.size(), static_cast<size_t>(num_statements));
  for (int i = 0; i < num_statements; ++i) {
    const std::string& line = run->printed[i];
    auto eq = line.find('=');
    ASSERT_NE(eq, std::string::npos);
    double got = std::strtod(line.c_str() + eq + 1, nullptr);
    EXPECT_NEAR(got, state.values[i],
                1e-6 * std::max(1.0, std::fabs(state.values[i])))
        << "statement v" << i << "\nscript:\n"
        << state.script.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range(0, 20));

/// The same generator, but with loops folding the expressions: validates
/// loop-carried scalar state end to end.
TEST(DifferentialLoopTest, AccumulationMatchesReference) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Random rng(seed * 31 + 7);
    int iters = 1 + static_cast<int>(rng.NextBelow(9));
    double mult = std::floor(rng.Uniform(1, 4));
    double add = std::floor(rng.Uniform(-3, 4));
    std::ostringstream script;
    script << "acc = 1\n"
           << "for (i in 1:" << iters << ") {\n"
           << "  acc = acc * " << mult << " + " << add << " + i\n"
           << "}\n"
           << "print(\"acc=\" + acc)";
    double expect = 1;
    for (int i = 1; i <= iters; ++i) expect = expect * mult + add + i;
    Session sys = UncachedSession();
    auto prog = sys.CompileSource(script.str(), {});
    ASSERT_TRUE(prog.ok()) << script.str();
    auto run = sys.ExecuteReal(prog->get());
    ASSERT_TRUE(run.ok());
    double got = std::strtod(run->printed[0].c_str() + 4, nullptr);
    EXPECT_NEAR(got, expect, 1e-9) << script.str();
  }
}

/// Observability must be pure observation: the same simulated run with
/// the tracer enabled and disabled must produce bit-identical results.
TEST(ObservabilityDifferentialTest, TracingDoesNotPerturbSimulation) {
  Session sys = UncachedSession();
  sys.RegisterMatrixMetadata("/data/X", 1000000, 1000, 1.0);
  sys.RegisterMatrixMetadata("/data/y", 1000000, 1, 1.0);
  auto prog = sys.CompileSource(
      "X = read($X)\n"
      "y = read($Y)\n"
      "A = t(X) %*% X\n"
      "b = t(X) %*% y\n"
      "beta = solve(A, b)\n"
      "write(beta, $B)\n",
      ScriptArgs{{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"}});
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();

  auto simulate = [&](bool traced) -> SimResult {
    obs::Tracer::Global().SetEnabled(false);
    obs::Tracer::Global().Clear();
    obs::Tracer::Global().SetEnabled(traced);
    auto clone = prog->get()->Clone();
    EXPECT_TRUE(clone.ok());
    auto run = sys.Simulate(clone->get(),
                            ResourceConfig(2 * kGB, 2 * kGB));
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    obs::Tracer::Global().SetEnabled(false);
    obs::Tracer::Global().Clear();
    return *run;
  };
  SimResult traced = simulate(true);
  SimResult untraced = simulate(false);

  EXPECT_EQ(traced.elapsed_seconds, untraced.elapsed_seconds);
  EXPECT_EQ(traced.mr_jobs_executed, untraced.mr_jobs_executed);
  EXPECT_EQ(traced.dynamic_recompiles, untraced.dynamic_recompiles);
  EXPECT_EQ(traced.bufferpool_evictions, untraced.bufferpool_evictions);
  EXPECT_EQ(traced.final_config.cp_heap, untraced.final_config.cp_heap);
  ASSERT_EQ(traced.events.size(), untraced.events.size());
  for (size_t i = 0; i < traced.events.size(); ++i) {
    EXPECT_EQ(traced.events[i].kind, untraced.events[i].kind);
    EXPECT_EQ(traced.events[i].at_seconds,
              untraced.events[i].at_seconds);
    EXPECT_EQ(traced.events[i].what, untraced.events[i].what);
  }
}

}  // namespace
}  // namespace relm

// Observability layer: metrics registry (exact concurrent counting,
// histogram bucket edges, stable handles across Reset), span tracer
// (nesting, thread interleaving, Chrome trace-event JSON), structured
// logging (sink capture, level filtering, << chains), the optimizer's
// decision trace, and the typed SimEvent timeline of a fault-injected
// run whose counters must match the metrics registry exactly.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.h"
#include "common/bytes.h"
#include "common/logging.h"
#include "common/random.h"
#include "exec/op_registry.h"
#include "matrix/kernels.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/scope.h"
#include "obs/telemetry_sink.h"
#include "obs/trace.h"

namespace relm {
namespace {

// These suites predate plan caching: an uncached Session keeps every
// call's compile and optimize costs identical to the retired
// RelmSystem facade they were written against.
Session UncachedSession() {
  return Session(ClusterConfig::PaperCluster(),
                 SessionOptions().WithPlanCacheEnabled(false));
}

using obs::Histogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::ScopedSpan;
using obs::TraceEvent;
using obs::Tracer;

// ---- metrics registry ----

TEST(MetricsTest, ConcurrentIncrementsSumExactly) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  obs::Counter* c = reg.GetCounter("test.concurrent_increments");
  c->Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Resolve through the registry inside the thread too: concurrent
      // GetCounter of one name must return one handle.
      obs::Counter* mine = reg.GetCounter("test.concurrent_increments");
      for (int i = 0; i < kPerThread; ++i) mine->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(reg.Snapshot().counter("test.concurrent_increments"),
            int64_t{kThreads} * kPerThread);
}

TEST(MetricsTest, HandlesSurviveReset) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  obs::Counter* c = reg.GetCounter("test.reset_stability");
  c->Add(7);
  reg.Reset();
  EXPECT_EQ(c->value(), 0);
  c->Add(3);  // the old handle still feeds the registry
  EXPECT_EQ(reg.GetCounter("test.reset_stability")->value(), 3);
  EXPECT_EQ(reg.GetCounter("test.reset_stability"), c);
}

TEST(MetricsTest, GaugeHoldsLastValue) {
  obs::Gauge* g = MetricsRegistry::Global().GetGauge("test.gauge");
  g->Set(1.5);
  g->Set(-2.25);
  EXPECT_EQ(g->value(), -2.25);
}

TEST(MetricsTest, HistogramBucketEdges) {
  // Bucket 0: v < 1 (and non-finite / negative junk).
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(0.999), 0);
  EXPECT_EQ(Histogram::BucketIndex(-5.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0);
  // Bucket i: [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(1.0), 1);
  EXPECT_EQ(Histogram::BucketIndex(1.999), 1);
  EXPECT_EQ(Histogram::BucketIndex(2.0), 2);
  EXPECT_EQ(Histogram::BucketIndex(3.999), 2);
  EXPECT_EQ(Histogram::BucketIndex(4.0), 3);
  // Overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);
  // Upper edges match the bucket boundaries used above.
  EXPECT_EQ(Histogram::BucketUpperEdge(0), 1.0);
  EXPECT_EQ(Histogram::BucketUpperEdge(1), 2.0);
  EXPECT_EQ(Histogram::BucketUpperEdge(2), 4.0);
  EXPECT_TRUE(std::isinf(
      Histogram::BucketUpperEdge(Histogram::kNumBuckets - 1)));
  // Every boundary sample lands in the bucket whose upper edge is the
  // next boundary (half-open intervals).
  for (int i = 1; i < Histogram::kNumBuckets - 1; ++i) {
    double lower = Histogram::BucketUpperEdge(i - 1);
    EXPECT_EQ(Histogram::BucketIndex(lower), i) << "lower edge of " << i;
    EXPECT_EQ(Histogram::BucketIndex(std::nextafter(lower, 0.0)), i - 1);
  }
}

TEST(MetricsTest, HistogramConcurrentObserveCountsExactly) {
  obs::Histogram* h =
      MetricsRegistry::Global().GetHistogram("test.histogram");
  h->Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Observe(static_cast<double>(t));  // 0,1,2,3
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h->count(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->bucket(0), kPerThread);      // 0
  EXPECT_EQ(h->bucket(1), kPerThread);      // 1
  EXPECT_EQ(h->bucket(2), 2 * kPerThread);  // 2 and 3
}

TEST(MetricsTest, SnapshotJsonIsBalanced) {
  MetricsRegistry::Global().GetCounter("test.json")->Add(1);
  MetricsRegistry::Global().GetHistogram("test.histogram")->Observe(2.0);
  std::string json = MetricsRegistry::Global().ToJson();
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"test.json\""), std::string::npos);
  EXPECT_NE(json.find("\"test.histogram\""), std::string::npos);
}

// ---- tracer ----

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().SetEnabled(false);
    Tracer::Global().Clear();
    Tracer::Global().SetEnabled(true);
  }
  void TearDown() override {
    Tracer::Global().SetEnabled(false);
    Tracer::Global().Clear();
  }
};

#if RELM_OBS_ENABLED
// The next four tests exercise the span macros, which compile to
// nothing under RELM_OBS_ENABLED=OFF.
TEST_F(TracerTest, NestedSpansBuildPaths) {
  {
    RELM_TRACE_SPAN("outer");
    { RELM_TRACE_SPAN("inner"); }
    { RELM_TRACE_SPAN("inner"); }
  }
  std::vector<TraceEvent> events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 3u);
  // Spans are recorded at close, so the children come first.
  EXPECT_EQ(events[0].path, "outer/inner");
  EXPECT_EQ(events[1].path, "outer/inner");
  EXPECT_EQ(events[2].path, "outer");
  EXPECT_EQ(events[2].name, "outer");
  // The parent's window covers both children.
  EXPECT_LE(events[2].ts_us, events[0].ts_us);
  EXPECT_GE(events[2].ts_us + events[2].dur_us,
            events[1].ts_us + events[1].dur_us);
  for (const TraceEvent& ev : events) {
    EXPECT_EQ(ev.phase, 'X');
    EXPECT_EQ(ev.pid, 1);
  }
}
#endif  // RELM_OBS_ENABLED

TEST_F(TracerTest, DisabledSpansRecordNothing) {
  Tracer::Global().SetEnabled(false);
  {
    RELM_TRACE_SPAN("invisible");
    RELM_TRACE_INSTANT("also_invisible", "");
  }
  EXPECT_EQ(Tracer::Global().NumEvents(), 0u);
}

#if RELM_OBS_ENABLED
TEST_F(TracerTest, ThreadsInterleaveWithoutMixingStacks) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      RELM_TRACE_SPAN("worker");
      for (int i = 0; i < 50; ++i) {
        RELM_TRACE_SPAN("item");
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<TraceEvent> events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), kThreads * 51u);
  // Per-thread: every "item" nests under that thread's own "worker";
  // no cross-thread path contamination.
  std::vector<int> tids;
  for (const TraceEvent& ev : events) {
    if (ev.name == "item") {
      EXPECT_EQ(ev.path, "worker/item");
    } else {
      EXPECT_EQ(ev.path, "worker");
      tids.push_back(ev.tid);
    }
  }
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()) - tids.begin(),
            kThreads);
}
#endif  // RELM_OBS_ENABLED

TEST_F(TracerTest, SimSpansLandOnSimulatedTimeline) {
  Tracer::Global().RecordSimSpan("sim.block", 1.5, 2.0, "\"block\":3");
  Tracer::Global().RecordSimInstant("sim.node_crash", 2.0, "\"node\":0");
  std::vector<TraceEvent> events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].pid, 2);
  EXPECT_EQ(events[0].ts_us, 1.5e6);  // simulated seconds -> µs
  EXPECT_EQ(events[0].dur_us, 2.0e6);
  EXPECT_EQ(events[1].phase, 'i');
  EXPECT_EQ(events[1].pid, 2);
}

#if RELM_OBS_ENABLED
TEST_F(TracerTest, ChromeJsonIsWellFormed) {
  {
    RELM_TRACE_SPAN_ARGS("span \"quoted\"", [] {
      return std::string("\"k\":1");
    });
  }
  Tracer::Global().RecordSimSpan("sim.program", 0.0, 10.0, "");
  MetricsRegistry::Global().GetCounter("test.embedded")->Add(1);
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  std::string json = Tracer::Global().ToChromeJson(&snap);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  // Both timelines are named via metadata events.
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Quotes in span names are escaped.
  EXPECT_NE(json.find("span \\\"quoted\\\""), std::string::npos);
  // The metrics snapshot rides along under its own key.
  EXPECT_NE(json.find("\"relmMetrics\""), std::string::npos);
  EXPECT_NE(json.find("\"test.embedded\""), std::string::npos);
}

TEST_F(TracerTest, FlamegraphAggregatesByPath) {
  {
    RELM_TRACE_SPAN("root");
    { RELM_TRACE_SPAN("leaf"); }
    { RELM_TRACE_SPAN("leaf"); }
  }
  std::string flame = Tracer::Global().FlamegraphSummary();
  EXPECT_NE(flame.find("root"), std::string::npos);
  // Both "leaf" spans aggregate into one row with count 2.
  auto leaf_line_start = flame.rfind('\n', flame.find("leaf"));
  ASSERT_NE(leaf_line_start, std::string::npos);
  EXPECT_EQ(flame[leaf_line_start + 1], '2');
}
#endif  // RELM_OBS_ENABLED

// ---- structured logging ----

class LogCaptureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogSink([this](LogLevel level, const std::string& message) {
      captured_.emplace_back(level, message);
    });
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetLogLevel(LogLevel::kWarn);
  }
  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LogCaptureTest, StreamChainsSurviveTheMacro) {
  SetLogLevel(LogLevel::kInfo);
  RELM_LOG(Info) << "parts " << 1 << " and " << 2.5;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  // The whole chain lands in one message, not just the first operand.
  EXPECT_NE(captured_[0].second.find("parts 1 and 2.5"),
            std::string::npos);
}

TEST_F(LogCaptureTest, LevelsFilterAtRuntime) {
  SetLogLevel(LogLevel::kWarn);
  RELM_DEBUG() << "no";
  RELM_LOG(Info) << "no";
  RELM_LOG(Warn) << "yes-warn";
  RELM_LOG(Error) << "yes-error";
  SetLogLevel(LogLevel::kDebug);
  RELM_DEBUG() << "yes-debug";
  ASSERT_EQ(captured_.size(), 3u);
  EXPECT_EQ(captured_[0].first, LogLevel::kWarn);
  EXPECT_EQ(captured_[1].first, LogLevel::kError);
  EXPECT_EQ(captured_[2].first, LogLevel::kDebug);
}

TEST_F(LogCaptureTest, MacroNestsInUnbracedIf) {
  SetLogLevel(LogLevel::kInfo);
  bool flag = false;
  if (flag)
    RELM_LOG(Info) << "then";
  else
    RELM_LOG(Info) << "else";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_NE(captured_[0].second.find("else"), std::string::npos);
}

// ---- optimizer decision trace & provenance ----

class ObsSystemTest : public ::testing::Test {
 protected:
  /// LinregDS on the 8 GB scenario: big enough that a small CP heap
  /// schedules MR jobs (the same setup the fault-injection tests use).
  std::unique_ptr<MlProgram> Compile(Session* sys) {
    sys->RegisterMatrixMetadata("/data/X", 1000000, 1000, 1.0);
    sys->RegisterMatrixMetadata("/data/y", 1000000, 1, 1.0);
    auto prog = sys->CompileFile(
        std::string(RELM_SCRIPTS_DIR) + "/linreg_ds.dml",
        ScriptArgs{{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"}});
    EXPECT_TRUE(prog.ok()) << prog.status().ToString();
    return std::move(*prog);
  }
};

TEST_F(ObsSystemTest, OptimizerTraceExplainsEveryGridPoint) {
  Session sys = UncachedSession();
  auto prog = Compile(&sys);
  auto outcome = sys.Optimize(prog.get());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const OptimizerStats& stats = outcome->stats;

  ASSERT_FALSE(stats.trace.grid_points.empty());
  int winners = 0;
  for (const GridPointDecision& d : stats.trace.grid_points) {
    EXPECT_GT(d.cp_mb, 0);
    EXPECT_GE(d.cost, 0.0);
    EXPECT_FALSE(d.verdict.empty());
    EXPECT_EQ(d.winner, d.verdict.rfind("win:", 0) == 0);
    if (d.winner) ++winners;
  }
  EXPECT_EQ(winners, 1);
  const GridPointDecision* win = stats.trace.Winner();
  ASSERT_NE(win, nullptr);
  // The winner's cost is minimal up to the tie-break tolerance.
  for (const GridPointDecision& d : stats.trace.grid_points) {
    EXPECT_LE(win->cost,
              d.cost * (1.0 + stats.provenance.cost_tolerance) + 1e-9);
  }
  EXPECT_EQ(win->cost, stats.best_cost);

  // Provenance mirrors the options the run was configured with.
  OptimizerOptions defaults;
  EXPECT_EQ(stats.provenance.grid_points, defaults.grid_points);
  EXPECT_EQ(stats.provenance.num_threads, defaults.num_threads);
  EXPECT_EQ(stats.provenance.expected_failure_rate,
            defaults.expected_failure_rate);
  std::string text = stats.ToString();
  EXPECT_NE(text.find("m=" + std::to_string(defaults.grid_points)),
            std::string::npos);
  EXPECT_NE(text.find("threads="), std::string::npos);
  EXPECT_NE(text.find("failure_rate="), std::string::npos);
  std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"provenance\""), std::string::npos);
  EXPECT_NE(json.find("\"grid_point_trace\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// ---- typed SimEvent timeline & counter routing ----

TEST_F(ObsSystemTest, FaultRunEmitsGoldenTypedEventSequence) {
  Session sys = UncachedSession();
  auto prog = Compile(&sys);
  SimOptions opts;
  opts.noise = 0.0;
  // Node 1 (not the AM's node 0): t=35 lands inside the dominant MR
  // job, so in-flight map tasks are lost and re-run; recovery at t=45.
  opts.faults.node_crashes.push_back(NodeCrash{1, 35.0, 10.0});
  auto run = sys.Simulate(prog.get(), ResourceConfig(2 * kGB, 2 * kGB),
                          opts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // Golden sequence of the fault-related kinds: the AM starts, node 1
  // crashes mid-job losing tasks, and later recommissions.
  std::vector<SimEventKind> fault_kinds;
  for (const SimEvent& ev : run->events) {
    if (ev.kind != SimEventKind::kInfo &&
        ev.kind != SimEventKind::kSizeDiscovered &&
        ev.kind != SimEventKind::kReturnSizeDerived &&
        ev.kind != SimEventKind::kDynamicRecompile) {
      fault_kinds.push_back(ev.kind);
    }
  }
  std::vector<SimEventKind> golden = {SimEventKind::kAmStart,
                                      SimEventKind::kNodeCrash,
                                      SimEventKind::kTaskRerun,
                                      SimEventKind::kNodeRecovered};
  EXPECT_EQ(fault_kinds, golden);

  // Typed payloads carry the machine-readable fields.
  for (const SimEvent& ev : run->events) {
    EXPECT_GE(ev.at_seconds, 0.0);
    switch (ev.kind) {
      case SimEventKind::kNodeCrash:
        EXPECT_EQ(ev.node, 1);
        EXPECT_NE(ev.what.find("crashed"), std::string::npos);
        break;
      case SimEventKind::kTaskRerun:
        EXPECT_EQ(ev.node, 1);
        EXPECT_GT(ev.tasks, 0);
        break;
      case SimEventKind::kNodeRecovered:
        EXPECT_EQ(ev.node, 1);
        break;
      default:
        break;
    }
    EXPECT_STRNE(SimEventKindName(ev.kind), "sim.unknown");
  }
}

#if RELM_OBS_ENABLED
TEST_F(ObsSystemTest, RegistryCountersMatchSimResultExactly) {
  Session sys = UncachedSession();
  auto prog = Compile(&sys);
  MetricsRegistry::Global().Reset();
  SimOptions opts;
  opts.noise = 0.0;
  opts.faults.node_crashes.push_back(NodeCrash{1, 35.0, 10.0});
  opts.faults.straggler_probability = 1.0;
  opts.faults.straggler_slowdown = 3.0;
  opts.faults.preemptions.push_back(PreemptionEvent{1.0, 0.3, 20.0});
  auto run = sys.Simulate(prog.get(), ResourceConfig(2 * kGB, 2 * kGB),
                          opts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("sim.runs"), 1);
  EXPECT_EQ(snap.counter("sim.mr_jobs_executed"),
            run->mr_jobs_executed);
  EXPECT_EQ(snap.counter("sim.dynamic_recompiles"),
            run->dynamic_recompiles);
  EXPECT_EQ(snap.counter("sim.task_retries"), run->task_retries);
  EXPECT_EQ(snap.counter("sim.speculative_launches"),
            run->speculative_launches);
  EXPECT_EQ(snap.counter("sim.node_failures_survived"),
            run->node_failures_survived);
  EXPECT_EQ(snap.counter("sim.preemptions"), run->preemptions);
  EXPECT_EQ(snap.counter("sim.am_restarts"), run->am_restarts);
  EXPECT_EQ(snap.counter("sim.migrations"), run->migrations);
  EXPECT_EQ(snap.counter("sim.reoptimizations"),
            run->reoptimizations);
  EXPECT_EQ(snap.counter("sim.bufferpool_evictions"),
            run->bufferpool_evictions);
  // A non-trivial run actually exercised the counters.
  EXPECT_GT(run->mr_jobs_executed, 0);
  EXPECT_GT(run->node_failures_survived, 0);
}

TEST_F(ObsSystemTest, RegistryCountersMatchOptimizerStatsExactly) {
  Session sys = UncachedSession();
  auto prog = Compile(&sys);
  MetricsRegistry::Global().Reset();
  auto outcome = sys.Optimize(prog.get());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const OptimizerStats& stats = outcome->stats;
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("optimizer.runs"), 1);
  EXPECT_EQ(snap.counter("optimizer.block_recompiles"),
            stats.block_recompiles);
  EXPECT_EQ(snap.counter("optimizer.cost_invocations"),
            stats.cost_invocations);
  EXPECT_EQ(snap.counter("optimizer.grid_points_evaluated"),
            static_cast<int64_t>(stats.trace.grid_points.size()));
  EXPECT_GT(stats.cost_invocations, 0);
}

TEST_F(ObsSystemTest, TracedRunNestsSimulatorSpans) {
  Tracer::Global().SetEnabled(false);
  Tracer::Global().Clear();
  Tracer::Global().SetEnabled(true);
  Session sys = UncachedSession();
  auto prog = Compile(&sys);
  auto outcome = sys.Optimize(prog.get());
  ASSERT_TRUE(outcome.ok());
  auto run = sys.Simulate(prog.get(), outcome->config);
  ASSERT_TRUE(run.ok());
  Tracer::Global().SetEnabled(false);

  bool saw_grid_point = false, saw_mr_job = false, saw_block = false;
  for (const TraceEvent& ev : Tracer::Global().Events()) {
    if (ev.path.find("optimize.run/") == 0 &&
        ev.name == "optimize.grid_point") {
      saw_grid_point = true;  // nested under the run span
    }
    if (ev.name == "sim.mr_job") saw_mr_job = ev.pid == 2;
    if (ev.name == "sim.block") saw_block = ev.pid == 2;
  }
  EXPECT_TRUE(saw_grid_point);
  EXPECT_TRUE(saw_mr_job);
  EXPECT_TRUE(saw_block);
  Tracer::Global().Clear();
}
#endif  // RELM_OBS_ENABLED

// ---- JSON number formatting ----

TEST(JsonUtilTest, NumbersAlwaysCarryDecimalOrExponent) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          3.0,
                          -17.0,
                          0.5,
                          1e300,
                          -1e300,
                          5e-324,  // smallest subnormal
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::min(),
                          1234567890123456.0};
  for (double v : cases) {
    const std::string s = obs::JsonNumber(v);
    EXPECT_NE(s.find_first_of(".eE"), std::string::npos)
        << v << " formatted as bare integer: " << s;
    // Still a number, not a quoted sentinel.
    EXPECT_EQ(s.find('"'), std::string::npos) << s;
    // Round-trips exactly. strtod, not std::stod: stod throws
    // out_of_range on subnormal results (errno ERANGE), which are
    // exactly the edge this test pins down.
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
  EXPECT_EQ(obs::JsonNumber(std::nan("")), "\"nan\"");
  EXPECT_EQ(obs::JsonNumber(std::numeric_limits<double>::infinity()),
            "\"inf\"");
  EXPECT_EQ(obs::JsonNumber(-std::numeric_limits<double>::infinity()),
            "\"-inf\"");
}

// ---- histogram percentiles ----

TEST(MetricsTest, PercentileInterpolatesWithinBuckets) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.5), 0.0);  // empty
  for (int i = 0; i < 100; ++i) h.Observe(0.5);
  // All 100 samples in bucket 0 ([0, 1)): linear interpolation.
  EXPECT_DOUBLE_EQ(h.Percentile(0.50), 0.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0.95), 0.95);
  EXPECT_DOUBLE_EQ(h.Percentile(1.00), 1.0);

  h.Reset();
  for (int i = 0; i < 50; ++i) h.Observe(0.5);  // bucket 0: [0, 1)
  for (int i = 0; i < 50; ++i) h.Observe(3.0);  // bucket 2: [2, 4)
  EXPECT_DOUBLE_EQ(h.Percentile(0.50), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.95), 3.8);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 3.96);

  h.Reset();
  for (int i = 0; i < 10; ++i) h.Observe(5.0);  // bucket 3: [4, 8)
  EXPECT_DOUBLE_EQ(h.Percentile(0.50), 6.0);

  // Overflow bucket has no finite upper edge: report its lower edge.
  h.Reset();
  for (int i = 0; i < 4; ++i) h.Observe(1e300);
  EXPECT_DOUBLE_EQ(h.Percentile(0.50),
                   Histogram::BucketUpperEdge(Histogram::kNumBuckets - 2));
}

TEST(MetricsTest, SnapshotPercentilesMatchLiveHistogram) {
  obs::Histogram* h =
      MetricsRegistry::Global().GetHistogram("test.percentile_snapshot");
  h->Reset();
  for (int i = 0; i < 50; ++i) h->Observe(0.5);
  for (int i = 0; i < 50; ++i) h->Observe(3.0);
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const auto it = snap.histograms.find("test.percentile_snapshot");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_DOUBLE_EQ(it->second.Percentile(0.95), h->Percentile(0.95));
  // The JSON export carries the canned percentiles.
  const std::string json = MetricsRegistry::Global().ToJson();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  h->Reset();
}

// ---- trace context + metric scope ----

TEST(TraceContextTest, BindingNestsAndRestores) {
  EXPECT_EQ(obs::CurrentTraceContext(), nullptr);
  obs::TraceContext job;
  job.job_id = 7;
  job.tenant = "alpha";
  {
    obs::ScopedTraceContext bind_job(job);
    ASSERT_NE(obs::CurrentTraceContext(), nullptr);
    EXPECT_EQ(obs::CurrentTraceContext()->job_id, 7u);
    EXPECT_EQ(obs::CurrentTraceContext()->attempt, 0);
    {
      obs::TraceContext attempt = job;
      attempt.attempt = 2;
      attempt.plan_signature = 0xabcull;
      obs::ScopedTraceContext bind_attempt(attempt);
      EXPECT_EQ(obs::CurrentTraceContext()->attempt, 2);
      EXPECT_EQ(obs::CurrentTraceContext()->plan_signature, 0xabcull);
    }
    // Inner binding unwound; the job-level context is visible again.
    EXPECT_EQ(obs::CurrentTraceContext()->attempt, 0);
    EXPECT_EQ(obs::CurrentTraceContext()->job_id, 7u);
  }
  EXPECT_EQ(obs::CurrentTraceContext(), nullptr);
  // A default (job_id 0) context is bindable but never stamped.
  obs::TraceContext unbound;
  obs::ScopedTraceContext bind(unbound);
  EXPECT_FALSE(obs::CurrentTraceContext()->valid());
}

#if RELM_OBS_ENABLED
TEST_F(TracerTest, SpansAndInstantsCarryBoundContext) {
  obs::TraceContext ctx;
  ctx.job_id = 42;
  ctx.tenant = "tenant-a";
  ctx.plan_signature = 0x1234;
  ctx.attempt = 3;
  {
    obs::ScopedTraceContext bind(ctx);
    RELM_TRACE_SPAN("ctx.span");
    RELM_TRACE_INSTANT("ctx.instant", "\"site\":\"test\"");
  }
  { RELM_TRACE_SPAN("ctx.unbound"); }
  std::vector<TraceEvent> events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 3u);
  bool saw_span = false, saw_instant = false, saw_unbound = false;
  for (const TraceEvent& ev : events) {
    if (ev.name == "ctx.span") {
      saw_span = true;
      EXPECT_NE(ev.args_json.find("\"job_id\":42"), std::string::npos)
          << ev.args_json;
      EXPECT_NE(ev.args_json.find("\"tenant\":\"tenant-a\""),
                std::string::npos);
      EXPECT_NE(ev.args_json.find("\"attempt\":3"), std::string::npos);
    }
    if (ev.name == "ctx.instant") {
      saw_instant = true;
      // Context args append after the caller's own args.
      EXPECT_NE(ev.args_json.find("\"site\":\"test\""), std::string::npos);
      EXPECT_NE(ev.args_json.find("\"job_id\":42"), std::string::npos);
    }
    if (ev.name == "ctx.unbound") {
      saw_unbound = true;
      EXPECT_EQ(ev.args_json.find("job_id"), std::string::npos)
          << "unbound span must not be stamped: " << ev.args_json;
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_unbound);
}
#endif  // RELM_OBS_ENABLED

TEST(MetricScopeTest, AddIsScopeOnlyAddSharedForwardsToGlobal) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.scope_only")->Reset();
  reg.GetCounter("test.scope_shared")->Reset();

  obs::TraceContext ctx;
  ctx.job_id = 9;
  ctx.tenant = "beta";
  obs::MetricScope scope(ctx);
  scope.Add("test.scope_only", 5);
  scope.AddShared("test.scope_shared", 3);
  scope.AddShared("test.scope_shared", 4);
  scope.Set("test.scope_gauge", 1.25);

  EXPECT_EQ(scope.counter("test.scope_only"), 5);
  EXPECT_EQ(scope.counter("test.scope_shared"), 7);
  EXPECT_EQ(scope.gauge("test.scope_gauge"), 1.25);
  // Add never touched the registry; AddShared did.
  EXPECT_EQ(reg.GetCounter("test.scope_only")->value(), 0);
  EXPECT_EQ(reg.GetCounter("test.scope_shared")->value(), 7);

  obs::MetricScope::Snapshot snap = scope.TakeSnapshot();
  EXPECT_EQ(snap.trace.job_id, 9u);
  EXPECT_EQ(snap.counter("test.scope_only"), 5);
  EXPECT_EQ(snap.counter("test.never_recorded"), 0);
  const std::string json = snap.ToJson();
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_NE(json.find("\"tenant\":\"beta\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.scope_only\":5"), std::string::npos) << json;
}

TEST(MetricScopeTest, ConcurrentAddsSumExactly) {
  obs::MetricScope scope;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&scope] {
          for (int i = 0; i < kPerThread; ++i) scope.Add("n", 1);
        });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(scope.counter("n"), int64_t{kThreads} * kPerThread);
}

// ---- operator profile store + calibration ----

TEST(OpProfileTest, ShapeBucketIsFloorLog2) {
  EXPECT_EQ(obs::OpProfileStore::ShapeBucket(-3), 0);
  EXPECT_EQ(obs::OpProfileStore::ShapeBucket(0), 0);
  EXPECT_EQ(obs::OpProfileStore::ShapeBucket(1), 0);
  EXPECT_EQ(obs::OpProfileStore::ShapeBucket(2), 1);
  EXPECT_EQ(obs::OpProfileStore::ShapeBucket(3), 1);
  EXPECT_EQ(obs::OpProfileStore::ShapeBucket(4), 2);
  EXPECT_EQ(obs::OpProfileStore::ShapeBucket(1023), 9);
  EXPECT_EQ(obs::OpProfileStore::ShapeBucket(1024), 10);
}

TEST(OpProfileTest, RecordAggregatesByOpAndShapeBucket) {
  obs::OpProfileStore store;
  store.Record("matmult", 1 << 10, 4096, 2e6, 0.25);
  store.Record("matmult", 1 << 10, 4096, 2e6, 0.75);
  store.Record("matmult", 4, 64, 1e3, 0.001);  // different bucket
  store.Record("elementwise", 1 << 10, 4096, 1e3, 0.001);
  auto snap = store.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  const obs::OpProfileStats& mm = snap[{"matmult", 10}];
  EXPECT_EQ(mm.samples, 2);
  EXPECT_EQ(mm.cells, 2 << 10);
  EXPECT_DOUBLE_EQ(mm.seconds, 1.0);
  EXPECT_DOUBLE_EQ(mm.FlopsPerSecond(), 4e6);
  EXPECT_EQ(store.total_samples(), 4);
  const std::string json = store.ToJson();
  EXPECT_NE(json.find("\"op\":\"matmult\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  store.Reset();
  EXPECT_EQ(store.total_samples(), 0);
}

TEST(OpProfileTest, CalibratedRegistryIsFlopsWeightedAcrossBuckets) {
  obs::OpProfileStore store;
  // Two shape buckets with different rates: the aggregate is total
  // flops / total seconds (weighted), not the mean of the two rates.
  store.Record("matmult", 1 << 4, 0, 2e9, 1.0);  // 2 GFLOP/s
  store.Record("matmult", 1 << 10, 0, 2e9, 3.0); // 0.67 GFLOP/s
  store.Record("zero_flops", 1 << 4, 0, 0.0, 1.0);   // skipped
  obs::CalibratedOpRegistry cal = obs::CalibratedOpRegistry::FromStore(store);
  EXPECT_EQ(cal.size(), 1u);
  ASSERT_TRUE(cal.has("matmult"));
  EXPECT_DOUBLE_EQ(cal.FlopsPerSecond("matmult", 123.0), 1e9);
  EXPECT_DOUBLE_EQ(cal.FlopsPerSecond("never_seen", 123.0), 123.0);
}

TEST(OpProfileTest, FromStoreHonorsMinSamples) {
  obs::OpProfileStore store;
  store.Record("noisy", 1 << 4, 0, 1e6, 0.5);
  store.Record("stable", 1 << 4, 0, 1e6, 0.5);
  store.Record("stable", 1 << 4, 0, 1e6, 0.5);
  obs::CalibratedOpRegistry cal =
      obs::CalibratedOpRegistry::FromStore(store, /*min_samples=*/2);
  EXPECT_FALSE(cal.has("noisy"));
  EXPECT_TRUE(cal.has("stable"));
}

TEST(OpProfileTest, FingerprintTracksContents) {
  obs::CalibratedOpRegistry a;
  obs::CalibratedOpRegistry b;
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  a.Set("matmult", 1e9);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  b.Set("matmult", 1e9);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  b.Set("matmult", 2e9);  // same op, different rate
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

// ---- telemetry sink ----

TEST(TelemetrySinkTest, FlushAppendsSelfContainedLines) {
  const std::string path =
      ::testing::TempDir() + "/relm_telemetry_flush.jsonl";
  std::remove(path.c_str());
  MetricsRegistry::Global().GetCounter("test.sink_counter")->Reset();
  MetricsRegistry::Global().GetCounter("test.sink_counter")->Add(11);
  obs::TelemetrySink::Options options;
  options.path = path;
  obs::TelemetrySink sink(options);
  ASSERT_TRUE(sink.Flush().ok());
  ASSERT_TRUE(sink.Flush().ok());
  EXPECT_EQ(sink.lines_written(), 2);
  sink.Stop();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(std::count(line.begin(), line.end(), '{'),
              std::count(line.begin(), line.end(), '}'));
    EXPECT_NE(line.find("\"metrics\""), std::string::npos);
    EXPECT_NE(line.find("\"test.sink_counter\":11"), std::string::npos);
    EXPECT_NE(line.find("\"profiles\""), std::string::npos);
  }
  // Stop() without Start() has no periodic thread, so no extra final
  // snapshot: exactly the two explicit flushes.
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(TelemetrySinkTest, StartStopWritesSnapshots) {
  const std::string path =
      ::testing::TempDir() + "/relm_telemetry_periodic.jsonl";
  std::remove(path.c_str());
  obs::TelemetrySink::Options options;
  options.path = path;
  options.interval_seconds = 0.01;
  {
    obs::TelemetrySink sink(options);
    ASSERT_TRUE(sink.Start().ok());
    ASSERT_TRUE(sink.Start().ok());  // idempotent
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }  // destructor stops and writes the final snapshot
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++lines;
  }
  EXPECT_GE(lines, 1);
  std::remove(path.c_str());
}

// ---- cost-model calibration (differential) ----

#if RELM_OBS_ENABLED
// Engine profiling is compiled out under RELM_OBS_ENABLED=OFF, so the
// differential only exists in observability builds.
TEST(CalibrationTest, CalibratedEstimateMovesTowardMeasuredThroughput) {
  Session session;
  Random rng(7);
  const int n = 1200;
  const int m = 48;
  MatrixBlock x = MatrixBlock::Rand(n, m, 1.0, -1, 1, &rng);
  MatrixBlock beta = MatrixBlock::Rand(m, 1, 1.0, -2, 2, &rng);
  MatrixBlock y = *MatMult(x, beta);
  ASSERT_TRUE(session.RegisterMatrix("/data/X", std::move(x)).ok());
  ASSERT_TRUE(session.RegisterMatrix("/data/y", std::move(y)).ok());
  std::ifstream in(std::string(RELM_SCRIPTS_DIR) + "/linreg_ds.dml");
  ASSERT_TRUE(in.good());
  std::ostringstream source;
  source << in.rdbuf();
  auto prog = session.CompileSource(
      source.str(),
      ScriptArgs{{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"}});
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();

  // Profile one real run of the shipped script.
  obs::OpProfileStore& store = obs::OpProfileStore::Global();
  store.Reset();
  store.set_enabled(true);
  auto run = session.ExecuteReal(prog->get());
  store.set_enabled(false);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_GT(store.total_samples(), 0);

  obs::CalibratedOpRegistry calibration =
      obs::CalibratedOpRegistry::FromStore(store);
  ASSERT_GT(calibration.size(), 0u);

  const ResourceConfig config = session.StaticBaselines()[0].config;
  auto static_cost = session.EstimateCost(prog->get(), config);
  auto calibrated = session.EstimateCost(prog->get(), config, &calibration);
  ASSERT_TRUE(static_cost.ok());
  ASSERT_TRUE(calibrated.ok());
  // The calibration must change the what-if answer, and in the right
  // direction: when the kernels measure faster than the cluster
  // model's static peak_gflops * efficiency assumption the calibrated
  // estimate charges less compute time, and vice versa — either way
  // the what-if moves toward the measured reality of the profiled run.
  EXPECT_NE(*calibrated, *static_cost);
  double measured_flops = 0.0;
  double measured_seconds = 0.0;
  for (const auto& [key, cell] : store.Snapshot()) {
    measured_flops += cell.flops;
    measured_seconds += cell.seconds;
  }
  ASSERT_GT(measured_seconds, 0.0);
  const double measured_rate = measured_flops / measured_seconds;
  const double static_rate =
      session.cluster().peak_gflops * 1e9 * exec::kComputeEfficiency;
  if (measured_rate > static_rate) {
    EXPECT_LT(*calibrated, *static_cost);
  } else {
    EXPECT_GT(*calibrated, *static_cost);
  }
  store.Reset();
}
#endif  // RELM_OBS_ENABLED

}  // namespace
}  // namespace relm

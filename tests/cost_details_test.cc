// Detail tests for the shared MR-job time formula and front-end
// robustness: malformed scripts must produce Status errors, never
// crashes or silent acceptance.

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "hdfs/file_system.h"
#include "hops/ml_program.h"
#include "lang/parser.h"
#include "lang/validator.h"

namespace relm {
namespace {

// ---- EstimateMrJobTime ----

class MrJobTimeTest : public ::testing::Test {
 protected:
  MrJobTimeTest() : cc_(ClusterConfig::PaperCluster()) {}

  MRJobInstr MakeJob(int64_t input_bytes, int64_t output_bytes = 0,
                     double flops = 0) {
    MRJobInstr job;
    job.map_input_bytes = input_bytes;
    job.output_bytes = output_bytes;
    job.map_flops = flops;
    return job;
  }

  ClusterConfig cc_;
};

TEST_F(MrJobTimeTest, TaskCountFollowsBlockSize) {
  // 8GB input / 128MB blocks -> 63 map tasks, one wave on 72 slots.
  auto t = EstimateMrJobTime(cc_, MakeJob(8000000000LL), 2 * kGB, false);
  EXPECT_EQ(t.num_map_tasks, 60);  // ceil(8e9 / 128MiB)
  EXPECT_EQ(t.map_waves, 1);
  EXPECT_GE(t.total, cc_.mr_job_latency);
}

TEST_F(MrJobTimeTest, MinimumTaskSizeCapsTaskCount) {
  // 800GB input would be 5961 block-sized tasks; the split-size raise
  // keeps it within 2x the available slots.
  auto t = EstimateMrJobTime(cc_, MakeJob(800000000000LL), GigaBytes(4.4),
                             false);
  int slots = cc_.MaxTasksPerNode(GigaBytes(4.4)) * cc_.num_worker_nodes;
  EXPECT_LE(t.num_map_tasks, 2 * slots + 1);
  EXPECT_GE(t.map_waves, 1);
}

TEST_F(MrJobTimeTest, GiantTasksLoseComputeParallelism) {
  // 40GB tasks leave one slot per node; a compute-heavy job loses the
  // task parallelism even though the adaptive split keeps the wave
  // count flat (scans are aggregate-disk-bound either way).
  auto big_tasks = EstimateMrJobTime(
      cc_, MakeJob(80000000000LL, 0, 1e13), 40 * kGB, false);
  auto small_tasks = EstimateMrJobTime(
      cc_, MakeJob(80000000000LL, 0, 1e13), GigaBytes(4.4), false);
  EXPECT_LT(big_tasks.num_map_tasks, small_tasks.num_map_tasks);
  EXPECT_GT(big_tasks.total, small_tasks.total * 2);
}

TEST_F(MrJobTimeTest, TrashingOnlyWhenModeled) {
  // 512MB heap -> 358MB budget < 3x (128MB split): spill territory.
  auto with = EstimateMrJobTime(cc_, MakeJob(8000000000LL), 512 * kMB,
                                true);
  auto without = EstimateMrJobTime(cc_, MakeJob(8000000000LL), 512 * kMB,
                                   false);
  EXPECT_TRUE(with.trashing);
  EXPECT_FALSE(without.trashing);
  EXPECT_GT(with.total, without.total);
  // Ample task memory: no trashing either way.
  auto ample = EstimateMrJobTime(cc_, MakeJob(8000000000LL),
                                 GigaBytes(4.4), true);
  EXPECT_FALSE(ample.trashing);
}

TEST_F(MrJobTimeTest, ShuffleAddsReducePhase) {
  MRJobInstr job = MakeJob(8000000000LL, 8000000000LL);
  job.has_shuffle = true;
  job.shuffle_bytes = 8000000000LL;
  auto with = EstimateMrJobTime(cc_, job, 2 * kGB, false);
  job.has_shuffle = false;
  job.shuffle_bytes = 0;
  auto without = EstimateMrJobTime(cc_, job, 2 * kGB, false);
  EXPECT_GT(with.reduce_phase, 0.0);
  EXPECT_EQ(without.reduce_phase, 0.0);
  EXPECT_GT(with.total, without.total);
}

TEST_F(MrJobTimeTest, BroadcastChargedPerTask) {
  MRJobInstr with_bc = MakeJob(8000000000LL);
  with_bc.broadcast_bytes = 500 * kMB;
  auto t_bc = EstimateMrJobTime(cc_, with_bc, GigaBytes(4.4), false);
  auto t_plain = EstimateMrJobTime(cc_, MakeJob(8000000000LL),
                                   GigaBytes(4.4), false);
  EXPECT_GT(t_bc.total, t_plain.total);
}

TEST_F(MrJobTimeTest, LoadedClusterReducesSlots) {
  ClusterConfig loaded = cc_;
  loaded.mr_slot_availability = 0.1;
  auto busy = EstimateMrJobTime(loaded, MakeJob(80000000000LL), 2 * kGB,
                                false);
  auto idle = EstimateMrJobTime(cc_, MakeJob(80000000000LL), 2 * kGB,
                                false);
  EXPECT_GT(busy.total, idle.total * 2);
}

// ---- front-end robustness: malformed inputs must fail cleanly ----

class RobustnessTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RobustnessTest, MalformedScriptsRejectedNotCrashed) {
  SimulatedHdfs hdfs;
  hdfs.PutMetadata("/X", MatrixCharacteristics::Dense(100, 10));
  auto result = MlProgram::Compile(GetParam(), {}, &hdfs);
  EXPECT_FALSE(result.ok()) << "accepted: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    BadScripts, RobustnessTest,
    ::testing::Values(
        "x = ",                            // missing rhs
        "x = 1 +",                         // dangling operator
        "if (x > 0 { y = 1 }",             // missing paren
        "while () { }",                    // empty predicate
        "for (i in ) { }",                 // empty range
        "x = read()",                      // missing path
        "x = read(\"/nonexistent\")\nprint(\"\"+sum(x))",  // missing file
        "x = matrix(0)",                   // missing dims
        "y = undefined + 1",               // undefined variable
        "x = 1\ny = x %*% x",              // scalar matmult
        "f = function(double a) { b = a }",  // missing return clause
        "x = sum()",                       // no args
        "x = ppred(1, 2, 3)",              // non-string ppred op
        "x = $undefined_param",            // unresolved parameter
        "x = 1 @ 2",                       // bad token
        "\"unterminated",                  // bad string
        "x = foo(1)",                      // unknown function
        "x = 3\nx[1, 1] = 5"));            // left index on scalar

// ---- grammar corner cases that must be ACCEPTED ----

class AcceptedTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AcceptedTest, ValidCornerCasesCompile) {
  SimulatedHdfs hdfs;
  hdfs.PutMetadata("/X", MatrixCharacteristics::Dense(100, 10));
  auto result = MlProgram::Compile(GetParam(), {}, &hdfs);
  EXPECT_TRUE(result.ok()) << GetParam() << ": "
                           << result.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    GoodScripts, AcceptedTest,
    ::testing::Values(
        "x = -2 ^ 2\nprint(\"\" + x)",            // unary minus + power
        "x = 1; y = 2; print(\"\" + (x + y));",   // semicolons
        "x = ((((1))))\nprint(\"\" + x)",         // nesting
        "b = TRUE & FALSE | !FALSE\nprint(\"\" + b)",
        "X = read(\"/X\")\nprint(\"\" + sum(X[1:5, ]))",
        "X = read(\"/X\")\nY = t(t(t(X)))\nprint(\"\" + sum(Y))",
        "i = 5\nwhile (i > 0) { i = i - 1 }\nprint(\"\" + i)",
        "s = 0\nfor (i in seq(10, 2, -2)) { s = s + i }\nprint(\"\" + s)",
        "x = 1e-9 + 1E3 + .5\nprint(\"\" + x)",   // number formats
        "# only comments and one print\nprint(\"ok\")"));

}  // namespace
}  // namespace relm

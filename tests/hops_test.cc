#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "hdfs/file_system.h"
#include "hops/ml_program.h"

namespace relm {
namespace {

std::string ReadScript(const std::string& name) {
  std::ifstream in(std::string(RELM_SCRIPTS_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing script " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Fixture with an HDFS holding the canonical X (1e6 x 1000 dense, 8GB)
/// and y (1e6 x 1, 8MB) of the paper's Figure 1 setup.
class HopsTest : public ::testing::Test {
 protected:
  HopsTest() {
    hdfs_.PutMetadata("/data/X",
                      MatrixCharacteristics::Dense(1000000, 1000));
    hdfs_.PutMetadata("/data/y", MatrixCharacteristics::Dense(1000000, 1));
    hdfs_.PutMetadata("/data/Xs", MatrixCharacteristics::WithSparsity(
                                      1000000, 1000, 0.01));
  }

  Result<std::unique_ptr<MlProgram>> Compile(const std::string& src,
                                             ScriptArgs args = {}) {
    return MlProgram::Compile(src, args, &hdfs_);
  }

  /// First hop of the given kind across all IR DAGs, or nullptr.
  static Hop* FindHop(MlProgram* p, HopKind kind) {
    for (StatementBlock* b : p->AllBlocksPreOrder()) {
      if (!p->has_ir(b->id())) continue;
      for (Hop* h : p->ir(b->id()).dag.TopoOrder()) {
        if (h->kind() == kind) return h;
      }
    }
    return nullptr;
  }

  SimulatedHdfs hdfs_;
};

TEST_F(HopsTest, PersistentReadGetsHdfsMetadata) {
  auto p = Compile("X = read(\"/data/X\")\ns = sum(X)\nprint(\"\" + s)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  Hop* read = FindHop(p->get(), HopKind::kPersistentRead);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->mc().rows(), 1000000);
  EXPECT_EQ(read->mc().cols(), 1000);
  // ~8GB (decimal) dense in memory: 1e6 * 1000 * 8 bytes.
  EXPECT_NEAR(static_cast<double>(read->output_mem()) / 1e9, 8.0, 0.1);
}

TEST_F(HopsTest, ReadOfMissingFileFails) {
  auto p = Compile("X = read(\"/nope\")\ns = sum(X)\nprint(\"\" + s)");
  EXPECT_FALSE(p.ok());
}

TEST_F(HopsTest, MatMultSizePropagation) {
  auto p = Compile(
      "X = read(\"/data/X\")\n"
      "v = matrix(1, rows=ncol(X), cols=1)\n"
      "q = X %*% v\n"
      "s = sum(q)\nprint(\"\" + s)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  Hop* mm = FindHop(p->get(), HopKind::kMatMult);
  ASSERT_NE(mm, nullptr);
  EXPECT_EQ(mm->mc().rows(), 1000000);
  EXPECT_EQ(mm->mc().cols(), 1);
  // Output is a dense 8MB (decimal) vector.
  EXPECT_NEAR(static_cast<double>(mm->output_mem()) / 1e6, 8.0, 0.1);
  // Operation memory includes the 8GB input.
  EXPECT_GT(mm->op_mem(), static_cast<int64_t>(8e9));
}

TEST_F(HopsTest, ConstantFoldingAndPropagation) {
  auto p = Compile(
      "a = 2 + 3 * 4\n"
      "b = a * 2\n"
      "v = matrix(0, rows=b, cols=1)\n"
      "s = sum(v)\nprint(\"\" + s)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  Hop* dg = FindHop(p->get(), HopKind::kDataGen);
  ASSERT_NE(dg, nullptr);
  EXPECT_EQ(dg->mc().rows(), 28);  // (2+12)*2
  EXPECT_EQ(dg->mc().nnz(), 0);    // constant zero matrix
}

TEST_F(HopsTest, BranchRemovalOnLiteralPredicate) {
  auto p = Compile(
      "icpt = 0\n"
      "X = read(\"/data/X\")\n"
      "if (icpt == 1) { X = append(X, matrix(1, rows=nrow(X), cols=1)) }\n"
      "s = sum(X)\nprint(\"\" + s)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  // Find the if block's IR.
  bool found = false;
  for (StatementBlock* b : (*p)->MainBlocksPreOrder()) {
    if (b->kind() == BlockKind::kIf) {
      EXPECT_EQ((*p)->ir(b->id()).taken_branch, 1);  // else (empty) taken
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // X keeps 1000 columns after the (removed) branch.
  for (StatementBlock* b : (*p)->MainBlocksPreOrder()) {
    if (b->IsLastLevel() && b->live_in.count("X") &&
        b->read.count("X") && !b->updated.count("X")) {
      for (Hop* h : (*p)->ir(b->id()).dag.TopoOrder()) {
        if (h->kind() == HopKind::kTransientRead && h->name() == "X") {
          EXPECT_EQ(h->mc().cols(), 1000);
        }
      }
    }
  }
}

TEST_F(HopsTest, CommonSubexpressionElimination) {
  auto p = Compile(
      "X = read(\"/data/X\")\n"
      "a = sum(X * X)\n"
      "b = sum(X * X) + 1\n"
      "print(\"\" + a + b)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  // Only one elementwise multiply and one aggregate must exist.
  int mults = 0;
  int aggs = 0;
  for (StatementBlock* b : (*p)->MainBlocksPreOrder()) {
    if (!(*p)->has_ir(b->id())) continue;
    for (Hop* h : (*p)->ir(b->id()).dag.TopoOrder()) {
      if (h->kind() == HopKind::kBinary && h->bin_op == BinOp::kMul &&
          h->is_matrix()) {
        ++mults;
      }
      if (h->kind() == HopKind::kAggUnary) ++aggs;
    }
  }
  EXPECT_EQ(mults, 1);
  EXPECT_EQ(aggs, 1);
}

TEST_F(HopsTest, TransposeTransposeElimination) {
  auto p = Compile(
      "X = read(\"/data/X\")\n"
      "Y = t(t(X))\n"
      "s = sum(Y)\nprint(\"\" + s)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(FindHop(p->get(), HopKind::kReorg), nullptr);
}

TEST_F(HopsTest, SparseMemoryEstimate) {
  auto p = Compile(
      "X = read(\"/data/Xs\")\n"
      "s = sum(X)\nprint(\"\" + s)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  Hop* read = FindHop(p->get(), HopKind::kPersistentRead);
  ASSERT_NE(read, nullptr);
  // 1% sparse: roughly 12 bytes per nnz -> ~120MB, far below dense 8GB.
  EXPECT_LT(read->output_mem(), 200 * kMB);
  EXPECT_GT(read->output_mem(), 50 * kMB);
}

TEST_F(HopsTest, TableProducesUnknowns) {
  auto p = Compile(
      "X = read(\"/data/X\")\n"
      "y = read(\"/data/y\")\n"
      "Y = table(seq(1, nrow(X), 1), y)\n"
      "k = ncol(Y)\n"
      "B = matrix(0, rows=ncol(X), cols=k)\n"
      "s = sum(B) + sum(Y)\nprint(\"\" + s)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  Hop* table_hop = FindHop(p->get(), HopKind::kTernary);
  ASSERT_NE(table_hop, nullptr);
  EXPECT_FALSE(table_hop->mc().dims_known());
  EXPECT_EQ(table_hop->op_mem(), kUnknownSizeSentinel);
  Hop* dim = FindHop(p->get(), HopKind::kDimExtract);
  EXPECT_NE(dim, nullptr);  // ncol(Y) could not be folded
  EXPECT_TRUE((*p)->has_unknowns());
}

TEST_F(HopsTest, RebuildWithSizeOverridesResolvesUnknowns) {
  auto p = Compile(
      "X = read(\"/data/X\")\n"
      "y = read(\"/data/y\")\n"
      "Y = table(seq(1, nrow(X), 1), y)\n"
      "B = matrix(0, rows=ncol(X), cols=ncol(Y))\n"
      "s = sum(B) + sum(Y)\nprint(\"\" + s)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_TRUE((*p)->has_unknowns());
  SymbolMap overrides;
  SymbolInfo y_info;
  y_info.dtype = DataType::kMatrix;
  y_info.mc = MatrixCharacteristics(1000000, 200, 1000000);
  overrides["Y"] = y_info;
  ASSERT_TRUE((*p)->Rebuild(overrides).ok());
  EXPECT_FALSE((*p)->has_unknowns());
  Hop* table_hop = FindHop(p->get(), HopKind::kTernary);
  ASSERT_NE(table_hop, nullptr);
  EXPECT_EQ(table_hop->mc().cols(), 200);
  // B = matrix(0, ncol(X), ncol(Y)) now folds to 1000 x 200.
  Hop* dg = FindHop(p->get(), HopKind::kDataGen);
  ASSERT_NE(dg, nullptr);
  EXPECT_EQ(dg->mc().rows(), 1000);
  EXPECT_EQ(dg->mc().cols(), 200);
}

TEST_F(HopsTest, WhileIterationEstimateFromBound) {
  auto p = Compile(
      "i = 0\nmaxi = 7\ncontinue = TRUE\n"
      "while (continue & i < maxi) { i = i + 1 }\n"
      "print(\"\" + i)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  for (StatementBlock* b : (*p)->MainBlocksPreOrder()) {
    if (b->kind() == BlockKind::kWhile) {
      EXPECT_DOUBLE_EQ((*p)->ir(b->id()).estimated_iterations, 7.0);
    }
  }
}

TEST_F(HopsTest, WhileIterationDefaultWhenUnknown) {
  auto p = Compile(
      "c = TRUE\nx = 1\n"
      "while (c) { x = x * 2\n if (x > 100) { c = FALSE } }\n"
      "print(\"\" + x)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  for (StatementBlock* b : (*p)->MainBlocksPreOrder()) {
    if (b->kind() == BlockKind::kWhile) {
      EXPECT_DOUBLE_EQ((*p)->ir(b->id()).estimated_iterations,
                       kDefaultLoopIterations);
    }
  }
}

TEST_F(HopsTest, ForIterationExact) {
  auto p = Compile("s = 0\nfor (i in 1:12) { s = s + i }\nprint(\"\" + s)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  for (StatementBlock* b : (*p)->MainBlocksPreOrder()) {
    if (b->kind() == BlockKind::kFor) {
      EXPECT_TRUE((*p)->ir(b->id()).iterations_known);
      EXPECT_DOUBLE_EQ((*p)->ir(b->id()).estimated_iterations, 12.0);
    }
  }
}

TEST_F(HopsTest, LoopStableDimsStayKnown) {
  // CG-style loop: p and r keep their shapes across iterations.
  auto p = Compile(
      "X = read(\"/data/X\")\n"
      "r = t(X) %*% read(\"/data/y\")\n"
      "p = r\n"
      "i = 0\n"
      "while (i < 5) {\n"
      "  q = t(X) %*% (X %*% p)\n"
      "  p = p - q\n"
      "  i = i + 1\n"
      "}\n"
      "s = sum(p)\nprint(\"\" + s)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  // Inside the loop, p must still have known dims 1000x1.
  for (StatementBlock* b : (*p)->MainBlocksPreOrder()) {
    if (b->kind() != BlockKind::kWhile) continue;
    for (const auto& child : b->body) {
      for (Hop* h : (*p)->ir(child->id()).dag.TopoOrder()) {
        if (h->kind() == HopKind::kTransientRead && h->name() == "p") {
          EXPECT_EQ(h->mc().rows(), 1000);
          EXPECT_EQ(h->mc().cols(), 1);
        }
      }
    }
  }
}

TEST_F(HopsTest, ScalarConstantsInvalidatedInLoop) {
  auto p = Compile(
      "i = 0\ntotal = 0\n"
      "while (i < 3) {\n"
      "  v = matrix(0, rows=i + 1, cols=1)\n"
      "  total = total + sum(v)\n"
      "  i = i + 1\n"
      "}\n"
      "print(\"\" + i + total)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  // v's rows depend on the loop variable: unknown inside the loop.
  Hop* dg = FindHop(p->get(), HopKind::kDataGen);
  ASSERT_NE(dg, nullptr);
  EXPECT_FALSE(dg->mc().dims_known());
}

struct ScriptUnknowns {
  const char* file;
  bool expect_unknowns;
};

class ScriptCompileTest : public ::testing::TestWithParam<ScriptUnknowns> {};

TEST_P(ScriptCompileTest, CompilesWithExpectedUnknowns) {
  SimulatedHdfs hdfs;
  hdfs.PutMetadata("/data/X", MatrixCharacteristics::Dense(1000000, 1000));
  hdfs.PutMetadata("/data/y", MatrixCharacteristics::Dense(1000000, 1));
  std::ifstream in(std::string(RELM_SCRIPTS_DIR) + "/" +
                   GetParam().file);
  std::ostringstream ss;
  ss << in.rdbuf();
  ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"},
                  {"B", "/out/B"},  {"model", "/out/w"}};
  auto p = MlProgram::Compile(ss.str(), args, &hdfs);
  ASSERT_TRUE(p.ok()) << GetParam().file << ": " << p.status().ToString();
  EXPECT_EQ((*p)->has_unknowns(), GetParam().expect_unknowns)
      << GetParam().file;
}

INSTANTIATE_TEST_SUITE_P(
    AllScripts, ScriptCompileTest,
    ::testing::Values(ScriptUnknowns{"linreg_ds.dml", false},
                      ScriptUnknowns{"linreg_cg.dml", false},
                      ScriptUnknowns{"l2svm.dml", false},
                      ScriptUnknowns{"mlogreg.dml", true},
                      ScriptUnknowns{"glm.dml", true}),
    [](const ::testing::TestParamInfo<ScriptUnknowns>& info) {
      std::string name = info.param.file;
      return name.substr(0, name.find('.'));
    });

}  // namespace
}  // namespace relm

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "matrix/kernels.h"
#include "matrix/matrix_block.h"
#include "matrix/matrix_characteristics.h"

namespace relm {
namespace {

TEST(MatrixCharacteristicsTest, KnownAndUnknown) {
  MatrixCharacteristics mc(100, 10, 500);
  EXPECT_TRUE(mc.fully_known());
  EXPECT_DOUBLE_EQ(mc.SparsityOrWorstCase(), 0.5);
  EXPECT_EQ(mc.cells(), 1000);

  MatrixCharacteristics unk = MatrixCharacteristics::Unknown();
  EXPECT_FALSE(unk.dims_known());
  EXPECT_DOUBLE_EQ(unk.SparsityOrWorstCase(), 1.0);
  EXPECT_EQ(unk.cells(), kUnknown);
}

TEST(MatrixCharacteristicsTest, SparsePreference) {
  EXPECT_TRUE(MatrixCharacteristics::WithSparsity(100, 100, 0.01)
                  .PrefersSparse());
  EXPECT_FALSE(MatrixCharacteristics::WithSparsity(100, 100, 0.9)
                   .PrefersSparse());
  // Vectors always stay dense.
  EXPECT_FALSE(
      MatrixCharacteristics::WithSparsity(100, 1, 0.01).PrefersSparse());
}

TEST(MatrixCharacteristicsTest, MemoryEstimates) {
  // Dense 1000x1000: 8MB + overhead.
  int64_t dense = EstimateSizeInMemory(1000, 1000, 1.0);
  EXPECT_GE(dense, 8000000);
  EXPECT_LT(dense, 8100000);
  // Sparse 1% is much smaller.
  int64_t sparse = EstimateSizeInMemory(1000, 1000, 0.01);
  EXPECT_LT(sparse, dense / 10);
  // Unknown dims hit the sentinel.
  EXPECT_EQ(EstimateSizeInMemory(MatrixCharacteristics::Unknown()),
            kUnknownSizeSentinel);
}

TEST(MatrixCharacteristicsTest, DiskEstimates) {
  EXPECT_EQ(EstimateSizeOnDisk(1000, 1000, 1000 * 1000), 8000000);
  // Sparse cell format: 16 bytes per nnz.
  EXPECT_EQ(EstimateSizeOnDisk(1000, 1000, 10000), 160000);
}

TEST(MatrixBlockTest, ConstantAndIdentity) {
  MatrixBlock c = MatrixBlock::Constant(3, 2, 5.0);
  EXPECT_EQ(c.Get(2, 1), 5.0);
  EXPECT_EQ(c.ComputeNnz(), 6);
  MatrixBlock z = MatrixBlock::Constant(3, 2, 0.0);
  EXPECT_EQ(z.ComputeNnz(), 0);
  MatrixBlock i = MatrixBlock::Identity(3);
  EXPECT_EQ(i.Get(1, 1), 1.0);
  EXPECT_EQ(i.Get(0, 1), 0.0);
}

TEST(MatrixBlockTest, SeqVector) {
  MatrixBlock s = MatrixBlock::Seq(1, 5, 1);
  ASSERT_EQ(s.rows(), 5);
  EXPECT_EQ(s.Get(0, 0), 1.0);
  EXPECT_EQ(s.Get(4, 0), 5.0);
  MatrixBlock s2 = MatrixBlock::Seq(0, 1, 0.25);
  EXPECT_EQ(s2.rows(), 5);
}

TEST(MatrixBlockTest, SparseRoundTrip) {
  Random rng(3);
  MatrixBlock m = MatrixBlock::Rand(50, 40, 0.05, -1, 1, &rng);
  EXPECT_TRUE(m.is_sparse());
  MatrixBlock d = m;
  d.ToDense();
  EXPECT_TRUE(m.ApproxEquals(d));
  d.ToSparse();
  EXPECT_TRUE(m.ApproxEquals(d));
}

TEST(MatrixBlockTest, RandRespectsSparsityRoughly) {
  Random rng(11);
  MatrixBlock m = MatrixBlock::Rand(200, 200, 0.1, 1, 2, &rng);
  double sp = static_cast<double>(m.ComputeNnz()) / (200.0 * 200.0);
  EXPECT_NEAR(sp, 0.1, 0.02);
}

TEST(KernelsTest, MatMultDense) {
  MatrixBlock a(2, 3, false);
  MatrixBlock b(3, 2, false);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  double av[] = {1, 2, 3, 4, 5, 6};
  double bv[] = {7, 8, 9, 10, 11, 12};
  a.dense().assign(av, av + 6);
  b.dense().assign(bv, bv + 6);
  auto c = MatMult(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->Get(0, 0), 58);
  EXPECT_EQ(c->Get(0, 1), 64);
  EXPECT_EQ(c->Get(1, 0), 139);
  EXPECT_EQ(c->Get(1, 1), 154);
}

TEST(KernelsTest, MatMultShapeMismatch) {
  MatrixBlock a(2, 3, false);
  MatrixBlock b(2, 2, false);
  EXPECT_FALSE(MatMult(a, b).ok());
}

TEST(KernelsTest, MatMultSparseMatchesDense) {
  Random rng(5);
  MatrixBlock a = MatrixBlock::Rand(30, 40, 0.1, -1, 1, &rng);
  MatrixBlock b = MatrixBlock::Rand(40, 20, 0.1, -1, 1, &rng);
  ASSERT_TRUE(a.is_sparse());
  ASSERT_TRUE(b.is_sparse());
  MatrixBlock ad = a;
  ad.ToDense();
  MatrixBlock bd = b;
  bd.ToDense();
  auto ss = MatMult(a, b);
  auto dd = MatMult(ad, bd);
  auto sd = MatMult(a, bd);
  auto ds = MatMult(ad, b);
  ASSERT_TRUE(ss.ok());
  ASSERT_TRUE(dd.ok());
  ASSERT_TRUE(sd.ok());
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE(ss->ApproxEquals(*dd, 1e-9));
  EXPECT_TRUE(sd->ApproxEquals(*dd, 1e-9));
  EXPECT_TRUE(ds->ApproxEquals(*dd, 1e-9));
}

TEST(KernelsTest, TransposeSelfMatMult) {
  Random rng(6);
  MatrixBlock a = MatrixBlock::Rand(10, 4, 1.0, -1, 1, &rng);
  auto tsmm = TransposeSelfMatMult(a, true);
  auto ref = MatMult(Transpose(a), a);
  ASSERT_TRUE(tsmm.ok());
  EXPECT_TRUE(tsmm->ApproxEquals(*ref, 1e-9));
  auto tsmm_r = TransposeSelfMatMult(a, false);
  auto ref_r = MatMult(a, Transpose(a));
  EXPECT_TRUE(tsmm_r->ApproxEquals(*ref_r, 1e-9));
}

TEST(KernelsTest, TransposeSparse) {
  Random rng(8);
  MatrixBlock a = MatrixBlock::Rand(20, 30, 0.1, -1, 1, &rng);
  MatrixBlock t = Transpose(a);
  EXPECT_EQ(t.rows(), 30);
  EXPECT_EQ(t.cols(), 20);
  for (int r = 0; r < 20; ++r) {
    for (int c = 0; c < 30; ++c) {
      EXPECT_EQ(a.Get(r, c), t.Get(c, r));
    }
  }
}

TEST(KernelsTest, ElementwiseBroadcast) {
  MatrixBlock a = MatrixBlock::Constant(3, 2, 10.0);
  MatrixBlock col(3, 1, false);
  col.dense() = {1, 2, 3};
  auto r = ElementwiseBinary(BinOp::kSub, a, col);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Get(0, 0), 9);
  EXPECT_EQ(r->Get(2, 1), 7);

  MatrixBlock row(1, 2, false);
  row.dense() = {1, 2};
  auto r2 = ElementwiseBinary(BinOp::kDiv, a, row);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->Get(0, 1), 5);

  MatrixBlock bad(2, 2, false);
  EXPECT_FALSE(ElementwiseBinary(BinOp::kAdd, a, bad).ok());
}

TEST(KernelsTest, ScalarAndUnary) {
  MatrixBlock a = MatrixBlock::Constant(2, 2, 4.0);
  MatrixBlock r = ScalarBinary(BinOp::kPow, a, 0.5);
  EXPECT_EQ(r.Get(0, 0), 2.0);
  MatrixBlock l = ScalarBinary(BinOp::kSub, a, 1.0, /*scalar_left=*/true);
  EXPECT_EQ(l.Get(1, 1), -3.0);
  MatrixBlock u = ElementwiseUnary(UnOp::kSqrt, a);
  EXPECT_EQ(u.Get(0, 0), 2.0);
  MatrixBlock n = ElementwiseUnary(UnOp::kNeg, a);
  EXPECT_EQ(n.Get(0, 0), -4.0);
}

TEST(KernelsTest, Aggregates) {
  MatrixBlock a(2, 3, false);
  a.dense() = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(*Aggregate(AggOp::kSum, a), 21);
  EXPECT_EQ(*Aggregate(AggOp::kMin, a), 1);
  EXPECT_EQ(*Aggregate(AggOp::kMax, a), 6);
  EXPECT_DOUBLE_EQ(*Aggregate(AggOp::kMean, a), 3.5);
  EXPECT_FALSE(Aggregate(AggOp::kTrace, a).ok());  // non-square

  auto rs = AggregateAxis(AggOp::kSum, AggDir::kRow, a);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows(), 2);
  EXPECT_EQ(rs->Get(0, 0), 6);
  EXPECT_EQ(rs->Get(1, 0), 15);

  auto cs = AggregateAxis(AggOp::kSum, AggDir::kCol, a);
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->cols(), 3);
  EXPECT_EQ(cs->Get(0, 2), 9);
}

TEST(KernelsTest, Trace) {
  MatrixBlock a = MatrixBlock::Identity(4);
  EXPECT_EQ(*Aggregate(AggOp::kTrace, a), 4.0);
}

TEST(KernelsTest, Ppred) {
  MatrixBlock a(1, 4, false);
  a.dense() = {-1, 0, 0.5, 2};
  MatrixBlock p = PpredScalar(BinOp::kGreater, a, 0.0);
  EXPECT_EQ(p.Get(0, 0), 0.0);
  EXPECT_EQ(p.Get(0, 2), 1.0);
  EXPECT_EQ(p.Get(0, 3), 1.0);
}

TEST(KernelsTest, TableBuildsIndicator) {
  // y = [2,1,3,2]; table(seq(1,4), y) -> 4x3 indicator.
  MatrixBlock seq = MatrixBlock::Seq(1, 4, 1);
  MatrixBlock y(4, 1, false);
  y.dense() = {2, 1, 3, 2};
  auto t = Table(seq, y);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->rows(), 4);
  EXPECT_EQ(t->cols(), 3);
  EXPECT_EQ(t->Get(0, 1), 1.0);
  EXPECT_EQ(t->Get(1, 0), 1.0);
  EXPECT_EQ(t->Get(2, 2), 1.0);
  EXPECT_EQ(t->Get(3, 1), 1.0);
  EXPECT_EQ(t->ComputeNnz(), 4);
}

TEST(KernelsTest, TableRejectsNonPositive) {
  MatrixBlock seq = MatrixBlock::Seq(1, 2, 1);
  MatrixBlock y(2, 1, false);
  y.dense() = {0, 1};
  EXPECT_FALSE(Table(seq, y).ok());
}

TEST(KernelsTest, SolveRecoversSolution) {
  Random rng(13);
  MatrixBlock a = MatrixBlock::Rand(6, 6, 1.0, 1, 2, &rng);
  // Make diagonally dominant for stability.
  for (int i = 0; i < 6; ++i) a.Set(i, i, a.Get(i, i) + 10.0);
  MatrixBlock x_true = MatrixBlock::Rand(6, 1, 1.0, -1, 1, &rng);
  auto b = MatMult(a, x_true);
  ASSERT_TRUE(b.ok());
  auto x = Solve(a, *b);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(x->ApproxEquals(x_true, 1e-8));
}

TEST(KernelsTest, SolveSingular) {
  MatrixBlock a = MatrixBlock::Constant(3, 3, 1.0);
  MatrixBlock b = MatrixBlock::Constant(3, 1, 1.0);
  EXPECT_FALSE(Solve(a, b).ok());
}

TEST(KernelsTest, AppendAndIndex) {
  MatrixBlock a = MatrixBlock::Constant(2, 2, 1.0);
  MatrixBlock b = MatrixBlock::Constant(2, 1, 2.0);
  auto ab = Append(a, b);
  ASSERT_TRUE(ab.ok());
  EXPECT_EQ(ab->cols(), 3);
  EXPECT_EQ(ab->Get(0, 2), 2.0);

  auto sub = RightIndex(*ab, 1, 2, 3, 3);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->rows(), 2);
  EXPECT_EQ(sub->cols(), 1);
  EXPECT_EQ(sub->Get(1, 0), 2.0);

  EXPECT_FALSE(RightIndex(*ab, 0, 2, 1, 1).ok());
  EXPECT_FALSE(RightIndex(*ab, 1, 3, 1, 1).ok());
}

TEST(KernelsTest, DiagBothDirections) {
  MatrixBlock v(3, 1, false);
  v.dense() = {1, 2, 3};
  auto d = Diag(v);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->rows(), 3);
  EXPECT_EQ(d->Get(1, 1), 2.0);
  EXPECT_EQ(d->Get(0, 1), 0.0);
  auto back = Diag(*d);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ApproxEquals(v));
}

TEST(KernelsTest, CastToScalar) {
  MatrixBlock one = MatrixBlock::Constant(1, 1, 7.0);
  EXPECT_EQ(*CastToScalar(one), 7.0);
  EXPECT_FALSE(CastToScalar(MatrixBlock::Constant(2, 1, 0.0)).ok());
}

TEST(OpTypesTest, Semantics) {
  EXPECT_EQ(ApplyBinOp(BinOp::kAdd, 2, 3), 5);
  EXPECT_EQ(ApplyBinOp(BinOp::kGreaterEq, 3, 3), 1);
  EXPECT_EQ(ApplyBinOp(BinOp::kAnd, 1, 0), 0);
  EXPECT_EQ(ApplyUnOp(UnOp::kSign, -3), -1);
  EXPECT_EQ(ApplyUnOp(UnOp::kNot, 0), 1);
  EXPECT_TRUE(IsComparison(BinOp::kEq));
  EXPECT_FALSE(IsComparison(BinOp::kMul));
  EXPECT_TRUE(IsSparseSafe(BinOp::kMul));
  EXPECT_FALSE(IsSparseSafe(BinOp::kAdd));
  EXPECT_STREQ(BinOpName(BinOp::kPow), "^");
  EXPECT_STREQ(AggOpName(AggOp::kSum), "sum");
}

}  // namespace
}  // namespace relm

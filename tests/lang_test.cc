#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "lang/ast.h"
#include "lang/lexer.h"
#include "lang/parser.h"
#include "lang/statement_block.h"
#include "lang/validator.h"

namespace relm {
namespace {

std::string ReadScript(const std::string& name) {
  std::ifstream in(std::string(RELM_SCRIPTS_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing script " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

ScriptArgs DefaultArgs() {
  return ScriptArgs{{"X", "/data/X"}, {"Y", "/data/y"},
                    {"B", "/out/B"},  {"model", "/out/w"}};
}

// ---- lexer ----

TEST(LexerTest, BasicTokens) {
  auto toks = Tokenize("x = 1 + 2.5e-1; # comment\ny <- t(X) %*% v");
  ASSERT_TRUE(toks.ok());
  // x = 1 + 0.25 ; y <- t ( X ) %*% v END
  ASSERT_EQ(toks->size(), 15u);
  EXPECT_EQ((*toks)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*toks)[2].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ((*toks)[4].number, 0.25);
  EXPECT_EQ((*toks)[7].kind, TokenKind::kArrow);
  EXPECT_EQ((*toks)[12].kind, TokenKind::kMatMult);
}

TEST(LexerTest, OperatorsAndStrings) {
  auto toks = Tokenize("a >= b != \"hi \\\" there\" & !c");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[1].kind, TokenKind::kGreaterEq);
  EXPECT_EQ((*toks)[3].kind, TokenKind::kNotEq);
  EXPECT_EQ((*toks)[4].kind, TokenKind::kString);
  EXPECT_EQ((*toks)[4].text, "hi \" there");
  EXPECT_EQ((*toks)[5].kind, TokenKind::kAnd);
  EXPECT_EQ((*toks)[6].kind, TokenKind::kNot);
}

TEST(LexerTest, DollarParams) {
  auto toks = Tokenize("X = read($X)");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[4].kind, TokenKind::kDollar);
  EXPECT_EQ((*toks)[4].text, "X");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("a @ b").ok());
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("a %+% b").ok());
  EXPECT_FALSE(Tokenize("x = $").ok());
}

TEST(LexerTest, LineTracking) {
  auto toks = Tokenize("a\nbb\n  c");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].line, 1);
  EXPECT_EQ((*toks)[1].line, 2);
  EXPECT_EQ((*toks)[2].line, 3);
  EXPECT_EQ((*toks)[2].column, 3);
}

// ---- parser ----

TEST(ParserTest, Precedence) {
  auto prog = ParseDml("x = 1 + 2 * 3 ^ 2");
  ASSERT_TRUE(prog.ok());
  const auto& a = static_cast<const AssignStmt&>(*prog->statements[0]);
  // 1 + (2 * (3^2))
  EXPECT_EQ(a.rhs->ToString(), "(1 + (2 * (3 ^ 2)))");
}

TEST(ParserTest, UnaryMinusAndPower) {
  auto prog = ParseDml("x = -y ^ 2");
  ASSERT_TRUE(prog.ok());
  const auto& a = static_cast<const AssignStmt&>(*prog->statements[0]);
  // R semantics: -(y^2)
  EXPECT_EQ(a.rhs->ToString(), "-(y ^ 2)");
}

TEST(ParserTest, MatMultBindsTighterThanMul) {
  auto prog = ParseDml("q = a * X %*% v");
  ASSERT_TRUE(prog.ok());
  const auto& a = static_cast<const AssignStmt&>(*prog->statements[0]);
  EXPECT_EQ(a.rhs->ToString(), "(a * (X %*% v))");
}

TEST(ParserTest, ComparisonsAndLogic) {
  auto prog = ParseDml("c = continue & iter < maxi | done");
  ASSERT_TRUE(prog.ok());
  const auto& a = static_cast<const AssignStmt&>(*prog->statements[0]);
  EXPECT_EQ(a.rhs->ToString(), "((continue & (iter < maxi)) | done)");
}

TEST(ParserTest, IndexingForms) {
  auto prog = ParseDml("a = P[, 1:k]\nb = X[i, ]\nc = M[1:3, 2]");
  ASSERT_TRUE(prog.ok());
  const auto& a = static_cast<const AssignStmt&>(*prog->statements[0]);
  const auto* ix = static_cast<const IndexExpr*>(a.rhs.get());
  EXPECT_EQ(ix->row_lower, nullptr);
  ASSERT_NE(ix->col_lower, nullptr);
  ASSERT_NE(ix->col_upper, nullptr);
  const auto& b = static_cast<const AssignStmt&>(*prog->statements[1]);
  const auto* ix2 = static_cast<const IndexExpr*>(b.rhs.get());
  EXPECT_NE(ix2->row_lower, nullptr);
  EXPECT_EQ(ix2->row_upper, nullptr);
  EXPECT_EQ(ix2->col_lower, nullptr);
}

TEST(ParserTest, NamedCallArgs) {
  auto prog = ParseDml("w = matrix(0, rows=n, cols=1)");
  ASSERT_TRUE(prog.ok());
  const auto& a = static_cast<const AssignStmt&>(*prog->statements[0]);
  const auto* call = static_cast<const CallExpr*>(a.rhs.get());
  EXPECT_NE(call->Named("rows"), nullptr);
  EXPECT_NE(call->Named("cols"), nullptr);
  EXPECT_NE(call->Positional(0), nullptr);
  EXPECT_EQ(call->Positional(1), nullptr);
}

TEST(ParserTest, IfdefSubstitution) {
  ScriptArgs args{{"reg", "0.1"}};
  auto prog = ParseDml("lambda = ifdef($reg, 0.01)\ntol = ifdef($tol, 1e-9)",
                       args);
  ASSERT_TRUE(prog.ok());
  const auto& l = static_cast<const AssignStmt&>(*prog->statements[0]);
  EXPECT_EQ(l.rhs->ToString(), "0.1");
  const auto& t = static_cast<const AssignStmt&>(*prog->statements[1]);
  EXPECT_EQ(t.rhs->ToString(), "0.000000001");
}

TEST(ParserTest, MultiAssign) {
  auto prog = ParseDml("[a, b] = f(x)");
  ASSERT_TRUE(prog.ok());
  const auto& a = static_cast<const AssignStmt&>(*prog->statements[0]);
  ASSERT_EQ(a.targets.size(), 2u);
  EXPECT_EQ(a.targets[1], "b");
}

TEST(ParserTest, ControlFlow) {
  auto prog = ParseDml(
      "while (c & i < 5) { i = i + 1; }\n"
      "if (x > 0) { y = 1 } else if (x < 0) { y = -1 } else { y = 0 }\n"
      "for (j in 1:10) { s = s + j }\n"
      "for (j in seq(2, 20, 2)) { s = s + j }");
  ASSERT_TRUE(prog.ok());
  ASSERT_EQ(prog->statements.size(), 4u);
  EXPECT_EQ(prog->statements[0]->kind, Statement::Kind::kWhile);
  const auto& iff = static_cast<const IfStmt&>(*prog->statements[1]);
  ASSERT_EQ(iff.else_body.size(), 1u);
  EXPECT_EQ(iff.else_body[0]->kind, Statement::Kind::kIf);
  const auto& fr = static_cast<const ForStmt&>(*prog->statements[3]);
  ASSERT_NE(fr.increment, nullptr);
}

TEST(ParserTest, FunctionDef) {
  auto prog = ParseDml(
      "f = function(matrix[double] X, double lam) "
      "return (matrix[double] out, double s) { out = X * lam; s = sum(out) }\n"
      "[o, v] = f(M, 2)");
  ASSERT_TRUE(prog.ok());
  ASSERT_EQ(prog->functions.size(), 1u);
  const auto& fn = prog->functions.at("f");
  ASSERT_EQ(fn.params.size(), 2u);
  EXPECT_EQ(fn.params[0].data_type, DataType::kMatrix);
  EXPECT_EQ(fn.params[1].data_type, DataType::kScalar);
  ASSERT_EQ(fn.returns.size(), 2u);
  EXPECT_EQ(fn.returns[1].name, "s");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseDml("x = ").ok());
  EXPECT_FALSE(ParseDml("if x > 0 { }").ok());
  EXPECT_FALSE(ParseDml("while (a { }").ok());
  EXPECT_FALSE(ParseDml("x = f(1,").ok());
  EXPECT_FALSE(ParseDml("x = ifdef($a)").ok());
  EXPECT_FALSE(ParseDml("for (i in 1) { }").ok());
}

// ---- statement blocks + liveness ----

TEST(BlocksTest, GroupingAndNesting) {
  auto prog = ParseDml(
      "a = 1\nb = 2\n"
      "while (a < 10) { a = a + b\n c = a * 2 }\n"
      "d = a");
  ASSERT_TRUE(prog.ok());
  auto blocks = BuildProgramBlocks(*prog);
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->main.size(), 3u);
  EXPECT_EQ(blocks->main[0]->kind(), BlockKind::kGeneric);
  EXPECT_EQ(blocks->main[0]->statements.size(), 2u);
  EXPECT_EQ(blocks->main[1]->kind(), BlockKind::kWhile);
  ASSERT_EQ(blocks->main[1]->body.size(), 1u);
  EXPECT_EQ(blocks->main[2]->kind(), BlockKind::kGeneric);
  EXPECT_EQ(blocks->TotalBlocks(), 4);
}

TEST(BlocksTest, Liveness) {
  auto prog = ParseDml(
      "x = read($X)\n"
      "s = sum(x)\n"
      "while (i < 3) { s = s + sum(x); i = i + 1 }\n"
      "print(\"total \" + s)");
  ASSERT_TRUE(prog.ok());
  auto blocks = BuildProgramBlocks(*prog);
  ASSERT_TRUE(blocks.ok());
  const auto& wh = *blocks->main[1];
  // x, s, i live into the loop; s live out (printed after).
  EXPECT_TRUE(wh.live_in.count("x"));
  EXPECT_TRUE(wh.live_in.count("s"));
  EXPECT_TRUE(wh.live_in.count("i"));
  EXPECT_TRUE(wh.live_out.count("s"));
  EXPECT_FALSE(wh.live_out.count("x"));
  EXPECT_TRUE(wh.updated.count("s"));
  EXPECT_TRUE(wh.updated.count("i"));
  // Final print block needs s.
  EXPECT_TRUE(blocks->main[2]->live_in.count("s"));
}

TEST(BlocksTest, IfLiveness) {
  auto prog = ParseDml(
      "a = 1\n"
      "if (c > 0) { b = a } else { b = 2 }\n"
      "print(\"\" + b)");
  ASSERT_TRUE(prog.ok());
  auto blocks = BuildProgramBlocks(*prog);
  ASSERT_TRUE(blocks.ok());
  const auto& iff = *blocks->main[1];
  EXPECT_TRUE(iff.live_in.count("a"));  // read in then-branch
  EXPECT_TRUE(iff.live_in.count("c"));  // predicate
  EXPECT_TRUE(iff.live_out.count("b"));
}

// ---- validator ----

Result<DmlProgram> ParseAndValidate(const std::string& src,
                                    const ScriptArgs& args = {}) {
  RELM_ASSIGN_OR_RETURN(DmlProgram prog, ParseDml(src, args));
  RELM_RETURN_IF_ERROR(ValidateProgram(&prog));
  return prog;
}

TEST(ValidatorTest, TypesFlow) {
  auto prog = ParseAndValidate(
      "X = read(\"/x\")\n"
      "n = nrow(X)\n"
      "v = matrix(0, rows=n, cols=1)\n"
      "q = X %*% v\n"
      "s = sum(q)\n"
      "flag = s > 0");
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  const auto& q = static_cast<const AssignStmt&>(*prog->statements[3]);
  EXPECT_EQ(q.rhs->data_type, DataType::kMatrix);
  const auto& s = static_cast<const AssignStmt&>(*prog->statements[4]);
  EXPECT_EQ(s.rhs->data_type, DataType::kScalar);
  const auto& f = static_cast<const AssignStmt&>(*prog->statements[5]);
  EXPECT_EQ(f.rhs->value_type, ValueType::kBoolean);
}

TEST(ValidatorTest, Errors) {
  EXPECT_FALSE(ParseAndValidate("y = undefined_var + 1").ok());
  EXPECT_FALSE(ParseAndValidate("x = 1\ny = x %*% x").ok());
  EXPECT_FALSE(ParseAndValidate("y = nosuchfunc(1)").ok());
  EXPECT_FALSE(ParseAndValidate("x = sum(1, 2)").ok());
  EXPECT_FALSE(ParseAndValidate("x = read(\"/x\")\ny = ppred(x, 0, 3)").ok());
  EXPECT_FALSE(ParseAndValidate("x = $missing").ok());
  EXPECT_FALSE(ParseAndValidate("m = matrix(0, rows=2)").ok());
}

TEST(ValidatorTest, StringConcat) {
  auto prog = ParseAndValidate("i = 3\nmsg = \"iter \" + i\nprint(msg)");
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  const auto& m = static_cast<const AssignStmt&>(*prog->statements[1]);
  EXPECT_EQ(m.rhs->value_type, ValueType::kString);
}

TEST(ValidatorTest, UserFunctions) {
  auto prog = ParseAndValidate(
      "sq = function(matrix[double] A) return (matrix[double] B) "
      "{ B = A * A }\n"
      "X = read(\"/x\")\n"
      "Y = sq(X)\n"
      "s = sum(Y)");
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  // Wrong arity.
  EXPECT_FALSE(ParseAndValidate(
                   "sq = function(matrix[double] A) return "
                   "(matrix[double] B) { B = A }\n"
                   "Y = sq()")
                   .ok());
  // Missing return assignment.
  EXPECT_FALSE(ParseAndValidate(
                   "f = function(double a) return (double b) { c = a }")
                   .ok());
}

// ---- full scripts (Table 1 program characteristics) ----

struct ScriptCase {
  const char* file;
  int min_lines;
  int min_blocks;
  bool has_functions;
};

class ScriptParseTest : public ::testing::TestWithParam<ScriptCase> {};

TEST_P(ScriptParseTest, ParsesValidatesAndBuildsBlocks) {
  const ScriptCase& sc = GetParam();
  std::string src = ReadScript(sc.file);
  auto prog = ParseDml(src, DefaultArgs());
  ASSERT_TRUE(prog.ok()) << sc.file << ": " << prog.status().ToString();
  ASSERT_TRUE(ValidateProgram(&*prog).ok())
      << sc.file << ": " << ValidateProgram(&*prog).ToString();
  EXPECT_GE(prog->source_lines, sc.min_lines) << sc.file;
  EXPECT_EQ(!prog->functions.empty(), sc.has_functions) << sc.file;
  auto blocks = BuildProgramBlocks(*prog);
  ASSERT_TRUE(blocks.ok()) << sc.file;
  EXPECT_GE(blocks->TotalBlocks(), sc.min_blocks) << sc.file;
}

INSTANTIATE_TEST_SUITE_P(
    AllScripts, ScriptParseTest,
    ::testing::Values(ScriptCase{"linreg_ds.dml", 30, 3, false},
                      ScriptCase{"linreg_cg.dml", 45, 6, false},
                      ScriptCase{"l2svm.dml", 40, 8, false},
                      ScriptCase{"mlogreg.dml", 50, 10, false},
                      ScriptCase{"glm.dml", 90, 15, true}),
    [](const ::testing::TestParamInfo<ScriptCase>& info) {
      std::string name = info.param.file;
      return name.substr(0, name.find('.'));
    });

TEST(ScriptStructureTest, L2svmNestedLoops) {
  std::string src = ReadScript("l2svm.dml");
  auto prog = ParseDml(src, DefaultArgs());
  ASSERT_TRUE(prog.ok());
  auto blocks = BuildProgramBlocks(*prog);
  ASSERT_TRUE(blocks.ok());
  // Find the outer while; it must contain a nested while (line search).
  bool found_nested = false;
  for (const auto& b : blocks->main) {
    if (b->kind() != BlockKind::kWhile) continue;
    for (const auto& c : b->body) {
      if (c->kind() == BlockKind::kWhile) found_nested = true;
    }
  }
  EXPECT_TRUE(found_nested);
}

}  // namespace
}  // namespace relm

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/random.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/string_util.h"

namespace relm {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("unexpected token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "unexpected token");
  EXPECT_EQ(s.ToString(), "ParseError: unexpected token");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kRuntimeError), "RuntimeError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceError), "ResourceError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnsupported), "Unsupported");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOverloaded), "Overloaded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
}

TEST(RetryTest, OnlyUnavailableIsRetryable) {
  EXPECT_TRUE(IsRetryable(Status::Unavailable("transient")));
  EXPECT_FALSE(IsRetryable(Status::OK()));
  EXPECT_FALSE(IsRetryable(Status::RuntimeError("hard")));
  EXPECT_FALSE(IsRetryable(Status::Overloaded("shed")));
  EXPECT_FALSE(IsRetryable(Status::DeadlineExceeded("late")));
  EXPECT_FALSE(IsRetryable(Status::Cancelled("stop")));
}

TEST(RetryTest, ExponentialBackoffDoublesAndCaps) {
  EXPECT_DOUBLE_EQ(ExponentialBackoffSeconds(0.5, 1), 0.5);
  EXPECT_DOUBLE_EQ(ExponentialBackoffSeconds(0.5, 2), 1.0);
  EXPECT_DOUBLE_EQ(ExponentialBackoffSeconds(0.5, 4), 4.0);
  EXPECT_DOUBLE_EQ(ExponentialBackoffSeconds(0.5, 4, 2.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(ExponentialBackoffSeconds(1.0, 3, 3.0), 9.0);
}

TEST(RetryTest, PolicyValidates) {
  EXPECT_TRUE(RetryPolicy().Validate().ok());
  EXPECT_FALSE(RetryPolicy().WithMaxAttempts(0).Validate().ok());
  EXPECT_FALSE(
      RetryPolicy().WithInitialBackoffSeconds(-0.1).Validate().ok());
  EXPECT_FALSE(RetryPolicy().WithBackoffMultiplier(0.5).Validate().ok());
  EXPECT_FALSE(RetryPolicy().WithJitterFraction(1.0).Validate().ok());
}

TEST(RetryTest, JitteredBackoffStaysNearSchedule) {
  RetryPolicy policy = RetryPolicy()
                           .WithInitialBackoffSeconds(0.1)
                           .WithMaxBackoffSeconds(10.0)
                           .WithJitterFraction(0.2);
  Random rng(7);
  for (int attempt = 1; attempt <= 5; ++attempt) {
    double base = ExponentialBackoffSeconds(0.1, attempt, 2.0, 10.0);
    double got = policy.BackoffSeconds(attempt, &rng);
    EXPECT_GE(got, base * 0.8) << attempt;
    EXPECT_LE(got, base * 1.2) << attempt;
  }
  // Without an rng the schedule is exact.
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(3, nullptr), 0.4);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HalveEven(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> QuarterEven(int v) {
  RELM_ASSIGN_OR_RETURN(int half, HalveEven(v));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*QuarterEven(8), 2);
  EXPECT_FALSE(QuarterEven(6).ok());
  EXPECT_EQ(QuarterEven(6).status().code(), StatusCode::kInvalidArgument);
}

TEST(BytesTest, Constants) {
  EXPECT_EQ(kKB, 1024);
  EXPECT_EQ(kMB, 1024 * 1024);
  EXPECT_EQ(GigaBytes(1.0), kGB);
  EXPECT_EQ(MegaBytes(512), 512 * kMB);
}

TEST(BytesTest, Format) {
  EXPECT_EQ(FormatBytes(512 * kMB), "512MB");
  EXPECT_EQ(FormatBytes(8 * kGB), "8GB");
  EXPECT_EQ(FormatBytes(1536), "1.5KB");
  EXPECT_EQ(FormatBytes(10), "10B");
}

TEST(StringUtilTest, SplitTrimJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Join({"a", "b"}, "-"), "a-b");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("linreg_ds.dml", "linreg"));
  EXPECT_FALSE(StartsWith("x", "xyz"));
  EXPECT_TRUE(EndsWith("linreg_ds.dml", ".dml"));
  EXPECT_FALSE(EndsWith("a", "ab"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(0.001, 3), "0.001");
}

TEST(RandomTest, Deterministic) {
  Random a(7);
  Random b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RandomTest, UniformInRange) {
  Random r(1);
  for (int i = 0; i < 1000; ++i) {
    double v = r.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RandomTest, NoiseBounded) {
  Random r(9);
  for (int i = 0; i < 1000; ++i) {
    double v = r.Noise(0.05);
    EXPECT_GE(v, 0.95);
    EXPECT_LE(v, 1.05);
  }
}

}  // namespace
}  // namespace relm

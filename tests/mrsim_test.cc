#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "core/resource_optimizer.h"
#include "mrsim/cluster_simulator.h"
#include "mrsim/throughput.h"

namespace relm {
namespace {

// ---- cluster simulator ----

std::string ReadScript(const std::string& name) {
  std::ifstream in(std::string(RELM_SCRIPTS_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing script " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest() : cc_(ClusterConfig::PaperCluster()) {}

  std::unique_ptr<MlProgram> CompileScript(const std::string& file,
                                           int64_t rows, int64_t cols,
                                           double sparsity = 1.0) {
    hdfs_ = std::make_unique<SimulatedHdfs>(cc_.hdfs_block_size);
    hdfs_->PutMetadata("/data/X", MatrixCharacteristics::WithSparsity(
                                      rows, cols, sparsity));
    hdfs_->PutMetadata("/data/y", MatrixCharacteristics::Dense(rows, 1));
    ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"},
                    {"B", "/out/B"},  {"model", "/out/w"}};
    auto p = MlProgram::Compile(ReadScript(file), args, hdfs_.get());
    EXPECT_TRUE(p.ok()) << file << ": " << p.status().ToString();
    return std::move(*p);
  }

  double Measure(const std::string& file, int64_t rows, int64_t cols,
                 const ResourceConfig& config, SimOptions opts = {},
                 const SymbolMap& oracle = {}, SimResult* out = nullptr) {
    auto p = CompileScript(file, rows, cols);
    ClusterSimulator sim(cc_, opts);
    auto r = sim.Execute(p.get(), config, oracle);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (out != nullptr) *out = *r;
    return r->elapsed_seconds;
  }

  ClusterConfig cc_;
  std::unique_ptr<SimulatedHdfs> hdfs_;
};

TEST_F(SimulatorTest, MeasuredTimesArePositiveAndOrdered) {
  // LinregCG, 8GB dense: a large CP must beat the minimum CP.
  double small = Measure("linreg_cg.dml", 1000000, 1000,
                         ResourceConfig(512 * kMB, GigaBytes(4.4)));
  double large = Measure("linreg_cg.dml", 1000000, 1000,
                         ResourceConfig(20 * kGB, GigaBytes(4.4)));
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, 0.0);
  EXPECT_LT(large, small);
}

TEST_F(SimulatorTest, LinregDsDistributedBeatsLocalAtScale) {
  double distributed = Measure("linreg_ds.dml", 1000000, 1000,
                               ResourceConfig(2 * kGB, 2 * kGB));
  double local = Measure("linreg_ds.dml", 1000000, 1000,
                         ResourceConfig(cc_.MaxHeapSize(), 2 * kGB));
  EXPECT_LT(distributed, local);
}

TEST_F(SimulatorTest, MeasuredTracksEstimatedShape) {
  // The simulator and cost model share first-order physics: for a plan
  // without unknowns the measured and estimated times should agree
  // within a small factor.
  auto p = CompileScript("l2svm.dml", 1000000, 1000);
  ResourceConfig cfg(4 * kGB, 2 * kGB);
  CompileCounters counters;
  auto rp = GenerateRuntimeProgram(p.get(), cc_, cfg, &counters);
  ASSERT_TRUE(rp.ok());
  CostModel cm(cc_);
  double estimated = cm.EstimateProgramCost(*rp);
  SimOptions opts;
  opts.noise = 0.0;
  ClusterSimulator sim(cc_, opts);
  auto r = sim.Execute(p.get(), cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->elapsed_seconds, estimated * 0.3);
  EXPECT_LT(r->elapsed_seconds, estimated * 3.0);
}

TEST_F(SimulatorTest, NoiseIsReproducible) {
  SimOptions opts;
  opts.seed = 7;
  double a = Measure("linreg_ds.dml", 1000000, 1000,
                     ResourceConfig(2 * kGB, 2 * kGB), opts);
  double b = Measure("linreg_ds.dml", 1000000, 1000,
                     ResourceConfig(2 * kGB, 2 * kGB), opts);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST_F(SimulatorTest, SmallHeapSuffersEvictions) {
  // CG with a CP heap just below the data size: X cannot stay resident,
  // so each iteration re-reads it (buffer-pool evictions).
  SimResult small_result;
  Measure("linreg_cg.dml", 1000000, 1000,
          ResourceConfig(8 * kGB, 2 * kGB), {}, {}, &small_result);
  SimResult large_result;
  Measure("linreg_cg.dml", 1000000, 1000,
          ResourceConfig(24 * kGB, 2 * kGB), {}, {}, &large_result);
  EXPECT_GT(small_result.bufferpool_evictions,
            large_result.bufferpool_evictions);
}

TEST_F(SimulatorTest, MlogregUnknownsResolveViaOracle) {
  // MLogreg with k=20 classes: table() output size comes from the
  // oracle; dynamic recompilation must pick it up.
  SymbolMap oracle;
  SymbolInfo y_info;
  y_info.dtype = DataType::kMatrix;
  y_info.mc = MatrixCharacteristics(1000000, 20, 1000000);
  oracle["Y"] = y_info;
  SimOptions opts;
  SimResult result;
  Measure("mlogreg.dml", 1000000, 100,
          ResourceConfig(512 * kMB, 512 * kMB), opts, oracle, &result);
  EXPECT_GT(result.dynamic_recompiles, 0);
}

TEST_F(SimulatorTest, AdaptationMigratesAndImproves) {
  // 800MB dense100 with k=2 classes: after the table() size resolves,
  // the core loop fits a ~2GB CP heap, but the initial (unknown-blind)
  // optimization stays near the minimum and pays MR-job latency in every
  // iteration until adaptation migrates (the Figure 15 S scenario).
  const int64_t rows = 1000000;
  const int64_t cols = 100;
  SymbolMap oracle;
  SymbolInfo y_info;
  y_info.dtype = DataType::kMatrix;
  y_info.mc = MatrixCharacteristics(rows, 2, rows);
  oracle["Y"] = y_info;

  // Initial configuration from the initial resource optimization (which
  // cannot see through the unknowns).
  auto p0 = CompileScript("mlogreg.dml", rows, cols);
  ResourceOptimizer opt(cc_, OptimizerOptions{});
  auto initial = opt.Optimize(p0.get());
  ASSERT_TRUE(initial.ok());

  SimOptions no_adapt;
  no_adapt.enable_adaptation = false;
  SimResult r_no;
  double t_no = Measure("mlogreg.dml", rows, cols, *initial, no_adapt,
                        oracle, &r_no);

  SimOptions adapt;
  adapt.enable_adaptation = true;
  SimResult r_yes;
  double t_yes = Measure("mlogreg.dml", rows, cols, *initial, adapt,
                         oracle, &r_yes);

  EXPECT_LE(r_yes.migrations, 2);  // paper: at most two migrations
  EXPECT_GE(r_yes.reoptimizations, 1);
  EXPECT_LT(t_yes, t_no) << "adaptation must pay off";
}

TEST_F(SimulatorTest, GlmDerivesFunctionSizes) {
  // GLM's unknowns come from UDF outputs; the simulator derives them
  // from known argument sizes without any oracle entries.
  SimOptions opts;
  SimResult result;
  Measure("glm.dml", 1000000, 100, ResourceConfig(2 * kGB, 2 * kGB),
          opts, {}, &result);
  EXPECT_GT(result.dynamic_recompiles, 0);
  bool derived = false;
  for (const auto& ev : result.events) {
    if (ev.what.find("derived return size") != std::string::npos) {
      derived = true;
    }
  }
  EXPECT_TRUE(derived);
}

// ---- throughput ----

TEST(ThroughputTest, ConcurrencyLimitedByContainerSize) {
  ClusterConfig cc = ClusterConfig::PaperCluster();
  // B-LL: 80GB AM containers -> 6 concurrent apps.
  auto big = SimulateThroughput(cc, 80 * kGB, 60.0, 32, 8, 0.0);
  EXPECT_EQ(big.max_concurrent, 6);
  // Opt: 12GB containers -> 36 concurrent apps.
  auto small = SimulateThroughput(cc, 12 * kGB, 60.0, 32, 8, 0.0);
  EXPECT_EQ(small.max_concurrent, 32);  // limited by users, not memory
  EXPECT_GT(small.apps_per_minute, big.apps_per_minute * 4);
}

TEST(ThroughputTest, NoDifferenceAtLowConcurrency) {
  ClusterConfig cc = ClusterConfig::PaperCluster();
  auto big = SimulateThroughput(cc, 80 * kGB, 60.0, 4, 8, 0.0);
  auto small = SimulateThroughput(cc, 12 * kGB, 60.0, 4, 8, 0.0);
  EXPECT_NEAR(big.apps_per_minute, small.apps_per_minute,
              0.01 * small.apps_per_minute);
}

TEST(ThroughputTest, SaturationSlowsThroughput) {
  ClusterConfig cc = ClusterConfig::PaperCluster();
  auto ideal = SimulateThroughput(cc, 12 * kGB, 60.0, 32, 8, 0.0);
  auto saturated = SimulateThroughput(cc, 12 * kGB, 60.0, 32, 8, 0.10);
  EXPECT_LT(saturated.apps_per_minute, ideal.apps_per_minute);
  EXPECT_EQ(saturated.apps_completed, 32 * 8);
}

TEST(ThroughputTest, AllAppsComplete) {
  ClusterConfig cc = ClusterConfig::PaperCluster();
  auto r = SimulateThroughput(cc, 80 * kGB, 10.0, 128, 8, 0.05);
  EXPECT_EQ(r.apps_completed, 1024);
  EXPECT_GT(r.total_seconds, 0.0);
}

}  // namespace
}  // namespace relm

#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "hdfs/file_system.h"
#include "yarn/cluster_config.h"
#include "yarn/resource_manager.h"

namespace relm {
namespace {

TEST(SimulatedHdfsTest, MetadataLifecycle) {
  SimulatedHdfs fs;
  EXPECT_FALSE(fs.Exists("/data/X"));
  fs.PutMetadata("/data/X", MatrixCharacteristics::Dense(1000, 1000));
  ASSERT_TRUE(fs.Exists("/data/X"));
  auto f = fs.Get("/data/X");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->size_bytes, 8000000);
  EXPECT_EQ(f->format, DataFormat::kBinaryBlock);
  EXPECT_EQ(f->data, nullptr);
  fs.Delete("/data/X");
  EXPECT_FALSE(fs.Exists("/data/X"));
  EXPECT_FALSE(fs.Get("/data/X").ok());
}

TEST(SimulatedHdfsTest, RealPayload) {
  SimulatedHdfs fs;
  fs.PutMatrix("/data/y", MatrixBlock::Constant(10, 1, 2.0));
  auto f = fs.Get("/data/y");
  ASSERT_TRUE(f.ok());
  ASSERT_NE(f->data, nullptr);
  EXPECT_EQ(f->data->Get(3, 0), 2.0);
  EXPECT_EQ(f->characteristics.nnz(), 10);
}

TEST(SimulatedHdfsTest, BlockCounting) {
  SimulatedHdfs fs(128 * kMB);
  EXPECT_EQ(fs.NumBlocks(1), 1);
  EXPECT_EQ(fs.NumBlocks(128 * kMB), 1);
  EXPECT_EQ(fs.NumBlocks(128 * kMB + 1), 2);
  EXPECT_EQ(fs.NumBlocks(8 * kGB), 64);
}

TEST(SimulatedHdfsTest, ReadFaultHookFailsMatchingReads) {
  SimulatedHdfs fs;
  fs.PutMatrix("/data/y", MatrixBlock::Constant(10, 1, 2.0));
  fs.PutMatrix("/data/z", MatrixBlock::Constant(10, 1, 3.0));
  fs.SetReadFaultHook([](const std::string& path) {
    return path == "/data/y" ? Status::Unavailable("injected: " + path)
                             : Status::OK();
  });
  auto failed = fs.Get("/data/y");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(fs.Get("/data/z").ok());  // non-matching paths unaffected
  // Clearing the hook restores normal reads.
  fs.SetReadFaultHook(nullptr);
  EXPECT_TRUE(fs.Get("/data/y").ok());
}

TEST(SimulatedHdfsTest, ListAndTotal) {
  SimulatedHdfs fs;
  fs.PutMetadata("/b", MatrixCharacteristics::Dense(10, 10));
  fs.PutMetadata("/a", MatrixCharacteristics::Dense(10, 10));
  auto paths = fs.ListPaths();
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "/a");
  EXPECT_EQ(fs.TotalBytes(), 2 * 800);
}

TEST(ClusterConfigTest, PaperClusterShape) {
  ClusterConfig cc = ClusterConfig::PaperCluster();
  EXPECT_EQ(cc.num_worker_nodes, 6);
  EXPECT_EQ(cc.total_cores(), 72);
  EXPECT_EQ(cc.total_memory(), 480 * kGB);
  // Max heap 80GB/1.5 = 53.3GB, as quoted in the paper.
  EXPECT_NEAR(static_cast<double>(cc.MaxHeapSize()) / kGB, 53.33, 0.01);
}

TEST(ClusterConfigTest, ContainerRequestRounding) {
  ClusterConfig cc = ClusterConfig::PaperCluster();
  // 512MB heap -> 768MB raw -> rounds to 1GB (two 512MB units).
  EXPECT_EQ(cc.ContainerRequestForHeap(512 * kMB), 1 * kGB);
  // 8GB heap -> 12GB request.
  EXPECT_EQ(cc.ContainerRequestForHeap(8 * kGB), 12 * kGB);
  // Max heap never exceeds the max allocation.
  EXPECT_LE(cc.ContainerRequestForHeap(cc.MaxHeapSize()),
            cc.max_allocation);
}

TEST(ClusterConfigTest, BudgetAndTaskPacking) {
  ClusterConfig cc = ClusterConfig::PaperCluster();
  EXPECT_EQ(ClusterConfig::BudgetForHeap(10 * kGB), 7 * kGB);
  // The paper: 4.4GB task heap -> 12 * 4.4GB * 1.5 fits in 80GB, i.e. all
  // 12 cores per node usable.
  EXPECT_EQ(cc.MaxTasksPerNode(GigaBytes(4.4)), 12);
  // Very large tasks: only one per node.
  EXPECT_EQ(cc.MaxTasksPerNode(GigaBytes(40.0)), 1);
}

TEST(ResourceManagerTest, AllocateReleaseAccounting) {
  ClusterConfig cc = ClusterConfig::PaperCluster();
  ResourceManager rm(cc);
  EXPECT_EQ(rm.TotalFreeMemory(), cc.total_memory());
  auto c = rm.Allocate(10 * kGB);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(rm.TotalFreeMemory(), cc.total_memory() - 10 * kGB);
  rm.Release(*c);
  EXPECT_EQ(rm.TotalFreeMemory(), cc.total_memory());
  rm.Release(*c);  // idempotent
  EXPECT_EQ(rm.TotalFreeMemory(), cc.total_memory());
}

TEST(ResourceManagerTest, RoundsUpToMinAllocation) {
  ResourceManager rm(ClusterConfig::PaperCluster());
  auto c = rm.Allocate(700 * kMB);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->memory, 1 * kGB);
}

TEST(ResourceManagerTest, RejectsOversizeAndExhaustion) {
  ClusterConfig cc = ClusterConfig::PaperCluster();
  ResourceManager rm(cc);
  EXPECT_FALSE(rm.Allocate(81 * kGB).ok());
  EXPECT_FALSE(rm.Allocate(0).ok());
  // Exhaust the cluster with 80GB containers (one per node).
  std::vector<Container> held;
  for (int i = 0; i < cc.num_worker_nodes; ++i) {
    auto c = rm.Allocate(80 * kGB);
    ASSERT_TRUE(c.ok());
    held.push_back(*c);
  }
  EXPECT_FALSE(rm.Allocate(80 * kGB).ok());
  rm.Release(held[0]);
  EXPECT_TRUE(rm.Allocate(80 * kGB).ok());
}

TEST(ResourceManagerTest, MaxConcurrentContainersMatchesPaper) {
  ClusterConfig cc = ClusterConfig::PaperCluster();
  ResourceManager rm(cc);
  // Paper S5.3: 8GB heap -> 12GB container -> 6*floor(80/12)=36 apps.
  EXPECT_EQ(rm.MaxConcurrentContainers(cc.ContainerRequestForHeap(8 * kGB)),
            36);
  // 4GB heap -> 6GB container -> 6*floor(80/6)=78 apps.
  EXPECT_EQ(rm.MaxConcurrentContainers(cc.ContainerRequestForHeap(4 * kGB)),
            78);
  // 53.3GB heap -> 80GB container -> 6 apps.
  EXPECT_EQ(rm.MaxConcurrentContainers(
                cc.ContainerRequestForHeap(cc.MaxHeapSize())),
            6);
}

TEST(ResourceManagerTest, SpreadsAcrossNodes) {
  ClusterConfig cc = ClusterConfig::PaperCluster();
  ResourceManager rm(cc);
  auto a = rm.Allocate(40 * kGB);
  auto b = rm.Allocate(40 * kGB);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->node, b->node);  // most-free placement spreads load
}

TEST(ResourceManagerTest, ReleaseIsSafeAgainstDoubleAndUnknownIds) {
  ClusterConfig cc = ClusterConfig::PaperCluster();
  ResourceManager rm(cc);
  auto a = rm.Allocate(10 * kGB);
  auto b = rm.Allocate(10 * kGB);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Unknown id: must be a no-op regardless of the claimed memory.
  Container bogus;
  bogus.id = 999999;
  bogus.node = 0;
  bogus.memory = 500 * kGB;
  rm.Release(bogus);
  EXPECT_EQ(rm.TotalFreeMemory(), cc.total_memory() - 20 * kGB);
  // Double release: the second call must not free memory twice.
  rm.Release(*a);
  rm.Release(*a);
  rm.Release(*a);
  EXPECT_EQ(rm.TotalFreeMemory(), cc.total_memory() - 10 * kGB);
  rm.Release(*b);
  // Invariant after any release sequence: no node exceeds its capacity.
  for (int n = 0; n < cc.num_worker_nodes; ++n) {
    EXPECT_LE(rm.FreeMemory(n), cc.memory_per_node);
  }
  EXPECT_EQ(rm.TotalFreeMemory(), cc.total_memory());
  EXPECT_EQ(rm.NumLiveContainers(), 0);
}

TEST(ResourceManagerTest, DecommissionKillsContainersAndRecommissionRestores) {
  ClusterConfig cc = ClusterConfig::PaperCluster();
  ResourceManager rm(cc);
  std::vector<Container> held;
  for (int i = 0; i < cc.num_worker_nodes; ++i) {
    auto c = rm.Allocate(40 * kGB);
    ASSERT_TRUE(c.ok());
    held.push_back(*c);
  }
  int victim_node = held[0].node;
  auto killed = rm.DecommissionNode(victim_node);
  ASSERT_EQ(killed.size(), 1u);
  EXPECT_EQ(killed[0].node, victim_node);
  EXPECT_FALSE(rm.NodeAvailable(victim_node));
  EXPECT_EQ(rm.NumAvailableNodes(), cc.num_worker_nodes - 1);
  EXPECT_EQ(rm.FreeMemory(victim_node), 0);
  // Releasing a container that died with its node is a harmless no-op.
  rm.Release(killed[0]);
  EXPECT_EQ(rm.FreeMemory(victim_node), 0);
  // A second decommission of the same node finds nothing to kill.
  EXPECT_TRUE(rm.DecommissionNode(victim_node).empty());
  // Allocation skips the down node.
  auto c = rm.Allocate(20 * kGB);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(c->node, victim_node);
  // Recommission restores the full (empty) node.
  ASSERT_TRUE(rm.RecommissionNode(victim_node).ok());
  EXPECT_TRUE(rm.NodeAvailable(victim_node));
  EXPECT_EQ(rm.FreeMemory(victim_node), cc.memory_per_node);
  for (int n = 0; n < cc.num_worker_nodes; ++n) {
    EXPECT_LE(rm.FreeMemory(n), cc.memory_per_node);
  }
}

TEST(ResourceManagerTest, PreemptionEvictsLowerPriorityOnly) {
  ClusterConfig cc = ClusterConfig::PaperCluster();
  ResourceManager rm(cc);
  // Fill the cluster with low-priority tenants.
  std::vector<Container> tenants;
  for (int i = 0; i < cc.num_worker_nodes; ++i) {
    auto c = rm.Allocate(80 * kGB, /*priority=*/-1);
    ASSERT_TRUE(c.ok());
    tenants.push_back(*c);
  }
  ASSERT_FALSE(rm.Allocate(10 * kGB).ok());
  // Equal priority cannot preempt.
  std::vector<Container> preempted;
  EXPECT_FALSE(rm.AllocateWithPreemption(10 * kGB, -1, &preempted).ok());
  EXPECT_TRUE(preempted.empty());
  // Higher priority evicts the cheapest victim set and fits.
  auto c = rm.AllocateWithPreemption(10 * kGB, /*priority=*/100, &preempted);
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(preempted.size(), 1u);
  EXPECT_EQ(preempted[0].node, c->node);
  EXPECT_EQ(preempted[0].priority, -1);
  // The victim is gone: releasing it again must not corrupt accounting.
  rm.Release(preempted[0]);
  for (int n = 0; n < cc.num_worker_nodes; ++n) {
    EXPECT_LE(rm.FreeMemory(n), cc.memory_per_node);
  }
  EXPECT_EQ(rm.TotalFreeMemory(),
            cc.total_memory() - 5 * 80 * kGB - c->memory);
}

}  // namespace
}  // namespace relm

// Property tests for the matrix kernels: every optimized path (sparse
// formats, fused variants, broadcasts) must agree with a brute-force
// reference implementation across a parameterized sweep of shapes and
// sparsities; metadata (nnz, memory sizes) must stay consistent with the
// data.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/random.h"
#include "matrix/kernels.h"
#include "matrix/matrix_block.h"

namespace relm {
namespace {

/// Brute-force reference matmult via Get().
MatrixBlock RefMatMult(const MatrixBlock& a, const MatrixBlock& b) {
  MatrixBlock c(a.rows(), b.cols(), false);
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < b.cols(); ++j) {
      double acc = 0;
      for (int64_t k = 0; k < a.cols(); ++k) {
        acc += a.Get(i, k) * b.Get(k, j);
      }
      c.Set(i, j, acc);
    }
  }
  return c;
}

using ShapeSparsity =
    std::tuple<int /*m*/, int /*k*/, int /*n*/, double /*spA*/,
               double /*spB*/>;

class MatMultProperty : public ::testing::TestWithParam<ShapeSparsity> {};

TEST_P(MatMultProperty, MatchesReferenceAcrossFormats) {
  auto [m, k, n, spa, spb] = GetParam();
  Random rng(static_cast<uint64_t>(m * 131 + k * 17 + n +
                                   spa * 1000 + spb * 100));
  MatrixBlock a = MatrixBlock::Rand(m, k, spa, -2, 2, &rng);
  MatrixBlock b = MatrixBlock::Rand(k, n, spb, -2, 2, &rng);
  MatrixBlock ref = RefMatMult(a, b);
  // All four representation combinations.
  for (bool a_sparse : {false, true}) {
    for (bool b_sparse : {false, true}) {
      MatrixBlock ac = a;
      MatrixBlock bc = b;
      if (a_sparse) ac.ToSparse(); else ac.ToDense();
      if (b_sparse) bc.ToSparse(); else bc.ToDense();
      auto c = MatMult(ac, bc);
      ASSERT_TRUE(c.ok());
      EXPECT_TRUE(c->ApproxEquals(ref, 1e-9))
          << "a_sparse=" << a_sparse << " b_sparse=" << b_sparse;
    }
  }
}

TEST_P(MatMultProperty, TransposeIdentity) {
  // t(A %*% B) == t(B) %*% t(A)
  auto [m, k, n, spa, spb] = GetParam();
  Random rng(7 + m + k + n);
  MatrixBlock a = MatrixBlock::Rand(m, k, spa, -1, 1, &rng);
  MatrixBlock b = MatrixBlock::Rand(k, n, spb, -1, 1, &rng);
  auto ab = MatMult(a, b);
  ASSERT_TRUE(ab.ok());
  auto rhs = MatMult(Transpose(b), Transpose(a));
  ASSERT_TRUE(rhs.ok());
  EXPECT_TRUE(Transpose(*ab).ApproxEquals(*rhs, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatMultProperty,
    ::testing::Values(ShapeSparsity{1, 1, 1, 1.0, 1.0},
                      ShapeSparsity{5, 7, 3, 1.0, 1.0},
                      ShapeSparsity{20, 30, 10, 0.1, 1.0},
                      ShapeSparsity{20, 30, 10, 1.0, 0.1},
                      ShapeSparsity{25, 25, 25, 0.05, 0.05},
                      ShapeSparsity{1, 40, 1, 0.5, 1.0},
                      ShapeSparsity{40, 1, 40, 1.0, 1.0},
                      ShapeSparsity{13, 17, 19, 0.3, 0.7}));

class ElementwiseProperty
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(ElementwiseProperty, BinaryOpsMatchScalarSemantics) {
  auto [rows, cols, sp] = GetParam();
  Random rng(rows * 31 + cols);
  MatrixBlock a = MatrixBlock::Rand(rows, cols, sp, -2, 2, &rng);
  // Dense strictly-positive divisor (structural zeros would make both
  // sides +-inf, which EXPECT_NEAR cannot compare).
  MatrixBlock b = MatrixBlock::Rand(rows, cols, 1.0, 0.5, 2, &rng);
  for (BinOp op : {BinOp::kAdd, BinOp::kSub, BinOp::kMul, BinOp::kDiv,
                   BinOp::kMin, BinOp::kMax, BinOp::kGreater}) {
    auto c = ElementwiseBinary(op, a, b);
    ASSERT_TRUE(c.ok());
    for (int64_t i = 0; i < rows; ++i) {
      for (int64_t j = 0; j < cols; ++j) {
        ASSERT_NEAR(c->Get(i, j),
                    ApplyBinOp(op, a.Get(i, j), b.Get(i, j)), 1e-12);
      }
    }
  }
}

TEST_P(ElementwiseProperty, BroadcastMatchesFullMatrix) {
  auto [rows, cols, sp] = GetParam();
  Random rng(rows + cols * 13);
  MatrixBlock a = MatrixBlock::Rand(rows, cols, sp, -2, 2, &rng);
  MatrixBlock col = MatrixBlock::Rand(rows, 1, 1.0, -2, 2, &rng);
  // Manually broadcast the column across all columns.
  MatrixBlock expanded(rows, cols, false);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      expanded.Set(i, j, col.Get(i, 0));
    }
  }
  auto broadcast = ElementwiseBinary(BinOp::kSub, a, col);
  auto full = ElementwiseBinary(BinOp::kSub, a, expanded);
  ASSERT_TRUE(broadcast.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(broadcast->ApproxEquals(*full, 1e-12));
}

TEST_P(ElementwiseProperty, AggregatesConsistent) {
  auto [rows, cols, sp] = GetParam();
  Random rng(rows * 7 + cols * 3);
  MatrixBlock a = MatrixBlock::Rand(rows, cols, sp, -2, 2, &rng);
  // sum == sum of rowSums == sum of colSums.
  double total = *Aggregate(AggOp::kSum, a);
  auto rs = AggregateAxis(AggOp::kSum, AggDir::kRow, a);
  auto cs = AggregateAxis(AggOp::kSum, AggDir::kCol, a);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(cs.ok());
  EXPECT_NEAR(total, *Aggregate(AggOp::kSum, *rs), 1e-9);
  EXPECT_NEAR(total, *Aggregate(AggOp::kSum, *cs), 1e-9);
  // min <= mean <= max.
  double mn = *Aggregate(AggOp::kMin, a);
  double mx = *Aggregate(AggOp::kMax, a);
  double mean = *Aggregate(AggOp::kMean, a);
  EXPECT_LE(mn, mean + 1e-12);
  EXPECT_LE(mean, mx + 1e-12);
}

TEST_P(ElementwiseProperty, NnzAndMemoryConsistent) {
  auto [rows, cols, sp] = GetParam();
  Random rng(rows * 11 + cols * 5);
  MatrixBlock a = MatrixBlock::Rand(rows, cols, sp, 1, 2, &rng);
  int64_t nnz = a.ComputeNnz();
  MatrixCharacteristics mc = a.Characteristics();
  EXPECT_EQ(mc.nnz(), nnz);
  EXPECT_EQ(mc.rows(), rows);
  EXPECT_EQ(mc.cols(), cols);
  // The in-memory footprint is positive and bounded by the dense size
  // plus overheads.
  EXPECT_GT(a.MemorySize(), 0);
  EXPECT_LE(a.MemorySize(),
            rows * cols * 8 + rows * 8 + 128 + rows * cols * 4);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ElementwiseProperty,
    ::testing::Values(std::tuple<int, int, double>{1, 1, 1.0},
                      std::tuple<int, int, double>{8, 8, 1.0},
                      std::tuple<int, int, double>{30, 20, 0.1},
                      std::tuple<int, int, double>{50, 3, 0.5},
                      std::tuple<int, int, double>{3, 50, 0.05}));

// ---- solve properties ----

class SolveProperty : public ::testing::TestWithParam<int> {};

TEST_P(SolveProperty, ResidualIsSmall) {
  int n = GetParam();
  Random rng(n * 101);
  MatrixBlock a = MatrixBlock::Rand(n, n, 1.0, -1, 1, &rng);
  for (int i = 0; i < n; ++i) a.Set(i, i, a.Get(i, i) + n);
  MatrixBlock b = MatrixBlock::Rand(n, 1, 1.0, -5, 5, &rng);
  auto x = Solve(a, b);
  ASSERT_TRUE(x.ok());
  auto ax = MatMult(a, *x);
  ASSERT_TRUE(ax.ok());
  EXPECT_TRUE(ax->ApproxEquals(b, 1e-8));
}

TEST_P(SolveProperty, IdentitySolveReturnsRhs) {
  int n = GetParam();
  Random rng(n);
  MatrixBlock b = MatrixBlock::Rand(n, 2, 1.0, -1, 1, &rng);
  auto x = Solve(MatrixBlock::Identity(n), b);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(x->ApproxEquals(b, 1e-12));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolveProperty,
                         ::testing::Values(1, 2, 5, 12, 30));

// ---- table / indexing round trips ----

TEST(TableProperty, RowSumsAreOne) {
  // table(seq, y) is an indicator matrix: every row sums to 1.
  Random rng(4);
  int n = 100;
  MatrixBlock y(n, 1, false);
  for (int i = 0; i < n; ++i) {
    y.Set(i, 0, 1 + static_cast<double>(rng.NextBelow(7)));
  }
  auto t = Table(MatrixBlock::Seq(1, n, 1), y);
  ASSERT_TRUE(t.ok());
  auto rs = AggregateAxis(AggOp::kSum, AggDir::kRow, *t);
  ASSERT_TRUE(rs.ok());
  for (int i = 0; i < n; ++i) EXPECT_EQ(rs->Get(i, 0), 1.0);
  // Column sums add up to n.
  EXPECT_EQ(*Aggregate(AggOp::kSum, *t), n);
}

TEST(IndexingProperty, TilesReassembleViaAppend) {
  Random rng(21);
  MatrixBlock a = MatrixBlock::Rand(10, 9, 1.0, -1, 1, &rng);
  auto left = RightIndex(a, 1, 10, 1, 4);
  auto right = RightIndex(a, 1, 10, 5, 9);
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  auto joined = Append(*left, *right);
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(joined->ApproxEquals(a, 1e-12));
}

}  // namespace
}  // namespace relm

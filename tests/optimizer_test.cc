#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "core/grid_generators.h"
#include "core/resource_optimizer.h"

namespace relm {
namespace {

std::string ReadScript(const std::string& name) {
  std::ifstream in(std::string(RELM_SCRIPTS_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing script " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : cc_(ClusterConfig::PaperCluster()) {}

  /// Registers X (rows x cols, sparsity) and matching y, then compiles.
  std::unique_ptr<MlProgram> CompileScript(const std::string& file,
                                           int64_t rows, int64_t cols,
                                           double sparsity = 1.0) {
    hdfs_ = std::make_unique<SimulatedHdfs>(cc_.hdfs_block_size);
    hdfs_->PutMetadata(
        "/data/X", MatrixCharacteristics::WithSparsity(rows, cols,
                                                       sparsity));
    hdfs_->PutMetadata("/data/y", MatrixCharacteristics::Dense(rows, 1));
    ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"},
                    {"B", "/out/B"},  {"model", "/out/w"}};
    auto p = MlProgram::Compile(ReadScript(file), args, hdfs_.get());
    EXPECT_TRUE(p.ok()) << file << ": " << p.status().ToString();
    return std::move(*p);
  }

  double CostOfConfig(MlProgram* p, const ResourceConfig& rc) {
    CompileCounters counters;
    auto rp = GenerateRuntimeProgram(p, cc_, rc, &counters);
    EXPECT_TRUE(rp.ok());
    CostModel cm(cc_);
    return cm.EstimateProgramCost(*rp);
  }

  ClusterConfig cc_;
  std::unique_ptr<SimulatedHdfs> hdfs_;
};

// ---- grid generators (Figure 13 behaviour) ----

TEST_F(OptimizerTest, EquiGridHasExactlyMPoints) {
  auto pts = EnumGridPoints(nullptr, cc_, GridType::kEquiSpaced, 15);
  EXPECT_EQ(pts.size(), 15u);
  EXPECT_EQ(pts.front(), cc_.MinHeapSize());
  EXPECT_TRUE(std::is_sorted(pts.begin(), pts.end()));
  auto pts45 = EnumGridPoints(nullptr, cc_, GridType::kEquiSpaced, 45);
  EXPECT_EQ(pts45.size(), 45u);
}

TEST_F(OptimizerTest, ExpGridIsLogarithmic) {
  auto pts = EnumGridPoints(nullptr, cc_, GridType::kExpSpaced, 15);
  // 512MB..53.3GB doubling: 512MB,1,2,4,8,16,32GB + max = 8 points.
  EXPECT_EQ(pts.size(), 8u);
  EXPECT_EQ(pts.front(), cc_.MinHeapSize());
  EXPECT_EQ(pts.back(), cc_.MaxHeapSize());
}

TEST_F(OptimizerTest, MemGridDependsOnDataSize) {
  auto tiny = CompileScript("linreg_ds.dml", 10000, 1000);    // 80MB
  auto mid = CompileScript("linreg_ds.dml", 1000000, 1000);   // 8GB
  auto tiny_pts = EnumGridPoints(tiny.get(), cc_, GridType::kMemBased, 15);
  auto mid_pts = EnumGridPoints(mid.get(), cc_, GridType::kMemBased, 15);
  // Small data: all estimates below mincc -> a single point.
  EXPECT_EQ(tiny_pts.size(), 1u);
  EXPECT_EQ(tiny_pts.front(), cc_.MinHeapSize());
  // 8GB data: several estimate-bracketing points.
  EXPECT_GT(mid_pts.size(), tiny_pts.size());
}

TEST_F(OptimizerTest, HybridIsUnionOfMemAndExp) {
  auto p = CompileScript("linreg_ds.dml", 1000000, 1000);
  auto hybrid = EnumGridPoints(p.get(), cc_, GridType::kHybrid, 15);
  auto exp = EnumGridPoints(p.get(), cc_, GridType::kExpSpaced, 15);
  auto mem = EnumGridPoints(p.get(), cc_, GridType::kMemBased, 15);
  EXPECT_GE(hybrid.size(), exp.size());
  EXPECT_GE(hybrid.size(), mem.size());
  for (int64_t e : exp) {
    EXPECT_NE(std::find(hybrid.begin(), hybrid.end(), e), hybrid.end());
  }
}

// ---- core optimizer ----

TEST_F(OptimizerTest, BeatsOrMatchesAllStaticBaselines) {
  // The optimizer's chosen config must cost no more than the paper's
  // four static baselines (B-SS, B-LS, B-SL, B-LL) under the same model.
  for (const char* script : {"linreg_ds.dml", "linreg_cg.dml",
                             "l2svm.dml"}) {
    auto p = CompileScript(script, 1000000, 1000);  // 8GB dense
    ResourceOptimizer opt(cc_, OptimizerOptions{});
    OptimizerStats stats;
    auto best = opt.Optimize(p.get(), &stats);
    ASSERT_TRUE(best.ok()) << script << ": " << best.status().ToString();
    double opt_cost = CostOfConfig(p.get(), *best);
    int64_t small = 512 * kMB;
    int64_t large = cc_.MaxHeapSize();
    int64_t task_large = GigaBytes(4.4);
    for (ResourceConfig base :
         {ResourceConfig(small, small), ResourceConfig(large, small),
          ResourceConfig(small, task_large),
          ResourceConfig(large, task_large)}) {
      // The optimizer prefers minimal resources among near-ties, so its
      // pick may cost up to the tie tolerance above the true minimum.
      double base_cost = CostOfConfig(p.get(), base);
      EXPECT_LE(opt_cost, base_cost * 1.03)
          << script << " vs baseline " << base.ToString();
    }
  }
}

TEST_F(OptimizerTest, LinregCgPicksLargeCp) {
  auto p = CompileScript("linreg_cg.dml", 1000000, 1000);  // 8GB dense
  ResourceOptimizer opt(cc_, OptimizerOptions{});
  auto best = opt.Optimize(p.get());
  ASSERT_TRUE(best.ok());
  // CG wants X (8GB) in CP memory: heap must be at least ~12GB.
  EXPECT_GE(best->cp_heap, 10 * kGB) << best->ToString();
}

TEST_F(OptimizerTest, LinregDsPicksSmallCp) {
  auto p = CompileScript("linreg_ds.dml", 1000000, 1000);  // 8GB dense
  ResourceOptimizer opt(cc_, OptimizerOptions{});
  auto best = opt.Optimize(p.get());
  ASSERT_TRUE(best.ok());
  // DS prefers the distributed plan: no need for a giant CP heap.
  EXPECT_LE(best->cp_heap, 8 * kGB) << best->ToString();
}

TEST_F(OptimizerTest, SmallDataAvoidsOverProvisioning) {
  auto p = CompileScript("linreg_ds.dml", 10000, 1000);  // 80MB
  ResourceOptimizer opt(cc_, OptimizerOptions{});
  OptimizerStats stats;
  auto best = opt.Optimize(p.get(), &stats);
  ASSERT_TRUE(best.ok());
  // Everything fits in a small CP: minimal resources, zero MR blocks.
  EXPECT_LE(best->cp_heap, 2 * kGB) << best->ToString();
  EXPECT_EQ(stats.remaining_blocks_after_pruning, 0);
}

TEST_F(OptimizerTest, PruningReducesWork) {
  auto p = CompileScript("l2svm.dml", 1000000, 1000);
  OptimizerOptions with;
  OptimizerOptions without;
  without.prune_small_blocks = false;
  without.prune_unknown_blocks = false;
  OptimizerStats s_with;
  OptimizerStats s_without;
  ResourceOptimizer opt_with(cc_, with);
  ResourceOptimizer opt_without(cc_, without);
  auto r1 = opt_with.Optimize(p.get(), &s_with);
  auto r2 = opt_without.Optimize(p.get(), &s_without);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_LT(s_with.block_recompiles, s_without.block_recompiles);
  // Pruning must not change the found configuration's cost class.
  EXPECT_NEAR(s_with.best_cost, s_without.best_cost,
              0.05 * s_without.best_cost);
}

TEST_F(OptimizerTest, UnknownBlocksPruned) {
  auto p = CompileScript("mlogreg.dml", 1000000, 100);  // 800MB, unknowns
  ASSERT_TRUE(p->has_unknowns());
  OptimizerOptions opts;
  OptimizerStats stats;
  ResourceOptimizer opt(cc_, opts);
  auto best = opt.Optimize(p.get(), &stats);
  ASSERT_TRUE(best.ok());
  // Unknown-block pruning keeps the remaining count low even though the
  // core loops contain (unknown-size) MR operators.
  EXPECT_LT(stats.remaining_blocks_after_pruning,
            stats.total_generic_blocks / 2);
}

TEST_F(OptimizerTest, StatsArepopulated) {
  auto p = CompileScript("linreg_ds.dml", 1000000, 1000);
  ResourceOptimizer opt(cc_, OptimizerOptions{});
  OptimizerStats stats;
  auto best = opt.Optimize(p.get(), &stats);
  ASSERT_TRUE(best.ok());
  EXPECT_GT(stats.block_recompiles, 0);
  EXPECT_GT(stats.cost_invocations, 0);
  EXPECT_GT(stats.opt_time_seconds, 0.0);
  EXPECT_GT(stats.cp_grid_points, 0);
  EXPECT_GT(stats.best_cost, 0.0);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST_F(OptimizerTest, ParallelMatchesSerial) {
  auto p = CompileScript("l2svm.dml", 1000000, 1000);
  OptimizerOptions serial;
  OptimizerOptions parallel;
  parallel.num_threads = 4;
  ResourceOptimizer opt_s(cc_, serial);
  ResourceOptimizer opt_p(cc_, parallel);
  OptimizerStats ss;
  OptimizerStats sp;
  auto rs = opt_s.Optimize(p.get(), &ss);
  auto rp = opt_p.Optimize(p.get(), &sp);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rp.ok()) << rp.status().ToString();
  EXPECT_EQ(rs->cp_heap, rp->cp_heap);
  EXPECT_NEAR(ss.best_cost, sp.best_cost, 1e-6 * ss.best_cost);
}

TEST_F(OptimizerTest, ExtendedReturnsLocalOptimum) {
  auto p = CompileScript("linreg_cg.dml", 1000000, 1000);
  ResourceOptimizer opt(cc_, OptimizerOptions{});
  int64_t fixed_cp = 512 * kMB;
  auto ext = opt.OptimizeExtended(p.get(), fixed_cp);
  ASSERT_TRUE(ext.ok()) << ext.status().ToString();
  EXPECT_EQ(ext->local.cp_heap, fixed_cp);
  // The global optimum (large CP) must be at least as good as the local.
  EXPECT_LE(ext->global_cost, ext->local_cost);
  EXPECT_GT(ext->global.cp_heap, fixed_cp);
}

TEST_F(OptimizerTest, TimeBudgetRespected) {
  auto p = CompileScript("glm.dml", 1000000, 1000);
  OptimizerOptions opts;
  opts.time_budget_seconds = 0.0;  // only the first grid point runs
  ResourceOptimizer opt(cc_, opts);
  OptimizerStats stats;
  auto best = opt.Optimize(p.get(), &stats);
  // With a zero budget nothing is enumerated -> error is acceptable, or
  // a single-point result; either way it must not hang.
  if (best.ok()) {
    EXPECT_GT(stats.opt_time_seconds, 0.0);
  }
}

}  // namespace
}  // namespace relm

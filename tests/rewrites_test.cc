// Tests for the HOP-level algebraic simplification rewrites (Appendix B
// of the paper) and their end-to-end effect on semantics.

#include <gtest/gtest.h>

#include "api/session.h"

namespace relm {
namespace {

// These suites predate plan caching: an uncached Session keeps every
// call's compile and optimize costs identical to the retired
// RelmSystem facade they were written against.
Session UncachedSession() {
  return Session(ClusterConfig::PaperCluster(),
                 SessionOptions().WithPlanCacheEnabled(false));
}

class RewriteTest : public ::testing::Test {
 protected:
  RewriteTest() {
    hdfs_.PutMetadata("/X", MatrixCharacteristics::Dense(1000, 100));
  }

  std::unique_ptr<MlProgram> Compile(const std::string& src) {
    auto p = MlProgram::Compile(src, {}, &hdfs_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return std::move(*p);
  }

  /// Number of hops of `kind` across all stored IR.
  int Count(MlProgram* p, HopKind kind, BinOp op = BinOp::kAdd,
            bool check_op = false) {
    int n = 0;
    for (StatementBlock* b : p->AllBlocksPreOrder()) {
      if (!p->has_ir(b->id())) continue;
      for (Hop* h : p->ir(b->id()).dag.TopoOrder()) {
        if (h->kind() != kind) continue;
        if (check_op && (h->bin_op != op || !h->is_matrix())) continue;
        ++n;
      }
    }
    return n;
  }

  SimulatedHdfs hdfs_;
};

TEST_F(RewriteTest, NeutralElementsVanish) {
  // All of these reduce to plain reads of X: no binary hops survive.
  auto p = Compile(
      "X = read(\"/X\")\n"
      "a = X * 1\n"
      "b = 1 * X\n"
      "c = X / 1\n"
      "d = X + 0\n"
      "e = 0 + X\n"
      "f = X - 0\n"
      "g = X ^ 1\n"
      "print(\"\" + sum(a) + sum(b) + sum(c) + sum(d) + sum(e) + sum(f)"
      " + sum(g))");
  // Only the string-concatenation binaries of the print remain; no
  // matrix binary op exists.
  int matrix_binaries = 0;
  for (StatementBlock* b : p->AllBlocksPreOrder()) {
    if (!p->has_ir(b->id())) continue;
    for (Hop* h : p->ir(b->id()).dag.TopoOrder()) {
      if (h->kind() == HopKind::kBinary && h->is_matrix()) {
        ++matrix_binaries;
      }
    }
  }
  EXPECT_EQ(matrix_binaries, 0);
  // And CSE collapses all seven aliases into ONE aggregate over X.
  EXPECT_EQ(Count(p.get(), HopKind::kAggUnary), 1);
}

TEST_F(RewriteTest, SquareBecomesCellwiseMultiply) {
  auto p = Compile(
      "X = read(\"/X\")\n"
      "s = sum(X ^ 2)\n"
      "print(\"\" + s)");
  // No pow remains; a Mul(X, X) exists instead.
  EXPECT_EQ(Count(p.get(), HopKind::kBinary, BinOp::kPow, true), 0);
  EXPECT_EQ(Count(p.get(), HopKind::kBinary, BinOp::kMul, true), 1);
}

TEST_F(RewriteTest, SquareSharesNodeWithExplicitProduct) {
  // X^2 and X*X must CSE to the same hop.
  auto p = Compile(
      "X = read(\"/X\")\n"
      "a = sum(X ^ 2)\n"
      "b = sum(X * X)\n"
      "print(\"\" + a + b)");
  EXPECT_EQ(Count(p.get(), HopKind::kBinary, BinOp::kMul, true), 1);
  EXPECT_EQ(Count(p.get(), HopKind::kAggUnary), 1);
}

TEST_F(RewriteTest, MinMaxOfSameOperandCollapses) {
  auto p = Compile(
      "X = read(\"/X\")\n"
      "m = min(X, X)\n"
      "print(\"\" + sum(m))");
  EXPECT_EQ(Count(p.get(), HopKind::kBinary, BinOp::kMin, true), 0);
}

TEST_F(RewriteTest, NonNeutralValuesAreKept) {
  auto p = Compile(
      "X = read(\"/X\")\n"
      "a = X * 2\n"
      "b = X + 1\n"
      "print(\"\" + sum(a) + sum(b))");
  EXPECT_EQ(Count(p.get(), HopKind::kBinary, BinOp::kMul, true), 1);
  EXPECT_EQ(Count(p.get(), HopKind::kBinary, BinOp::kAdd, true), 1);
}

TEST_F(RewriteTest, MatMultChainReordered) {
  // A(1000x100) %*% B(100x1000) %*% v(1000x1): left-deep would build the
  // 1000x1000 product first; the chain DP must group B %*% v first,
  // making the TOP multiply's right child another multiply.
  hdfs_.PutMetadata("/A", MatrixCharacteristics::Dense(1000, 100));
  hdfs_.PutMetadata("/B", MatrixCharacteristics::Dense(100, 1000));
  auto p = Compile(
      "A = read(\"/A\")\nB = read(\"/B\")\n"
      "v = matrix(1, rows=1000, cols=1)\n"
      "q = A %*% B %*% v\n"
      "print(\"\" + sum(q))");
  bool found_right_assoc = false;
  for (StatementBlock* b : p->AllBlocksPreOrder()) {
    if (!p->has_ir(b->id())) continue;
    for (Hop* h : p->ir(b->id()).dag.TopoOrder()) {
      if (h->kind() == HopKind::kMatMult &&
          h->input(1)->kind() == HopKind::kMatMult) {
        found_right_assoc = true;
        // The inner product is the cheap 100x1 vector.
        EXPECT_EQ(h->input(1)->mc().cols(), 1);
      }
    }
  }
  EXPECT_TRUE(found_right_assoc);
}

TEST_F(RewriteTest, MatMultChainSemanticsPreserved) {
  Session sys = UncachedSession();
  Random rng(9);
  sys.RegisterMatrix("/m/A", MatrixBlock::Rand(6, 4, 1.0, -1, 1, &rng));
  sys.RegisterMatrix("/m/B", MatrixBlock::Rand(4, 7, 1.0, -1, 1, &rng));
  sys.RegisterMatrix("/m/C", MatrixBlock::Rand(7, 2, 1.0, -1, 1, &rng));
  auto prog = sys.CompileSource(
      "A = read(\"/m/A\")\nB = read(\"/m/B\")\nC = read(\"/m/C\")\n"
      "chain = A %*% B %*% C\n"
      "manual = (A %*% B) %*% C\n"
      "d = sum(abs(chain - manual))\n"
      "print(\"d=\" + d)",
      {});
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  auto run = sys.ExecuteReal(prog->get());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->printed[0], "d=0");
}

TEST_F(RewriteTest, SemanticsPreservedUnderRewrites) {
  // Execute for real: rewritten expressions must produce the same
  // numbers as their unsimplified meanings.
  Session sys = UncachedSession();
  Random rng(3);
  sys.RegisterMatrix("/m/A", MatrixBlock::Rand(6, 5, 1.0, -2, 2, &rng));
  auto prog = sys.CompileSource(
      "A = read(\"/m/A\")\n"
      "v1 = sum((A * 1) + 0)\n"
      "v2 = sum(A)\n"
      "d = abs(v1 - v2)\n"
      "sq1 = sum(A ^ 2)\n"
      "sq2 = sum(A * A)\n"
      "d2 = abs(sq1 - sq2)\n"
      "print(\"d=\" + d)\n"
      "print(\"d2=\" + d2)",
      {});
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  auto run = sys.ExecuteReal(prog->get());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->printed[0], "d=0");
  EXPECT_EQ(run->printed[1], "d2=0");
}

}  // namespace
}  // namespace relm

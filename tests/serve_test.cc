// Tests for the serving layer: PlanCache (compiled-program + what-if
// caching, LRU eviction, signature invalidation), the Session API, and
// the concurrent JobService (determinism under N clients, per-tenant
// fairness, admission control, cache hit rates). The stress test at the
// bottom doubles as the TSan target wired into scripts/check.sh.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.h"
#include "common/random.h"
#include "core/plan_cache.h"
#include "exec/worker_pool.h"
#include "matrix/kernels.h"
#include "obs/metrics.h"
#include "obs/scope.h"
#include "obs/trace.h"
#include "serve/job_service.h"

namespace relm {
namespace {

std::string ScriptPath(const std::string& name) {
  return std::string(RELM_SCRIPTS_DIR) + "/" + name;
}

std::string ReadScript(const std::string& name) {
  std::ifstream in(ScriptPath(name));
  EXPECT_TRUE(in.good()) << "missing script " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

ScriptArgs LinregArgs() {
  return ScriptArgs{{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"}};
}

// ---- PlanCache ---------------------------------------------------------

class PlanCacheTest : public ::testing::Test {
 protected:
  PlanCacheTest() : hdfs_(128 * kMB) {
    hdfs_.PutMetadata("/data/X", MatrixCharacteristics::Dense(1000000, 100));
    hdfs_.PutMetadata("/data/y", MatrixCharacteristics::Dense(1000000, 1));
    source_ = ReadScript("linreg_ds.dml");
  }
  SimulatedHdfs hdfs_;
  std::string source_;
};

TEST_F(PlanCacheTest, RepeatedCompileHitsCache) {
  PlanCache cache;
  auto first = cache.GetOrCompile(source_, LinregArgs(), &hdfs_);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = cache.GetOrCompile(source_, LinregArgs(), &hdfs_);
  ASSERT_TRUE(second.ok());
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.program_misses, 1);
  EXPECT_EQ(stats.program_hits, 1);
  EXPECT_EQ(cache.NumPrograms(), 1u);
  // The copies are distinct objects with identical structure.
  EXPECT_NE(first->get(), second->get());
  EXPECT_EQ((*first)->total_blocks(), (*second)->total_blocks());
}

TEST_F(PlanCacheTest, DataflowSummaryStoredWithCompiledProgram) {
  PlanCache cache;
  ASSERT_TRUE(cache.GetOrCompile(source_, LinregArgs(), &hdfs_).ok());
  const uint64_t sig =
      ComputeScriptSignature(source_, LinregArgs(), &hdfs_);
  std::shared_ptr<const analysis::DataflowSummary> df =
      cache.LookupDataflow(sig);
  ASSERT_NE(df, nullptr);
  // linreg_ds over known dims: a finite, positive static peak, ready
  // for admission-time vetting without re-running the analysis.
  EXPECT_TRUE(df->peak.bounded);
  EXPECT_GT(df->peak.resident_bytes, 0);
  EXPECT_FALSE(df->liveness.empty());
  // Unknown signatures answer null, never a stale summary.
  EXPECT_EQ(cache.LookupDataflow(sig + 1), nullptr);
}

TEST_F(PlanCacheTest, MetadataChangeInvalidatesProgramKey) {
  PlanCache cache;
  ASSERT_TRUE(cache.GetOrCompile(source_, LinregArgs(), &hdfs_).ok());
  // Growing an input changes the namespace fingerprint, so the same
  // (source, args) pair must recompile against the new sizes.
  hdfs_.PutMetadata("/data/X", MatrixCharacteristics::Dense(2000000, 100));
  ASSERT_TRUE(cache.GetOrCompile(source_, LinregArgs(), &hdfs_).ok());
  EXPECT_EQ(cache.stats().program_misses, 2);
  EXPECT_EQ(cache.stats().program_hits, 0);
}

TEST_F(PlanCacheTest, ProgramLruEviction) {
  PlanCache::Options options;
  options.max_programs = 2;
  PlanCache cache(options);
  ScriptArgs args = LinregArgs();
  // Three distinct scripts through a 2-entry cache.
  ASSERT_TRUE(cache.GetOrCompile(source_, args, &hdfs_).ok());
  ASSERT_TRUE(cache.GetOrCompile(ReadScript("linreg_cg.dml"), args, &hdfs_)
                  .ok());
  ASSERT_TRUE(cache
                  .GetOrCompile(ReadScript("l2svm.dml"),
                                ScriptArgs{{"X", "/data/X"},
                                           {"Y", "/data/y"},
                                           {"model", "/out/w"}},
                                &hdfs_)
                  .ok());
  EXPECT_EQ(cache.NumPrograms(), 2u);
  EXPECT_GE(cache.stats().evictions, 1);
  // The evicted (least recently used) script recompiles.
  ASSERT_TRUE(cache.GetOrCompile(source_, args, &hdfs_).ok());
  EXPECT_EQ(cache.stats().program_hits, 0);
}

TEST_F(PlanCacheTest, EntriesAreScopedToOneHdfsInstance) {
  PlanCache cache;
  ASSERT_TRUE(cache.GetOrCompile(source_, LinregArgs(), &hdfs_).ok());
  {
    // A second namespace with byte-identical metadata must get its own
    // entry, wired to itself — not a clone bound to `hdfs_`.
    SimulatedHdfs other(128 * kMB);
    other.PutMetadata("/data/X", MatrixCharacteristics::Dense(1000000, 100));
    other.PutMetadata("/data/y", MatrixCharacteristics::Dense(1000000, 1));
    auto prog = cache.GetOrCompile(source_, LinregArgs(), &other);
    ASSERT_TRUE(prog.ok());
    EXPECT_EQ((*prog)->hdfs(), &other);
  }
  // `other` is gone. A third identical namespace must miss (under ASan
  // this guards the use-after-free of hitting the dead namespace's
  // master and recompiling against it).
  SimulatedHdfs revived(128 * kMB);
  revived.PutMetadata("/data/X", MatrixCharacteristics::Dense(1000000, 100));
  revived.PutMetadata("/data/y", MatrixCharacteristics::Dense(1000000, 1));
  ASSERT_TRUE(cache.GetOrCompile(source_, LinregArgs(), &revived).ok());
  // The original namespace still hits its own entry.
  auto again = cache.GetOrCompile(source_, LinregArgs(), &hdfs_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->hdfs(), &hdfs_);
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.program_misses, 3);
  EXPECT_EQ(stats.program_hits, 1);
}

TEST_F(PlanCacheTest, ConcurrentMissesCoalesceIntoOneCompile) {
  PlanCache cache;
  constexpr int kThreads = 8;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      auto prog = cache.GetOrCompile(source_, LinregArgs(), &hdfs_);
      if (prog.ok() && *prog != nullptr) ok_count.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kThreads);
  EXPECT_EQ(cache.NumPrograms(), 1u);
  // Whether the threads overlapped (followers join the in-flight
  // compile) or ran back-to-back (plain hits), the counters agree:
  // exactly one compile for the cold key.
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.program_misses, 1);
  EXPECT_EQ(stats.program_hits, kThreads - 1);
}

TEST_F(PlanCacheTest, WhatIfRoundTripAndEviction) {
  PlanCache::Options options;
  options.max_whatif_entries = 2;
  PlanCache cache(options);
  WhatIfKey key{1, 2, 512 * kMB, 1};
  EXPECT_FALSE(cache.LookupWhatIf(key).has_value());
  PlanCache::CachedCandidate candidate;
  candidate.cost = 42.0;
  candidate.config = ResourceConfig(512 * kMB, 512 * kMB);
  cache.InsertWhatIf(key, candidate);
  auto found = cache.LookupWhatIf(key);
  ASSERT_TRUE(found.has_value());
  EXPECT_DOUBLE_EQ(found->cost, 42.0);
  // Two more keys through a 2-entry cache evict the oldest.
  cache.InsertWhatIf(WhatIfKey{1, 2, 1024 * kMB, 1}, candidate);
  cache.InsertWhatIf(WhatIfKey{1, 2, 2048 * kMB, 1}, candidate);
  EXPECT_EQ(cache.NumWhatIfEntries(), 2u);
  EXPECT_FALSE(cache.LookupWhatIf(key).has_value());
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.whatif_hits, 1);
  EXPECT_GE(stats.evictions, 1);
}

// ---- optimizer read-through -------------------------------------------

TEST(OptimizerCacheTest, CachedRunMatchesUncachedAndSkipsRecompiles) {
  Session session(ClusterConfig::PaperCluster(),
                  SessionOptions{/*enable_plan_cache=*/false, nullptr});
  ASSERT_TRUE(
      session.RegisterMatrixMetadata("/data/X", 1000000, 1000).ok());
  ASSERT_TRUE(session.RegisterMatrixMetadata("/data/y", 1000000, 1).ok());
  auto prog =
      session.CompileFile(ScriptPath("linreg_cg.dml"), LinregArgs());
  ASSERT_TRUE(prog.ok());

  auto uncached = session.Optimize(prog->get());
  ASSERT_TRUE(uncached.ok());

  PlanCache cache;
  OptimizerOptions cached_options;
  cached_options.WithPlanCache(&cache);
  auto cold = session.Optimize(prog->get(), cached_options);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->config.cp_heap, uncached->config.cp_heap);
  EXPECT_EQ(cold->config.default_mr_heap, uncached->config.default_mr_heap);

  auto warm = session.Optimize(prog->get(), cached_options);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->config.cp_heap, uncached->config.cp_heap);
  EXPECT_EQ(warm->config.default_mr_heap, uncached->config.default_mr_heap);
  EXPECT_DOUBLE_EQ(warm->stats.best_cost, uncached->stats.best_cost);
  // The warm enumeration answers every grid point from the cache.
  EXPECT_EQ(warm->stats.block_recompiles, 0);
  EXPECT_GT(cache.stats().whatif_hits, 0);
}

TEST(OptimizerCacheTest, ValidateRejectsNonsense) {
  Session session;
  ASSERT_TRUE(
      session.RegisterMatrixMetadata("/data/X", 1000000, 1000).ok());
  ASSERT_TRUE(session.RegisterMatrixMetadata("/data/y", 1000000, 1).ok());
  auto prog =
      session.CompileFile(ScriptPath("linreg_ds.dml"), LinregArgs());
  ASSERT_TRUE(prog.ok());
  EXPECT_FALSE(
      session.Optimize(prog->get(), OptimizerOptions().WithGridPoints(0))
          .ok());
  EXPECT_FALSE(
      session.Optimize(prog->get(), OptimizerOptions().WithThreads(-1))
          .ok());
  EXPECT_FALSE(session
                   .Optimize(prog->get(),
                             OptimizerOptions().WithExpectedFailureRate(-1))
                   .ok());
}

// ---- Session value semantics ------------------------------------------

TEST(SessionTest, CopiesShareClusterStateAndCache) {
  Session a;
  Session b = a;  // cheap copy onto the same state
  ASSERT_TRUE(b.RegisterMatrixMetadata("/data/X", 1000000, 100).ok());
  ASSERT_TRUE(b.RegisterMatrixMetadata("/data/y", 1000000, 1).ok());
  // The original observes metadata registered through the copy.
  EXPECT_TRUE(a.hdfs().Exists("/data/X"));
  EXPECT_EQ(a.plan_cache(), b.plan_cache());
  auto prog = a.CompileFile(ScriptPath("linreg_ds.dml"), LinregArgs());
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
}

TEST(SessionTest, NullProgramIsInvalidArgument) {
  Session session;
  EXPECT_FALSE(session.Optimize(nullptr).ok());
  EXPECT_FALSE(session.EstimateCost(nullptr, ResourceConfig()).ok());
  EXPECT_FALSE(session.Simulate(nullptr, ResourceConfig()).ok());
}

// ---- JobService --------------------------------------------------------

serve::JobRequest LinregRequest(const std::string& source) {
  serve::JobRequest request;
  request.source = source;
  request.args = LinregArgs();
  request.inputs = {{"/data/X", 1000000, 100, 1.0},
                    {"/data/y", 1000000, 1, 1.0}};
  return request;
}

TEST(JobServiceTest, InvalidOptionsFailFast) {
  serve::JobService service(ClusterConfig::PaperCluster(),
                            serve::ServeOptions().WithWorkers(0));
  EXPECT_FALSE(service.startup_status().ok());
  EXPECT_FALSE(service.Submit("t", serve::JobRequest()).ok());
}

TEST(JobServiceTest, AwaitInvalidHandleIsError) {
  serve::JobHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_FALSE(handle.Await().ok());
}

TEST(JobServiceTest, FailedJobReportsCompileError) {
  PlanCache cache;
  serve::JobService service(
      ClusterConfig::PaperCluster(),
      serve::ServeOptions().WithWorkers(1).WithPlanCache(&cache));
  serve::JobRequest request;
  request.source = "this is not DML (";
  auto handle = service.Submit("t", std::move(request));
  ASSERT_TRUE(handle.ok());
  auto outcome = handle->Await();
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(handle->state(), serve::JobState::kFailed);
  EXPECT_EQ(service.stats().failed, 1);
}

TEST(JobServiceTest, ConcurrentClientsDeterministicResults) {
  const std::string source = ReadScript("linreg_ds.dml");

  // Serial reference: the same job through an uncached Session.
  Session reference(ClusterConfig::PaperCluster(),
                    SessionOptions{/*enable_plan_cache=*/false, nullptr});
  ASSERT_TRUE(reference.RegisterMatrixMetadata("/data/X", 1000000, 100).ok());
  ASSERT_TRUE(reference.RegisterMatrixMetadata("/data/y", 1000000, 1).ok());
  auto ref_prog = reference.CompileSource(source, LinregArgs());
  ASSERT_TRUE(ref_prog.ok());
  auto ref_opt = reference.Optimize(ref_prog->get());
  ASSERT_TRUE(ref_opt.ok());
  auto ref_sim = reference.Simulate(ref_prog->get(), ref_opt->config);
  ASSERT_TRUE(ref_sim.ok());

  PlanCache cache;
  serve::JobService service(
      ClusterConfig::PaperCluster(),
      serve::ServeOptions().WithWorkers(4).WithPlanCache(&cache));
  constexpr int kClients = 4;
  constexpr int kJobsPerClient = 4;
  std::vector<std::thread> clients;
  std::vector<std::vector<serve::JobHandle>> handles(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int j = 0; j < kJobsPerClient; ++j) {
        auto handle =
            service.Submit("client" + std::to_string(c),
                           LinregRequest(source));
        ASSERT_TRUE(handle.ok()) << handle.status().ToString();
        handles[c].push_back(std::move(*handle));
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (auto& client_handles : handles) {
    for (serve::JobHandle& handle : client_handles) {
      auto outcome = handle.Await();
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      EXPECT_EQ(handle.state(), serve::JobState::kCompleted);
      // Every concurrent submission lands on the serial result exactly.
      EXPECT_EQ(outcome->config.cp_heap, ref_opt->config.cp_heap);
      EXPECT_EQ(outcome->config.default_mr_heap, ref_opt->config.default_mr_heap);
      ASSERT_TRUE(outcome->simulated);
      EXPECT_DOUBLE_EQ(outcome->sim.elapsed_seconds,
                       ref_sim->elapsed_seconds);
      EXPECT_DOUBLE_EQ(outcome->estimated_cost_seconds,
                       ref_opt->stats.best_cost);
    }
  }
  EXPECT_EQ(service.stats().completed, kClients * kJobsPerClient);
  // Identical submissions must be served mostly from the cache.
  PlanCache::Stats cs = cache.stats();
  EXPECT_GT(cs.whatif_hits, 0);
  EXPECT_GE(cs.WhatIfHitRate(), 0.5);
}

TEST(JobServiceTest, PerTenantFairnessInterleavesHeavyTenant) {
  const std::string source = ReadScript("linreg_ds.dml");
  PlanCache cache;
  serve::JobService service(
      ClusterConfig::PaperCluster(),
      serve::ServeOptions().WithWorkers(1).WithPlanCache(&cache));
  // Tenant A floods 8 jobs, then tenant B submits 2. With one worker and
  // FIFO scheduling B would finish last (indexes 9, 10); round-robin
  // interleaves B long before A's backlog drains.
  std::vector<serve::JobHandle> a_handles;
  std::vector<serve::JobHandle> b_handles;
  for (int i = 0; i < 8; ++i) {
    auto handle = service.Submit("tenant-a", LinregRequest(source));
    ASSERT_TRUE(handle.ok());
    a_handles.push_back(std::move(*handle));
  }
  for (int i = 0; i < 2; ++i) {
    auto handle = service.Submit("tenant-b", LinregRequest(source));
    ASSERT_TRUE(handle.ok());
    b_handles.push_back(std::move(*handle));
  }
  service.Drain();
  int64_t b_worst = 0;
  for (serve::JobHandle& handle : b_handles) {
    auto outcome = handle.Await();
    ASSERT_TRUE(outcome.ok());
    b_worst = std::max(b_worst, outcome->completion_index);
  }
  // At most one A job can complete between consecutive B completions
  // (plus whatever was already running at submit time).
  EXPECT_LE(b_worst, 6) << "tenant B was starved behind tenant A's backlog";
}

TEST(JobServiceTest, AdmissionControlRejectsBeyondQueueDepth) {
  const std::string source = ReadScript("linreg_ds.dml");
  PlanCache cache;
  serve::JobService service(ClusterConfig::PaperCluster(),
                            serve::ServeOptions()
                                .WithWorkers(1)
                                .WithMaxPendingJobs(2)
                                .WithPlanCache(&cache));
  std::vector<serve::JobHandle> accepted;
  int rejected = 0;
  for (int i = 0; i < 16; ++i) {
    auto handle = service.Submit("t", LinregRequest(source));
    if (handle.ok()) {
      accepted.push_back(std::move(*handle));
    } else {
      rejected++;
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(service.stats().rejected, rejected);
  for (serve::JobHandle& handle : accepted) {
    EXPECT_TRUE(handle.Await().ok());
  }
}

TEST(JobServiceTest, PerTenantQuotaIsEnforced) {
  const std::string source = ReadScript("linreg_ds.dml");
  PlanCache cache;
  serve::JobService service(ClusterConfig::PaperCluster(),
                            serve::ServeOptions()
                                .WithWorkers(1)
                                .WithMaxQueuedPerTenant(1)
                                .WithPlanCache(&cache));
  int rejected = 0;
  std::vector<serve::JobHandle> accepted;
  for (int i = 0; i < 12; ++i) {
    auto handle = service.Submit("greedy", LinregRequest(source));
    if (handle.ok()) {
      accepted.push_back(std::move(*handle));
    } else {
      rejected++;
    }
  }
  EXPECT_GT(rejected, 0);
  for (serve::JobHandle& handle : accepted) {
    EXPECT_TRUE(handle.Await().ok());
  }
}

TEST(JobServiceTest, ProgramPoolEvictsOldestAtCapacity) {
  const std::string linreg_ds = ReadScript("linreg_ds.dml");
  const std::string linreg_cg = ReadScript("linreg_cg.dml");
  PlanCache cache;
  // What-if mode keeps finished programs pristine (poolable); a 1-slot
  // pool forces eviction when the second script's instance is parked.
  serve::JobService service(ClusterConfig::PaperCluster(),
                            serve::ServeOptions()
                                .WithWorkers(1)
                                .WithPlanCache(&cache)
                                .WithSimulation(false)
                                .WithMaxPooledPrograms(1));
  auto run = [&](const std::string& source) {
    auto handle = service.Submit("t", LinregRequest(source));
    ASSERT_TRUE(handle.ok());
    ASSERT_TRUE(handle->Await().ok());
  };
  run(linreg_ds);
  EXPECT_EQ(service.stats().pooled_programs, 1);
  run(linreg_cg);  // parks cg, evicts the ds instance
  EXPECT_EQ(service.stats().pooled_programs, 1);
  // The evicted script still runs (recompiles through the plan cache),
  // and the pool stays bounded — it never wedges full of stale entries.
  run(linreg_ds);
  EXPECT_EQ(service.stats().pooled_programs, 1);
  EXPECT_EQ(service.stats().completed, 3);
}

TEST(JobServiceTest, OversizedJobsCompleteUnderTinyCapacityCap) {
  const std::string source = ReadScript("linreg_ds.dml");
  PlanCache cache;
  // A 1-byte inflight cap makes every job "oversized": each must be
  // granted the cluster exclusively, in FIFO ticket order. All jobs
  // completing proves the exclusive path cannot starve or deadlock.
  serve::JobService service(ClusterConfig::PaperCluster(),
                            serve::ServeOptions()
                                .WithWorkers(4)
                                .WithPlanCache(&cache)
                                .WithMaxInflightContainerBytes(1));
  std::vector<serve::JobHandle> handles;
  for (int i = 0; i < 8; ++i) {
    auto handle = service.Submit("t" + std::to_string(i % 2),
                                 LinregRequest(source));
    ASSERT_TRUE(handle.ok());
    handles.push_back(std::move(*handle));
  }
  for (serve::JobHandle& handle : handles) {
    EXPECT_TRUE(handle.Await().ok());
  }
  EXPECT_EQ(service.stats().completed, 8);
  EXPECT_EQ(service.stats().inflight_container_bytes, 0);
}

// ---- static-bound admission --------------------------------------------

/// A linreg_ds job over 20M x 1000 inputs: ~160 GB of statically-bounded
/// live matrices, beyond the CP budget of any configuration the paper
/// cluster can grant.
serve::JobRequest OversizedBoundRequest(const std::string& source) {
  serve::JobRequest request;
  request.source = source;
  request.args = LinregArgs();
  request.inputs = {{"/data/X", 20000000, 1000, 1.0},
                    {"/data/y", 20000000, 1, 1.0}};
  return request;
}

TEST(JobServiceTest, StaticBoundRejectFailsJobBeforeExecution) {
  const std::string source = ReadScript("linreg_ds.dml");
  PlanCache cache;
  serve::JobService service(
      ClusterConfig::PaperCluster(),
      serve::ServeOptions()
          .WithWorkers(1)
          .WithPlanCache(&cache)
          .WithStaticBoundPolicy(serve::StaticBoundPolicy::kReject));
  auto handle = service.Submit("t", OversizedBoundRequest(source));
  ASSERT_TRUE(handle.ok());
  auto outcome = handle->Await();
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.status().ToString().find("admission rejected"),
            std::string::npos)
      << outcome.status().ToString();
  EXPECT_EQ(handle->state(), serve::JobState::kFailed);
  serve::JobService::Stats stats = service.stats();
  EXPECT_EQ(stats.failed, 1);
  // ResourceError is non-retryable: the bound is a property of script
  // and grant, so the job fails on its first attempt — nothing ran.
  EXPECT_EQ(stats.retries, 0);
}

TEST(JobServiceTest, StaticBoundRejectAdmitsFittingJob) {
  const std::string source = ReadScript("linreg_ds.dml");
  PlanCache cache;
  serve::JobService service(
      ClusterConfig::PaperCluster(),
      serve::ServeOptions()
          .WithWorkers(1)
          .WithPlanCache(&cache)
          .WithStaticBoundPolicy(serve::StaticBoundPolicy::kReject));
  // The canonical 1M x 100 job fits comfortably: no false rejections.
  auto handle = service.Submit("t", LinregRequest(source));
  ASSERT_TRUE(handle.ok());
  auto outcome = handle->Await();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->degraded);
  EXPECT_EQ(service.stats().completed, 1);
}

TEST(JobServiceTest, StaticBoundDegradeSerialAdmitsAndMarksJob) {
  const std::string source = ReadScript("linreg_ds.dml");
  PlanCache cache;
  serve::JobService service(
      ClusterConfig::PaperCluster(),
      serve::ServeOptions()
          .WithWorkers(1)
          .WithPlanCache(&cache)
          .WithStaticBoundPolicy(serve::StaticBoundPolicy::kDegradeSerial));
  auto handle = service.Submit("t", OversizedBoundRequest(source));
  ASSERT_TRUE(handle.ok());
  auto outcome = handle->Await();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // Admitted, simulated, but flagged for the serial reference engine.
  EXPECT_TRUE(outcome->degraded);
  EXPECT_TRUE(outcome->simulated);
  EXPECT_EQ(service.stats().completed, 1);
}

// Stress: many clients, mixed workloads, concurrent metadata
// registration. Run under TSan by scripts/check.sh stage 4.
TEST(JobServiceTest, StressMixedWorkloadsManyClients) {
  const std::string linreg_ds = ReadScript("linreg_ds.dml");
  const std::string linreg_cg = ReadScript("linreg_cg.dml");
  PlanCache cache;
  serve::JobService service(
      ClusterConfig::PaperCluster(),
      serve::ServeOptions().WithWorkers(4).WithPlanCache(&cache));
  constexpr int kClients = 8;
  constexpr int kJobsPerClient = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int j = 0; j < kJobsPerClient; ++j) {
        serve::JobRequest request;
        bool ds = (c + j) % 2 == 0;
        request.source = ds ? linreg_ds : linreg_cg;
        // Per-client input paths: exercises concurrent
        // RegisterMatrixMetadata on a shared namespace.
        std::string base = "/data/c" + std::to_string(c % 4);
        request.args = ScriptArgs{
            {"X", base + "/X"}, {"Y", base + "/y"}, {"B", "/out/B"}};
        request.inputs = {{base + "/X", 1000000, 100, 1.0},
                          {base + "/y", 1000000, 1, 1.0}};
        auto handle = service.Submit("client" + std::to_string(c),
                                     std::move(request));
        if (!handle.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (!handle->Await().ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  service.Drain();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service.stats().completed, kClients * kJobsPerClient);
  EXPECT_EQ(service.stats().failed, 0);
}

// ---- real execution through the service --------------------------------

/// Deterministic small regression data with real payloads.
void RegisterRealRegressionData(Session* session) {
  Random rng(42);
  const int n = 200;
  const int m = 8;
  MatrixBlock x = MatrixBlock::Rand(n, m, 1.0, -1, 1, &rng);
  MatrixBlock beta = MatrixBlock::Rand(m, 1, 1.0, -2, 2, &rng);
  MatrixBlock y = *MatMult(x, beta);
  ASSERT_TRUE(session->RegisterMatrix("/data/X", std::move(x)).ok());
  ASSERT_TRUE(session->RegisterMatrix("/data/y", std::move(y)).ok());
}

TEST(SessionExecuteRealTest, StrictAnalysisEnforcesEngineBudget) {
  Session session;
  RegisterRealRegressionData(&session);
  auto prog = session.CompileSource(ReadScript("linreg_ds.dml"),
                                    LinregArgs());
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();

  RealRunOptions opts;
  opts.strict_analysis = true;
  opts.resources = session.StaticBaselines()[0].config;  // B-SS
  opts.memory_budget = opts.resources.CpBudget();
  auto run = session.ExecuteReal(prog->get(), opts);
  EXPECT_TRUE(run.ok()) << run.status().ToString();

  // The same run with an engine capacity that differs from the audited
  // plan's CP budget must be refused before executing anything.
  opts.memory_budget = opts.resources.CpBudget() / 2;
  auto refused = session.ExecuteReal(prog->get(), opts);
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.status().ToString().find("budget-conformance"),
            std::string::npos)
      << refused.status().ToString();
}

TEST(JobServiceTest, ExecuteRealJobRunsUnderGrantedBudget) {
  serve::JobService service(
      ClusterConfig::PaperCluster(),
      serve::ServeOptions().WithWorkers(2).WithSimulation(false).WithExecWorkers(
          2));
  ASSERT_TRUE(service.startup_status().ok());
  RegisterRealRegressionData(&service.session());

  serve::JobRequest request;
  request.source = ReadScript("linreg_ds.dml");
  request.args = LinregArgs();
  request.execute_real = true;
  auto handle = service.Submit("tenant", std::move(request));
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  auto outcome = handle->Await();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->executed_real);
  EXPECT_GT(outcome->real.blocks_executed, 0);
  // The model was written back into the shared namespace for real.
  auto model = service.session().hdfs().Get("/out/B");
  ASSERT_TRUE(model.ok());
  EXPECT_NE(model->data, nullptr);
  service.Shutdown();
  exec::SetWorkers(1);  // restore the process-wide serial default
}

// ---- fault tolerance: retry, deadline, cancel, degradation ------------

serve::JobRequest RealLinregRequest(const std::string& source) {
  serve::JobRequest request;
  request.source = source;
  request.args = LinregArgs();
  request.execute_real = true;
  return request;
}

serve::ServeOptions FaultyServeOptions(exec::FaultPolicy policy) {
  return serve::ServeOptions()
      .WithWorkers(1)
      .WithSimulation(false)
      .WithFaultPolicy(policy)
      .WithRetry(RetryPolicy()
                     .WithInitialBackoffSeconds(0.001)
                     .WithMaxBackoffSeconds(0.01));
}

TEST(JobServiceFaultTest, TransientFaultIsRetriedToSuccess) {
  exec::FaultPolicy policy;
  policy.WithFirstN(exec::FaultSite::kHdfsRead, 1);
  serve::JobService service(ClusterConfig::PaperCluster(),
                            FaultyServeOptions(policy));
  ASSERT_TRUE(service.startup_status().ok());
  RegisterRealRegressionData(&service.session());

  auto handle =
      service.Submit("tenant", RealLinregRequest(ReadScript("linreg_ds.dml")));
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  auto outcome = handle->Await();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->attempts, 2);
  EXPECT_TRUE(outcome->executed_real);
  EXPECT_EQ(handle->state(), serve::JobState::kCompleted);
  serve::JobService::Stats stats = service.stats();
  EXPECT_EQ(stats.retries, 1);
  EXPECT_EQ(stats.retry_exhausted, 0);
  EXPECT_EQ(stats.completed, 1);
#if RELM_OBS_ENABLED
  // The retry and the injected fault both land in the telemetry dump.
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(snapshot.counters["serve.retry.attempts"], 1);
  EXPECT_GE(snapshot.counters["fault.injected"], 1);
  EXPECT_GE(snapshot.counters["fault.injected.hdfs_read"], 1);
#endif
}

TEST(JobServiceFaultTest, ExhaustedRetriesFailWithTypedError) {
  exec::FaultPolicy policy;
  policy.WithRate(exec::FaultSite::kHdfsRead, 1.0);  // every attempt fails
  serve::JobService service(ClusterConfig::PaperCluster(),
                            FaultyServeOptions(policy));
  ASSERT_TRUE(service.startup_status().ok());
  RegisterRealRegressionData(&service.session());

  auto handle =
      service.Submit("tenant", RealLinregRequest(ReadScript("linreg_ds.dml")));
  ASSERT_TRUE(handle.ok());
  auto outcome = handle->Await();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(handle->state(), serve::JobState::kFailed);
  serve::JobService::Stats stats = service.stats();
  EXPECT_EQ(stats.retries, 2);  // default max_attempts = 3
  EXPECT_EQ(stats.retry_exhausted, 1);
  EXPECT_EQ(stats.failed, 1);
}

TEST(JobServiceFaultTest, PerRequestMaxAttemptsOverridesPolicy) {
  exec::FaultPolicy policy;
  policy.WithRate(exec::FaultSite::kHdfsRead, 1.0);
  serve::JobService service(ClusterConfig::PaperCluster(),
                            FaultyServeOptions(policy));
  ASSERT_TRUE(service.startup_status().ok());
  RegisterRealRegressionData(&service.session());

  serve::JobRequest request = RealLinregRequest(ReadScript("linreg_ds.dml"));
  request.max_attempts = 1;  // no retries for this job
  auto handle = service.Submit("tenant", std::move(request));
  ASSERT_TRUE(handle.ok());
  auto outcome = handle->Await();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(service.stats().retries, 0);
  EXPECT_EQ(service.stats().retry_exhausted, 1);
}

TEST(JobServiceFaultTest, RetryQueueOverflowShedsLoad) {
  exec::FaultPolicy policy;
  policy.WithRate(exec::FaultSite::kHdfsRead, 1.0);
  serve::JobService service(
      ClusterConfig::PaperCluster(),
      FaultyServeOptions(policy).WithMaxRetryingJobs(0));
  ASSERT_TRUE(service.startup_status().ok());
  RegisterRealRegressionData(&service.session());

  auto handle =
      service.Submit("tenant", RealLinregRequest(ReadScript("linreg_ds.dml")));
  ASSERT_TRUE(handle.ok());
  auto outcome = handle->Await();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kOverloaded);
  EXPECT_EQ(service.stats().overload_shed, 1);
  EXPECT_EQ(service.stats().retries, 0);
}

TEST(JobServiceFaultTest, DegradedSerialFallbackEscapesSchedulerFaults) {
  // Task aborts fire only on the parallel scheduler path, so a huge
  // first_n budget would fail every parallel attempt forever. The
  // serial fallback after degrade_after_attempts draws no task faults
  // and must complete the job.
  exec::FaultPolicy policy;
  policy.WithFirstN(exec::FaultSite::kTaskAbort, 1000);
  exec::SetWorkers(2);  // reset any live pool so the service's resize sticks
  serve::JobService service(ClusterConfig::PaperCluster(),
                            FaultyServeOptions(policy)
                                .WithExecWorkers(2)
                                .WithDegradeAfterAttempts(1));
  ASSERT_TRUE(service.startup_status().ok());
  RegisterRealRegressionData(&service.session());

  auto handle =
      service.Submit("tenant", RealLinregRequest(ReadScript("linreg_ds.dml")));
  ASSERT_TRUE(handle.ok());
  auto outcome = handle->Await();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->attempts, 2);
  EXPECT_TRUE(outcome->degraded);
  EXPECT_GE(service.stats().degraded_runs, 1);
  service.Shutdown();
  exec::SetWorkers(1);  // restore the process-wide serial default
}

TEST(JobServiceFaultTest, ExpiredDeadlineFailsBeforeExecuting) {
  serve::JobService service(
      ClusterConfig::PaperCluster(),
      serve::ServeOptions().WithWorkers(1).WithSimulation(false));
  ASSERT_TRUE(service.startup_status().ok());
  RegisterRealRegressionData(&service.session());

  serve::JobRequest request = RealLinregRequest(ReadScript("linreg_ds.dml"));
  request.deadline_seconds = 1e-9;  // expires before any worker picks it up
  auto handle = service.Submit("tenant", std::move(request));
  ASSERT_TRUE(handle.ok());
  auto outcome = handle->Await();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(handle->state(), serve::JobState::kFailed);
  EXPECT_EQ(service.stats().deadline_misses, 1);
}

TEST(JobServiceFaultTest, CancelQueuedJobResolvesWithoutRunning) {
  // Job A burns ~all of a 1-worker service on failing attempts with
  // real backoff, so B is reliably still queued when the cancel lands.
  exec::FaultPolicy policy;
  policy.WithRate(exec::FaultSite::kHdfsRead, 1.0);
  serve::JobService service(
      ClusterConfig::PaperCluster(),
      serve::ServeOptions()
          .WithWorkers(1)
          .WithSimulation(false)
          .WithFaultPolicy(policy)
          .WithRetry(RetryPolicy().WithInitialBackoffSeconds(0.2)));
  ASSERT_TRUE(service.startup_status().ok());
  RegisterRealRegressionData(&service.session());

  const std::string source = ReadScript("linreg_ds.dml");
  auto blocker = service.Submit("tenant", RealLinregRequest(source));
  ASSERT_TRUE(blocker.ok());
  serve::JobRequest victim_request = RealLinregRequest(source);
  victim_request.max_attempts = 1;
  auto victim = service.Submit("tenant", std::move(victim_request));
  ASSERT_TRUE(victim.ok());
  EXPECT_TRUE(victim->Cancel());
  EXPECT_TRUE(victim->Cancel());  // idempotent

  auto outcome = victim->Await();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(victim->state(), serve::JobState::kCancelled);
  EXPECT_FALSE(blocker->Await().ok());  // exhausts its retries
  EXPECT_EQ(service.stats().cancelled, 1);
  // Cancelling a finished job reports too-late.
  EXPECT_FALSE(victim->Cancel());
}

TEST(JobServiceFaultTest, AwaitForTimesOutWithoutFinishingJob) {
  exec::FaultPolicy policy;
  policy.WithFirstN(exec::FaultSite::kHdfsRead, 1);
  serve::JobService service(
      ClusterConfig::PaperCluster(),
      serve::ServeOptions()
          .WithWorkers(1)
          .WithSimulation(false)
          .WithFaultPolicy(policy)
          .WithRetry(RetryPolicy().WithInitialBackoffSeconds(0.2)));
  ASSERT_TRUE(service.startup_status().ok());
  RegisterRealRegressionData(&service.session());

  auto handle =
      service.Submit("tenant", RealLinregRequest(ReadScript("linreg_ds.dml")));
  ASSERT_TRUE(handle.ok());
  // The first attempt fails and the job sits in a ~0.2s backoff, so a
  // short bounded wait must time out without disturbing the job...
  auto bounded = handle->AwaitFor(0.01);
  ASSERT_FALSE(bounded.ok());
  EXPECT_EQ(bounded.status().code(), StatusCode::kDeadlineExceeded);
  // ...and the unbounded wait then sees the retry succeed.
  auto outcome = handle->Await();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->attempts, 2);
}

TEST(JobServiceFaultTest, StatsSurfaceExecWorkerRefusal) {
  // Build the process-wide pool at size 3, then ask the service for 5:
  // TrySetWorkers must refuse (a rebuild would pull threads out from
  // under live users) and the stats must surface requested vs live.
  exec::SetWorkers(3);
  exec::SharedPool();
  serve::JobService service(ClusterConfig::PaperCluster(),
                            serve::ServeOptions()
                                .WithWorkers(1)
                                .WithSimulation(false)
                                .WithExecWorkers(5));
  ASSERT_TRUE(service.startup_status().ok());
  serve::JobService::Stats stats = service.stats();
  EXPECT_EQ(stats.exec_workers_requested, 5);
  EXPECT_EQ(stats.exec_workers_effective, 3);
  service.Shutdown();
  exec::SetWorkers(1);  // restore the process-wide serial default
}

// ---- job-scoped telemetry ---------------------------------------------

TEST(JobTelemetryTest, ConcurrentTenantsKeepDisjointScopesAndSpans) {
  obs::Tracer::Global().SetEnabled(false);
  obs::Tracer::Global().Clear();
  obs::Tracer::Global().SetEnabled(true);

  serve::JobService service(ClusterConfig::PaperCluster(),
                            serve::ServeOptions()
                                .WithWorkers(2)
                                .WithSimulation(false)
                                .WithExecWorkers(2));
  ASSERT_TRUE(service.startup_status().ok());
  RegisterRealRegressionData(&service.session());
  const std::string source = ReadScript("linreg_ds.dml");

  // Two tenants race real-execution jobs through both workers; the
  // per-job scopes and the span attribution must never cross.
  constexpr int kJobsPerTenant = 3;
  const char* tenants[] = {"alpha", "beta"};
  std::vector<std::pair<std::string, serve::JobHandle>> handles;
  for (int j = 0; j < kJobsPerTenant; ++j) {
    for (const char* tenant : tenants) {
      serve::JobRequest request;
      request.source = source;
      request.args = LinregArgs();
      request.execute_real = true;
      auto handle = service.Submit(tenant, std::move(request));
      ASSERT_TRUE(handle.ok()) << handle.status().ToString();
      handles.emplace_back(tenant, std::move(*handle));
    }
  }
  for (auto& [tenant, handle] : handles) {
    auto outcome = handle.Await();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    // The scope snapshot carries the job's own identity...
    EXPECT_EQ(outcome->telemetry.trace.job_id, handle.id());
    EXPECT_EQ(outcome->telemetry.trace.tenant, tenant);
    EXPECT_EQ(outcome->telemetry.counter("job.attempts"),
              outcome->attempts);
    // ...and exactly this job's engine counters, not a neighbor's: the
    // per-job tasks_scheduled delta must equal the job's own RealRun
    // stats even while another tenant executes concurrently.
    EXPECT_TRUE(outcome->executed_real);
    EXPECT_EQ(outcome->telemetry.counter("exec.tasks_scheduled"),
              outcome->real.exec.tasks_scheduled);
    EXPECT_EQ(outcome->telemetry.counter("exec.spill_bytes"),
              outcome->real.exec.spill_bytes);
  }
  service.Shutdown();
  obs::Tracer::Global().SetEnabled(false);

#if RELM_OBS_ENABLED
  // Span attribution: every job id seen in the trace maps to exactly
  // one tenant, and both tenants show up.
  std::map<uint64_t, std::set<std::string>> tenants_by_job;
  size_t attributed_spans = 0;
  for (const obs::TraceEvent& ev : obs::Tracer::Global().Events()) {
    const size_t id_pos = ev.args_json.find("\"job_id\":");
    if (id_pos == std::string::npos) continue;
    attributed_spans++;
    const uint64_t job_id = std::strtoull(
        ev.args_json.c_str() + id_pos + std::strlen("\"job_id\":"),
        nullptr, 10);
    const size_t tenant_pos = ev.args_json.find("\"tenant\":\"");
    ASSERT_NE(tenant_pos, std::string::npos) << ev.args_json;
    const size_t value_pos = tenant_pos + std::strlen("\"tenant\":\"");
    const std::string tenant = ev.args_json.substr(
        value_pos, ev.args_json.find('"', value_pos) - value_pos);
    tenants_by_job[job_id].insert(tenant);
  }
  EXPECT_GE(attributed_spans, handles.size());  // at least serve.job each
  std::set<std::string> seen_tenants;
  for (const auto& [job_id, job_tenants] : tenants_by_job) {
    EXPECT_EQ(job_tenants.size(), 1u)
        << "job " << job_id << " attributed to multiple tenants";
    seen_tenants.insert(*job_tenants.begin());
  }
  EXPECT_EQ(seen_tenants, (std::set<std::string>{"alpha", "beta"}));
#endif  // RELM_OBS_ENABLED
  obs::Tracer::Global().Clear();
  exec::SetWorkers(1);  // restore the process-wide serial default
}

TEST(JobTelemetryTest, StatsReportSloPercentiles) {
  serve::JobService service(
      ClusterConfig::PaperCluster(),
      serve::ServeOptions().WithWorkers(2));
  ASSERT_TRUE(service.startup_status().ok());
  const std::string source = ReadScript("linreg_ds.dml");
  constexpr int kJobs = 6;
  std::vector<serve::JobHandle> handles;
  for (int j = 0; j < kJobs; ++j) {
    serve::JobRequest request;
    request.source = source;
    request.args = LinregArgs();
    request.inputs = {{"/data/X", 1000000, 100, 1.0},
                      {"/data/y", 1000000, 1, 1.0}};
    auto handle = service.Submit("tenant", std::move(request));
    ASSERT_TRUE(handle.ok());
    handles.push_back(std::move(*handle));
  }
  for (auto& handle : handles) {
    ASSERT_TRUE(handle.Await().ok());
  }
  serve::JobService::Stats stats = service.stats();
  EXPECT_EQ(stats.e2e_ms.count, kJobs);
  EXPECT_EQ(stats.wait_ms.count, kJobs);
  EXPECT_EQ(stats.run_ms.count, kJobs);
  EXPECT_EQ(stats.attempts_per_job.count, kJobs);
  // Percentiles are monotone and the end-to-end latency dominates its
  // wait component.
  EXPECT_LE(stats.e2e_ms.p50, stats.e2e_ms.p95);
  EXPECT_LE(stats.e2e_ms.p95, stats.e2e_ms.p99);
  EXPECT_GT(stats.e2e_ms.p99, 0.0);
  // Fault-free jobs take exactly one attempt, which the percentile
  // interpolation reports inside attempt bucket [1, 2).
  EXPECT_GE(stats.attempts_per_job.p50, 1.0);
  EXPECT_LT(stats.attempts_per_job.p99, 2.0);
  service.Shutdown();
}

// ---------------------------------------------------------------------
// Pluggable scheduling (DESIGN.md §16): round-robin extraction parity,
// cost-aware deadline ordering, quota-driven starvation freedom, and
// the preemption chaos soak. JobSchedulerTest is a TSan target wired
// into scripts/check.sh.

TEST(JobSchedulerTest, RoundRobinStampsDispatchDecision) {
  PlanCache cache;
  serve::JobService service(
      ClusterConfig::PaperCluster(),
      serve::ServeOptions().WithWorkers(1).WithPlanCache(&cache));
  ASSERT_TRUE(service.startup_status().ok());
  auto handle =
      service.Submit("t", LinregRequest(ReadScript("linreg_ds.dml")));
  ASSERT_TRUE(handle.ok());
  auto outcome = handle->Await();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->telemetry.trace.sched_decision, "rr");
  serve::JobService::Stats stats = service.stats();
  EXPECT_EQ(stats.scheduler, "round_robin");
  EXPECT_EQ(stats.sched.admitted, 1);
  EXPECT_EQ(stats.sched.dispatched, 1);
  ASSERT_EQ(stats.per_tenant.count("t"), 1u);
  EXPECT_EQ(stats.per_tenant.at("t").completed, 1);
  EXPECT_EQ(stats.per_tenant.at("t").wait_ms.count, 1);
}

TEST(JobSchedulerTest, CostAwareDispatchesLeastSlackFirstOnCostTies) {
  const std::string source = ReadScript("linreg_ds.dml");
  PlanCache cache;
  serve::JobService service(
      ClusterConfig::PaperCluster(),
      serve::ServeOptions()
          .WithWorkers(1)
          .WithScheduler(sched::SchedulerPolicy::kCostAware)
          .WithPlanCache(&cache));
  ASSERT_TRUE(service.startup_status().ok());
  // The blocker occupies the single worker while the deadline jobs
  // queue. Identical scripts mean identical cost estimates, so the tie
  // breaks on slack alone: the tightest deadline dispatches first even
  // though it was submitted last.
  auto blocker = service.Submit("batch", LinregRequest(source));
  ASSERT_TRUE(blocker.ok());
  serve::JobRequest loose = LinregRequest(source);
  loose.deadline_seconds = 60.0;
  serve::JobRequest mid = LinregRequest(source);
  mid.deadline_seconds = 40.0;
  serve::JobRequest tight = LinregRequest(source);
  tight.deadline_seconds = 20.0;
  auto h_loose = service.Submit("svc", std::move(loose));
  auto h_mid = service.Submit("svc", std::move(mid));
  auto h_tight = service.Submit("svc", std::move(tight));
  ASSERT_TRUE(h_loose.ok() && h_mid.ok() && h_tight.ok());
  service.Drain();
  auto o_blocker = blocker->Await();
  auto o_loose = h_loose->Await();
  auto o_mid = h_mid->Await();
  auto o_tight = h_tight->Await();
  ASSERT_TRUE(o_blocker.ok() && o_loose.ok() && o_mid.ok() && o_tight.ok());
  EXPECT_LT(o_tight->completion_index, o_mid->completion_index);
  EXPECT_LT(o_mid->completion_index, o_loose->completion_index);
  // Dispatch decisions land on each job's trace context.
  EXPECT_EQ(o_blocker->telemetry.trace.sched_decision,
            "cost_aware:no_deadline");
  EXPECT_EQ(o_tight->telemetry.trace.sched_decision.rfind(
                "cost_aware:slack=", 0),
            0u)
      << o_tight->telemetry.trace.sched_decision;
  EXPECT_EQ(service.stats().scheduler, "cost_aware");
  EXPECT_EQ(service.stats().deadline_misses, 0);
}

TEST(JobSchedulerTest, OverQuotaFloodCannotStarveInQuotaTenant) {
  const std::string source = ReadScript("linreg_ds.dml");
  PlanCache cache;
  // "batch" has a one-byte memory quota: over quota whenever it holds
  // any container, so its queued work defers to "svc" and its
  // containers allocate at unboosted priority. One worker makes
  // dispatch serial, so completion order *is* dispatch order — run
  // times (cold compiles, shared-cache contention) cannot reorder it.
  serve::JobService service(
      ClusterConfig::PaperCluster(),
      serve::ServeOptions()
          .WithWorkers(1)
          .WithScheduler(sched::SchedulerPolicy::kCostAware)
          .WithTenantQuota("batch", sched::TenantQuota{1, 0})
          .WithPlanCache(&cache));
  ASSERT_TRUE(service.startup_status().ok());
  // Pre-warm the raced script's plan so every raced job is a cache hit
  // with a uniform (sub-millisecond) run time: completion order then
  // tracks dispatch order instead of who paid the cold compile.
  {
    auto warmup = service.Submit("warm", LinregRequest(source));
    ASSERT_TRUE(warmup.ok());
    ASSERT_TRUE(warmup->Await().ok());
  }
  // Two back-to-back blockers pin the worker while the tenants race to
  // submit. Distinct argument sets give each blocker its own script
  // signature, so both are full (milliseconds-scale) compiles, not
  // cache hits.
  const std::string blocker_source = ReadScript("linreg_cg.dml");
  std::vector<serve::JobHandle> blockers;
  for (int i = 0; i < 2; ++i) {
    std::string base = "/blk" + std::to_string(i);
    serve::JobRequest request;
    request.source = blocker_source;
    request.args = ScriptArgs{
        {"X", base + "/X"}, {"Y", base + "/y"}, {"B", "/out/B"}};
    request.inputs = {{base + "/X", 1000000, 100, 1.0},
                      {base + "/y", 1000000, 1, 1.0}};
    auto handle = service.Submit("warm", std::move(request));
    ASSERT_TRUE(handle.ok());
    blockers.push_back(std::move(*handle));
  }
  // Two-sided barrier: both tenants check in and are released
  // together, so the flood cannot drain before the in-quota tenant's
  // submissions reach the queue.
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<serve::JobHandle> batch_handles;
  std::vector<serve::JobHandle> svc_handles;
  std::mutex handles_mu;
  std::thread flood([&] {
    ready.fetch_add(1);
    while (!go.load()) std::this_thread::yield();
    for (int i = 0; i < 16; ++i) {
      auto handle = service.Submit("batch", LinregRequest(source));
      ASSERT_TRUE(handle.ok());
      std::lock_guard<std::mutex> lock(handles_mu);
      batch_handles.push_back(std::move(*handle));
    }
  });
  std::thread urgent([&] {
    ready.fetch_add(1);
    while (!go.load()) std::this_thread::yield();
    for (int i = 0; i < 6; ++i) {
      serve::JobRequest request = LinregRequest(source);
      request.deadline_seconds = 120.0;
      request.priority = 5;
      auto handle = service.Submit("svc", std::move(request));
      ASSERT_TRUE(handle.ok());
      std::lock_guard<std::mutex> lock(handles_mu);
      svc_handles.push_back(std::move(*handle));
    }
  });
  while (ready.load() < 2) std::this_thread::yield();
  go.store(true);
  flood.join();
  urgent.join();
  service.Drain();
  int64_t svc_worst = 0;
  for (serve::JobHandle& handle : svc_handles) {
    auto outcome = handle.Await();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    svc_worst = std::max(svc_worst, outcome->completion_index);
  }
  for (serve::JobHandle& handle : batch_handles) {
    EXPECT_TRUE(handle.Await().ok());  // work-conserving: batch still runs
  }
  // 25 jobs total (warm-up + blockers + the raced 22); every dispatch
  // with svc work queued picks svc, so svc never sinks into the
  // flood's backlog (slop for jobs already past the scheduler when the
  // svc submissions landed).
  EXPECT_LE(svc_worst, 14) << "in-quota tenant starved behind the flood";
  serve::JobService::Stats stats = service.stats();
  EXPECT_EQ(stats.scheduler, "cost_aware");
  ASSERT_EQ(stats.per_tenant.count("svc"), 1u);
  EXPECT_EQ(stats.per_tenant.at("svc").completed, 6);
  EXPECT_EQ(stats.per_tenant.at("svc").deadline_misses, 0);
  EXPECT_EQ(stats.per_tenant.at("svc").wait_ms.count, 6);
  EXPECT_EQ(stats.completed, 25);
}

TEST(JobSchedulerTest, ChaosSoakInQuotaDeadlinesHoldUnderPreemption) {
  const std::string source = ReadScript("linreg_ds.dml");
  // Two-node cluster where every AM container rounds up to a full
  // node: at most two attempts hold capacity at once, so a third
  // concurrent allocation always contends and in-quota grants must go
  // through preemption.
  ClusterConfig cc;
  cc.num_worker_nodes = 2;
  cc.memory_per_node = 2 * kGB;
  cc.min_allocation = 2 * kGB;
  cc.max_allocation = 2 * kGB;
  // Stragglers (every parallel task stalls 1ms) keep containers held
  // long enough that node-loss injections and priority preemptions
  // reliably catch live grants; read faults add retry churn on top.
  exec::FaultPolicy chaos;
  chaos.WithSeed(7)
      .WithRate(exec::FaultSite::kHdfsRead, 0.2)
      .WithRate(exec::FaultSite::kTaskStall, 1.0)
      .WithStallMicros(1000);
  exec::SetWorkers(2);  // reset any live pool so the service's resize sticks
  PlanCache cache;
  serve::JobService service(
      cc, serve::ServeOptions()
              .WithWorkers(3)
              .WithSimulation(false)
              .WithExecWorkers(2)
              .WithScheduler(sched::SchedulerPolicy::kCostAware)
              .WithTenantQuota("batch", sched::TenantQuota{1, 0})
              .WithFaultPolicy(chaos)
              .WithRetry(RetryPolicy()
                             .WithInitialBackoffSeconds(0.001)
                             .WithMaxBackoffSeconds(0.01))
              .WithPlanCache(&cache));
  ASSERT_TRUE(service.startup_status().ok());
  RegisterRealRegressionData(&service.session());
  std::vector<serve::JobHandle> batch_handles;
  for (int i = 0; i < 6; ++i) {
    serve::JobRequest request = RealLinregRequest(source);
    request.max_attempts = 10;
    auto handle = service.Submit("batch", std::move(request));
    ASSERT_TRUE(handle.ok());
    batch_handles.push_back(std::move(*handle));
  }
  std::vector<serve::JobHandle> svc_handles;
  for (int i = 0; i < 3; ++i) {
    serve::JobRequest request = RealLinregRequest(source);
    request.deadline_seconds = 120.0;
    request.priority = 5;
    request.max_attempts = 10;
    auto handle = service.Submit("svc", std::move(request));
    ASSERT_TRUE(handle.ok());
    svc_handles.push_back(std::move(*handle));
  }
  // Rolling node loss until at least one live container has been
  // reclaimed (injected kills and priority preemptions both count).
  int node = 0;
  while (true) {
    serve::JobService::Stats s = service.stats();
    if (s.completed + s.failed + s.cancelled >= 9) break;
    if (s.preempted == 0) {
      service.InjectNodeLoss(node);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      ASSERT_TRUE(service.RestoreNode(node).ok());
      node ^= 1;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  service.Drain();
  // The SLO claim: every in-quota job finishes inside its deadline
  // even while its co-tenant is preempted and nodes churn.
  for (serve::JobHandle& handle : svc_handles) {
    auto outcome = handle.Await();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  }
  // Over-quota work resolves too: success, or a typed retryable error
  // when chaos + preemption burned its whole attempt budget.
  for (serve::JobHandle& handle : batch_handles) {
    auto outcome = handle.Await();
    if (!outcome.ok()) {
      EXPECT_TRUE(outcome.status().code() == StatusCode::kUnavailable ||
                  outcome.status().code() == StatusCode::kOverloaded)
          << outcome.status().ToString();
    }
  }
  serve::JobService::Stats stats = service.stats();
  EXPECT_GE(stats.preempted, 1);
  ASSERT_EQ(stats.per_tenant.count("svc"), 1u);
  EXPECT_EQ(stats.per_tenant.at("svc").deadline_misses, 0);
  EXPECT_EQ(stats.per_tenant.at("svc").completed, 3);
  service.Shutdown();
  exec::SetWorkers(1);  // restore the process-wide serial default
}

}  // namespace
}  // namespace relm

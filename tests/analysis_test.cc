// Plan-integrity analysis tests: a corpus of seeded corruptions, each of
// which must be caught by the matching pass, plus the clean-program
// guarantee that every shipped script passes the full analysis at the
// cluster's budget extremes.

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analysis.h"
#include "analysis/dataflow.h"
#include "api/session.h"
#include "hops/size_propagation.h"
#include "lops/compiler_backend.h"

namespace relm {
namespace {

using analysis::AnalysisReport;
using analysis::AnalyzeProgram;
using analysis::AnalyzeRuntimePlan;
using analysis::PlanSignature;
using analysis::ReportToStatus;
using analysis::Severity;

const char* const kScripts[] = {"glm.dml", "l2svm.dml", "linreg_cg.dml",
                                "linreg_ds.dml", "mlogreg.dml"};

std::string ReadScript(const std::string& name) {
  std::ifstream in(std::string(RELM_SCRIPTS_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing script " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class AnalysisTest : public ::testing::Test {
 protected:
  AnalysisTest() : cc_(ClusterConfig::PaperCluster()) {}

  /// Registers X (rows x cols) and matching y, then compiles `source`.
  std::unique_ptr<MlProgram> CompileSource(const std::string& source,
                                           int64_t rows = 1000000,
                                           int64_t cols = 1000) {
    hdfs_ = std::make_unique<SimulatedHdfs>(cc_.hdfs_block_size);
    hdfs_->PutMetadata("/data/X", MatrixCharacteristics::Dense(rows, cols));
    hdfs_->PutMetadata("/data/y", MatrixCharacteristics::Dense(rows, 1));
    ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"},
                    {"B", "/out/B"},  {"model", "/out/w"}};
    auto p = MlProgram::Compile(source, args, hdfs_.get());
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return std::move(*p);
  }

  std::unique_ptr<MlProgram> CompileScript(const std::string& file) {
    return CompileSource(ReadScript(file));
  }

  RuntimeProgram CompilePlan(MlProgram* p, int64_t cp_heap) {
    CompileCounters counters;
    auto rp = GenerateRuntimeProgram(p, cc_,
                                     ResourceConfig(cp_heap, cp_heap),
                                     &counters);
    EXPECT_TRUE(rp.ok()) << rp.status().ToString();
    return std::move(*rp);
  }

  /// First hop (topological order, all blocks) matching the predicate.
  template <typename Pred>
  Hop* FindHop(MlProgram* p, Pred pred) {
    for (StatementBlock* b : p->AllBlocksPreOrder()) {
      if (!p->has_ir(b->id())) continue;
      for (Hop* h : p->ir(b->id()).dag.TopoOrder()) {
        if (pred(h)) return h;
      }
    }
    return nullptr;
  }

  /// First MR job matching the predicate, searching nested blocks too.
  template <typename Pred>
  MRJobInstr* FindJob(std::vector<RuntimeBlock>& blocks, Pred pred) {
    for (RuntimeBlock& block : blocks) {
      for (RuntimeInstr& instr : block.instrs) {
        if (instr.kind == RuntimeInstr::Kind::kMrJob && pred(instr.job)) {
          return &instr.job;
        }
      }
      if (MRJobInstr* j = FindJob(block.body, pred)) return j;
      if (MRJobInstr* j = FindJob(block.else_body, pred)) return j;
    }
    return nullptr;
  }

  /// First CP instruction hop matching the predicate.
  template <typename Pred>
  Hop* FindCpInstr(std::vector<RuntimeBlock>& blocks, Pred pred) {
    for (RuntimeBlock& block : blocks) {
      for (RuntimeInstr& instr : block.instrs) {
        if (instr.kind == RuntimeInstr::Kind::kCp &&
            instr.hop != nullptr && pred(instr.hop)) {
          return instr.hop;
        }
      }
      if (Hop* h = FindCpInstr(block.body, pred)) return h;
      if (Hop* h = FindCpInstr(block.else_body, pred)) return h;
    }
    return nullptr;
  }

  ClusterConfig cc_;
  std::unique_ptr<SimulatedHdfs> hdfs_;
};

// ---- clean programs stay clean ----

TEST_F(AnalysisTest, AllShippedScriptsAreAnalysisClean) {
  for (const char* script : kScripts) {
    auto p = CompileScript(script);
    AnalysisReport report = AnalyzeProgram(p.get());
    EXPECT_EQ(report.NumErrors(), 0)
        << script << ":\n" << report.ToString();
    EXPECT_EQ(report.NumWarnings(), 0)
        << script << ":\n" << report.ToString();
  }
}

TEST_F(AnalysisTest, AllShippedScriptsCleanAtBudgetExtremes) {
  int64_t min_heap = cc_.MinHeapSize();
  int64_t max_heap = cc_.MaxHeapSize();
  int64_t budgets[] = {min_heap, (min_heap + max_heap) / 2, max_heap};
  for (const char* script : kScripts) {
    auto p = CompileScript(script);
    for (int64_t heap : budgets) {
      RuntimeProgram rp = CompilePlan(p.get(), heap);
      AnalysisReport report = AnalyzeRuntimePlan(p.get(), rp, cc_);
      EXPECT_EQ(report.NumErrors(), 0)
          << script << " at " << heap << " bytes:\n" << report.ToString();
    }
  }
}

TEST_F(AnalysisTest, EngineCapacityConformance) {
  auto p = CompileScript("linreg_ds.dml");
  RuntimeProgram rp = CompilePlan(p.get(), cc_.MinHeapSize());
  const int64_t cp_budget = rp.resources.CpBudget();
  // An engine capped at exactly the plan's CP budget is conformant.
  AnalysisReport matched = AnalyzeRuntimePlan(p.get(), rp, cc_, cp_budget);
  EXPECT_EQ(matched.NumErrors(), 0) << matched.ToString();
  // Any other capacity invalidates the plan's CP/MR decisions.
  AnalysisReport mismatched =
      AnalyzeRuntimePlan(p.get(), rp, cc_, cp_budget / 2);
  EXPECT_GT(mismatched.NumErrors(), 0);
  EXPECT_FALSE(mismatched.ForPass("budget-conformance").empty())
      << mismatched.ToString();
  // Omitting the capacity (not executing) skips the check entirely.
  AnalysisReport skipped = AnalyzeRuntimePlan(p.get(), rp, cc_);
  EXPECT_EQ(skipped.NumErrors(), 0) << skipped.ToString();
}

TEST_F(AnalysisTest, ReportToStatusMapsErrorsToInternal) {
  AnalysisReport clean;
  clean.Add(Severity::kWarning, "some-pass", "program", "just a warning");
  EXPECT_TRUE(ReportToStatus(clean).ok());

  AnalysisReport broken;
  broken.Add(Severity::kError, "some-pass", "block 1", "seeded");
  Status st = ReportToStatus(broken);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("plan integrity violated"),
            std::string::npos);
}

TEST_F(AnalysisTest, ReportJsonIsSelfDescribing) {
  AnalysisReport report;
  report.Add(Severity::kError, "dag-integrity", "block 3 hop 7 (MatMult)",
             "a \"quoted\" message");
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("dag-integrity"), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos) << json;
}

// ---- plan signatures ----

TEST_F(AnalysisTest, PlanSignatureIsDeterministic) {
  auto p = CompileScript("linreg_ds.dml");
  RuntimeProgram a = CompilePlan(p.get(), cc_.MaxHeapSize());
  RuntimeProgram b = CompilePlan(p.get(), cc_.MaxHeapSize());
  EXPECT_EQ(PlanSignature(a), PlanSignature(b));
}

TEST_F(AnalysisTest, PlanSignatureSeparatesBudgets) {
  // 8GB of input: the min budget forces MR jobs, the max budget runs
  // everything CP — operationally different plans, different signatures.
  auto p = CompileScript("linreg_ds.dml");
  RuntimeProgram small = CompilePlan(p.get(), cc_.MinHeapSize());
  RuntimeProgram large = CompilePlan(p.get(), cc_.MaxHeapSize());
  ASSERT_GT(small.TotalMrJobs(), 0);
  EXPECT_NE(PlanSignature(small), PlanSignature(large));
}

// ---- seeded corruption corpus: dag-integrity ----

TEST_F(AnalysisTest, CatchesCycle) {
  auto p = CompileScript("linreg_ds.dml");
  // Find a root with an input and close the loop: root -> input -> root.
  HopPtr root;
  for (StatementBlock* b : p->AllBlocksPreOrder()) {
    if (!p->has_ir(b->id())) continue;
    for (const HopPtr& r : p->ir(b->id()).dag.roots) {
      if (r != nullptr && !r->inputs().empty()) {
        root = r;
        break;
      }
    }
    if (root != nullptr) break;
  }
  ASSERT_NE(root, nullptr);
  root->input(0)->AddInput(root);
  AnalysisReport report = AnalyzeProgram(p.get());
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.ForPass("dag-integrity").empty())
      << report.ToString();
  // Break the shared_ptr cycle again or the Hops on it never free
  // (LeakSanitizer fails the suite otherwise).
  root->input(0)->inputs().pop_back();
}

TEST_F(AnalysisTest, CatchesNullInputEdge) {
  auto p = CompileScript("linreg_ds.dml");
  Hop* victim = FindHop(p.get(), [](Hop* h) {
    return !h->inputs().empty();
  });
  ASSERT_NE(victim, nullptr);
  victim->inputs().push_back(nullptr);
  AnalysisReport report = AnalyzeProgram(p.get());
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.ForPass("dag-integrity").empty())
      << report.ToString();
}

TEST_F(AnalysisTest, CatchesDuplicateHopIds) {
  auto p = CompileScript("linreg_ds.dml");
  Hop* a = FindHop(p.get(), [](Hop*) { return true; });
  ASSERT_NE(a, nullptr);
  Hop* b = FindHop(p.get(), [&](Hop* h) { return h != a; });
  ASSERT_NE(b, nullptr);
  b->set_id(a->id());
  AnalysisReport report = AnalyzeProgram(p.get());
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.ForPass("dag-integrity").empty())
      << report.ToString();
}

TEST_F(AnalysisTest, CatchesBogusFusedFlag) {
  auto p = CompileScript("linreg_ds.dml");
  Hop* victim = FindHop(p.get(), [](Hop* h) {
    return h->kind() != HopKind::kReorg;
  });
  ASSERT_NE(victim, nullptr);
  victim->set_fused(true);
  AnalysisReport report = AnalyzeProgram(p.get());
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.ForPass("dag-integrity").empty())
      << report.ToString();
}

// ---- seeded corruption corpus: size-consistency ----

TEST_F(AnalysisTest, CatchesNnzAboveCellCount) {
  auto p = CompileScript("linreg_ds.dml");
  Hop* victim = FindHop(p.get(), [](Hop* h) {
    return h->is_matrix() && h->mc().fully_known() && h->mc().cells() > 0;
  });
  ASSERT_NE(victim, nullptr);
  victim->mutable_mc()->set_nnz(victim->mc().cells() + 5);
  AnalysisReport report = AnalyzeProgram(p.get());
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.ForPass("size-consistency").empty())
      << report.ToString();
}

TEST_F(AnalysisTest, CatchesCorruptedTransposeDims) {
  // The transpose is consumed by a write (not a matmult), so it is a
  // real, unfused operator whose output shape must swap the input's.
  auto p = CompileSource("X = read($X);\nZ = t(X);\nwrite(Z, $B);\n");
  Hop* victim = FindHop(p.get(), [](Hop* h) {
    return h->kind() == HopKind::kReorg && !h->fused() &&
           h->reorg_op == ReorgOp::kTranspose;
  });
  ASSERT_NE(victim, nullptr);
  const MatrixCharacteristics& in = victim->input(0)->mc();
  victim->set_mc(MatrixCharacteristics(in.rows(), in.cols(), in.nnz()));
  AnalysisReport report = AnalyzeProgram(p.get());
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.ForPass("size-consistency").empty())
      << report.ToString();
}

TEST_F(AnalysisTest, CatchesCorruptedMatMultDims) {
  auto p = CompileScript("linreg_ds.dml");
  Hop* victim = FindHop(p.get(), [](Hop* h) {
    return h->kind() == HopKind::kMatMult && h->mc().dims_known();
  });
  ASSERT_NE(victim, nullptr);
  victim->mutable_mc()->set_rows(victim->mc().rows() + 1);
  AnalysisReport report = AnalyzeProgram(p.get());
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.ForPass("size-consistency").empty())
      << report.ToString();
}

TEST_F(AnalysisTest, CatchesShrunkOutputEstimate) {
  auto p = CompileScript("linreg_ds.dml");
  Hop* victim = FindHop(p.get(), [](Hop* h) {
    return h->is_matrix() && !h->fused() && h->mc().fully_known() &&
           h->output_mem() > 1024;
  });
  ASSERT_NE(victim, nullptr);
  victim->set_output_mem(1);
  AnalysisReport report = AnalyzeProgram(p.get());
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.ForPass("size-consistency").empty())
      << report.ToString();
}

TEST_F(AnalysisTest, CatchesOperationEstimateBelowOutput) {
  auto p = CompileScript("linreg_ds.dml");
  Hop* victim = FindHop(p.get(), [](Hop* h) {
    return h->is_matrix() && !h->fused() && h->output_mem() > 0;
  });
  ASSERT_NE(victim, nullptr);
  victim->set_op_mem(0);
  AnalysisReport report = AnalyzeProgram(p.get());
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.ForPass("size-consistency").empty())
      << report.ToString();
}

// ---- seeded corruption corpus: budget-conformance ----

TEST_F(AnalysisTest, CatchesMrOperatorThatFitsCpBudget) {
  auto p = CompileScript("linreg_ds.dml");
  RuntimeProgram rp = CompilePlan(p.get(), cc_.MinHeapSize());
  ASSERT_GT(rp.TotalMrJobs(), 0);
  MRJobInstr* job = FindJob(rp.main, [](const MRJobInstr& j) {
    return !j.map_ops.empty();
  });
  ASSERT_NE(job, nullptr);
  job->map_ops[0]->set_op_mem(1);  // "needs almost nothing" -> CP drift
  AnalysisReport report = AnalyzeRuntimePlan(p.get(), rp, cc_);
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.ForPass("budget-conformance").empty())
      << report.ToString();
}

TEST_F(AnalysisTest, CatchesCpAnnotationInsideMrJob) {
  auto p = CompileScript("linreg_ds.dml");
  RuntimeProgram rp = CompilePlan(p.get(), cc_.MinHeapSize());
  MRJobInstr* job = FindJob(rp.main, [](const MRJobInstr& j) {
    return !j.map_ops.empty();
  });
  ASSERT_NE(job, nullptr);
  job->map_ops[0]->set_exec_type(ExecType::kCP);
  AnalysisReport report = AnalyzeRuntimePlan(p.get(), rp, cc_);
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.ForPass("budget-conformance").empty())
      << report.ToString();
}

TEST_F(AnalysisTest, CatchesCpOperatorOverBudget) {
  auto p = CompileScript("linreg_ds.dml");
  RuntimeProgram rp = CompilePlan(p.get(), cc_.MaxHeapSize());
  Hop* victim = FindCpInstr(rp.main, [](Hop* h) {
    return HopIsOperator(*h) && HopIsMrCapable(*h);
  });
  ASSERT_NE(victim, nullptr);
  victim->set_op_mem(cc_.MaxHeapSize() * 2);
  AnalysisReport report = AnalyzeRuntimePlan(p.get(), rp, cc_);
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.ForPass("budget-conformance").empty())
      << report.ToString();
}

// ---- seeded corruption corpus: piggyback-legality ----

TEST_F(AnalysisTest, CatchesReduceWorkWithoutShuffle) {
  auto p = CompileScript("linreg_ds.dml");
  RuntimeProgram rp = CompilePlan(p.get(), cc_.MinHeapSize());
  MRJobInstr* job = FindJob(rp.main, [](const MRJobInstr& j) {
    return !j.map_ops.empty();
  });
  ASSERT_NE(job, nullptr) << "expected an MR job at the min budget";
  // Seed reduce-side work with the shuffle flag cleared.
  job->reduce_ops.push_back(job->map_ops.back());
  job->map_ops.pop_back();
  job->has_shuffle = false;
  AnalysisReport report = AnalyzeRuntimePlan(p.get(), rp, cc_);
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.ForPass("piggyback-legality").empty())
      << report.ToString();
}

TEST_F(AnalysisTest, CatchesOperatorInBothPhases) {
  auto p = CompileScript("linreg_ds.dml");
  RuntimeProgram rp = CompilePlan(p.get(), cc_.MinHeapSize());
  MRJobInstr* job = FindJob(rp.main, [](const MRJobInstr& j) {
    return !j.map_ops.empty();
  });
  ASSERT_NE(job, nullptr);
  job->has_shuffle = true;  // keep the shuffle invariant satisfied
  job->reduce_ops.push_back(job->map_ops[0]);
  AnalysisReport report = AnalyzeRuntimePlan(p.get(), rp, cc_);
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.ForPass("piggyback-legality").empty())
      << report.ToString();
}

TEST_F(AnalysisTest, CatchesEmptyMrJob) {
  auto p = CompileScript("linreg_ds.dml");
  RuntimeProgram rp = CompilePlan(p.get(), cc_.MinHeapSize());
  MRJobInstr* job = FindJob(rp.main, [](const MRJobInstr& j) {
    return !j.map_ops.empty();
  });
  ASSERT_NE(job, nullptr);
  job->map_ops.clear();
  job->reduce_ops.clear();
  AnalysisReport report = AnalyzeRuntimePlan(p.get(), rp, cc_);
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.ForPass("piggyback-legality").empty())
      << report.ToString();
}

// ---- seeded corruption corpus: pool-purity ----

TEST_F(AnalysisTest, CatchesHiddenUnknownDimensions) {
  // Fully size-known program: the pooling predicate says trace-free.
  // Corrupt one hop to unknown dims WITHOUT updating the cached
  // per-block flag — the predicate still claims poolable, but the
  // independent IR scan disagrees.
  auto p = CompileScript("linreg_ds.dml");
  ASSERT_TRUE(p->IsPoolableTraceFree());
  Hop* victim = FindHop(p.get(), [](Hop* h) {
    return h->is_matrix() && h->mc().dims_known();
  });
  ASSERT_NE(victim, nullptr);
  victim->set_mc(MatrixCharacteristics::Unknown());
  ASSERT_TRUE(p->IsPoolableTraceFree());  // the stale flag still lies
  AnalysisReport report = AnalyzeProgram(p.get());
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.ForPass("pool-purity").empty())
      << report.ToString();
}

TEST_F(AnalysisTest, WarnsOnStaleUnknownDimsFlag) {
  // The reverse direction: the flag claims unknowns on a clean program,
  // so the predicate needlessly rejects pooling — a warning, since the
  // plan itself is still sound.
  auto p = CompileScript("linreg_ds.dml");
  StatementBlock* first = p->AllBlocksPreOrder().front();
  ASSERT_TRUE(p->has_ir(first->id()));
  p->ir(first->id()).has_unknown_dims = true;
  ASSERT_FALSE(p->IsPoolableTraceFree());
  AnalysisReport report = AnalyzeProgram(p.get());
  EXPECT_EQ(report.NumErrors(), 0) << report.ToString();
  EXPECT_GE(report.NumWarnings(), 1);
  EXPECT_FALSE(report.ForPass("pool-purity").empty())
      << report.ToString();
}

// ---- seeded corruption corpus: recompile-idempotence ----

TEST_F(AnalysisTest, CatchesMutatedRuntimePlan) {
  auto p = CompileScript("linreg_ds.dml");
  RuntimeProgram rp = CompilePlan(p.get(), cc_.MaxHeapSize());
  // Drop the tail instruction of the first non-empty block: the
  // recompile under the same budget will faithfully reproduce it, so
  // the signatures must diverge.
  RuntimeBlock* victim = nullptr;
  for (RuntimeBlock& block : rp.main) {
    if (!block.instrs.empty()) {
      victim = &block;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  victim->instrs.pop_back();
  AnalysisReport report = AnalyzeRuntimePlan(p.get(), rp, cc_);
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.ForPass("recompile-idempotence").empty())
      << report.ToString();
}

// ---- choke-point wiring ----

TEST_F(AnalysisTest, SessionCompileRunsTheAnalysisGate) {
  SessionOptions options;
  options.enable_plan_cache = false;  // isolate from the global cache
  Session session(cc_, options);
  ASSERT_TRUE(session
                  .RegisterMatrixMetadata("/data/X", 1000000, 1000)
                  .ok());
  ASSERT_TRUE(session.RegisterMatrixMetadata("/data/y", 1000000, 1).ok());
  ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"},
                  {"B", "/out/B"},  {"model", "/out/w"}};
  auto prog = session.CompileSource(ReadScript("linreg_ds.dml"), args);
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
}

// ---- seeded corruption corpus: dataflow passes (dead-write,
// use-liveness, memory-bound) ----
//
// Exactness contract: each seeded corruption is caught by its matching
// pass — with script line/column in the location — and produces zero
// error-severity diagnostics from any other pass.

int ErrorsForPass(const AnalysisReport& report, const std::string& pass) {
  int n = 0;
  for (const auto& d : report.ForPass(pass)) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

TEST_F(AnalysisTest, DeadWriteCaughtAtSourceLine) {
  // Line 3's product is overwritten on line 4 before any read.
  auto p = CompileSource(
      "X = read($X)\n"
      "y = read($Y)\n"
      "w = t(X) %*% y\n"
      "w = y\n"
      "write(w, $model)\n",
      1000, 100);
  RuntimeProgram rp = CompilePlan(p.get(), cc_.MaxHeapSize());
  AnalysisReport report = AnalyzeRuntimePlan(p.get(), rp, cc_);
  EXPECT_EQ(report.NumErrors(), 0) << report.ToString();
  auto dead = report.ForPass("dead-write");
  ASSERT_FALSE(dead.empty()) << report.ToString();
  EXPECT_EQ(dead[0].severity, Severity::kWarning);
  EXPECT_NE(dead[0].message.find("'w'"), std::string::npos)
      << dead[0].message;
  EXPECT_NE(dead[0].location.find("line 3"), std::string::npos)
      << dead[0].location;
  EXPECT_TRUE(report.ForPass("use-liveness").empty()) << report.ToString();
  EXPECT_TRUE(report.ForPass("memory-bound").empty()) << report.ToString();
}

TEST_F(AnalysisTest, UnreadWriteCaughtAtSourceLine) {
  // Line 3 computes a value nobody ever reads.
  auto p = CompileSource(
      "X = read($X)\n"
      "y = read($Y)\n"
      "tmp = t(X) %*% y\n"
      "write(y, $model)\n",
      1000, 100);
  RuntimeProgram rp = CompilePlan(p.get(), cc_.MaxHeapSize());
  AnalysisReport report = AnalyzeRuntimePlan(p.get(), rp, cc_);
  EXPECT_EQ(report.NumErrors(), 0) << report.ToString();
  auto dead = report.ForPass("dead-write");
  ASSERT_FALSE(dead.empty()) << report.ToString();
  EXPECT_NE(dead[0].message.find("'tmp'"), std::string::npos)
      << dead[0].message;
  EXPECT_NE(dead[0].location.find("line 3"), std::string::npos)
      << dead[0].location;
  EXPECT_TRUE(report.ForPass("use-liveness").empty()) << report.ToString();
}

TEST_F(AnalysisTest, LoopCarriedWriteIsNotDead) {
  // Every iteration's write of w feeds the next iteration (and the
  // final write statement): liveness must flow around the back edge.
  auto p = CompileSource(
      "X = read($X)\n"
      "y = read($Y)\n"
      "w = t(X) %*% y\n"
      "for (i in 1:3) {\n"
      "  w = w + y\n"
      "}\n"
      "write(w, $model)\n",
      1000, 100);
  RuntimeProgram rp = CompilePlan(p.get(), cc_.MaxHeapSize());
  AnalysisReport report = AnalyzeRuntimePlan(p.get(), rp, cc_);
  EXPECT_EQ(report.NumErrors(), 0) << report.ToString();
  EXPECT_TRUE(report.ForPass("dead-write").empty()) << report.ToString();
  EXPECT_TRUE(report.ForPass("use-liveness").empty()) << report.ToString();
}

TEST_F(AnalysisTest, UseLivenessCatchesGhostTransientRead) {
  auto p = CompileScript("linreg_ds.dml");
  RuntimeProgram rp = CompilePlan(p.get(), cc_.MaxHeapSize());
  // The victim must sit in statically-live code: linreg_ds's icpt
  // branch folds at compile time, and findings inside a dead branch are
  // (correctly) suppressed. The read of y in the main straight line is
  // always reachable.
  Hop* victim = FindHop(p.get(), [](Hop* h) {
    return h->kind() == HopKind::kTransientRead && h->name() == "y";
  });
  ASSERT_NE(victim, nullptr);
  victim->set_name("ghost");
  AnalysisReport report = AnalyzeRuntimePlan(p.get(), rp, cc_);
  EXPECT_TRUE(report.has_errors());
  ASSERT_GT(ErrorsForPass(report, "use-liveness"), 0) << report.ToString();
  // Every error is this pass's: the corruption leaks into no other.
  EXPECT_EQ(report.NumErrors(), ErrorsForPass(report, "use-liveness"))
      << report.ToString();
  auto ghost = report.ForPass("use-liveness");
  EXPECT_NE(ghost[0].message.find("'ghost'"), std::string::npos)
      << ghost[0].message;
}

TEST_F(AnalysisTest, UseLivenessWarnsOnConditionalDefinition) {
  // z is defined only when the (compile-time-unknown) predicate holds,
  // yet read unconditionally on line 6: a warning, not an error.
  auto p = CompileSource(
      "X = read($X)\n"
      "y = read($Y)\n"
      "if (sum(y) > 0) {\n"
      "  z = t(X) %*% y\n"
      "}\n"
      "s = sum(z)\n"
      "print(s)\n",
      1000, 100);
  RuntimeProgram rp = CompilePlan(p.get(), cc_.MaxHeapSize());
  AnalysisReport report = AnalyzeRuntimePlan(p.get(), rp, cc_);
  EXPECT_EQ(report.NumErrors(), 0) << report.ToString();
  auto reads = report.ForPass("use-liveness");
  ASSERT_FALSE(reads.empty()) << report.ToString();
  EXPECT_EQ(reads[0].severity, Severity::kWarning);
  EXPECT_NE(reads[0].message.find("'z'"), std::string::npos)
      << reads[0].message;
  EXPECT_NE(reads[0].message.find("some path"), std::string::npos)
      << reads[0].message;
}

TEST_F(AnalysisTest, MemoryBoundCatchesOversizedCpOnlyOp) {
  auto p = CompileScript("linreg_ds.dml");
  RuntimeProgram rp = CompilePlan(p.get(), cc_.MaxHeapSize());
  // solve() is MR-incapable: CP is its only home, so a working set
  // beyond the CP budget cannot be fixed by eviction or MR fallback.
  // (budget-conformance deliberately skips MR-incapable hops — this
  // corruption is memory-bound's alone.)
  Hop* victim = FindCpInstr(rp.main, [](Hop* h) {
    return h->kind() == HopKind::kSolve;
  });
  ASSERT_NE(victim, nullptr) << "expected a CP solve() in linreg_ds";
  victim->set_op_mem(rp.resources.CpBudget() * 2);
  AnalysisReport report = AnalyzeRuntimePlan(p.get(), rp, cc_);
  EXPECT_TRUE(report.has_errors());
  ASSERT_GT(ErrorsForPass(report, "memory-bound"), 0) << report.ToString();
  EXPECT_EQ(report.NumErrors(), ErrorsForPass(report, "memory-bound"))
      << report.ToString();
  EXPECT_EQ(ErrorsForPass(report, "budget-conformance"), 0)
      << report.ToString();
  // The diagnostic points back into the script.
  bool has_line = false;
  for (const auto& d : report.ForPass("memory-bound")) {
    if (d.severity == Severity::kError &&
        d.location.find("line ") != std::string::npos) {
      has_line = true;
    }
  }
  EXPECT_TRUE(has_line) << report.ToString();
}

TEST_F(AnalysisTest, MemoryBoundSkipsUnknownWorkingSet) {
  // An unknown working set is not evidence of not fitting: dynamic
  // recompilation resolves it at run time, so no error may fire.
  auto p = CompileScript("linreg_ds.dml");
  RuntimeProgram rp = CompilePlan(p.get(), cc_.MaxHeapSize());
  Hop* victim = FindCpInstr(rp.main, [](Hop* h) {
    return h->kind() == HopKind::kSolve;
  });
  ASSERT_NE(victim, nullptr);
  victim->set_op_mem(kUnknownSizeSentinel);
  AnalysisReport report = AnalyzeRuntimePlan(p.get(), rp, cc_);
  EXPECT_EQ(ErrorsForPass(report, "memory-bound"), 0) << report.ToString();
}

TEST_F(AnalysisTest, MemoryBoundWarnsOnPredictedSpillAtTightBudget) {
  // 8 GB of live data through the minimum container: the static
  // live-set peak exceeds the CP budget, so the plan is predicted to
  // spill — a warning (the engine survives via eviction), never an
  // error, and never a lint failure for shipped scripts.
  auto p = CompileScript("linreg_ds.dml");
  RuntimeProgram rp = CompilePlan(p.get(), cc_.MinHeapSize());
  AnalysisReport report = AnalyzeRuntimePlan(p.get(), rp, cc_);
  EXPECT_EQ(report.NumErrors(), 0) << report.ToString();
  auto spill = report.ForPass("memory-bound");
  ASSERT_FALSE(spill.empty()) << report.ToString();
  EXPECT_EQ(spill[0].severity, Severity::kWarning);
  EXPECT_NE(spill[0].message.find("will spill"), std::string::npos)
      << spill[0].message;
}

TEST_F(AnalysisTest, DataflowSummaryTracksDefUseAndPeak) {
  // w must cross a block boundary to materialize a transient write —
  // purely in-block consumers read through direct hop edges, which is
  // by design invisible to name-level def-use.
  auto p = CompileSource(
      "X = read($X)\n"
      "y = read($Y)\n"
      "w = t(X) %*% y\n"
      "if (sum(y) > 0) {\n"
      "  w = w + y\n"
      "}\n"
      "write(w, $model)\n",
      1000, 100);
  analysis::DataflowSummary df = analysis::AnalyzeDataflow(*p);
  // w: a def at line 3, and uses (the if-body read and the write).
  auto it = df.def_use.find("w");
  ASSERT_NE(it, df.def_use.end());
  ASSERT_FALSE(it->second.defs.empty());
  EXPECT_EQ(it->second.defs[0].line, 3);
  EXPECT_FALSE(it->second.uses.empty());
  EXPECT_TRUE(df.dead_writes.empty());
  EXPECT_TRUE(df.undefined_reads.empty());
  // Straight-line program with known dims: a finite peak that covers
  // at least the largest single working set.
  EXPECT_TRUE(df.peak.bounded);
  EXPECT_GT(df.peak.resident_bytes, 0);
  EXPECT_GE(df.peak.resident_bytes, df.peak.live_bytes);
  EXPECT_GE(df.peak.resident_bytes, df.peak.max_op_bytes);
}

TEST_F(AnalysisTest, StrictOptimizerSweepPassesOnCleanProgram) {
  SessionOptions options;
  options.enable_plan_cache = false;
  Session session(cc_, options);
  ASSERT_TRUE(session
                  .RegisterMatrixMetadata("/data/X", 1000000, 1000)
                  .ok());
  ASSERT_TRUE(session.RegisterMatrixMetadata("/data/y", 1000000, 1).ok());
  ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"},
                  {"B", "/out/B"},  {"model", "/out/w"}};
  auto prog = session.CompileSource(ReadScript("linreg_ds.dml"), args);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  OptimizerOptions opts;
  opts.WithStrictAnalysis(true);
  auto outcome = session.Optimize(prog->get(), opts);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
}

}  // namespace
}  // namespace relm

// Fault injection and failure recovery in the cluster simulator: a
// seeded FaultPlan (node crashes, co-tenant preemption, transient task
// failures, stragglers, AM crash) must degrade runs deterministically,
// recovery must complete with accurate counters and timeline events,
// and exhausted retries must fail with a Status instead of crashing.

#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "cost/cost_model.h"
#include "mrsim/cluster_simulator.h"
#include "mrsim/fault_injector.h"

namespace relm {
namespace {

std::string ReadScript(const std::string& name) {
  std::ifstream in(std::string(RELM_SCRIPTS_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing script " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() : cc_(ClusterConfig::PaperCluster()) {}

  std::unique_ptr<MlProgram> CompileScript(const std::string& file,
                                           int64_t rows, int64_t cols) {
    hdfs_ = std::make_unique<SimulatedHdfs>(cc_.hdfs_block_size);
    hdfs_->PutMetadata("/data/X",
                       MatrixCharacteristics::Dense(rows, cols));
    hdfs_->PutMetadata("/data/y", MatrixCharacteristics::Dense(rows, 1));
    ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"},
                    {"B", "/out/B"},  {"model", "/out/w"}};
    auto p = MlProgram::Compile(ReadScript(file), args, hdfs_.get());
    EXPECT_TRUE(p.ok()) << file << ": " << p.status().ToString();
    return std::move(*p);
  }

  /// Simulated run of an 8 GB LinregDS under a distributed plan (small
  /// CP forces MR jobs, so MR-phase faults have something to hit).
  Result<SimResult> RunDistributed(const SimOptions& opts) {
    auto p = CompileScript("linreg_ds.dml", 1000000, 1000);
    ClusterSimulator sim(cc_, opts);
    return sim.Execute(p.get(), ResourceConfig(2 * kGB, 2 * kGB));
  }

  static bool HasEvent(const SimResult& r, const std::string& needle) {
    for (const auto& ev : r.events) {
      if (ev.what.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  ClusterConfig cc_;
  std::unique_ptr<SimulatedHdfs> hdfs_;
};

// ---- SimOptions validation ----

TEST_F(FaultInjectionTest, RejectsInvalidSimOptions) {
  {
    SimOptions opts;
    opts.noise = -0.1;
    EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    SimOptions opts;
    opts.cluster_load = 1.5;
    EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    SimOptions opts;
    opts.max_loop_iterations = 0;
    EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    SimOptions opts;
    opts.faults.transient_task_failure_rate = 2.0;
    EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    SimOptions opts;
    opts.faults.max_task_attempts = 0;
    EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);
  }
  EXPECT_TRUE(SimOptions{}.Validate().ok());
}

TEST_F(FaultInjectionTest, ExecuteRejectsInvalidOptions) {
  auto p = CompileScript("linreg_ds.dml", 1000000, 1000);
  SimOptions opts;
  opts.noise = -1.0;
  ClusterSimulator sim(cc_, opts);
  auto r = sim.Execute(p.get(), ResourceConfig(2 * kGB, 2 * kGB));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// ---- default plan is inert ----

TEST_F(FaultInjectionTest, DisabledPlanLeavesCountersZero) {
  EXPECT_FALSE(FaultPlan{}.enabled());
  SimOptions opts;
  opts.noise = 0.0;
  auto r = RunDistributed(opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->task_retries, 0);
  EXPECT_EQ(r->speculative_launches, 0);
  EXPECT_EQ(r->node_failures_survived, 0);
  EXPECT_EQ(r->preemptions, 0);
  EXPECT_EQ(r->am_restarts, 0);
}

// ---- node crash recovery ----

TEST_F(FaultInjectionTest, SurvivesNodeCrashMidProgram) {
  SimOptions clean;
  clean.noise = 0.0;
  auto base = RunDistributed(clean);
  ASSERT_TRUE(base.ok());

  SimOptions opts;
  opts.noise = 0.0;
  // t=35s lands inside the dominant MR job's execution window, so the
  // crash takes in-flight map tasks with it (earlier times fall between
  // jobs and only degrade the cluster).
  opts.faults.node_crashes.push_back(NodeCrash{0, 35.0, -1.0});
  auto r = RunDistributed(opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->node_failures_survived, 1);
  EXPECT_GT(r->task_retries, 0);
  EXPECT_TRUE(HasEvent(*r, "node 0 crashed"));
  EXPECT_TRUE(HasEvent(*r, "re-running"));
  // Lost work re-runs on a degraded cluster: strictly slower.
  EXPECT_GT(r->elapsed_seconds, base->elapsed_seconds);
}

TEST_F(FaultInjectionTest, NodeRecoveryRecommissions) {
  SimOptions opts;
  opts.noise = 0.0;
  opts.faults.node_crashes.push_back(NodeCrash{0, 3.0, 10.0});
  auto r = RunDistributed(opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->node_failures_survived, 1);
  EXPECT_TRUE(HasEvent(*r, "node 0 recommissioned"));
}

TEST_F(FaultInjectionTest, LosingEveryNodeIsAnError) {
  SimOptions opts;
  opts.noise = 0.0;
  for (int n = 0; n < cc_.num_worker_nodes; ++n) {
    opts.faults.node_crashes.push_back(
        NodeCrash{n, 3.0 + 0.1 * n, -1.0});
  }
  auto r = RunDistributed(opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceError);
}

// ---- transient task failures ----

TEST_F(FaultInjectionTest, TransientFailuresRetryAndSlowDown) {
  SimOptions clean;
  clean.noise = 0.0;
  auto base = RunDistributed(clean);
  ASSERT_TRUE(base.ok());

  SimOptions opts;
  opts.noise = 0.0;
  opts.faults.transient_task_failure_rate = 0.15;
  auto r = RunDistributed(opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->task_retries, 0);
  EXPECT_GT(r->elapsed_seconds, base->elapsed_seconds);
}

TEST_F(FaultInjectionTest, ExhaustedRetriesReturnStatus) {
  SimOptions opts;
  opts.noise = 0.0;
  opts.faults.transient_task_failure_rate = 1.0;
  auto r = RunDistributed(opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kRuntimeError);
  EXPECT_NE(r.status().message().find("attempts"), std::string::npos);
}

// ---- stragglers & speculation ----

TEST_F(FaultInjectionTest, StragglersTriggerSpeculation) {
  SimOptions opts;
  opts.noise = 0.0;
  opts.faults.straggler_probability = 1.0;
  opts.faults.straggler_slowdown = 3.0;  // past the default threshold
  auto r = RunDistributed(opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->speculative_launches, 0);
  EXPECT_TRUE(HasEvent(*r, "speculative copy launched"));
}

// ---- preemption ----

TEST_F(FaultInjectionTest, PreemptionDegradesAndIsCounted) {
  SimOptions clean;
  clean.noise = 0.0;
  auto base = RunDistributed(clean);
  ASSERT_TRUE(base.ok());

  SimOptions opts;
  opts.noise = 0.0;
  opts.faults.preemptions.push_back(PreemptionEvent{1.0, 0.5, 500.0});
  auto r = RunDistributed(opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->preemptions, 1);
  EXPECT_TRUE(HasEvent(*r, "co-tenant preemption"));
  EXPECT_GT(r->elapsed_seconds, base->elapsed_seconds);
}

// ---- AM failure ----

TEST_F(FaultInjectionTest, AmCrashRestartsAndCompletes) {
  SimOptions opts;
  opts.noise = 0.0;
  opts.faults.am_crash_at_seconds = 3.0;
  auto r = RunDistributed(opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->am_restarts, 1);
  EXPECT_TRUE(HasEvent(*r, "restarting application master"));
}

// ---- determinism ----

TEST_F(FaultInjectionTest, FaultPlanIsDeterministic) {
  SimOptions opts;
  opts.seed = 7;
  opts.faults.node_crashes.push_back(NodeCrash{1, 3.0, 30.0});
  opts.faults.transient_task_failure_rate = 0.05;
  opts.faults.straggler_probability = 0.3;
  opts.faults.straggler_slowdown = 3.0;
  opts.faults.preemptions.push_back(PreemptionEvent{1.0, 0.3, 20.0});

  auto a = RunDistributed(opts);
  auto b = RunDistributed(opts);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  // Bit-identical result: same elapsed time, counters, and timeline.
  EXPECT_EQ(a->elapsed_seconds, b->elapsed_seconds);
  EXPECT_EQ(a->task_retries, b->task_retries);
  EXPECT_EQ(a->speculative_launches, b->speculative_launches);
  EXPECT_EQ(a->node_failures_survived, b->node_failures_survived);
  EXPECT_EQ(a->preemptions, b->preemptions);
  EXPECT_EQ(a->am_restarts, b->am_restarts);
  EXPECT_EQ(a->mr_jobs_executed, b->mr_jobs_executed);
  ASSERT_EQ(a->events.size(), b->events.size());
  for (size_t i = 0; i < a->events.size(); ++i) {
    EXPECT_EQ(a->events[i].at_seconds, b->events[i].at_seconds);
    EXPECT_EQ(a->events[i].what, b->events[i].what);
  }
}

TEST_F(FaultInjectionTest, DifferentSeedsDiverge) {
  SimOptions opts;
  opts.faults.transient_task_failure_rate = 0.10;
  opts.seed = 1;
  auto a = RunDistributed(opts);
  opts.seed = 2;
  auto b = RunDistributed(opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Retry draws come from the seed; distinct seeds should not reproduce
  // the exact same failure sequence on a job with many tasks.
  EXPECT_NE(a->elapsed_seconds, b->elapsed_seconds);
}

// ---- cost model: expected-failure pricing ----

TEST(ExpectedFailureCostTest, FewLargeTasksPayMoreThanManySmall) {
  ClusterConfig cc = ClusterConfig::PaperCluster();
  MrJobTimeBreakdown few_large;
  few_large.num_map_tasks = 6;
  few_large.map_waves = 1;
  few_large.map_phase = cc.mr_task_latency + 100.0;  // 100s per task
  MrJobTimeBreakdown many_small;
  many_small.num_map_tasks = 60;
  many_small.map_waves = 1;
  many_small.map_phase = cc.mr_task_latency + 10.0;  // 10s per task
  // Same total busy work (600 task-seconds), different blast radius.
  double rate = 0.01;
  double large = CostModel::ExpectedMrRetryOverhead(rate, few_large, cc);
  double small = CostModel::ExpectedMrRetryOverhead(rate, many_small, cc);
  EXPECT_GT(large, small);
  EXPECT_EQ(CostModel::ExpectedMrRetryOverhead(0.0, few_large, cc), 0.0);
}

}  // namespace
}  // namespace relm

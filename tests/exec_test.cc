// Tests of the unified execution engine substrate: the shared worker
// pool / ParallelFor, the budget-enforcing MemoryManager (accounting
// and payload APIs, including the set-capacity shrink regression and
// spill/reload round-trips), the serial-effect-order contract, and
// budget enforcement end to end through the interpreter.

#include <atomic>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "exec/engine.h"
#include "exec/memory_manager.h"
#include "exec/op_registry.h"
#include "exec/worker_pool.h"
#include "hdfs/file_system.h"
#include "hops/ml_program.h"
#include "matrix/kernels.h"
#include "runtime/interpreter.h"

namespace relm {
namespace exec {
namespace {

/// Restores the process-wide worker count on scope exit so tests cannot
/// leak parallelism into each other.
class WorkerGuard {
 public:
  WorkerGuard() : saved_(Workers()) {}
  ~WorkerGuard() { SetWorkers(saved_); }

 private:
  int saved_;
};

// ---- worker pool / ParallelFor ----

TEST(WorkerPoolTest, ParallelForCoversRangeExactlyOnce) {
  WorkerGuard guard;
  SetWorkers(4);
  const int64_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  ParallelFor(0, n, 64, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPoolTest, ChunkBoundariesMatchSerialConfiguration) {
  // The determinism contract for kernels: chunk boundaries depend only
  // on (range, grain), never on the worker count — each chunk writes a
  // disjoint output slice with the serial inner loop, so identical
  // chunking means bitwise-identical results.
  auto chunks_at = [](int workers) {
    WorkerGuard guard;
    SetWorkers(workers);
    std::mutex mu;
    std::set<std::pair<int64_t, int64_t>> chunks;
    ParallelFor(0, 1000, 128, [&](int64_t lo, int64_t hi) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.insert({lo, hi});
    });
    return chunks;
  };
  EXPECT_EQ(chunks_at(1), chunks_at(8));
}

TEST(WorkerPoolTest, SetWorkersRebuildsSharedPool) {
  WorkerGuard guard;
  SetWorkers(3);
  EXPECT_EQ(Workers(), 3);
  // Caller participates, so the pool itself holds Workers() - 1 threads.
  EXPECT_EQ(SharedPool()->num_threads(), 2);
  SetWorkers(1);
  EXPECT_EQ(Workers(), 1);
  EXPECT_EQ(SharedPool()->num_threads(), 0);
}

TEST(WorkerPoolTest, TrySetWorkersRefusesToResizeLivePool) {
  WorkerGuard guard;
  SetWorkers(3);
  ASSERT_EQ(SharedPool()->num_threads(), 2);  // pool is now live
  // A live pool at a different size must be left untouched: rebuilding
  // it would destroy threads out from under in-flight engine work.
  EXPECT_FALSE(TrySetWorkers(5));
  EXPECT_EQ(Workers(), 3);
  EXPECT_EQ(SharedPool()->num_threads(), 2);
  // Requesting the size the pool already has is a no-op success.
  EXPECT_TRUE(TrySetWorkers(3));
  // With no pool built yet, the count may change freely.
  SetWorkers(2);  // resets the pool; rebuilt lazily
  EXPECT_TRUE(TrySetWorkers(4));
  EXPECT_EQ(Workers(), 4);
}

TEST(OpRegistryTest, SpeedupIsAmdahlBounded) {
  // A fully-serial class never speeds up; a parallel class approaches
  // but never exceeds its Amdahl bound 1 / (1 - f).
  EXPECT_DOUBLE_EQ(OpSpeedup(OpClass::kFullAggregate, 8.0), 1.0);
  double s = OpSpeedup(OpClass::kMatMult, 8.0);
  EXPECT_GT(s, 1.0);
  EXPECT_LT(s, 8.0);
  EXPECT_LE(OpSpeedup(OpClass::kMatMult, 1e9),
            1.0 / (1.0 - Profile(OpClass::kMatMult).parallel_fraction) +
                1e-9);
}

// ---- memory manager: accounting API (ported from BufferPoolTest) ----

TEST(MemoryManagerTest, LruEviction) {
  MemoryManager pool(100);
  EXPECT_TRUE(pool.Put("a", 40, true).empty());
  EXPECT_TRUE(pool.Put("b", 40, false).empty());
  EXPECT_TRUE(pool.Touch("a"));  // a is now most recent
  auto ev = pool.Put("c", 40, true);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].name, "b");  // LRU victim
  EXPECT_FALSE(ev[0].dirty);
  EXPECT_TRUE(pool.Contains("a"));
  EXPECT_TRUE(pool.Contains("c"));
  EXPECT_EQ(pool.used_bytes(), 80);
  EXPECT_EQ(pool.evictions(), 1);
}

TEST(MemoryManagerTest, OversizedStreamsThrough) {
  MemoryManager pool(100);
  pool.Put("a", 50, true);
  auto ev = pool.Put("big", 200, true);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].name, "big");
  EXPECT_FALSE(pool.Contains("big"));
  EXPECT_TRUE(pool.Contains("a"));  // untouched
}

TEST(MemoryManagerTest, DirtyTracking) {
  MemoryManager pool(100);
  pool.Put("a", 60, true);
  pool.MarkClean("a");
  auto ev = pool.Put("b", 60, false);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_FALSE(ev[0].dirty);  // was marked clean
}

TEST(MemoryManagerTest, RemoveAndClear) {
  MemoryManager pool(100);
  pool.Put("a", 30, false);
  pool.Put("b", 30, false);
  pool.Remove("a");
  EXPECT_FALSE(pool.Contains("a"));
  EXPECT_EQ(pool.used_bytes(), 30);
  pool.Clear();
  EXPECT_EQ(pool.used_bytes(), 0);
  EXPECT_FALSE(pool.Contains("b"));
}

// ---- memory manager: set-capacity shrink (the regression) ----

TEST(MemoryManagerTest, ShrinkingCapacityEvictsDownToNewCap) {
  MemoryManager pool(150);
  pool.Put("a", 50, false);
  pool.Put("b", 50, true);
  pool.Put("c", 50, false);
  EXPECT_EQ(pool.used_bytes(), 150);
  // AM migration to a smaller container: the pool must not stay
  // over-committed. "a" is the LRU entry and must go first.
  auto ev = pool.SetCapacity(100);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].name, "a");
  EXPECT_EQ(pool.used_bytes(), 100);
  EXPECT_EQ(pool.capacity(), 100);
  // Shrinking further evicts again, reporting dirtiness for write-back.
  ev = pool.SetCapacity(60);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].name, "b");
  EXPECT_TRUE(ev[0].dirty);
  EXPECT_LE(pool.used_bytes(), 60);
  EXPECT_TRUE(pool.Contains("c"));
  // Growing never evicts.
  EXPECT_TRUE(pool.SetCapacity(1000).empty());
}

// ---- memory manager: payload API (spill / reload round-trips) ----

std::shared_ptr<const MatrixBlock> MakePayload(int64_t rows, int64_t cols,
                                               uint64_t seed) {
  Random rng(seed);
  return std::make_shared<const MatrixBlock>(
      MatrixBlock::Rand(rows, cols, 1.0, -1, 1, &rng));
}

bool SamePayload(const std::shared_ptr<const MatrixBlock>& a,
                 const std::shared_ptr<const MatrixBlock>& b) {
  if (a == nullptr || b == nullptr) return a == b;
  if (a->rows() != b->rows() || a->cols() != b->cols()) return false;
  const auto& da = a->dense();
  const auto& db = b->dense();
  return da.size() == db.size() &&
         (da.empty() ||
          std::memcmp(da.data(), db.data(), da.size() * sizeof(double)) == 0);
}

TEST(MemoryManagerTest, SpillAndReloadRoundTrip) {
  SimulatedHdfs hdfs;
  auto a = MakePayload(20, 20, 1);
  auto b = MakePayload(20, 20, 2);
  // Budget fits exactly one of the two payloads.
  MemoryManager mm(a->MemorySize() + 16, &hdfs);
  ASSERT_TRUE(mm.PinMatrix("a", a, /*dirty=*/true).ok());
  ASSERT_TRUE(mm.PinMatrix("b", b, /*dirty=*/true).ok());
  // Pinning b evicted dirty a, which must have been spilled.
  EXPECT_GT(mm.spill_bytes(), 0);
  auto got_a = mm.FetchMatrix("a");
  ASSERT_TRUE(got_a.ok()) << got_a.status().ToString();
  EXPECT_TRUE(SamePayload(*got_a, a));
  EXPECT_GT(mm.reload_bytes(), 0);
  // Reloading a evicted b in turn; it must round-trip too.
  auto got_b = mm.FetchMatrix("b");
  ASSERT_TRUE(got_b.ok());
  EXPECT_TRUE(SamePayload(*got_b, b));
  EXPECT_FALSE(mm.FetchMatrix("never-pinned").ok());
}

TEST(MemoryManagerTest, CleanPayloadReloadsFromSourcePath) {
  SimulatedHdfs hdfs;
  auto x = MakePayload(16, 16, 3);
  hdfs.PutMatrix("/data/x", *x);
  MemoryManager mm(x->MemorySize() + 16, &hdfs);
  // A clean read() input carries its source path: eviction needs no
  // spill copy because the bytes are already in HDFS.
  ASSERT_TRUE(mm.PinMatrix("x", x, /*dirty=*/false, "/data/x").ok());
  ASSERT_TRUE(mm.PinMatrix("y", MakePayload(16, 16, 4), true).ok());
  EXPECT_EQ(mm.spill_bytes(), 0);
  auto got = mm.FetchMatrix("x");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(SamePayload(*got, x));
}

TEST(MemoryManagerTest, DropAllDeletesSpillFiles) {
  SimulatedHdfs hdfs;
  auto a = MakePayload(20, 20, 5);
  MemoryManager mm(a->MemorySize() + 16, &hdfs);
  ASSERT_TRUE(mm.PinMatrix("a", a, true).ok());
  ASSERT_TRUE(mm.PinMatrix("b", MakePayload(20, 20, 6), true).ok());
  ASSERT_FALSE(hdfs.ListPaths().empty());  // spill file exists
  mm.DropAll();
  EXPECT_TRUE(hdfs.ListPaths().empty());
  EXPECT_EQ(mm.used_bytes(), 0);
}

TEST(MemoryManagerTest, OversizedPayloadStreamsThroughSpill) {
  SimulatedHdfs hdfs;
  auto big = MakePayload(64, 64, 7);
  MemoryManager mm(big->MemorySize() / 4, &hdfs);
  ASSERT_TRUE(mm.PinMatrix("big", big, true).ok());
  EXPECT_GT(mm.spill_bytes(), 0);  // spilled immediately, never resident
  auto got = mm.FetchMatrix("big");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(SamePayload(*got, big));
}

// ---- serial effect order (the commit-order contract) ----

TEST(SerialEffectOrderTest, PrintsFollowProgramOrder) {
  SimulatedHdfs hdfs;
  auto prog = MlProgram::Compile(
      "a = 1 + 2\nb = a * 3\nprint(\"a=\" + a)\nprint(\"b=\" + b)", {},
      &hdfs);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  std::vector<StatementBlock*> generic = (*prog)->GenericBlocks();
  ASSERT_FALSE(generic.empty());
  std::vector<HopKind> effect_kinds;
  for (StatementBlock* blk : generic) {
    if (!(*prog)->has_ir(blk->id())) continue;
    for (const Hop* h : SerialEffectOrder((*prog)->ir(blk->id()).dag)) {
      effect_kinds.push_back(h->kind());
    }
  }
  // Both prints appear, in program order, after any transient writes
  // they depend on.
  int prints = 0;
  for (HopKind k : effect_kinds) {
    if (k == HopKind::kPrint) prints++;
  }
  EXPECT_EQ(prints, 2);
}

// ---- budget enforcement through the interpreter ----

TEST(BudgetEnforcementTest, TinyBudgetSpillsAndStaysCorrect) {
  // Loop-carried matrices (A, B) plus the input X are live across
  // block boundaries, so the interpreter must pin all three in the
  // MemoryManager — three 32 KB blocks cannot fit a 48 KB budget.
  const std::string src =
      "X = read($X)\n"
      "A = X %*% X\n"
      "B = t(X)\n"
      "for (i in 1:3) {\n"
      "  A = t(A) + X\n"
      "  B = B %*% X\n"
      "}\n"
      "print(\"a=\" + sum(A))\n"
      "print(\"b=\" + sum(B))\n";
  Random rng(11);
  MatrixBlock x = MatrixBlock::Rand(64, 64, 1.0, -1, 1, &rng);

  auto run = [&](int64_t budget) {
    SimulatedHdfs hdfs;
    hdfs.PutMatrix("/data/X", x);
    auto prog = MlProgram::Compile(src, {{"X", "/data/X"}}, &hdfs);
    EXPECT_TRUE(prog.ok()) << prog.status().ToString();
    Interpreter interp(prog->get(), &hdfs);
    ExecOptions opts;
    opts.memory_budget = budget;
    interp.set_exec_options(opts);
    EXPECT_TRUE(interp.Run().ok());
    return std::make_pair(interp.printed(), interp.exec_stats());
  };

  auto [unmanaged_printed, unmanaged_stats] = run(0);
  // One 64x64 dense block is 32 KB; a 48 KB budget cannot hold the
  // three live matrices, so the engine must spill and reload.
  auto [managed_printed, managed_stats] = run(48 * 1024);
  EXPECT_EQ(unmanaged_stats.spill_bytes, 0);
  EXPECT_GT(managed_stats.spill_bytes, 0);
  EXPECT_GT(managed_stats.reload_bytes, 0);
  EXPECT_GT(managed_stats.evictions, 0);
  // The budget changes data movement, never results.
  EXPECT_EQ(managed_printed, unmanaged_printed);
}

TEST(BudgetEnforcementTest, SpillFilesAreCleanedUpAfterRun) {
  Random rng(13);
  MatrixBlock x = MatrixBlock::Rand(64, 64, 1.0, -1, 1, &rng);
  SimulatedHdfs hdfs;
  hdfs.PutMatrix("/data/X", x);
  auto prog = MlProgram::Compile(
      "X = read($X)\n"
      "A = X %*% X\n"
      "for (i in 1:3) { A = t(A) + X }\n"
      "print(sum(A))",
      {{"X", "/data/X"}}, &hdfs);
  ASSERT_TRUE(prog.ok());
  Interpreter interp(prog->get(), &hdfs);
  ExecOptions opts;
  opts.memory_budget = 48 * 1024;
  interp.set_exec_options(opts);
  ASSERT_TRUE(interp.Run().ok());
  EXPECT_GT(interp.exec_stats().spill_bytes, 0);
  for (const std::string& path : hdfs.ListPaths()) {
    EXPECT_EQ(path.find("/.spill/"), std::string::npos)
        << "leaked spill file " << path;
  }
}

TEST(BudgetEnforcementTest, ConcurrentEnginesSpillToDisjointNamespaces) {
  // The serving layer runs concurrent execute_real jobs against ONE
  // shared HDFS, and every run uses the same frame-local keys ("f0:X").
  // Each engine must spill under its own namespace: with a shared
  // prefix, one job reloads the other job's payload (silent wrong
  // results) and one job's end-of-run DropAll deletes spill files the
  // other still needs.
  SimulatedHdfs hdfs;
  Random rng_a(21), rng_b(22);
  auto a1 = MakePayload(20, 20, 31);
  auto b1 = MakePayload(20, 20, 32);
  ExecOptions opts;
  opts.memory_budget = a1->MemorySize() + 16;  // fits exactly one payload
  Engine ea(&hdfs, &rng_a, opts);
  Engine eb(&hdfs, &rng_b, opts);
  ASSERT_TRUE(ea.memory()->PinMatrix("f0:X", a1, /*dirty=*/true).ok());
  ASSERT_TRUE(eb.memory()->PinMatrix("f0:X", b1, /*dirty=*/true).ok());
  // Evict (and spill) f0:X in both managers.
  ASSERT_TRUE(
      ea.memory()->PinMatrix("f0:Y", MakePayload(20, 20, 33), true).ok());
  ASSERT_TRUE(
      eb.memory()->PinMatrix("f0:Y", MakePayload(20, 20, 34), true).ok());
  auto got_a = ea.memory()->FetchMatrix("f0:X");
  ASSERT_TRUE(got_a.ok()) << got_a.status().ToString();
  EXPECT_TRUE(SamePayload(*got_a, a1));  // a's payload, not b's
  // One job finishing must not delete the other job's spill files.
  ea.memory()->DropAll();
  auto got_b = eb.memory()->FetchMatrix("f0:X");
  ASSERT_TRUE(got_b.ok()) << got_b.status().ToString();
  EXPECT_TRUE(SamePayload(*got_b, b1));
  eb.memory()->DropAll();
  EXPECT_TRUE(hdfs.ListPaths().empty());
}

// ---- engine block-mode accounting ----

TEST(EngineStatsTest, ParallelRunSchedulesBlocksInParallel) {
  WorkerGuard guard;
  SimulatedHdfs hdfs;
  Random rng(17);
  hdfs.PutMatrix("/data/X", MatrixBlock::Rand(32, 32, 1.0, -1, 1, &rng));
  // Two independent chains: the DAG scheduler can overlap them.
  const std::string src =
      "X = read($X)\n"
      "A = X %*% X\n"
      "B = t(X) %*% X\n"
      "print(\"a=\" + sum(A))\n"
      "print(\"b=\" + sum(B))\n";
  auto prog = MlProgram::Compile(src, {{"X", "/data/X"}}, &hdfs);
  ASSERT_TRUE(prog.ok());

  Interpreter serial(prog->get(), &hdfs);
  ExecOptions serial_opts;
  serial_opts.workers = 1;  // explicit: ignore RELM_EXEC_WORKERS
  serial.set_exec_options(serial_opts);
  ASSERT_TRUE(serial.Run().ok());
  EXPECT_EQ(serial.exec_stats().parallel_blocks, 0);
  EXPECT_GT(serial.exec_stats().serial_blocks, 0);

  Interpreter parallel(prog->get(), &hdfs);
  ExecOptions opts;
  opts.workers = 4;
  parallel.set_exec_options(opts);
  ASSERT_TRUE(parallel.Run().ok());
  EXPECT_GT(parallel.exec_stats().parallel_blocks, 0);
  EXPECT_GT(parallel.exec_stats().tasks_scheduled, 0);
  EXPECT_EQ(parallel.printed(), serial.printed());
}

// ---------------------------------------------------------------------
// Chaos injection facility

TEST(FaultPolicyTest, ValidatesFields) {
  EXPECT_TRUE(FaultPolicy().Validate().ok());
  EXPECT_FALSE(
      FaultPolicy().WithRate(FaultSite::kSpillWrite, 1.5).Validate().ok());
  EXPECT_FALSE(
      FaultPolicy().WithRate(FaultSite::kHdfsRead, -0.1).Validate().ok());
  EXPECT_FALSE(
      FaultPolicy().WithFirstN(FaultSite::kTaskAbort, -1).Validate().ok());
  EXPECT_FALSE(FaultPolicy().WithStallMicros(-5).Validate().ok());
  EXPECT_FALSE(FaultPolicy().WithBudgetPressureFraction(0.0).Validate().ok());
  EXPECT_FALSE(FaultPolicy().WithBudgetPressureFraction(1.5).Validate().ok());
}

TEST(FaultPolicyTest, EnabledOnlyWithActiveSites) {
  EXPECT_FALSE(FaultPolicy().enabled());
  EXPECT_TRUE(FaultPolicy().WithRate(FaultSite::kHdfsRead, 0.1).enabled());
  EXPECT_TRUE(FaultPolicy().WithFirstN(FaultSite::kTaskAbort, 1).enabled());
}

TEST(ChaosInjectorTest, FirstNForcesExactCount) {
  ChaosInjector chaos(FaultPolicy().WithFirstN(FaultSite::kSpillWrite, 3));
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    if (chaos.ShouldInject(FaultSite::kSpillWrite)) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(chaos.fired(FaultSite::kSpillWrite), 3);
  EXPECT_EQ(chaos.total_fired(), 3);
  // Other sites are untouched.
  EXPECT_FALSE(chaos.ShouldInject(FaultSite::kHdfsRead));
  EXPECT_EQ(chaos.fired(FaultSite::kHdfsRead), 0);
}

TEST(ChaosInjectorTest, DrawSequenceIsSeedDeterministic) {
  FaultPolicy policy = FaultPolicy()
                           .WithSeed(99)
                           .WithRate(FaultSite::kHdfsRead, 0.3)
                           .WithRate(FaultSite::kHdfsWrite, 0.3);
  auto sequence = [&policy]() {
    ChaosInjector chaos(policy);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(chaos.ShouldInject(FaultSite::kHdfsRead));
      fired.push_back(chaos.ShouldInject(FaultSite::kHdfsWrite));
    }
    return fired;
  };
  std::vector<bool> a = sequence();
  std::vector<bool> b = sequence();
  EXPECT_EQ(a, b);
  // A different seed produces a different schedule.
  policy.WithSeed(100);
  EXPECT_NE(a, sequence());
}

TEST(ChaosInjectorTest, FiredSetIndependentOfThreadInterleaving) {
  // The fault decision hashes (seed, site, draw-index), so the SET of
  // firing draw indices is fixed regardless of which thread claims
  // which index. Run the same draw count concurrently and serially and
  // compare totals.
  FaultPolicy policy =
      FaultPolicy().WithSeed(7).WithRate(FaultSite::kTaskAbort, 0.25);
  constexpr int kDraws = 4000;

  ChaosInjector serial(policy);
  for (int i = 0; i < kDraws; ++i) {
    serial.ShouldInject(FaultSite::kTaskAbort);
  }

  ChaosInjector concurrent(policy);
  WorkerGuard guard;
  SetWorkers(8);
  ParallelFor(0, kDraws, 16, [&concurrent](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      concurrent.ShouldInject(FaultSite::kTaskAbort);
    }
  });
  EXPECT_EQ(concurrent.fired(FaultSite::kTaskAbort),
            serial.fired(FaultSite::kTaskAbort));
  EXPECT_GT(serial.fired(FaultSite::kTaskAbort), 0);
}

TEST(ChaosInjectorTest, InjectedErrorIsRetryable) {
  Status st =
      ChaosInjector::InjectedError(FaultSite::kSpillReload, "block 'X'");
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.message().find("spill_reload"), std::string::npos);
  EXPECT_NE(st.message().find("block 'X'"), std::string::npos);
}

TEST(ChaosInjectorTest, SpillReloadFaultIsTransient) {
  // A reload fault leaves the spill file intact, so — unlike a lost
  // dirty block — the very next fetch of the same name succeeds.
  FaultPolicy policy = FaultPolicy().WithFirstN(FaultSite::kSpillReload, 1);
  ChaosInjector chaos(policy);

  SimulatedHdfs hdfs;
  MatrixBlock m(8, 8, false);
  for (int64_t i = 0; i < 8; ++i) m.Set(i, i, 3.0);
  auto payload = std::make_shared<const MatrixBlock>(m);

  MemoryManager mm(600, &hdfs, "/.spill/t/", &chaos);
  ASSERT_TRUE(mm.PinMatrix("a", payload, /*dirty=*/true).ok());
  // Pinning "b" evicts "a"; its spill write succeeds (no kSpillWrite
  // injection configured).
  ASSERT_TRUE(mm.PinMatrix("b", payload, /*dirty=*/true).ok());
  EXPECT_EQ(mm.lost_blocks(), 0);

  auto first = mm.FetchMatrix("a");
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(chaos.fired(FaultSite::kSpillReload), 1);

  auto second = mm.FetchMatrix("a");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ((*second)->Get(3, 3), 3.0);
}

}  // namespace
}  // namespace exec
}  // namespace relm

// Property-based suites over the compiler, optimizer, and simulator:
// invariants that must hold across sweeps of scripts, data shapes, and
// resource configurations (TEST_P / INSTANTIATE_TEST_SUITE_P).

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "api/session.h"
#include "core/grid_generators.h"
#include "core/resource_optimizer.h"
#include "lops/compiler_backend.h"

namespace relm {
namespace {

// These suites predate plan caching: an uncached Session keeps every
// call's compile and optimize costs identical to the retired
// RelmSystem facade they were written against.
Session UncachedSession() {
  return Session(ClusterConfig::PaperCluster(),
                 SessionOptions().WithPlanCacheEnabled(false));
}

const char* kScripts[] = {"linreg_ds.dml", "linreg_cg.dml", "l2svm.dml",
                          "mlogreg.dml", "glm.dml"};

std::string ReadScript(const std::string& name) {
  std::ifstream in(std::string(RELM_SCRIPTS_DIR) + "/" + name);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::unique_ptr<MlProgram> CompileFor(Session* sys,
                                      const std::string& script,
                                      int64_t cells, int64_t cols,
                                      double sparsity) {
  sys->RegisterMatrixMetadata("/data/X", cells / cols, cols, sparsity);
  sys->RegisterMatrixMetadata("/data/y", cells / cols, 1);
  ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"},
                  {"B", "/out/B"},  {"model", "/out/w"}};
  auto p = sys->CompileSource(ReadScript(script), args);
  EXPECT_TRUE(p.ok()) << script << ": " << p.status().ToString();
  return std::move(*p);
}

// ------------------------------------------------------------------
// Plan invariants across scripts x memory configs.
// ------------------------------------------------------------------

using PlanParam = std::tuple<const char*, int64_t /*cp*/, int64_t /*mr*/>;

class PlanInvariantTest : public ::testing::TestWithParam<PlanParam> {};

TEST_P(PlanInvariantTest, EveryMrOperatorInExactlyOneJob) {
  auto [script, cp, mr] = GetParam();
  Session sys = UncachedSession();
  auto prog = CompileFor(&sys, script, 1000000000LL, 1000, 1.0);
  CompileCounters counters;
  auto rp = GenerateRuntimeProgram(prog.get(), sys.cluster(),
                                   ResourceConfig(cp, mr), &counters);
  ASSERT_TRUE(rp.ok());
  // Walk all runtime blocks: every MR-exec matrix operator of each DAG
  // must appear exactly once across that block's jobs, and every CP
  // instruction must be a CP-exec hop.
  std::function<void(const RuntimeBlock&)> check =
      [&](const RuntimeBlock& rb) {
        std::set<const Hop*> in_jobs;
        for (const auto& instr : rb.instrs) {
          if (instr.kind == RuntimeInstr::Kind::kMrJob) {
            for (const Hop* op : instr.job.map_ops) {
              EXPECT_TRUE(in_jobs.insert(op).second)
                  << "operator in two jobs";
              EXPECT_EQ(op->exec_type(), ExecType::kMR);
            }
            for (const Hop* op : instr.job.reduce_ops) {
              EXPECT_TRUE(in_jobs.insert(op).second);
              EXPECT_EQ(op->exec_type(), ExecType::kMR);
            }
            // Broadcast memory must fit the task budget whenever a
            // broadcast-based operator was chosen.
            if (instr.job.broadcast_bytes > 0) {
              EXPECT_LE(instr.job.broadcast_bytes,
                        ResourceConfig(cp, mr)
                            .MrBudgetForBlock(rb.block->id()));
            }
          } else {
            EXPECT_EQ(instr.hop->exec_type(), ExecType::kCP)
                << instr.hop->ToString();
          }
        }
        for (const auto& c : rb.body) check(c);
        for (const auto& c : rb.else_body) check(c);
      };
  for (const auto& rb : rp->main) check(rb);
  for (const auto& [name, blocks] : rp->functions) {
    for (const auto& rb : blocks) check(rb);
  }
}

TEST_P(PlanInvariantTest, InstructionsRespectDependencies) {
  auto [script, cp, mr] = GetParam();
  Session sys = UncachedSession();
  auto prog = CompileFor(&sys, script, 1000000000LL, 1000, 1.0);
  CompileCounters counters;
  auto rp = GenerateRuntimeProgram(prog.get(), sys.cluster(),
                                   ResourceConfig(cp, mr), &counters);
  ASSERT_TRUE(rp.ok());
  std::function<void(const RuntimeBlock&)> check =
      [&](const RuntimeBlock& rb) {
        std::set<const Hop*> emitted;
        auto resolve = [](const Hop* h) {
          while (h->fused() && !h->inputs().empty()) h = h->input(0);
          return h;
        };
        auto is_op = [](const Hop* h) {
          switch (h->kind()) {
            case HopKind::kLiteral:
            case HopKind::kTransientRead:
            case HopKind::kPersistentRead:
            case HopKind::kFunctionOutput:
              return false;
            default:
              return !h->fused();
          }
        };
        for (const auto& instr : rb.instrs) {
          std::vector<const Hop*> ops;
          if (instr.kind == RuntimeInstr::Kind::kCp) {
            ops.push_back(instr.hop);
          } else {
            for (const Hop* op : instr.job.map_ops) ops.push_back(op);
            for (const Hop* op : instr.job.reduce_ops) ops.push_back(op);
          }
          std::set<const Hop*> instr_set(ops.begin(), ops.end());
          for (const Hop* op : ops) {
            for (const auto& raw : op->inputs()) {
              const Hop* in = resolve(raw.get());
              if (!is_op(in) || instr_set.count(in)) continue;
              EXPECT_TRUE(emitted.count(in))
                  << "instruction ordering violates dependency: "
                  << op->ToString() << " needs " << in->ToString();
            }
          }
          for (const Hop* op : ops) emitted.insert(op);
        }
        for (const auto& c : rb.body) check(c);
        for (const auto& c : rb.else_body) check(c);
      };
  for (const auto& rb : rp->main) check(rb);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlanInvariantTest,
    ::testing::Combine(::testing::ValuesIn(kScripts),
                       ::testing::Values(512 * kMB, 4 * kGB, 32 * kGB),
                       ::testing::Values(512 * kMB, 4 * kGB)),
    [](const auto& info) {
      std::string s = std::get<0>(info.param);
      s = s.substr(0, s.find('.'));
      return s + "_cp" +
             std::to_string(std::get<1>(info.param) / kMB) + "_mr" +
             std::to_string(std::get<2>(info.param) / kMB);
    });

// ------------------------------------------------------------------
// Monotonicity properties of the plan w.r.t. memory budgets.
// ------------------------------------------------------------------

class MonotonicityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MonotonicityTest, MrJobsNeverIncreaseWithCpMemory) {
  Session sys = UncachedSession();
  auto prog = CompileFor(&sys, GetParam(), 1000000000LL, 1000, 1.0);
  int prev_jobs = -1;
  for (int64_t cp : {512 * kMB, 1 * kGB, 2 * kGB, 4 * kGB, 8 * kGB,
                     16 * kGB, 32 * kGB}) {
    CompileCounters counters;
    auto rp = GenerateRuntimeProgram(prog.get(), sys.cluster(),
                                     ResourceConfig(cp, 512 * kMB),
                                     &counters);
    ASSERT_TRUE(rp.ok());
    int jobs = rp->TotalMrJobs();
    if (prev_jobs >= 0) {
      EXPECT_LE(jobs, prev_jobs)
          << "monotonic dependency elimination violated at cp=" << cp;
    }
    prev_jobs = jobs;
  }
}

TEST_P(MonotonicityTest, SimulatedTimeDeterministic) {
  Session sys = UncachedSession();
  auto prog = CompileFor(&sys, GetParam(), 100000000LL, 1000, 1.0);
  SimOptions opts;
  opts.seed = 99;
  auto a = sys.Simulate(prog->Clone()->get(),
                        ResourceConfig(2 * kGB, 2 * kGB), opts);
  auto b = sys.Simulate(prog->Clone()->get(),
                        ResourceConfig(2 * kGB, 2 * kGB), opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->elapsed_seconds, b->elapsed_seconds);
}

INSTANTIATE_TEST_SUITE_P(AllScripts, MonotonicityTest,
                         ::testing::ValuesIn(kScripts),
                         [](const auto& info) {
                           std::string s = info.param;
                           return s.substr(0, s.find('.'));
                         });

// ------------------------------------------------------------------
// Grid generator properties across base resolutions.
// ------------------------------------------------------------------

class GridPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GridPropertyTest, AllGridsSortedUniqueAndBounded) {
  int m = GetParam();
  Session sys = UncachedSession();
  auto prog = CompileFor(&sys, "l2svm.dml", 1000000000LL, 1000, 1.0);
  const ClusterConfig& cc = sys.cluster();
  for (GridType type : {GridType::kEquiSpaced, GridType::kExpSpaced,
                        GridType::kMemBased, GridType::kHybrid}) {
    auto pts = EnumGridPoints(prog.get(), cc, type, m);
    ASSERT_FALSE(pts.empty()) << GridTypeName(type);
    EXPECT_TRUE(std::is_sorted(pts.begin(), pts.end()));
    EXPECT_EQ(std::set<int64_t>(pts.begin(), pts.end()).size(),
              pts.size())
        << "duplicate grid points in " << GridTypeName(type);
    EXPECT_GE(pts.front(), cc.MinHeapSize());
    EXPECT_LE(pts.back(), cc.MaxHeapSize());
  }
}

TEST_P(GridPropertyTest, EquiGapsAreUniform) {
  int m = GetParam();
  Session sys = UncachedSession();
  const ClusterConfig& cc = sys.cluster();
  auto pts = EnumGridPoints(nullptr, cc, GridType::kEquiSpaced, m);
  ASSERT_EQ(pts.size(), static_cast<size_t>(m));
  int64_t gap = pts[1] - pts[0];
  for (size_t i = 2; i < pts.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(pts[i] - pts[i - 1]),
                static_cast<double>(gap), static_cast<double>(gap) * 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, GridPropertyTest,
                         ::testing::Values(5, 15, 30, 45));

// ------------------------------------------------------------------
// Optimizer properties across data shapes.
// ------------------------------------------------------------------

using ShapeParam = std::tuple<const char*, int64_t /*cols*/,
                              double /*sparsity*/>;

class OptimizerPropertyTest
    : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(OptimizerPropertyTest, OptNeverWorseThanBaselinesByModel) {
  auto [script, cols, sparsity] = GetParam();
  Session sys = UncachedSession();
  auto prog = CompileFor(&sys, script, 1000000000LL, cols, sparsity);
  auto outcome = sys.Optimize(prog.get());
  ASSERT_TRUE(outcome.ok());
  const ResourceConfig& config = outcome->config;
  double opt_cost = *sys.EstimateCost(prog.get(), config);
  for (const auto& baseline : sys.StaticBaselines()) {
    double base_cost = *sys.EstimateCost(prog.get(), baseline.config);
    EXPECT_LE(opt_cost, base_cost * 1.03)
        << baseline.name << " beats Opt under the model";
  }
  // The chosen config must respect cluster constraints.
  EXPECT_GE(config.cp_heap, sys.cluster().MinHeapSize());
  EXPECT_LE(config.cp_heap, sys.cluster().MaxHeapSize());
  EXPECT_LE(config.MaxMrHeap(), sys.cluster().MaxHeapSize());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OptimizerPropertyTest,
    ::testing::Combine(::testing::Values("linreg_ds.dml", "linreg_cg.dml",
                                         "l2svm.dml"),
                       ::testing::Values<int64_t>(1000, 100),
                       ::testing::Values(1.0, 0.01)),
    [](const auto& info) {
      std::string s = std::get<0>(info.param);
      s = s.substr(0, s.find('.'));
      return s + "_c" + std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) == 1.0 ? "_dense" : "_sparse");
    });

}  // namespace
}  // namespace relm

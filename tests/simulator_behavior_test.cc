// Behavioural properties of the cluster simulator that the end-to-end
// figures rely on: monotone responses to contention and noise, event
// accounting, and agreement between repeated runs under config sweeps.

#include <fstream>
#include <sstream>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "api/session.h"

namespace relm {
namespace {

// These suites predate plan caching: an uncached Session keeps every
// call's compile and optimize costs identical to the retired
// RelmSystem facade they were written against.
Session UncachedSession() {
  return Session(ClusterConfig::PaperCluster(),
                 SessionOptions().WithPlanCacheEnabled(false));
}

std::string ReadScript(const std::string& name) {
  std::ifstream in(std::string(RELM_SCRIPTS_DIR) + "/" + name);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class SimBehaviorTest : public ::testing::Test {
 protected:
  std::unique_ptr<MlProgram> Compile(const std::string& script,
                                     int64_t rows, int64_t cols,
                                     double sparsity = 1.0) {
    sys_ = std::make_unique<Session>(UncachedSession());
    sys_->RegisterMatrixMetadata("/data/X", rows, cols, sparsity);
    sys_->RegisterMatrixMetadata("/data/y", rows, 1);
    ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"},
                    {"B", "/out/B"},  {"model", "/out/w"}};
    auto p = sys_->CompileSource(ReadScript(script), args);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return std::move(*p);
  }

  SimResult Sim(const MlProgram& prog, const ResourceConfig& cfg,
                SimOptions opts = {}) {
    auto clone = prog.Clone();
    EXPECT_TRUE(clone.ok());
    auto run = sys_->Simulate(clone->get(), cfg, opts);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return *run;
  }

  std::unique_ptr<Session> sys_;
};

TEST_F(SimBehaviorTest, IoContentionMonotone) {
  auto prog = Compile("linreg_ds.dml", 1000000, 1000);
  ResourceConfig cfg(512 * kMB, 2 * kGB);
  double prev = 0;
  for (double contention : {1.0, 1.5, 2.0, 4.0}) {
    SimOptions opts;
    opts.noise = 0;
    opts.io_contention = contention;
    double t = Sim(*prog, cfg, opts).elapsed_seconds;
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST_F(SimBehaviorTest, NoiseStaysBounded) {
  auto prog = Compile("l2svm.dml", 1000000, 1000);
  ResourceConfig cfg(2 * kGB, 2 * kGB);
  SimOptions quiet;
  quiet.noise = 0;
  double base = Sim(*prog, cfg, quiet).elapsed_seconds;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SimOptions noisy;
    noisy.noise = 0.02;
    noisy.seed = seed;
    double t = Sim(*prog, cfg, noisy).elapsed_seconds;
    EXPECT_GT(t, base * 0.95);
    EXPECT_LT(t, base * 1.05);
  }
}

TEST_F(SimBehaviorTest, ClusterLoadMonotone) {
  auto prog = Compile("linreg_ds.dml", 10000000, 1000);  // 80GB
  ResourceConfig distributed(512 * kMB, 2 * kGB);
  double prev = 0;
  for (double load : {0.0, 0.5, 0.8, 0.95}) {
    SimOptions opts;
    opts.noise = 0;
    opts.cluster_load = load;
    double t = Sim(*prog, distributed, opts).elapsed_seconds;
    EXPECT_GT(t, prev) << "load " << load;
    prev = t;
  }
}

TEST_F(SimBehaviorTest, MrJobCountMatchesPlanAcrossConfigs) {
  // Distributed plans execute jobs; in-memory plans execute none.
  auto prog = Compile("linreg_ds.dml", 1000000, 1000);
  SimOptions opts;
  opts.noise = 0;
  SimResult mr = Sim(*prog, ResourceConfig(512 * kMB, 2 * kGB), opts);
  SimResult cp =
      Sim(*prog, ResourceConfig(sys_->cluster().MaxHeapSize(), 2 * kGB),
          opts);
  EXPECT_GT(mr.mr_jobs_executed, 0);
  EXPECT_EQ(cp.mr_jobs_executed, 0);
}

TEST_F(SimBehaviorTest, IterativeProgramsExecuteJobsPerIteration) {
  // L2SVM with a small CP runs MR jobs in every (outer) iteration; the
  // executed job count must exceed the static plan's job count.
  auto prog = Compile("l2svm.dml", 1000000, 1000);
  SimOptions opts;
  opts.noise = 0;
  SimResult run = Sim(*prog, ResourceConfig(512 * kMB, 2 * kGB), opts);
  EXPECT_GE(run.mr_jobs_executed, 5);  // >= one per outer iteration
}

TEST_F(SimBehaviorTest, EventTimesAreMonotone) {
  SymbolMap oracle;
  SymbolInfo y_info;
  y_info.dtype = DataType::kMatrix;
  y_info.mc = MatrixCharacteristics(1000000, 2, 1000000);
  oracle["Y"] = y_info;
  auto prog = Compile("mlogreg.dml", 1000000, 100);
  SimOptions opts;
  opts.enable_adaptation = true;
  auto clone = prog->Clone();
  auto run = sys_->Simulate(clone->get(),
                            ResourceConfig(512 * kMB, 512 * kMB), opts,
                            oracle);
  ASSERT_TRUE(run.ok());
  double prev = -1;
  for (const auto& ev : run->events) {
    EXPECT_GE(ev.at_seconds, prev);
    EXPECT_LE(ev.at_seconds, run->elapsed_seconds + 1e-9);
    prev = ev.at_seconds;
  }
}

TEST_F(SimBehaviorTest, MigrationChangesFinalConfig) {
  SymbolMap oracle;
  SymbolInfo y_info;
  y_info.dtype = DataType::kMatrix;
  y_info.mc = MatrixCharacteristics(1000000, 2, 1000000);
  oracle["Y"] = y_info;
  auto prog = Compile("mlogreg.dml", 1000000, 100);
  SimOptions opts;
  opts.enable_adaptation = true;
  ResourceConfig initial(512 * kMB, 512 * kMB);
  auto clone = prog->Clone();
  auto run = sys_->Simulate(clone->get(), initial, opts, oracle);
  ASSERT_TRUE(run.ok());
  if (run->migrations > 0) {
    EXPECT_GT(run->final_config.cp_heap, initial.cp_heap);
  } else {
    EXPECT_EQ(run->final_config.cp_heap, initial.cp_heap);
  }
}

TEST_F(SimBehaviorTest, DisablingDynamicRecompilationKeepsUnknownPlans) {
  SymbolMap oracle;
  SymbolInfo y_info;
  y_info.dtype = DataType::kMatrix;
  y_info.mc = MatrixCharacteristics(1000000, 2, 1000000);
  oracle["Y"] = y_info;
  auto prog = Compile("mlogreg.dml", 1000000, 100);
  SimOptions off;
  off.noise = 0;
  off.enable_dynamic_recompilation = false;
  auto r_off = Sim(*prog, ResourceConfig(2 * kGB, 2 * kGB), off);
  EXPECT_EQ(r_off.dynamic_recompiles, 0);
  SimOptions on;
  on.noise = 0;
  auto clone = prog->Clone();
  auto r_on = sys_->Simulate(clone->get(),
                             ResourceConfig(2 * kGB, 2 * kGB), on, oracle);
  ASSERT_TRUE(r_on.ok());
  EXPECT_GT(r_on->dynamic_recompiles, 0);
  // Resolving sizes never makes execution slower at the same config.
  EXPECT_LE(r_on->elapsed_seconds, r_off.elapsed_seconds * 1.01);
}

using ScriptConfig = std::tuple<const char*, int64_t, int64_t>;

class SimSweepTest : public ::testing::TestWithParam<ScriptConfig> {};

TEST_P(SimSweepTest, AllConfigsExecutableAndFinite) {
  auto [script, cp, mr] = GetParam();
  Session sys = UncachedSession();
  sys.RegisterMatrixMetadata("/data/X", 1000000, 100);
  sys.RegisterMatrixMetadata("/data/y", 1000000, 1);
  ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"},
                  {"B", "/out/B"},  {"model", "/out/w"}};
  auto prog = sys.CompileSource(ReadScript(script), args);
  ASSERT_TRUE(prog.ok());
  auto run = sys.Simulate(prog->get(), ResourceConfig(cp, mr));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->elapsed_seconds, 0.0);
  EXPECT_LT(run->elapsed_seconds, 1e6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimSweepTest,
    ::testing::Combine(::testing::Values("linreg_ds.dml", "linreg_cg.dml",
                                         "l2svm.dml", "glm.dml"),
                       ::testing::Values(512 * kMB, 8 * kGB),
                       ::testing::Values(512 * kMB, GigaBytes(4.4))),
    [](const auto& info) {
      std::string s = std::get<0>(info.param);
      s = s.substr(0, s.find('.'));
      return s + "_cp" + std::to_string(std::get<1>(info.param) / kMB) +
             "_mr" + std::to_string(std::get<2>(info.param) / kMB);
    });

}  // namespace
}  // namespace relm

// Persistent plan-artifact store: format round-trips, every rejection
// path (truncation, checksum, version skew, stale input fingerprints),
// concurrent writers, and the cold-start differential — a fresh process
// against a warm artifact must reach its first result with zero full
// compiles and a bitwise-identical configuration.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.h"
#include "core/plan_cache.h"
#include "store/artifact_format.h"
#include "store/plan_artifact_store.h"

namespace relm {
namespace {

using store::ArtifactHeader;
using store::InspectArtifact;
using store::PlanArtifactStore;

std::string TmpPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::shared_ptr<PlanArtifactStore> MustOpen(
    const ArtifactStoreOptions& options) {
  auto opened = PlanArtifactStore::Open(options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return *opened;
}

/// A namespace with the canonical large inputs the DML scripts bind.
void RegisterCanonicalInputs(SimulatedHdfs* hdfs) {
  hdfs->PutMetadata("/data/X", MatrixCharacteristics(1000000, 1000));
  hdfs->PutMetadata("/data/y", MatrixCharacteristics(1000000, 1));
}

const ScriptArgs kArgs{{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"}};

const char* kScript =
    "X = read($X)\n"
    "y = read($Y)\n"
    "A = t(X) %*% X\n"
    "b = t(X) %*% y\n"
    "w = solve(A, b)\n"
    "write(w, $B)\n";

PlanCache::CachedCandidate MakeCandidate(int64_t cp_heap, double cost) {
  PlanCache::CachedCandidate cand;
  cand.config.cp_heap = cp_heap;
  cand.config.default_mr_heap = 512 * kMB;
  cand.config.cp_cores = 2;
  cand.config.per_block_mr_heap[3] = 1 * kGB;
  cand.config.per_block_mr_heap[7] = 2 * kGB;
  cand.cost = cost;
  cand.pruned_blocks = 4;
  cand.enumerated_blocks = 9;
  return cand;
}

// ---- options validation ----

TEST(ArtifactStoreOptionsTest, ValidateRejectsNonsense) {
  EXPECT_FALSE(ArtifactStoreOptions().Validate().ok());  // empty path
  EXPECT_FALSE(ArtifactStoreOptions()
                   .WithPath("/tmp/a")
                   .WithMaxBytes(8)  // below the header size
                   .Validate()
                   .ok());
  EXPECT_TRUE(ArtifactStoreOptions().WithPath("/tmp/a").Validate().ok());
  EXPECT_TRUE(ArtifactStoreOptions()
                  .WithPath("/tmp/a")
                  .WithMaxBytes(0)  // unlimited
                  .Validate()
                  .ok());
  EXPECT_FALSE(PlanArtifactStore::Open(ArtifactStoreOptions()).ok());
}

TEST(ArtifactStoreOptionsTest, SessionRequiresPlanCacheForPersistence) {
  SessionOptions options =
      SessionOptions()
          .WithPlanCacheEnabled(false)
          .WithArtifactStore(ArtifactStoreOptions().WithPath("/tmp/a"));
  EXPECT_FALSE(options.Validate().ok());
  // The session itself degrades instead of crashing: the conflict is
  // surfaced through artifact_store_status().
  Session session(ClusterConfig::PaperCluster(), options);
  EXPECT_FALSE(session.artifact_store_status().ok());
  EXPECT_EQ(session.artifact_store(), nullptr);
}

// ---- round trips ----

TEST(PlanArtifactStoreTest, AbsentFileIsAnEmptyColdStore) {
  std::string path = TmpPath("absent.relmplan");
  auto s = MustOpen(ArtifactStoreOptions().WithPath(path));
  EXPECT_TRUE(s->load_status().ok());
  SimulatedHdfs hdfs;
  EXPECT_FALSE(s->HasValidProgram(42, &hdfs));
  EXPECT_FALSE(s->LookupWhatIf(PortableWhatIfKey{42, 1, 2, 1}).has_value());
  // Nothing recorded: no flush, no file.
  EXPECT_TRUE(s->Flush().ok());
  EXPECT_FALSE(std::ifstream(path).good());
}

TEST(PlanArtifactStoreTest, RoundTripsProgramsAndWhatIfEntries) {
  std::string path = TmpPath("roundtrip.relmplan");
  SimulatedHdfs hdfs;
  RegisterCanonicalInputs(&hdfs);
  uint64_t sig = ComputePortableScriptSignature(kScript, kArgs, &hdfs);
  PortableWhatIfKey key{sig, /*context_hash=*/77, 4 * kGB, 2};
  {
    auto s = MustOpen(ArtifactStoreOptions().WithPath(path));
    s->RecordProgram(sig, kArgs, &hdfs);
    s->RecordWhatIf(key, MakeCandidate(4 * kGB, 123.5));
    EXPECT_EQ(s->stats().pending_programs, 1u);
    EXPECT_EQ(s->stats().pending_whatif, 1u);
    // The overlay serves lookups even before the flush.
    EXPECT_TRUE(s->HasValidProgram(sig, &hdfs));
    ASSERT_TRUE(s->LookupWhatIf(key).has_value());
    ASSERT_TRUE(s->Flush().ok());
    EXPECT_EQ(s->stats().frozen_programs, 1u);
    EXPECT_EQ(s->stats().frozen_whatif, 1u);
    EXPECT_EQ(s->stats().pending_programs, 0u);
  }
  // A second "process" maps the frozen file.
  auto s = MustOpen(ArtifactStoreOptions().WithPath(path));
  EXPECT_TRUE(s->load_status().ok());
  EXPECT_EQ(s->stats().frozen_programs, 1u);
  EXPECT_TRUE(s->HasValidProgram(sig, &hdfs));
  EXPECT_FALSE(s->HasValidProgram(sig + 1, &hdfs));
  auto hit = s->LookupWhatIf(key);
  ASSERT_TRUE(hit.has_value());
  PlanCache::CachedCandidate want = MakeCandidate(4 * kGB, 123.5);
  EXPECT_EQ(hit->config.cp_heap, want.config.cp_heap);
  EXPECT_EQ(hit->config.default_mr_heap, want.config.default_mr_heap);
  EXPECT_EQ(hit->config.cp_cores, want.config.cp_cores);
  EXPECT_EQ(hit->config.per_block_mr_heap, want.config.per_block_mr_heap);
  EXPECT_EQ(hit->cost, want.cost);
  EXPECT_EQ(hit->pruned_blocks, want.pruned_blocks);
  EXPECT_EQ(hit->enumerated_blocks, want.enumerated_blocks);
  EXPECT_FALSE(
      s->LookupWhatIf(PortableWhatIfKey{sig, 77, 8 * kGB, 2}).has_value());
}

TEST(PlanArtifactStoreTest, InspectReportsAValidArtifact) {
  std::string path = TmpPath("inspect.relmplan");
  SimulatedHdfs hdfs;
  RegisterCanonicalInputs(&hdfs);
  {
    auto s = MustOpen(ArtifactStoreOptions().WithPath(path));
    s->RecordProgram(11, kArgs, &hdfs);
    s->RecordWhatIf(PortableWhatIfKey{11, 1, 1 * kGB, 1},
                    MakeCandidate(1 * kGB, 9.0));
    ASSERT_TRUE(s->Flush().ok());
  }
  auto info = InspectArtifact(path);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->integrity.ok()) << info->integrity.ToString();
  EXPECT_EQ(info->magic, store::kArtifactMagic);
  EXPECT_EQ(info->version, store::kArtifactVersion);
  EXPECT_EQ(info->program_count, 1u);
  EXPECT_EQ(info->input_count, 2u);  // X and y resolve; B does not
  EXPECT_EQ(info->whatif_count, 1u);
  EXPECT_EQ(info->block_heap_count, 2u);
  EXPECT_EQ(info->stored_checksum, info->computed_checksum);
  EXPECT_FALSE(InspectArtifact(TmpPath("no_such.relmplan")).ok());
}

// ---- rejection paths: each degrades to an empty (cold) store ----

class CorruptionTest : public ::testing::Test {
 protected:
  /// Writes a small valid artifact and returns its bytes.
  std::string MakeValidArtifact(const std::string& path) {
    SimulatedHdfs hdfs;
    RegisterCanonicalInputs(&hdfs);
    auto s = MustOpen(ArtifactStoreOptions().WithPath(path));
    s->RecordProgram(11, kArgs, &hdfs);
    s->RecordWhatIf(PortableWhatIfKey{11, 1, 1 * kGB, 1},
                    MakeCandidate(1 * kGB, 9.0));
    EXPECT_TRUE(s->Flush().ok());
    return ReadFile(path);
  }

  /// The store must reject the current file contents with `want` in the
  /// load status, start empty, and still be able to rebuild a valid
  /// artifact from scratch (the clean-recompile recovery path).
  void ExpectRejectedAndRecoverable(const std::string& path,
                                    const std::string& want) {
    auto s = MustOpen(ArtifactStoreOptions().WithPath(path));
    EXPECT_FALSE(s->load_status().ok());
    EXPECT_NE(s->load_status().ToString().find(want), std::string::npos)
        << s->load_status().ToString();
    EXPECT_EQ(s->stats().frozen_programs, 0u);
    SimulatedHdfs hdfs;
    EXPECT_FALSE(s->HasValidProgram(11, &hdfs));
    // lint agrees with the store's verdict.
    auto info = InspectArtifact(path);
    ASSERT_TRUE(info.ok());
    EXPECT_FALSE(info->integrity.ok());
    // Recovery: new work still persists over the corpse.
    s->RecordProgram(21, {}, nullptr);
    ASSERT_TRUE(s->Flush().ok());
    auto healed = InspectArtifact(path);
    ASSERT_TRUE(healed.ok());
    EXPECT_TRUE(healed->integrity.ok());
    EXPECT_EQ(healed->program_count, 1u);
  }
};

TEST_F(CorruptionTest, TruncatedHeaderRejected) {
  std::string path = TmpPath("trunc_header.relmplan");
  std::string bytes = MakeValidArtifact(path);
  WriteFile(path, bytes.substr(0, 10));
  ExpectRejectedAndRecoverable(path, "truncated header");
}

TEST_F(CorruptionTest, TruncatedPayloadRejected) {
  std::string path = TmpPath("trunc_payload.relmplan");
  std::string bytes = MakeValidArtifact(path);
  WriteFile(path, bytes.substr(0, bytes.size() - 4));
  ExpectRejectedAndRecoverable(path, "truncated payload");
}

TEST_F(CorruptionTest, ChecksumMismatchRejected) {
  std::string path = TmpPath("checksum.relmplan");
  std::string bytes = MakeValidArtifact(path);
  bytes[sizeof(ArtifactHeader) + 3] ^= 0x5a;  // flip a payload byte
  WriteFile(path, bytes);
  ExpectRejectedAndRecoverable(path, "checksum mismatch");
}

TEST_F(CorruptionTest, VersionSkewRejected) {
  std::string path = TmpPath("version.relmplan");
  std::string bytes = MakeValidArtifact(path);
  uint32_t future = store::kArtifactVersion + 1;
  std::memcpy(bytes.data() + offsetof(ArtifactHeader, version), &future,
              sizeof(future));
  WriteFile(path, bytes);
  ExpectRejectedAndRecoverable(path, "version skew");
}

TEST_F(CorruptionTest, BadMagicRejected) {
  std::string path = TmpPath("magic.relmplan");
  std::string bytes = MakeValidArtifact(path);
  bytes[0] ^= 0xff;
  WriteFile(path, bytes);
  ExpectRejectedAndRecoverable(path, "bad magic");
}

// ---- stale-input invalidation (incremental recompilation) ----

TEST(PlanArtifactStoreTest, StaleInputInvalidatesOnlyItsOwnProgram) {
  std::string path = TmpPath("stale.relmplan");
  ScriptArgs x_args{{"X", "/data/X"}};
  ScriptArgs y_args{{"Y", "/data/y"}};
  {
    SimulatedHdfs hdfs;
    RegisterCanonicalInputs(&hdfs);
    auto s = MustOpen(ArtifactStoreOptions().WithPath(path));
    s->RecordProgram(101, x_args, &hdfs);  // reads only X
    s->RecordProgram(202, y_args, &hdfs);  // reads only y
    ASSERT_TRUE(s->Flush().ok());
  }
  // A later process where X grew but y is unchanged: only the program
  // that reads X is stale — Tundra-style leaf-input signatures, not a
  // whole-namespace fingerprint.
  SimulatedHdfs drifted;
  drifted.PutMetadata("/data/X", MatrixCharacteristics(2000000, 1000));
  drifted.PutMetadata("/data/y", MatrixCharacteristics(1000000, 1));
  auto s = MustOpen(ArtifactStoreOptions().WithPath(path));
  EXPECT_TRUE(s->load_status().ok());
  EXPECT_FALSE(s->HasValidProgram(101, &drifted));
  EXPECT_TRUE(s->HasValidProgram(202, &drifted));
  // A deleted input is also stale.
  drifted.Delete("/data/y");
  EXPECT_FALSE(s->HasValidProgram(202, &drifted));
}

TEST(PortableSignatureTest, StableAcrossProcessesAndUnrelatedDrift) {
  SimulatedHdfs a;
  RegisterCanonicalInputs(&a);
  SimulatedHdfs b;
  RegisterCanonicalInputs(&b);
  // Distinct namespace instances with identical inputs: the in-process
  // signature must differ (master programs pin their namespace), the
  // portable one must match (it names work, not a process).
  EXPECT_NE(ComputeScriptSignature(kScript, kArgs, &a),
            ComputeScriptSignature(kScript, kArgs, &b));
  uint64_t sig_a = ComputePortableScriptSignature(kScript, kArgs, &a);
  EXPECT_EQ(sig_a, ComputePortableScriptSignature(kScript, kArgs, &b));
  // Drift in a file the script never reads does not invalidate...
  b.PutMetadata("/data/unrelated", MatrixCharacteristics(5, 5));
  EXPECT_EQ(sig_a, ComputePortableScriptSignature(kScript, kArgs, &b));
  // ...but drift in a bound input does.
  b.PutMetadata("/data/X", MatrixCharacteristics(2000000, 1000));
  EXPECT_NE(sig_a, ComputePortableScriptSignature(kScript, kArgs, &b));
}

// ---- concurrency and capacity ----

TEST(PlanArtifactStoreTest, ConcurrentWritersLoseNoEntries) {
  std::string path = TmpPath("concurrent.relmplan");
  SimulatedHdfs hdfs;
  RegisterCanonicalInputs(&hdfs);
  // Two stores on the same path — two Sessions, two processes. Both
  // opened cold; each records its own work; the second flush must merge
  // with (not clobber) the first's published file.
  auto a = MustOpen(ArtifactStoreOptions().WithPath(path));
  auto b = MustOpen(ArtifactStoreOptions().WithPath(path));
  a->RecordProgram(1001, kArgs, &hdfs);
  a->RecordWhatIf(PortableWhatIfKey{1001, 5, 1 * kGB, 1},
                  MakeCandidate(1 * kGB, 1.0));
  b->RecordProgram(2002, kArgs, &hdfs);
  b->RecordWhatIf(PortableWhatIfKey{2002, 5, 2 * kGB, 1},
                  MakeCandidate(2 * kGB, 2.0));
  ASSERT_TRUE(a->Flush().ok());
  ASSERT_TRUE(b->Flush().ok());
  auto c = MustOpen(ArtifactStoreOptions().WithPath(path));
  EXPECT_TRUE(c->HasValidProgram(1001, &hdfs));
  EXPECT_TRUE(c->HasValidProgram(2002, &hdfs));
  EXPECT_TRUE(
      c->LookupWhatIf(PortableWhatIfKey{1001, 5, 1 * kGB, 1}).has_value());
  EXPECT_TRUE(
      c->LookupWhatIf(PortableWhatIfKey{2002, 5, 2 * kGB, 1}).has_value());
  EXPECT_EQ(c->stats().frozen_programs, 2u);
  EXPECT_EQ(c->stats().frozen_whatif, 2u);
}

TEST(PlanArtifactStoreTest, ReadOnlyStoreServesButNeverWrites) {
  std::string path = TmpPath("readonly.relmplan");
  SimulatedHdfs hdfs;
  RegisterCanonicalInputs(&hdfs);
  uint64_t sig = 31;
  PortableWhatIfKey key{sig, 9, 1 * kGB, 1};
  {
    auto w = MustOpen(ArtifactStoreOptions().WithPath(path));
    w->RecordProgram(sig, kArgs, &hdfs);
    w->RecordWhatIf(key, MakeCandidate(1 * kGB, 3.0));
    ASSERT_TRUE(w->Flush().ok());
  }
  std::string before = ReadFile(path);
  auto ro = MustOpen(
      ArtifactStoreOptions().WithPath(path).WithReadOnly(true));
  EXPECT_TRUE(ro->HasValidProgram(sig, &hdfs));
  EXPECT_TRUE(ro->LookupWhatIf(key).has_value());
  // Writes are no-ops: nothing pends, nothing flushes, no byte moves.
  ro->RecordProgram(77, kArgs, &hdfs);
  ro->RecordWhatIf(PortableWhatIfKey{77, 9, 1 * kGB, 1},
                   MakeCandidate(1 * kGB, 4.0));
  EXPECT_EQ(ro->stats().pending_programs, 0u);
  EXPECT_EQ(ro->stats().pending_whatif, 0u);
  EXPECT_TRUE(ro->Flush().ok());
  EXPECT_EQ(ro->stats().flushes, 0);
  EXPECT_EQ(ReadFile(path), before);
}

TEST(PlanArtifactStoreTest, SizeCapDropsOldestWhatIfEntriesFirst) {
  std::string path = TmpPath("cap.relmplan");
  // Room for the header plus two block-heap-free what-if records.
  int64_t cap = static_cast<int64_t>(sizeof(ArtifactHeader) +
                                     2 * sizeof(store::WhatIfRecord));
  auto s = MustOpen(
      ArtifactStoreOptions().WithPath(path).WithMaxBytes(cap));
  for (int i = 0; i < 5; ++i) {
    PlanCache::CachedCandidate cand;
    cand.config.cp_heap = (i + 1) * kGB;
    cand.cost = i;
    s->RecordWhatIf(PortableWhatIfKey{uint64_t(50 + i), 1, (i + 1) * kGB, 1},
                    cand);
  }
  ASSERT_TRUE(s->Flush().ok());
  auto info = InspectArtifact(path);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->integrity.ok());
  EXPECT_EQ(info->whatif_count, 2u);
  EXPECT_LE(info->file_bytes, static_cast<uint64_t>(cap));
  // The newest entries are the ones kept.
  auto r = MustOpen(ArtifactStoreOptions().WithPath(path));
  EXPECT_FALSE(
      r->LookupWhatIf(PortableWhatIfKey{50, 1, 1 * kGB, 1}).has_value());
  EXPECT_TRUE(
      r->LookupWhatIf(PortableWhatIfKey{54, 1, 5 * kGB, 1}).has_value());
}

// ---- the cold-start differential (the acceptance bar) ----

struct ColdStartRun {
  PlanCache::Stats cache_stats;
  ResourceConfig config;
  OptimizerStats opt_stats;
};

/// One simulated process lifetime: fresh PlanCache (nothing in-memory
/// survives), shared artifact path (what disk preserves).
ColdStartRun RunProcess(PlanCache* cache, const std::string& path) {
  Session session(
      ClusterConfig::PaperCluster(),
      SessionOptions().WithPlanCache(cache).WithArtifactStore(
          ArtifactStoreOptions().WithPath(path)));
  EXPECT_TRUE(session.artifact_store_status().ok())
      << session.artifact_store_status().ToString();
  RegisterCanonicalInputs(&session.hdfs());
  auto prog = session.CompileSource(kScript, kArgs);
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  auto outcome = session.Optimize(prog->get());
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(session.FlushArtifacts().ok());
  ColdStartRun run;
  run.cache_stats = cache->stats();
  run.config = outcome->config;
  run.opt_stats = std::move(outcome->stats);
  return run;
}

TEST(ColdStartTest, WarmStoreYieldsZeroCompilesAndIdenticalConfig) {
  std::string path = TmpPath("cold_start.relmplan");

  PlanCache cold_cache;
  ColdStartRun cold = RunProcess(&cold_cache, path);
  EXPECT_EQ(cold.cache_stats.program_misses, 1);
  EXPECT_EQ(cold.cache_stats.store_program_hits, 0);
  EXPECT_GT(cold.cache_stats.whatif_misses, 0);

  // "Process restart": a brand-new cache, only the artifact survives.
  PlanCache warm_cache;
  ColdStartRun warm = RunProcess(&warm_cache, path);

  // Zero full compiles: the store vouched for the program signature...
  EXPECT_EQ(warm.cache_stats.program_misses, 0);
  EXPECT_EQ(warm.cache_stats.store_program_hits, 1);
  // ...and every grid point the sweep asked for hydrated from disk.
  EXPECT_EQ(warm.cache_stats.whatif_misses, 0);
  EXPECT_GT(warm.cache_stats.store_whatif_hits, 0);
  EXPECT_EQ(warm.opt_stats.block_recompiles, 0);

  // Bitwise-identical decision.
  EXPECT_EQ(warm.config.cp_heap, cold.config.cp_heap);
  EXPECT_EQ(warm.config.cp_cores, cold.config.cp_cores);
  EXPECT_EQ(warm.config.default_mr_heap, cold.config.default_mr_heap);
  EXPECT_EQ(warm.config.per_block_mr_heap, cold.config.per_block_mr_heap);
  EXPECT_EQ(warm.opt_stats.best_cost, cold.opt_stats.best_cost);
}

TEST(ColdStartTest, CorruptArtifactDegradesToCleanRecompile) {
  std::string path = TmpPath("cold_start_corrupt.relmplan");
  PlanCache cold_cache;
  RunProcess(&cold_cache, path);
  // Scribble over the artifact between "processes".
  std::string bytes = ReadFile(path);
  bytes[sizeof(ArtifactHeader) + 1] ^= 0x40;
  WriteFile(path, bytes);

  PlanCache warm_cache;
  Session session(
      ClusterConfig::PaperCluster(),
      SessionOptions().WithPlanCache(&warm_cache).WithArtifactStore(
          ArtifactStoreOptions().WithPath(path)));
  // The rejection is visible but non-fatal...
  EXPECT_FALSE(session.artifact_store_status().ok());
  ASSERT_NE(session.artifact_store(), nullptr);
  RegisterCanonicalInputs(&session.hdfs());
  auto prog = session.CompileSource(kScript, kArgs);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  auto outcome = session.Optimize(prog->get());
  ASSERT_TRUE(outcome.ok());
  // ...and the run paid the clean recompile instead of a wrong hit.
  EXPECT_EQ(warm_cache.stats().program_misses, 1);
  EXPECT_EQ(warm_cache.stats().store_program_hits, 0);
  // The flush then heals the artifact for the next process.
  ASSERT_TRUE(session.FlushArtifacts().ok());
  auto info = InspectArtifact(path);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->integrity.ok());
}

TEST(ColdStartTest, StoreIsSharedAcrossSessionsOfOneService) {
  // Two sessions in one process sharing a cache and store (the
  // JobService fleet shape): the second session's open merges through
  // the same artifact without clobbering the first's entries.
  std::string path = TmpPath("fleet.relmplan");
  PlanCache cache;
  PlanCache::Stats first;
  {
    PlanCache c1;
    RunProcess(&c1, path);
    first = c1.stats();
  }
  EXPECT_EQ(first.program_misses, 1);
  ColdStartRun second = RunProcess(&cache, path);
  EXPECT_EQ(second.cache_stats.program_misses, 0);
  EXPECT_EQ(second.cache_stats.store_program_hits, 1);
}

}  // namespace
}  // namespace relm

// Unit tests for the pluggable scheduling subsystem (sched/):
// round-robin extraction differential-tested against a reference model
// of the pre-refactor JobService ordering, cost-aware least-slack
// ordering, elastic quota gating with work-conserving backfill, and
// allocation-priority boosting.

#include <cmath>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sched/cost_aware_scheduler.h"
#include "sched/round_robin_scheduler.h"
#include "sched/scheduler.h"

namespace relm {
namespace sched {
namespace {

SchedEntry MakeEntry(uint64_t id, const std::string& tenant,
                     double deadline = 0.0, double cost = -1.0,
                     int priority = 0, double submit = 0.0) {
  SchedEntry entry;
  entry.job_id = id;
  entry.tenant = tenant;
  entry.submit_seconds = submit;
  entry.deadline_seconds = deadline;
  entry.cost_estimate_seconds = cost;
  entry.priority = priority;
  return entry;
}

// ---- SchedEntry math ---------------------------------------------------

TEST(SchedEntryTest, AbsoluteDeadlineAndSlack) {
  SchedEntry none = MakeEntry(1, "t", /*deadline=*/0.0, /*cost=*/2.0);
  EXPECT_TRUE(std::isinf(none.AbsoluteDeadline()));
  EXPECT_TRUE(std::isinf(none.Slack()));

  SchedEntry e = MakeEntry(2, "t", /*deadline=*/10.0, /*cost=*/3.0,
                           /*priority=*/0, /*submit=*/5.0);
  EXPECT_DOUBLE_EQ(e.AbsoluteDeadline(), 15.0);
  EXPECT_DOUBLE_EQ(e.Slack(), 12.0);

  // Unknown cost estimate: slack degrades to the bare deadline.
  SchedEntry unknown = MakeEntry(3, "t", /*deadline=*/10.0, /*cost=*/-1.0);
  EXPECT_DOUBLE_EQ(unknown.Slack(), 10.0);
}

// ---- round-robin differential vs the pre-refactor JobService -----------

/// Reference model: a verbatim transcription of the queueing logic the
/// JobService hard-coded before the scheduler extraction (per-tenant
/// FIFO queues + round-robin tenant rotation + the two admission caps).
/// The RoundRobinScheduler must be behavior-preserving against this.
class LegacyJobServiceModel {
 public:
  LegacyJobServiceModel(int max_pending, int max_per_tenant)
      : max_pending_(max_pending), max_per_tenant_(max_per_tenant) {}

  Status Admit(uint64_t id, const std::string& tenant) {
    if (queued_ + running_ >= max_pending_) {
      return Status::ResourceError(
          "admission control: service at capacity (" +
          std::to_string(queued_ + running_) + " jobs pending)");
    }
    auto& queue = queues_[tenant];
    if (static_cast<int>(queue.size()) >= max_per_tenant_) {
      return Status::ResourceError("admission control: tenant \"" + tenant +
                                   "\" queue quota exceeded");
    }
    if (queue.empty()) tenant_rr_.push_back(tenant);
    queue.push_back(id);
    queued_++;
    return Status::OK();
  }

  std::optional<uint64_t> Dequeue() {
    if (tenant_rr_.empty()) return std::nullopt;
    const std::string tenant = tenant_rr_.front();
    tenant_rr_.pop_front();
    auto it = queues_.find(tenant);
    const uint64_t id = it->second.front();
    it->second.pop_front();
    if (!it->second.empty()) {
      tenant_rr_.push_back(tenant);
    } else {
      queues_.erase(it);
    }
    queued_--;
    running_++;
    last_tenant_ = tenant;
    return id;
  }

  void Finish() { running_--; }

  int queued() const { return queued_; }
  const std::string& last_tenant() const { return last_tenant_; }

 private:
  int max_pending_;
  int max_per_tenant_;
  std::map<std::string, std::deque<uint64_t>> queues_;
  std::deque<std::string> tenant_rr_;
  int queued_ = 0;
  int running_ = 0;
  std::string last_tenant_;
};

TEST(RoundRobinDifferentialTest, MatchesPreRefactorJobServiceOrdering) {
  const std::vector<std::string> tenants = {"alpha", "beta", "gamma",
                                            "delta"};
  for (const uint32_t seed : {1u, 7u, 42u, 1234u, 99999u}) {
    SchedulerLimits limits;
    limits.max_pending_jobs = 12;
    limits.max_queued_per_tenant = 3;
    RoundRobinScheduler rr(limits);
    LegacyJobServiceModel legacy(limits.max_pending_jobs,
                                 limits.max_queued_per_tenant);
    std::mt19937 rng(seed);
    uint64_t next_id = 1;
    // Tenants of dispatched-but-unfinished jobs, finished in dispatch
    // order (the common case for a FIFO worker pool).
    std::deque<std::string> running_tenants;

    for (int op = 0; op < 2000; ++op) {
      const uint32_t kind = rng() % 10;
      if (kind < 5) {
        const std::string& tenant = tenants[rng() % tenants.size()];
        const uint64_t id = next_id++;
        const Status got = rr.Admit(MakeEntry(id, tenant));
        const Status want = legacy.Admit(id, tenant);
        ASSERT_EQ(got.ok(), want.ok()) << "op " << op << " seed " << seed;
        if (!got.ok()) {
          // Rejections must carry the exact pre-refactor messages.
          ASSERT_EQ(got.message(), want.message());
        }
      } else if (kind < 8) {
        std::optional<SchedDecision> got = rr.Dequeue(/*now_seconds=*/0.0);
        std::optional<uint64_t> want = legacy.Dequeue();
        ASSERT_EQ(got.has_value(), want.has_value())
            << "op " << op << " seed " << seed;
        if (got.has_value()) {
          ASSERT_EQ(got->job_id, *want) << "op " << op << " seed " << seed;
          EXPECT_EQ(got->reason, "rr");
          running_tenants.push_back(legacy.last_tenant());
        }
      } else if (!running_tenants.empty()) {
        rr.OnJobFinished(running_tenants.front());
        legacy.Finish();
        running_tenants.pop_front();
      }
      ASSERT_EQ(rr.queued(), legacy.queued());
      ASSERT_EQ(rr.HasRunnable(0.0), legacy.queued() > 0);
    }
  }
}

// ---- cost-aware ordering -----------------------------------------------

std::vector<uint64_t> DrainOrder(Scheduler* sched, double now = 0.0) {
  std::vector<uint64_t> order;
  while (auto decision = sched->Dequeue(now)) {
    order.push_back(decision->job_id);
  }
  return order;
}

TEST(CostAwareSchedulerTest, LeastSlackFirstThenShortestJob) {
  CostAwareScheduler ca(SchedulerLimits{}, {});
  // Slack = deadline - cost (submit 0): j1=9, j2=4, j3=1; j4..j6 have
  // no deadline (infinite slack) and order by cost estimate, unknown
  // cost last.
  ASSERT_TRUE(ca.Admit(MakeEntry(1, "a", 10.0, 1.0)).ok());
  ASSERT_TRUE(ca.Admit(MakeEntry(2, "a", 5.0, 1.0)).ok());
  ASSERT_TRUE(ca.Admit(MakeEntry(3, "b", 5.0, 4.0)).ok());
  ASSERT_TRUE(ca.Admit(MakeEntry(4, "b", 0.0, 2.0)).ok());
  ASSERT_TRUE(ca.Admit(MakeEntry(5, "c", 0.0, -1.0)).ok());
  ASSERT_TRUE(ca.Admit(MakeEntry(6, "c", 0.0, 1.0)).ok());
  EXPECT_EQ(DrainOrder(&ca), (std::vector<uint64_t>{3, 2, 1, 6, 4, 5}));
}

TEST(CostAwareSchedulerTest, SlackTieBreaksByCostThenJobId) {
  CostAwareScheduler ca(SchedulerLimits{}, {});
  // j1 and j2 tie on slack (5.0); j2 is shorter and goes first. j3
  // ties j1 on slack AND cost; FIFO by id breaks it.
  ASSERT_TRUE(ca.Admit(MakeEntry(1, "a", 8.0, 3.0)).ok());
  ASSERT_TRUE(ca.Admit(MakeEntry(2, "a", 6.0, 1.0)).ok());
  ASSERT_TRUE(ca.Admit(MakeEntry(3, "b", 8.0, 3.0)).ok());
  EXPECT_EQ(DrainOrder(&ca), (std::vector<uint64_t>{2, 1, 3}));
}

TEST(CostAwareSchedulerTest, RequestPriorityDominatesSlack) {
  CostAwareScheduler ca(SchedulerLimits{}, {});
  ASSERT_TRUE(
      ca.Admit(MakeEntry(1, "a", 1.0, 0.5, /*priority=*/0)).ok());
  ASSERT_TRUE(
      ca.Admit(MakeEntry(2, "b", 0.0, -1.0, /*priority=*/1)).ok());
  EXPECT_EQ(DrainOrder(&ca), (std::vector<uint64_t>{2, 1}));
}

TEST(CostAwareSchedulerTest, DecisionReasonCarriesSlack) {
  CostAwareScheduler ca(SchedulerLimits{}, {});
  ASSERT_TRUE(ca.Admit(MakeEntry(1, "a", 10.0, 2.0)).ok());
  ASSERT_TRUE(ca.Admit(MakeEntry(2, "a", 0.0, -1.0)).ok());
  std::optional<SchedDecision> first = ca.Dequeue(0.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->reason, "cost_aware:slack=8.000s");
  std::optional<SchedDecision> second = ca.Dequeue(0.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->reason, "cost_aware:no_deadline");
}

// ---- quota gating ------------------------------------------------------

TEST(CostAwareSchedulerTest, OverQuotaTenantDefersToInQuotaWork) {
  constexpr int64_t kMB = 1 << 20;
  std::map<std::string, TenantQuota> quotas;
  quotas["batch"] = TenantQuota{1 * kMB, 0};
  CostAwareScheduler ca(SchedulerLimits{}, quotas);
  // Push "batch" over its memory quota.
  ca.OnCapacityAcquired("batch", 2 * kMB, 1);
  ASSERT_FALSE(ca.InQuota("batch"));
  ASSERT_TRUE(ca.InQuota("svc"));

  // The batch job has far less slack, but the in-quota tenant wins.
  ASSERT_TRUE(ca.Admit(MakeEntry(1, "batch", 1.0, 0.5)).ok());
  ASSERT_TRUE(ca.Admit(MakeEntry(2, "svc", 0.0, -1.0)).ok());
  std::optional<SchedDecision> first = ca.Dequeue(0.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->job_id, 2u);
  EXPECT_EQ(ca.stats().held_over_quota, 1);

  // Work-conserving backfill: alone in the queue, over-quota work runs
  // anyway (its containers stay preemptible).
  std::optional<SchedDecision> second = ca.Dequeue(0.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->job_id, 1u);
  EXPECT_NE(second->reason.find("over_quota_backfill"), std::string::npos);

  // Releasing the capacity restores quota headroom.
  ca.OnCapacityReleased("batch", 2 * kMB, 1);
  EXPECT_TRUE(ca.InQuota("batch"));
}

TEST(CostAwareSchedulerTest, VcoreQuotaGatesIndependently) {
  std::map<std::string, TenantQuota> quotas;
  quotas["t"] = TenantQuota{0, 4};
  CostAwareScheduler ca(SchedulerLimits{}, quotas);
  ca.OnCapacityAcquired("t", 1 << 30, 3);
  EXPECT_TRUE(ca.InQuota("t"));  // memory unlimited, vcores below cap
  ca.OnCapacityAcquired("t", 0, 1);
  EXPECT_FALSE(ca.InQuota("t"));
}

TEST(CostAwareSchedulerTest, AllocationPriorityBoostsInQuotaTenants) {
  constexpr int64_t kMB = 1 << 20;
  std::map<std::string, TenantQuota> quotas;
  quotas["batch"] = TenantQuota{1 * kMB, 0};
  CostAwareScheduler ca(SchedulerLimits{}, quotas);

  const int boost = CostAwareScheduler::kQuotaBoost;
  EXPECT_EQ(ca.AllocationPriority("svc", 0), boost);
  EXPECT_EQ(ca.AllocationPriority("svc", 5), boost + 5);
  ca.OnCapacityAcquired("batch", 2 * kMB, 0);
  EXPECT_EQ(ca.AllocationPriority("batch", 0), 0);
  // Request priorities clamp under the boost: an over-quota tenant can
  // never outrank an in-quota one, whatever it asks for.
  EXPECT_EQ(ca.AllocationPriority("batch", 1 << 20), boost - 1);
  EXPECT_LT(ca.AllocationPriority("batch", 1 << 20),
            ca.AllocationPriority("svc", -(1 << 20)));
}

// ---- admission parity --------------------------------------------------

TEST(CostAwareSchedulerTest, AdmissionCapsMatchRoundRobinMessages) {
  SchedulerLimits limits;
  limits.max_pending_jobs = 4;
  limits.max_queued_per_tenant = 2;
  RoundRobinScheduler rr(limits);
  CostAwareScheduler ca(limits, {});

  uint64_t id = 1;
  // Per-tenant cap first: third job of one tenant bounces identically.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(rr.Admit(MakeEntry(id, "a")).ok());
    ASSERT_TRUE(ca.Admit(MakeEntry(id, "a")).ok());
    id++;
  }
  const Status rr_tenant = rr.Admit(MakeEntry(id, "a"));
  const Status ca_tenant = ca.Admit(MakeEntry(id, "a"));
  ASSERT_FALSE(rr_tenant.ok());
  EXPECT_EQ(rr_tenant.message(), ca_tenant.message());
  id++;
  // Global cap next.
  for (const char* tenant : {"b", "c"}) {
    ASSERT_TRUE(rr.Admit(MakeEntry(id, tenant)).ok());
    ASSERT_TRUE(ca.Admit(MakeEntry(id, tenant)).ok());
    id++;
  }
  const Status rr_full = rr.Admit(MakeEntry(id, "d"));
  const Status ca_full = ca.Admit(MakeEntry(id, "d"));
  ASSERT_FALSE(rr_full.ok());
  EXPECT_EQ(rr_full.message(), ca_full.message());
}

TEST(MakeSchedulerTest, BuildsRequestedPolicy) {
  std::unique_ptr<Scheduler> rr =
      MakeScheduler(SchedulerPolicy::kRoundRobin, SchedulerLimits{});
  ASSERT_NE(rr, nullptr);
  EXPECT_STREQ(rr->name(), "round_robin");
  EXPECT_EQ(rr->capacity_mode(), CapacityMode::kFifoByteCap);

  std::unique_ptr<Scheduler> ca =
      MakeScheduler(SchedulerPolicy::kCostAware, SchedulerLimits{});
  ASSERT_NE(ca, nullptr);
  EXPECT_STREQ(ca->name(), "cost_aware");
  EXPECT_EQ(ca->capacity_mode(), CapacityMode::kPreemptiveRm);

  EXPECT_STREQ(SchedulerPolicyName(SchedulerPolicy::kRoundRobin),
               "round_robin");
  EXPECT_STREQ(SchedulerPolicyName(SchedulerPolicy::kCostAware),
               "cost_aware");
}

}  // namespace
}  // namespace sched
}  // namespace relm

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "api/relm_system.h"
#include "spark/spark_model.h"

// This file is the RelmSystem shim's coverage: it exercises the
// deprecated facade on purpose until the compatibility header is
// removed (see the migration timeline in README.md).
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace relm {
namespace {

std::string ScriptPath(const std::string& name) {
  return std::string(RELM_SCRIPTS_DIR) + "/" + name;
}

class RelmSystemTest : public ::testing::Test {
 protected:
  RelmSystem sys_;
};

TEST_F(RelmSystemTest, CompileFileAndMissingFile) {
  sys_.RegisterMatrixMetadata("/data/X", 1000000, 1000);
  sys_.RegisterMatrixMetadata("/data/y", 1000000, 1);
  ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"}};
  auto prog = sys_.CompileFile(ScriptPath("linreg_ds.dml"), args);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_GT((*prog)->total_blocks(), 0);
  EXPECT_FALSE(sys_.CompileFile("/no/such/file.dml", args).ok());
}

TEST_F(RelmSystemTest, OptimizeEstimateSimulateRoundTrip) {
  sys_.RegisterMatrixMetadata("/data/X", 1000000, 1000);
  sys_.RegisterMatrixMetadata("/data/y", 1000000, 1);
  ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"}};
  auto prog = sys_.CompileFile(ScriptPath("linreg_cg.dml"), args);
  ASSERT_TRUE(prog.ok());
  OptimizerStats stats;
  auto config = sys_.OptimizeResources(prog->get(), &stats);
  ASSERT_TRUE(config.ok());
  auto est = sys_.EstimateCost(prog->get(), *config);
  ASSERT_TRUE(est.ok());
  EXPECT_GT(*est, 0.0);
  auto clone = (*prog)->Clone();
  ASSERT_TRUE(clone.ok());
  auto run = sys_.Simulate(clone->get(), *config);
  ASSERT_TRUE(run.ok());
  // Measured within a reasonable factor of the estimate (no unknowns).
  EXPECT_LT(run->elapsed_seconds, *est * 3.0);
  EXPECT_GT(run->elapsed_seconds, *est * 0.3);
}

TEST_F(RelmSystemTest, RealExecutionThroughFacade) {
  sys_.RegisterMatrix("/m/A", MatrixBlock::Constant(4, 4, 2.0));
  auto prog = sys_.CompileSource(
      "A = read(\"/m/A\")\nprint(\"sum=\" + sum(A))", {});
  ASSERT_TRUE(prog.ok());
  auto run = sys_.ExecuteReal(prog->get());
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->printed.size(), 1u);
  EXPECT_EQ(run->printed[0], "sum=32");
}

TEST_F(RelmSystemTest, StaticBaselinesMatchPaper) {
  auto baselines = sys_.StaticBaselines();
  ASSERT_EQ(baselines.size(), 4u);
  EXPECT_STREQ(baselines[0].name, "B-SS");
  EXPECT_EQ(baselines[0].config.cp_heap, 512 * kMB);
  EXPECT_EQ(baselines[0].config.default_mr_heap, 512 * kMB);
  EXPECT_STREQ(baselines[3].name, "B-LL");
  EXPECT_EQ(baselines[3].config.cp_heap, sys_.cluster().MaxHeapSize());
  EXPECT_EQ(baselines[3].config.default_mr_heap, GigaBytes(4.4));
}

// ---- Session API (the facade above is a deprecated shim over it) ----

TEST(SessionApiTest, OptimizeReturnsOutcomeMatchingFacade) {
  // The deprecated facade and the Session API must agree bit-for-bit:
  // RelmSystem is now a thin shim over an uncached Session.
  RelmSystem legacy;
  legacy.RegisterMatrixMetadata("/data/X", 1000000, 1000);
  legacy.RegisterMatrixMetadata("/data/y", 1000000, 1);
  ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"}};
  auto legacy_prog = legacy.CompileFile(ScriptPath("linreg_cg.dml"), args);
  ASSERT_TRUE(legacy_prog.ok());
  OptimizerStats legacy_stats;
  auto legacy_config =
      legacy.OptimizeResources(legacy_prog->get(), &legacy_stats);
  ASSERT_TRUE(legacy_config.ok());

  Session session;
  ASSERT_TRUE(
      session.RegisterMatrixMetadata("/data/X", 1000000, 1000).ok());
  ASSERT_TRUE(session.RegisterMatrixMetadata("/data/y", 1000000, 1).ok());
  auto prog = session.CompileFile(ScriptPath("linreg_cg.dml"), args);
  ASSERT_TRUE(prog.ok());
  auto outcome = session.Optimize(prog->get());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->config.cp_heap, legacy_config->cp_heap);
  EXPECT_EQ(outcome->config.default_mr_heap,
            legacy_config->default_mr_heap);
  EXPECT_DOUBLE_EQ(outcome->stats.best_cost, legacy_stats.best_cost);
  EXPECT_EQ(outcome->stats.cp_grid_points, legacy_stats.cp_grid_points);
  EXPECT_EQ(outcome->stats.cost_invocations,
            legacy_stats.cost_invocations);
}

TEST(SessionApiTest, RegisterMatrixMetadataValidates) {
  Session session;
  EXPECT_FALSE(session.RegisterMatrixMetadata("", 10, 10).ok());
  EXPECT_FALSE(session.RegisterMatrixMetadata("/data/X", 0, 10).ok());
  EXPECT_FALSE(session.RegisterMatrixMetadata("/data/X", 10, -1).ok());
  EXPECT_FALSE(
      session.RegisterMatrixMetadata("/data/X", 10, 10, 1.5).ok());
  EXPECT_TRUE(session.RegisterMatrixMetadata("/data/X", 10, 10, 0.5).ok());
}

TEST(SessionApiTest, RealExecutionThroughSession) {
  Session session;
  ASSERT_TRUE(
      session.RegisterMatrix("/m/A", MatrixBlock::Constant(4, 4, 2.0))
          .ok());
  auto prog = session.CompileSource(
      "A = read(\"/m/A\")\nprint(\"sum=\" + sum(A))", {});
  ASSERT_TRUE(prog.ok());
  auto run = session.ExecuteReal(prog->get());
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->printed.size(), 1u);
  EXPECT_EQ(run->printed[0], "sum=32");
}

TEST(SessionApiTest, FacadeSessionSharesState) {
  // RelmSystem::session() exposes the underlying Session; metadata
  // registered through either side is visible to the other.
  RelmSystem legacy;
  legacy.RegisterMatrixMetadata("/data/X", 100, 10);
  EXPECT_TRUE(legacy.session().hdfs().Exists("/data/X"));
  ASSERT_TRUE(
      legacy.session().RegisterMatrixMetadata("/data/y", 100, 1).ok());
  ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"}};
  EXPECT_TRUE(
      legacy.CompileFile(ScriptPath("linreg_ds.dml"), args).ok());
}

// ---- Spark model (Appendix D) ----

TEST(SparkModelTest, CacheSweetSpot) {
  SparkConfig spark;
  ClusterConfig cc = ClusterConfig::PaperCluster();
  SparkWorkload w;
  // 80 GB fits the ~198 GB aggregate cache; 800 GB does not.
  w.x = MatrixCharacteristics::Dense(10000000000LL / 1000, 1000);
  auto cached = EstimateSparkRun(spark, cc, w, SparkPlan::kHybrid);
  EXPECT_TRUE(cached.x_cached);
  w.x = MatrixCharacteristics::Dense(100000000000LL / 1000, 1000);
  auto uncached = EstimateSparkRun(spark, cc, w, SparkPlan::kHybrid);
  EXPECT_FALSE(uncached.x_cached);
  // Per-byte cost is far higher once the cache is blown.
  EXPECT_GT(uncached.seconds / 10.0, cached.seconds);
}

TEST(SparkModelTest, FullPlanPaysStageLatency) {
  SparkConfig spark;
  ClusterConfig cc = ClusterConfig::PaperCluster();
  SparkWorkload w;
  w.x = MatrixCharacteristics::Dense(10000, 1000);  // 80MB
  auto hybrid = EstimateSparkRun(spark, cc, w, SparkPlan::kHybrid);
  auto full = EstimateSparkRun(spark, cc, w, SparkPlan::kFull);
  EXPECT_GT(full.seconds, hybrid.seconds * 1.5);
  EXPECT_GT(full.stages, hybrid.stages);
}

TEST(SparkModelTest, StartupDominatesTinyData) {
  SparkConfig spark;
  ClusterConfig cc = ClusterConfig::PaperCluster();
  SparkWorkload w;
  w.x = MatrixCharacteristics::Dense(1000, 100);
  auto run = EstimateSparkRun(spark, cc, w, SparkPlan::kHybrid);
  EXPECT_GE(run.seconds, spark.app_startup_seconds);
  EXPECT_LT(run.seconds, spark.app_startup_seconds + 10);
}

TEST(SparkModelTest, SingleAppOccupiesCluster) {
  SparkConfig spark;
  ClusterConfig cc = ClusterConfig::PaperCluster();
  // 6 executors x 55GB + 20GB driver = 350GB of the 480GB cluster.
  EXPECT_EQ(MaxConcurrentSparkApps(spark, cc), 1);
}

}  // namespace
}  // namespace relm

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "api/session.h"
#include "spark/spark_model.h"

namespace relm {
namespace {

std::string ScriptPath(const std::string& name) {
  return std::string(RELM_SCRIPTS_DIR) + "/" + name;
}

/// Uncached Session: per-call costs match the pre-caching system, so
/// optimizer statistics below are deterministic per call.
Session UncachedSession() {
  return Session(ClusterConfig::PaperCluster(),
                 SessionOptions().WithPlanCacheEnabled(false));
}

TEST(SessionApiTest, CompileFileAndMissingFile) {
  Session sys = UncachedSession();
  ASSERT_TRUE(sys.RegisterMatrixMetadata("/data/X", 1000000, 1000).ok());
  ASSERT_TRUE(sys.RegisterMatrixMetadata("/data/y", 1000000, 1).ok());
  ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"}};
  auto prog = sys.CompileFile(ScriptPath("linreg_ds.dml"), args);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_GT((*prog)->total_blocks(), 0);
  EXPECT_FALSE(sys.CompileFile("/no/such/file.dml", args).ok());
}

TEST(SessionApiTest, OptimizeEstimateSimulateRoundTrip) {
  Session sys = UncachedSession();
  ASSERT_TRUE(sys.RegisterMatrixMetadata("/data/X", 1000000, 1000).ok());
  ASSERT_TRUE(sys.RegisterMatrixMetadata("/data/y", 1000000, 1).ok());
  ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"}};
  auto prog = sys.CompileFile(ScriptPath("linreg_cg.dml"), args);
  ASSERT_TRUE(prog.ok());
  auto outcome = sys.Optimize(prog->get());
  ASSERT_TRUE(outcome.ok());
  auto est = sys.EstimateCost(prog->get(), outcome->config);
  ASSERT_TRUE(est.ok());
  EXPECT_GT(*est, 0.0);
  auto clone = (*prog)->Clone();
  ASSERT_TRUE(clone.ok());
  auto run = sys.Simulate(clone->get(), outcome->config);
  ASSERT_TRUE(run.ok());
  // Measured within a reasonable factor of the estimate (no unknowns).
  EXPECT_LT(run->elapsed_seconds, *est * 3.0);
  EXPECT_GT(run->elapsed_seconds, *est * 0.3);
}

TEST(SessionApiTest, UncachedSessionsOptimizeDeterministically) {
  // Two independent uncached sessions derive bit-identical plans and
  // do identical optimizer work for the same program — nothing about
  // a session's private state (caches, artifact stores) may leak into
  // the optimization result.
  ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"}};
  auto optimize = [&args] {
    Session sys = UncachedSession();
    EXPECT_TRUE(sys.RegisterMatrixMetadata("/data/X", 1000000, 1000).ok());
    EXPECT_TRUE(sys.RegisterMatrixMetadata("/data/y", 1000000, 1).ok());
    auto prog = sys.CompileFile(ScriptPath("linreg_cg.dml"), args);
    EXPECT_TRUE(prog.ok());
    auto outcome = sys.Optimize(prog->get());
    EXPECT_TRUE(outcome.ok());
    return *outcome;
  };
  OptimizeOutcome first = optimize();
  OptimizeOutcome second = optimize();
  EXPECT_EQ(first.config.cp_heap, second.config.cp_heap);
  EXPECT_EQ(first.config.default_mr_heap, second.config.default_mr_heap);
  EXPECT_EQ(first.config.cp_cores, second.config.cp_cores);
  EXPECT_DOUBLE_EQ(first.stats.best_cost, second.stats.best_cost);
  EXPECT_EQ(first.stats.cp_grid_points, second.stats.cp_grid_points);
  EXPECT_EQ(first.stats.cost_invocations, second.stats.cost_invocations);
}

TEST(SessionApiTest, RegisterMatrixMetadataValidates) {
  Session session;
  EXPECT_FALSE(session.RegisterMatrixMetadata("", 10, 10).ok());
  EXPECT_FALSE(session.RegisterMatrixMetadata("/data/X", 0, 10).ok());
  EXPECT_FALSE(session.RegisterMatrixMetadata("/data/X", 10, -1).ok());
  EXPECT_FALSE(
      session.RegisterMatrixMetadata("/data/X", 10, 10, 1.5).ok());
  EXPECT_TRUE(session.RegisterMatrixMetadata("/data/X", 10, 10, 0.5).ok());
}

TEST(SessionApiTest, RealExecutionThroughSession) {
  Session session;
  ASSERT_TRUE(
      session.RegisterMatrix("/m/A", MatrixBlock::Constant(4, 4, 2.0))
          .ok());
  auto prog = session.CompileSource(
      "A = read(\"/m/A\")\nprint(\"sum=\" + sum(A))", {});
  ASSERT_TRUE(prog.ok());
  auto run = session.ExecuteReal(prog->get());
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->printed.size(), 1u);
  EXPECT_EQ(run->printed[0], "sum=32");
}

TEST(SessionApiTest, StaticBaselinesMatchPaper) {
  Session sys = UncachedSession();
  auto baselines = sys.StaticBaselines();
  ASSERT_EQ(baselines.size(), 4u);
  EXPECT_STREQ(baselines[0].name, "B-SS");
  EXPECT_EQ(baselines[0].config.cp_heap, 512 * kMB);
  EXPECT_EQ(baselines[0].config.default_mr_heap, 512 * kMB);
  EXPECT_STREQ(baselines[3].name, "B-LL");
  EXPECT_EQ(baselines[3].config.cp_heap, sys.cluster().MaxHeapSize());
  EXPECT_EQ(baselines[3].config.default_mr_heap, GigaBytes(4.4));
}

// ---- Spark model (Appendix D) ----

TEST(SparkModelTest, CacheSweetSpot) {
  SparkConfig spark;
  ClusterConfig cc = ClusterConfig::PaperCluster();
  SparkWorkload w;
  // 80 GB fits the ~198 GB aggregate cache; 800 GB does not.
  w.x = MatrixCharacteristics::Dense(10000000000LL / 1000, 1000);
  auto cached = EstimateSparkRun(spark, cc, w, SparkPlan::kHybrid);
  EXPECT_TRUE(cached.x_cached);
  w.x = MatrixCharacteristics::Dense(100000000000LL / 1000, 1000);
  auto uncached = EstimateSparkRun(spark, cc, w, SparkPlan::kHybrid);
  EXPECT_FALSE(uncached.x_cached);
  // Per-byte cost is far higher once the cache is blown.
  EXPECT_GT(uncached.seconds / 10.0, cached.seconds);
}

TEST(SparkModelTest, FullPlanPaysStageLatency) {
  SparkConfig spark;
  ClusterConfig cc = ClusterConfig::PaperCluster();
  SparkWorkload w;
  w.x = MatrixCharacteristics::Dense(10000, 1000);  // 80MB
  auto hybrid = EstimateSparkRun(spark, cc, w, SparkPlan::kHybrid);
  auto full = EstimateSparkRun(spark, cc, w, SparkPlan::kFull);
  EXPECT_GT(full.seconds, hybrid.seconds * 1.5);
  EXPECT_GT(full.stages, hybrid.stages);
}

TEST(SparkModelTest, StartupDominatesTinyData) {
  SparkConfig spark;
  ClusterConfig cc = ClusterConfig::PaperCluster();
  SparkWorkload w;
  w.x = MatrixCharacteristics::Dense(1000, 100);
  auto run = EstimateSparkRun(spark, cc, w, SparkPlan::kHybrid);
  EXPECT_GE(run.seconds, spark.app_startup_seconds);
  EXPECT_LT(run.seconds, spark.app_startup_seconds + 10);
}

TEST(SparkModelTest, SingleAppOccupiesCluster) {
  SparkConfig spark;
  ClusterConfig cc = ClusterConfig::PaperCluster();
  // 6 executors x 55GB + 20GB driver = 350GB of the 480GB cluster.
  EXPECT_EQ(MaxConcurrentSparkApps(spark, cc), 1);
}

}  // namespace
}  // namespace relm

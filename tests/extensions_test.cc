// Tests for the paper's discussed extensions (Sections 2.3 and 6):
// offer-based allocation (Mesos-style), CP cores as an additional
// resource dimension, and cluster-utilization-based adaptation.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "api/session.h"

namespace relm {
namespace {

// These suites predate plan caching: an uncached Session keeps every
// call's compile and optimize costs identical to the retired
// RelmSystem facade they were written against.
Session UncachedSession() {
  return Session(ClusterConfig::PaperCluster(),
                 SessionOptions().WithPlanCacheEnabled(false));
}

std::string ReadScript(const std::string& name) {
  std::ifstream in(std::string(RELM_SCRIPTS_DIR) + "/" + name);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class ExtensionsTest : public ::testing::Test {
 protected:
  std::unique_ptr<MlProgram> Compile(const std::string& script,
                                     int64_t rows, int64_t cols) {
    sys_.RegisterMatrixMetadata("/data/X", rows, cols);
    sys_.RegisterMatrixMetadata("/data/y", rows, 1);
    ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"},
                    {"B", "/out/B"},  {"model", "/out/w"}};
    auto p = sys_.CompileSource(ReadScript(script), args);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return std::move(*p);
  }

  Session sys_ = UncachedSession();
};

// ---- offer-based allocation (Section 2.3) ----

TEST_F(ExtensionsTest, OffersPickTheBestMatchingContainer) {
  auto prog = Compile("linreg_cg.dml", 1000000, 1000);  // 8GB, wants 12GB
  ResourceOptimizer opt(sys_.cluster(), OptimizerOptions{});
  // Offers include one container large enough for the in-memory plan.
  auto best = opt.OptimizeForOffers(prog.get(),
                                    {1 * kGB, 4 * kGB, 16 * kGB});
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  EXPECT_EQ(best->cp_heap, 16 * kGB);
}

TEST_F(ExtensionsTest, NonMatchingOffersStillYieldAPlan) {
  auto prog = Compile("linreg_cg.dml", 1000000, 1000);
  ResourceOptimizer opt(sys_.cluster(), OptimizerOptions{});
  // None of the offers fits X in memory: the optimizer must still pick
  // the cheapest distributed plan among the offered points.
  auto best = opt.OptimizeForOffers(prog.get(), {1 * kGB, 2 * kGB});
  ASSERT_TRUE(best.ok());
  EXPECT_TRUE(best->cp_heap == 1 * kGB || best->cp_heap == 2 * kGB);
}

TEST_F(ExtensionsTest, OfferErrors) {
  auto prog = Compile("linreg_ds.dml", 1000000, 1000);
  ResourceOptimizer opt(sys_.cluster(), OptimizerOptions{});
  EXPECT_FALSE(opt.OptimizeForOffers(prog.get(), {}).ok());
  // Offers outside the scheduler constraints are unusable.
  EXPECT_FALSE(
      opt.OptimizeForOffers(prog.get(), {200 * kGB}).ok());
}

// ---- CP cores dimension (Section 6) ----

TEST_F(ExtensionsTest, CoresShrinkBudgetAndSpeedUpCompute) {
  ResourceConfig one(8 * kGB, 512 * kMB, 1);
  ResourceConfig eight(8 * kGB, 512 * kMB, 8);
  EXPECT_LT(eight.CpBudget(), one.CpBudget());
  EXPECT_DOUBLE_EQ(one.CpComputeSpeedup(), 1.0);
  EXPECT_GT(eight.CpComputeSpeedup(), 4.0);
  EXPECT_LT(eight.CpComputeSpeedup(), 8.0);  // sub-linear
}

TEST_F(ExtensionsTest, MultiThreadedCpCheaperForComputeBoundPlan) {
  // LinregDS forced into a local plan: the normal equations are
  // compute-bound, so extra CP cores cut the estimated time.
  auto prog = Compile("linreg_ds.dml", 1000000, 1000);
  int64_t heap = sys_.cluster().MaxHeapSize();
  double t1 = *sys_.EstimateCost(prog.get(),
                                 ResourceConfig(heap, 4 * kGB, 1));
  double t8 = *sys_.EstimateCost(prog.get(),
                                 ResourceConfig(heap, 4 * kGB, 8));
  EXPECT_LT(t8, t1 * 0.5);
}

TEST_F(ExtensionsTest, OptimizerEnumeratesCores) {
  auto prog = Compile("linreg_cg.dml", 1000000, 1000);
  OptimizerOptions options;
  options.cp_core_options = {1, 2, 4, 8};
  ResourceOptimizer opt(sys_.cluster(), options);
  auto best = opt.Optimize(prog.get());
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  EXPECT_GE(best->cp_cores, 1);
  EXPECT_LE(best->cp_cores, 8);
  // Never worse than the single-threaded optimum under the model.
  OptimizerOptions single;
  ResourceOptimizer opt1(sys_.cluster(), single);
  auto best1 = opt1.Optimize(prog.get());
  ASSERT_TRUE(best1.ok());
  double cost_multi = *sys_.EstimateCost(prog.get(), *best);
  double cost_single = *sys_.EstimateCost(prog.get(), *best1);
  EXPECT_LE(cost_multi, cost_single * 1.03);
}

// ---- cluster-utilization-based adaptation (Section 6) ----

TEST_F(ExtensionsTest, LoadedClusterSlowsDistributedPlans) {
  auto prog = Compile("linreg_ds.dml", 10000000, 1000);  // 80GB
  ResourceConfig distributed(512 * kMB, 2 * kGB);
  SimOptions idle;
  idle.noise = 0;
  auto t_idle = sys_.Simulate(prog->Clone()->get(), distributed, idle);
  SimOptions loaded;
  loaded.noise = 0;
  loaded.cluster_load = 0.9;  // only 10% of the slots available
  auto t_loaded = sys_.Simulate(prog->Clone()->get(), distributed,
                                loaded);
  ASSERT_TRUE(t_idle.ok());
  ASSERT_TRUE(t_loaded.ok());
  EXPECT_GT(t_loaded->elapsed_seconds, t_idle->elapsed_seconds * 2.0);
}

TEST_F(ExtensionsTest, UtilizationChangeTriggersReoptimization) {
  // Iterative L2SVM on 8GB data, deliberately started on a distributed
  // configuration (B-SL). Mid-run the cluster becomes heavily loaded;
  // adaptation should re-optimize (fallback toward in-memory execution).
  auto prog = Compile("l2svm.dml", 1000000, 1000);
  ResourceConfig bsl(512 * kMB, GigaBytes(4.4));

  SimOptions no_adapt;
  no_adapt.noise = 0;
  no_adapt.cluster_load = 0.0;
  no_adapt.load_change_at_seconds = 20.0;
  no_adapt.new_cluster_load = 0.95;
  auto passive = sys_.Simulate(prog->Clone()->get(), bsl, no_adapt);
  ASSERT_TRUE(passive.ok());

  SimOptions adapt = no_adapt;
  adapt.enable_adaptation = true;
  auto active = sys_.Simulate(prog->Clone()->get(), bsl, adapt);
  ASSERT_TRUE(active.ok());

  bool load_event = false;
  for (const auto& ev : active->events) {
    if (ev.what.find("cluster load changed") != std::string::npos) {
      load_event = true;
    }
  }
  EXPECT_TRUE(load_event);
  EXPECT_GE(active->reoptimizations, 1);
  EXPECT_LT(active->elapsed_seconds, passive->elapsed_seconds)
      << "utilization-triggered adaptation must pay off";
}

}  // namespace
}  // namespace relm

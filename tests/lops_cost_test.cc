#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "cost/cost_model.h"
#include "hdfs/file_system.h"
#include "hops/ml_program.h"
#include "lops/compiler_backend.h"

namespace relm {
namespace {

std::string ReadScript(const std::string& name) {
  std::ifstream in(std::string(RELM_SCRIPTS_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing script " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class LopsTest : public ::testing::Test {
 protected:
  LopsTest() : cc_(ClusterConfig::PaperCluster()) {
    // 8GB dense X (1e6 x 1000), 8MB y — the Figure 1 setup.
    hdfs_.PutMetadata("/data/X",
                      MatrixCharacteristics::Dense(1000000, 1000));
    hdfs_.PutMetadata("/data/y", MatrixCharacteristics::Dense(1000000, 1));
  }

  std::unique_ptr<MlProgram> MustCompile(const std::string& src) {
    auto p = MlProgram::Compile(src, args_, &hdfs_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return std::move(*p);
  }

  RuntimeProgram MustGenerate(MlProgram* p, int64_t cp_heap,
                              int64_t mr_heap) {
    ResourceConfig rc(cp_heap, mr_heap);
    CompileCounters counters;
    auto rp = GenerateRuntimeProgram(p, cc_, rc, &counters);
    EXPECT_TRUE(rp.ok()) << rp.status().ToString();
    return std::move(*rp);
  }

  /// Finds the first hop of a kind in the annotated IR.
  static Hop* FindHop(MlProgram* p, HopKind kind) {
    for (StatementBlock* b : p->AllBlocksPreOrder()) {
      if (!p->has_ir(b->id())) continue;
      for (Hop* h : p->ir(b->id()).dag.TopoOrder()) {
        if (h->kind() == kind) return h;
      }
    }
    return nullptr;
  }

  SimulatedHdfs hdfs_;
  ClusterConfig cc_;
  ScriptArgs args_{{"X", "/data/X"}, {"Y", "/data/y"},
                   {"B", "/out/B"},  {"model", "/out/w"}};
};

TEST_F(LopsTest, SmallBudgetForcesMr) {
  auto p = MustCompile(
      "X = read(\"/data/X\")\nv = matrix(1, rows=ncol(X), cols=1)\n"
      "q = X %*% v\nprint(\"\" + sum(q))");
  // 512MB heap -> 358MB budget: the 8GB multiply cannot run in CP.
  RuntimeProgram rp = MustGenerate(p.get(), 512 * kMB, 512 * kMB);
  Hop* mm = FindHop(p.get(), HopKind::kMatMult);
  ASSERT_NE(mm, nullptr);
  EXPECT_EQ(mm->exec_type(), ExecType::kMR);
  EXPECT_GE(rp.TotalMrJobs(), 1);
}

TEST_F(LopsTest, LargeBudgetRunsInCp) {
  auto p = MustCompile(
      "X = read(\"/data/X\")\nv = matrix(1, rows=ncol(X), cols=1)\n"
      "q = X %*% v\nprint(\"\" + sum(q))");
  // 20GB heap -> 14GB budget: everything fits in CP.
  RuntimeProgram rp = MustGenerate(p.get(), 20 * kGB, 512 * kMB);
  Hop* mm = FindHop(p.get(), HopKind::kMatMult);
  ASSERT_NE(mm, nullptr);
  EXPECT_EQ(mm->exec_type(), ExecType::kCP);
  EXPECT_EQ(rp.TotalMrJobs(), 0);
}

TEST_F(LopsTest, MapMMBroadcastsVector) {
  auto p = MustCompile(
      "X = read(\"/data/X\")\nv = matrix(1, rows=ncol(X), cols=1)\n"
      "q = X %*% v\nprint(\"\" + sum(q))");
  MustGenerate(p.get(), 512 * kMB, 2 * kGB);
  Hop* mm = FindHop(p.get(), HopKind::kMatMult);
  ASSERT_NE(mm, nullptr);
  ASSERT_EQ(mm->exec_type(), ExecType::kMR);
  EXPECT_EQ(mm->mmult_method(), MMultMethod::kMapMM);
  EXPECT_EQ(mm->broadcast_input, 1);
}

TEST_F(LopsTest, TsmmPattern) {
  auto p = MustCompile(
      "X = read(\"/data/X\")\nA = t(X) %*% X\nprint(\"\" + sum(A))");
  MustGenerate(p.get(), 512 * kMB, 2 * kGB);
  Hop* mm = FindHop(p.get(), HopKind::kMatMult);
  ASSERT_NE(mm, nullptr);
  ASSERT_EQ(mm->exec_type(), ExecType::kMR);
  EXPECT_EQ(mm->mmult_method(), MMultMethod::kTSMM);
}

TEST_F(LopsTest, MapMMChainPattern) {
  auto p = MustCompile(
      "X = read(\"/data/X\")\nv = matrix(1, rows=ncol(X), cols=1)\n"
      "q = t(X) %*% (X %*% v)\nprint(\"\" + sum(q))");
  RuntimeProgram rp = MustGenerate(p.get(), 512 * kMB, 2 * kGB);
  bool found_chain = false;
  for (StatementBlock* b : p->AllBlocksPreOrder()) {
    if (!p->has_ir(b->id())) continue;
    for (Hop* h : p->ir(b->id()).dag.TopoOrder()) {
      if (h->kind() == HopKind::kMatMult &&
          h->mmult_method() == MMultMethod::kMapMMChain) {
        found_chain = true;
      }
    }
  }
  EXPECT_TRUE(found_chain);
  // The chain fuses into a single map-side job.
  EXPECT_EQ(rp.TotalMrJobs(), 1);
}

TEST_F(LopsTest, CpmmWhenNothingFits) {
  // Two large matrices: X %*% t(X) with tiny MR budget -> CPMM shuffle.
  auto p = MustCompile(
      "X = read(\"/data/X\")\nB = X %*% t(X)\nprint(\"\" + sum(B))");
  MustGenerate(p.get(), 512 * kMB, 512 * kMB);
  Hop* mm = FindHop(p.get(), HopKind::kMatMult);
  ASSERT_NE(mm, nullptr);
  ASSERT_EQ(mm->exec_type(), ExecType::kMR);
  EXPECT_EQ(mm->mmult_method(), MMultMethod::kCPMM);
}

TEST_F(LopsTest, PiggybackSharesScan) {
  // Two independent map-side aggregates over the same X pack into fewer
  // jobs than operators.
  auto p = MustCompile(
      "X = read(\"/data/X\")\n"
      "a = sum(X)\n"
      "b = sum(X ^ 2)\n"
      "print(\"\" + a + b)");
  RuntimeProgram rp = MustGenerate(p.get(), 512 * kMB, 2 * kGB);
  EXPECT_EQ(rp.TotalMrJobs(), 1);
}

TEST_F(LopsTest, PlanChangesWithMemory) {
  // The whole point of the paper: different memory configs yield
  // different plans with different MR-job counts.
  std::string src = ReadScript("linreg_cg.dml");
  auto prog = MlProgram::Compile(src, args_, &hdfs_);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  RuntimeProgram small = MustGenerate(prog->get(), 512 * kMB, 512 * kMB);
  int small_jobs = small.TotalMrJobs();
  RuntimeProgram large = MustGenerate(prog->get(), 20 * kGB, 512 * kMB);
  int large_jobs = large.TotalMrJobs();
  EXPECT_GT(small_jobs, 0);
  EXPECT_EQ(large_jobs, 0);
}

// ---- cost model ----

class CostTest : public LopsTest {};

TEST_F(CostTest, CostIsPositiveAndFinite) {
  auto p = MustCompile(
      "X = read(\"/data/X\")\nprint(\"\" + sum(X))");
  RuntimeProgram rp = MustGenerate(p.get(), 20 * kGB, 512 * kMB);
  CostModel cm(cc_);
  double c = cm.EstimateProgramCost(rp);
  EXPECT_GT(c, 0.0);
  EXPECT_LT(c, 1e6);
  EXPECT_EQ(cm.num_invocations(), 1);
}

TEST_F(CostTest, LinregDsPrefersDistributed) {
  // Figure 1 (left): for 1000 features, DS is compute-intensive and
  // prefers a massively parallel plan with small CP memory.
  std::string src = ReadScript("linreg_ds.dml");
  auto prog = MlProgram::Compile(src, args_, &hdfs_);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  CostModel cm(cc_);

  RuntimeProgram distributed =
      MustGenerate(prog->get(), 2 * kGB, 2 * kGB);
  double cost_distributed = cm.EstimateProgramCost(distributed);

  RuntimeProgram local = MustGenerate(prog->get(), 20 * kGB, 2 * kGB);
  double cost_local = cm.EstimateProgramCost(local);

  EXPECT_LT(cost_distributed, cost_local)
      << "distributed=" << cost_distributed << " local=" << cost_local;
}

TEST_F(CostTest, LinregCgPrefersLargeCp) {
  // Figure 1 (right): iterative CG is IO-bound and prefers a large CP
  // that reads X once and iterates in memory.
  std::string src = ReadScript("linreg_cg.dml");
  auto prog = MlProgram::Compile(src, args_, &hdfs_);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  CostModel cm(cc_);

  RuntimeProgram small = MustGenerate(prog->get(), 512 * kMB, 2 * kGB);
  double cost_small = cm.EstimateProgramCost(small);

  RuntimeProgram large = MustGenerate(prog->get(), 20 * kGB, 2 * kGB);
  double cost_large = cm.EstimateProgramCost(large);

  EXPECT_LT(cost_large, cost_small)
      << "large=" << cost_large << " small=" << cost_small;
}

TEST_F(CostTest, LoopCostScalesWithIterations) {
  auto p5 = MustCompile(
      "X = read(\"/data/X\")\ns = 0\ni = 0\n"
      "while (i < 5) { s = s + sum(X %*% matrix(1, rows=ncol(X), cols=1))\n"
      "  i = i + 1 }\n"
      "print(\"\" + s)");
  auto p20 = MustCompile(
      "X = read(\"/data/X\")\ns = 0\ni = 0\n"
      "while (i < 20) { s = s + sum(X %*% matrix(1, rows=ncol(X), cols=1))\n"
      "  i = i + 1 }\n"
      "print(\"\" + s)");
  CostModel cm(cc_);
  RuntimeProgram r5 = MustGenerate(p5.get(), 512 * kMB, 2 * kGB);
  RuntimeProgram r20 = MustGenerate(p20.get(), 512 * kMB, 2 * kGB);
  double c5 = cm.EstimateProgramCost(r5);
  double c20 = cm.EstimateProgramCost(r20);
  EXPECT_GT(c20, 2.0 * c5);
}

TEST_F(CostTest, WarmIterationsCheaperThanCold) {
  // With a large CP, the loop body re-uses the in-memory X: total cost
  // must be far below iterations * cold-read cost.
  auto p = MustCompile(
      "X = read(\"/data/X\")\ns = 0\ni = 0\n"
      "while (i < 10) { s = s + sum(X)\n i = i + 1 }\n"
      "print(\"\" + s)");
  CostModel cm(cc_);
  RuntimeProgram rp = MustGenerate(p.get(), 20 * kGB, 2 * kGB);
  double total = cm.EstimateProgramCost(rp);
  // One cold read of 8GB at 250MB/s is ~32s; ten would be ~320s.
  EXPECT_LT(total, 150.0);
}

TEST_F(CostTest, MrJobLatencyDominatesSmallData) {
  // Tiny data forced through MR (by a tiny CP budget) pays job latency;
  // the same plan in CP is nearly free.
  SimulatedHdfs hdfs;
  hdfs.PutMetadata("/small/X", MatrixCharacteristics::Dense(10000, 1000));
  auto prog = MlProgram::Compile(
      "X = read(\"/small/X\")\nA = t(X) %*% X\nprint(\"\" + sum(A))",
      {}, &hdfs);
  ASSERT_TRUE(prog.ok());
  CostModel cm(cc_);
  CompileCounters counters;
  RuntimeProgram mr = *GenerateRuntimeProgram(
      prog->get(), cc_, ResourceConfig(512 * kMB, 2 * kGB), &counters);
  // 80MB: t(X)%*%X op mem ~168MB < 358MB budget -> CP actually. Force MR
  // via an even smaller CP heap is impossible (512MB is minimum), so
  // check the CP cost is small instead.
  double cp_cost = cm.EstimateProgramCost(mr);
  EXPECT_LT(cp_cost, cc_.mr_job_latency * 3);
}

TEST_F(CostTest, AllScriptsCostableUnderAllConfigs) {
  for (const char* script :
       {"linreg_ds.dml", "linreg_cg.dml", "l2svm.dml", "mlogreg.dml",
        "glm.dml"}) {
    std::string src = ReadScript(script);
    auto prog = MlProgram::Compile(src, args_, &hdfs_);
    ASSERT_TRUE(prog.ok()) << script << ": " << prog.status().ToString();
    CostModel cm(cc_);
    for (int64_t cp : {512 * kMB, 4 * kGB, 32 * kGB}) {
      for (int64_t mr : {512 * kMB, 4 * kGB}) {
        RuntimeProgram rp = MustGenerate(prog->get(), cp, mr);
        double c = cm.EstimateProgramCost(rp);
        EXPECT_GT(c, 0.0) << script;
        EXPECT_LT(c, 1e7) << script;
      }
    }
  }
}

}  // namespace
}  // namespace relm

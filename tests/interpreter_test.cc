#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "hops/ml_program.h"
#include "matrix/kernels.h"
#include "runtime/interpreter.h"

namespace relm {
namespace {

std::string ReadScript(const std::string& name) {
  std::ifstream in(std::string(RELM_SCRIPTS_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing script " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class InterpreterTest : public ::testing::Test {
 protected:
  Result<std::unique_ptr<MlProgram>> Compile(const std::string& src,
                                             ScriptArgs args = {}) {
    return MlProgram::Compile(src, args, &hdfs_);
  }

  Status RunSource(const std::string& src, ScriptArgs args = {}) {
    auto p = Compile(src, args);
    RELM_RETURN_IF_ERROR(p.status());
    program_ = std::move(*p);
    interp_ = std::make_unique<Interpreter>(program_.get(), &hdfs_);
    return interp_->Run();
  }

  /// Finds the first printed line starting with `prefix` and parses the
  /// remainder as a number. Dead-code elimination removes variables that
  /// are not live at program end, so results are observed via print().
  double PrintedNumber(const std::string& prefix) {
    for (const auto& line : interp_->printed()) {
      if (line.rfind(prefix, 0) == 0) {
        return std::strtod(line.c_str() + prefix.size(), nullptr);
      }
    }
    ADD_FAILURE() << "no printed line starts with '" << prefix << "'";
    return std::numeric_limits<double>::quiet_NaN();
  }

  SimulatedHdfs hdfs_;
  std::unique_ptr<MlProgram> program_;
  std::unique_ptr<Interpreter> interp_;
};

TEST_F(InterpreterTest, ScalarArithmeticAndPrint) {
  ASSERT_TRUE(RunSource("a = 2 + 3 * 4\nb = a ^ 2\n"
                        "print(\"b=\" + b)")
                  .ok());
  ASSERT_EQ(interp_->printed().size(), 1u);
  EXPECT_EQ(interp_->printed()[0], "b=196");
}

TEST_F(InterpreterTest, ControlFlow) {
  ASSERT_TRUE(RunSource("s = 0\n"
                        "for (i in 1:10) { s = s + i }\n"
                        "t = 0\nj = 0\n"
                        "while (j < 5) { t = t + 2\n j = j + 1 }\n"
                        "if (s > t) { w = 1 } else { w = 2 }\n"
                        "print(\"\" + s + \",\" + t + \",\" + w)")
                  .ok());
  EXPECT_EQ(interp_->printed().back(), "55,10,1");
}

TEST_F(InterpreterTest, MatrixPipeline) {
  Status st = RunSource(
      "X = matrix(2, rows=3, cols=4)\n"
      "v = matrix(1, rows=4, cols=1)\n"
      "q = X %*% v\n"
      "s = sum(q)\n"
      "print(\"s=\" + s)");
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(PrintedNumber("s="), 24.0);
}

TEST_F(InterpreterTest, ReadWriteHdfs) {
  hdfs_.PutMatrix("/in/A", MatrixBlock::Constant(2, 2, 3.0));
  Status st = RunSource(
      "A = read(\"/in/A\")\n"
      "B = A * A\n"
      "write(B, \"/out/B\")");
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto f = hdfs_.Get("/out/B");
  ASSERT_TRUE(f.ok());
  ASSERT_NE(f->data, nullptr);
  EXPECT_EQ(f->data->Get(1, 1), 9.0);
}

TEST_F(InterpreterTest, UserFunctionsMultiReturn) {
  Status st = RunSource(
      "stats = function(matrix[double] A) "
      "return (double s, double m) { s = sum(A)\n m = s / nrow(A) }\n"
      "X = matrix(5, rows=4, cols=1)\n"
      "[total, avg] = stats(X)\n"
      "print(\"t=\" + total)\n"
      "print(\"a=\" + avg)");
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(PrintedNumber("t="), 20.0);
  EXPECT_EQ(PrintedNumber("a="), 5.0);
}

TEST_F(InterpreterTest, WhileLoopCapGuards) {
  auto p = Compile("x = 1\nwhile (x > 0) { x = x + 1 }\nprint(\"\" + x)");
  ASSERT_TRUE(p.ok());
  Interpreter interp(p->get(), &hdfs_);
  interp.set_max_loop_iterations(100);
  EXPECT_FALSE(interp.Run().ok());
}

TEST_F(InterpreterTest, IndexingAndTable) {
  Status st = RunSource(
      "y = seq(1, 4, 1)\n"
      "Y = table(seq(1, 4, 1), y)\n"
      "d = sum(diag(Y))\n"
      "sub = Y[1:2, 1:2]\n"
      "s2 = sum(sub)\n"
      "print(\"d=\" + d)\n"
      "print(\"s2=\" + s2)");
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(PrintedNumber("d="), 4.0);  // identity-like indicator
  EXPECT_EQ(PrintedNumber("s2="), 2.0);
}

/// End-to-end algorithm correctness on synthetic data.
class AlgorithmTest : public InterpreterTest {
 protected:
  /// y = X beta_true (noise-free), well conditioned.
  void MakeRegressionData(int64_t n, int64_t m) {
    Random rng(7);
    MatrixBlock x = MatrixBlock::Rand(n, m, 1.0, -1, 1, &rng);
    beta_true_ = MatrixBlock::Rand(m, 1, 1.0, -2, 2, &rng);
    auto y = MatMult(x, beta_true_);
    ASSERT_TRUE(y.ok());
    hdfs_.PutMatrix("/data/X", std::move(x));
    hdfs_.PutMatrix("/data/y", std::move(*y));
  }

  ScriptArgs DefaultArgs() {
    return ScriptArgs{{"X", "/data/X"}, {"Y", "/data/y"},
                      {"B", "/out/B"},  {"model", "/out/w"},
                      {"reg", "1e-12"}};
  }

  MatrixBlock beta_true_;
};

TEST_F(AlgorithmTest, LinregDsRecoversCoefficients) {
  MakeRegressionData(200, 10);
  Status st = RunSource(ReadScript("linreg_ds.dml"), DefaultArgs());
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto beta = hdfs_.Get("/out/B");
  ASSERT_TRUE(beta.ok());
  EXPECT_TRUE(beta->data->ApproxEquals(beta_true_, 1e-6));
  // R2 should be ~1 on noise-free data.
  EXPECT_NEAR(PrintedNumber("R2="), 1.0, 1e-9);
}

TEST_F(AlgorithmTest, LinregCgMatchesDirectSolve) {
  MakeRegressionData(200, 10);
  ScriptArgs args = DefaultArgs();
  args["maxi"] = "50";
  args["tol"] = "1e-14";
  Status st = RunSource(ReadScript("linreg_cg.dml"), args);
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto beta = hdfs_.Get("/out/B");
  ASSERT_TRUE(beta.ok());
  EXPECT_TRUE(beta->data->ApproxEquals(beta_true_, 1e-5));
}

TEST_F(AlgorithmTest, L2svmSeparatesSeparableData) {
  // Linearly separable: y = sign(x1 + x2).
  Random rng(11);
  int n = 200;
  MatrixBlock x = MatrixBlock::Rand(n, 4, 1.0, -1, 1, &rng);
  MatrixBlock y(n, 1, false);
  for (int i = 0; i < n; ++i) {
    double v = x.Get(i, 0) + x.Get(i, 1);
    if (std::fabs(v) < 0.1) {
      // keep a margin
      x.Set(i, 0, x.Get(i, 0) + (v >= 0 ? 0.2 : -0.2));
      v = x.Get(i, 0) + x.Get(i, 1);
    }
    y.Set(i, 0, v > 0 ? 1.0 : -1.0);
  }
  hdfs_.PutMatrix("/data/X", x);
  hdfs_.PutMatrix("/data/y", y);
  ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"},
                  {"model", "/out/w"}, {"maxiter", "20"}};
  Status st = RunSource(ReadScript("l2svm.dml"), args);
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto w = hdfs_.Get("/out/w");
  ASSERT_TRUE(w.ok());
  // Training accuracy of the learned model.
  auto scores = MatMult(x, *w->data);
  ASSERT_TRUE(scores.ok());
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    double pred = scores->Get(i, 0) > 0 ? 1.0 : -1.0;
    if (pred == y.Get(i, 0)) ++correct;
  }
  EXPECT_GE(correct, n * 95 / 100);
}

TEST_F(AlgorithmTest, MlogregLearnsClasses) {
  // Three well-separated clusters in 2D.
  Random rng(13);
  int per = 60;
  int n = 3 * per;
  MatrixBlock x(n, 2, false);
  MatrixBlock y(n, 1, false);
  double centers[3][2] = {{4, 0}, {-4, 4}, {0, -5}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per; ++i) {
      int r = c * per + i;
      x.Set(r, 0, centers[c][0] + rng.Uniform(-1, 1));
      x.Set(r, 1, centers[c][1] + rng.Uniform(-1, 1));
      y.Set(r, 0, c + 1);
    }
  }
  hdfs_.PutMatrix("/data/X", x);
  hdfs_.PutMatrix("/data/y", y);
  ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"},
                  {"moi", "60"},    {"mii", "20"},    {"reg", "0.001"}};
  Status st = RunSource(ReadScript("mlogreg.dml"), args);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GE(PrintedNumber("training accuracy: "), 0.9);
}

TEST_F(AlgorithmTest, GlmPoissonFitsCounts) {
  // Counts with log-linear mean mu = exp(0.5*x1 - 0.3*x2 + 1).
  Random rng(17);
  int n = 300;
  MatrixBlock x(n, 2, false);
  MatrixBlock y(n, 1, false);
  for (int i = 0; i < n; ++i) {
    double x1 = rng.Uniform(-1, 1);
    double x2 = rng.Uniform(-1, 1);
    x.Set(i, 0, x1);
    x.Set(i, 1, x2);
    double mu = std::exp(0.5 * x1 - 0.3 * x2 + 1.0);
    // Deterministic pseudo-Poisson: round mu with jitter.
    y.Set(i, 0, std::max(0.0, std::round(mu + rng.Uniform(-0.5, 0.5))));
  }
  hdfs_.PutMatrix("/data/X", x);
  hdfs_.PutMatrix("/data/y", y);
  ScriptArgs args{{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"},
                  {"icpt", "1"},    {"moi", "25"},    {"mii", "10"},
                  {"reg", "0.0001"}};
  Status st = RunSource(ReadScript("glm.dml"), args);
  ASSERT_TRUE(st.ok()) << st.ToString();
  // The fitted model must improve strongly over the null deviance.
  EXPECT_GT(PrintedNumber("PSEUDO_R2="), 0.3);
  EXPECT_LT(PrintedNumber("DEVIANCE="), PrintedNumber("NULL_DEVIANCE="));
}

}  // namespace
}  // namespace relm

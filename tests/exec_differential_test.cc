// Serial/parallel differential testing of the unified execution
// engine: every shipped DML script is executed through the interpreter
// on real data with the serial reference engine and with the parallel
// engine at 1, 2, and 8 workers — symbol tables, printed output, and
// the HDFS namespace must be bitwise identical. The commit-order
// verification inside the engine (on by default) independently checks
// every parallel block against the serial effect order while these
// tests run.

#include <cmath>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/dataflow.h"
#include "common/random.h"
#include "exec/worker_pool.h"
#include "hdfs/file_system.h"
#include "hops/ml_program.h"
#include "matrix/kernels.h"
#include "runtime/interpreter.h"

namespace relm {
namespace {

std::string ReadScript(const std::string& name) {
  std::ifstream in(std::string(RELM_SCRIPTS_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing script " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool BitsEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

::testing::AssertionResult MatricesIdentical(const MatrixBlock& a,
                                             const MatrixBlock& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  if (a.is_sparse() != b.is_sparse()) {
    return ::testing::AssertionFailure() << "representation mismatch";
  }
  if (a.is_sparse()) {
    if (a.row_ptr() != b.row_ptr() || a.col_idx() != b.col_idx() ||
        !BitsEqual(a.values(), b.values())) {
      return ::testing::AssertionFailure() << "sparse payload mismatch";
    }
    return ::testing::AssertionSuccess();
  }
  if (!BitsEqual(a.dense(), b.dense())) {
    return ::testing::AssertionFailure() << "dense payload mismatch";
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult ValuesIdentical(const Value& a, const Value& b) {
  if (a.dtype != b.dtype) {
    return ::testing::AssertionFailure() << "dtype mismatch";
  }
  if (std::memcmp(&a.scalar, &b.scalar, sizeof(double)) != 0) {
    return ::testing::AssertionFailure()
           << "scalar bits differ: " << a.scalar << " vs " << b.scalar;
  }
  if (a.str != b.str) {
    return ::testing::AssertionFailure() << "string mismatch";
  }
  if ((a.matrix == nullptr) != (b.matrix == nullptr)) {
    return ::testing::AssertionFailure() << "matrix presence mismatch";
  }
  if (a.matrix != nullptr) return MatricesIdentical(*a.matrix, *b.matrix);
  return ::testing::AssertionSuccess();
}

/// Everything one run produces, captured for comparison.
struct RunCapture {
  std::map<std::string, Value> symbols;
  std::vector<std::string> printed;
  std::vector<std::string> hdfs_paths;
  std::map<std::string, std::shared_ptr<const MatrixBlock>> hdfs_data;
  exec::ExecStats stats;
};

void ExpectIdenticalRuns(const RunCapture& serial, const RunCapture& other,
                         const std::string& label) {
  EXPECT_EQ(serial.printed, other.printed) << label;
  ASSERT_EQ(serial.hdfs_paths, other.hdfs_paths) << label;
  for (const auto& [path, data] : serial.hdfs_data) {
    auto it = other.hdfs_data.find(path);
    ASSERT_NE(it, other.hdfs_data.end()) << label << " missing " << path;
    ASSERT_EQ(data == nullptr, it->second == nullptr) << label << " " << path;
    if (data != nullptr) {
      EXPECT_TRUE(MatricesIdentical(*data, *it->second))
          << label << " " << path;
    }
  }
  ASSERT_EQ(serial.symbols.size(), other.symbols.size()) << label;
  for (const auto& [name, value] : serial.symbols) {
    auto it = other.symbols.find(name);
    ASSERT_NE(it, other.symbols.end()) << label << " missing symbol " << name;
    EXPECT_TRUE(ValuesIdentical(value, it->second))
        << label << " symbol " << name;
  }
}

/// One script + its real input data, regenerated identically per run.
struct ScriptCase {
  const char* script;
  ScriptArgs args;
  void (*setup)(SimulatedHdfs* hdfs);
};

void RegressionInputs(SimulatedHdfs* hdfs) {
  Random rng(42);
  const int n = 200;
  const int m = 8;
  MatrixBlock x = MatrixBlock::Rand(n, m, 1.0, -1, 1, &rng);
  MatrixBlock beta = MatrixBlock::Rand(m, 1, 1.0, -2, 2, &rng);
  MatrixBlock y = *MatMult(x, beta);
  for (int64_t i = 0; i < n; ++i) {
    y.Set(i, 0, y.Get(i, 0) + rng.Uniform(-0.01, 0.01));
  }
  hdfs->PutMatrix("/data/X", x);
  hdfs->PutMatrix("/data/y", y);
}

void SvmInputs(SimulatedHdfs* hdfs) {
  Random rng(42);
  const int n = 200;
  MatrixBlock x = MatrixBlock::Rand(n, 8, 1.0, -1, 1, &rng);
  MatrixBlock y(n, 1, false);
  for (int64_t i = 0; i < n; ++i) {
    y.Set(i, 0, x.Get(i, 0) + x.Get(i, 1) > 0 ? 1.0 : -1.0);
  }
  hdfs->PutMatrix("/data/X", x);
  hdfs->PutMatrix("/data/y", y);
}

void MultinomialInputs(SimulatedHdfs* hdfs) {
  Random rng(42);
  const int n = 150;
  MatrixBlock x(n, 2, false);
  MatrixBlock y(n, 1, false);
  double centers[3][2] = {{4, 0}, {-4, 4}, {0, -5}};
  for (int64_t i = 0; i < n; ++i) {
    int c = static_cast<int>(i % 3);
    x.Set(i, 0, centers[c][0] + rng.Uniform(-1, 1));
    x.Set(i, 1, centers[c][1] + rng.Uniform(-1, 1));
    y.Set(i, 0, c + 1);
  }
  hdfs->PutMatrix("/data/X", x);
  hdfs->PutMatrix("/data/y", y);
}

void PoissonInputs(SimulatedHdfs* hdfs) {
  Random rng(42);
  const int n = 200;
  MatrixBlock x = MatrixBlock::Rand(n, 8, 1.0, -1, 1, &rng);
  MatrixBlock y(n, 1, false);
  for (int64_t i = 0; i < n; ++i) {
    double mu = std::exp(0.5 * x.Get(i, 0) - 0.3 * x.Get(i, 1) + 1.0);
    y.Set(i, 0, std::max(0.0, std::round(mu + rng.Uniform(-0.5, 0.5))));
  }
  hdfs->PutMatrix("/data/X", x);
  hdfs->PutMatrix("/data/y", y);
}

const ScriptCase kCases[] = {
    {"linreg_ds.dml",
     {{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"}},
     RegressionInputs},
    {"linreg_cg.dml",
     {{"X", "/data/X"}, {"Y", "/data/y"}, {"B", "/out/B"}, {"maxi", "25"}},
     RegressionInputs},
    {"l2svm.dml",
     {{"X", "/data/X"},
      {"Y", "/data/y"},
      {"model", "/out/w"},
      {"maxiter", "15"}},
     SvmInputs},
    {"mlogreg.dml",
     {{"X", "/data/X"},
      {"Y", "/data/y"},
      {"B", "/out/B"},
      {"moi", "20"},
      {"mii", "10"},
      {"reg", "0.001"}},
     MultinomialInputs},
    {"glm.dml",
     {{"X", "/data/X"},
      {"Y", "/data/y"},
      {"B", "/out/B"},
      {"icpt", "1"},
      {"moi", "10"},
      {"mii", "5"},
      {"reg", "0.0001"}},
     PoissonInputs},
};

RunCapture RunOnce(const ScriptCase& c, int workers) {
  RunCapture cap;
  SimulatedHdfs hdfs;
  c.setup(&hdfs);
  auto prog = MlProgram::Compile(ReadScript(c.script), c.args, &hdfs);
  EXPECT_TRUE(prog.ok()) << c.script << ": " << prog.status().ToString();
  if (!prog.ok()) return cap;
  Interpreter interp(prog->get(), &hdfs);
  exec::ExecOptions opts;
  opts.workers = workers;
  interp.set_exec_options(opts);
  Status st = interp.Run();
  EXPECT_TRUE(st.ok()) << c.script << " workers=" << workers << ": "
                       << st.ToString();
  cap.symbols = interp.symbols();
  cap.printed = interp.printed();
  cap.stats = interp.exec_stats();
  cap.hdfs_paths = hdfs.ListPaths();
  for (const std::string& path : cap.hdfs_paths) {
    auto file = hdfs.Get(path);
    if (file.ok()) cap.hdfs_data[path] = file->data;
  }
  return cap;
}

class ExecDifferentialTest
    : public ::testing::TestWithParam<const ScriptCase*> {};

TEST_P(ExecDifferentialTest, ParallelMatchesSerialBitwise) {
  const ScriptCase& c = *GetParam();
  RunCapture serial = RunOnce(c, 1);
  EXPECT_EQ(serial.stats.parallel_blocks, 0) << "workers=1 must stay serial";
  for (int workers : {2, 8}) {
    RunCapture parallel = RunOnce(c, workers);
    ExpectIdenticalRuns(
        serial, parallel,
        std::string(c.script) + " workers=" + std::to_string(workers));
  }
}

std::string CaseName(
    const ::testing::TestParamInfo<const ScriptCase*>& info) {
  std::string name = info.param->script;
  return name.substr(0, name.find('.'));
}

INSTANTIATE_TEST_SUITE_P(AllScripts, ExecDifferentialTest,
                         ::testing::Values(&kCases[0], &kCases[1],
                                           &kCases[2], &kCases[3],
                                           &kCases[4]),
                         CaseName);

// ---------------------------------------------------------------------
// Dataflow soundness differential: the static resident-model peak bound
// (analysis/dataflow.h) must cover the MemoryManager high-water mark
// actually observed when the script executes on real data — under an
// ample budget (the honest peak) and under a tight one (eviction keeps
// usage below the bound by construction, but the claim must still
// hold). Scripts with user functions may saturate to the unknown-size
// sentinel, which covers any observation trivially; that is the
// documented "no static verdict" case, not a gap.

class DataflowSoundnessTest
    : public ::testing::TestWithParam<const ScriptCase*> {};

TEST_P(DataflowSoundnessTest, StaticResidentBoundCoversObservedHighWater) {
  const ScriptCase& c = *GetParam();
  // The engine only instantiates a MemoryManager under a finite budget,
  // so "ample" is a budget no small-input script comes near (1 GB), not
  // zero. The tight 64 KB budget forces eviction mid-run.
  for (int64_t budget : {int64_t{1} << 30, int64_t{64} * 1024}) {
    SimulatedHdfs hdfs;
    c.setup(&hdfs);
    auto prog = MlProgram::Compile(ReadScript(c.script), c.args, &hdfs);
    ASSERT_TRUE(prog.ok()) << c.script << ": " << prog.status().ToString();
    // Program-level analysis against the same (small, real) metadata
    // the run uses — the bound and the observation share one world.
    analysis::DataflowSummary df = analysis::AnalyzeDataflow(*prog->get());
    Interpreter interp(prog->get(), &hdfs);
    exec::ExecOptions opts;
    opts.workers = 1;
    opts.memory_budget = budget;
    interp.set_exec_options(opts);
    ASSERT_TRUE(interp.Run().ok()) << c.script;
    const int64_t high_water = interp.exec_stats().high_water_bytes;
    EXPECT_GT(high_water, 0) << c.script;
    EXPECT_GE(df.peak.resident_bytes, high_water)
        << c.script << " budget=" << budget
        << ": static bound is unsound vs the observed high-water mark";
  }
}

INSTANTIATE_TEST_SUITE_P(AllScripts, DataflowSoundnessTest,
                         ::testing::Values(&kCases[0], &kCases[1],
                                           &kCases[2], &kCases[3],
                                           &kCases[4]),
                         CaseName);

/// On a straight-line, function-free script the bound should not just
/// be sound but useful: within a small constant factor of the observed
/// peak under an ample budget.
TEST(DataflowSoundnessTest, BoundIsTightOnLinearScript) {
  const ScriptCase& c = kCases[0];  // linreg_ds: direct solve, no loops
  SimulatedHdfs hdfs;
  c.setup(&hdfs);
  auto prog = MlProgram::Compile(ReadScript(c.script), c.args, &hdfs);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  analysis::DataflowSummary df = analysis::AnalyzeDataflow(*prog->get());
  ASSERT_TRUE(df.peak.bounded);
  Interpreter interp(prog->get(), &hdfs);
  exec::ExecOptions opts;
  opts.workers = 1;
  opts.memory_budget = int64_t{1} << 30;  // ample: tracks, never evicts
  interp.set_exec_options(opts);
  ASSERT_TRUE(interp.Run().ok());
  const int64_t high_water = interp.exec_stats().high_water_bytes;
  ASSERT_GT(high_water, 0);
  EXPECT_GE(df.peak.resident_bytes, high_water);
  EXPECT_LE(df.peak.resident_bytes, 8 * high_water)
      << "bound " << df.peak.resident_bytes << " is more than 8x the "
      << "observed peak " << high_water << ": uselessly loose";
}

/// The engine must also be bitwise-deterministic when a memory budget
/// forces spills mid-run, in combination with parallel scheduling.
/// Three loop-carried 32 KB matrices under a 48 KB budget guarantee
/// evictions on every iteration.
TEST(ExecDifferentialTest, BudgetedParallelMatchesSerial) {
  const std::string src =
      "X = read($X)\n"
      "A = X %*% X\n"
      "B = t(X)\n"
      "for (i in 1:4) {\n"
      "  A = t(A) + X\n"
      "  B = B %*% X\n"
      "}\n"
      "print(\"a=\" + sum(A))\n"
      "print(\"b=\" + sum(B))\n";
  Random rng(7);
  MatrixBlock x = MatrixBlock::Rand(64, 64, 1.0, -1, 1, &rng);

  auto run = [&](int workers, int64_t budget, exec::ExecStats* stats) {
    SimulatedHdfs hdfs;
    hdfs.PutMatrix("/data/X", x);
    auto prog = MlProgram::Compile(src, {{"X", "/data/X"}}, &hdfs);
    EXPECT_TRUE(prog.ok()) << prog.status().ToString();
    Interpreter interp(prog->get(), &hdfs);
    exec::ExecOptions opts;
    opts.workers = workers;
    opts.memory_budget = budget;
    interp.set_exec_options(opts);
    EXPECT_TRUE(interp.Run().ok());
    if (stats != nullptr) *stats = interp.exec_stats();
    return std::make_pair(interp.symbols(), interp.printed());
  };

  auto [serial_symbols, serial_printed] = run(1, 0, nullptr);
  exec::ExecStats stats;
  auto [budget_symbols, budget_printed] = run(8, 48 * 1024, &stats);
  EXPECT_GT(stats.spill_bytes, 0);
  EXPECT_GT(stats.reload_bytes, 0);
  EXPECT_EQ(serial_printed, budget_printed);
  ASSERT_EQ(serial_symbols.size(), budget_symbols.size());
  for (const auto& [name, value] : serial_symbols) {
    auto it = budget_symbols.find(name);
    ASSERT_NE(it, budget_symbols.end()) << name;
    EXPECT_TRUE(ValuesIdentical(value, it->second)) << name;
  }
}

// ---------------------------------------------------------------------
// Chaos soak: extends the differential contract to the failure domain.
// Every shipped script runs under seeded fault injection (task aborts,
// spill-write/reload losses, HDFS I/O errors, budget pressure, stalls)
// with a retry loop around it. The invariant gated here is the PR's
// acceptance criterion: every attempt either fails with the typed,
// retryable Unavailable error or produces results bitwise-identical to
// the fault-free run — never a crash, never silent corruption. The
// injector persists across attempts, so retries draw fresh faults and
// the soak terminates.

class ChaosSoakTest : public ::testing::TestWithParam<const ScriptCase*> {};

TEST_P(ChaosSoakTest, TypedErrorOrBitwiseIdenticalResult) {
  const ScriptCase& c = *GetParam();
  RunCapture reference = RunOnce(c, 1);  // fault-free serial reference

  exec::FaultPolicy policy;
  policy.WithSeed(20260807)
      .WithRate(exec::FaultSite::kTaskAbort, 0.001)
      .WithRate(exec::FaultSite::kTaskStall, 0.001)
      .WithRate(exec::FaultSite::kSpillWrite, 0.02)
      .WithRate(exec::FaultSite::kSpillReload, 0.02)
      .WithRate(exec::FaultSite::kHdfsRead, 0.05)
      .WithRate(exec::FaultSite::kHdfsWrite, 0.05)
      .WithRate(exec::FaultSite::kBudgetPressure, 0.02)
      // Short scripts draw too few times for the rates above to fire
      // reliably; forcing the first input read to fail guarantees every
      // script sees at least one injected fault and one retry.
      .WithFirstN(exec::FaultSite::kHdfsRead, 1)
      .WithStallMicros(50);
  ASSERT_TRUE(policy.Validate().ok());
  exec::ChaosInjector chaos(policy);

  constexpr int kMaxAttempts = 25;
  bool succeeded = false;
  for (int attempt = 1; attempt <= kMaxAttempts && !succeeded; ++attempt) {
    SimulatedHdfs hdfs;
    c.setup(&hdfs);
    auto prog = MlProgram::Compile(ReadScript(c.script), c.args, &hdfs);
    ASSERT_TRUE(prog.ok()) << c.script << ": " << prog.status().ToString();
    Interpreter interp(prog->get(), &hdfs);
    exec::ExecOptions opts;
    opts.workers = 8;
    // A small budget forces evictions so the spill-write/reload and
    // budget-pressure sites actually see traffic.
    opts.memory_budget = 256 * 1024;
    opts.chaos = &chaos;
    interp.set_exec_options(opts);
    Status st = interp.Run();
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kUnavailable)
          << c.script << " attempt " << attempt
          << " failed with a non-retryable error: " << st.ToString();
      continue;
    }
    RunCapture cap;
    cap.symbols = interp.symbols();
    cap.printed = interp.printed();
    cap.stats = interp.exec_stats();
    cap.hdfs_paths = hdfs.ListPaths();
    for (const std::string& path : cap.hdfs_paths) {
      auto file = hdfs.Get(path);
      if (file.ok()) cap.hdfs_data[path] = file->data;
    }
    ExpectIdenticalRuns(reference, cap,
                        std::string(c.script) + " chaos attempt " +
                            std::to_string(attempt));
    succeeded = true;
  }
  EXPECT_TRUE(succeeded) << c.script << ": no attempt out of "
                         << kMaxAttempts << " survived chaos injection";
  // The soak must actually have exercised injection, or the bitwise
  // check above proved nothing about fault tolerance.
  EXPECT_GT(chaos.total_fired(), 0) << c.script;
}

INSTANTIATE_TEST_SUITE_P(AllScripts, ChaosSoakTest,
                         ::testing::Values(&kCases[0], &kCases[1],
                                           &kCases[2], &kCases[3],
                                           &kCases[4]),
                         CaseName);

/// Deterministic loss-and-recovery at the memory-manager level: a
/// forced spill-write failure turns the victim's next fetch into a
/// typed Unavailable error, while clean blocks re-read from source
/// unaffected; re-pinning the lost name recovers it.
TEST(ChaosSoakTest, DirtyBlockLossIsTypedAndRecoverable) {
  exec::FaultPolicy policy;
  policy.WithFirstN(exec::FaultSite::kSpillWrite, 1);
  exec::ChaosInjector chaos(policy);

  SimulatedHdfs hdfs;
  MatrixBlock src(8, 8, false);
  for (int64_t i = 0; i < 8; ++i) src.Set(i, i, 1.0 + double(i));
  hdfs.PutMatrix("/data/src", src);

  // Capacity fits one 8x8 dense block at a time.
  exec::MemoryManager mm(600, &hdfs, "/.spill/t/", &chaos);
  auto dirty = std::make_shared<const MatrixBlock>(src);
  ASSERT_TRUE(mm.PinMatrix("dirty", dirty, /*dirty=*/true).ok());
  // Pinning a clean source-backed block evicts "dirty"; its spill
  // write is the first kSpillWrite draw and fails.
  auto clean = std::make_shared<const MatrixBlock>(src);
  ASSERT_TRUE(
      mm.PinMatrix("clean", clean, /*dirty=*/false, "/data/src").ok());
  EXPECT_EQ(mm.lost_blocks(), 1);

  auto fetch_lost = mm.FetchMatrix("dirty");
  ASSERT_FALSE(fetch_lost.ok());
  EXPECT_EQ(fetch_lost.status().code(), StatusCode::kUnavailable);

  // The clean block evicted by fetch attempts recovers by re-reading
  // its source path (no spill copy needed).
  auto refetch_clean = mm.FetchMatrix("clean");
  ASSERT_TRUE(refetch_clean.ok()) << refetch_clean.status().ToString();
  EXPECT_TRUE(MatricesIdentical(src, **refetch_clean));

  // Re-pinning the lost name clears the loss.
  ASSERT_TRUE(mm.PinMatrix("dirty", dirty, /*dirty=*/true).ok());
  auto refetch_dirty = mm.FetchMatrix("dirty");
  ASSERT_TRUE(refetch_dirty.ok()) << refetch_dirty.status().ToString();
  EXPECT_TRUE(MatricesIdentical(src, **refetch_dirty));
}

}  // namespace
}  // namespace relm

// Left-indexing (`X[rl:ru, cl:cu] = V`) across all layers: kernel,
// parser, validator, size propagation, operator selection, interpreter.

#include <gtest/gtest.h>

#include "api/session.h"
#include "lops/compiler_backend.h"
#include "matrix/kernels.h"

namespace relm {
namespace {

// These suites predate plan caching: an uncached Session keeps every
// call's compile and optimize costs identical to the retired
// RelmSystem facade they were written against.
Session UncachedSession() {
  return Session(ClusterConfig::PaperCluster(),
                 SessionOptions().WithPlanCacheEnabled(false));
}

// ---- kernel ----

TEST(LeftIndexKernel, OverwritesRange) {
  MatrixBlock a = MatrixBlock::Constant(4, 4, 1.0);
  MatrixBlock v = MatrixBlock::Constant(2, 2, 9.0);
  auto out = LeftIndex(a, v, 2, 3, 2, 3);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->Get(0, 0), 1.0);
  EXPECT_EQ(out->Get(1, 1), 9.0);
  EXPECT_EQ(out->Get(2, 2), 9.0);
  EXPECT_EQ(out->Get(3, 3), 1.0);
  // Original untouched (copy semantics).
  EXPECT_EQ(a.Get(1, 1), 1.0);
}

TEST(LeftIndexKernel, BoundsAndShapeErrors) {
  MatrixBlock a = MatrixBlock::Constant(4, 4, 1.0);
  MatrixBlock v = MatrixBlock::Constant(2, 2, 9.0);
  EXPECT_FALSE(LeftIndex(a, v, 0, 1, 1, 2).ok());   // rl < 1
  EXPECT_FALSE(LeftIndex(a, v, 4, 5, 1, 2).ok());   // ru > rows
  EXPECT_FALSE(LeftIndex(a, v, 1, 3, 1, 2).ok());   // shape mismatch
}

TEST(LeftIndexKernel, RoundTripWithRightIndex) {
  Random rng(5);
  MatrixBlock a = MatrixBlock::Rand(8, 6, 1.0, -1, 1, &rng);
  MatrixBlock v = MatrixBlock::Rand(3, 2, 1.0, 5, 6, &rng);
  auto updated = LeftIndex(a, v, 2, 4, 3, 4);
  ASSERT_TRUE(updated.ok());
  auto extracted = RightIndex(*updated, 2, 4, 3, 4);
  ASSERT_TRUE(extracted.ok());
  EXPECT_TRUE(extracted->ApproxEquals(v, 1e-12));
}

// ---- language + interpreter ----

class LeftIndexScriptTest : public ::testing::Test {
 protected:
  Result<std::vector<std::string>> Run(const std::string& src) {
    auto prog = sys_.CompileSource(src, {});
    RELM_RETURN_IF_ERROR(prog.status());
    auto run = sys_.ExecuteReal(prog->get());
    RELM_RETURN_IF_ERROR(run.status());
    return run->printed;
  }
  Session sys_ = UncachedSession();
};

TEST_F(LeftIndexScriptTest, PartialUpdateEndToEnd) {
  auto printed = Run(
      "M = matrix(0, rows=3, cols=3)\n"
      "M[2, 2] = 5\n"
      "M[1, ] = matrix(1, rows=1, cols=3)\n"
      "print(\"sum=\" + sum(M))\n"
      "print(\"mid=\" + as.scalar(M[2:2, 2:2]))");
  ASSERT_TRUE(printed.ok()) << printed.status().ToString();
  EXPECT_EQ((*printed)[0], "sum=8");
  EXPECT_EQ((*printed)[1], "mid=5");
}

TEST_F(LeftIndexScriptTest, ColumnBlockUpdate) {
  auto printed = Run(
      "M = matrix(2, rows=4, cols=5)\n"
      "M[, 2:3] = matrix(7, rows=4, cols=2)\n"
      "print(\"s=\" + sum(M))");
  ASSERT_TRUE(printed.ok()) << printed.status().ToString();
  // 12 cells of 2 + 8 cells of 7 = 24 + 56 = 80.
  EXPECT_EQ((*printed)[0], "s=80");
}

TEST_F(LeftIndexScriptTest, LoopAccumulatesColumns) {
  // mlogreg-style per-class column writes.
  auto printed = Run(
      "B = matrix(0, rows=3, cols=4)\n"
      "for (j in 1:4) {\n"
      "  B[, j:j] = matrix(j, rows=3, cols=1)\n"
      "}\n"
      "print(\"s=\" + sum(B))");
  ASSERT_TRUE(printed.ok()) << printed.status().ToString();
  EXPECT_EQ((*printed)[0], "s=30");  // 3*(1+2+3+4)
}

TEST_F(LeftIndexScriptTest, OutOfBoundsFailsAtRuntime) {
  // Bounds are data values; the compiler accepts, the runtime rejects.
  auto r = Run("M = matrix(0, rows=2, cols=2)\nM[0, 1] = 1\n"
               "print(\"\" + sum(M))");
  EXPECT_FALSE(r.ok());
}

TEST_F(LeftIndexScriptTest, ValidatorRejectsBadTargets) {
  EXPECT_FALSE(Run("Z[1, 1] = 5").ok());  // undefined target
  EXPECT_FALSE(Run("x = 3\nx[1, 1] = 5").ok());  // scalar target
  EXPECT_FALSE(Run("M = matrix(0, rows=2, cols=2)\n"
                   "v = matrix(1, rows=2, cols=1)\n"
                   "M[v, 1] = 3")
                   .ok());  // matrix bound
}

// ---- compiler-side behaviour ----

TEST(LeftIndexCompileTest, SizePropagationKeepsTargetShape) {
  SimulatedHdfs hdfs;
  hdfs.PutMetadata("/X", MatrixCharacteristics::Dense(1000000, 1000));
  auto prog = MlProgram::Compile(
      "X = read(\"/X\")\n"
      "X[, 1:1] = matrix(0, rows=nrow(X), cols=1)\n"
      "print(\"\" + sum(X))",
      {}, &hdfs);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  bool found = false;
  for (StatementBlock* b : (*prog)->AllBlocksPreOrder()) {
    if (!(*prog)->has_ir(b->id())) continue;
    for (Hop* h : (*prog)->ir(b->id()).dag.TopoOrder()) {
      if (h->kind() == HopKind::kLeftIndexing) {
        found = true;
        EXPECT_EQ(h->mc().rows(), 1000000);
        EXPECT_EQ(h->mc().cols(), 1000);
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(LeftIndexCompileTest, LargeUpdateGoesToMrWithBroadcastValue) {
  SimulatedHdfs hdfs;
  hdfs.PutMetadata("/X", MatrixCharacteristics::Dense(1000000, 1000));
  auto prog = MlProgram::Compile(
      "X = read(\"/X\")\n"
      "X[, 1:1] = matrix(0, rows=nrow(X), cols=1)\n"
      "print(\"\" + sum(X))",
      {}, &hdfs);
  ASSERT_TRUE(prog.ok());
  ClusterConfig cc = ClusterConfig::PaperCluster();
  CompileCounters counters;
  auto rp = GenerateRuntimeProgram(prog->get(), cc,
                                   ResourceConfig(512 * kMB, 2 * kGB),
                                   &counters);
  ASSERT_TRUE(rp.ok());
  EXPECT_GE(rp->TotalMrJobs(), 1);
  // Find the left-indexing op: MR with the 8MB value vector broadcast.
  for (StatementBlock* b : (*prog)->AllBlocksPreOrder()) {
    if (!(*prog)->has_ir(b->id())) continue;
    for (Hop* h : (*prog)->ir(b->id()).dag.TopoOrder()) {
      if (h->kind() == HopKind::kLeftIndexing) {
        EXPECT_EQ(h->exec_type(), ExecType::kMR);
        EXPECT_EQ(h->broadcast_input, 1);
      }
    }
  }
}

}  // namespace
}  // namespace relm

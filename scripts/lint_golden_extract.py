#!/usr/bin/env python3
"""Reduce `relm-lint --dataflow --json` output to golden-stable lines.

Keeps what must never change silently — error-severity diagnostics, the
boundedness of the static peak, and the dead-write / undefined-read
findings (all deterministic: variable names and script line/column) —
and drops what legitimately drifts with the cost model (byte counts,
hop ids). check.sh stage 11 diffs the result against the committed
scripts/lint_dataflow.golden; a new error-severity diagnostic or a lost
bound fails the build.

Usage: lint_golden_extract.py LINT_JSON_FILE
"""

import json
import os
import sys


def main() -> int:
    with open(sys.argv[1], encoding="utf-8") as f:
        report = json.load(f)
    lines = []
    for script in report.get("scripts", []):
        name = os.path.basename(script["script"])
        errors = []
        for stage in script.get("stages", []):
            for diag in stage["report"].get("diagnostics", []):
                if diag["severity"] != "ERROR":
                    continue
                errors.append(
                    f"{name} error: [{diag['pass']}] {diag['location']}"
                )
        lines.append(f"{name} errors={len(errors)}")
        lines.extend(sorted(errors))
        df = script.get("dataflow")
        if df is not None:
            bounded = "true" if df["peak"]["bounded"] else "false"
            lines.append(f"{name} peak_bounded={bounded}")
            for dw in df.get("dead_writes", []):
                lines.append(
                    f"{name} dead_write: {dw['var']} "
                    f"line={dw['line']}:{dw['column']} "
                    f"materialized={'true' if dw['materialized'] else 'false'}"
                )
            for ur in df.get("undefined_reads", []):
                lines.append(
                    f"{name} undefined_read: {ur['var']} "
                    f"line={ur['line']}:{ur['column']} "
                    f"definite={'true' if ur['definite'] else 'false'}"
                )
    print("\n".join(lines))
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Sanitized check build: configures a fresh Debug tree with
# AddressSanitizer + UndefinedBehaviorSanitizer and runs the full test
# suite under it. Slower than the default build; use before merging
# changes that touch allocation paths or the simulator's recovery logic.
#
# Usage: scripts/check.sh [build-dir]   (default: build-asan)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-asan}"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

#!/usr/bin/env bash
# Extended check build, twelve stages in separate trees:
#
#   1. ASan+UBSan Debug build running the full test suite (catches
#      allocation bugs and UB in the simulator's recovery logic);
#   2. an RELM_OBS_ENABLED=OFF build running the full suite (proves the
#      observability macros compile out and nothing depends on them);
#   3. a TSan build running the observability tests (registry and tracer
#      concurrency);
#   4. the same TSan tree running the serving-layer tests (job service
#      stress, plan cache) plus a multi-client bench smoke run — the
#      serve path is the most concurrent code in the repo;
#   5. header self-containment: every public serve/ and api/ header must
#      compile standalone (catches missing includes that the unity-ish
#      test builds would mask);
#   6. clang-tidy over the analysis, core, and serve sources with the
#      repo .clang-tidy profile, plus a Clang -Wthread-safety build of
#      the annotated serving layer. Both are skipped (with a notice)
#      when clang/clang-tidy are not installed — the pinned container
#      toolchain is GCC-only;
#   7. the TSan tree running the execution-engine differential and
#      serving tests with RELM_EXEC_WORKERS=8 forced on, so the
#      DAG scheduler, tiled kernels, and MemoryManager race under a
#      real multi-worker pool, plus a bench_ext_exec smoke run with
#      JSON export;
#   8. the chaos soak under BOTH sanitizer trees with
#      RELM_EXEC_WORKERS=8: seeded fault injection (task aborts, spill
#      losses, I/O errors) races the retry/cancel/degrade machinery,
#      proving every injected failure is a typed error or a
#      bitwise-identical recovery — never a leak, race, or corruption;
#   9. the perf-regression gate: a PLAIN (unsanitized, like the
#      committed baseline) tree runs bench_ext_exec three times and
#      scripts/bench_gate.py fails the build when any end_to_end or
#      cold_start row regresses more than the threshold against
#      BENCH_exec.json;
#  10. the cold-start round trip: the plain tree and the ASan tree each
#      run the artifact-store suite plus the bench_fig12_throughput
#      --cold-start gate (warm process must reach its first plan >= 2x
#      faster with zero full compiles), and relm-lint --artifact must
#      accept the artifact the bench wrote and reject a bit-flipped
#      copy of it;
#  11. the dataflow lint golden: relm-lint --dataflow --json over every
#      shipped script, reduced to its stable facts (error diagnostics,
#      peak boundedness, dead writes, undefined reads) and diffed
#      against scripts/lint_dataflow.golden — a new error-severity
#      diagnostic or a silently-unbounded peak fails the build;
#  12. the scheduling subsystem: the TSan tree soaks the scheduler
#      tests (quota starvation races, chaos preemption) and runs the
#      bench_ext_sched --quick SLO gate (cost-aware must hold every
#      in-quota deadline and beat round-robin on misses, under node
#      loss + preemption); the plain tree then runs the full bench
#      three times against the committed BENCH_sched.json baseline.
#
# TSan is incompatible with ASan, hence the separate tree. Slower than
# the default build; use before merging changes that touch allocation
# paths, simulator recovery, the obs layer, or the serving layer.
#
# Usage: scripts/check.sh [build-dir-prefix]   (default: build)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
prefix="${1:-$repo_root/build}"

echo "=== stage 1: ASan+UBSan, full suite ==="
cmake -B "${prefix}-asan" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build "${prefix}-asan" -j "$(nproc)"
ctest --test-dir "${prefix}-asan" --output-on-failure -j "$(nproc)"

echo "=== stage 2: RELM_OBS_ENABLED=OFF, full suite ==="
cmake -B "${prefix}-noobs" -S "$repo_root" -DRELM_OBS_ENABLED=OFF
cmake --build "${prefix}-noobs" -j "$(nproc)"
ctest --test-dir "${prefix}-noobs" --output-on-failure -j "$(nproc)"

echo "=== stage 3: TSan, observability tests ==="
cmake -B "${prefix}-tsan" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "${prefix}-tsan" -j "$(nproc)" --target obs_test
ctest --test-dir "${prefix}-tsan" --output-on-failure \
  -R 'MetricsTest|TracerTest|LogCaptureTest|ObsSystemTest|JsonUtilTest|TraceContextTest|MetricScopeTest|OpProfileTest|TelemetrySinkTest|CalibrationTest'

echo "=== stage 4: TSan, serving layer + multi-client bench smoke ==="
cmake --build "${prefix}-tsan" -j "$(nproc)" \
  --target serve_test bench_fig12_throughput
ctest --test-dir "${prefix}-tsan" --output-on-failure \
  -R 'PlanCacheTest|OptimizerCacheTest|SessionTest|JobServiceTest|JobTelemetryTest|JobSchedulerTest'
# Small end-to-end smoke: 4 concurrent clients through the job service.
"${prefix}-tsan/bench/bench_fig12_throughput" --clients=4 --jobs=3

echo "=== stage 5: header self-containment (serve/, sched/, api/) ==="
cxx="${CXX:-c++}"
for header in "$repo_root"/src/serve/*.h "$repo_root"/src/sched/*.h \
              "$repo_root"/src/api/*.h; do
  echo "  checking ${header#"$repo_root"/}"
  "$cxx" -std=c++20 -fsyntax-only -x c++ -I "$repo_root/src" "$header"
done

echo "=== stage 6: clang-tidy + Clang thread-safety ==="
if command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json from a plain tree so clang-tidy sees the real
  # flags; the lint scope is the code this repo owns logic in (analysis,
  # core, serve, api), not the vendored-test-style leaf dirs.
  cmake -B "${prefix}-tidy" -S "$repo_root" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  clang-tidy -p "${prefix}-tidy" \
    "$repo_root"/src/analysis/*.cc \
    "$repo_root"/src/core/*.cc \
    "$repo_root"/src/serve/*.cc \
    "$repo_root"/src/sched/*.cc \
    "$repo_root"/src/api/*.cc
else
  echo "  clang-tidy not installed; skipping tidy lint"
fi
if command -v clang++ >/dev/null 2>&1; then
  # Thread-safety analysis needs Clang; GCC ignores the annotations.
  clang++ -std=c++20 -fsyntax-only -Wthread-safety -Werror=thread-safety \
    -I "$repo_root/src" \
    "$repo_root/src/core/plan_cache.cc" \
    "$repo_root/src/serve/job_service.cc" \
    "$repo_root/src/exec/memory_manager.cc" \
    "$repo_root/src/exec/worker_pool.cc" \
    "$repo_root/src/store/plan_artifact_store.cc"
else
  echo "  clang++ not installed; skipping -Wthread-safety pass"
fi

echo "=== stage 7: TSan, parallel execution engine (RELM_EXEC_WORKERS=8) ==="
cmake --build "${prefix}-tsan" -j "$(nproc)" \
  --target exec_test exec_differential_test serve_test bench_ext_exec
# Force a real multi-worker pool: every engine run, differential
# comparison, and real-execution job races 8 workers under TSan.
RELM_EXEC_WORKERS=8 ctest --test-dir "${prefix}-tsan" --output-on-failure \
  -R 'ExecDifferentialTest|BudgetEnforcementTest|EngineStatsTest|MemoryManagerTest|OpRegistryTest|SerialEffectOrderTest|WorkerPoolTest|SessionExecuteRealTest|JobServiceTest|JobTelemetryTest'
RELM_EXEC_WORKERS=8 "${prefix}-tsan/bench/bench_ext_exec" \
  --json-out="${prefix}-tsan/bench_ext_exec.json"

echo "=== stage 8: chaos soak under ASan and TSan (RELM_EXEC_WORKERS=8) ==="
# Fault injection on the real engine under both sanitizers: the soak
# retries every shipped script through seeded chaos, and the fault-layer
# unit tests cover the retry/deadline/cancel/degrade state machine.
chaos_filter='ChaosSoakTest|ChaosInjectorTest|FaultPolicyTest|JobServiceFaultTest|JobSchedulerTest|RetryTest'
cmake --build "${prefix}-asan" -j "$(nproc)" \
  --target common_test exec_test exec_differential_test serve_test
RELM_EXEC_WORKERS=8 ctest --test-dir "${prefix}-asan" --output-on-failure \
  -R "$chaos_filter"
cmake --build "${prefix}-tsan" -j "$(nproc)" \
  --target common_test exec_test exec_differential_test serve_test
RELM_EXEC_WORKERS=8 ctest --test-dir "${prefix}-tsan" --output-on-failure \
  -R "$chaos_filter"

echo "=== stage 9: perf-regression gate (plain tree vs BENCH_exec.json) ==="
# The committed baseline is a non-sanitized build's numbers, so the
# gate must run against a plain tree — sanitizer overhead would trip
# it spuriously. Three runs; the gate takes the per-row minimum, so
# one noisy run cannot fail the build. The threshold is widened past
# the script's 1.25x default because virtualized hosts drift ~1.3x in
# effective CPU speed between sessions; 1.5x still catches the
# algorithmic blowups the gate exists for. After an intentional perf
# change, refresh the baseline with the per-row minimum of several
# plain-tree runs (bench_gate.py's keying matches --json-out rows).
cmake -B "${prefix}-gate" -S "$repo_root" >/dev/null
cmake --build "${prefix}-gate" -j "$(nproc)" --target bench_ext_exec
for i in 1 2 3; do
  "${prefix}-gate/bench/bench_ext_exec" \
    --json-out="${prefix}-gate/bench_exec_run${i}.json" >/dev/null
done
python3 "$repo_root/scripts/bench_gate.py" \
  --baseline "$repo_root/BENCH_exec.json" --threshold 1.5 \
  "${prefix}-gate"/bench_exec_run{1,2,3}.json

echo "=== stage 10: cold-start round trip (plain + ASan) ==="
# The persistent plan-artifact store end to end: the warm process must
# hit the store (zero full compiles, >= 2x faster first plan — the
# bench exits non-zero otherwise), the flushed artifact must pass the
# lint audit, and a corrupted copy must fail it.
store_filter='ArtifactStoreOptionsTest|PlanArtifactStoreTest|CorruptionTest|PortableSignatureTest|ColdStartTest'
for tree in "${prefix}-gate" "${prefix}-asan"; do
  cmake --build "$tree" -j "$(nproc)" \
    --target store_test bench_fig12_throughput relm-lint
  ctest --test-dir "$tree" --output-on-failure -R "$store_filter"
  artifact="$tree/cold_start.relmplan"
  rm -f "$artifact"
  "$tree/bench/bench_fig12_throughput" --cold-start --artifact="$artifact"
  "$tree/examples/relm-lint" --artifact "$artifact"
  # Truncating below the header's payload size is a deterministic
  # corruption: the store (and lint) must reject it every time.
  head -c 100 "$artifact" > "$artifact.bad"
  if "$tree/examples/relm-lint" --artifact "$artifact.bad" >/dev/null; then
    echo "relm-lint accepted a corrupted artifact" >&2
    exit 1
  fi
  rm -f "$artifact" "$artifact.bad"
done

echo "=== stage 11: relm-lint --dataflow golden over shipped scripts ==="
# Dataflow lint regression gate: reduce the --dataflow --json report to
# its golden-stable facts (error-severity diagnostics, peak boundedness,
# dead-write / undefined-read findings with line:column) and diff them
# against the committed baseline. A new error, a script whose static
# peak silently becomes unbounded, or a new dead write fails the build;
# byte counts and hop ids are deliberately excluded so cost-model tuning
# does not churn the golden. relm-lint itself exits non-zero on errors,
# which the diff then localizes.
lint_json="${prefix}-gate/lint_dataflow.json"
lint_actual="${prefix}-gate/lint_dataflow.txt"
"${prefix}-gate/examples/relm-lint" --dataflow --json \
  "$repo_root"/scripts/*.dml > "$lint_json" \
  || echo "  relm-lint exited non-zero; the golden diff below names why"
python3 "$repo_root/scripts/lint_golden_extract.py" "$lint_json" \
  > "$lint_actual"
diff -u "$repo_root/scripts/lint_dataflow.golden" "$lint_actual"

echo "=== stage 12: scheduling subsystem (TSan soak + SLO/perf gates) ==="
# Policy unit tests and the service-level scheduler races (quota
# starvation, chaos preemption) under TSan, then the bench SLO gate:
# bench_ext_sched exits non-zero when cost-aware misses an in-quota
# deadline, fails to beat round-robin on misses, or the chaos phase
# never observes a preemption. Deadlines are calibrated from a measured
# cold compile, so the gate holds under sanitizer slowdown too.
cmake --build "${prefix}-tsan" -j "$(nproc)" \
  --target sched_test serve_test bench_ext_sched
ctest --test-dir "${prefix}-tsan" --output-on-failure \
  -R 'SchedEntryTest|CostAwareSchedulerTest|MakeSchedulerTest|RoundRobinDifferentialTest|JobSchedulerTest'
"${prefix}-tsan/bench/bench_ext_sched" --quick
# Perf gate on the plain tree against the committed scheduler baseline
# (same three-run minimum and widened threshold as stage 9).
cmake --build "${prefix}-gate" -j "$(nproc)" --target bench_ext_sched
for i in 1 2 3; do
  "${prefix}-gate/bench/bench_ext_sched" \
    --json-out="${prefix}-gate/bench_sched_run${i}.json" >/dev/null
done
python3 "$repo_root/scripts/bench_gate.py" \
  --baseline "$repo_root/BENCH_sched.json" --threshold 1.5 \
  "${prefix}-gate"/bench_sched_run{1,2,3}.json

echo "all check stages passed"

#!/usr/bin/env python3
"""Perf-regression gate over bench JSON exports.

Compares one or more fresh `--json-out=` runs (bench_ext_exec,
bench_ext_sched) against the committed baseline (BENCH_exec.json by
default; pass --baseline BENCH_sched.json for the scheduler rows) and
fails when a gated row got slower than the allowed ratio. Rows are
keyed by (table, label, workers); when several fresh files are given,
the gate takes the per-key minimum wall-clock across them, so transient
machine noise in a single run does not fail the gate.

Only the tables named by --tables are gated (default: end_to_end,
cold_start, and sched — the kernel table measures sub-millisecond loops
too noisy to gate, the spill table's interesting signal is bytes, not
wall-clock, and the sched_chaos row's wall-clock depends on fault
timing; the cold_start warm row is a mean over several hydrations,
which keeps it stable enough to gate). Gated tables absent from the
baseline are simply skipped, so one default covers both baselines.

Exit status: 0 when every gated row passes; nonzero on regression, on a
gated baseline row missing from the fresh runs, or on bad input.

Usage:
  scripts/bench_gate.py --baseline BENCH_exec.json fresh1.json [fresh2.json ...]
  scripts/bench_gate.py --threshold 1.25 --tables end_to_end baseline.json fresh.json
"""

import argparse
import json
import sys


def load_rows(path):
    """Returns {(table, label, workers): row-dict} for one export file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            rows = json.load(fh)
    except (OSError, ValueError) as err:
        raise SystemExit(f"bench_gate: cannot read {path}: {err}")
    if not isinstance(rows, list):
        raise SystemExit(f"bench_gate: {path}: expected a JSON array of rows")
    out = {}
    for row in rows:
        try:
            key = (row["table"], row["label"], int(row["workers"]))
        except (TypeError, KeyError) as err:
            raise SystemExit(f"bench_gate: {path}: malformed row {row!r}: {err}")
        out[key] = row
    return out


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Fail when fresh bench rows regress past the baseline.")
    parser.add_argument("--baseline", default="BENCH_exec.json",
                        help="committed baseline export (default: %(default)s)")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="max allowed fresh/baseline wall-clock ratio "
                             "(default: %(default)s, i.e. +25%%)")
    parser.add_argument("--tables", default="end_to_end,cold_start,sched",
                        help="comma-separated tables to gate "
                             "(default: %(default)s)")
    parser.add_argument("fresh", nargs="+",
                        help="one or more fresh --json-out exports; the "
                             "per-row minimum across them is compared")
    args = parser.parse_args(argv)

    if args.threshold <= 1.0:
        raise SystemExit("bench_gate: --threshold must be > 1.0")
    gated_tables = {t.strip() for t in args.tables.split(",") if t.strip()}

    baseline = load_rows(args.baseline)
    fresh_runs = [load_rows(path) for path in args.fresh]

    # Per-key minimum across the fresh runs: the best of N runs is the
    # honest capability number; a regression that survives the min is
    # real, not scheduler noise.
    fresh_min = {}
    for run in fresh_runs:
        for key, row in run.items():
            prev = fresh_min.get(key)
            if prev is None or row["ms"] < prev["ms"]:
                fresh_min[key] = row

    failures = []
    checked = 0
    print(f"bench_gate: baseline={args.baseline} fresh={len(fresh_runs)} "
          f"run(s) threshold={args.threshold:.2f}x tables={sorted(gated_tables)}")
    print(f"{'table':<12} {'label':<16} {'w':>3} {'base(ms)':>10} "
          f"{'fresh(ms)':>10} {'ratio':>7}  verdict")
    for key in sorted(baseline):
        table, label, workers = key
        if table not in gated_tables:
            continue
        base_ms = float(baseline[key]["ms"])
        if base_ms <= 0.0:
            continue
        checked += 1
        if key not in fresh_min:
            failures.append(f"{table}/{label}/w={workers}: missing from fresh runs")
            print(f"{table:<12} {label:<16} {workers:>3} {base_ms:>10.2f} "
                  f"{'-':>10} {'-':>7}  MISSING")
            continue
        fresh_ms = float(fresh_min[key]["ms"])
        ratio = fresh_ms / base_ms
        verdict = "ok" if ratio <= args.threshold else "REGRESSION"
        print(f"{table:<12} {label:<16} {workers:>3} {base_ms:>10.2f} "
              f"{fresh_ms:>10.2f} {ratio:>6.2f}x  {verdict}")
        if ratio > args.threshold:
            failures.append(
                f"{table}/{label}/w={workers}: {base_ms:.2f}ms -> "
                f"{fresh_ms:.2f}ms ({ratio:.2f}x > {args.threshold:.2f}x)")

    new_rows = sorted(k for k in fresh_min
                      if k[0] in gated_tables and k not in baseline)
    for table, label, workers in new_rows:
        print(f"{table:<12} {label:<16} {workers:>3} {'-':>10} "
              f"{float(fresh_min[(table, label, workers)]['ms']):>10.2f} "
              f"{'-':>7}  new (no baseline)")

    if checked == 0:
        raise SystemExit("bench_gate: no gated rows found in the baseline "
                         f"for tables {sorted(gated_tables)}")
    if failures:
        print(f"bench_gate: FAIL — {len(failures)} regression(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"bench_gate: PASS — {checked} row(s) within {args.threshold:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#ifndef RELM_HOPS_DAG_BUILDER_H_
#define RELM_HOPS_DAG_BUILDER_H_

#include "common/status.h"
#include "hops/ml_program.h"

namespace relm {

/// Builds (or rebuilds) all per-block HOP DAGs of an MlProgram, walking
/// blocks in execution order with a symbol table so that sizes, scalar
/// constants, and sparsity propagate across blocks. Performs constant
/// folding, common-subexpression elimination, static branch removal, and
/// loop-stability analysis along the way.
///
/// `size_overrides` supplies characteristics that became known at runtime
/// (dynamic recompilation); they are applied when the named variable is
/// assigned an operator output with unknown dimensions.
class IrBuilder {
 public:
  IrBuilder(MlProgram* program, const SymbolMap& size_overrides);

  Status Build();

 private:
  class Impl;
  MlProgram* program_;
  const SymbolMap& size_overrides_;
};

}  // namespace relm

#endif  // RELM_HOPS_DAG_BUILDER_H_

#include "hops/rewrites.h"

#include "common/string_util.h"
#include "matrix/op_types.h"

namespace relm {

HopPtr MakeNumericLiteral(double value) {
  auto h = std::make_shared<Hop>(HopKind::kLiteral, DataType::kScalar);
  h->literal_value = value;
  return h;
}

HopPtr MakeStringLiteral(std::string value) {
  auto h = std::make_shared<Hop>(HopKind::kLiteral, DataType::kScalar);
  h->literal_is_string = true;
  h->literal_string = std::move(value);
  h->set_value_type(ValueType::kString);
  return h;
}

std::string LiteralToString(const Hop& literal) {
  if (literal.literal_is_string) return literal.literal_string;
  return FormatDouble(literal.literal_value, 6);
}

namespace {

bool IsNumericLiteral(const HopPtr& h) {
  return h->kind() == HopKind::kLiteral && !h->literal_is_string;
}

bool IsLiteral(const HopPtr& h) { return h->kind() == HopKind::kLiteral; }

}  // namespace

HopPtr TryFoldBinary(BinOp op, const HopPtr& lhs, const HopPtr& rhs) {
  if (op == BinOp::kAdd && IsLiteral(lhs) && IsLiteral(rhs) &&
      (lhs->literal_is_string || rhs->literal_is_string)) {
    return MakeStringLiteral(LiteralToString(*lhs) + LiteralToString(*rhs));
  }
  if (!IsNumericLiteral(lhs) || !IsNumericLiteral(rhs)) return nullptr;
  return MakeNumericLiteral(
      ApplyBinOp(op, lhs->literal_value, rhs->literal_value));
}

HopPtr TryFoldUnary(UnOp op, const HopPtr& input) {
  if (!IsNumericLiteral(input)) return nullptr;
  return MakeNumericLiteral(ApplyUnOp(op, input->literal_value));
}

HopPtr TrySimplifyReorg(ReorgOp op, const HopPtr& input) {
  if (op == ReorgOp::kTranspose && input->kind() == HopKind::kReorg &&
      input->reorg_op == ReorgOp::kTranspose) {
    return input->inputs()[0];
  }
  return nullptr;
}

namespace {

bool IsNumeric(const HopPtr& h, double value) {
  return h->kind() == HopKind::kLiteral && !h->literal_is_string &&
         h->literal_value == value;
}

}  // namespace

HopPtr TrySimplifyBinary(BinOp op, const HopPtr& lhs, const HopPtr& rhs) {
  // Only rewrite when one side is a matrix (scalar-scalar constant
  // folding handles the rest) and the neutral element is a literal.
  switch (op) {
    case BinOp::kMul:
      if (lhs->is_matrix() && IsNumeric(rhs, 1.0)) return lhs;
      if (rhs->is_matrix() && IsNumeric(lhs, 1.0)) return rhs;
      return nullptr;
    case BinOp::kDiv:
      if (lhs->is_matrix() && IsNumeric(rhs, 1.0)) return lhs;
      return nullptr;
    case BinOp::kAdd:
      if (lhs->is_matrix() && IsNumeric(rhs, 0.0)) return lhs;
      if (rhs->is_matrix() && IsNumeric(lhs, 0.0)) return rhs;
      return nullptr;
    case BinOp::kSub:
      if (lhs->is_matrix() && IsNumeric(rhs, 0.0)) return lhs;
      return nullptr;
    case BinOp::kPow:
      if (lhs->is_matrix() && IsNumeric(rhs, 1.0)) return lhs;
      return nullptr;
    case BinOp::kMin:
    case BinOp::kMax:
      if (lhs == rhs && lhs->is_matrix()) return lhs;
      return nullptr;
    default:
      return nullptr;
  }
}

bool IsSquarePattern(BinOp op, const HopPtr& rhs) {
  return op == BinOp::kPow && IsNumeric(rhs, 2.0);
}

}  // namespace relm

#include "hops/ml_program.h"

#include <utility>

#include "hops/dag_builder.h"
#include "lang/validator.h"

namespace relm {

Result<std::unique_ptr<MlProgram>> MlProgram::Compile(
    const std::string& source, const ScriptArgs& args,
    const SimulatedHdfs* hdfs) {
  auto program = std::unique_ptr<MlProgram>(new MlProgram());
  program->source_ = source;
  program->args_ = args;
  program->hdfs_ = hdfs;
  RELM_ASSIGN_OR_RETURN(program->ast_, ParseDml(source, args));
  RELM_RETURN_IF_ERROR(ValidateProgram(&program->ast_));
  RELM_ASSIGN_OR_RETURN(program->blocks_,
                        BuildProgramBlocks(program->ast_));
  IrBuilder builder(program.get(), program->size_overrides_);
  RELM_RETURN_IF_ERROR(builder.Build());
  return program;
}

Result<std::unique_ptr<MlProgram>> MlProgram::Clone() const {
  RELM_ASSIGN_OR_RETURN(std::unique_ptr<MlProgram> copy,
                        Compile(source_, args_, hdfs_));
  if (!size_overrides_.empty()) {
    RELM_RETURN_IF_ERROR(copy->Rebuild(size_overrides_));
  }
  return copy;
}

Status MlProgram::Rebuild(const SymbolMap& size_overrides) {
  for (const auto& [name, info] : size_overrides) {
    size_overrides_[name] = info;
  }
  ir_.clear();
  IrBuilder builder(this, size_overrides_);
  return builder.Build();
}

namespace {

void CollectPreOrder(const std::vector<BlockPtr>& blocks,
                     std::vector<StatementBlock*>* out) {
  for (const auto& b : blocks) {
    out->push_back(b.get());
    CollectPreOrder(b->body, out);
    CollectPreOrder(b->else_body, out);
  }
}

}  // namespace

std::vector<StatementBlock*> MlProgram::MainBlocksPreOrder() const {
  std::vector<StatementBlock*> out;
  CollectPreOrder(blocks_.main, &out);
  return out;
}

std::vector<StatementBlock*> MlProgram::AllBlocksPreOrder() const {
  std::vector<StatementBlock*> out;
  CollectPreOrder(blocks_.main, &out);
  for (const auto& [name, fn_blocks] : blocks_.functions) {
    CollectPreOrder(fn_blocks, &out);
  }
  return out;
}

std::vector<StatementBlock*> MlProgram::GenericBlocks() const {
  std::vector<StatementBlock*> all = MainBlocksPreOrder();
  std::vector<StatementBlock*> out;
  for (StatementBlock* b : all) {
    if (b->IsLastLevel()) out.push_back(b);
  }
  return out;
}

bool MlProgram::has_unknowns() const {
  for (const auto& [id, block_ir] : ir_) {
    if (block_ir.has_unknown_dims) return true;
  }
  return false;
}

bool MlProgram::IsPoolableTraceFree() const {
  return size_overrides_.empty() && !has_unknowns() &&
         ast_.functions.empty();
}

}  // namespace relm

#ifndef RELM_HOPS_REWRITES_H_
#define RELM_HOPS_REWRITES_H_

#include <optional>
#include <string>

#include "hops/hop.h"

namespace relm {

/// Constant-folds a scalar binary operation when both inputs are numeric
/// literals; also folds string concatenation of two literals. Returns
/// null when not foldable.
HopPtr TryFoldBinary(BinOp op, const HopPtr& lhs, const HopPtr& rhs);

/// Constant-folds a scalar unary operation on a numeric literal.
HopPtr TryFoldUnary(UnOp op, const HopPtr& input);

/// Algebraic simplification for reorg construction: t(t(X)) -> X.
/// Returns the simplified operand or null when no rewrite applies.
HopPtr TrySimplifyReorg(ReorgOp op, const HopPtr& input);

/// Static algebraic simplifications for binary operators on matrices
/// (the HOP-level rewrites of Appendix B): X*1 -> X, X/1 -> X,
/// X+0 -> X, X-0 -> X, X^1 -> X, min/max(X, X) -> X. Returns the
/// surviving operand, or null when no rewrite applies. (X^2 -> X*X is
/// handled separately since it creates a new node.)
HopPtr TrySimplifyBinary(BinOp op, const HopPtr& lhs, const HopPtr& rhs);

/// True when the binary op is x^2 (rewritten to x*x, which the backend
/// can execute cell-wise without pow()).
bool IsSquarePattern(BinOp op, const HopPtr& rhs);

/// Creates a numeric literal hop (id must still be assigned by caller).
HopPtr MakeNumericLiteral(double value);

/// Creates a string literal hop.
HopPtr MakeStringLiteral(std::string value);

/// Renders a literal hop's value as a string (for print folding).
std::string LiteralToString(const Hop& literal);

}  // namespace relm

#endif  // RELM_HOPS_REWRITES_H_

#ifndef RELM_HOPS_SIZE_PROPAGATION_H_
#define RELM_HOPS_SIZE_PROPAGATION_H_

#include "hops/hop.h"

namespace relm {

/// Infers the output characteristics (dims, nnz) of `hop` from its inputs
/// (which must already be inferred) and computes its memory estimates.
/// Read hops are excluded: their characteristics come from the symbol
/// table / HDFS metadata and only the memory estimate is refreshed here.
void InferHopCharacteristics(Hop* hop);

/// Recomputes output_mem/op_mem of `hop` from its current mc and inputs.
/// Unknown dimensions yield the kUnknownSizeSentinel worst case so that
/// "fits in budget" checks fail.
void ComputeMemoryEstimates(Hop* hop);

/// Saturating addition that treats kUnknownSizeSentinel as infinity.
int64_t SaturatingAdd(int64_t a, int64_t b);

}  // namespace relm

#endif  // RELM_HOPS_SIZE_PROPAGATION_H_

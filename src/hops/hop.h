#ifndef RELM_HOPS_HOP_H_
#define RELM_HOPS_HOP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lang/ast.h"
#include "matrix/matrix_characteristics.h"
#include "matrix/op_types.h"

namespace relm {

/// High-level operator kinds. Each generic statement block compiles into
/// one DAG of these operators.
enum class HopKind {
  kLiteral,          // scalar constant
  kTransientRead,    // read of a live variable
  kPersistentRead,   // read() from HDFS
  kTransientWrite,   // write of a live-out variable
  kPersistentWrite,  // write() to HDFS
  kBinary,           // cell-wise / scalar binary op
  kUnary,            // cell-wise / scalar unary op (incl. casts)
  kAggUnary,         // sum/min/max/mean/trace with direction
  kMatMult,          // aggregate binary: %*%
  kReorg,            // transpose, diag
  kDataGen,          // matrix()/rand()/seq()
  kTernary,          // table(v1, v2)
  kIndexing,         // right indexing
  kLeftIndexing,     // partial update X[rl:ru, cl:cu] = V
  kAppend,           // cbind
  kSolve,            // solve(A, b)
  kFunctionCall,     // user-defined function invocation
  kFunctionOutput,   // the i-th return value of a FunctionCall
  kDimExtract,       // nrow()/ncol() when not statically foldable
  kCast,             // as.scalar / as.matrix / as.double / as.integer
  kPrint,            // print()/stop()
};

const char* HopKindName(HopKind kind);

/// Where an operator executes: in-memory in the control program, or as
/// part of a distributed MR job.
enum class ExecType { kCP, kMR };

/// Reorg sub-operations.
enum class ReorgOp { kTranspose, kDiag };

/// DataGen sub-operations.
enum class DataGenOp { kConstMatrix, kRand, kSeq };

/// Physical matrix-multiplication methods (chosen during operator
/// selection; the memory-sensitive choice at the heart of the paper).
enum class MMultMethod {
  kCpMM,        // in-memory multiply
  kMapMM,       // map-side multiply, small side broadcast to mappers
  kMapMMChain,  // fused t(X) %*% (w * (X %*% v)) map-side chain
  kTSMM,        // transpose-self t(X) %*% X
  kCPMM,        // cross-product based repartition multiply (shuffle)
  kRMM,         // replication based multiply (shuffle)
};

const char* MMultMethodName(MMultMethod method);

class Hop;
using HopPtr = std::shared_ptr<Hop>;

/// One node of a HOP DAG. Carries logical operator semantics, inferred
/// output characteristics, memory estimates, and — after operator
/// selection — the chosen execution type and physical method.
class Hop {
 public:
  Hop(HopKind kind, DataType dtype) : kind_(kind), data_type_(dtype) {}

  HopKind kind() const { return kind_; }
  DataType data_type() const { return data_type_; }
  bool is_matrix() const { return data_type_ == DataType::kMatrix; }

  /// Cell/scalar value type (kString for string scalars, used by print).
  ValueType value_type() const { return value_type_; }
  void set_value_type(ValueType vt) { value_type_ = vt; }

  int64_t id() const { return id_; }
  void set_id(int64_t id) { id_ = id; }

  /// Script position (1-based) of the AST node this hop was built from;
  /// 0 when unknown (synthesized hops, e.g. implicit index bounds).
  /// Diagnostics use it to point at real source lines instead of hop ids.
  int line() const { return line_; }
  int column() const { return column_; }
  void set_location(int line, int column) {
    line_ = line;
    column_ = column;
  }

  /// Variable name for reads/writes; file path for persistent IO.
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Operator payloads (meaningful per kind).
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNeg;
  AggOp agg_op = AggOp::kSum;
  AggDir agg_dir = AggDir::kAll;
  ReorgOp reorg_op = ReorgOp::kTranspose;
  DataGenOp datagen_op = DataGenOp::kConstMatrix;
  double literal_value = 0.0;         // kLiteral numeric value
  std::string literal_string;         // kLiteral string value
  bool literal_is_string = false;
  std::string function_name;          // kFunctionCall
  int function_output_index = 0;      // kFunctionOutput
  int num_function_outputs = 1;       // kFunctionCall
  bool dim_extract_rows = true;       // kDimExtract: nrow vs ncol
  /// Operator selection: index of the input broadcast to all map tasks
  /// (MapMM small side, map-binary vector, ...); -1 when none.
  int broadcast_input = -1;

  std::vector<HopPtr>& inputs() { return inputs_; }
  const std::vector<HopPtr>& inputs() const { return inputs_; }
  void AddInput(HopPtr input) { inputs_.push_back(std::move(input)); }
  Hop* input(size_t i) const { return inputs_[i].get(); }

  /// Inferred output characteristics (scalars: 1x1 nnz 1).
  const MatrixCharacteristics& mc() const { return mc_; }
  MatrixCharacteristics* mutable_mc() { return &mc_; }
  void set_mc(const MatrixCharacteristics& mc) { mc_ = mc; }

  /// True when output dims are known (scalars always are).
  bool dims_known() const {
    return !is_matrix() || mc_.dims_known();
  }

  /// ---- memory estimates (bytes), computed during size propagation ----

  /// Estimated in-memory size of this operator's output.
  int64_t output_mem() const { return output_mem_; }
  void set_output_mem(int64_t m) { output_mem_ = m; }
  /// Estimated total operation memory: inputs + intermediates + output.
  int64_t op_mem() const { return op_mem_; }
  void set_op_mem(int64_t m) { op_mem_ = m; }

  /// ---- operator selection results ----

  ExecType exec_type() const { return exec_type_; }
  void set_exec_type(ExecType t) { exec_type_ = t; }
  MMultMethod mmult_method() const { return mmult_method_; }
  void set_mmult_method(MMultMethod m) { mmult_method_ = m; }

  /// A fused transpose (t(X) consumed only by matrix multiplies) is never
  /// materialized: the consumer reads X directly (the transpose-mm
  /// rewrite / fused physical operators of SystemML's Table 4).
  bool fused() const { return fused_; }
  void set_fused(bool f) { fused_ = f; }

  /// Approximate floating point operations of this operator.
  double ComputeFlops() const;

  std::string ToString() const;

 private:
  HopKind kind_;
  DataType data_type_;
  ValueType value_type_ = ValueType::kDouble;
  int64_t id_ = -1;
  int line_ = 0;
  int column_ = 0;
  std::string name_;
  std::vector<HopPtr> inputs_;
  MatrixCharacteristics mc_{0, 0, 0};
  int64_t output_mem_ = 0;
  int64_t op_mem_ = 0;
  ExecType exec_type_ = ExecType::kCP;
  MMultMethod mmult_method_ = MMultMethod::kCpMM;
  bool fused_ = false;
};

/// The HOP DAG of one statement block (or of a predicate). Roots are the
/// transient/persistent writes and print side effects, in program order.
struct HopDag {
  std::vector<HopPtr> roots;

  bool empty() const { return roots.empty(); }

  /// All nodes in topological order (inputs before consumers).
  std::vector<Hop*> TopoOrder() const;

  std::string ToString() const;
};

}  // namespace relm

#endif  // RELM_HOPS_HOP_H_

#include "hops/size_propagation.h"

#include <algorithm>
#include <cmath>

#include "matrix/matrix_characteristics.h"

namespace relm {

namespace {

constexpr int64_t kScalarMem = 16;

/// Characteristics of a 1x1 scalar.
MatrixCharacteristics ScalarMc() { return MatrixCharacteristics(1, 1, 1); }

int64_t NnzFromSparsity(const MatrixCharacteristics& mc, double sp) {
  if (!mc.dims_known()) return kUnknown;
  sp = std::clamp(sp, 0.0, 1.0);
  double nnz = sp * static_cast<double>(mc.rows()) *
               static_cast<double>(mc.cols());
  return static_cast<int64_t>(std::llround(nnz));
}

/// Literal numeric value of an input hop, or nullopt.
bool LiteralValue(const Hop* hop, double* out) {
  if (hop->kind() != HopKind::kLiteral || hop->literal_is_string) {
    return false;
  }
  *out = hop->literal_value;
  return true;
}

MatrixCharacteristics InferBinary(const Hop& hop) {
  const Hop* a = hop.input(0);
  const Hop* b = hop.input(1);
  // Scalar-scalar.
  if (!a->is_matrix() && !b->is_matrix()) return ScalarMc();
  // Matrix side defines the output shape (broadcasting).
  const MatrixCharacteristics& ma = a->is_matrix() ? a->mc() : b->mc();
  MatrixCharacteristics out(ma.rows(), ma.cols());
  if (!out.dims_known()) return out;

  double spa = a->is_matrix() ? a->mc().SparsityOrWorstCase() : 1.0;
  double spb = b->is_matrix() ? b->mc().SparsityOrWorstCase() : 1.0;
  bool a_known = !a->is_matrix() || a->mc().nnz_known();
  bool b_known = !b->is_matrix() || b->mc().nnz_known();

  // Matrix op scalar-literal: sparsity depends on whether zero cells stay
  // zero under the op.
  double blit = 0.0;
  bool b_is_lit = LiteralValue(b, &blit);
  if (a->is_matrix() && !b->is_matrix()) {
    if (!a_known) return out;  // unknown nnz
    switch (hop.bin_op) {
      case BinOp::kMul:
      case BinOp::kDiv:
      case BinOp::kPow:
        out.set_nnz(NnzFromSparsity(out, spa));  // zero-preserving
        return out;
      case BinOp::kAdd:
      case BinOp::kSub:
        if (b_is_lit && blit == 0.0) {
          out.set_nnz(NnzFromSparsity(out, spa));
          return out;
        }
        out.set_nnz(NnzFromSparsity(out, 1.0));
        return out;
      default:
        out.set_nnz(NnzFromSparsity(out, 1.0));  // comparisons: worst case
        return out;
    }
  }
  if (!a->is_matrix() && b->is_matrix()) {
    // scalar op matrix: mirror the matrix-scalar rules conservatively.
    if (!b_known) return out;
    switch (hop.bin_op) {
      case BinOp::kMul:
        out.set_nnz(NnzFromSparsity(out, spb));
        return out;
      default:
        out.set_nnz(NnzFromSparsity(out, 1.0));
        return out;
    }
  }
  // Matrix-matrix.
  if (!a_known || !b_known) return out;  // unknown nnz
  switch (hop.bin_op) {
    case BinOp::kMul:
    case BinOp::kAnd:
      out.set_nnz(NnzFromSparsity(out, std::min(spa, spb)));
      return out;
    case BinOp::kAdd:
    case BinOp::kSub:
      out.set_nnz(NnzFromSparsity(out, std::min(1.0, spa + spb)));
      return out;
    case BinOp::kDiv:
    case BinOp::kPow:
      out.set_nnz(NnzFromSparsity(out, spa));
      return out;
    default:
      out.set_nnz(NnzFromSparsity(out, 1.0));
      return out;
  }
}

MatrixCharacteristics InferMatMult(const Hop& hop) {
  const auto& a = hop.input(0)->mc();
  const auto& b = hop.input(1)->mc();
  MatrixCharacteristics out(a.rows(), b.cols());
  if (!out.dims_known() || !a.fully_known() || !b.fully_known()) return out;
  // Worst-case sparsity estimate: sp = min(1, spA * spB * k).
  double sp = std::min(
      1.0, a.SparsityOrWorstCase() * b.SparsityOrWorstCase() *
               static_cast<double>(a.cols()));
  out.set_nnz(NnzFromSparsity(out, sp));
  return out;
}

MatrixCharacteristics InferAggUnary(const Hop& hop) {
  const auto& in = hop.input(0)->mc();
  switch (hop.agg_dir) {
    case AggDir::kAll:
      return ScalarMc();
    case AggDir::kRow: {
      MatrixCharacteristics out(in.rows(), 1);
      if (out.dims_known()) out.set_nnz(out.rows());
      return out;
    }
    case AggDir::kCol: {
      MatrixCharacteristics out(1, in.cols());
      if (out.dims_known()) out.set_nnz(out.cols());
      return out;
    }
  }
  return MatrixCharacteristics::Unknown();
}

MatrixCharacteristics InferReorg(const Hop& hop) {
  const auto& in = hop.input(0)->mc();
  if (hop.reorg_op == ReorgOp::kTranspose) {
    return MatrixCharacteristics(in.cols(), in.rows(), in.nnz());
  }
  // diag: vector -> diagonal matrix; matrix -> diagonal vector.
  if (in.cols() == 1) {
    MatrixCharacteristics out(in.rows(), in.rows());
    out.set_nnz(in.nnz());
    return out;
  }
  MatrixCharacteristics out(in.rows(), 1);
  if (in.dims_known() && in.nnz_known()) {
    out.set_nnz(std::min(in.rows(), in.nnz()));
  }
  return out;
}

MatrixCharacteristics InferDataGen(const Hop& hop) {
  switch (hop.datagen_op) {
    case DataGenOp::kConstMatrix:
    case DataGenOp::kRand: {
      // inputs: [value, rows, cols] or [rows, cols, sparsity...] for rand;
      // the builder normalizes to [value, rows, cols, sparsity?].
      double rows = 0;
      double cols = 0;
      if (hop.inputs().size() < 3 ||
          !LiteralValue(hop.input(1), &rows) ||
          !LiteralValue(hop.input(2), &cols)) {
        return MatrixCharacteristics::Unknown();
      }
      MatrixCharacteristics out(static_cast<int64_t>(rows),
                                static_cast<int64_t>(cols));
      double value = 1.0;
      double sparsity = 1.0;
      LiteralValue(hop.input(0), &value);
      if (hop.inputs().size() >= 4) {
        LiteralValue(hop.input(3), &sparsity);
      }
      if (hop.datagen_op == DataGenOp::kConstMatrix) {
        out.set_nnz(value == 0.0 ? 0 : out.cells());
      } else {
        out.set_nnz(NnzFromSparsity(out, sparsity));
      }
      return out;
    }
    case DataGenOp::kSeq: {
      double from = 0;
      double to = 0;
      double incr = 1;
      if (hop.inputs().size() < 2 ||
          !LiteralValue(hop.input(0), &from) ||
          !LiteralValue(hop.input(1), &to)) {
        return MatrixCharacteristics(kUnknown, 1);
      }
      if (hop.inputs().size() >= 3) {
        if (!LiteralValue(hop.input(2), &incr)) {
          return MatrixCharacteristics(kUnknown, 1);
        }
      }
      if (incr == 0.0) return MatrixCharacteristics(kUnknown, 1);
      int64_t n = static_cast<int64_t>(std::floor((to - from) / incr)) + 1;
      n = std::max<int64_t>(n, 0);
      return MatrixCharacteristics(n, 1, n);
    }
  }
  return MatrixCharacteristics::Unknown();
}

MatrixCharacteristics InferIndexing(const Hop& hop) {
  // inputs: [target, rl, ru, cl, cu]; value -1 encodes "to the end".
  const auto& in = hop.input(0)->mc();
  double rl = 0;
  double ru = 0;
  double cl = 0;
  double cu = 0;
  bool rl_k = LiteralValue(hop.input(1), &rl);
  bool ru_k = LiteralValue(hop.input(2), &ru);
  bool cl_k = LiteralValue(hop.input(3), &cl);
  bool cu_k = LiteralValue(hop.input(4), &cu);
  auto extent = [](bool lo_known, double lo, bool hi_known, double hi,
                   int64_t full) -> int64_t {
    if (lo_known && lo == 1 && hi_known && hi == -1) return full;  // all
    if (hi_known && hi == -1) {
      // lo : end
      if (!lo_known || full < 0) return kUnknown;
      return full - static_cast<int64_t>(lo) + 1;
    }
    if (lo_known && hi_known) {
      return static_cast<int64_t>(hi) - static_cast<int64_t>(lo) + 1;
    }
    return kUnknown;
  };
  int64_t out_rows = extent(rl_k, rl, ru_k, ru, in.rows());
  int64_t out_cols = extent(cl_k, cl, cu_k, cu, in.cols());
  // Single-index forms share the same bound node (X[i, ]): extent 1 even
  // when the bound value itself is unknown.
  if (hop.input(1) == hop.input(2)) out_rows = 1;
  if (hop.input(3) == hop.input(4)) out_cols = 1;
  MatrixCharacteristics out(out_rows, out_cols);
  if (out.dims_known() && in.fully_known() && in.cells() > 0) {
    // Proportional nnz estimate.
    double frac = static_cast<double>(out.cells()) /
                  static_cast<double>(in.cells());
    out.set_nnz(std::min<int64_t>(
        out.cells(),
        static_cast<int64_t>(std::ceil(frac * in.nnz()))));
  }
  return out;
}

}  // namespace

int64_t SaturatingAdd(int64_t a, int64_t b) {
  if (a >= kUnknownSizeSentinel || b >= kUnknownSizeSentinel) {
    return kUnknownSizeSentinel;
  }
  int64_t s = a + b;
  return s >= kUnknownSizeSentinel ? kUnknownSizeSentinel : s;
}

void ComputeMemoryEstimates(Hop* hop) {
  int64_t out_mem;
  if (!hop->is_matrix()) {
    out_mem = kScalarMem;
  } else {
    out_mem = EstimateSizeInMemory(hop->mc());
  }
  hop->set_output_mem(out_mem);

  // Operation memory: inputs pinned + output (+ op-specific scratch).
  // A hop consumed through several input slots (e.g. X*X) is pinned
  // only once.
  int64_t op_mem = out_mem;
  for (size_t i = 0; i < hop->inputs().size(); ++i) {
    const Hop* in = hop->input(i);
    bool seen = false;
    for (size_t j = 0; j < i; ++j) {
      if (hop->input(j) == in) seen = true;
    }
    if (seen) continue;
    op_mem = SaturatingAdd(op_mem,
                           in->is_matrix() ? in->output_mem() : kScalarMem);
  }
  switch (hop->kind()) {
    case HopKind::kSolve:
      // Dense working copy of the coefficient matrix.
      if (!hop->inputs().empty()) {
        op_mem = SaturatingAdd(op_mem, hop->input(0)->output_mem());
      }
      break;
    case HopKind::kTransientRead:
    case HopKind::kTransientWrite:
      // Logical renames; no additional footprint beyond the data itself.
      op_mem = out_mem;
      break;
    default:
      break;
  }
  hop->set_op_mem(op_mem);
}

void InferHopCharacteristics(Hop* hop) {
  switch (hop->kind()) {
    case HopKind::kLiteral:
      hop->set_mc(ScalarMc());
      break;
    case HopKind::kTransientRead:
    case HopKind::kPersistentRead:
      // Characteristics assigned by the builder from symbols / HDFS.
      break;
    case HopKind::kTransientWrite:
    case HopKind::kPersistentWrite:
    case HopKind::kPrint:
      hop->set_mc(hop->inputs().empty() ? ScalarMc()
                                        : hop->input(0)->mc());
      break;
    case HopKind::kBinary:
      hop->set_mc(InferBinary(*hop));
      break;
    case HopKind::kUnary: {
      if (!hop->is_matrix()) {
        hop->set_mc(ScalarMc());
        break;
      }
      const auto& in = hop->input(0)->mc();
      MatrixCharacteristics out(in.rows(), in.cols());
      switch (hop->un_op) {
        case UnOp::kNeg:
        case UnOp::kAbs:
        case UnOp::kSqrt:
        case UnOp::kRound:
        case UnOp::kFloor:
        case UnOp::kCeil:
        case UnOp::kSign:
          out.set_nnz(in.nnz());  // zero-preserving
          break;
        default:
          if (out.dims_known()) out.set_nnz(out.cells());  // densifying
          break;
      }
      hop->set_mc(out);
      break;
    }
    case HopKind::kAggUnary:
      hop->set_mc(InferAggUnary(*hop));
      break;
    case HopKind::kMatMult:
      hop->set_mc(InferMatMult(*hop));
      break;
    case HopKind::kReorg:
      hop->set_mc(InferReorg(*hop));
      break;
    case HopKind::kDataGen:
      hop->set_mc(InferDataGen(*hop));
      break;
    case HopKind::kTernary:
      // table(): output dimensions depend on the data (max category
      // values) and are unknown during initial compilation.
      hop->set_mc(MatrixCharacteristics::Unknown());
      break;
    case HopKind::kIndexing:
      hop->set_mc(InferIndexing(*hop));
      break;
    case HopKind::kLeftIndexing: {
      // inputs: [target, value, rl, ru, cl, cu]; the output keeps the
      // target's shape; worst-case nnz adds the value's nnz.
      const auto& t = hop->input(0)->mc();
      const auto& v = hop->input(1)->mc();
      MatrixCharacteristics out(t.rows(), t.cols());
      if (out.dims_known() && t.nnz_known() && v.nnz_known()) {
        out.set_nnz(std::min(out.cells(), t.nnz() + v.nnz()));
      }
      hop->set_mc(out);
      break;
    }
    case HopKind::kAppend: {
      const auto& a = hop->input(0)->mc();
      const auto& b = hop->input(1)->mc();
      MatrixCharacteristics out(
          a.rows(), (a.cols() >= 0 && b.cols() >= 0) ? a.cols() + b.cols()
                                                     : kUnknown);
      if (a.nnz_known() && b.nnz_known()) out.set_nnz(a.nnz() + b.nnz());
      hop->set_mc(out);
      break;
    }
    case HopKind::kSolve: {
      const auto& b = hop->input(1)->mc();
      MatrixCharacteristics out(b.rows(), b.cols());
      if (out.dims_known()) out.set_nnz(out.cells());
      hop->set_mc(out);
      break;
    }
    case HopKind::kDimExtract:
      hop->set_mc(ScalarMc());
      break;
    case HopKind::kCast:
      if (hop->is_matrix()) {
        // as.matrix(scalar) -> 1x1 matrix.
        hop->set_mc(MatrixCharacteristics(1, 1, 1));
      } else {
        hop->set_mc(ScalarMc());
      }
      break;
    case HopKind::kFunctionCall:
    case HopKind::kFunctionOutput:
      // Outputs of user-defined functions are unknown to the initial
      // compilation (no inter-procedural analysis, like the paper's GLM).
      if (hop->is_matrix()) {
        hop->set_mc(MatrixCharacteristics::Unknown());
      } else {
        hop->set_mc(ScalarMc());
      }
      break;
  }
  ComputeMemoryEstimates(hop);
}

}  // namespace relm

#include "hops/dag_builder.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "hops/rewrites.h"
#include "hops/size_propagation.h"
#include "lang/statement_block.h"
#include "lang/validator.h"

namespace relm {
namespace {

Status ErrorAt(int line, const std::string& msg) {
  std::ostringstream os;
  os << "line " << line << ": " << msg;
  return Status::CompileError(os.str());
}

/// Per-generic-block construction context: current variable definitions,
/// CSE table, and accumulated side-effect roots.
struct DagContext {
  std::map<std::string, HopPtr> var_hops;  // in-block definitions/reads
  std::unordered_map<std::string, HopPtr> cse;
  std::vector<HopPtr> roots;  // prints/persistent writes, program order
};

/// Maps ppred operator strings to BinOps.
Result<BinOp> PpredOp(const std::string& s, int line) {
  if (s == ">") return BinOp::kGreater;
  if (s == ">=") return BinOp::kGreaterEq;
  if (s == "<") return BinOp::kLess;
  if (s == "<=") return BinOp::kLessEq;
  if (s == "==") return BinOp::kEq;
  if (s == "!=") return BinOp::kNotEq;
  return ErrorAt(line, "unknown ppred operator '" + s + "'");
}

}  // namespace

/// The actual builder implementation.
class IrBuilder::Impl {
 public:
  Impl(MlProgram* program, const SymbolMap& overrides)
      : program_(program), overrides_(overrides) {}

  Status Build() {
    // Main program.
    SymbolMap table;
    RELM_RETURN_IF_ERROR(
        ProcessSeq(program_->blocks_.main, &table, /*store=*/true));
    // Function bodies: parameters have unknown characteristics (no
    // inter-procedural analysis, mirroring the paper's GLM behaviour).
    for (auto& [name, fn_blocks] : program_->blocks_.functions) {
      const FunctionDef& fn = program_->ast_.functions.at(name);
      SymbolMap fn_table;
      for (const auto& p : fn.params) {
        SymbolInfo info;
        info.dtype = p.data_type;
        info.vtype = p.value_type;
        info.mc = MatrixCharacteristics::Unknown();
        // Dynamic recompilation may have recorded actual argument sizes
        // under the qualified key "<function>/<param>".
        auto oit = overrides_.find(name + "/" + p.name);
        if (oit != overrides_.end()) info.mc = oit->second.mc;
        fn_table[p.name] = info;
      }
      RELM_RETURN_IF_ERROR(ProcessSeq(fn_blocks, &fn_table, /*store=*/true));
    }
    return Status::OK();
  }

 private:
  // ---------------- block walking ----------------

  Status ProcessSeq(std::vector<BlockPtr>& blocks, SymbolMap* table,
                    bool store) {
    for (auto& blk : blocks) {
      RELM_RETURN_IF_ERROR(ProcessBlock(blk.get(), table, store));
    }
    return Status::OK();
  }

  Status ProcessBlock(StatementBlock* blk, SymbolMap* table, bool store) {
    BlockIR ir;
    ir.block = blk;
    if (store) ir.entry_symbols = *table;
    switch (blk->kind()) {
      case BlockKind::kGeneric:
        RELM_RETURN_IF_ERROR(BuildGenericDag(blk, table, &ir));
        break;
      case BlockKind::kIf:
        RELM_RETURN_IF_ERROR(ProcessIf(blk, table, store, &ir));
        break;
      case BlockKind::kWhile:
        RELM_RETURN_IF_ERROR(ProcessWhile(blk, table, store, &ir));
        break;
      case BlockKind::kFor:
        RELM_RETURN_IF_ERROR(ProcessFor(blk, table, store, &ir));
        break;
    }
    FinishIr(&ir);
    if (store) program_->ir_[blk->id()] = std::move(ir);
    return Status::OK();
  }

  void FinishIr(BlockIR* ir) {
    MarkFusedTransposes(ir);
    ir->has_unknown_dims = false;
    for (Hop* h : ir->dag.TopoOrder()) {
      if (h->is_matrix() && !h->mc().dims_known()) {
        ir->has_unknown_dims = true;
        break;
      }
    }
  }

  /// Marks transposes consumed exclusively as the left input of matrix
  /// multiplies as fused (never materialized), and corrects the memory
  /// estimates of the consuming multiplies: the fused pattern pins X
  /// once, not X plus its transposed copy.
  static void MarkFusedTransposes(BlockIR* ir) {
    std::vector<Hop*> topo = ir->dag.TopoOrder();
    std::unordered_map<const Hop*, std::vector<Hop*>> consumers;
    for (Hop* h : topo) {
      for (const auto& in : h->inputs()) consumers[in.get()].push_back(h);
    }
    for (Hop* h : topo) {
      if (h->kind() != HopKind::kReorg ||
          h->reorg_op != ReorgOp::kTranspose) {
        continue;
      }
      auto cit = consumers.find(h);
      if (cit == consumers.end() || cit->second.empty()) continue;
      bool all_mm_left = true;
      for (Hop* c : cit->second) {
        if (c->kind() != HopKind::kMatMult || c->input(0) != h) {
          all_mm_left = false;
        }
      }
      if (!all_mm_left) continue;
      h->set_fused(true);
      for (Hop* c : cit->second) {
        // op_mem: X (+ second input unless it is X again, i.e. TSMM) + out.
        int64_t op_mem = SaturatingAdd(c->output_mem(),
                                       h->input(0)->output_mem());
        if (c->input(1) != h->input(0)) {
          op_mem = SaturatingAdd(op_mem, c->input(1)->output_mem());
        }
        c->set_op_mem(op_mem);
      }
    }
  }

  Status ProcessIf(StatementBlock* blk, SymbolMap* table, bool store,
                   BlockIR* ir) {
    const auto& stmt = static_cast<const IfStmt&>(*blk->control);
    LocScope loc(this, stmt.line, stmt.column);
    DagContext ctx;
    RELM_ASSIGN_OR_RETURN(HopPtr pred, BuildExpr(*stmt.predicate, &ctx,
                                                 table));
    ir->dag.roots.push_back(pred);
    // Static branch removal when the predicate folded to a literal.
    if (pred->kind() == HopKind::kLiteral && !pred->literal_is_string) {
      ir->taken_branch = pred->literal_value != 0.0 ? 0 : 1;
    }
    SymbolMap entry = *table;
    if (ir->taken_branch == 0) {
      // Taken branch updates the real table; the dead branch is still
      // compiled (on a scratch table) so its IR exists for completeness.
      RELM_RETURN_IF_ERROR(ProcessSeq(blk->body, table, store));
      SymbolMap scratch = entry;
      RELM_RETURN_IF_ERROR(ProcessSeq(blk->else_body, &scratch, store));
      return Status::OK();
    }
    if (ir->taken_branch == 1) {
      SymbolMap scratch = entry;
      RELM_RETURN_IF_ERROR(ProcessSeq(blk->body, &scratch, store));
      RELM_RETURN_IF_ERROR(ProcessSeq(blk->else_body, table, store));
      return Status::OK();
    }
    // Unknown predicate: process both branches and merge conservatively.
    SymbolMap then_table = entry;
    SymbolMap else_table = entry;
    RELM_RETURN_IF_ERROR(ProcessSeq(blk->body, &then_table, store));
    RELM_RETURN_IF_ERROR(ProcessSeq(blk->else_body, &else_table, store));
    *table = MergeTables(then_table, else_table);
    return Status::OK();
  }

  Status ProcessWhile(StatementBlock* blk, SymbolMap* table, bool store,
                      BlockIR* ir) {
    const auto& stmt = static_cast<const WhileStmt&>(*blk->control);
    LocScope loc(this, stmt.line, stmt.column);
    // Trial pass: detect unstable variable sizes across the back edge.
    SymbolMap snapshot = *table;
    SymbolMap trial = *table;
    RELM_RETURN_IF_ERROR(ProcessSeq(blk->body, &trial, /*store=*/false));
    SymbolMap stable = DegradeUnstable(snapshot, trial, blk->updated);
    // Predicate DAG against the stabilized table.
    DagContext ctx;
    RELM_ASSIGN_OR_RETURN(HopPtr pred, BuildExpr(*stmt.predicate, &ctx,
                                                 &stable));
    ir->dag.roots.push_back(pred);
    ir->estimated_iterations = EstimateWhileIterations(pred.get());
    ir->iterations_known = false;
    // Real pass.
    *table = stable;
    RELM_RETURN_IF_ERROR(ProcessSeq(blk->body, table, store));
    // Post-loop state: loop may run zero times.
    *table = MergeTables(stable, *table);
    return Status::OK();
  }

  Status ProcessFor(StatementBlock* blk, SymbolMap* table, bool store,
                    BlockIR* ir) {
    const auto& stmt = static_cast<const ForStmt&>(*blk->control);
    LocScope loc(this, stmt.line, stmt.column);
    DagContext ctx;
    RELM_ASSIGN_OR_RETURN(HopPtr from, BuildExpr(*stmt.from, &ctx, table));
    RELM_ASSIGN_OR_RETURN(HopPtr to, BuildExpr(*stmt.to, &ctx, table));
    HopPtr incr;
    if (stmt.increment) {
      RELM_ASSIGN_OR_RETURN(incr, BuildExpr(*stmt.increment, &ctx, table));
    }
    ir->dag.roots.push_back(from);
    ir->dag.roots.push_back(to);
    if (incr) ir->dag.roots.push_back(incr);
    // Iteration count from literal bounds.
    if (from->kind() == HopKind::kLiteral && to->kind() == HopKind::kLiteral &&
        (!incr || incr->kind() == HopKind::kLiteral)) {
      double step = incr ? incr->literal_value : 1.0;
      if (step != 0.0) {
        double n = std::floor(
                       (to->literal_value - from->literal_value) / step) +
                   1;
        ir->estimated_iterations = std::max(0.0, n);
        ir->iterations_known = true;
      }
    }
    if (!ir->iterations_known) {
      ir->estimated_iterations = kDefaultLoopIterations;
    }
    // Loop variable: scalar with unknown value inside the body.
    SymbolMap snapshot = *table;
    SymbolInfo loop_var;
    loop_var.dtype = DataType::kScalar;
    loop_var.vtype = ValueType::kInt;
    snapshot[stmt.var] = loop_var;
    SymbolMap trial = snapshot;
    RELM_RETURN_IF_ERROR(ProcessSeq(blk->body, &trial, /*store=*/false));
    SymbolMap stable = DegradeUnstable(snapshot, trial, blk->updated);
    stable[stmt.var] = loop_var;
    *table = stable;
    RELM_RETURN_IF_ERROR(ProcessSeq(blk->body, table, store));
    *table = MergeTables(stable, *table);
    return Status::OK();
  }

  /// Degrades symbols whose characteristics changed across one loop-body
  /// evaluation: changed dims -> unknown dims, changed nnz -> unknown nnz,
  /// changed scalar constants -> unknown value.
  static SymbolMap DegradeUnstable(const SymbolMap& before,
                                   const SymbolMap& after,
                                   const std::set<std::string>& updated) {
    SymbolMap out = before;
    for (const auto& var : updated) {
      auto bit = before.find(var);
      auto ait = after.find(var);
      if (ait == after.end()) continue;
      if (bit == before.end()) {
        // Variable first defined inside the loop; keep the body result but
        // degrade scalar constants (value differs per iteration).
        SymbolInfo info = ait->second;
        info.scalar_known = false;
        out[var] = info;
        continue;
      }
      SymbolInfo info = bit->second;
      const SymbolInfo& b = bit->second;
      const SymbolInfo& a = ait->second;
      if (b.dtype == DataType::kMatrix || a.dtype == DataType::kMatrix) {
        if (b.mc.rows() != a.mc.rows() || b.mc.cols() != a.mc.cols()) {
          info.mc = MatrixCharacteristics::Unknown();
        } else if (b.mc.nnz() != a.mc.nnz()) {
          info.mc.set_nnz(kUnknown);
        }
      }
      if (b.dtype == DataType::kScalar) {
        if (!b.scalar_known || !a.scalar_known ||
            b.scalar_value != a.scalar_value ||
            b.string_value != a.string_value) {
          info.scalar_known = false;
        }
      }
      out[var] = info;
    }
    return out;
  }

  static SymbolMap MergeTables(const SymbolMap& a, const SymbolMap& b) {
    SymbolMap out;
    for (const auto& [name, ia] : a) {
      auto it = b.find(name);
      if (it == b.end()) {
        out[name] = ia;
        continue;
      }
      const SymbolInfo& ib = it->second;
      SymbolInfo merged = ia;
      if (ia.dtype != ib.dtype) {
        merged.dtype = DataType::kUnknown;
        merged.mc = MatrixCharacteristics::Unknown();
        merged.scalar_known = false;
      } else if (ia.dtype == DataType::kMatrix) {
        if (ia.mc.rows() != ib.mc.rows() || ia.mc.cols() != ib.mc.cols()) {
          merged.mc = MatrixCharacteristics::Unknown();
        } else if (ia.mc.nnz() != ib.mc.nnz()) {
          merged.mc.set_nnz(kUnknown);
        }
      } else {
        if (!ia.scalar_known || !ib.scalar_known ||
            ia.scalar_value != ib.scalar_value ||
            ia.string_value != ib.string_value) {
          merged.scalar_known = false;
        }
      }
      out[name] = merged;
    }
    for (const auto& [name, ib] : b) {
      if (!out.count(name)) out[name] = ib;
    }
    return out;
  }

  /// While-loop iteration estimate: look for `i < bound` / `i <= bound`
  /// with a literal bound in the predicate DAG; otherwise use the default
  /// constant.
  static double EstimateWhileIterations(Hop* pred) {
    double best = -1.0;
    std::vector<Hop*> stack{pred};
    while (!stack.empty()) {
      Hop* h = stack.back();
      stack.pop_back();
      if (h->kind() == HopKind::kBinary &&
          (h->bin_op == BinOp::kLess || h->bin_op == BinOp::kLessEq)) {
        Hop* rhs = h->input(1);
        if (rhs->kind() == HopKind::kLiteral && !rhs->literal_is_string &&
            h->input(0)->kind() == HopKind::kTransientRead) {
          double bound = rhs->literal_value;
          if (h->bin_op == BinOp::kLessEq) bound += 1;
          if (bound >= 1 && (best < 0 || bound < best)) best = bound;
        }
      }
      for (const auto& in : h->inputs()) stack.push_back(in.get());
    }
    if (best < 0) return kDefaultLoopIterations;
    return std::min(best, 1000.0);
  }

  // ---------------- generic-block DAG construction ----------------

  Status BuildGenericDag(StatementBlock* blk, SymbolMap* table,
                         BlockIR* ir) {
    DagContext ctx;
    for (const Statement* stmt : blk->statements) {
      RELM_RETURN_IF_ERROR(ProcessStatement(*stmt, &ctx, table));
    }
    // Transient writes for live-out variables updated in this block.
    for (const auto& var : blk->live_out) {
      if (!blk->updated.count(var)) continue;
      auto it = ctx.var_hops.find(var);
      if (it == ctx.var_hops.end()) continue;
      auto tw = NewHop(HopKind::kTransientWrite, it->second->data_type());
      // Point the write at the defining statement, not the block's end.
      tw->set_location(it->second->line(), it->second->column());
      tw->set_name(var);
      tw->set_value_type(it->second->value_type());
      tw->AddInput(it->second);
      InferHopCharacteristics(tw.get());
      ctx.roots.push_back(tw);
    }
    ir->dag.roots = std::move(ctx.roots);
    return Status::OK();
  }

  Status ProcessStatement(const Statement& stmt, DagContext* ctx,
                          SymbolMap* table) {
    LocScope loc(this, stmt.line, stmt.column);
    switch (stmt.kind) {
      case Statement::Kind::kAssign: {
        const auto& a = static_cast<const AssignStmt&>(stmt);
        // Left indexing: partial update of an existing matrix.
        if (a.has_left_index) {
          RELM_ASSIGN_OR_RETURN(
              HopPtr target, ReadVar(a.targets[0], stmt.line, ctx, table));
          RELM_ASSIGN_OR_RETURN(HopPtr value, BuildExpr(*a.rhs, ctx,
                                                        table));
          auto bound = [&](const ExprPtr& e,
                           double def) -> Result<HopPtr> {
            if (!e) {
              HopPtr h = MakeNumericLiteral(def);
              Stamp(h.get());
              InferHopCharacteristics(h.get());
              return h;
            }
            return BuildExpr(*e, ctx, table);
          };
          RELM_ASSIGN_OR_RETURN(HopPtr rl, bound(a.li_row_lower, 1));
          HopPtr ru;
          if (a.li_row_lower && !a.li_row_upper) {
            ru = rl;
          } else {
            RELM_ASSIGN_OR_RETURN(ru, bound(a.li_row_upper, -1));
          }
          RELM_ASSIGN_OR_RETURN(HopPtr cl, bound(a.li_col_lower, 1));
          HopPtr cu;
          if (a.li_col_lower && !a.li_col_upper) {
            cu = cl;
          } else {
            RELM_ASSIGN_OR_RETURN(cu, bound(a.li_col_upper, -1));
          }
          auto h = NewHop(HopKind::kLeftIndexing, DataType::kMatrix);
          h->AddInput(target);
          h->AddInput(value);
          h->AddInput(rl);
          h->AddInput(ru);
          h->AddInput(cl);
          h->AddInput(cu);
          InferHopCharacteristics(h.get());
          Assign(a.targets[0], h, ctx, table);
          return Status::OK();
        }
        // Multi-return user-function call.
        if (a.targets.size() > 1) {
          const auto& call = static_cast<const CallExpr&>(*a.rhs);
          RELM_ASSIGN_OR_RETURN(HopPtr fcall,
                                BuildFunctionCall(call, ctx, table));
          const FunctionDef& fn =
              program_->ast_.functions.at(call.function);
          for (size_t i = 0; i < a.targets.size(); ++i) {
            auto out = NewHop(HopKind::kFunctionOutput,
                              fn.returns[i].data_type);
            out->function_output_index = static_cast<int>(i);
            out->AddInput(fcall);
            InferHopCharacteristics(out.get());
            ApplyReturnOverride(out.get(), call.function,
                                fn.returns[i].name);
            Assign(a.targets[i], out, ctx, table);
          }
          return Status::OK();
        }
        RELM_ASSIGN_OR_RETURN(HopPtr rhs, BuildExpr(*a.rhs, ctx, table));
        Assign(a.targets[0], rhs, ctx, table);
        return Status::OK();
      }
      case Statement::Kind::kExpr: {
        const auto& e = static_cast<const ExprStmt&>(stmt);
        if (e.expr->kind == Expr::Kind::kCall) {
          const auto& call = static_cast<const CallExpr&>(*e.expr);
          if (call.function == "print" || call.function == "stop") {
            RELM_ASSIGN_OR_RETURN(
                HopPtr arg, BuildExpr(*call.args[0].value, ctx, table));
            auto p = NewHop(HopKind::kPrint, DataType::kScalar);
            p->set_value_type(ValueType::kString);
            p->AddInput(arg);
            InferHopCharacteristics(p.get());
            ctx->roots.push_back(p);
            return Status::OK();
          }
          if (call.function == "write") {
            RELM_ASSIGN_OR_RETURN(
                HopPtr data, BuildExpr(*call.args[0].value, ctx, table));
            RELM_ASSIGN_OR_RETURN(
                HopPtr path, BuildExpr(*call.args[1].value, ctx, table));
            if (path->kind() != HopKind::kLiteral ||
                !path->literal_is_string) {
              return ErrorAt(stmt.line,
                             "write() requires a literal output path");
            }
            auto w = NewHop(HopKind::kPersistentWrite, data->data_type());
            w->set_name(path->literal_string);
            w->AddInput(data);
            InferHopCharacteristics(w.get());
            ctx->roots.push_back(w);
            return Status::OK();
          }
        }
        // Any other expression statement: evaluate for side effects
        // (none in the supported subset) — build and drop.
        RELM_ASSIGN_OR_RETURN(HopPtr ignored, BuildExpr(*e.expr, ctx,
                                                        table));
        (void)ignored;
        return Status::OK();
      }
      default:
        return Status::Internal("control statement inside generic block");
    }
  }

  /// Assigns hop as the new definition of `var`, applying size overrides
  /// for operators whose output dims are unknown, and updating the
  /// propagation symbol table.
  void Assign(const std::string& var, HopPtr hop, DagContext* ctx,
              SymbolMap* table) {
    if (hop->is_matrix() && !hop->mc().dims_known()) {
      auto it = overrides_.find(var);
      if (it != overrides_.end()) {
        hop->set_mc(it->second.mc);
        ComputeMemoryEstimates(hop.get());
      }
    }
    ctx->var_hops[var] = hop;
    SymbolInfo info;
    info.dtype = hop->data_type();
    info.vtype = hop->value_type();
    if (hop->is_matrix()) {
      info.mc = hop->mc();
    } else if (hop->kind() == HopKind::kLiteral) {
      info.scalar_known = true;
      if (hop->literal_is_string) {
        info.is_string = true;
        info.string_value = hop->literal_string;
      } else {
        info.scalar_value = hop->literal_value;
      }
    }
    (*table)[var] = info;
  }

  // ---------------- expression construction ----------------

  /// Assigns the next hop id and stamps the current script position so
  /// every diagnostic downstream can point at a real source location.
  void Stamp(Hop* h) {
    h->set_id(next_id_++);
    h->set_location(cur_line_, cur_col_);
  }

  /// Scopes the builder's current script position to one expression;
  /// restores the enclosing position on exit. Expressions without
  /// position info (synthesized bounds) inherit the enclosing one.
  class LocScope {
   public:
    LocScope(Impl* impl, int line, int column)
        : impl_(impl), saved_line_(impl->cur_line_),
          saved_col_(impl->cur_col_) {
      if (line > 0) {
        impl_->cur_line_ = line;
        impl_->cur_col_ = column;
      }
    }
    ~LocScope() {
      impl_->cur_line_ = saved_line_;
      impl_->cur_col_ = saved_col_;
    }
    LocScope(const LocScope&) = delete;
    LocScope& operator=(const LocScope&) = delete;

   private:
    Impl* impl_;
    int saved_line_;
    int saved_col_;
  };

  HopPtr NewHop(HopKind kind, DataType dtype) {
    auto h = std::make_shared<Hop>(kind, dtype);
    Stamp(h.get());
    return h;
  }

  HopPtr Intern(DagContext* ctx, const std::string& key, HopPtr hop) {
    auto it = ctx->cse.find(key);
    if (it != ctx->cse.end()) return it->second;
    Stamp(hop.get());
    InferHopCharacteristics(hop.get());
    ctx->cse.emplace(key, hop);
    return hop;
  }

  static std::string Key(const char* tag,
                         std::initializer_list<const Hop*> ins,
                         const std::string& extra = "") {
    std::ostringstream os;
    os << tag << ":" << extra;
    for (const Hop* h : ins) os << ":" << h->id();
    return os.str();
  }

  Result<HopPtr> ReadVar(const std::string& name, int line, DagContext* ctx,
                         SymbolMap* table) {
    auto vit = ctx->var_hops.find(name);
    if (vit != ctx->var_hops.end()) return vit->second;
    auto sit = table->find(name);
    if (sit == table->end()) {
      return ErrorAt(line, "undefined variable '" + name + "'");
    }
    const SymbolInfo& info = sit->second;
    HopPtr hop;
    if (info.dtype == DataType::kScalar && info.scalar_known) {
      // Constant propagation across blocks.
      hop = info.is_string ? MakeStringLiteral(info.string_value)
                           : MakeNumericLiteral(info.scalar_value);
      Stamp(hop.get());
      InferHopCharacteristics(hop.get());
    } else {
      DataType dt = info.dtype == DataType::kUnknown ? DataType::kMatrix
                                                     : info.dtype;
      hop = NewHop(HopKind::kTransientRead, dt);
      hop->set_name(name);
      hop->set_value_type(info.vtype);
      if (dt == DataType::kMatrix) hop->set_mc(info.mc);
      ComputeMemoryEstimates(hop.get());
    }
    ctx->var_hops[name] = hop;
    return hop;
  }

  Result<HopPtr> BuildExpr(const Expr& expr, DagContext* ctx,
                           SymbolMap* table) {
    LocScope loc(this, expr.line, expr.column);
    switch (expr.kind) {
      case Expr::Kind::kLiteral: {
        const auto& lit = static_cast<const LiteralExpr&>(expr);
        HopPtr h;
        switch (lit.literal_type) {
          case ValueType::kString:
            h = MakeStringLiteral(lit.str);
            break;
          case ValueType::kBoolean:
            h = MakeNumericLiteral(lit.boolean ? 1.0 : 0.0);
            h->set_value_type(ValueType::kBoolean);
            break;
          default:
            h = MakeNumericLiteral(lit.number);
            break;
        }
        Stamp(h.get());
        InferHopCharacteristics(h.get());
        return h;
      }
      case Expr::Kind::kIdent:
        return ReadVar(static_cast<const IdentExpr&>(expr).name, expr.line,
                       ctx, table);
      case Expr::Kind::kParam:
        return ErrorAt(expr.line, "unresolved script parameter");
      case Expr::Kind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(expr);
        RELM_ASSIGN_OR_RETURN(HopPtr in, BuildExpr(*u.operand, ctx, table));
        if (HopPtr folded = TryFoldUnary(u.op, in)) {
          Stamp(folded.get());
          InferHopCharacteristics(folded.get());
          return folded;
        }
        auto h = std::make_shared<Hop>(HopKind::kUnary, in->data_type());
        h->un_op = u.op;
        h->AddInput(in);
        return Intern(ctx, Key("u", {in.get()}, UnOpName(u.op)), h);
      }
      case Expr::Kind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(expr);
        RELM_ASSIGN_OR_RETURN(HopPtr lhs, BuildExpr(*b.lhs, ctx, table));
        RELM_ASSIGN_OR_RETURN(HopPtr rhs, BuildExpr(*b.rhs, ctx, table));
        return MakeBinary(b.op, lhs, rhs, ctx);
      }
      case Expr::Kind::kMatMult:
        return BuildMatMultChain(static_cast<const MatMultExpr&>(expr),
                                 ctx, table);
      case Expr::Kind::kIndex:
        return BuildIndexing(static_cast<const IndexExpr&>(expr), ctx,
                             table);
      case Expr::Kind::kCall:
        return BuildCall(static_cast<const CallExpr&>(expr), ctx, table);
    }
    return Status::Internal("unhandled expression kind");
  }

  HopPtr MakeMatMult(HopPtr lhs, HopPtr rhs, DagContext* ctx) {
    auto h = std::make_shared<Hop>(HopKind::kMatMult, DataType::kMatrix);
    h->AddInput(lhs);
    h->AddInput(rhs);
    return Intern(ctx, Key("mm", {lhs.get(), rhs.get()}), h);
  }

  /// Matrix-multiplication chain optimization (Appendix B): `%*%` parses
  /// left-deep, but for chains with known dimensions the classic
  /// dynamic program picks the association order with minimal flops
  /// (e.g. A %*% B %*% v computes B %*% v first).
  Result<HopPtr> BuildMatMultChain(const MatMultExpr& expr,
                                   DagContext* ctx, SymbolMap* table) {
    // Flatten the left spine of consecutive %*% nodes.
    std::vector<const Expr*> operands;
    const Expr* cur = &expr;
    while (cur->kind == Expr::Kind::kMatMult) {
      const auto& m = static_cast<const MatMultExpr&>(*cur);
      operands.push_back(m.rhs.get());
      cur = m.lhs.get();
    }
    operands.push_back(cur);
    std::reverse(operands.begin(), operands.end());

    std::vector<HopPtr> hops;
    hops.reserve(operands.size());
    for (const Expr* op_expr : operands) {
      RELM_ASSIGN_OR_RETURN(HopPtr h, BuildExpr(*op_expr, ctx, table));
      hops.push_back(std::move(h));
    }
    if (hops.size() == 2) {
      return MakeMatMult(hops[0], hops[1], ctx);
    }
    // Dimensions p[0..k]: operand i is p[i] x p[i+1]. Fall back to the
    // left-deep order when any dimension is unknown.
    const size_t k = hops.size();
    std::vector<double> p(k + 1);
    bool known = true;
    for (size_t i = 0; i < k; ++i) {
      const MatrixCharacteristics& mc = hops[i]->mc();
      if (!mc.dims_known()) known = false;
      if (i == 0) p[0] = static_cast<double>(mc.rows());
      p[i + 1] = static_cast<double>(mc.cols());
    }
    if (!known) {
      HopPtr acc = hops[0];
      for (size_t i = 1; i < k; ++i) acc = MakeMatMult(acc, hops[i], ctx);
      return acc;
    }
    // Standard O(k^3) chain DP on multiply costs p[i]*p[s+1]*p[j+1].
    std::vector<std::vector<double>> cost(k, std::vector<double>(k, 0.0));
    std::vector<std::vector<size_t>> split(k, std::vector<size_t>(k, 0));
    for (size_t len = 2; len <= k; ++len) {
      for (size_t i = 0; i + len - 1 < k; ++i) {
        size_t j = i + len - 1;
        cost[i][j] = -1;
        for (size_t s = i; s < j; ++s) {
          double c =
              cost[i][s] + cost[s + 1][j] + p[i] * p[s + 1] * p[j + 1];
          if (cost[i][j] < 0 || c < cost[i][j]) {
            cost[i][j] = c;
            split[i][j] = s;
          }
        }
      }
    }
    std::function<HopPtr(size_t, size_t)> build = [&](size_t i,
                                                      size_t j) -> HopPtr {
      if (i == j) return hops[i];
      size_t s = split[i][j];
      return MakeMatMult(build(i, s), build(s + 1, j), ctx);
    };
    return build(0, k - 1);
  }

  Result<HopPtr> MakeBinary(BinOp op, HopPtr lhs, HopPtr rhs,
                            DagContext* ctx) {
    if (HopPtr folded = TryFoldBinary(op, lhs, rhs)) {
      Stamp(folded.get());
      InferHopCharacteristics(folded.get());
      return folded;
    }
    // Algebraic simplifications (Appendix B): neutral elements vanish,
    // X^2 becomes the cheaper cell-wise X*X.
    if (HopPtr simplified = TrySimplifyBinary(op, lhs, rhs)) {
      return simplified;
    }
    if (IsSquarePattern(op, rhs) && lhs->is_matrix()) {
      op = BinOp::kMul;
      rhs = lhs;
    }
    bool matrix = lhs->is_matrix() || rhs->is_matrix();
    auto h = std::make_shared<Hop>(HopKind::kBinary,
                                   matrix ? DataType::kMatrix
                                          : DataType::kScalar);
    h->bin_op = op;
    // String concatenation keeps the string value type for print().
    if (op == BinOp::kAdd && (lhs->value_type() == ValueType::kString ||
                              rhs->value_type() == ValueType::kString)) {
      h->set_value_type(ValueType::kString);
    } else if (!matrix && IsComparison(op)) {
      h->set_value_type(ValueType::kBoolean);
    }
    h->AddInput(lhs);
    h->AddInput(rhs);
    return Intern(ctx, Key("b", {lhs.get(), rhs.get()}, BinOpName(op)), h);
  }

  Result<HopPtr> BuildIndexing(const IndexExpr& ix, DagContext* ctx,
                               SymbolMap* table) {
    RELM_ASSIGN_OR_RETURN(HopPtr target, BuildExpr(*ix.target, ctx, table));
    auto bound = [&](const ExprPtr& e, double def) -> Result<HopPtr> {
      if (!e) {
        HopPtr h = MakeNumericLiteral(def);
        Stamp(h.get());
        InferHopCharacteristics(h.get());
        return h;
      }
      return BuildExpr(*e, ctx, table);
    };
    // Convention: missing lower bound -> 1; missing upper bound with a
    // missing lower -> -1 ("to the end"); single index -> upper == lower.
    RELM_ASSIGN_OR_RETURN(HopPtr rl, bound(ix.row_lower, 1));
    HopPtr ru;
    if (ix.row_lower && !ix.row_upper) {
      ru = rl;  // single row
    } else {
      RELM_ASSIGN_OR_RETURN(ru, bound(ix.row_upper, -1));
    }
    RELM_ASSIGN_OR_RETURN(HopPtr cl, bound(ix.col_lower, 1));
    HopPtr cu;
    if (ix.col_lower && !ix.col_upper) {
      cu = cl;
    } else {
      RELM_ASSIGN_OR_RETURN(cu, bound(ix.col_upper, -1));
    }
    auto h = std::make_shared<Hop>(HopKind::kIndexing, DataType::kMatrix);
    h->AddInput(target);
    h->AddInput(rl);
    h->AddInput(ru);
    h->AddInput(cl);
    h->AddInput(cu);
    return Intern(
        ctx,
        Key("rix", {target.get(), rl.get(), ru.get(), cl.get(), cu.get()}),
        h);
  }

  Result<HopPtr> BuildFunctionCall(const CallExpr& call, DagContext* ctx,
                                   SymbolMap* table) {
    auto h = NewHop(HopKind::kFunctionCall, DataType::kMatrix);
    h->function_name = call.function;
    const FunctionDef& fn = program_->ast_.functions.at(call.function);
    h->num_function_outputs = static_cast<int>(fn.returns.size());
    for (const auto& arg : call.args) {
      RELM_ASSIGN_OR_RETURN(HopPtr in, BuildExpr(*arg.value, ctx, table));
      h->AddInput(in);
    }
    InferHopCharacteristics(h.get());
    return h;
  }

  Result<HopPtr> BuildCall(const CallExpr& call, DagContext* ctx,
                           SymbolMap* table) {
    const std::string& fn = call.function;
    // User-defined function in expression position: first return value.
    if (program_->ast_.functions.count(fn)) {
      RELM_ASSIGN_OR_RETURN(HopPtr fcall, BuildFunctionCall(call, ctx,
                                                            table));
      const FunctionDef& def = program_->ast_.functions.at(fn);
      auto out = NewHop(HopKind::kFunctionOutput, def.returns[0].data_type);
      out->function_output_index = 0;
      out->AddInput(fcall);
      InferHopCharacteristics(out.get());
      ApplyReturnOverride(out.get(), fn, def.returns[0].name);
      return out;
    }

    auto arg = [&](size_t i) -> const Expr& { return *call.args[i].value; };

    if (fn == "read") {
      RELM_ASSIGN_OR_RETURN(HopPtr path, BuildExpr(arg(0), ctx, table));
      if (path->kind() != HopKind::kLiteral || !path->literal_is_string) {
        return ErrorAt(call.line, "read() requires a literal path");
      }
      auto file = program_->hdfs_->Get(path->literal_string);
      if (!file.ok()) {
        return ErrorAt(call.line, "read(): " + file.status().message());
      }
      auto h = std::make_shared<Hop>(HopKind::kPersistentRead,
                                     DataType::kMatrix);
      h->set_name(path->literal_string);
      h->set_mc(file->characteristics);
      return Intern(ctx, Key("pread", {}, path->literal_string), h);
    }
    if (fn == "matrix" || fn == "rand") {
      const Expr* rows = call.Named("rows");
      const Expr* cols = call.Named("cols");
      RELM_ASSIGN_OR_RETURN(HopPtr rows_h, BuildExpr(*rows, ctx, table));
      RELM_ASSIGN_OR_RETURN(HopPtr cols_h, BuildExpr(*cols, ctx, table));
      HopPtr value_h;
      if (fn == "matrix") {
        RELM_ASSIGN_OR_RETURN(value_h, BuildExpr(arg(0), ctx, table));
      } else {
        const Expr* min = call.Named("min");
        if (min != nullptr) {
          RELM_ASSIGN_OR_RETURN(value_h, BuildExpr(*min, ctx, table));
        } else {
          value_h = MakeNumericLiteral(0.0);
          Stamp(value_h.get());
          InferHopCharacteristics(value_h.get());
        }
      }
      auto h = std::make_shared<Hop>(HopKind::kDataGen, DataType::kMatrix);
      h->datagen_op = fn == "matrix" ? DataGenOp::kConstMatrix
                                     : DataGenOp::kRand;
      h->AddInput(value_h);
      h->AddInput(rows_h);
      h->AddInput(cols_h);
      if (fn == "rand") {
        const Expr* sp = call.Named("sparsity");
        HopPtr sp_h;
        if (sp != nullptr) {
          RELM_ASSIGN_OR_RETURN(sp_h, BuildExpr(*sp, ctx, table));
        } else {
          sp_h = MakeNumericLiteral(1.0);
          Stamp(sp_h.get());
          InferHopCharacteristics(sp_h.get());
        }
        h->AddInput(sp_h);
        // No CSE for rand (non-deterministic).
        Stamp(h.get());
        InferHopCharacteristics(h.get());
        return HopPtr(h);
      }
      return Intern(ctx,
                    Key("dg", {value_h.get(), rows_h.get(), cols_h.get()}),
                    h);
    }
    if (fn == "seq") {
      auto h = std::make_shared<Hop>(HopKind::kDataGen, DataType::kMatrix);
      h->datagen_op = DataGenOp::kSeq;
      std::vector<const Hop*> keys;
      for (size_t i = 0; i < call.args.size(); ++i) {
        RELM_ASSIGN_OR_RETURN(HopPtr in, BuildExpr(arg(i), ctx, table));
        h->AddInput(in);
      }
      for (const auto& in : h->inputs()) keys.push_back(in.get());
      std::string key = "seq";
      for (const Hop* k : keys) key += ":" + std::to_string(k->id());
      return Intern(ctx, key, h);
    }
    if (fn == "t" || fn == "diag") {
      RELM_ASSIGN_OR_RETURN(HopPtr in, BuildExpr(arg(0), ctx, table));
      ReorgOp op = fn == "t" ? ReorgOp::kTranspose : ReorgOp::kDiag;
      if (HopPtr simplified = TrySimplifyReorg(op, in)) return simplified;
      auto h = std::make_shared<Hop>(HopKind::kReorg, DataType::kMatrix);
      h->reorg_op = op;
      h->AddInput(in);
      return Intern(ctx, Key("r", {in.get()}, fn), h);
    }
    if (fn == "sum" || fn == "mean" || fn == "trace" ||
        ((fn == "min" || fn == "max") && call.args.size() == 1 &&
         arg(0).data_type == DataType::kMatrix)) {
      RELM_ASSIGN_OR_RETURN(HopPtr in, BuildExpr(arg(0), ctx, table));
      auto h = std::make_shared<Hop>(HopKind::kAggUnary, DataType::kScalar);
      h->agg_op = fn == "sum" ? AggOp::kSum
                  : fn == "mean"
                      ? AggOp::kMean
                      : fn == "trace" ? AggOp::kTrace
                                      : (fn == "min" ? AggOp::kMin
                                                     : AggOp::kMax);
      h->agg_dir = AggDir::kAll;
      h->AddInput(in);
      return Intern(ctx, Key("ua", {in.get()}, fn), h);
    }
    if (fn == "min" || fn == "max") {
      // Two-argument form: cell-wise / scalar min/max.
      RELM_ASSIGN_OR_RETURN(HopPtr a, BuildExpr(arg(0), ctx, table));
      RELM_ASSIGN_OR_RETURN(HopPtr b, BuildExpr(arg(1), ctx, table));
      return MakeBinary(fn == "min" ? BinOp::kMin : BinOp::kMax, a, b, ctx);
    }
    if (fn == "rowSums" || fn == "colSums" || fn == "rowMeans" ||
        fn == "colMeans" || fn == "rowMaxs" || fn == "colMaxs") {
      RELM_ASSIGN_OR_RETURN(HopPtr in, BuildExpr(arg(0), ctx, table));
      auto h = std::make_shared<Hop>(HopKind::kAggUnary, DataType::kMatrix);
      bool row = fn[0] == 'r';
      h->agg_dir = row ? AggDir::kRow : AggDir::kCol;
      if (EndsWithStr(fn, "Sums")) {
        h->agg_op = AggOp::kSum;
      } else if (EndsWithStr(fn, "Means")) {
        h->agg_op = AggOp::kMean;
      } else {
        h->agg_op = AggOp::kMax;
      }
      h->AddInput(in);
      return Intern(ctx, Key("ua", {in.get()}, fn), h);
    }
    if (fn == "ppred") {
      RELM_ASSIGN_OR_RETURN(HopPtr a, BuildExpr(arg(0), ctx, table));
      RELM_ASSIGN_OR_RETURN(HopPtr b, BuildExpr(arg(1), ctx, table));
      const auto& op_lit = static_cast<const LiteralExpr&>(arg(2));
      RELM_ASSIGN_OR_RETURN(BinOp op, PpredOp(op_lit.str, call.line));
      return MakeBinary(op, a, b, ctx);
    }
    if (fn == "table") {
      RELM_ASSIGN_OR_RETURN(HopPtr a, BuildExpr(arg(0), ctx, table));
      RELM_ASSIGN_OR_RETURN(HopPtr b, BuildExpr(arg(1), ctx, table));
      auto h = std::make_shared<Hop>(HopKind::kTernary, DataType::kMatrix);
      h->AddInput(a);
      h->AddInput(b);
      return Intern(ctx, Key("ctable", {a.get(), b.get()}), h);
    }
    if (fn == "solve") {
      RELM_ASSIGN_OR_RETURN(HopPtr a, BuildExpr(arg(0), ctx, table));
      RELM_ASSIGN_OR_RETURN(HopPtr b, BuildExpr(arg(1), ctx, table));
      auto h = std::make_shared<Hop>(HopKind::kSolve, DataType::kMatrix);
      h->AddInput(a);
      h->AddInput(b);
      return Intern(ctx, Key("solve", {a.get(), b.get()}), h);
    }
    if (fn == "cbind" || fn == "append") {
      RELM_ASSIGN_OR_RETURN(HopPtr a, BuildExpr(arg(0), ctx, table));
      RELM_ASSIGN_OR_RETURN(HopPtr b, BuildExpr(arg(1), ctx, table));
      auto h = std::make_shared<Hop>(HopKind::kAppend, DataType::kMatrix);
      h->AddInput(a);
      h->AddInput(b);
      return Intern(ctx, Key("append", {a.get(), b.get()}), h);
    }
    if (fn == "abs" || fn == "sqrt" || fn == "exp" || fn == "log" ||
        fn == "round" || fn == "floor" || fn == "ceil" || fn == "sign") {
      RELM_ASSIGN_OR_RETURN(HopPtr in, BuildExpr(arg(0), ctx, table));
      UnOp op = fn == "abs"     ? UnOp::kAbs
                : fn == "sqrt"  ? UnOp::kSqrt
                : fn == "exp"   ? UnOp::kExp
                : fn == "log"   ? UnOp::kLog
                : fn == "round" ? UnOp::kRound
                : fn == "floor" ? UnOp::kFloor
                : fn == "ceil"  ? UnOp::kCeil
                                : UnOp::kSign;
      if (HopPtr folded = TryFoldUnary(op, in)) {
        Stamp(folded.get());
        InferHopCharacteristics(folded.get());
        return folded;
      }
      auto h = std::make_shared<Hop>(HopKind::kUnary, in->data_type());
      h->un_op = op;
      h->AddInput(in);
      return Intern(ctx, Key("u", {in.get()}, fn), h);
    }
    if (fn == "nrow" || fn == "ncol") {
      RELM_ASSIGN_OR_RETURN(HopPtr in, BuildExpr(arg(0), ctx, table));
      bool rows = fn == "nrow";
      int64_t dim = rows ? in->mc().rows() : in->mc().cols();
      if (dim >= 0) {
        HopPtr lit = MakeNumericLiteral(static_cast<double>(dim));
        Stamp(lit.get());
        lit->set_value_type(ValueType::kInt);
        InferHopCharacteristics(lit.get());
        return lit;
      }
      auto h = std::make_shared<Hop>(HopKind::kDimExtract,
                                     DataType::kScalar);
      h->dim_extract_rows = rows;
      h->set_value_type(ValueType::kInt);
      h->AddInput(in);
      return Intern(ctx, Key("dim", {in.get()}, fn), h);
    }
    if (fn == "as.scalar" || fn == "castAsScalar" || fn == "as.double" ||
        fn == "as.integer" || fn == "as.matrix") {
      RELM_ASSIGN_OR_RETURN(HopPtr in, BuildExpr(arg(0), ctx, table));
      bool to_matrix = fn == "as.matrix";
      if (!to_matrix && !in->is_matrix() &&
          in->kind() == HopKind::kLiteral) {
        return in;  // cast of a scalar literal is a no-op
      }
      auto h = std::make_shared<Hop>(
          HopKind::kCast, to_matrix ? DataType::kMatrix : DataType::kScalar);
      h->AddInput(in);
      return Intern(ctx, Key("cast", {in.get()}, fn), h);
    }
    return ErrorAt(call.line, "unsupported builtin '" + fn + "'");
  }

  /// Applies a runtime-derived function-return size override (key
  /// "<function>><return>") to a FunctionOutput hop with unknown dims.
  void ApplyReturnOverride(Hop* out, const std::string& fn,
                           const std::string& ret_name) {
    if (!out->is_matrix() || out->mc().dims_known()) return;
    auto it = overrides_.find(fn + ">" + ret_name);
    if (it == overrides_.end()) return;
    out->set_mc(it->second.mc);
    ComputeMemoryEstimates(out);
  }

  static bool EndsWithStr(const std::string& s, const std::string& suf) {
    return s.size() >= suf.size() &&
           s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
  }

  MlProgram* program_;
  const SymbolMap& overrides_;
  int64_t next_id_ = 0;
  // Script position currently being compiled (see LocScope / Stamp).
  int cur_line_ = 0;
  int cur_col_ = 0;
};

IrBuilder::IrBuilder(MlProgram* program, const SymbolMap& size_overrides)
    : program_(program), size_overrides_(size_overrides) {}

Status IrBuilder::Build() {
  Impl impl(program_, size_overrides_);
  return impl.Build();
}

}  // namespace relm

#ifndef RELM_HOPS_ML_PROGRAM_H_
#define RELM_HOPS_ML_PROGRAM_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "hdfs/file_system.h"
#include "hops/hop.h"
#include "lang/ast.h"
#include "lang/parser.h"
#include "lang/statement_block.h"

namespace relm {

/// Size/constant information of one live variable during propagation.
struct SymbolInfo {
  DataType dtype = DataType::kUnknown;
  ValueType vtype = ValueType::kDouble;
  /// Matrix characteristics (matrices only).
  MatrixCharacteristics mc = MatrixCharacteristics::Unknown();
  /// Known literal value (scalars only; enables constant propagation,
  /// branch removal, and loop-iteration estimates).
  bool scalar_known = false;
  double scalar_value = 0.0;
  bool is_string = false;
  std::string string_value;
};

using SymbolMap = std::map<std::string, SymbolInfo>;

/// Compiler IR attached to one statement block.
struct BlockIR {
  StatementBlock* block = nullptr;  // non-owning
  /// Generic blocks: the statement DAG. Control blocks: the predicate DAG
  /// (for for-loops: from/to/increment roots).
  HopDag dag;
  /// If-blocks: statically taken branch (0 = then, 1 = else, -1 unknown).
  int taken_branch = -1;
  /// Loop blocks: estimated number of iterations for cost aggregation.
  double estimated_iterations = 0.0;
  /// True when the estimate is exact (literal for-loop bounds).
  bool iterations_known = false;
  /// True when any matrix operator in the DAG has unknown dimensions.
  bool has_unknown_dims = false;
  /// Variable sizes at block entry (used for scoped re-optimization).
  SymbolMap entry_symbols;
};

/// Default loop-iteration constant used when the number of iterations is
/// unknown ("a constant which at least reflects that the body is executed
/// multiple times", Section 3.1). A while-predicate of the shape
/// `... & i < bound` with a known literal bound uses the bound instead.
inline constexpr double kDefaultLoopIterations = 10.0;

/// A fully front-end-compiled ML program: AST, statement-block hierarchy,
/// and per-block HOP DAGs with propagated sizes and memory estimates.
/// Operator selection / runtime-plan generation (the memory-sensitive,
/// repeatedly re-run part) lives in the lops layer and takes an MlProgram
/// plus a resource configuration.
class MlProgram {
 public:
  /// Runs the front-end pipeline: parse, validate, block construction,
  /// HOP DAG construction with rewrites, size propagation, and memory
  /// estimation. `hdfs` provides metadata for read() inputs and must
  /// outlive the program.
  static Result<std::unique_ptr<MlProgram>> Compile(
      const std::string& source, const ScriptArgs& args,
      const SimulatedHdfs* hdfs);

  /// Deep copy for concurrent recompilation (each parallel-optimizer
  /// worker owns its own program and HOP DAGs, Appendix C). Implemented
  /// as a deterministic re-compile of the original source plus a replay
  /// of accumulated size overrides; block and hop ids match the source
  /// program.
  Result<std::unique_ptr<MlProgram>> Clone() const;

  /// Rebuilds all HOP DAGs with updated initial variable characteristics
  /// (dynamic recompilation: sizes that became known during execution).
  /// `overrides` maps variable names to their now-known characteristics
  /// and is applied whenever the variable is (re)created by the operator
  /// recorded in the overrides (keyed by variable name).
  Status Rebuild(const SymbolMap& size_overrides);

  /// IR of a block (must exist).
  BlockIR& ir(int block_id) { return ir_.at(block_id); }
  const BlockIR& ir(int block_id) const { return ir_.at(block_id); }
  bool has_ir(int block_id) const { return ir_.count(block_id) > 0; }

  /// All blocks of the main program in pre-order (outer before nested).
  std::vector<StatementBlock*> MainBlocksPreOrder() const;
  /// All blocks including function bodies.
  std::vector<StatementBlock*> AllBlocksPreOrder() const;
  /// Last-level (generic) blocks of the main program, execution order.
  std::vector<StatementBlock*> GenericBlocks() const;

  const DmlProgram& ast() const { return ast_; }
  const ProgramBlocks& blocks() const { return blocks_; }
  ProgramBlocks& blocks() { return blocks_; }
  const SimulatedHdfs* hdfs() const { return hdfs_; }
  const ScriptArgs& args() const { return args_; }
  const std::string& source() const { return source_; }
  /// Accumulated dynamic-recompilation size overrides (empty for a
  /// freshly compiled program). Part of the program's cache signature:
  /// a Rebuild() changes what plans cost, so it must change the key.
  const SymbolMap& size_overrides() const { return size_overrides_; }

  /// Statistics for Table 1 and optimization-overhead reporting.
  int source_lines() const { return ast_.source_lines; }
  int total_blocks() const { return blocks_.TotalBlocks(); }
  bool has_unknowns() const;

  /// THE pooling predicate: true when a finished run can leave no trace
  /// on this program instance — fully size-known, function-free, and
  /// without dynamic-recompilation overrides — so the JobService may
  /// park it for reuse by the next job with the same script signature.
  /// The analysis layer's pool-purity pass cross-checks this verdict
  /// against an independent IR scan; keep the two in sync by changing
  /// only this predicate.
  bool IsPoolableTraceFree() const;

 private:
  friend class IrBuilder;

  MlProgram() = default;

  std::string source_;
  ScriptArgs args_;
  DmlProgram ast_;
  ProgramBlocks blocks_;
  std::unordered_map<int, BlockIR> ir_;
  const SimulatedHdfs* hdfs_ = nullptr;
  SymbolMap size_overrides_;
};

}  // namespace relm

#endif  // RELM_HOPS_ML_PROGRAM_H_

#include "hops/hop.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace relm {

const char* HopKindName(HopKind kind) {
  switch (kind) {
    case HopKind::kLiteral:
      return "lit";
    case HopKind::kTransientRead:
      return "tread";
    case HopKind::kPersistentRead:
      return "pread";
    case HopKind::kTransientWrite:
      return "twrite";
    case HopKind::kPersistentWrite:
      return "pwrite";
    case HopKind::kBinary:
      return "b";
    case HopKind::kUnary:
      return "u";
    case HopKind::kAggUnary:
      return "ua";
    case HopKind::kMatMult:
      return "ba(+*)";
    case HopKind::kReorg:
      return "r";
    case HopKind::kDataGen:
      return "datagen";
    case HopKind::kTernary:
      return "ctable";
    case HopKind::kIndexing:
      return "rix";
    case HopKind::kLeftIndexing:
      return "lix";
    case HopKind::kAppend:
      return "append";
    case HopKind::kSolve:
      return "solve";
    case HopKind::kFunctionCall:
      return "fcall";
    case HopKind::kFunctionOutput:
      return "fout";
    case HopKind::kDimExtract:
      return "dim";
    case HopKind::kCast:
      return "cast";
    case HopKind::kPrint:
      return "print";
  }
  return "?";
}

const char* MMultMethodName(MMultMethod method) {
  switch (method) {
    case MMultMethod::kCpMM:
      return "CP-MM";
    case MMultMethod::kMapMM:
      return "MapMM";
    case MMultMethod::kMapMMChain:
      return "MapMMChain";
    case MMultMethod::kTSMM:
      return "TSMM";
    case MMultMethod::kCPMM:
      return "CPMM";
    case MMultMethod::kRMM:
      return "RMM";
  }
  return "?";
}

double Hop::ComputeFlops() const {
  auto cells = [](const MatrixCharacteristics& mc) -> double {
    if (!mc.dims_known()) return 0.0;
    return static_cast<double>(mc.rows()) * static_cast<double>(mc.cols());
  };
  switch (kind_) {
    case HopKind::kMatMult: {
      // 2*m*k*n scaled by the sparsity of the left input.
      if (inputs_.size() < 2) return 0.0;
      const auto& a = inputs_[0]->mc();
      const auto& b = inputs_[1]->mc();
      if (!a.dims_known() || !b.dims_known()) return 0.0;
      double sp = a.SparsityOrWorstCase();
      return 2.0 * static_cast<double>(a.rows()) *
             static_cast<double>(a.cols()) * sp *
             static_cast<double>(b.cols());
    }
    case HopKind::kSolve: {
      if (inputs_.empty()) return 0.0;
      const auto& a = inputs_[0]->mc();
      if (!a.dims_known()) return 0.0;
      double n = static_cast<double>(a.rows());
      return (2.0 / 3.0) * n * n * n;
    }
    case HopKind::kBinary:
    case HopKind::kUnary:
    case HopKind::kIndexing:
    case HopKind::kLeftIndexing:
    case HopKind::kAppend:
    case HopKind::kDataGen:
      return cells(mc_);
    case HopKind::kAggUnary:
    case HopKind::kReorg:
    case HopKind::kTernary:
      return inputs_.empty() ? cells(mc_) : cells(inputs_[0]->mc());
    default:
      return 1.0;
  }
}

std::string Hop::ToString() const {
  std::ostringstream os;
  os << "(" << id_ << ") " << HopKindName(kind_);
  switch (kind_) {
    case HopKind::kBinary:
      os << "(" << BinOpName(bin_op) << ")";
      break;
    case HopKind::kUnary:
      os << "(" << UnOpName(un_op) << ")";
      break;
    case HopKind::kAggUnary:
      os << "(" << AggOpName(agg_op) << ","
         << (agg_dir == AggDir::kAll ? "all"
                                     : (agg_dir == AggDir::kRow ? "row"
                                                                : "col"))
         << ")";
      break;
    case HopKind::kReorg:
      os << "(" << (reorg_op == ReorgOp::kTranspose ? "t" : "diag") << ")";
      break;
    case HopKind::kLiteral:
      if (literal_is_string) {
        os << " \"" << literal_string << "\"";
      } else {
        os << " " << literal_value;
      }
      break;
    case HopKind::kFunctionCall:
      os << " " << function_name;
      break;
    default:
      break;
  }
  if (!name_.empty()) os << " [" << name_ << "]";
  if (is_matrix()) os << " " << mc_.ToString();
  if (!inputs_.empty()) {
    os << " <-";
    for (const auto& in : inputs_) os << " " << in->id();
  }
  return os.str();
}

std::vector<Hop*> HopDag::TopoOrder() const {
  std::vector<Hop*> order;
  std::unordered_set<const Hop*> visited;
  // Iterative post-order DFS from each root.
  struct Frame {
    Hop* hop;
    size_t next_input;
  };
  for (const auto& root : roots) {
    if (visited.count(root.get())) continue;
    std::vector<Frame> stack;
    stack.push_back({root.get(), 0});
    visited.insert(root.get());
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next_input < f.hop->inputs().size()) {
        Hop* child = f.hop->inputs()[f.next_input].get();
        ++f.next_input;
        if (!visited.count(child)) {
          visited.insert(child);
          stack.push_back({child, 0});
        }
      } else {
        order.push_back(f.hop);
        stack.pop_back();
      }
    }
  }
  return order;
}

std::string HopDag::ToString() const {
  std::ostringstream os;
  for (Hop* h : TopoOrder()) os << h->ToString() << "\n";
  return os.str();
}

}  // namespace relm

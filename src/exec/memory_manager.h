#ifndef RELM_EXEC_MEMORY_MANAGER_H_
#define RELM_EXEC_MEMORY_MANAGER_H_

// LRU memory manager for control-program variables, promoted from the
// simulator-private mrsim/buffer_pool. One eviction policy, two
// consumers: the cluster simulator uses the accounting API (Put/Touch)
// to charge eviction IO during timing, and the interpreter uses the
// payload API (PinMatrix/FetchMatrix) to keep real MatrixBlock working
// sets inside the optimizer-chosen CP budget, spilling dirty payloads
// to the simulated HDFS and reloading them on next use.

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "exec/fault_hooks.h"
#include "hdfs/file_system.h"
#include "matrix/matrix_block.h"

namespace relm {
namespace exec {

class MemoryManager {
 public:
  /// `spill_hdfs` may be nullptr for accounting-only consumers (the
  /// simulator); payload pins then require no spill target because
  /// eviction simply drops accounting state. `capacity_bytes` <= 0
  /// means unlimited. `chaos` (optional, not owned, must outlive the
  /// manager) injects spill-write/reload failures and budget-pressure
  /// spikes.
  explicit MemoryManager(int64_t capacity_bytes,
                         SimulatedHdfs* spill_hdfs = nullptr,
                         std::string spill_prefix = "/.spill/",
                         ChaosInjector* chaos = nullptr);

  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  struct Evicted {
    std::string name;
    int64_t bytes = 0;
    bool dirty = false;
  };

  // ---- accounting API (simulator) ----

  /// Inserts or replaces a variable; returns the entries evicted to
  /// make room (empty if it fits). Oversized single entries bypass the
  /// pool (stream-through), reported as an eviction of themselves.
  std::vector<Evicted> Put(const std::string& name, int64_t bytes,
                           bool dirty);

  /// Marks a variable accessed (LRU touch); false if not resident.
  bool Touch(const std::string& name);

  /// True if the variable is resident.
  bool Contains(const std::string& name) const;

  /// Marks a resident variable clean (after an export to HDFS).
  void MarkClean(const std::string& name);

  /// Removes a variable (e.g. on overwrite with a new version).
  void Remove(const std::string& name);

  /// Drops everything (AM migration: the new container starts cold).
  void Clear();

  /// Changes the capacity. Shrinking below used_bytes() evicts LRU
  /// entries down to the new cap (an over-committed pool after AM
  /// migration to a smaller container was a real bug); the evicted
  /// entries are returned so callers can charge the write-back IO.
  std::vector<Evicted> SetCapacity(int64_t capacity_bytes);

  int64_t used_bytes() const;
  int64_t capacity() const;
  int64_t evictions() const;

  /// Largest used_bytes() ever observed (monotone across Clear/DropAll:
  /// it describes the run, not the current residency). The dataflow
  /// soundness differential compares this against the static resident
  /// bound — the bound must never be below it.
  int64_t high_water_bytes() const;

  // ---- payload API (interpreter) ----

  /// Pins a real matrix payload under `name`, evicting LRU entries as
  /// needed. Dirty evicted payloads are spilled to the spill HDFS;
  /// payloads pinned with a non-empty `source_path` reload from that
  /// path instead (clean read() inputs need no spill copy). A payload
  /// larger than the whole capacity is spilled immediately and never
  /// resident (stream-through).
  Status PinMatrix(const std::string& name,
                   std::shared_ptr<const MatrixBlock> payload, bool dirty,
                   const std::string& source_path = "");

  /// Returns the payload for `name`, reloading it from its spill/source
  /// path when it was evicted. NotFound for names never pinned.
  Result<std::shared_ptr<const MatrixBlock>> FetchMatrix(
      const std::string& name);

  /// Removes a payload entry and deletes its spill file, if any.
  void Drop(const std::string& name);

  /// Drops every entry and deletes all spill files this manager wrote.
  void DropAll();

  /// Bytes written to / read back from the spill space.
  int64_t spill_bytes() const;
  int64_t reload_bytes() const;

  /// Dirty payloads lost to injected spill-write failures so far.
  /// Fetching a lost block yields a typed, retryable Unavailable error;
  /// re-pinning the name recovers it.
  int64_t lost_blocks() const;

 private:
  struct Entry {
    int64_t bytes = 0;
    bool dirty = false;
    std::shared_ptr<const MatrixBlock> payload;  // null in accounting mode
    std::string source_path;  // reload path override ("" = spill path)
    std::list<std::string>::iterator lru_it;
  };
  /// Where an evicted payload can be reloaded from.
  struct EvictedSource {
    std::string path;
    int64_t bytes = 0;
  };

  std::string SpillPathLocked(const Entry& e, const std::string& name) const
      RELM_REQUIRES(mu_);
  void EvictOneLocked(std::vector<Evicted>* evicted) RELM_REQUIRES(mu_);
  std::vector<Evicted> PutLocked(const std::string& name, int64_t bytes,
                                 bool dirty,
                                 std::shared_ptr<const MatrixBlock> payload,
                                 const std::string& source_path)
      RELM_REQUIRES(mu_);
  void RemoveLocked(const std::string& name) RELM_REQUIRES(mu_);

  mutable std::mutex mu_;
  int64_t capacity_ RELM_GUARDED_BY(mu_);
  SimulatedHdfs* const hdfs_;
  const std::string spill_prefix_;
  ChaosInjector* const chaos_;
  int64_t used_ RELM_GUARDED_BY(mu_) = 0;
  int64_t high_water_ RELM_GUARDED_BY(mu_) = 0;
  int64_t evictions_ RELM_GUARDED_BY(mu_) = 0;
  int64_t spill_bytes_ RELM_GUARDED_BY(mu_) = 0;
  int64_t reload_bytes_ RELM_GUARDED_BY(mu_) = 0;
  std::map<std::string, Entry> entries_ RELM_GUARDED_BY(mu_);
  std::list<std::string> lru_ RELM_GUARDED_BY(mu_);  // front = most recent
  /// Evicted payload entries and where to reload them from.
  std::map<std::string, EvictedSource> evicted_sources_
      RELM_GUARDED_BY(mu_);
  /// Spill files this manager wrote (cleaned up by DropAll).
  std::map<std::string, std::string> spill_files_
      RELM_GUARDED_BY(mu_);  // name -> path
  /// Dirty payloads whose spill write was failed by chaos injection:
  /// the only copy is gone, so FetchMatrix must surface a typed loss
  /// instead of silently reloading stale or missing data.
  std::set<std::string> lost_ RELM_GUARDED_BY(mu_);
  int64_t lost_blocks_ RELM_GUARDED_BY(mu_) = 0;
};

}  // namespace exec
}  // namespace relm

#endif  // RELM_EXEC_MEMORY_MANAGER_H_

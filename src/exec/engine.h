#ifndef RELM_EXEC_ENGINE_H_
#define RELM_EXEC_ENGINE_H_

// The unified execution engine: evaluates statement-block HOP DAGs on
// real MatrixBlocks, either serially (the reference path — effects
// applied at first visit, exactly like the historical interpreter) or
// in parallel (independent instructions scheduled over the shared
// worker pool, side effects committed afterwards in program order).
// The determinism contract: for any block, the parallel path produces
// bitwise-identical symbol updates, printed lines, and HDFS writes to
// the serial path; blocks the scheduler cannot prove safe (function
// calls, persistent read-after-write) fall back to serial execution.
//
// The engine owns the optional MemoryManager that keeps pinned
// variable payloads inside the optimizer-chosen CP budget; the driver
// (runtime/interpreter) routes symbol reads/writes through it via the
// hooks.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "exec/fault_hooks.h"
#include "exec/memory_manager.h"
#include "hdfs/file_system.h"
#include "hops/hop.h"
#include "runtime/value.h"

namespace relm {
namespace exec {

/// Per-run execution options.
struct ExecOptions {
  /// Degree of instruction parallelism: <= 0 uses the process-wide
  /// Workers() default, 1 forces the serial reference path.
  int workers = 0;
  /// CP memory budget in bytes for pinned variable payloads; <= 0
  /// disables budget enforcement (symbols keep their payloads).
  int64_t memory_budget = 0;
  /// Verify on every parallel block that the commit order equals the
  /// serial first-visit effect order (cheap; on by default).
  bool verify_commit_order = true;
  /// Chaos injection (off unless a rate or first_n is set). Injected
  /// failures surface as typed Unavailable errors; they never corrupt
  /// results.
  FaultPolicy faults;
  /// External injector (not owned, must outlive the engine). When set
  /// it overrides `faults`: per-site draw counters then persist across
  /// engines, which is how job-level retries see *fresh* fault draws
  /// instead of deterministically replaying the attempt that failed.
  ChaosInjector* chaos = nullptr;
};

/// Engine counters, also exported as exec.* obs metrics.
struct ExecStats {
  int64_t parallel_blocks = 0;
  int64_t serial_blocks = 0;  // serial fallbacks + forced-serial runs
  int64_t tasks_scheduled = 0;
  int64_t tasks_stolen = 0;  // tasks executed by pool threads
  int64_t evictions = 0;
  int64_t spill_bytes = 0;
  int64_t reload_bytes = 0;
  /// MemoryManager residency high-water mark over the run (bytes); the
  /// empirical counterpart of the static resident-model peak bound.
  int64_t high_water_bytes = 0;
  int64_t faults_injected = 0;
};

class Engine {
 public:
  /// How the engine talks to its driver. All hooks are invoked from the
  /// driver thread only (reads before scheduling, effects at commit).
  struct Hooks {
    /// Block-entry value of a transient variable.
    std::function<Result<Value>(const std::string&)> read_symbol;
    /// Ordered commit of a transient write.
    std::function<Status(const std::string&, const Value&)> write_symbol;
    /// Ordered commit of one print() line.
    std::function<void(const std::string&)> emit_print;
    /// Executes a user-defined function call hop with the given argument
    /// values (already evaluated in the caller frame), returning its
    /// outputs in declaration order. Only reached on the serial path;
    /// the engine saves/clears/restores its caches around the call.
    std::function<Result<std::vector<Value>>(const Hop*, std::vector<Value>)>
        call_function;
  };

  Engine(SimulatedHdfs* hdfs, Random* rng, const ExecOptions& options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// The budget-enforcing memory manager; nullptr when the budget is
  /// disabled.
  MemoryManager* memory() { return memory_.get(); }

  /// The chaos injector (external or engine-owned); nullptr when
  /// injection is disabled.
  ChaosInjector* chaos() { return chaos_; }

  const ExecOptions& options() const { return options_; }
  /// Resolved degree of parallelism (>= 1).
  int workers() const { return workers_; }

  /// Counters including the memory manager's spill/reload totals.
  ExecStats stats() const;

  /// Executes one generic block DAG: pins block-entry reads, evaluates
  /// the roots (in parallel when safe), commits effects in program
  /// order.
  Status RunGeneric(const HopDag& dag, const Hooks& hooks);

  /// Evaluates a predicate DAG (root 0) serially; clears the caches.
  Result<double> EvalPredicate(const HopDag& dag, const Hooks& hooks);

  /// Evaluates one root of a for-loop bound DAG serially WITHOUT
  /// clearing the caches (matches historical interpreter semantics).
  Result<Value> EvalRoot(const HopDag& dag, size_t root_index,
                         const Hooks& hooks);

  /// RAII save/clear/restore of the per-epoch value caches around a
  /// function body (caches are per-frame).
  class CacheScope {
   public:
    explicit CacheScope(Engine* engine);
    ~CacheScope();
    CacheScope(const CacheScope&) = delete;
    CacheScope& operator=(const CacheScope&) = delete;

   private:
    Engine* engine_;
    std::unordered_map<const Hop*, Value> saved_cache_;
    std::unordered_map<const Hop*, std::vector<Value>> saved_fcalls_;
  };

 private:
  friend class DagRun;

  Result<Value> EvalSerial(const Hop* h, const Hooks& hooks);
  Result<Value> EvalSerialUncached(const Hop* h, const Hooks& hooks);
  /// Pure evaluation of one node given its input values (no symbol,
  /// print, or persistent-write effects; safe off-thread except for
  /// the RNG, which callers must serialize). Wraps EvalPureImpl with
  /// optional operator profiling (obs::OpProfileStore).
  Result<Value> EvalPure(const Hop* h, const std::vector<Value>& in);
  /// The raw kernel dispatch behind EvalPure.
  Result<Value> EvalPureImpl(const Hop* h, const std::vector<Value>& in);
  Result<Value> ReadPersistent(const Hop* h);
  Status WritePersistent(const Hop* h, const Value& v);
  Result<Value> CallFunction(const Hop* call, int output_index,
                             const Hooks& hooks);
  Status RunGenericSerial(const HopDag& dag, const Hooks& hooks);
  Status RunGenericParallel(const HopDag& dag, const Hooks& hooks);
  /// True when every instruction of the DAG is schedulable off-thread.
  static bool ParallelSafe(const std::vector<Hop*>& order);

  SimulatedHdfs* hdfs_;
  Random* rng_;
  ExecOptions options_;
  int workers_ = 1;
  std::unique_ptr<ChaosInjector> owned_chaos_;  // outlives memory_
  ChaosInjector* chaos_ = nullptr;  // external or owned_chaos_.get()
  std::unique_ptr<MemoryManager> memory_;
  std::unordered_map<const Hop*, Value> cache_;
  std::unordered_map<const Hop*, std::vector<Value>> fcall_cache_;
  ExecStats stats_;
};

/// The serial first-visit order of a DAG's side-effecting hops (print,
/// transient write, persistent write): the order the recursive
/// reference evaluator applies them in. Exposed for the commit-order
/// verification and its tests.
std::vector<const Hop*> SerialEffectOrder(const HopDag& dag);

}  // namespace exec
}  // namespace relm

#endif  // RELM_EXEC_ENGINE_H_

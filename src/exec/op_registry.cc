#include "exec/op_registry.h"

namespace relm {
namespace exec {

namespace {

// Indexed by OpClass. Parallel fractions reflect what the tiled
// kernels in matrix/kernels.cc actually parallelize: matmult tiles
// rows of the output, elementwise/unary/reorg tile rows, row/col
// aggregates tile the preserved dimension. Full reductions, solve,
// table, append, indexing, and datagen run serially for bitwise
// deterministic results.
constexpr OpProfile kProfiles[] = {
    {"matmult", 0.97, 16384},
    {"solve", 0.0, 1 << 30},
    {"elementwise", 0.90, 65536},
    {"unary", 0.90, 65536},
    {"rowcol_aggregate", 0.85, 65536},
    {"full_aggregate", 0.0, 1 << 30},
    {"reorg", 0.90, 65536},
    {"datagen", 0.0, 1 << 30},
    {"indexing", 0.0, 1 << 30},
    {"table", 0.0, 1 << 30},
    {"append", 0.0, 1 << 30},
    {"other", 0.0, 1 << 30},
};

}  // namespace

const OpProfile& Profile(OpClass cls) {
  int idx = static_cast<int>(cls);
  constexpr int n = sizeof(kProfiles) / sizeof(kProfiles[0]);
  if (idx < 0 || idx >= n) idx = n - 1;
  return kProfiles[idx];
}

double OpSpeedup(OpClass cls, double raw_core_speedup) {
  if (raw_core_speedup <= 1.0) return 1.0;
  const double f = Profile(cls).parallel_fraction;
  return 1.0 / ((1.0 - f) + f / raw_core_speedup);
}

}  // namespace exec
}  // namespace relm

#include "exec/fault_hooks.h"

#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace relm {
namespace exec {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kSpillWrite:
      return "spill_write";
    case FaultSite::kSpillReload:
      return "spill_reload";
    case FaultSite::kHdfsRead:
      return "hdfs_read";
    case FaultSite::kHdfsWrite:
      return "hdfs_write";
    case FaultSite::kTaskAbort:
      return "task_abort";
    case FaultSite::kTaskStall:
      return "task_stall";
    case FaultSite::kBudgetPressure:
      return "budget_pressure";
  }
  return "unknown";
}

Status FaultPolicy::Validate() const {
  for (int i = 0; i < kNumFaultSites; ++i) {
    if (rate[i] < 0.0 || rate[i] > 1.0) {
      return Status::InvalidArgument(
          std::string("FaultPolicy: rate[") +
          FaultSiteName(static_cast<FaultSite>(i)) + "] must be in [0, 1]");
    }
    if (first_n[i] < 0) {
      return Status::InvalidArgument(
          std::string("FaultPolicy: first_n[") +
          FaultSiteName(static_cast<FaultSite>(i)) + "] must be >= 0");
    }
  }
  if (stall_micros < 0) {
    return Status::InvalidArgument("FaultPolicy: stall_micros must be >= 0");
  }
  if (budget_pressure_fraction <= 0.0 || budget_pressure_fraction > 1.0) {
    return Status::InvalidArgument(
        "FaultPolicy: budget_pressure_fraction must be in (0, 1]");
  }
  return Status::OK();
}

Status ChaosInjector::InjectedError(FaultSite site,
                                    const std::string& detail) {
  std::string msg = "injected fault at ";
  msg += FaultSiteName(site);
  if (!detail.empty()) {
    msg += ": ";
    msg += detail;
  }
  return Status::Unavailable(std::move(msg));
}

#if RELM_FAULTS_ENABLED

namespace {

// SplitMix64 finalizer over (seed, site, draw index): a stateless hash
// so concurrent draws need no shared RNG stream, only the per-site
// draw counter.
uint64_t HashDraw(uint64_t seed, int site, uint64_t draw) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (draw * kNumFaultSites +
                                               static_cast<uint64_t>(site) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double DrawUnit(uint64_t seed, int site, uint64_t draw) {
  return static_cast<double>(HashDraw(seed, site, draw) >> 11) *
         (1.0 / 9007199254740992.0);
}

}  // namespace

ChaosInjector::ChaosInjector(const FaultPolicy& policy) : policy_(policy) {
#if RELM_OBS_ENABLED
  auto& registry = obs::MetricsRegistry::Global();
  total_counter_ = registry.GetCounter("fault.injected");
  for (int i = 0; i < kNumFaultSites; ++i) {
    site_counters_[i] = registry.GetCounter(
        std::string("fault.injected.") +
        FaultSiteName(static_cast<FaultSite>(i)));
  }
#endif
}

bool ChaosInjector::ShouldInject(FaultSite site) {
  const int i = static_cast<int>(site);
  if (policy_.rate[i] <= 0.0 && policy_.first_n[i] <= 0) return false;
  const uint64_t draw = draws_[i].fetch_add(1, std::memory_order_relaxed);
  bool fire = draw < static_cast<uint64_t>(policy_.first_n[i]);
  if (!fire && policy_.rate[i] > 0.0) {
    fire = DrawUnit(policy_.seed, i, draw) < policy_.rate[i];
  }
  if (fire) {
    fired_[i].fetch_add(1, std::memory_order_relaxed);
#if RELM_OBS_ENABLED
    total_counter_->Increment();
    site_counters_[i]->Increment();
    // Fault instant on the trace timeline; the tracer stamps the
    // thread's bound TraceContext, so faults hitting a serve-tier job
    // carry its job id/tenant/attempt.
    RELM_TRACE_INSTANT("fault.injected",
                       std::string("\"site\":\"") + FaultSiteName(site) +
                           "\"");
#endif
  }
  return fire;
}

void ChaosInjector::MaybeStall() {
  if (ShouldInject(FaultSite::kTaskStall) && policy_.stall_micros > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(policy_.stall_micros));
  }
}

int64_t ChaosInjector::total_fired() const {
  int64_t total = 0;
  for (int i = 0; i < kNumFaultSites; ++i) {
    total += fired_[i].load(std::memory_order_relaxed);
  }
  return total;
}

#else  // !RELM_FAULTS_ENABLED

ChaosInjector::ChaosInjector(const FaultPolicy& policy) : policy_(policy) {}

#endif  // RELM_FAULTS_ENABLED

}  // namespace exec
}  // namespace relm

#include "exec/memory_manager.h"

#include <utility>

#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace relm {
namespace exec {

MemoryManager::MemoryManager(int64_t capacity_bytes,
                             SimulatedHdfs* spill_hdfs,
                             std::string spill_prefix, ChaosInjector* chaos)
    : capacity_(capacity_bytes),
      hdfs_(spill_hdfs),
      spill_prefix_(std::move(spill_prefix)),
      chaos_(chaos) {}

std::string MemoryManager::SpillPathLocked(const Entry& e,
                                           const std::string& name) const {
  if (e.dirty || e.source_path.empty()) return spill_prefix_ + name;
  return e.source_path;
}

void MemoryManager::EvictOneLocked(std::vector<Evicted>* evicted) {
  const std::string victim = lru_.back();
  auto it = entries_.find(victim);
  Entry& e = it->second;
  if (e.payload != nullptr) {
    const std::string path = SpillPathLocked(e, victim);
    bool spill_failed = false;
    if (e.dirty) {
      // Dirty payloads must survive eviction: write them to the spill
      // space before releasing the in-memory copy.
      if (hdfs_ != nullptr) {
        if (chaos_ != nullptr &&
            chaos_->ShouldInject(FaultSite::kSpillWrite)) {
          // The in-memory copy was the only copy; losing the spill
          // write loses the block. Record it so FetchMatrix surfaces a
          // typed retryable loss instead of reading garbage. Clean
          // blocks are immune: they recover by re-reading the source.
          spill_failed = true;
          lost_.insert(victim);
          ++lost_blocks_;
          RELM_COUNTER_INC("fault.spill_blocks_lost");
        } else {
          hdfs_->PutMatrix(path, *e.payload);
          spill_files_[victim] = path;
          spill_bytes_ += e.bytes;
          RELM_COUNTER_ADD("exec.spill_bytes", e.bytes);
          RELM_TRACE_INSTANT("mm.spill",
                             "\"name\":" + obs::JsonQuote(victim) +
                                 ",\"bytes\":" + std::to_string(e.bytes));
        }
      }
    }
    if (!spill_failed) {
      evicted_sources_[victim] = EvictedSource{path, e.bytes};
    }
    RELM_COUNTER_INC("exec.evictions");
  }
  evicted->push_back(Evicted{victim, e.bytes, e.dirty});
  used_ -= e.bytes;
  lru_.pop_back();
  entries_.erase(it);
  ++evictions_;
}

std::vector<MemoryManager::Evicted> MemoryManager::PutLocked(
    const std::string& name, int64_t bytes, bool dirty,
    std::shared_ptr<const MatrixBlock> payload,
    const std::string& source_path) {
  std::vector<Evicted> evicted;
  RemoveLocked(name);
  lost_.erase(name);
  if (capacity_ > 0 && bytes > capacity_) {
    // Oversized object: stream-through, never resident. The payload (if
    // any) still has to be reloadable, so dirty payloads spill now.
    if (payload != nullptr) {
      std::string path = dirty || source_path.empty() ? spill_prefix_ + name
                                                      : source_path;
      bool spill_failed = false;
      if (dirty && hdfs_ != nullptr) {
        if (chaos_ != nullptr &&
            chaos_->ShouldInject(FaultSite::kSpillWrite)) {
          spill_failed = true;
          lost_.insert(name);
          ++lost_blocks_;
          RELM_COUNTER_INC("fault.spill_blocks_lost");
        } else {
          hdfs_->PutMatrix(path, *payload);
          spill_files_[name] = path;
          spill_bytes_ += bytes;
          RELM_COUNTER_ADD("exec.spill_bytes", bytes);
          RELM_TRACE_INSTANT("mm.spill",
                             "\"name\":" + obs::JsonQuote(name) +
                                 ",\"bytes\":" + std::to_string(bytes));
        }
      }
      if (!spill_failed) {
        evicted_sources_[name] = EvictedSource{path, bytes};
      }
      RELM_COUNTER_INC("exec.evictions");
    }
    ++evictions_;
    evicted.push_back(Evicted{name, bytes, dirty});
    return evicted;
  }
  while (capacity_ > 0 && used_ + bytes > capacity_ && !lru_.empty()) {
    EvictOneLocked(&evicted);
  }
  lru_.push_front(name);
  Entry e;
  e.bytes = bytes;
  e.dirty = dirty;
  e.payload = std::move(payload);
  e.source_path = source_path;
  e.lru_it = lru_.begin();
  entries_[name] = std::move(e);
  used_ += bytes;
  if (used_ > high_water_) high_water_ = used_;
  evicted_sources_.erase(name);
  return evicted;
}

void MemoryManager::RemoveLocked(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  used_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

std::vector<MemoryManager::Evicted> MemoryManager::Put(
    const std::string& name, int64_t bytes, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  return PutLocked(name, bytes, dirty, nullptr, "");
}

bool MemoryManager::Touch(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  lru_.erase(it->second.lru_it);
  lru_.push_front(name);
  it->second.lru_it = lru_.begin();
  return true;
}

bool MemoryManager::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(name) > 0;
}

void MemoryManager::MarkClean(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) it->second.dirty = false;
}

void MemoryManager::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  RemoveLocked(name);
}

void MemoryManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  evicted_sources_.clear();
  lost_.clear();
  used_ = 0;
}

std::vector<MemoryManager::Evicted> MemoryManager::SetCapacity(
    int64_t capacity_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity_bytes;
  std::vector<Evicted> evicted;
  while (capacity_ > 0 && used_ > capacity_ && !lru_.empty()) {
    EvictOneLocked(&evicted);
  }
  return evicted;
}

int64_t MemoryManager::used_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_;
}

int64_t MemoryManager::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

int64_t MemoryManager::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

int64_t MemoryManager::high_water_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

int64_t MemoryManager::spill_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spill_bytes_;
}

int64_t MemoryManager::reload_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reload_bytes_;
}

int64_t MemoryManager::lost_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lost_blocks_;
}

Status MemoryManager::PinMatrix(const std::string& name,
                                std::shared_ptr<const MatrixBlock> payload,
                                bool dirty, const std::string& source_path) {
  if (payload == nullptr) {
    return Status::InvalidArgument("PinMatrix: null payload for " + name);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (chaos_ != nullptr && capacity_ > 0 &&
      chaos_->ShouldInject(FaultSite::kBudgetPressure)) {
    // Transient budget squeeze (a co-tenant burst): evict down to a
    // fraction of capacity before admitting the new pin. The pin still
    // succeeds — pressure costs spill traffic, not correctness.
    const auto squeezed = static_cast<int64_t>(
        static_cast<double>(capacity_) *
        chaos_->policy().budget_pressure_fraction);
    std::vector<Evicted> pressure_evicted;
    while (used_ > squeezed && !lru_.empty()) {
      EvictOneLocked(&pressure_evicted);
    }
  }
  const int64_t bytes = payload->MemorySize();
  PutLocked(name, bytes, dirty, std::move(payload), source_path);
  return Status::OK();
}

Result<std::shared_ptr<const MatrixBlock>> MemoryManager::FetchMatrix(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.payload == nullptr) {
      return Status::Internal("FetchMatrix on accounting-only entry " + name);
    }
    lru_.erase(it->second.lru_it);
    lru_.push_front(name);
    it->second.lru_it = lru_.begin();
    return it->second.payload;
  }
  if (lost_.count(name) > 0) {
    return Status::Unavailable("dirty block '" + name +
                               "' was lost to a spill-write failure; "
                               "re-running the job regenerates it");
  }
  auto src = evicted_sources_.find(name);
  if (src == evicted_sources_.end()) {
    return Status::NotFound("no pinned or spilled payload for '" + name +
                            "'");
  }
  if (hdfs_ == nullptr) {
    return Status::Internal("evicted payload without a spill HDFS: " + name);
  }
  if (chaos_ != nullptr && chaos_->ShouldInject(FaultSite::kSpillReload)) {
    return ChaosInjector::InjectedError(FaultSite::kSpillReload, name);
  }
  const std::string path = src->second.path;
  RELM_ASSIGN_OR_RETURN(HdfsFile file, hdfs_->Get(path));
  if (file.data == nullptr) {
    return Status::Internal("spill file lost its payload: " + path);
  }
  reload_bytes_ += src->second.bytes;
  RELM_COUNTER_ADD("exec.reload_bytes", src->second.bytes);
  RELM_TRACE_INSTANT("mm.reload",
                     "\"name\":" + obs::JsonQuote(name) + ",\"bytes\":" +
                         std::to_string(src->second.bytes));
  std::shared_ptr<const MatrixBlock> payload = file.data;
  // Re-pin clean: the copy at `path` is current, so a future eviction
  // of this entry needs no second spill write.
  PutLocked(name, src->second.bytes, /*dirty=*/false, payload, path);
  return payload;
}

void MemoryManager::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  RemoveLocked(name);
  evicted_sources_.erase(name);
  lost_.erase(name);
  auto it = spill_files_.find(name);
  if (it != spill_files_.end()) {
    if (hdfs_ != nullptr) hdfs_->Delete(it->second);
    spill_files_.erase(it);
  }
}

void MemoryManager::DropAll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (hdfs_ != nullptr) {
    for (const auto& [name, path] : spill_files_) hdfs_->Delete(path);
  }
  spill_files_.clear();
  evicted_sources_.clear();
  lost_.clear();
  entries_.clear();
  lru_.clear();
  used_ = 0;
}

}  // namespace exec
}  // namespace relm

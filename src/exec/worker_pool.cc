#include "exec/worker_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace relm {
namespace exec {

struct WorkerPool::State {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue RELM_GUARDED_BY(mu);
  bool stopping RELM_GUARDED_BY(mu) = false;
  /// Only touched by the constructor (spawn) and destructor (join),
  /// strictly before/after any worker activity — no lock needed.
  std::vector<std::thread> threads;
};

WorkerPool::WorkerPool(int num_threads)
    : num_threads_(num_threads < 0 ? 0 : num_threads), state_(new State) {
  for (int i = 0; i < num_threads_; ++i) {
    state_->threads.emplace_back([s = state_] {
      for (;;) {
        std::function<void()> task;
        {
          std::unique_lock<std::mutex> lock(s->mu);
          s->cv.wait(lock, [&] { return s->stopping || !s->queue.empty(); });
          if (s->queue.empty()) return;  // stopping and drained
          task = std::move(s->queue.front());
          s->queue.pop_front();
        }
        task();
      }
    });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->stopping = true;
  }
  state_->cv.notify_all();
  for (auto& t : state_->threads) t.join();
  delete state_;
}

void WorkerPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->queue.push_back(std::move(fn));
  }
  state_->cv.notify_one();
}

namespace {

int DefaultWorkers() {
  if (const char* env = std::getenv("RELM_EXEC_WORKERS")) {
    int n = std::atoi(env);
    if (n >= 1) return n;
  }
  return 1;
}

std::mutex g_pool_mu;
int g_workers RELM_GUARDED_BY(g_pool_mu) = 0;  // 0 = not yet resolved
std::unique_ptr<WorkerPool> g_pool RELM_GUARDED_BY(g_pool_mu);

}  // namespace

int Workers() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_workers == 0) g_workers = DefaultWorkers();
  return g_workers;
}

void SetWorkers(int workers) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_workers = workers >= 1 ? workers : DefaultWorkers();
  g_pool.reset();  // rebuilt at the new size on next SharedPool()
}

bool TrySetWorkers(int workers) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  const int requested = workers >= 1 ? workers : DefaultWorkers();
  if (g_pool != nullptr) return g_workers == requested;
  g_workers = requested;
  return true;
}

WorkerPool* SharedPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_workers == 0) g_workers = DefaultWorkers();
  if (g_pool == nullptr) {
    g_pool = std::make_unique<WorkerPool>(g_workers - 1);
  }
  return g_pool.get();
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  // Chunk boundaries depend only on (range, grain) — never on the
  // worker count. The decomposition of a kernel is a property of the
  // problem; parallelism only changes which thread runs each chunk, so
  // any worker count produces bitwise-identical results.
  const int64_t chunk = grain;
  const int64_t num_chunks = (n + chunk - 1) / chunk;
  const int workers = Workers();
  if (workers <= 1 || num_chunks <= 1) {
    for (int64_t c = 0; c < num_chunks; ++c) {
      int64_t lo = begin + c * chunk;
      int64_t hi = lo + chunk < end ? lo + chunk : end;
      body(lo, hi);
    }
    return;
  }

  struct Ctx {
    std::atomic<int64_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    int64_t done = 0;
  };
  auto ctx = std::make_shared<Ctx>();
  auto drain = [ctx, begin, end, chunk, num_chunks, &body]() {
    for (;;) {
      int64_t c = ctx->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      int64_t lo = begin + c * chunk;
      int64_t hi = lo + chunk < end ? lo + chunk : end;
      body(lo, hi);
      {
        std::lock_guard<std::mutex> lock(ctx->mu);
        ++ctx->done;
      }
      ctx->cv.notify_one();
    }
  };

  WorkerPool* pool = SharedPool();
  int helpers = workers - 1;
  if (helpers > num_chunks - 1) helpers = static_cast<int>(num_chunks - 1);
  // Helpers capture the body by reference; the submitting thread stays
  // inside this frame until every chunk is done, so the reference
  // outlives all helper activity. A helper arriving after completion
  // sees next >= num_chunks and exits without touching it... except the
  // body reference itself, which it never dereferences in that case.
  struct Guard {
    std::shared_ptr<Ctx> ctx;
    int64_t num_chunks;
    ~Guard() {
      std::unique_lock<std::mutex> lock(ctx->mu);
      ctx->cv.wait(lock, [&] { return ctx->done == num_chunks; });
    }
  } guard{ctx, num_chunks};
  RELM_COUNTER_ADD("exec.kernel_chunks", num_chunks);
  for (int i = 0; i < helpers; ++i) pool->Submit(drain);
  drain();
}

}  // namespace exec
}  // namespace relm

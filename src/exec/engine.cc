#include "exec/engine.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <utility>

#include "common/string_util.h"
#include "exec/hop_ops.h"
#include "exec/worker_pool.h"
#include "matrix/kernels.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace relm {
namespace exec {

namespace {

bool IsEffect(HopKind k) {
  return k == HopKind::kPrint || k == HopKind::kTransientWrite ||
         k == HopKind::kPersistentWrite;
}

std::string Stringify(const Value& v) {
  if (v.is_matrix()) return v.matrix->ToString();
  if (v.is_string) return v.str;
  return FormatDouble(v.scalar, 6);
}

void EffectDfs(const Hop* h, std::set<const Hop*>* seen,
               std::vector<const Hop*>* out) {
  if (!seen->insert(h).second) return;
  for (const auto& in : h->inputs()) EffectDfs(in.get(), seen, out);
  if (IsEffect(h->kind())) out->push_back(h);
}

}  // namespace

std::vector<const Hop*> SerialEffectOrder(const HopDag& dag) {
  // The reference evaluator is a memoized post-order DFS: each hop's
  // effect fires when its evaluation first completes. Recreate that
  // order independently of TopoOrder() so the commit-order check is a
  // genuine cross-validation, not a tautology.
  std::set<const Hop*> seen;
  std::vector<const Hop*> out;
  for (const auto& root : dag.roots) EffectDfs(root.get(), &seen, &out);
  return out;
}

Engine::Engine(SimulatedHdfs* hdfs, Random* rng, const ExecOptions& options)
    : hdfs_(hdfs), rng_(rng), options_(options) {
  workers_ = options.workers > 0 ? options.workers : Workers();
  if (workers_ < 1) workers_ = 1;
  if (options.chaos != nullptr) {
    chaos_ = options.chaos;
  } else if (options.faults.enabled()) {
    owned_chaos_ = std::make_unique<ChaosInjector>(options.faults);
    chaos_ = owned_chaos_.get();
  }
  if (options.memory_budget > 0) {
    // Each engine spills under its own process-unique namespace: the
    // serving layer runs concurrent jobs against ONE shared HDFS, and
    // frame-local keys like "f0:X" repeat across runs — a shared
    // prefix would let one job reload (or DropAll-delete) another
    // job's spilled payloads.
    static std::atomic<uint64_t> next_run_id{0};
    const uint64_t run_id =
        next_run_id.fetch_add(1, std::memory_order_relaxed);
    memory_ = std::make_unique<MemoryManager>(
        options.memory_budget, hdfs_,
        "/.spill/r" + std::to_string(run_id) + "/", chaos_);
  }
}

Engine::~Engine() = default;

ExecStats Engine::stats() const {
  ExecStats s = stats_;
  if (memory_ != nullptr) {
    s.evictions = memory_->evictions();
    s.spill_bytes = memory_->spill_bytes();
    s.reload_bytes = memory_->reload_bytes();
    s.high_water_bytes = memory_->high_water_bytes();
  }
  if (chaos_ != nullptr) s.faults_injected = chaos_->total_fired();
  return s;
}

Engine::CacheScope::CacheScope(Engine* engine)
    : engine_(engine),
      saved_cache_(std::move(engine->cache_)),
      saved_fcalls_(std::move(engine->fcall_cache_)) {
  engine_->cache_.clear();
  engine_->fcall_cache_.clear();
}

Engine::CacheScope::~CacheScope() {
  engine_->cache_ = std::move(saved_cache_);
  engine_->fcall_cache_ = std::move(saved_fcalls_);
}

bool Engine::ParallelSafe(const std::vector<Hop*>& order) {
  bool has_pread = false;
  bool has_pwrite = false;
  for (const Hop* h : order) {
    switch (h->kind()) {
      case HopKind::kFunctionCall:
      case HopKind::kFunctionOutput:
        // UDF bodies run whole statement blocks with their own effects;
        // scheduling them off-thread would interleave frames.
        return false;
      case HopKind::kPersistentRead:
        has_pread = true;
        break;
      case HopKind::kPersistentWrite:
        has_pwrite = true;
        break;
      default:
        break;
    }
  }
  // A block that both reads and writes HDFS could read its own output
  // under serial semantics; the parallel path hoists all reads before
  // any write commits, so fall back.
  return !(has_pread && has_pwrite);
}

Status Engine::RunGeneric(const HopDag& dag, const Hooks& hooks) {
  cache_.clear();
  fcall_cache_.clear();
  const std::vector<Hop*> order = dag.TopoOrder();
  const bool parallel = workers_ > 1 && ParallelSafe(order);
  RELM_TRACE_SPAN_ARGS("exec.block", [&] {
    return std::string("\"mode\":\"") + (parallel ? "parallel" : "serial") +
           "\",\"instructions\":" + std::to_string(order.size());
  });
  if (parallel) {
    ++stats_.parallel_blocks;
    RELM_COUNTER_INC("exec.parallel_blocks");
    return RunGenericParallel(dag, hooks);
  }
  ++stats_.serial_blocks;
  RELM_COUNTER_INC("exec.serial_blocks");
  return RunGenericSerial(dag, hooks);
}

Status Engine::RunGenericSerial(const HopDag& dag, const Hooks& hooks) {
  // Pin block-entry values of all transient reads BEFORE any write
  // root executes: the DAG has SSA semantics, so every read must see
  // the variable's value at block entry, not a mid-block update.
  for (Hop* h : dag.TopoOrder()) {
    if (h->kind() == HopKind::kTransientRead) {
      RELM_ASSIGN_OR_RETURN(Value v, EvalSerial(h, hooks));
      (void)v;
    }
  }
  for (const auto& root : dag.roots) {
    RELM_ASSIGN_OR_RETURN(Value v, EvalSerial(root.get(), hooks));
    (void)v;
  }
  return Status::OK();
}

Result<double> Engine::EvalPredicate(const HopDag& dag, const Hooks& hooks) {
  cache_.clear();
  fcall_cache_.clear();
  if (dag.roots.empty()) {
    return Status::RuntimeError("empty predicate DAG");
  }
  RELM_ASSIGN_OR_RETURN(Value v, EvalSerial(dag.roots[0].get(), hooks));
  return v.scalar;
}

Result<Value> Engine::EvalRoot(const HopDag& dag, size_t root_index,
                               const Hooks& hooks) {
  if (root_index >= dag.roots.size()) {
    return Status::RuntimeError("for-bound root index out of range");
  }
  // Deliberately no cache clear: for-loop bounds share the epoch of the
  // enclosing evaluation (historical interpreter semantics).
  return EvalSerial(dag.roots[root_index].get(), hooks);
}

Result<Value> Engine::EvalSerial(const Hop* h, const Hooks& hooks) {
  auto it = cache_.find(h);
  if (it != cache_.end()) return it->second;
  RELM_ASSIGN_OR_RETURN(Value v, EvalSerialUncached(h, hooks));
  cache_[h] = v;
  return v;
}

Result<Value> Engine::ReadPersistent(const Hop* h) {
  if (chaos_ != nullptr && chaos_->ShouldInject(FaultSite::kHdfsRead)) {
    return ChaosInjector::InjectedError(FaultSite::kHdfsRead, h->name());
  }
  RELM_ASSIGN_OR_RETURN(HdfsFile file, hdfs_->Get(h->name()));
  if (file.data == nullptr) {
    return Status::RuntimeError(
        "HDFS file has no payload for real execution: " + h->name());
  }
  return Value::MatrixPtr(file.data);
}

Status Engine::WritePersistent(const Hop* h, const Value& v) {
  if (chaos_ != nullptr && chaos_->ShouldInject(FaultSite::kHdfsWrite)) {
    return ChaosInjector::InjectedError(FaultSite::kHdfsWrite, h->name());
  }
  if (v.is_matrix()) {
    hdfs_->PutMatrix(h->name(), *v.matrix);
  } else {
    hdfs_->PutMetadata(h->name(), MatrixCharacteristics(1, 1, 1));
  }
  return Status::OK();
}

Result<Value> Engine::CallFunction(const Hop* call, int output_index,
                                   const Hooks& hooks) {
  auto cit = fcall_cache_.find(call);
  if (cit == fcall_cache_.end()) {
    if (!hooks.call_function) {
      return Status::RuntimeError("function call without a driver");
    }
    // Evaluate arguments in the caller frame (caller caches).
    std::vector<Value> args;
    for (const auto& in : call->inputs()) {
      RELM_ASSIGN_OR_RETURN(Value v, EvalSerial(in.get(), hooks));
      args.push_back(std::move(v));
    }
    std::vector<Value> returns;
    {
      // Caches are per-frame: save and restore around the body run.
      CacheScope scope(this);
      RELM_ASSIGN_OR_RETURN(returns,
                            hooks.call_function(call, std::move(args)));
    }
    cit = fcall_cache_.emplace(call, std::move(returns)).first;
  }
  if (output_index < 0 ||
      output_index >= static_cast<int>(cit->second.size())) {
    return Status::RuntimeError("function output index out of range");
  }
  return cit->second[output_index];
}

Result<Value> Engine::EvalSerialUncached(const Hop* h, const Hooks& hooks) {
  switch (h->kind()) {
    case HopKind::kTransientRead:
      return hooks.read_symbol(h->name());

    case HopKind::kPersistentRead:
      return ReadPersistent(h);

    case HopKind::kTransientWrite: {
      RELM_ASSIGN_OR_RETURN(Value v, EvalSerial(h->input(0), hooks));
      RELM_RETURN_IF_ERROR(hooks.write_symbol(h->name(), v));
      return v;
    }

    case HopKind::kPersistentWrite: {
      RELM_ASSIGN_OR_RETURN(Value v, EvalSerial(h->input(0), hooks));
      RELM_RETURN_IF_ERROR(WritePersistent(h, v));
      return v;
    }

    case HopKind::kPrint: {
      RELM_ASSIGN_OR_RETURN(Value v, EvalSerial(h->input(0), hooks));
      hooks.emit_print(v.ToDisplayString());
      return Value::Number(0);
    }

    case HopKind::kFunctionCall:
      return CallFunction(h, 0, hooks);
    case HopKind::kFunctionOutput:
      return CallFunction(h->input(0), h->function_output_index, hooks);

    default: {
      // Pure compute: evaluate inputs serially, then the shared kernel
      // dispatch used by both execution paths.
      std::vector<Value> in;
      in.reserve(h->inputs().size());
      for (const auto& input : h->inputs()) {
        RELM_ASSIGN_OR_RETURN(Value v, EvalSerial(input.get(), hooks));
        in.push_back(std::move(v));
      }
      return EvalPure(h, in);
    }
  }
}

Result<Value> Engine::EvalPure(const Hop* h, const std::vector<Value>& in) {
#if RELM_OBS_ENABLED
  // Operator profiling around the kernel dispatch: one relaxed load
  // when disabled, a steady_clock pair plus one mutex-protected
  // aggregation when enabled. Runs on pool threads too (the store is
  // thread-safe). Compiled out entirely with RELM_OBS_ENABLED=0 so the
  // hot path carries zero overhead.
  obs::OpProfileStore& profiles = obs::OpProfileStore::Global();
  if (profiles.enabled() && OpClassForHop(*h) != OpClass::kOther) {
    const auto start = std::chrono::steady_clock::now();
    Result<Value> result = EvalPureImpl(h, in);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    if (result.ok()) {
      int64_t cells = 1;
      int64_t bytes = 0;
      if (result->is_matrix()) {
        cells = result->matrix->rows() * result->matrix->cols();
        bytes = result->matrix->MemorySize();
      }
      for (const Value& v : in) {
        if (v.is_matrix()) bytes += v.matrix->MemorySize();
      }
      profiles.Record(Profile(OpClassForHop(*h)).name, cells, bytes,
                      h->ComputeFlops(), seconds);
    }
    return result;
  }
#endif  // RELM_OBS_ENABLED
  return EvalPureImpl(h, in);
}

Result<Value> Engine::EvalPureImpl(const Hop* h,
                                   const std::vector<Value>& in) {
  switch (h->kind()) {
    case HopKind::kLiteral:
      if (h->literal_is_string) return Value::Str(h->literal_string);
      return Value::Number(h->literal_value);

    case HopKind::kBinary: {
      const Value& a = in[0];
      const Value& b = in[1];
      // String concatenation.
      if (h->bin_op == BinOp::kAdd && (a.is_string || b.is_string)) {
        return Value::Str(Stringify(a) + Stringify(b));
      }
      if (a.is_matrix() && b.is_matrix()) {
        RELM_ASSIGN_OR_RETURN(
            MatrixBlock m,
            ElementwiseBinary(h->bin_op, *a.matrix, *b.matrix));
        return Value::Matrix(std::move(m));
      }
      if (a.is_matrix()) {
        return Value::Matrix(ScalarBinary(h->bin_op, *a.matrix, b.scalar));
      }
      if (b.is_matrix()) {
        return Value::Matrix(ScalarBinary(h->bin_op, *b.matrix, a.scalar,
                                          /*scalar_left=*/true));
      }
      return Value::Number(ApplyBinOp(h->bin_op, a.scalar, b.scalar));
    }

    case HopKind::kUnary: {
      const Value& a = in[0];
      if (a.is_matrix()) {
        return Value::Matrix(ElementwiseUnary(h->un_op, *a.matrix));
      }
      return Value::Number(ApplyUnOp(h->un_op, a.scalar));
    }

    case HopKind::kAggUnary: {
      const Value& a = in[0];
      if (!a.is_matrix()) {
        return Status::RuntimeError("aggregate of a scalar");
      }
      if (h->agg_dir == AggDir::kAll) {
        RELM_ASSIGN_OR_RETURN(double v, Aggregate(h->agg_op, *a.matrix));
        return Value::Number(v);
      }
      RELM_ASSIGN_OR_RETURN(
          MatrixBlock m, AggregateAxis(h->agg_op, h->agg_dir, *a.matrix));
      return Value::Matrix(std::move(m));
    }

    case HopKind::kMatMult: {
      RELM_ASSIGN_OR_RETURN(MatrixBlock m,
                            MatMult(*in[0].matrix, *in[1].matrix));
      return Value::Matrix(std::move(m));
    }

    case HopKind::kReorg: {
      if (h->reorg_op == ReorgOp::kTranspose) {
        return Value::Matrix(Transpose(*in[0].matrix));
      }
      RELM_ASSIGN_OR_RETURN(MatrixBlock m, Diag(*in[0].matrix));
      return Value::Matrix(std::move(m));
    }

    case HopKind::kDataGen:
      switch (h->datagen_op) {
        case DataGenOp::kConstMatrix:
          return Value::Matrix(MatrixBlock::Constant(
              static_cast<int64_t>(in[1].scalar),
              static_cast<int64_t>(in[2].scalar), in[0].scalar));
        case DataGenOp::kRand: {
          const double sparsity = in.size() >= 4 ? in[3].scalar : 1.0;
          // The scheduler chains rand nodes in program order, so the
          // shared RNG is consumed exactly like the serial path.
          return Value::Matrix(MatrixBlock::Rand(
              static_cast<int64_t>(in[1].scalar),
              static_cast<int64_t>(in[2].scalar), sparsity, in[0].scalar,
              in[0].scalar + 1.0, rng_));
        }
        case DataGenOp::kSeq: {
          const double incr = in.size() >= 3 ? in[2].scalar : 1.0;
          return Value::Matrix(
              MatrixBlock::Seq(in[0].scalar, in[1].scalar, incr));
        }
      }
      return Status::Internal("unhandled datagen op");

    case HopKind::kTernary: {
      RELM_ASSIGN_OR_RETURN(MatrixBlock m,
                            Table(*in[0].matrix, *in[1].matrix));
      return Value::Matrix(std::move(m));
    }

    case HopKind::kIndexing: {
      const MatrixBlock& m = *in[0].matrix;
      auto bound = [&](size_t idx, int64_t fallback) {
        int64_t b = static_cast<int64_t>(std::llround(in[idx].scalar));
        return b == -1 ? fallback : b;
      };
      RELM_ASSIGN_OR_RETURN(
          MatrixBlock sub,
          RightIndex(m, bound(1, 1), bound(2, m.rows()), bound(3, 1),
                     bound(4, m.cols())));
      return Value::Matrix(std::move(sub));
    }

    case HopKind::kLeftIndexing: {
      const MatrixBlock& m = *in[0].matrix;
      const Value& value = in[1];
      auto bound = [&](size_t idx, int64_t fallback) {
        int64_t b = static_cast<int64_t>(std::llround(in[idx].scalar));
        return b == -1 ? fallback : b;
      };
      const int64_t rl = bound(2, 1);
      const int64_t ru = bound(3, m.rows());
      const int64_t cl = bound(4, 1);
      const int64_t cu = bound(5, m.cols());
      MatrixBlock vblock;
      if (value.is_matrix()) {
        vblock = *value.matrix;
      } else {
        // Scalar value: broadcast over the target range.
        vblock = MatrixBlock::Constant(ru - rl + 1, cu - cl + 1,
                                       value.scalar);
      }
      RELM_ASSIGN_OR_RETURN(MatrixBlock out,
                            LeftIndex(m, vblock, rl, ru, cl, cu));
      return Value::Matrix(std::move(out));
    }

    case HopKind::kAppend: {
      RELM_ASSIGN_OR_RETURN(MatrixBlock m,
                            Append(*in[0].matrix, *in[1].matrix));
      return Value::Matrix(std::move(m));
    }

    case HopKind::kSolve: {
      RELM_ASSIGN_OR_RETURN(MatrixBlock m,
                            Solve(*in[0].matrix, *in[1].matrix));
      return Value::Matrix(std::move(m));
    }

    case HopKind::kDimExtract: {
      const Value& a = in[0];
      if (!a.is_matrix()) {
        return Status::RuntimeError("nrow/ncol of a scalar");
      }
      return Value::Number(static_cast<double>(
          h->dim_extract_rows ? a.matrix->rows() : a.matrix->cols()));
    }

    case HopKind::kCast: {
      const Value& a = in[0];
      if (h->is_matrix()) {
        if (a.is_matrix()) return a;
        MatrixBlock m(1, 1, false);
        m.Set(0, 0, a.scalar);
        return Value::Matrix(std::move(m));
      }
      if (!a.is_matrix()) return a;
      RELM_ASSIGN_OR_RETURN(double v, CastToScalar(*a.matrix));
      return Value::Number(v);
    }

    // Effect hops pass their payload through; the effect itself is
    // applied by the commit walk (parallel) or EvalSerialUncached.
    case HopKind::kTransientWrite:
    case HopKind::kPersistentWrite:
      return in[0];
    case HopKind::kPrint:
      return Value::Number(0);

    case HopKind::kTransientRead:
    case HopKind::kPersistentRead:
    case HopKind::kFunctionCall:
    case HopKind::kFunctionOutput:
      break;
  }
  return Status::Internal("hop kind not schedulable as a pure instruction");
}

// ---------------------------------------------------------------------
// Parallel DAG scheduling.

/// One parallel execution of a statement-block DAG: builds the
/// data-dependency graph over the topological instruction order,
/// pre-evaluates reads on the driver thread, schedules pure
/// instructions over the shared pool (driver participating), then
/// commits side effects in serial program order.
class DagRun {
 public:
  DagRun(Engine* engine, const HopDag& dag, const Engine::Hooks& hooks)
      : engine_(engine), dag_(dag), hooks_(hooks) {}

  /// `self` keeps the run alive for pool tasks that may still be queued
  /// after the driver finishes (a task whose node the driver stole is a
  /// harmless no-op, but it still dereferences the run).
  Status Run(const std::shared_ptr<DagRun>& self);

 private:
  enum class NodeState { kPending, kDone, kFailed, kSkipped };

  struct Node {
    const Hop* hop = nullptr;
    std::vector<int> consumers;
    int deps = 0;
    /// Already pushed into ready_ (guards against the seed loop
    /// re-queueing a node whose deps hit zero during Phase A).
    bool queued = false;
    NodeState state = NodeState::kPending;
    Value value;
    std::string print_line;
    Status status = Status::OK();
  };

  bool IsPreEval(HopKind k) const {
    return k == HopKind::kLiteral || k == HopKind::kTransientRead ||
           k == HopKind::kPersistentRead;
  }

  void Build();
  Result<Value> PreEval(const Hop* h);
  void Execute(int i);
  /// Marks node i resolved and enqueues newly-ready consumers.
  void Resolve(int i, NodeState state, Value value, std::string print_line,
               Status status);
  void DrainOne(bool stolen);
  Status Commit();

  Engine* engine_;
  const HopDag& dag_;
  const Engine::Hooks& hooks_;
  std::shared_ptr<DagRun> self_;  // set for the duration of Run()

  std::vector<Hop*> order_;
  std::unordered_map<const Hop*, int> index_;
  std::vector<Node> nodes_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> ready_;
  int resolved_ = 0;
  int64_t scheduled_count_ = 0;
  int64_t stolen_count_ = 0;
};

void DagRun::Build() {
  order_ = dag_.TopoOrder();
  nodes_.resize(order_.size());
  for (size_t i = 0; i < order_.size(); ++i) {
    index_[order_[i]] = static_cast<int>(i);
    nodes_[i].hop = order_[i];
  }
  for (size_t i = 0; i < order_.size(); ++i) {
    for (const auto& in : order_[i]->inputs()) {
      // Duplicate inputs (e.g. X + X) add one dependency edge per
      // occurrence; Resolve decrements once per consumer entry.
      nodes_[index_.at(in.get())].consumers.push_back(static_cast<int>(i));
      ++nodes_[i].deps;
    }
  }
  // Chain rand() generators in program order so the shared RNG stream
  // is consumed exactly as in serial execution.
  int prev_rand = -1;
  for (size_t i = 0; i < order_.size(); ++i) {
    if (order_[i]->kind() == HopKind::kDataGen &&
        order_[i]->datagen_op == DataGenOp::kRand) {
      if (prev_rand >= 0) {
        nodes_[prev_rand].consumers.push_back(static_cast<int>(i));
        ++nodes_[i].deps;
      }
      prev_rand = static_cast<int>(i);
    }
  }
}

Result<Value> DagRun::PreEval(const Hop* h) {
  switch (h->kind()) {
    case HopKind::kLiteral:
      return engine_->EvalPure(h, {});
    case HopKind::kTransientRead:
      return hooks_.read_symbol(h->name());
    case HopKind::kPersistentRead:
      return engine_->ReadPersistent(h);
    default:
      return Status::Internal("not a pre-evaluated hop");
  }
}

void DagRun::Execute(int i) {
  Node& n = nodes_[i];
  const Hop* h = n.hop;
  if (engine_->chaos_ != nullptr) {
    // Straggler and task-abort injection cover the parallel path only;
    // the serial reference path stays fault-free by construction, so
    // the job-level degraded (serial) fallback is a genuine escape
    // hatch from repeated scheduler faults.
    engine_->chaos_->MaybeStall();
    if (engine_->chaos_->ShouldInject(FaultSite::kTaskAbort)) {
      Resolve(i, NodeState::kFailed, Value(), "",
              ChaosInjector::InjectedError(
                  FaultSite::kTaskAbort,
                  "instruction " + std::to_string(i)));
      return;
    }
  }
  std::vector<Value> in;
  in.reserve(h->inputs().size());
  for (const auto& input : h->inputs()) {
    const Node& src = nodes_[index_.at(input.get())];
    if (src.state != NodeState::kDone) {
      Resolve(i, NodeState::kSkipped, Value(), "", Status::OK());
      return;
    }
    in.push_back(src.value);
  }
  Result<Value> r = engine_->EvalPure(h, in);
  if (!r.ok()) {
    Resolve(i, NodeState::kFailed, Value(), "", r.status());
    return;
  }
  std::string line;
  if (h->kind() == HopKind::kPrint) {
    // Render off-thread; the text commits later in program order.
    line = in[0].ToDisplayString();
  }
  Resolve(i, NodeState::kDone, std::move(r).value(), std::move(line),
          Status::OK());
}

void DagRun::Resolve(int i, NodeState state, Value value,
                     std::string print_line, Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  Node& n = nodes_[i];
  n.state = state;
  n.value = std::move(value);
  n.print_line = std::move(print_line);
  n.status = std::move(status);
  ++resolved_;
  for (int c : n.consumers) {
    if (--nodes_[c].deps == 0 && !nodes_[c].queued) {
      nodes_[c].queued = true;
      ready_.push_back(c);
      ++scheduled_count_;
      if (SharedPool()->num_threads() > 0) {
        // Capture the shared self so a task that outlives Run() (its
        // node was stolen by the driver) still has a live run to no-op
        // against.
        std::shared_ptr<DagRun> self = self_;
        SharedPool()->Submit([self] { self->DrainOne(/*stolen=*/true); });
      }
    }
  }
  cv_.notify_all();
}

void DagRun::DrainOne(bool stolen) {
  int i;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ready_.empty()) return;  // the driver stole this task's node
    i = ready_.front();
    ready_.pop_front();
    if (stolen) ++stolen_count_;
  }
  Execute(i);
}

Status DagRun::Commit() {
  for (size_t i = 0; i < order_.size(); ++i) {
    const Node& n = nodes_[i];
    switch (n.state) {
      case NodeState::kFailed:
        // All side effects that serial execution would have applied
        // before hitting this error precede it in program order and
        // have already committed above.
        return n.status;
      case NodeState::kSkipped:
        return Status::Internal(
            "skipped instruction committed before its failed ancestor");
      case NodeState::kPending:
        return Status::Internal("pending instruction at commit time");
      case NodeState::kDone:
        break;
    }
    const Hop* h = n.hop;
    switch (h->kind()) {
      case HopKind::kTransientWrite:
        RELM_RETURN_IF_ERROR(hooks_.write_symbol(h->name(), n.value));
        break;
      case HopKind::kPersistentWrite:
        RELM_RETURN_IF_ERROR(engine_->WritePersistent(h, n.value));
        break;
      case HopKind::kPrint:
        hooks_.emit_print(n.print_line);
        break;
      default:
        break;
    }
  }
  return Status::OK();
}

Status DagRun::Run(const std::shared_ptr<DagRun>& self) {
  self_ = self;
  // Break the self-reference cycle when the run finishes (queued no-op
  // tasks keep their own copies alive until they drain).
  struct ClearSelf {
    DagRun* run;
    ~ClearSelf() {
      std::lock_guard<std::mutex> lock(run->mu_);
      run->self_.reset();
    }
  } clear_self{this};

  Build();
  const int total = static_cast<int>(order_.size());

  // Phase A (driver thread): literals and reads, in program order, all
  // before any effect commits — reads observe block-entry state.
  for (int i = 0; i < total; ++i) {
    if (!IsPreEval(order_[i]->kind())) continue;
    Result<Value> r = PreEval(order_[i]);
    if (r.ok()) {
      Resolve(i, NodeState::kDone, std::move(r).value(), "", Status::OK());
    } else {
      Resolve(i, NodeState::kFailed, Value(), "", r.status());
    }
  }
  {
    // Nodes with no dependencies that are not pre-evaluated (e.g.
    // seq()/matrix() with literal-free bounds do not exist, but a
    // zero-input pure hop would land here) seed the ready queue.
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < total; ++i) {
      if (nodes_[i].state == NodeState::kPending && nodes_[i].deps == 0 &&
          !nodes_[i].queued) {
        nodes_[i].queued = true;
        ready_.push_back(i);
        ++scheduled_count_;
      }
    }
  }

  // Scheduling loop: the driver participates, pool tasks drain the same
  // ready queue. Pool tasks never block, so kernels nested inside an
  // instruction can tile over the same pool without deadlock.
  while (true) {
    std::unique_lock<std::mutex> lock(mu_);
    if (resolved_ == total) break;
    if (!ready_.empty()) {
      lock.unlock();
      DrainOne(/*stolen=*/false);
      continue;
    }
    cv_.wait(lock, [&] { return resolved_ == total || !ready_.empty(); });
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    engine_->stats_.tasks_scheduled += scheduled_count_;
    engine_->stats_.tasks_stolen += stolen_count_;
    RELM_COUNTER_ADD("exec.tasks_scheduled", scheduled_count_);
    RELM_COUNTER_ADD("exec.tasks_stolen", stolen_count_);
  }

  if (engine_->options_.verify_commit_order) {
    // Pool-purity-style static check: the order the commit walk applies
    // effects in must equal the serial first-visit effect order.
    std::vector<const Hop*> serial = SerialEffectOrder(dag_);
    std::vector<const Hop*> commit;
    for (const Hop* h : order_) {
      if (IsEffect(h->kind())) commit.push_back(h);
    }
    RELM_COUNTER_INC("exec.commit_order_checks");
    if (serial != commit) {
      RELM_COUNTER_INC("exec.commit_order_mismatches");
      return Status::Internal(
          "engine commit order diverges from serial effect order");
    }
  }

  return Commit();
}

Status Engine::RunGenericParallel(const HopDag& dag, const Hooks& hooks) {
  auto run = std::make_shared<DagRun>(this, dag, hooks);
  return run->Run(run);
}

}  // namespace exec
}  // namespace relm

#ifndef RELM_EXEC_FAULT_HOOKS_H_
#define RELM_EXEC_FAULT_HOOKS_H_

// Runtime chaos/fault injection for the real execution path. The
// engine, memory manager, and simulated HDFS consult a ChaosInjector
// at well-defined sites (spill writes, spill reloads, persistent-file
// I/O, worker-task dispatch, pin-time budget checks); the injector
// decides deterministically — from a seed, the site, and a per-site
// draw counter — whether that operation fails, stalls, or proceeds.
// Determinism is the point: a chaos soak with a fixed FaultPolicy
// injects the same *set* of faults per site regardless of thread
// interleaving, so failures found under TSan reproduce under ASan.
//
// Like observability (RELM_OBS_ENABLED), the whole facility compiles
// out with -DRELM_FAULTS_ENABLED=0: every site check collapses to a
// constant-false inline, and production binaries pay nothing.

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

#ifndef RELM_FAULTS_ENABLED
#define RELM_FAULTS_ENABLED 1
#endif

namespace relm {
namespace obs {
class Counter;
}  // namespace obs

namespace exec {

/// Injection points in the real execution path.
enum class FaultSite {
  kSpillWrite = 0,   // MemoryManager writing a dirty block to spill
  kSpillReload,      // MemoryManager re-reading a spilled/evicted block
  kHdfsRead,         // Engine reading a persistent input file
  kHdfsWrite,        // Engine writing a persistent output file
  kTaskAbort,        // parallel worker task fails before executing
  kTaskStall,        // parallel worker task sleeps (straggler)
  kBudgetPressure,   // transient memory-budget squeeze at pin time
};
inline constexpr int kNumFaultSites = 7;

/// Short snake_case name ("spill_write", ...), also the metric suffix
/// in fault.injected.<site>.
const char* FaultSiteName(FaultSite site);

/// Seeded description of which faults to inject and how often. All
/// rates default to zero (injection off). `first_n[site]` forces the
/// first N draws at a site to fire regardless of rate — the tool for
/// tests that need an exact, guaranteed fault sequence.
struct FaultPolicy {
  uint64_t seed = 42;
  double rate[kNumFaultSites] = {};
  int first_n[kNumFaultSites] = {};
  /// How long an injected kTaskStall sleeps.
  int64_t stall_micros = 200;
  /// An injected kBudgetPressure transiently squeezes the effective
  /// memory budget to this fraction of capacity.
  double budget_pressure_fraction = 0.5;

  /// True when any site can fire.
  bool enabled() const {
    for (int i = 0; i < kNumFaultSites; ++i) {
      if (rate[i] > 0.0 || first_n[i] > 0) return true;
    }
    return false;
  }

  Status Validate() const;

  // ---- chainable named setters ----
  FaultPolicy& WithSeed(uint64_t s) {
    seed = s;
    return *this;
  }
  FaultPolicy& WithRate(FaultSite site, double r) {
    rate[static_cast<int>(site)] = r;
    return *this;
  }
  /// Same rate at every site.
  FaultPolicy& WithAllRates(double r) {
    for (int i = 0; i < kNumFaultSites; ++i) rate[i] = r;
    return *this;
  }
  FaultPolicy& WithFirstN(FaultSite site, int n) {
    first_n[static_cast<int>(site)] = n;
    return *this;
  }
  FaultPolicy& WithStallMicros(int64_t micros) {
    stall_micros = micros;
    return *this;
  }
  FaultPolicy& WithBudgetPressureFraction(double fraction) {
    budget_pressure_fraction = fraction;
    return *this;
  }
};

/// Thread-safe fault oracle built from a FaultPolicy. Each site keeps
/// an atomic draw counter; draw k at a site fires iff k < first_n or
/// hash(seed, site, k) < rate. Counting draws (not wall-clock or
/// thread identity) makes the fired set a pure function of how many
/// times each site is reached.
class ChaosInjector {
 public:
  explicit ChaosInjector(const FaultPolicy& policy);

  ChaosInjector(const ChaosInjector&) = delete;
  ChaosInjector& operator=(const ChaosInjector&) = delete;

  const FaultPolicy& policy() const { return policy_; }

  /// Typed, retryable error carried by every injected failure.
  static Status InjectedError(FaultSite site, const std::string& detail);

#if RELM_FAULTS_ENABLED
  /// Draws at `site`; true means the caller must fail this operation.
  bool ShouldInject(FaultSite site);
  /// Draws at kTaskStall; sleeps policy().stall_micros when it fires.
  void MaybeStall();
  /// Faults fired at one site / across all sites so far.
  int64_t fired(FaultSite site) const {
    return fired_[static_cast<int>(site)].load(std::memory_order_relaxed);
  }
  int64_t total_fired() const;
#else
  bool ShouldInject(FaultSite) { return false; }
  void MaybeStall() {}
  int64_t fired(FaultSite) const { return 0; }
  int64_t total_fired() const { return 0; }
#endif

 private:
  FaultPolicy policy_;
#if RELM_FAULTS_ENABLED
  std::atomic<uint64_t> draws_[kNumFaultSites] = {};
  std::atomic<int64_t> fired_[kNumFaultSites] = {};
  obs::Counter* site_counters_[kNumFaultSites] = {};
  obs::Counter* total_counter_ = nullptr;
#endif
};

}  // namespace exec
}  // namespace relm

#endif  // RELM_EXEC_FAULT_HOOKS_H_

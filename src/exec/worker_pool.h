#ifndef RELM_EXEC_WORKER_POOL_H_
#define RELM_EXEC_WORKER_POOL_H_

// The process-wide execution substrate shared by the instruction-DAG
// scheduler (exec/engine) and the tiled CP kernels (matrix/kernels):
// one fixed pool of worker threads plus a caller-participating
// ParallelFor. Pool threads never block on other pool tasks — every
// blocking wait is done by the submitting thread, which also drains
// work itself — so nesting a tiled kernel inside a scheduled
// instruction cannot deadlock even on a single-thread pool.

#include <cstdint>
#include <functional>

namespace relm {
namespace exec {

/// A fixed-size pool of worker threads with an unbounded FIFO task
/// queue. Submit never blocks; tasks must not block on other tasks.
class WorkerPool {
 public:
  /// `num_threads` may be 0 (every ParallelFor runs inline).
  explicit WorkerPool(int num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Enqueues a task. Never blocks; tasks run in FIFO order per worker
  /// availability.
  void Submit(std::function<void()> fn);

 private:
  struct State;
  int num_threads_ = 0;
  State* state_ = nullptr;
};

/// Degree of parallelism the process is configured for (>= 1). Reads
/// RELM_EXEC_WORKERS on first use; defaults to 1 (serial) so plain
/// builds and tests keep the deterministic single-thread path.
int Workers();

/// Reconfigures the process-wide worker count (>= 1; values < 1 select
/// the RELM_EXEC_WORKERS / serial default). Rebuilds the shared pool,
/// so it must only be called while no engine or kernel work is in
/// flight (service startup, bench setup, test fixtures).
void SetWorkers(int workers);

/// As SetWorkers, but never tears down a pool that has already been
/// built: when the shared pool is live at a different size, it is left
/// untouched and the call returns false (a rebuild would destroy the
/// threads out from under whoever is using them). Safe to call at any
/// time; returns true when the requested count is now in effect.
bool TrySetWorkers(int workers);

/// The shared pool backing kernels and the DAG scheduler. Has
/// Workers() - 1 threads: the caller always participates, so total
/// concurrency equals Workers(). Never returns nullptr.
WorkerPool* SharedPool();

/// Runs body(lo, hi) over [begin, end) in chunks of `grain` elements,
/// tiled over the shared pool with the calling thread participating.
/// Chunk boundaries depend only on (range, grain) — never on the
/// worker count — so the work decomposition is identical under any
/// parallelism; bodies must write disjoint state per index. Runs the
/// chunks inline (same boundaries) when the process is configured
/// serial.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body);

}  // namespace exec
}  // namespace relm

#endif  // RELM_EXEC_WORKER_POOL_H_

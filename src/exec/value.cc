#include "runtime/value.h"

#include "common/string_util.h"

namespace relm {

std::string Value::ToDisplayString() const {
  if (is_matrix()) {
    return matrix ? matrix->ToString() : "<matrix>";
  }
  if (is_string) return str;
  return FormatDouble(scalar, 6);
}

}  // namespace relm

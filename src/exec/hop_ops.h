#ifndef RELM_EXEC_HOP_OPS_H_
#define RELM_EXEC_HOP_OPS_H_

// HOP -> operator-class mapping for the shared registry. Kept separate
// from exec/op_registry.h so the registry itself stays below the
// compiler layer (relm_matrix links it), while consumers that know
// about HOPs (cost model, engine) include this header.

#include "exec/op_registry.h"
#include "hops/hop.h"

namespace relm {
namespace exec {

inline OpClass OpClassForHop(const Hop& h) {
  switch (h.kind()) {
    case HopKind::kMatMult:
      return OpClass::kMatMult;
    case HopKind::kSolve:
      return OpClass::kSolve;
    case HopKind::kBinary:
      return OpClass::kElementwise;
    case HopKind::kUnary:
      return OpClass::kUnary;
    case HopKind::kAggUnary:
      return h.agg_dir == AggDir::kAll ? OpClass::kFullAggregate
                                       : OpClass::kRowColAggregate;
    case HopKind::kReorg:
      return OpClass::kReorg;
    case HopKind::kDataGen:
      return OpClass::kDataGen;
    case HopKind::kIndexing:
    case HopKind::kLeftIndexing:
      return OpClass::kIndexing;
    case HopKind::kTernary:
      return OpClass::kTable;
    case HopKind::kAppend:
      return OpClass::kAppend;
    default:
      return OpClass::kOther;
  }
}

}  // namespace exec
}  // namespace relm

#endif  // RELM_EXEC_HOP_OPS_H_

#ifndef RELM_EXEC_OP_REGISTRY_H_
#define RELM_EXEC_OP_REGISTRY_H_

// Single source of the per-operator compute/IO constants shared by the
// CP kernels (tiling grain), the analytic cost model (vcores scaling),
// and the cluster simulator (compute/IO rates). Previously the global
// constants lived in cost/cost_model.h while the kernels hard-coded
// their own behaviour; one registry keeps the cost model honest about
// what the kernels actually do.

#include <cstdint>

namespace relm {
namespace exec {

/// Compute-time efficiency factor applied to the peak FLOP rate.
inline constexpr double kComputeEfficiency = 0.5;
/// Single-stream HDFS bandwidths of the control program process.
inline constexpr double kCpReadBps = 250e6;
inline constexpr double kCpWriteBps = 150e6;

/// Operator classes with distinct parallelization behaviour. The
/// mapping from HOPs lives in exec/hop_ops.h (this header stays free of
/// compiler-layer dependencies so relm_matrix can link it).
enum class OpClass {
  kMatMult = 0,
  kSolve,
  kElementwise,
  kUnary,
  kRowColAggregate,
  kFullAggregate,  // scalar reductions stay serial (bitwise determinism)
  kReorg,
  kDataGen,  // rand consumes the program RNG in serial order
  kIndexing,
  kTable,
  kAppend,
  kOther,
};

/// Per-class execution profile.
struct OpProfile {
  const char* name;
  /// Amdahl parallel fraction of the kernel: 0 = strictly serial.
  double parallel_fraction;
  /// Minimum output/input cells one pool task should own (tiling
  /// grain; below this the kernel runs inline).
  int64_t min_cells_per_task;
};

/// Profile of one operator class (never fails; unknown -> kOther).
const OpProfile& Profile(OpClass cls);

/// Effective multi-core speedup of one operator class given the raw
/// core speedup (ResourceConfig::CpComputeSpeedup() = cores^alpha):
/// Amdahl's law over the class's parallel fraction. Equals 1.0 for one
/// core regardless of class, so single-core cost estimates are
/// unchanged.
double OpSpeedup(OpClass cls, double raw_core_speedup);

}  // namespace exec
}  // namespace relm

#endif  // RELM_EXEC_OP_REGISTRY_H_

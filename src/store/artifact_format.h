#ifndef RELM_STORE_ARTIFACT_FORMAT_H_
#define RELM_STORE_ARTIFACT_FORMAT_H_

// On-disk layout of a plan-artifact file (DESIGN.md §14): the frozen,
// checksummed, memory-mappable snapshot of a PlanCache's persistable
// state. The format follows the frozen-data discipline: fixed-size POD
// record arrays addressed by index ranges, one string segment addressed
// by (offset, length), a header carrying counts and an FNV-1a payload
// checksum, and no pointers — so a validated file can be consumed
// zero-copy straight out of an mmap.
//
//   +----------------+  ArtifactHeader (64 bytes)
//   | programs       |  program_count  x ProgramRecord   (16 bytes)
//   | inputs         |  input_count    x InputRecord     (48 bytes)
//   | what-ifs       |  whatif_count   x WhatIfRecord    (72 bytes)
//   | block heaps    |  block_heap_cnt x BlockHeapRecord (16 bytes)
//   | strings        |  string_bytes   (input paths, unterminated)
//   +----------------+
//
// Every multi-byte field is host-endian; the artifact is a same-machine
// cache, not an interchange format, and the checksum rejects files from
// a different layout anyway.

#include <cstdint>

namespace relm {
namespace store {

/// "RELMPLAN" little-endian; any other value fails validation.
constexpr uint64_t kArtifactMagic = 0x4e414c504d4c4552ULL;
/// Bumped on any layout change; mismatches are rejected (version skew
/// degrades to a cold compile, never a misread).
constexpr uint32_t kArtifactVersion = 1;

struct ArtifactHeader {
  uint64_t magic = kArtifactMagic;
  uint32_t version = kArtifactVersion;
  uint32_t header_bytes = sizeof(ArtifactHeader);
  /// Bytes following the header; must equal file size - header_bytes.
  uint64_t payload_bytes = 0;
  /// FNV-1a over the payload bytes.
  uint64_t payload_checksum = 0;
  uint32_t program_count = 0;
  uint32_t input_count = 0;
  uint32_t whatif_count = 0;
  uint32_t block_heap_count = 0;
  uint64_t string_bytes = 0;
  uint64_t reserved = 0;
};
static_assert(sizeof(ArtifactHeader) == 64, "header layout drifted");

/// One persisted program: its portable signature plus the index range
/// of the leaf-input metadata snapshot it compiled against.
struct ProgramRecord {
  uint64_t portable_sig = 0;
  uint32_t input_begin = 0;
  uint32_t input_count = 0;
};
static_assert(sizeof(ProgramRecord) == 16, "record layout drifted");

/// Metadata snapshot of one leaf input at compile time. A later process
/// replays the comparison against its live namespace: any drift marks
/// the owning program dirty (and only that program — incremental
/// recompilation).
struct InputRecord {
  uint64_t path_off = 0;  // into the string segment
  uint32_t path_len = 0;
  uint32_t format = 0;  // DataFormat
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t nnz = 0;
  int64_t size_bytes = 0;
};
static_assert(sizeof(InputRecord) == 48, "record layout drifted");

/// One memoized what-if evaluation: the PortableWhatIfKey fields plus
/// the flattened CachedCandidate (per-block MR heaps live in the
/// block-heap array under [block_begin, block_begin + block_count)).
struct WhatIfRecord {
  uint64_t portable_sig = 0;
  uint64_t context_hash = 0;
  int64_t cp_heap = 0;
  double cost = 0.0;
  int64_t cfg_cp_heap = 0;
  int64_t cfg_default_mr_heap = 0;
  uint32_t block_begin = 0;
  uint32_t block_count = 0;
  int32_t cp_cores = 1;
  int32_t cfg_cp_cores = 1;
  int32_t pruned_blocks = 0;
  int32_t enumerated_blocks = 0;
};
static_assert(sizeof(WhatIfRecord) == 72, "record layout drifted");

/// One (generic block id -> MR heap) override of a persisted candidate.
struct BlockHeapRecord {
  int64_t heap = 0;
  int32_t block_id = 0;
  int32_t pad = 0;
};
static_assert(sizeof(BlockHeapRecord) == 16, "record layout drifted");

}  // namespace store
}  // namespace relm

#endif  // RELM_STORE_ARTIFACT_FORMAT_H_

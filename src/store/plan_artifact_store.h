#ifndef RELM_STORE_PLAN_ARTIFACT_STORE_H_
#define RELM_STORE_PLAN_ARTIFACT_STORE_H_

// Persistent plan-artifact store: the PlanStore implementation behind
// PlanCache's read-through/write-behind hooks. Artifacts (program
// records with leaf-input snapshots, what-if cost entries) are frozen
// into the checksummed binary format of artifact_format.h, mapped
// zero-copy at open, and written back atomically (temp file + rename,
// merged with the current on-disk contents so concurrent writers lose
// no entries) on Flush. A corrupt, truncated, or version-skewed file is
// rejected at open — the store then starts empty and the system pays a
// clean recompile, never a crash or a wrong-plan hit.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/plan_cache.h"
#include "hdfs/file_system.h"
#include "store/artifact_format.h"

namespace relm {

/// Construction knobs for the persistent artifact store, exposed
/// through the Session API (SessionOptions::artifact_store). Same
/// builder-setter + Validate()-on-use shape as ServeOptions.
struct ArtifactStoreOptions {
  /// Artifact file path; empty disables the store entirely.
  std::string path;
  /// Cap on the serialized artifact size. Flush drops the oldest
  /// what-if entries first to fit under it. <= 0 means unlimited.
  int64_t max_bytes = 64 * 1024 * 1024;
  /// Read-only mode: warm loads are served, but RecordProgram /
  /// RecordWhatIf / Flush become no-ops (fleet followers sharing one
  /// pre-warmed artifact without write races).
  bool read_only = false;

  /// Rejects nonsensical combinations with InvalidArgument. Run when a
  /// session opens the store; also available to callers directly.
  Status Validate() const;

  // ---- chainable named setters (builder-style construction) ----
  ArtifactStoreOptions& WithPath(std::string p) {
    path = std::move(p);
    return *this;
  }
  ArtifactStoreOptions& WithMaxBytes(int64_t bytes) {
    max_bytes = bytes;
    return *this;
  }
  ArtifactStoreOptions& WithReadOnly(bool ro) {
    read_only = ro;
    return *this;
  }
};

namespace store {

/// Everything relm-lint's --artifact mode reports about one file:
/// best-effort header fields plus the integrity verdict.
struct ArtifactInfo {
  std::string path;
  uint64_t file_bytes = 0;
  uint64_t magic = 0;
  uint32_t version = 0;
  uint64_t stored_checksum = 0;
  uint64_t computed_checksum = 0;
  uint32_t program_count = 0;
  uint32_t input_count = 0;
  uint32_t whatif_count = 0;
  uint32_t block_heap_count = 0;
  uint64_t string_bytes = 0;
  /// OK when the file validates end to end; otherwise the exact
  /// rejection reason (truncation, bad magic, version skew, checksum
  /// mismatch, out-of-range record references).
  Status integrity = Status::OK();
};

/// Reads and validates an artifact header without loading the store.
/// Fails only when the file cannot be read at all; structural problems
/// are reported through ArtifactInfo::integrity.
Result<ArtifactInfo> InspectArtifact(const std::string& path);

class PlanArtifactStore : public PlanStore {
 public:
  /// Opens (or prepares to create) the artifact at options.path. Fails
  /// only on invalid options; an unreadable or corrupt file leaves the
  /// store empty with the rejection recorded in load_status().
  static Result<std::shared_ptr<PlanArtifactStore>> Open(
      const ArtifactStoreOptions& options);

  /// Flushes pending writes (best-effort).
  ~PlanArtifactStore() override;

  PlanArtifactStore(const PlanArtifactStore&) = delete;
  PlanArtifactStore& operator=(const PlanArtifactStore&) = delete;

  // PlanStore interface (thread-safe; called by PlanCache outside its
  // own lock).
  std::optional<PlanCache::CachedCandidate> LookupWhatIf(
      const PortableWhatIfKey& key) override;
  void RecordWhatIf(const PortableWhatIfKey& key,
                    const PlanCache::CachedCandidate& candidate) override;
  bool HasValidProgram(uint64_t portable_sig,
                       const SimulatedHdfs* hdfs) override;
  void RecordProgram(uint64_t portable_sig, const ScriptArgs& args,
                     const SimulatedHdfs* hdfs) override;

  /// Serializes frozen + pending state back to options.path: merged
  /// with whatever is on disk right now (so two sessions flushing
  /// concurrently lose no entries), size-capped, written to a temp file
  /// and atomically renamed into place. No-op when read-only or clean.
  Status Flush();

  /// Verdict of the open-time load: OK for a valid (or absent) file,
  /// otherwise why the artifact was rejected and the store started
  /// empty.
  const Status& load_status() const { return load_status_; }
  const ArtifactStoreOptions& options() const { return options_; }

  struct Stats {
    size_t frozen_programs = 0;
    size_t frozen_whatif = 0;
    size_t pending_programs = 0;
    size_t pending_whatif = 0;
    int64_t flushes = 0;
  };
  Stats stats() const;

 private:
  struct PortableKeyHash {
    size_t operator()(const PortableWhatIfKey& k) const {
      uint64_t h = k.portable_sig;
      h ^= k.context_hash + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= static_cast<uint64_t>(k.cp_heap) + 0x9e3779b97f4a7c15ULL +
           (h << 6) + (h >> 2);
      h ^= static_cast<uint64_t>(k.cp_cores) + 0x9e3779b97f4a7c15ULL +
           (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  struct PortableKeyEq {
    bool operator()(const PortableWhatIfKey& a,
                    const PortableWhatIfKey& b) const {
      return a.portable_sig == b.portable_sig &&
             a.context_hash == b.context_hash && a.cp_heap == b.cp_heap &&
             a.cp_cores == b.cp_cores;
    }
  };

  /// In-memory (mutable) form of one leaf-input snapshot / one program.
  struct InputSnapshot {
    std::string path;
    uint32_t format = 0;
    int64_t rows = 0;
    int64_t cols = 0;
    int64_t nnz = 0;
    int64_t size_bytes = 0;
  };
  struct ProgramData {
    std::vector<InputSnapshot> inputs;
  };

  /// One validated, mapped artifact file plus the frozen indexes into
  /// it. Immutable after construction; lookups read straight out of
  /// the mapping.
  struct MappedFile;

  explicit PlanArtifactStore(ArtifactStoreOptions options);

  /// Maps and validates `path`; returns the frozen view or why the
  /// file was rejected.
  static Result<std::shared_ptr<MappedFile>> LoadFile(
      const std::string& path);

  /// Hydrates a frozen what-if record into a CachedCandidate.
  static PlanCache::CachedCandidate Hydrate(const MappedFile& file,
                                            const WhatIfRecord& rec);
  /// Re-checks a program's recorded leaf inputs against the live
  /// namespace.
  static bool InputsMatchLive(const std::vector<InputSnapshot>& inputs,
                              const SimulatedHdfs* hdfs);

  const ArtifactStoreOptions options_;
  Status load_status_;

  mutable std::mutex mu_;
  /// Frozen view of the file mapped at open (null when absent or
  /// rejected). Shared_ptr so lookups can pin it outside mu_ while a
  /// Flush swaps in the rewritten file.
  std::shared_ptr<MappedFile> frozen_ RELM_GUARDED_BY(mu_);
  /// Overlay of entries recorded since open; wins over frozen_.
  std::unordered_map<uint64_t, ProgramData> new_programs_
      RELM_GUARDED_BY(mu_);
  std::unordered_map<PortableWhatIfKey, PlanCache::CachedCandidate,
                     PortableKeyHash, PortableKeyEq>
      new_whatif_ RELM_GUARDED_BY(mu_);
  /// Overlay insertion order (what the size cap evicts last).
  std::vector<PortableWhatIfKey> new_whatif_order_ RELM_GUARDED_BY(mu_);
  bool dirty_ RELM_GUARDED_BY(mu_) = false;
  int64_t flushes_ RELM_GUARDED_BY(mu_) = 0;
};

}  // namespace store
}  // namespace relm

#endif  // RELM_STORE_PLAN_ARTIFACT_STORE_H_

#include "store/plan_artifact_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_set>
#include <utility>

#include "obs/metrics.h"

namespace relm {

Status ArtifactStoreOptions::Validate() const {
  if (path.empty()) {
    return Status::InvalidArgument(
        "ArtifactStoreOptions: path must not be empty");
  }
  if (max_bytes != 0 && max_bytes < static_cast<int64_t>(
                                        sizeof(store::ArtifactHeader))) {
    return Status::InvalidArgument(
        "ArtifactStoreOptions: max_bytes below the artifact header size");
  }
  return Status::OK();
}

namespace store {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvChecksum(const void* data, size_t n) {
  uint64_t h = kFnvOffset;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Structural validation of a candidate artifact image. Fills the
/// best-effort header fields of `info` (when non-null) even for files
/// that fail, so lint can still report what the header claims.
Status ValidateImage(const char* data, size_t len, ArtifactInfo* info) {
  if (info != nullptr) info->file_bytes = len;
  if (len < sizeof(ArtifactHeader)) {
    return Status::Internal("artifact rejected: truncated header (" +
                            std::to_string(len) + " bytes)");
  }
  ArtifactHeader h;
  std::memcpy(&h, data, sizeof(h));
  if (info != nullptr) {
    info->magic = h.magic;
    info->version = h.version;
    info->stored_checksum = h.payload_checksum;
    info->program_count = h.program_count;
    info->input_count = h.input_count;
    info->whatif_count = h.whatif_count;
    info->block_heap_count = h.block_heap_count;
    info->string_bytes = h.string_bytes;
  }
  if (h.magic != kArtifactMagic) {
    return Status::Internal("artifact rejected: bad magic");
  }
  if (h.version != kArtifactVersion) {
    return Status::Internal("artifact rejected: version skew (file v" +
                            std::to_string(h.version) + ", expected v" +
                            std::to_string(kArtifactVersion) + ")");
  }
  if (h.header_bytes != sizeof(ArtifactHeader)) {
    return Status::Internal("artifact rejected: bad header size");
  }
  if (h.payload_bytes != len - sizeof(ArtifactHeader)) {
    return Status::Internal("artifact rejected: truncated payload (" +
                            std::to_string(len - sizeof(ArtifactHeader)) +
                            " bytes, header claims " +
                            std::to_string(h.payload_bytes) + ")");
  }
  uint64_t expect = uint64_t{h.program_count} * sizeof(ProgramRecord) +
                    uint64_t{h.input_count} * sizeof(InputRecord) +
                    uint64_t{h.whatif_count} * sizeof(WhatIfRecord) +
                    uint64_t{h.block_heap_count} * sizeof(BlockHeapRecord) +
                    h.string_bytes;
  if (expect != h.payload_bytes) {
    return Status::Internal(
        "artifact rejected: record counts disagree with payload size");
  }
  uint64_t checksum = FnvChecksum(data + sizeof(ArtifactHeader),
                                  h.payload_bytes);
  if (info != nullptr) info->computed_checksum = checksum;
  if (checksum != h.payload_checksum) {
    return Status::Internal("artifact rejected: payload checksum mismatch");
  }
  // Cross-reference ranges: every record index and string slice must
  // land inside its segment, or hydration would read out of bounds.
  const char* p = data + sizeof(ArtifactHeader);
  const ProgramRecord* programs =
      reinterpret_cast<const ProgramRecord*>(p);
  p += uint64_t{h.program_count} * sizeof(ProgramRecord);
  const InputRecord* inputs = reinterpret_cast<const InputRecord*>(p);
  p += uint64_t{h.input_count} * sizeof(InputRecord);
  const WhatIfRecord* whatifs = reinterpret_cast<const WhatIfRecord*>(p);
  p += uint64_t{h.whatif_count} * sizeof(WhatIfRecord);
  p += uint64_t{h.block_heap_count} * sizeof(BlockHeapRecord);
  for (uint32_t i = 0; i < h.program_count; ++i) {
    uint64_t end = uint64_t{programs[i].input_begin} +
                   programs[i].input_count;
    if (end > h.input_count) {
      return Status::Internal(
          "artifact rejected: program input range out of bounds");
    }
  }
  for (uint32_t i = 0; i < h.input_count; ++i) {
    if (inputs[i].path_off + inputs[i].path_len > h.string_bytes) {
      return Status::Internal(
          "artifact rejected: input path slice out of bounds");
    }
  }
  for (uint32_t i = 0; i < h.whatif_count; ++i) {
    uint64_t end = uint64_t{whatifs[i].block_begin} +
                   whatifs[i].block_count;
    if (end > h.block_heap_count) {
      return Status::Internal(
          "artifact rejected: what-if block range out of bounds");
    }
  }
  return Status::OK();
}

}  // namespace

Result<ArtifactInfo> InspectArtifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return Status::NotFound("cannot open artifact: " + path);
  }
  std::string image((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ArtifactInfo info;
  info.path = path;
  info.integrity = ValidateImage(image.data(), image.size(), &info);
  return info;
}

/// One validated artifact file held in an mmap, plus the frozen lookup
/// indexes pointing straight into the mapping.
struct PlanArtifactStore::MappedFile {
  const char* base = nullptr;
  size_t len = 0;
  ArtifactHeader header;
  const ProgramRecord* programs = nullptr;
  const InputRecord* inputs = nullptr;
  const WhatIfRecord* whatifs = nullptr;
  const BlockHeapRecord* block_heaps = nullptr;
  const char* strings = nullptr;
  std::unordered_map<uint64_t, const ProgramRecord*> program_index;
  std::unordered_map<PortableWhatIfKey, const WhatIfRecord*,
                     PortableKeyHash, PortableKeyEq>
      whatif_index;

  ~MappedFile() {
    if (base != nullptr) {
      ::munmap(const_cast<char*>(base), len);
    }
  }

  std::string PathOf(const InputRecord& rec) const {
    return std::string(strings + rec.path_off, rec.path_len);
  }
};

Result<std::shared_ptr<PlanArtifactStore::MappedFile>>
PlanArtifactStore::LoadFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open artifact: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::Internal("artifact rejected: cannot stat " + path);
  }
  size_t len = static_cast<size_t>(st.st_size);
  if (len == 0) {
    ::close(fd);
    return Status::Internal("artifact rejected: empty file " + path);
  }
  void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (base == MAP_FAILED) {
    return Status::Internal("artifact rejected: mmap failed for " + path);
  }
  auto file = std::make_shared<MappedFile>();
  file->base = static_cast<const char*>(base);
  file->len = len;
  Status valid = ValidateImage(file->base, len, nullptr);
  if (!valid.ok()) return valid;  // dtor unmaps
  std::memcpy(&file->header, file->base, sizeof(ArtifactHeader));
  const char* p = file->base + sizeof(ArtifactHeader);
  file->programs = reinterpret_cast<const ProgramRecord*>(p);
  p += uint64_t{file->header.program_count} * sizeof(ProgramRecord);
  file->inputs = reinterpret_cast<const InputRecord*>(p);
  p += uint64_t{file->header.input_count} * sizeof(InputRecord);
  file->whatifs = reinterpret_cast<const WhatIfRecord*>(p);
  p += uint64_t{file->header.whatif_count} * sizeof(WhatIfRecord);
  file->block_heaps = reinterpret_cast<const BlockHeapRecord*>(p);
  p += uint64_t{file->header.block_heap_count} * sizeof(BlockHeapRecord);
  file->strings = p;
  for (uint32_t i = 0; i < file->header.program_count; ++i) {
    file->program_index[file->programs[i].portable_sig] =
        &file->programs[i];
  }
  for (uint32_t i = 0; i < file->header.whatif_count; ++i) {
    const WhatIfRecord& r = file->whatifs[i];
    file->whatif_index[PortableWhatIfKey{r.portable_sig, r.context_hash,
                                         r.cp_heap, r.cp_cores}] = &r;
  }
  return file;
}

PlanArtifactStore::PlanArtifactStore(ArtifactStoreOptions options)
    : options_(std::move(options)) {}

Result<std::shared_ptr<PlanArtifactStore>> PlanArtifactStore::Open(
    const ArtifactStoreOptions& options) {
  RELM_RETURN_IF_ERROR(options.Validate());
  std::shared_ptr<PlanArtifactStore> s(new PlanArtifactStore(options));
  struct stat st;
  if (::stat(options.path.c_str(), &st) != 0) {
    // Absent file: a cold store that will be created on first flush.
    return s;
  }
  Result<std::shared_ptr<MappedFile>> loaded = LoadFile(options.path);
  if (loaded.ok()) {
    std::lock_guard<std::mutex> lock(s->mu_);
    s->frozen_ = std::move(*loaded);
    RELM_COUNTER_INC("plan_store.loads");
  } else {
    // Corrupt / truncated / version-skewed: reject and start empty so
    // the system falls back to clean recompilation.
    s->load_status_ = loaded.status();
    RELM_COUNTER_INC("plan_store.load_rejects");
  }
  return s;
}

PlanArtifactStore::~PlanArtifactStore() {
  // Best-effort: a failed final flush only loses warm-cache entries.
  Status flushed = Flush();
  (void)flushed;
}

PlanCache::CachedCandidate PlanArtifactStore::Hydrate(
    const MappedFile& file, const WhatIfRecord& rec) {
  PlanCache::CachedCandidate cand;
  cand.config.cp_heap = rec.cfg_cp_heap;
  cand.config.default_mr_heap = rec.cfg_default_mr_heap;
  cand.config.cp_cores = rec.cfg_cp_cores;
  for (uint32_t i = 0; i < rec.block_count; ++i) {
    const BlockHeapRecord& b = file.block_heaps[rec.block_begin + i];
    cand.config.per_block_mr_heap[b.block_id] = b.heap;
  }
  cand.cost = rec.cost;
  cand.pruned_blocks = rec.pruned_blocks;
  cand.enumerated_blocks = rec.enumerated_blocks;
  return cand;
}

bool PlanArtifactStore::InputsMatchLive(
    const std::vector<InputSnapshot>& inputs, const SimulatedHdfs* hdfs) {
  if (hdfs == nullptr) return inputs.empty();
  for (const InputSnapshot& in : inputs) {
    Result<HdfsFile> live = hdfs->Get(in.path);
    if (!live.ok()) return false;
    if (live->characteristics.rows() != in.rows ||
        live->characteristics.cols() != in.cols ||
        live->characteristics.nnz() != in.nnz ||
        static_cast<uint32_t>(live->format) != in.format ||
        live->size_bytes != in.size_bytes) {
      return false;
    }
  }
  return true;
}

std::optional<PlanCache::CachedCandidate> PlanArtifactStore::LookupWhatIf(
    const PortableWhatIfKey& key) {
  std::shared_ptr<MappedFile> frozen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = new_whatif_.find(key);
    if (it != new_whatif_.end()) {
      RELM_COUNTER_INC("plan_store.whatif_hits");
      return it->second;
    }
    frozen = frozen_;
  }
  if (frozen == nullptr) return std::nullopt;
  auto it = frozen->whatif_index.find(key);
  if (it == frozen->whatif_index.end()) return std::nullopt;
  RELM_COUNTER_INC("plan_store.whatif_hits");
  return Hydrate(*frozen, *it->second);
}

void PlanArtifactStore::RecordWhatIf(
    const PortableWhatIfKey& key,
    const PlanCache::CachedCandidate& candidate) {
  if (options_.read_only) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = new_whatif_.emplace(key, candidate);
  if (inserted) {
    new_whatif_order_.push_back(key);
  } else {
    it->second = candidate;
  }
  dirty_ = true;
  RELM_COUNTER_INC("plan_store.whatif_records");
}

bool PlanArtifactStore::HasValidProgram(uint64_t portable_sig,
                                        const SimulatedHdfs* hdfs) {
  std::shared_ptr<MappedFile> frozen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = new_programs_.find(portable_sig);
    if (it != new_programs_.end()) {
      return InputsMatchLive(it->second.inputs, hdfs);
    }
    frozen = frozen_;
  }
  if (frozen == nullptr) return false;
  auto it = frozen->program_index.find(portable_sig);
  if (it == frozen->program_index.end()) return false;
  std::vector<InputSnapshot> inputs;
  inputs.reserve(it->second->input_count);
  for (uint32_t i = 0; i < it->second->input_count; ++i) {
    const InputRecord& rec =
        frozen->inputs[it->second->input_begin + i];
    inputs.push_back(InputSnapshot{frozen->PathOf(rec), rec.format,
                                   rec.rows, rec.cols, rec.nnz,
                                   rec.size_bytes});
  }
  // Defense in depth: the portable signature already folds the inputs'
  // metadata, but replaying the comparison against the live namespace
  // catches hash collisions and hand-edited artifacts.
  return InputsMatchLive(inputs, hdfs);
}

void PlanArtifactStore::RecordProgram(uint64_t portable_sig,
                                      const ScriptArgs& args,
                                      const SimulatedHdfs* hdfs) {
  if (options_.read_only) return;
  ProgramData data;
  if (hdfs != nullptr) {
    // Same leaf-input walk as ComputeLeafInputSignature: argument
    // values that name registered files, in (deterministic) arg order.
    for (const auto& [key, value] : args) {
      Result<HdfsFile> file = hdfs->Get(value);
      if (!file.ok()) continue;
      data.inputs.push_back(InputSnapshot{
          value, static_cast<uint32_t>(file->format),
          file->characteristics.rows(), file->characteristics.cols(),
          file->characteristics.nnz(), file->size_bytes});
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  new_programs_[portable_sig] = std::move(data);
  dirty_ = true;
  RELM_COUNTER_INC("plan_store.program_records");
}

Status PlanArtifactStore::Flush() {
  if (options_.read_only) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  if (!dirty_) return Status::OK();

  // Merge order (oldest first, later sources win on key collisions):
  // the file currently on disk — possibly advanced by another process
  // since we opened — then our open-time frozen view, then the overlay.
  std::shared_ptr<MappedFile> disk;
  {
    Result<std::shared_ptr<MappedFile>> current = LoadFile(options_.path);
    if (current.ok()) disk = std::move(*current);
  }

  std::vector<std::pair<uint64_t, ProgramData>> programs;
  std::unordered_set<uint64_t> program_seen;
  auto add_program = [&](uint64_t sig, ProgramData data) {
    if (!program_seen.insert(sig).second) {
      for (auto& [s, d] : programs) {
        if (s == sig) d = std::move(data);
      }
      return;
    }
    programs.emplace_back(sig, std::move(data));
  };
  std::vector<std::pair<PortableWhatIfKey, PlanCache::CachedCandidate>>
      whatifs;
  std::unordered_map<PortableWhatIfKey, size_t, PortableKeyHash,
                     PortableKeyEq>
      whatif_pos;
  auto add_whatif = [&](const PortableWhatIfKey& key,
                        PlanCache::CachedCandidate cand) {
    auto [it, inserted] = whatif_pos.emplace(key, whatifs.size());
    if (inserted) {
      whatifs.emplace_back(key, std::move(cand));
    } else {
      whatifs[it->second].second = std::move(cand);
    }
  };
  auto add_file = [&](const std::shared_ptr<MappedFile>& file) {
    if (file == nullptr) return;
    for (uint32_t i = 0; i < file->header.program_count; ++i) {
      const ProgramRecord& rec = file->programs[i];
      ProgramData data;
      data.inputs.reserve(rec.input_count);
      for (uint32_t j = 0; j < rec.input_count; ++j) {
        const InputRecord& in = file->inputs[rec.input_begin + j];
        data.inputs.push_back(InputSnapshot{file->PathOf(in), in.format,
                                            in.rows, in.cols, in.nnz,
                                            in.size_bytes});
      }
      add_program(rec.portable_sig, std::move(data));
    }
    for (uint32_t i = 0; i < file->header.whatif_count; ++i) {
      const WhatIfRecord& rec = file->whatifs[i];
      add_whatif(PortableWhatIfKey{rec.portable_sig, rec.context_hash,
                                   rec.cp_heap, rec.cp_cores},
                 Hydrate(*file, rec));
    }
  };
  add_file(disk);
  add_file(frozen_);
  for (auto& [sig, data] : new_programs_) add_program(sig, data);
  for (const PortableWhatIfKey& key : new_whatif_order_) {
    add_whatif(key, new_whatif_.at(key));
  }

  // Size cap: drop the oldest what-if entries (then the oldest
  // programs) until the serialized artifact fits.
  auto serialized_bytes = [&]() {
    uint64_t inputs = 0;
    uint64_t strings = 0;
    for (const auto& [sig, data] : programs) {
      inputs += data.inputs.size();
      for (const InputSnapshot& in : data.inputs) {
        strings += in.path.size();
      }
    }
    uint64_t blocks = 0;
    for (const auto& [key, cand] : whatifs) {
      blocks += cand.config.per_block_mr_heap.size();
    }
    return sizeof(ArtifactHeader) + programs.size() * sizeof(ProgramRecord) +
           inputs * sizeof(InputRecord) +
           whatifs.size() * sizeof(WhatIfRecord) +
           blocks * sizeof(BlockHeapRecord) + strings;
  };
  size_t drop_whatif = 0;
  size_t drop_programs = 0;
  if (options_.max_bytes > 0) {
    uint64_t cap = static_cast<uint64_t>(options_.max_bytes);
    while (serialized_bytes() > cap &&
           (!whatifs.empty() || !programs.empty())) {
      if (!whatifs.empty()) {
        whatifs.erase(whatifs.begin());
        drop_whatif++;
      } else {
        programs.erase(programs.begin());
        drop_programs++;
      }
    }
    if (drop_whatif > 0 || drop_programs > 0) {
      RELM_COUNTER_ADD("plan_store.cap_evictions",
                       static_cast<int64_t>(drop_whatif + drop_programs));
    }
  }

  // Serialize: record arrays then the string segment, header last (it
  // needs the payload checksum).
  std::string payload;
  std::string strings;
  std::vector<InputRecord> input_records;
  std::vector<ProgramRecord> program_records;
  for (const auto& [sig, data] : programs) {
    ProgramRecord rec;
    rec.portable_sig = sig;
    rec.input_begin = static_cast<uint32_t>(input_records.size());
    rec.input_count = static_cast<uint32_t>(data.inputs.size());
    for (const InputSnapshot& in : data.inputs) {
      InputRecord ir;
      ir.path_off = strings.size();
      ir.path_len = static_cast<uint32_t>(in.path.size());
      ir.format = in.format;
      ir.rows = in.rows;
      ir.cols = in.cols;
      ir.nnz = in.nnz;
      ir.size_bytes = in.size_bytes;
      strings += in.path;
      input_records.push_back(ir);
    }
    program_records.push_back(rec);
  }
  std::vector<WhatIfRecord> whatif_records;
  std::vector<BlockHeapRecord> block_records;
  for (const auto& [key, cand] : whatifs) {
    WhatIfRecord rec;
    rec.portable_sig = key.portable_sig;
    rec.context_hash = key.context_hash;
    rec.cp_heap = key.cp_heap;
    rec.cp_cores = key.cp_cores;
    rec.cost = cand.cost;
    rec.cfg_cp_heap = cand.config.cp_heap;
    rec.cfg_default_mr_heap = cand.config.default_mr_heap;
    rec.cfg_cp_cores = cand.config.cp_cores;
    rec.pruned_blocks = cand.pruned_blocks;
    rec.enumerated_blocks = cand.enumerated_blocks;
    rec.block_begin = static_cast<uint32_t>(block_records.size());
    rec.block_count =
        static_cast<uint32_t>(cand.config.per_block_mr_heap.size());
    for (const auto& [block_id, heap] : cand.config.per_block_mr_heap) {
      block_records.push_back(BlockHeapRecord{heap, block_id, 0});
    }
    whatif_records.push_back(rec);
  }
  auto append = [&payload](const void* data, size_t n) {
    payload.append(static_cast<const char*>(data), n);
  };
  if (!program_records.empty()) {
    append(program_records.data(),
           program_records.size() * sizeof(ProgramRecord));
  }
  if (!input_records.empty()) {
    append(input_records.data(),
           input_records.size() * sizeof(InputRecord));
  }
  if (!whatif_records.empty()) {
    append(whatif_records.data(),
           whatif_records.size() * sizeof(WhatIfRecord));
  }
  if (!block_records.empty()) {
    append(block_records.data(),
           block_records.size() * sizeof(BlockHeapRecord));
  }
  payload += strings;

  ArtifactHeader header;
  header.payload_bytes = payload.size();
  header.payload_checksum = FnvChecksum(payload.data(), payload.size());
  header.program_count = static_cast<uint32_t>(program_records.size());
  header.input_count = static_cast<uint32_t>(input_records.size());
  header.whatif_count = static_cast<uint32_t>(whatif_records.size());
  header.block_heap_count = static_cast<uint32_t>(block_records.size());
  header.string_bytes = strings.size();

  // Atomic publish: never expose a half-written artifact, even to a
  // reader racing this flush in another process.
  std::string tmp =
      options_.path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      return Status::Unavailable("cannot write artifact temp file: " + tmp);
    }
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return Status::Unavailable("short write to artifact temp file: " +
                                 tmp);
    }
  }
  if (std::rename(tmp.c_str(), options_.path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Unavailable("cannot publish artifact: " +
                               options_.path);
  }

  // Re-map the published file as the new frozen view and retire the
  // overlay it absorbed.
  Result<std::shared_ptr<MappedFile>> republished = LoadFile(options_.path);
  if (republished.ok()) frozen_ = std::move(*republished);
  new_programs_.clear();
  new_whatif_.clear();
  new_whatif_order_.clear();
  dirty_ = false;
  flushes_++;
  RELM_COUNTER_INC("plan_store.flushes");
  return Status::OK();
}

PlanArtifactStore::Stats PlanArtifactStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  if (frozen_ != nullptr) {
    s.frozen_programs = frozen_->header.program_count;
    s.frozen_whatif = frozen_->header.whatif_count;
  }
  s.pending_programs = new_programs_.size();
  s.pending_whatif = new_whatif_.size();
  s.flushes = flushes_;
  return s;
}

}  // namespace store
}  // namespace relm

#include "api/relm_system.h"

namespace relm {

namespace {

SessionOptions UncachedSessionOptions() {
  SessionOptions options;
  options.enable_plan_cache = false;
  return options;
}

}  // namespace

RelmSystem::RelmSystem(ClusterConfig cc)
    : session_(cc, UncachedSessionOptions()) {}

void RelmSystem::RegisterMatrixMetadata(const std::string& path,
                                        int64_t rows, int64_t cols,
                                        double sparsity) {
  // The legacy signature has no error channel; invalid metadata simply
  // registers nothing (Session validates and reports).
  session_.RegisterMatrixMetadata(path, rows, cols, sparsity);
}

void RelmSystem::RegisterMatrix(const std::string& path, MatrixBlock data) {
  session_.RegisterMatrix(path, std::move(data));
}

Result<std::unique_ptr<MlProgram>> RelmSystem::CompileFile(
    const std::string& path, const ScriptArgs& args) {
  return session_.CompileFile(path, args);
}

Result<std::unique_ptr<MlProgram>> RelmSystem::CompileSource(
    const std::string& source, const ScriptArgs& args) {
  return session_.CompileSource(source, args);
}

Result<ResourceConfig> RelmSystem::OptimizeResources(
    MlProgram* program, OptimizerStats* stats,
    const OptimizerOptions& options) {
  RELM_ASSIGN_OR_RETURN(OptimizeOutcome outcome,
                        session_.Optimize(program, options));
  if (stats != nullptr) *stats = std::move(outcome.stats);
  return outcome.config;
}

Result<double> RelmSystem::EstimateCost(
    MlProgram* program, const ResourceConfig& config,
    const obs::CalibratedOpRegistry* calibration) {
  return session_.EstimateCost(program, config, calibration);
}

Result<RealRun> RelmSystem::ExecuteReal(MlProgram* program, bool echo) {
  return session_.ExecuteReal(program, echo);
}

Result<SimResult> RelmSystem::Simulate(MlProgram* program,
                                       const ResourceConfig& config,
                                       const SimOptions& options,
                                       const SymbolMap& oracle) {
  return session_.Simulate(program, config, options, oracle);
}

Status RelmSystem::DumpTelemetry(const std::string& path) {
  return Session::DumpTelemetry(path);
}

std::vector<RelmSystem::Baseline> RelmSystem::StaticBaselines() const {
  return session_.StaticBaselines();
}

}  // namespace relm

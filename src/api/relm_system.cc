#include "api/relm_system.h"

#include <fstream>
#include <sstream>

#include "lops/compiler_backend.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace relm {

RelmSystem::RelmSystem(ClusterConfig cc)
    : cc_(cc), hdfs_(cc.hdfs_block_size) {}

void RelmSystem::RegisterMatrixMetadata(const std::string& path,
                                        int64_t rows, int64_t cols,
                                        double sparsity) {
  hdfs_.PutMetadata(
      path, MatrixCharacteristics::WithSparsity(rows, cols, sparsity));
}

void RelmSystem::RegisterMatrix(const std::string& path, MatrixBlock data) {
  hdfs_.PutMatrix(path, std::move(data));
}

Result<std::unique_ptr<MlProgram>> RelmSystem::CompileFile(
    const std::string& path, const ScriptArgs& args) {
  std::ifstream in(path);
  if (!in.good()) {
    return Status::NotFound("cannot open script file: " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return CompileSource(ss.str(), args);
}

Result<std::unique_ptr<MlProgram>> RelmSystem::CompileSource(
    const std::string& source, const ScriptArgs& args) {
  return MlProgram::Compile(source, args, &hdfs_);
}

Result<ResourceConfig> RelmSystem::OptimizeResources(
    MlProgram* program, OptimizerStats* stats,
    const OptimizerOptions& options) {
  ResourceOptimizer optimizer(cc_, options);
  return optimizer.Optimize(program, stats);
}

Result<double> RelmSystem::EstimateCost(MlProgram* program,
                                        const ResourceConfig& config) {
  CompileCounters counters;
  RELM_ASSIGN_OR_RETURN(
      RuntimeProgram rp,
      GenerateRuntimeProgram(program, cc_, config, &counters));
  CostModel cm(cc_);
  return cm.EstimateProgramCost(rp);
}

Result<RelmSystem::RealRun> RelmSystem::ExecuteReal(MlProgram* program,
                                                    bool echo) {
  Interpreter interp(program, &hdfs_);
  interp.set_echo(echo);
  RELM_RETURN_IF_ERROR(interp.Run());
  RealRun out;
  out.printed = interp.printed();
  out.blocks_executed = interp.blocks_executed();
  return out;
}

Result<SimResult> RelmSystem::Simulate(MlProgram* program,
                                       const ResourceConfig& config,
                                       const SimOptions& options,
                                       const SymbolMap& oracle) {
  ClusterSimulator sim(cc_, options);
  return sim.Execute(program, config, oracle);
}

Status RelmSystem::DumpTelemetry(const std::string& path) {
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  return obs::Tracer::Global().WriteChromeTrace(path, &snapshot);
}

std::vector<RelmSystem::Baseline> RelmSystem::StaticBaselines() const {
  int64_t small = 512 * kMB;
  int64_t large = cc_.MaxHeapSize();       // 53.3GB on the paper cluster
  int64_t task_large = GigaBytes(4.4);     // all 12 cores usable
  return {
      {"B-SS", ResourceConfig(small, small)},
      {"B-LS", ResourceConfig(large, small)},
      {"B-SL", ResourceConfig(small, task_large)},
      {"B-LL", ResourceConfig(large, task_large)},
  };
}

}  // namespace relm

#include "api/session.h"

#include <fstream>
#include <sstream>

#include "analysis/analysis.h"
#include "lops/compiler_backend.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace relm {

Status RealRunOptions::Validate() const {
  if (workers < 0) {
    return Status::InvalidArgument(
        "RealRunOptions: workers must be >= 0 (0 = process default)");
  }
  if (memory_budget < 0) {
    return Status::InvalidArgument(
        "RealRunOptions: memory_budget must be >= 0 (0 = unmanaged)");
  }
  return Status::OK();
}

Status SessionOptions::Validate() const {
  if (!artifact_store.path.empty()) {
    if (!enable_plan_cache) {
      return Status::InvalidArgument(
          "SessionOptions: an artifact store requires the plan cache "
          "(enable_plan_cache = true)");
    }
    RELM_RETURN_IF_ERROR(artifact_store.Validate());
  }
  return Status::OK();
}

Session::Session(ClusterConfig cc, SessionOptions options)
    : state_(std::make_shared<State>(cc)) {
  state_->store_status = options.Validate();
  if (options.enable_plan_cache) {
    state_->cache = options.plan_cache != nullptr ? options.plan_cache
                                                  : &PlanCache::Global();
    if (state_->store_status.ok() && !options.artifact_store.path.empty()) {
      // Persistence is strictly best-effort: any open/load failure is
      // recorded in store_status and the session degrades to plain
      // in-process caching (clean recompiles, never a crash).
      Result<std::shared_ptr<store::PlanArtifactStore>> opened =
          store::PlanArtifactStore::Open(options.artifact_store);
      if (opened.ok()) {
        state_->store = std::move(*opened);
        state_->store_status = state_->store->load_status();
        state_->cache->AttachStore(state_->store);
      } else {
        state_->store_status = opened.status();
      }
    }
  }
  state_->analyze_compiles = options.analyze_compiles;
}

Status Session::FlushArtifacts() {
  if (state_->store == nullptr) return Status::OK();
  return state_->store->Flush();
}

Status Session::RegisterMatrixMetadata(const std::string& path,
                                       int64_t rows, int64_t cols,
                                       double sparsity) {
  if (path.empty()) {
    return Status::InvalidArgument("matrix path must not be empty");
  }
  if (rows <= 0 || cols <= 0) {
    return Status::InvalidArgument(
        "matrix dimensions must be positive: " + path);
  }
  if (sparsity < 0.0 || sparsity > 1.0) {
    return Status::InvalidArgument("sparsity must be in [0, 1]: " + path);
  }
  state_->hdfs.PutMetadata(
      path, MatrixCharacteristics::WithSparsity(rows, cols, sparsity));
  return Status::OK();
}

Status Session::RegisterMatrix(const std::string& path, MatrixBlock data) {
  if (path.empty()) {
    return Status::InvalidArgument("matrix path must not be empty");
  }
  state_->hdfs.PutMatrix(path, std::move(data));
  return Status::OK();
}

Result<std::unique_ptr<MlProgram>> Session::CompileFile(
    const std::string& path, const ScriptArgs& args) {
  std::ifstream in(path);
  if (!in.good()) {
    return Status::NotFound("cannot open script file: " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return CompileSource(ss.str(), args);
}

Result<std::unique_ptr<MlProgram>> Session::CompileSource(
    const std::string& source, const ScriptArgs& args) {
  Result<std::unique_ptr<MlProgram>> compiled =
      state_->cache != nullptr
          ? state_->cache->GetOrCompile(source, args, &state_->hdfs)
          : MlProgram::Compile(source, args, &state_->hdfs);
  if (!compiled.ok() || !state_->analyze_compiles) return compiled;
  // Post-compile integrity gate (first of the three analysis choke
  // points; the others are PlanCache insert and the optimizer's strict
  // grid sweep). A program that fails the structural passes would only
  // mislead the optimizer, so it never leaves the session.
  analysis::AnalysisReport report =
      analysis::AnalyzeProgram(compiled->get());
  RELM_RETURN_IF_ERROR(analysis::ReportToStatus(report));
  return compiled;
}

Result<OptimizeOutcome> Session::Optimize(MlProgram* program,
                                          const OptimizerOptions& options) {
  if (program == nullptr) {
    return Status::InvalidArgument("Optimize: program must not be null");
  }
  OptimizerOptions effective = options;
  if (effective.plan_cache == nullptr) {
    effective.plan_cache = state_->cache;
  }
  ResourceOptimizer optimizer(state_->cc, effective);
  OptimizeOutcome outcome;
  RELM_ASSIGN_OR_RETURN(outcome.config,
                        optimizer.Optimize(program, &outcome.stats));
  return outcome;
}

Result<double> Session::EstimateCost(
    MlProgram* program, const ResourceConfig& config,
    const obs::CalibratedOpRegistry* calibration) {
  if (program == nullptr) {
    return Status::InvalidArgument("EstimateCost: program must not be null");
  }
  CompileCounters counters;
  RELM_ASSIGN_OR_RETURN(
      RuntimeProgram rp,
      GenerateRuntimeProgram(program, state_->cc, config, &counters));
  CostModel cm(state_->cc);
  cm.set_calibration(calibration);
  return cm.EstimateProgramCost(rp);
}

Result<RealRun> Session::ExecuteReal(MlProgram* program, bool echo) {
  // Deprecated shim; the options overload is the real entry point.
  return ExecuteReal(program, RealRunOptions().WithEcho(echo));
}

Result<RealRun> Session::ExecuteReal(MlProgram* program,
                                     const RealRunOptions& options) {
  if (program == nullptr) {
    return Status::InvalidArgument("ExecuteReal: program must not be null");
  }
  RELM_RETURN_IF_ERROR(options.Validate());
  if (options.strict_analysis) {
    // Pre-run audit: compile the plan the run claims to execute under
    // and check every invariant, including that the engine's memory
    // capacity matches the plan's CP budget.
    CompileCounters counters;
    RELM_ASSIGN_OR_RETURN(
        RuntimeProgram rp,
        GenerateRuntimeProgram(program, state_->cc, options.resources,
                               &counters));
    analysis::AnalysisReport report = analysis::AnalyzeRuntimePlan(
        program, rp, state_->cc,
        options.memory_budget > 0 ? options.memory_budget : -1);
    RELM_RETURN_IF_ERROR(analysis::ReportToStatus(report));
  }
  Interpreter interp(program, &state_->hdfs);
  interp.set_echo(options.echo);
  exec::ExecOptions eo;
  eo.workers = options.workers;
  eo.memory_budget = options.memory_budget;
  eo.faults = options.faults;
  eo.chaos = options.chaos;
  interp.set_exec_options(eo);
  RELM_RETURN_IF_ERROR(interp.Run());
  RealRun out;
  out.printed = interp.printed();
  out.blocks_executed = interp.blocks_executed();
  out.exec = interp.exec_stats();
  return out;
}

Result<SimResult> Session::Simulate(MlProgram* program,
                                    const ResourceConfig& config,
                                    const SimOptions& options,
                                    const SymbolMap& oracle) {
  if (program == nullptr) {
    return Status::InvalidArgument("Simulate: program must not be null");
  }
  SimOptions effective = options;
  if (effective.optimizer.plan_cache == nullptr) {
    // Runtime re-optimizations (adaptation) share the session cache.
    effective.optimizer.plan_cache = state_->cache;
  }
  ClusterSimulator sim(state_->cc, effective);
  return sim.Execute(program, config, oracle);
}

std::vector<StaticBaseline> Session::StaticBaselines() const {
  int64_t small = 512 * kMB;
  int64_t large = state_->cc.MaxHeapSize();  // 53.3GB on the paper cluster
  int64_t task_large = GigaBytes(4.4);       // all 12 cores usable
  return {
      {"B-SS", ResourceConfig(small, small)},
      {"B-LS", ResourceConfig(large, small)},
      {"B-SL", ResourceConfig(small, task_large)},
      {"B-LL", ResourceConfig(large, task_large)},
  };
}

Status Session::DumpTelemetry(const std::string& path) {
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  return obs::Tracer::Global().WriteChromeTrace(path, &snapshot);
}

}  // namespace relm

#ifndef RELM_API_SESSION_H_
#define RELM_API_SESSION_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/plan_cache.h"
#include "store/plan_artifact_store.h"
#include "core/resource_optimizer.h"
#include "hdfs/file_system.h"
#include "hops/ml_program.h"
#include "lops/resources.h"
#include "mrsim/cluster_simulator.h"
#include "runtime/interpreter.h"
#include "yarn/cluster_config.h"

namespace relm {

/// Everything one optimization run produces: the chosen resource
/// configuration plus the statistics and decision trace of the run that
/// chose it. Replaces the old out-param convention
/// (`OptimizeResources(prog, &stats)`).
struct OptimizeOutcome {
  ResourceConfig config;
  OptimizerStats stats;
};

/// Result of a real, in-process execution.
struct RealRun {
  std::vector<std::string> printed;
  int64_t blocks_executed = 0;
  /// Execution-engine counters for the run (parallel/serial blocks,
  /// tasks scheduled, spill/reload bytes, evictions).
  exec::ExecStats exec;
};

/// Knobs for a real, in-process execution through the unified engine.
/// Builder-setter + Validate()-on-use shape, like ServeOptions and
/// ArtifactStoreOptions: construct, chain With*() calls, and ExecuteReal
/// validates before running.
struct RealRunOptions {
  /// Echo print() lines to stdout as they commit.
  bool echo = false;
  /// Engine worker count for instruction-DAG scheduling and CP kernels;
  /// <= 0 uses the process-wide default (exec::Workers()).
  int workers = 0;
  /// MemoryManager capacity for pinned matrix symbols, in bytes; <= 0
  /// runs unmanaged (no pinning, no spilling).
  int64_t memory_budget = 0;
  /// Compile the program into a runtime plan under `resources` and run
  /// the full plan-integrity analysis before executing — including the
  /// engine-capacity conformance check, which requires memory_budget to
  /// equal resources.CpBudget() when a budget is set. Fails the run on
  /// error-severity diagnostics.
  bool strict_analysis = false;
  /// Resource configuration the strict-analysis audit compiles under.
  ResourceConfig resources;
  /// Chaos injection for this run (off by default). Injected failures
  /// surface as typed, retryable Unavailable errors — never corrupted
  /// results (DESIGN.md §12).
  exec::FaultPolicy faults;
  /// External chaos injector (not owned; overrides `faults` when set).
  /// Lets a retrying caller keep one injector across attempts so
  /// retries draw fresh faults instead of replaying the failed ones.
  exec::ChaosInjector* chaos = nullptr;

  /// Rejects nonsensical combinations (negative worker count or memory
  /// budget, strict analysis without a resource configuration) with
  /// InvalidArgument. Run by ExecuteReal; also available directly.
  Status Validate() const;

  // ---- chainable named setters (builder-style construction) ----
  RealRunOptions& WithEcho(bool on) {
    echo = on;
    return *this;
  }
  RealRunOptions& WithWorkers(int n) {
    workers = n;
    return *this;
  }
  RealRunOptions& WithMemoryBudget(int64_t bytes) {
    memory_budget = bytes;
    return *this;
  }
  RealRunOptions& WithStrictAnalysis(bool on) {
    strict_analysis = on;
    return *this;
  }
  RealRunOptions& WithResources(ResourceConfig config) {
    resources = std::move(config);
    return *this;
  }
  RealRunOptions& WithFaults(exec::FaultPolicy policy) {
    faults = policy;
    return *this;
  }
  RealRunOptions& WithChaos(exec::ChaosInjector* injector) {
    chaos = injector;
    return *this;
  }
};

/// One of the paper's static baseline configurations (Section 5.1).
struct StaticBaseline {
  const char* name;
  ResourceConfig config;
};

/// Session construction knobs. Same builder-setter + Validate()-on-use
/// shape as ServeOptions/RealRunOptions/ArtifactStoreOptions.
struct SessionOptions {
  /// Read-through plan/what-if caching for compiles and optimizations
  /// issued through this session. Disabled sessions behave exactly like
  /// the pre-caching system (every benchmark iteration recompiles).
  bool enable_plan_cache = true;
  /// Cache instance to share (not owned). nullptr selects the
  /// process-wide PlanCache::Global().
  PlanCache* plan_cache = nullptr;
  /// Run the structural plan-integrity analysis on every program this
  /// session compiles (including cache hits, whose clones are cheap to
  /// re-audit) and fail CompileSource on error-severity diagnostics.
  bool analyze_compiles = true;
  /// Persistent plan-artifact store backing the plan cache (DESIGN.md
  /// §14). An empty path (the default) leaves persistence off; with a
  /// path set, the session opens the artifact at construction, attaches
  /// it to its plan cache, and compiled plans plus what-if costings
  /// survive the process — a fresh session against a warm artifact
  /// reaches its first result with zero full compiles.
  ArtifactStoreOptions artifact_store;

  /// Rejects nonsensical combinations (a configured artifact store
  /// while caching is disabled, invalid store options) with
  /// InvalidArgument. Run by the Session constructor; failures are
  /// surfaced through Session::artifact_store_status().
  Status Validate() const;

  // ---- chainable named setters (builder-style construction) ----
  SessionOptions& WithPlanCacheEnabled(bool on) {
    enable_plan_cache = on;
    return *this;
  }
  SessionOptions& WithPlanCache(PlanCache* cache) {
    plan_cache = cache;
    return *this;
  }
  SessionOptions& WithAnalyzeCompiles(bool on) {
    analyze_compiles = on;
    return *this;
  }
  SessionOptions& WithArtifactStore(ArtifactStoreOptions store) {
    artifact_store = std::move(store);
    return *this;
  }
};

/// A client's handle onto one simulated cluster: the cluster model, the
/// shared HDFS namespace, and (optionally) the shared plan/what-if
/// cache. Sessions are cheap value types — copies share the same
/// underlying cluster state, so handing a Session to each worker thread
/// of a job service is the intended usage. All entry points return
/// Result<T>/Status; nothing is reported through out-params.
///
/// Typical usage:
///
///   Session session;                       // paper's 1+6 node cluster
///   session.RegisterMatrixMetadata("/data/X", 1000000, 1000, 1.0);
///   session.RegisterMatrixMetadata("/data/y", 1000000, 1, 1.0);
///   auto prog = session.CompileFile("scripts/linreg_cg.dml",
///                                   {{"X", "/data/X"}, {"Y", "/data/y"},
///                                    {"B", "/out/B"}});
///   auto outcome = session.Optimize(prog->get());   // config + stats
///   auto run = session.Simulate(prog->get(), outcome->config);
class Session {
 public:
  explicit Session(ClusterConfig cc = ClusterConfig::PaperCluster(),
                   SessionOptions options = SessionOptions());

  const ClusterConfig& cluster() const { return state_->cc; }
  SimulatedHdfs& hdfs() { return state_->hdfs; }
  const SimulatedHdfs& hdfs() const { return state_->hdfs; }
  /// The cache compiles/optimizations read through; nullptr when
  /// caching is disabled for this session.
  PlanCache* plan_cache() const { return state_->cache; }
  /// The persistent artifact store opened from
  /// SessionOptions::artifact_store; nullptr when persistence is off or
  /// the open failed (see artifact_store_status()).
  const std::shared_ptr<store::PlanArtifactStore>& artifact_store() const {
    return state_->store;
  }
  /// OK when persistence is off or the artifact loaded cleanly;
  /// otherwise why the store started empty (corrupt file, version
  /// skew) or could not be opened at all (invalid options). A non-OK
  /// status never fails the session — it degrades to plain in-process
  /// caching.
  const Status& artifact_store_status() const {
    return state_->store_status;
  }
  /// Persists pending plan artifacts now instead of at destruction
  /// (fleet warm-up, tests). No-op without a writable store.
  Status FlushArtifacts();

  /// Registers a metadata-only input (benchmark scale). Rejects empty
  /// paths, non-positive dimensions, and sparsity outside [0, 1].
  Status RegisterMatrixMetadata(const std::string& path, int64_t rows,
                                int64_t cols, double sparsity = 1.0);
  /// Registers a real in-memory input (real-execution scale).
  Status RegisterMatrix(const std::string& path, MatrixBlock data);

  /// Compiles a DML script from a file / from source. With caching
  /// enabled, identical (script, args, input metadata) submissions are
  /// served from the compiled-program cache.
  Result<std::unique_ptr<MlProgram>> CompileFile(const std::string& path,
                                                 const ScriptArgs& args);
  Result<std::unique_ptr<MlProgram>> CompileSource(
      const std::string& source, const ScriptArgs& args);

  /// Runs the resource optimizer (initial resource optimization) and
  /// returns the chosen configuration together with the run statistics.
  /// options.plan_cache is filled in from the session when unset.
  Result<OptimizeOutcome> Optimize(
      MlProgram* program,
      const OptimizerOptions& options = OptimizerOptions());

  /// Estimated cost of running `program` under `config` (seconds).
  /// A non-null `calibration` (e.g. obs::CalibratedOpRegistry::FromStore
  /// over a profiled run) replaces the static per-operator compute
  /// rates with measured effective throughput.
  Result<double> EstimateCost(
      MlProgram* program, const ResourceConfig& config,
      const obs::CalibratedOpRegistry* calibration = nullptr);

  /// Executes the program for real on in-memory data (correctness
  /// path; all read() inputs must have payloads) with full engine
  /// control: worker count, CP memory budget (spilling to the session
  /// HDFS under pressure), and an optional pre-run strict plan audit
  /// with the budget-conformance check.
  Result<RealRun> ExecuteReal(MlProgram* program,
                              const RealRunOptions& options =
                                  RealRunOptions());
  /// Deprecated forwarding shim for the old ad-hoc bool overload.
  [[deprecated("fold the flag into RealRunOptions: "
               "ExecuteReal(program, RealRunOptions().WithEcho(echo))")]]
  Result<RealRun> ExecuteReal(MlProgram* program, bool echo);

  /// Simulated "measured" execution on the cluster model. Mutates the
  /// program's IR with sizes discovered at runtime. Runtime
  /// re-optimizations read through the session cache as well.
  Result<SimResult> Simulate(MlProgram* program,
                             const ResourceConfig& config,
                             const SimOptions& options = SimOptions(),
                             const SymbolMap& oracle = {});

  /// The paper's four static baseline configurations (Section 5.1):
  /// B-SS, B-LS, B-SL, B-LL.
  std::vector<StaticBaseline> StaticBaselines() const;

  /// Writes the process-wide telemetry — Chrome-trace spans collected so
  /// far plus a snapshot of every metric (including the plan-cache
  /// hit/miss/eviction counters) — as trace-event JSON loadable in
  /// Perfetto / chrome://tracing.
  static Status DumpTelemetry(const std::string& path);

 private:
  struct State {
    // SimulatedHdfs holds a mutex, so State is constructed in place.
    explicit State(const ClusterConfig& cc_in)
        : cc(cc_in), hdfs(cc_in.hdfs_block_size) {}
    ClusterConfig cc;
    SimulatedHdfs hdfs;
    PlanCache* cache = nullptr;  // not owned
    bool analyze_compiles = true;
    /// Owned artifact store (shared with the cache via AttachStore so
    /// destruction order does not matter) and the open-time verdict.
    std::shared_ptr<store::PlanArtifactStore> store;
    Status store_status;
  };
  std::shared_ptr<State> state_;
};

}  // namespace relm

#endif  // RELM_API_SESSION_H_

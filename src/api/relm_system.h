#ifndef RELM_API_RELM_SYSTEM_H_
#define RELM_API_RELM_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "api/session.h"
#include "common/status.h"
#include "core/resource_optimizer.h"
#include "hdfs/file_system.h"
#include "hops/ml_program.h"
#include "lops/resources.h"
#include "mrsim/cluster_simulator.h"
#include "runtime/interpreter.h"
#include "yarn/cluster_config.h"

namespace relm {

/// DEPRECATED high-level facade over the ReLM library, kept as a thin
/// shim so existing examples and benchmark harnesses migrate
/// incrementally. New code should use Session (api/session.h), which
/// returns Result<T> everywhere (no out-params), folds OptimizerStats
/// into OptimizeOutcome, and reads through the shared plan/what-if
/// cache; concurrent submissions belong in serve::JobService.
///
/// Differences from Session: RelmSystem runs with plan caching disabled
/// so its per-call costs (recompiles, cost invocations) match the
/// pre-caching system — benchmark baselines depend on that.
class RelmSystem {
 public:
  explicit RelmSystem(ClusterConfig cc = ClusterConfig::PaperCluster());

  const ClusterConfig& cluster() const { return session_.cluster(); }
  SimulatedHdfs& hdfs() { return session_.hdfs(); }
  /// The uncached Session backing this facade.
  Session& session() { return session_; }

  /// \deprecated Use Session::RegisterMatrixMetadata (returns Status).
  void RegisterMatrixMetadata(const std::string& path, int64_t rows,
                              int64_t cols, double sparsity = 1.0);
  /// \deprecated Use Session::RegisterMatrix (returns Status).
  void RegisterMatrix(const std::string& path, MatrixBlock data);

  /// Compiles a DML script from a file / from source.
  Result<std::unique_ptr<MlProgram>> CompileFile(const std::string& path,
                                                 const ScriptArgs& args);
  Result<std::unique_ptr<MlProgram>> CompileSource(
      const std::string& source, const ScriptArgs& args);

  /// \deprecated Out-param stats convention. Use Session::Optimize,
  /// which returns OptimizeOutcome{config, stats}.
  Result<ResourceConfig> OptimizeResources(
      MlProgram* program, OptimizerStats* stats = nullptr,
      const OptimizerOptions& options = OptimizerOptions());

  /// Estimated cost of running `program` under `config` (seconds),
  /// optionally through a measured-throughput calibration.
  Result<double> EstimateCost(
      MlProgram* program, const ResourceConfig& config,
      const obs::CalibratedOpRegistry* calibration = nullptr);

  /// \deprecated Alias of relm::RealRun, kept for source compatibility.
  using RealRun = ::relm::RealRun;
  /// Executes the program for real on in-memory data (correctness path;
  /// all read() inputs must have payloads).
  Result<RealRun> ExecuteReal(MlProgram* program, bool echo = false);

  /// Simulated "measured" execution on the cluster model. Mutates the
  /// program's IR with sizes discovered at runtime.
  Result<SimResult> Simulate(MlProgram* program,
                             const ResourceConfig& config,
                             const SimOptions& options = SimOptions(),
                             const SymbolMap& oracle = {});

  /// \deprecated Alias of relm::StaticBaseline.
  using Baseline = ::relm::StaticBaseline;
  /// The paper's four static baseline configurations (Section 5.1):
  /// B-SS, B-LS, B-SL, B-LL.
  std::vector<Baseline> StaticBaselines() const;

  /// Writes the process-wide telemetry — Chrome-trace spans collected so
  /// far plus a snapshot of every metric — as trace-event JSON loadable
  /// in Perfetto / chrome://tracing. Call after the runs of interest;
  /// tracing must have been enabled (Tracer::Global().SetEnabled(true))
  /// for spans to be present, metrics are always collected.
  static Status DumpTelemetry(const std::string& path);

 private:
  Session session_;
};

}  // namespace relm

#endif  // RELM_API_RELM_SYSTEM_H_

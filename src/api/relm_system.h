#ifndef RELM_API_RELM_SYSTEM_H_
#define RELM_API_RELM_SYSTEM_H_

// DEPRECATED compatibility header. RelmSystem was the original facade
// over the ReLM library; Session (api/session.h) replaced it — Result<T>
// everywhere, OptimizerStats folded into OptimizeOutcome, read-through
// plan caching, persistent artifacts — and every in-tree bench, test,
// and example now uses Session directly. This header-only shim keeps
// out-of-tree callers compiling for one release (see the migration
// section in README.md for the timeline) and then goes away. No logic
// lives here: every member is a one-line forward onto an uncached
// Session.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/session.h"

namespace relm {

/// \deprecated Use Session (api/session.h); concurrent submissions
/// belong in serve::JobService. RelmSystem runs with plan caching
/// disabled so its per-call costs match the pre-caching system.
class [[deprecated(
    "RelmSystem is a compatibility shim; use Session "
    "(api/session.h)")]] RelmSystem {
 public:
  explicit RelmSystem(ClusterConfig cc = ClusterConfig::PaperCluster())
      : session_(std::move(cc),
                 SessionOptions().WithPlanCacheEnabled(false)) {}

  const ClusterConfig& cluster() const { return session_.cluster(); }
  SimulatedHdfs& hdfs() { return session_.hdfs(); }
  /// The uncached Session backing this facade.
  Session& session() { return session_; }

  /// \deprecated Use Session::RegisterMatrixMetadata (returns Status).
  void RegisterMatrixMetadata(const std::string& path, int64_t rows,
                              int64_t cols, double sparsity = 1.0) {
    Status ignored =
        session_.RegisterMatrixMetadata(path, rows, cols, sparsity);
    (void)ignored;  // the legacy signature has no error channel
  }
  /// \deprecated Use Session::RegisterMatrix (returns Status).
  void RegisterMatrix(const std::string& path, MatrixBlock data) {
    Status ignored = session_.RegisterMatrix(path, std::move(data));
    (void)ignored;
  }

  Result<std::unique_ptr<MlProgram>> CompileFile(const std::string& path,
                                                 const ScriptArgs& args) {
    return session_.CompileFile(path, args);
  }
  Result<std::unique_ptr<MlProgram>> CompileSource(
      const std::string& source, const ScriptArgs& args) {
    return session_.CompileSource(source, args);
  }

  /// \deprecated Out-param stats convention. Use Session::Optimize,
  /// which returns OptimizeOutcome{config, stats}.
  Result<ResourceConfig> OptimizeResources(
      MlProgram* program, OptimizerStats* stats = nullptr,
      const OptimizerOptions& options = OptimizerOptions()) {
    RELM_ASSIGN_OR_RETURN(OptimizeOutcome outcome,
                          session_.Optimize(program, options));
    if (stats != nullptr) *stats = std::move(outcome.stats);
    return outcome.config;
  }

  Result<double> EstimateCost(
      MlProgram* program, const ResourceConfig& config,
      const obs::CalibratedOpRegistry* calibration = nullptr) {
    return session_.EstimateCost(program, config, calibration);
  }

  /// \deprecated Alias of relm::RealRun, kept for source compatibility.
  using RealRun = ::relm::RealRun;
  Result<RealRun> ExecuteReal(MlProgram* program, bool echo = false) {
    return session_.ExecuteReal(program, RealRunOptions().WithEcho(echo));
  }

  Result<SimResult> Simulate(MlProgram* program,
                             const ResourceConfig& config,
                             const SimOptions& options = SimOptions(),
                             const SymbolMap& oracle = {}) {
    return session_.Simulate(program, config, options, oracle);
  }

  /// \deprecated Alias of relm::StaticBaseline.
  using Baseline = ::relm::StaticBaseline;
  std::vector<Baseline> StaticBaselines() const {
    return session_.StaticBaselines();
  }

  static Status DumpTelemetry(const std::string& path) {
    return Session::DumpTelemetry(path);
  }

 private:
  Session session_;
};

}  // namespace relm

#endif  // RELM_API_RELM_SYSTEM_H_

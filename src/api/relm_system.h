#ifndef RELM_API_RELM_SYSTEM_H_
#define RELM_API_RELM_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/resource_optimizer.h"
#include "hdfs/file_system.h"
#include "hops/ml_program.h"
#include "lops/resources.h"
#include "mrsim/cluster_simulator.h"
#include "runtime/interpreter.h"
#include "yarn/cluster_config.h"

namespace relm {

/// High-level facade over the ReLM library: a simulated cluster plus the
/// declarative-ML compiler, resource optimizer, in-memory runtime, and
/// measured-execution simulator. This is the API the examples and
/// benchmark harnesses are written against.
///
/// Typical usage:
///
///   RelmSystem sys;                       // paper's 1+6 node cluster
///   sys.RegisterMatrixMetadata("/data/X", 1000000, 1000, 1.0);
///   sys.RegisterMatrixMetadata("/data/y", 1000000, 1, 1.0);
///   auto prog = sys.CompileFile("scripts/linreg_cg.dml",
///                               {{"X", "/data/X"}, {"Y", "/data/y"},
///                                {"B", "/out/B"}});
///   auto config = sys.OptimizeResources(prog->get());
///   auto run = sys.Simulate(prog->get(), *config);
class RelmSystem {
 public:
  explicit RelmSystem(ClusterConfig cc = ClusterConfig::PaperCluster());

  const ClusterConfig& cluster() const { return cc_; }
  SimulatedHdfs& hdfs() { return hdfs_; }

  /// Registers a metadata-only input (benchmark scale).
  void RegisterMatrixMetadata(const std::string& path, int64_t rows,
                              int64_t cols, double sparsity = 1.0);
  /// Registers a real in-memory input (real-execution scale).
  void RegisterMatrix(const std::string& path, MatrixBlock data);

  /// Compiles a DML script from a file / from source.
  Result<std::unique_ptr<MlProgram>> CompileFile(const std::string& path,
                                                 const ScriptArgs& args);
  Result<std::unique_ptr<MlProgram>> CompileSource(
      const std::string& source, const ScriptArgs& args);

  /// Runs the resource optimizer (initial resource optimization).
  Result<ResourceConfig> OptimizeResources(
      MlProgram* program, OptimizerStats* stats = nullptr,
      const OptimizerOptions& options = OptimizerOptions());

  /// Estimated cost of running `program` under `config` (seconds).
  Result<double> EstimateCost(MlProgram* program,
                              const ResourceConfig& config);

  /// Result of a real, in-process execution.
  struct RealRun {
    std::vector<std::string> printed;
    int64_t blocks_executed = 0;
  };
  /// Executes the program for real on in-memory data (correctness path;
  /// all read() inputs must have payloads).
  Result<RealRun> ExecuteReal(MlProgram* program, bool echo = false);

  /// Simulated "measured" execution on the cluster model. Mutates the
  /// program's IR with sizes discovered at runtime.
  Result<SimResult> Simulate(MlProgram* program,
                             const ResourceConfig& config,
                             const SimOptions& options = SimOptions(),
                             const SymbolMap& oracle = {});

  /// The paper's four static baseline configurations (Section 5.1):
  /// B-SS, B-LS, B-SL, B-LL.
  struct Baseline {
    const char* name;
    ResourceConfig config;
  };
  std::vector<Baseline> StaticBaselines() const;

  /// Writes the process-wide telemetry — Chrome-trace spans collected so
  /// far plus a snapshot of every metric — as trace-event JSON loadable
  /// in Perfetto / chrome://tracing. Call after the runs of interest;
  /// tracing must have been enabled (Tracer::Global().SetEnabled(true))
  /// for spans to be present, metrics are always collected.
  static Status DumpTelemetry(const std::string& path);

 private:
  ClusterConfig cc_;
  SimulatedHdfs hdfs_;
};

}  // namespace relm

#endif  // RELM_API_RELM_SYSTEM_H_

#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "exec/hop_ops.h"
#include "exec/op_registry.h"
#include "lops/compiler_backend.h"

namespace relm {

CostModel::CostModel(const ClusterConfig& cc, double expected_failure_rate)
    : cc_(cc),
      expected_failure_rate_(std::max(0.0, expected_failure_rate)),
      cp_read_bps_(exec::kCpReadBps),
      cp_write_bps_(exec::kCpWriteBps) {}

double CostModel::ExpectedMrRetryOverhead(double rate,
                                          const MrJobTimeBreakdown& bd,
                                          const ClusterConfig& cc) {
  if (rate <= 0.0 || bd.num_map_tasks <= 0 || bd.map_waves <= 0) {
    return 0.0;
  }
  double per_task = std::max(
      0.0, bd.map_phase / bd.map_waves - cc.mr_task_latency);
  if (per_task <= 0.0) return 0.0;
  double busy_seconds = per_task * bd.num_map_tasks;
  // Losing an attempt costs the work done so far (half a task on
  // average) plus the relaunch latency — so fewer, larger tasks pay
  // quadratically more: same busy_seconds, larger per-failure loss.
  double expected_failures = rate * busy_seconds;
  double loss_per_failure = 0.5 * per_task + cc.mr_task_latency;
  int slots = std::max(1, (bd.num_map_tasks + bd.map_waves - 1) /
                              bd.map_waves);
  return expected_failures * loss_per_failure / slots;
}

MrJobTimeBreakdown EstimateMrJobTime(const ClusterConfig& cc,
                                     const MRJobInstr& job, int64_t mr_heap,
                                     bool model_trashing) {
  MrJobTimeBreakdown out;
  int slots_per_node = cc.MaxTasksPerNode(mr_heap);
  int total_slots = std::max(
      1, static_cast<int>(slots_per_node * cc.num_worker_nodes *
                          std::clamp(cc.mr_slot_availability, 0.0, 1.0)));

  // Number of map tasks: one per HDFS block, but the compiler raises the
  // split size so tasks do not outnumber a useful multiple of the
  // available slots (minimum task size based on virtual cores).
  int64_t input = std::max<int64_t>(job.map_input_bytes, 1);
  int64_t split = std::max(
      cc.hdfs_block_size,
      static_cast<int64_t>(input / (2LL * total_slots) + 1));
  int num_map = static_cast<int>((input + split - 1) / split);
  num_map = std::max(num_map, 1);
  out.num_map_tasks = num_map;
  out.map_waves = (num_map + total_slots - 1) / total_slots;

  // Per-task times; node disk bandwidth is shared by concurrent tasks,
  // and on a loaded cluster the co-tenants' IO takes its share too.
  double availability = std::clamp(cc.mr_slot_availability, 0.01, 1.0);
  int concurrent_per_node = std::min(
      slots_per_node,
      std::max(1, (num_map + cc.num_worker_nodes - 1) /
                      cc.num_worker_nodes));
  double task_read_bps =
      cc.node_disk_read_bps() * availability / concurrent_per_node;
  double task_write_bps =
      cc.node_disk_write_bps() * availability / concurrent_per_node;

  double split_bytes = static_cast<double>(input) / num_map;
  double map_read = split_bytes / task_read_bps;
  double broadcast_read =
      static_cast<double>(job.broadcast_bytes) / task_read_bps;
  double map_compute = (job.map_flops / num_map) /
                       (cc.peak_gflops * 1e9 * exec::kComputeEfficiency);
  double map_write;
  if (!job.has_shuffle) {
    map_write = (static_cast<double>(job.output_bytes) / num_map) /
                task_write_bps;
  } else {
    map_write = (static_cast<double>(job.shuffle_bytes) / num_map) /
                task_write_bps;
  }
  double per_task = map_read + broadcast_read + map_compute + map_write;
  // Second-order effect: undersized task memory relative to the split
  // and broadcast working set causes spilling / cache trashing.
  if (model_trashing) {
    int64_t budget = ClusterConfig::BudgetForHeap(mr_heap);
    int64_t working_set =
        static_cast<int64_t>(split_bytes) + job.broadcast_bytes;
    if (budget < 3 * working_set) {
      per_task *= 1.7;
      out.trashing = true;
    }
  }
  out.map_phase = out.map_waves * (cc.mr_task_latency + per_task);
  out.total = cc.mr_job_latency + out.map_phase;

  if (job.has_shuffle) {
    double net_bps =
        cc.network_mbps * 1e6 * cc.num_worker_nodes * availability;
    out.shuffle = static_cast<double>(job.shuffle_bytes) / net_bps;
    int num_red = std::max(1, cc.num_reducers);
    int red_per_node = std::max(1, num_red / cc.num_worker_nodes);
    double red_read = (static_cast<double>(job.shuffle_bytes) / num_red) /
                      (cc.node_disk_read_bps() / red_per_node);
    double red_compute = (job.reduce_flops / num_red) /
                         (cc.peak_gflops * 1e9 * exec::kComputeEfficiency);
    double red_write = (static_cast<double>(job.output_bytes) / num_red) /
                       (cc.node_disk_write_bps() / red_per_node);
    out.reduce_phase =
        cc.mr_task_latency + red_read + red_compute + red_write;
    out.total += out.shuffle + out.reduce_phase;
  }
  return out;
}

/// One costing walk over a runtime program. Not reusable.
class CostWalk {
 public:
  CostWalk(const CostModel& model, const ClusterConfig& cc,
           const RuntimeProgram& program)
      : model_(model), cc_(cc), program_(program) {}

  double CostBlocks(const std::vector<RuntimeBlock>& blocks,
                    VarStateMap* states) {
    double total = 0.0;
    for (const auto& b : blocks) total += CostBlock(b, states);
    return total;
  }

  double CostBlock(const RuntimeBlock& block, VarStateMap* states) {
    const BlockIR* ir = block.ir;
    switch (block.block->kind()) {
      case BlockKind::kGeneric:
        return CostInstrs(block, states);
      case BlockKind::kIf: {
        double pred = CostInstrs(block, states);
        if (ir != nullptr && ir->taken_branch == 0) {
          return pred + CostBlocks(block.body, states);
        }
        if (ir != nullptr && ir->taken_branch == 1) {
          return pred + CostBlocks(block.else_body, states);
        }
        // Weighted sum of both branches on separate state copies; merge
        // pessimistically (a variable is in memory only if both agree).
        VarStateMap then_states = *states;
        VarStateMap else_states = *states;
        double t = CostBlocks(block.body, &then_states);
        double e = CostBlocks(block.else_body, &else_states);
        *states = MergeStates(then_states, else_states);
        return pred + CostModel::kBranchWeight * t +
               (1.0 - CostModel::kBranchWeight) * e;
      }
      case BlockKind::kWhile:
      case BlockKind::kFor: {
        double iters = ir != nullptr ? ir->estimated_iterations
                                     : kDefaultLoopIterations;
        iters = std::max(1.0, iters);
        // First (cold) iteration reads inputs from HDFS; subsequent
        // iterations run against warm variable state.
        double pred = CostInstrs(block, states);
        double first = CostBlocks(block.body, states);
        double warm_pred = CostInstrs(block, states);
        double steady = iters > 1.0 ? CostBlocks(block.body, states) : 0.0;
        return pred + first +
               (iters - 1.0) * (warm_pred + steady);
      }
    }
    return 0.0;
  }

 private:
  double CostInstrs(const RuntimeBlock& block, VarStateMap* states) {
    double total = 0.0;
    // Per-DAG temporary state: which MR/CP intermediates already read
    // into CP memory during this DAG evaluation.
    std::unordered_set<const Hop*> loaded;
    for (const auto& instr : block.instrs) {
      if (instr.kind == RuntimeInstr::Kind::kCp) {
        total += CostCpInstr(*instr.hop, states, &loaded);
      } else {
        total += CostMrJob(instr.job, block, states);
        for (const Hop* op : instr.job.map_ops) mr_resident_.insert(op);
        for (const Hop* op : instr.job.reduce_ops) mr_resident_.insert(op);
      }
    }
    return total;
  }

  double CostCpInstr(const Hop& hop, VarStateMap* states,
                     std::unordered_set<const Hop*>* loaded) {
    double time = 0.0;
    // Input IO: charge HDFS reads for non-resident inputs.
    for (const auto& in : hop.inputs()) {
      time += ChargeInputRead(*in, states, loaded);
    }
    // Compute: single-threaded CP by default; with multiple CP vcores
    // the speedup is the raw core scaling damped by the operator
    // class's parallel fraction (Amdahl), read from the same registry
    // the tiled kernels tile by — a serial solve() gains nothing from
    // extra cores while a matmult gains almost linearly. With a
    // calibration attached, the static peak * efficiency rate is
    // replaced by the operator's measured effective FLOP/s from a
    // profiled run (obs::CalibratedOpRegistry).
    const exec::OpClass cls = exec::OpClassForHop(hop);
    double flops_per_second =
        cc_.peak_gflops * 1e9 * exec::kComputeEfficiency;
    if (model_.calibration_ != nullptr) {
      flops_per_second = model_.calibration_->FlopsPerSecond(
          exec::Profile(cls).name, flops_per_second);
    }
    time += hop.ComputeFlops() /
            (flops_per_second *
             exec::OpSpeedup(cls, program_.resources.CpComputeSpeedup()));
    // State transitions.
    switch (hop.kind()) {
      case HopKind::kTransientWrite: {
        VarState st;
        st.mem_bytes = HopMemBytes(hop);
        st.disk_bytes = HopDiskBytes(hop);
        const Hop* in = hop.input(0);
        bool from_mr = in->exec_type() == ExecType::kMR && IsMatrixOp(*in);
        st.in_memory = !from_mr;
        st.dirty = !from_mr;
        if (in->kind() == HopKind::kPersistentRead) {
          // `X = read(...)`: the variable aliases the cached file object
          // (one copy, clean w.r.t. HDFS) — avoid double accounting.
          states->erase("::file:" + in->name());
          st.dirty = false;
        }
        (*states)[hop.name()] = st;
        break;
      }
      case HopKind::kPersistentWrite: {
        const Hop* in = hop.input(0);
        bool from_mr = in->exec_type() == ExecType::kMR && IsMatrixOp(*in);
        if (!from_mr) {
          time += static_cast<double>(HopDiskBytes(hop)) /
                  model_.cp_write_bps_;
        }
        // MR outputs are already on HDFS (rename only).
        break;
      }
      case HopKind::kFunctionCall: {
        auto it = program_.functions.find(hop.function_name);
        if (it != program_.functions.end() &&
            !in_function_.count(hop.function_name)) {
          in_function_.insert(hop.function_name);
          time += CostBlocks(it->second, states);
          in_function_.erase(hop.function_name);
        }
        break;
      }
      default:
        break;
    }
    return time;
  }

  static bool IsMatrixOp(const Hop& h) {
    switch (h.kind()) {
      case HopKind::kLiteral:
      case HopKind::kTransientRead:
      case HopKind::kPersistentRead:
        return false;
      default:
        return h.is_matrix();
    }
  }

  /// Partial buffer-pool model: when the in-memory working set exceeds
  /// the CP budget, repeated accesses pay a proportional re-read (the
  /// paper's cost model considers evictions "only partially" — this is
  /// that partial consideration; the simulator models the real LRU pool).
  double EvictionPenalty(const VarStateMap& states,
                         const VarState& st) const {
    int64_t capacity = program_.resources.CpBudget();
    int64_t working_set = 0;
    for (const auto& [name, s] : states) {
      if (s.in_memory) working_set += s.mem_bytes;
    }
    if (working_set <= capacity || working_set == 0) return 0.0;
    double overflow_fraction =
        static_cast<double>(working_set - capacity) /
        static_cast<double>(working_set);
    return overflow_fraction * static_cast<double>(st.disk_bytes) /
           model_.cp_read_bps_;
  }

  double ChargeInputRead(const Hop& raw, VarStateMap* states,
                         std::unordered_set<const Hop*>* loaded) {
    // Fused transposes are never materialized: charge for the base data.
    const Hop* resolved = &raw;
    while (resolved->fused() && !resolved->inputs().empty()) {
      resolved = resolved->input(0);
    }
    const Hop& in = *resolved;
    switch (in.kind()) {
      case HopKind::kTransientRead: {
        VarState& st = (*states)[in.name()];
        if (st.mem_bytes == 0) {
          st.mem_bytes = HopMemBytes(in);
          st.disk_bytes = HopDiskBytes(in);
        }
        if (!st.in_memory) {
          st.in_memory = true;
          return static_cast<double>(st.disk_bytes) / model_.cp_read_bps_;
        }
        return EvictionPenalty(*states, st);
      }
      case HopKind::kPersistentRead: {
        VarState& st = (*states)["::file:" + in.name()];
        if (st.mem_bytes == 0) {
          st.mem_bytes = HopMemBytes(in);
          st.disk_bytes = HopDiskBytes(in);
        }
        if (!st.in_memory) {
          st.in_memory = true;
          return static_cast<double>(st.disk_bytes) / model_.cp_read_bps_;
        }
        return EvictionPenalty(*states, st);
      }
      default: {
        // Intermediate produced within this DAG: charge a read when it
        // was computed by an MR job (output on HDFS) and not yet loaded.
        if (in.exec_type() == ExecType::kMR && IsMatrixOp(in) &&
            mr_resident_.count(&in) && !loaded->count(&in)) {
          loaded->insert(&in);
          return static_cast<double>(HopDiskBytes(in)) /
                 model_.cp_read_bps_;
        }
        return 0.0;
      }
    }
  }

  double CostMrJob(const MRJobInstr& job, const RuntimeBlock& block,
                   VarStateMap* states) {
    double time = 0.0;
    // Export dirty in-memory inputs to HDFS.
    for (const auto& [name, bytes] : job.exported_inputs) {
      if (name.rfind("#tmp", 0) == 0) {
        time += static_cast<double>(bytes) / model_.cp_write_bps_;
        continue;
      }
      auto it = states->find(name);
      if (it == states->end() || (it->second.in_memory &&
                                  it->second.dirty)) {
        time += static_cast<double>(bytes) / model_.cp_write_bps_;
        if (it != states->end()) it->second.dirty = false;
      }
    }
    int64_t mr_heap =
        program_.resources.MrHeapForBlock(block.block->id());
    // The deterministic spill penalty for undersized task memory IS part
    // of the model (it drives the optimizer away from minimum-size task
    // containers, cf. Table 2); only buffer-pool eviction effects are
    // left to the simulator.
    MrJobTimeBreakdown bd = EstimateMrJobTime(cc_, job, mr_heap,
                                              /*model_trashing=*/true);
    time += bd.total;
    time += CostModel::ExpectedMrRetryOverhead(
        model_.expected_failure_rate_, bd, cc_);
    return time;
  }

  static VarStateMap MergeStates(const VarStateMap& a,
                                 const VarStateMap& b) {
    VarStateMap out = a;
    for (const auto& [name, sb] : b) {
      auto it = out.find(name);
      if (it == out.end()) {
        out[name] = sb;
      } else {
        it->second.in_memory = it->second.in_memory && sb.in_memory;
        it->second.dirty = it->second.dirty || sb.dirty;
      }
    }
    return out;
  }

  const CostModel& model_;
  const ClusterConfig& cc_;
  const RuntimeProgram& program_;
  std::unordered_set<const Hop*> mr_resident_;
  std::unordered_set<std::string> in_function_;
};

double CostModel::EstimateProgramCost(const RuntimeProgram& program) {
  ++invocations_;
  CostWalk walk(*this, cc_, program);
  VarStateMap states;
  double total = walk.CostBlocks(program.main, &states);
  if (expected_failure_rate_ > 0.0) {
    // AM blast radius: expected AM failures over the run (rate x time)
    // each pay a container grant plus re-reading a working set that
    // scales with the CP budget — penalizing oversized CP containers.
    double recovery =
        cc_.container_alloc_latency +
        static_cast<double>(program.resources.CpBudget()) / cp_read_bps_;
    total += expected_failure_rate_ * total * recovery;
  }
  return total;
}

double CostModel::EstimateBlockCost(const RuntimeBlock& block,
                                    const RuntimeProgram& program) {
  ++invocations_;
  CostWalk walk(*this, cc_, program);
  VarStateMap states;
  return walk.CostBlock(block, &states);
}

}  // namespace relm

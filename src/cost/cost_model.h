#ifndef RELM_COST_COST_MODEL_H_
#define RELM_COST_COST_MODEL_H_

#include <cstdint>
#include <map>
#include <string>

#include "lops/runtime_program.h"
#include "obs/profile.h"
#include "yarn/cluster_config.h"

namespace relm {

/// Tracked state of a live variable during plan costing: where the data
/// currently lives and whether the in-memory copy differs from HDFS.
/// Mirrors the paper's "track sizes and states of live variables".
struct VarState {
  int64_t mem_bytes = 0;
  int64_t disk_bytes = 0;
  bool in_memory = false;
  bool dirty = false;  // in-memory copy not yet exported to HDFS
};

using VarStateMap = std::map<std::string, VarState>;

/// Timing breakdown of one MR job under a given MR task heap. Shared by
/// the analytic cost model and the cluster simulator; the simulator
/// additionally enables the second-order "trashing" penalty for
/// undersized task memory that the cost model deliberately ignores.
struct MrJobTimeBreakdown {
  double total = 0.0;
  double map_phase = 0.0;
  double shuffle = 0.0;
  double reduce_phase = 0.0;
  int num_map_tasks = 0;
  int map_waves = 0;
  bool trashing = false;
};

MrJobTimeBreakdown EstimateMrJobTime(const ClusterConfig& cc,
                                     const MRJobInstr& job, int64_t mr_heap,
                                     bool model_trashing);

/// White-box analytic cost model over generated runtime plans. Estimates
/// execution time (seconds) by scanning the plan in execution order,
/// tracking variable states, and charging IO, compute, and latency:
///  - CP instructions: HDFS read on first use of non-resident inputs plus
///    single-threaded compute time;
///  - MR jobs: job/task latencies, dirty-variable export, map read /
///    compute / write, shuffle, and reduce phases, divided by the degree
///    of parallelism implied by the CP/MR resources;
///  - loops scale by the estimated iteration count with a separately
///    costed first (cold) iteration; branches take the weighted sum.
///
/// Deliberately ignores buffer-pool evictions and cache effects (the
/// cluster simulator models those), which reproduces the paper's noted
/// sources of suboptimality.
class CostModel {
 public:
  /// `expected_failure_rate` (failures per busy container-second, 0
  /// disables) makes the model price expected-retry overhead: large MR
  /// tasks lose more work per failure and a large CP container costs
  /// more to restart, so under failures the optimizer is pushed toward
  /// many small containers over few large ones (smaller blast radius).
  explicit CostModel(const ClusterConfig& cc,
                     double expected_failure_rate = 0.0);

  /// Expected re-execution overhead of one MR job under a per-busy-
  /// second failure rate: expected failures (rate x total busy task
  /// seconds) times the per-failure loss (half an average task attempt
  /// plus relaunch latency), serialized over the job's task slots.
  static double ExpectedMrRetryOverhead(double rate,
                                        const MrJobTimeBreakdown& bd,
                                        const ClusterConfig& cc);

  /// Estimated end-to-end execution time of a runtime program in seconds.
  /// Counts as one cost-model invocation.
  double EstimateProgramCost(const RuntimeProgram& program);

  /// Estimated time of a single block subtree (partial runtime plan),
  /// starting from empty variable state. Counts as one invocation.
  double EstimateBlockCost(const RuntimeBlock& block,
                           const RuntimeProgram& program);

  /// Number of cost-model invocations so far (Table 3's "# Cost.").
  int64_t num_invocations() const { return invocations_; }
  void ResetCounters() { invocations_ = 0; }

  /// Optional measured-throughput calibration (not owned; must outlive
  /// the model). When set, CP compute charges use the profiled
  /// effective FLOP/s of each operator class instead of the static
  /// peak_gflops * efficiency constant; operators the calibration never
  /// saw keep the static rate. The Amdahl multi-core speedup still
  /// applies on top (profiles are recorded per kernel invocation, not
  /// per core count).
  void set_calibration(const obs::CalibratedOpRegistry* calibration) {
    calibration_ = calibration;
  }
  const obs::CalibratedOpRegistry* calibration() const {
    return calibration_;
  }

  /// Branch probability used for unknown if-predicates.
  static constexpr double kBranchWeight = 0.5;

 private:
  friend class CostWalk;
  ClusterConfig cc_;
  double expected_failure_rate_ = 0.0;
  int64_t invocations_ = 0;
  const obs::CalibratedOpRegistry* calibration_ = nullptr;

  // Single-process (control program) HDFS bandwidths in bytes/second.
  double cp_read_bps_;
  double cp_write_bps_;
};

}  // namespace relm

#endif  // RELM_COST_COST_MODEL_H_

#ifndef RELM_COMMON_STATUS_H_
#define RELM_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace relm {

/// Error categories used across the ReLM library. Mirrors the coarse error
/// classes a declarative ML compiler needs: user-facing script errors,
/// compiler-internal invariant violations, and resource/runtime failures.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kValidationError,
  kCompileError,
  kRuntimeError,
  kResourceError,
  kNotFound,
  kUnsupported,
  kInternal,
  // Failure-semantics codes for real execution (DESIGN.md §12): a
  // transient fault worth retrying, load shed by admission control, a
  // per-job deadline miss, and caller-requested cancellation.
  kUnavailable,
  kOverloaded,
  kDeadlineExceeded,
  kCancelled,
};

/// Returns a short human-readable name for a status code ("ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// Lightweight status object used instead of exceptions throughout the
/// library (public APIs must not throw). An OK status carries no message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory for an OK status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ValidationError(std::string msg) {
    return Status(StatusCode::kValidationError, std::move(msg));
  }
  static Status CompileError(std::string msg) {
    return Status(StatusCode::kCompileError, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status ResourceError(std::string msg) {
    return Status(StatusCode::kResourceError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error result type. Holds either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (the error path).
  Result(Status status) : value_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(value_); }

  /// Returns the error status; OK() when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(value_);
  }

  /// Access the held value. Requires ok().
  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

/// Propagates a non-OK status from an expression to the caller.
#define RELM_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::relm::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Evaluates a Result expression, assigning the value to `lhs` on success
/// and returning the error status otherwise.
#define RELM_ASSIGN_OR_RETURN(lhs, expr)          \
  auto RELM_CONCAT_(_res, __LINE__) = (expr);     \
  if (!RELM_CONCAT_(_res, __LINE__).ok())         \
    return RELM_CONCAT_(_res, __LINE__).status(); \
  lhs = std::move(RELM_CONCAT_(_res, __LINE__)).value();

#define RELM_CONCAT_INNER_(a, b) a##b
#define RELM_CONCAT_(a, b) RELM_CONCAT_INNER_(a, b)

}  // namespace relm

#endif  // RELM_COMMON_STATUS_H_

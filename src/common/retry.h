#ifndef RELM_COMMON_RETRY_H_
#define RELM_COMMON_RETRY_H_

// Shared retry/backoff/deadline policy. One exponential-backoff idiom
// for the whole system: the cluster simulator's task relaunch delay
// (FaultPlan::retry_backoff_seconds, attempt k waits base * 2^(k-1))
// and the serving layer's job-level retries both compute their waits
// through ExponentialBackoffSeconds, and the classification of which
// errors are worth retrying lives here (IsRetryable) rather than being
// re-derived per layer.

#include <algorithm>

#include "common/random.h"
#include "common/status.h"

namespace relm {

/// True for errors a fresh attempt can plausibly clear: transient
/// faults (injected chaos, lost spill blocks, I/O hiccups) surface as
/// kUnavailable. Everything else — bad scripts, invariant violations,
/// deadline misses, cancellations, shed load — fails the same way on
/// every attempt and must not be retried.
inline bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

/// attempt k (1-based) backs off base * multiplier^(k-1), capped. The
/// simulator's historical 2^(k-1) schedule is the multiplier=2 case.
inline double ExponentialBackoffSeconds(double base_seconds, int attempt,
                                        double multiplier = 2.0,
                                        double cap_seconds = 0.0) {
  double backoff = base_seconds;
  for (int k = 1; k < attempt; ++k) {
    backoff *= multiplier;
    if (cap_seconds > 0.0 && backoff >= cap_seconds) return cap_seconds;
  }
  if (cap_seconds > 0.0) backoff = std::min(backoff, cap_seconds);
  return backoff;
}

/// Retry policy for transiently-failed work: capped exponential backoff
/// with seeded jitter (so a burst of jobs failed by one fault does not
/// relaunch as a synchronized thundering herd).
struct RetryPolicy {
  /// Total attempts including the first (1 = no retries).
  int max_attempts = 3;
  /// Backoff before retry k (k >= 1): initial * multiplier^(k-1),
  /// capped at max_backoff_seconds, then jittered.
  double initial_backoff_seconds = 0.02;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 1.0;
  /// Uniform multiplicative jitter in [1-f, 1+f]; f in [0, 1).
  double jitter_fraction = 0.2;

  Status Validate() const {
    if (max_attempts < 1) {
      return Status::InvalidArgument("RetryPolicy: max_attempts must be >= 1");
    }
    if (initial_backoff_seconds < 0.0) {
      return Status::InvalidArgument(
          "RetryPolicy: initial_backoff_seconds must be >= 0");
    }
    if (backoff_multiplier < 1.0) {
      return Status::InvalidArgument(
          "RetryPolicy: backoff_multiplier must be >= 1");
    }
    if (max_backoff_seconds < 0.0) {
      return Status::InvalidArgument(
          "RetryPolicy: max_backoff_seconds must be >= 0");
    }
    if (jitter_fraction < 0.0 || jitter_fraction >= 1.0) {
      return Status::InvalidArgument(
          "RetryPolicy: jitter_fraction must be in [0, 1)");
    }
    return Status::OK();
  }

  /// Jittered wait before retry number `attempt` (1-based: the backoff
  /// taken after the attempt-th failure). `rng` supplies the jitter
  /// draw; pass a per-job seeded Random for reproducible schedules.
  double BackoffSeconds(int attempt, Random* rng) const {
    double backoff = ExponentialBackoffSeconds(
        initial_backoff_seconds, attempt, backoff_multiplier,
        max_backoff_seconds);
    if (rng != nullptr && jitter_fraction > 0.0) {
      backoff *= rng->Noise(jitter_fraction);
    }
    return backoff;
  }

  // ---- chainable named setters ----
  RetryPolicy& WithMaxAttempts(int attempts) {
    max_attempts = attempts;
    return *this;
  }
  RetryPolicy& WithInitialBackoffSeconds(double seconds) {
    initial_backoff_seconds = seconds;
    return *this;
  }
  RetryPolicy& WithBackoffMultiplier(double multiplier) {
    backoff_multiplier = multiplier;
    return *this;
  }
  RetryPolicy& WithMaxBackoffSeconds(double seconds) {
    max_backoff_seconds = seconds;
    return *this;
  }
  RetryPolicy& WithJitterFraction(double fraction) {
    jitter_fraction = fraction;
    return *this;
  }
};

}  // namespace relm

#endif  // RELM_COMMON_RETRY_H_

#ifndef RELM_COMMON_THREAD_ANNOTATIONS_H_
#define RELM_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety analysis annotations (-Wthread-safety).
//
// Under Clang the macros attach capability attributes that let the
// compiler prove lock discipline statically: which mutex guards which
// field, which functions must (or must not) be called with a lock
// held. Under other compilers — the pinned toolchain is GCC — every
// macro expands to nothing, so annotated headers stay portable and the
// annotations are pure documentation until a Clang build runs them.
//
// Usage mirrors the Abseil convention:
//
//   std::mutex mu_;
//   int64_t hits_ RELM_GUARDED_BY(mu_) = 0;
//   int NextJobLocked() RELM_REQUIRES(mu_);

#if defined(__clang__) && defined(__has_attribute)
#define RELM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RELM_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Field is protected by the given mutex.
#define RELM_GUARDED_BY(x) RELM_THREAD_ANNOTATION(guarded_by(x))

/// Pointee (not the pointer itself) is protected by the given mutex.
#define RELM_PT_GUARDED_BY(x) RELM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function must be called with the given mutex(es) held.
#define RELM_REQUIRES(...) \
  RELM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must be called with the given mutex(es) NOT held.
#define RELM_EXCLUDES(...) \
  RELM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the mutex and does not release it before return.
#define RELM_ACQUIRE(...) \
  RELM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a mutex acquired earlier.
#define RELM_RELEASE(...) \
  RELM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Escape hatch: function body is trusted, analysis skips it.
#define RELM_NO_THREAD_SAFETY_ANALYSIS \
  RELM_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // RELM_COMMON_THREAD_ANNOTATIONS_H_

#ifndef RELM_COMMON_STRING_UTIL_H_
#define RELM_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace relm {

/// Splits `s` on the single-character delimiter, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// Joins the elements with the given separator.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// True if `s` begins with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(const std::string& s, const std::string& suffix);

/// Formats a double with `digits` significant decimal places, trimming
/// trailing zeros ("1.5", "0.01", "3").
std::string FormatDouble(double v, int digits = 3);

}  // namespace relm

#endif  // RELM_COMMON_STRING_UTIL_H_

#ifndef RELM_COMMON_BYTES_H_
#define RELM_COMMON_BYTES_H_

#include <cstdint>
#include <string>

namespace relm {

/// Byte-size constants. The paper quotes container and heap sizes in
/// binary units (512 MB, 4.4 GB, 53.3 GB, ...), so we use 1024-based units.
inline constexpr int64_t kKB = 1024;
inline constexpr int64_t kMB = 1024 * kKB;
inline constexpr int64_t kGB = 1024 * kMB;
inline constexpr int64_t kTB = 1024 * kGB;

/// Converts a fractional GB quantity (e.g. 53.3) to bytes.
constexpr int64_t GigaBytes(double gb) {
  return static_cast<int64_t>(gb * static_cast<double>(kGB));
}

/// Converts a fractional MB quantity to bytes.
constexpr int64_t MegaBytes(double mb) {
  return static_cast<int64_t>(mb * static_cast<double>(kMB));
}

/// Renders a byte count as a compact human-readable string ("8GB", "1.5MB").
std::string FormatBytes(int64_t bytes);

}  // namespace relm

#endif  // RELM_COMMON_BYTES_H_

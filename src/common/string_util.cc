#include "common/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/bytes.h"

namespace relm {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string FormatBytes(int64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (std::fabs(v) >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  return FormatDouble(v, 2) + units[u];
}

}  // namespace relm

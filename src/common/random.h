#ifndef RELM_COMMON_RANDOM_H_
#define RELM_COMMON_RANDOM_H_

#include <cstdint>

namespace relm {

/// Deterministic xorshift128+ pseudo-random generator. Used for synthetic
/// data generation and for the cluster simulator's reproducible noise;
/// the same seed always yields the same experiment output.
class Random {
 public:
  explicit Random(uint64_t seed = 42) {
    // SplitMix64 seeding to decorrelate nearby seeds.
    s0_ = SplitMix(&seed);
    s1_ = SplitMix(&seed);
  }

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n).
  uint64_t NextBelow(uint64_t n) { return n == 0 ? 0 : NextU64() % n; }

  /// Multiplicative noise factor in [1-eps, 1+eps]; eps in [0,1).
  double Noise(double eps) { return 1.0 + Uniform(-eps, eps); }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace relm

#endif  // RELM_COMMON_RANDOM_H_

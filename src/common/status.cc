#include "common/status.h"

namespace relm {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kValidationError:
      return "ValidationError";
    case StatusCode::kCompileError:
      return "CompileError";
    case StatusCode::kRuntimeError:
      return "RuntimeError";
    case StatusCode::kResourceError:
      return "ResourceError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace relm

#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace relm {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << "] ";
  (void)file;
  (void)line;
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= static_cast<int>(GetLogLevel())) {
    std::cerr << stream_.str() << std::endl;
  }
}

FatalMessage::FatalMessage(const char* file, int line) {
  stream_ << "[FATAL] " << file << ":" << line << " ";
}

FatalMessage::~FatalMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal_logging
}  // namespace relm

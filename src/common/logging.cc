#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace relm {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

std::mutex g_sink_mu;
LogSink g_sink;  // null => stderr

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void Emit(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_sink) {
    g_sink(level, message);
  } else {
    std::cerr << message << std::endl;
  }
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = std::move(sink);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << "] ";
  (void)file;
  (void)line;
}

LogMessage::~LogMessage() {
  // The macros only construct messages for enabled levels; re-checking
  // here keeps direct (non-macro) construction safe too.
  if (LogLevelEnabled(level_)) Emit(level_, stream_.str());
}

FatalMessage::FatalMessage(const char* file, int line) {
  stream_ << "[FATAL] " << file << ":" << line << " ";
}

FatalMessage::~FatalMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal_logging
}  // namespace relm

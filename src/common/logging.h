#ifndef RELM_COMMON_LOGGING_H_
#define RELM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace relm {

/// Log severities in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level below which log statements are discarded.
/// Defaults to kWarn so library consumers see a quiet stdout by default.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits the accumulated message on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Sink that swallows everything; used for disabled log levels.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define RELM_LOG(level)                                      \
  (static_cast<int>(::relm::LogLevel::k##level) <            \
   static_cast<int>(::relm::GetLogLevel()))                  \
      ? (void)0                                              \
      : (void)::relm::internal_logging::LogMessage(          \
            ::relm::LogLevel::k##level, __FILE__, __LINE__)

/// Stream-style logging: RELM_DEBUG() << "x=" << x;
#define RELM_DEBUG()                                                       \
  ::relm::internal_logging::LogMessage(::relm::LogLevel::kDebug, __FILE__, \
                                       __LINE__)
#define RELM_INFO()                                                       \
  ::relm::internal_logging::LogMessage(::relm::LogLevel::kInfo, __FILE__, \
                                       __LINE__)
#define RELM_WARN()                                                       \
  ::relm::internal_logging::LogMessage(::relm::LogLevel::kWarn, __FILE__, \
                                       __LINE__)
#define RELM_ERROR()                                                       \
  ::relm::internal_logging::LogMessage(::relm::LogLevel::kError, __FILE__, \
                                       __LINE__)

/// Fatal invariant check. Aborts with a message when `cond` is false; used
/// for programming errors only, never for user input.
#define RELM_CHECK(cond)                                                    \
  if (!(cond))                                                              \
  ::relm::internal_logging::FatalMessage(__FILE__, __LINE__).stream()       \
      << "Check failed: " #cond " "

namespace internal_logging {

/// Aborts the process after emitting the accumulated message.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line);
  [[noreturn]] ~FatalMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace relm

#endif  // RELM_COMMON_LOGGING_H_

#ifndef RELM_COMMON_LOGGING_H_
#define RELM_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace relm {

/// Log severities in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level below which log statements are discarded.
/// Defaults to kWarn so library consumers see a quiet stdout by default.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// True when statements at `level` are currently emitted. All severity
/// macros consult this before constructing their message, so disabled
/// statements never pay formatting costs.
inline bool LogLevelEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(GetLogLevel());
}

/// Redirects emitted log lines (already filtered by level) away from
/// stderr, e.g. into a test capture buffer. Passing nullptr restores
/// the default stderr sink. The sink receives the formatted message
/// without a trailing newline.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void SetLogSink(LogSink sink);

namespace internal_logging {

/// Stream-style log sink; emits the accumulated message on destruction.
/// Only constructed for enabled levels (the macros check first).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a LogMessage expression inside the short-circuit macros.
/// operator& binds tighter than ?: but looser than <<, so the whole
/// streaming chain evaluates (or is skipped) as one expression.
struct Voidify {
  void operator&(const LogMessage&) const {}
};

}  // namespace internal_logging

/// Statement-style logging with a named level:
///   RELM_LOG(Warn) << "x=" << x;
/// The streaming operands are not evaluated when the level is disabled.
#define RELM_LOG_AT_LEVEL(level)                                   \
  !::relm::LogLevelEnabled(level)                                  \
      ? (void)0                                                    \
      : ::relm::internal_logging::Voidify() &                      \
            ::relm::internal_logging::LogMessage(level, __FILE__,  \
                                                 __LINE__)

#define RELM_LOG(level) RELM_LOG_AT_LEVEL(::relm::LogLevel::k##level)

/// Stream-style logging: RELM_DEBUG() << "x=" << x;
/// These are the same macro family as RELM_LOG — every severity macro
/// respects the runtime level and skips message formatting when
/// disabled.
#define RELM_DEBUG() RELM_LOG_AT_LEVEL(::relm::LogLevel::kDebug)
#define RELM_INFO() RELM_LOG_AT_LEVEL(::relm::LogLevel::kInfo)
#define RELM_WARN() RELM_LOG_AT_LEVEL(::relm::LogLevel::kWarn)
#define RELM_ERROR() RELM_LOG_AT_LEVEL(::relm::LogLevel::kError)

/// Fatal invariant check. Aborts with a message when `cond` is false; used
/// for programming errors only, never for user input.
#define RELM_CHECK(cond)                                                    \
  if (!(cond))                                                              \
  ::relm::internal_logging::FatalMessage(__FILE__, __LINE__).stream()       \
      << "Check failed: " #cond " "

namespace internal_logging {

/// Aborts the process after emitting the accumulated message.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line);
  [[noreturn]] ~FatalMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace relm

#endif  // RELM_COMMON_LOGGING_H_

#ifndef RELM_OBS_PROFILE_H_
#define RELM_OBS_PROFILE_H_

// Operator profile store: measured per-operator execution statistics
// (cells, bytes, estimated flops, wall seconds) aggregated by operator
// name and shape bucket (log2 of output cells). The engine records one
// sample per pure-kernel evaluation when profiling is enabled; the
// store stays below the exec layer (strings only, no HOP types) so
// relm_obs keeps depending on relm_common alone.
//
// CalibratedOpRegistry is the cost-model-facing view: one effective
// FLOP/s rate per operator name, built from a profiled run. The cost
// model can read compute charges through it instead of the static
// peak_gflops * efficiency constant — closing the loop between what
// the optimizer assumes and what the kernels measurably do
// (ROADMAP item 5, first half).

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace relm {
namespace obs {

/// Aggregated measurements of one (operator, shape bucket) cell.
struct OpProfileStats {
  int64_t samples = 0;
  int64_t cells = 0;    // output cells across samples
  int64_t bytes = 0;    // input + output bytes processed
  double seconds = 0.0; // wall time across samples
  double flops = 0.0;   // cost-model flops estimate across samples

  /// Effective measured throughputs (0 when no time was accumulated).
  double FlopsPerSecond() const { return seconds > 0 ? flops / seconds : 0; }
  double BytesPerSecond() const {
    return seconds > 0 ? static_cast<double>(bytes) / seconds : 0;
  }
  double CellsPerSecond() const {
    return seconds > 0 ? static_cast<double>(cells) / seconds : 0;
  }
};

/// Process-wide profile store. Record() is called from engine worker
/// threads (mutex-protected map; the atomic enabled() gate keeps the
/// disabled path to one relaxed load).
class OpProfileStore {
 public:
  static OpProfileStore& Global();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Shape bucket of an output size: floor(log2(cells)), 0 for <= 1
  /// cell. Buckets keep a 100x100 matmult from averaging into a 10x10.
  static int ShapeBucket(int64_t cells);

  void Record(const std::string& op, int64_t cells, int64_t bytes,
              double flops, double seconds);

  struct Key {
    std::string op;
    int shape_bucket = 0;
    bool operator<(const Key& other) const {
      if (op != other.op) return op < other.op;
      return shape_bucket < other.shape_bucket;
    }
  };

  std::map<Key, OpProfileStats> Snapshot() const;
  int64_t total_samples() const;

  /// JSON array of {op, shape_bucket, samples, cells, bytes, seconds,
  /// flops, flops_per_second, bytes_per_second} objects.
  std::string ToJson() const;
  /// Same objects, one JSONL line per (op, shape bucket) cell.
  std::string ToJsonl() const;
  Status WriteJsonl(const std::string& path) const;

  void Reset();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<Key, OpProfileStats> stats_;
};

/// Measured effective FLOP/s per operator name, aggregated across shape
/// buckets. Plain value type: build once from a profiled run, then hand
/// a pointer to OptimizerOptions/CostModel (read-only thereafter).
class CalibratedOpRegistry {
 public:
  CalibratedOpRegistry() = default;

  /// Aggregates the store per operator name; cells with fewer than
  /// `min_samples` measurements are skipped (one noisy sample must not
  /// steer the optimizer). Operators whose samples carry no flops or no
  /// time are skipped too.
  static CalibratedOpRegistry FromStore(const OpProfileStore& store,
                                        int64_t min_samples = 1);

  /// Measured rate for `op`, or `fallback` when never profiled.
  double FlopsPerSecond(const std::string& op, double fallback) const;
  bool has(const std::string& op) const { return rates_.count(op) != 0; }
  size_t size() const { return rates_.size(); }
  void Set(const std::string& op, double flops_per_second) {
    rates_[op] = flops_per_second;
  }

  /// Order-independent hash of the calibration contents, folded into
  /// the what-if plan-cache context hash so calibrated and static
  /// costings never share cache entries.
  uint64_t Fingerprint() const;

  std::string ToJson() const;

 private:
  std::map<std::string, double> rates_;
};

}  // namespace obs
}  // namespace relm

#endif  // RELM_OBS_PROFILE_H_

#ifndef RELM_OBS_TRACE_H_
#define RELM_OBS_TRACE_H_

// Span-based tracer with RAII scoped spans, nested spans across
// threads, and a Chrome trace-event JSON exporter
// (chrome://tracing / https://ui.perfetto.dev loadable).
//
// Two timelines are emitted as separate "processes":
//   pid 1 "wall clock"     — real time spent in ReLM itself (optimizer
//                            enumeration, interpreter, compilation).
//   pid 2 "simulated time" — the cluster simulator's simulated seconds
//                            (MR jobs, recovery, re-optimization), so
//                            every simulated second is attributable.
//
// Cost model: with tracing disabled at runtime every instrumentation
// site is one relaxed atomic load + branch; with RELM_OBS_ENABLED=0 the
// macros compile to nothing.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

#ifndef RELM_OBS_ENABLED
#define RELM_OBS_ENABLED 1
#endif

namespace relm {
namespace obs {

/// One recorded trace event (complete span or instant).
struct TraceEvent {
  std::string name;
  /// Full span path from the thread's root span, '/'-joined (used by
  /// the flamegraph summary), e.g. "optimize.run/optimize.grid_point".
  std::string path;
  char phase = 'X';       // 'X' complete span, 'i' instant
  int pid = 1;            // 1 wall clock, 2 simulated time
  int tid = 0;
  double ts_us = 0.0;     // start, microseconds since trace epoch
  double dur_us = 0.0;    // span duration ('X' only)
  std::string args_json;  // JSON object body without braces, may be ""
};

class Tracer {
 public:
  static Tracer& Global();

  /// Runtime toggle. Enabling (re)starts the trace epoch when the
  /// buffer is empty.
  void SetEnabled(bool enabled);
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops all recorded events and restarts the trace epoch.
  void Clear();

  /// Microseconds since the trace epoch (wall clock).
  double NowUs() const;

  /// Small dense id for the calling thread, stable per thread.
  static int CurrentThreadId();

  void Record(TraceEvent ev);

  /// Wall-clock instant event at the current time.
  void RecordInstant(const std::string& name,
                     const std::string& args_json = "");

  /// Simulated-time span: `start_s`/`dur_s` are simulated seconds.
  void RecordSimSpan(const std::string& name, double start_s,
                     double dur_s, const std::string& args_json = "");

  /// Simulated-time instant event.
  void RecordSimInstant(const std::string& name, double at_s,
                        const std::string& args_json = "");

  std::vector<TraceEvent> Events() const;
  size_t NumEvents() const;

  /// Serializes the trace to Chrome trace-event JSON (object form). A
  /// non-null metrics snapshot is embedded under "relmMetrics" — the
  /// trace viewers ignore unknown keys, so one file carries both spans
  /// and the metrics snapshot.
  std::string ToChromeJson(const MetricsSnapshot* metrics = nullptr) const;

  /// Compact text flamegraph: one row per distinct span path with call
  /// count, total and self wall time, indented by nesting depth.
  std::string FlamegraphSummary() const;

  Status WriteChromeTrace(const std::string& path,
                          const MetricsSnapshot* metrics = nullptr) const;

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII span. Construction checks the runtime toggle; an inactive span
/// is a no-op. Use through RELM_TRACE_SPAN / RELM_TRACE_SPAN_ARGS.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);

  /// Variant with lazily built args: `args_fn` (returning the JSON
  /// object body, e.g. "\"cp_mb\":1024") only runs when tracing is on.
  template <typename F>
  ScopedSpan(const char* name, F&& args_fn) : ScopedSpan(name) {
    if (active_) args_ = args_fn();
  }

  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }
  void set_args(std::string args_json) { args_ = std::move(args_json); }

 private:
  bool active_ = false;
  std::string path_;
  std::string args_;
  double start_us_ = 0.0;
};

}  // namespace obs
}  // namespace relm

#define RELM_OBS_CONCAT_INNER_(a, b) a##b
#define RELM_OBS_CONCAT_(a, b) RELM_OBS_CONCAT_INNER_(a, b)

#if RELM_OBS_ENABLED

/// Opens a span covering the rest of the enclosing scope.
#define RELM_TRACE_SPAN(name) \
  ::relm::obs::ScopedSpan RELM_OBS_CONCAT_(relm_obs_span_, __COUNTER__)(name)

/// Span with lazily evaluated args: pass a lambda returning the JSON
/// object body, e.g. RELM_TRACE_SPAN_ARGS("x", [&] { return ...; });
#define RELM_TRACE_SPAN_ARGS(name, ...)                   \
  ::relm::obs::ScopedSpan RELM_OBS_CONCAT_(relm_obs_span_, \
                                           __COUNTER__)(name, __VA_ARGS__)

#define RELM_TRACE_INSTANT(name, args_json)                            \
  do {                                                                 \
    if (::relm::obs::Tracer::Global().enabled())                       \
      ::relm::obs::Tracer::Global().RecordInstant(name, args_json);    \
  } while (0)

#define RELM_TRACE_SIM_SPAN(name, start_s, dur_s, args_json)           \
  do {                                                                 \
    if (::relm::obs::Tracer::Global().enabled())                       \
      ::relm::obs::Tracer::Global().RecordSimSpan(name, start_s,       \
                                                  dur_s, args_json);   \
  } while (0)

#define RELM_TRACE_SIM_INSTANT(name, at_s, args_json)                  \
  do {                                                                 \
    if (::relm::obs::Tracer::Global().enabled())                       \
      ::relm::obs::Tracer::Global().RecordSimInstant(name, at_s,       \
                                                     args_json);       \
  } while (0)

#else  // !RELM_OBS_ENABLED

#define RELM_TRACE_SPAN(name) static_cast<void>(0)
#define RELM_TRACE_SPAN_ARGS(name, ...) static_cast<void>(0)
#define RELM_TRACE_INSTANT(name, args_json) static_cast<void>(0)
#define RELM_TRACE_SIM_SPAN(name, start_s, dur_s, args_json) \
  static_cast<void>(0)
#define RELM_TRACE_SIM_INSTANT(name, at_s, args_json) static_cast<void>(0)

#endif  // RELM_OBS_ENABLED

#endif  // RELM_OBS_TRACE_H_

#ifndef RELM_OBS_TELEMETRY_SINK_H_
#define RELM_OBS_TELEMETRY_SINK_H_

// Periodic JSONL telemetry export: one line per snapshot carrying the
// full metrics registry (counters, gauges, histograms with
// p50/p95/p99) and optionally the operator profile store. A background
// thread flushes every interval; Flush() is also callable directly for
// a one-shot dump (benches use it at exit). Offline consumers get an
// append-only file where each line is a self-contained JSON object —
// no state is needed to tail it.

#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"

namespace relm {
namespace obs {

class TelemetrySink {
 public:
  struct Options {
    std::string path;
    /// Snapshot cadence of the background thread.
    double interval_seconds = 5.0;
    /// Embed the OpProfileStore snapshot in each line.
    bool include_profiles = true;
  };

  explicit TelemetrySink(Options options);
  ~TelemetrySink();

  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  /// Opens the output file and starts the periodic thread. Idempotent;
  /// fails when the path cannot be opened.
  Status Start();

  /// Stops the thread (final snapshot included) and closes the file.
  /// Idempotent; the destructor calls it.
  void Stop();

  /// Appends one snapshot line immediately (opens the file on first
  /// use when Start() was never called). Thread-safe.
  Status Flush();

  int64_t lines_written() const;

 private:
  void Loop();
  Status EnsureOpenLocked();
  Status WriteSnapshotLocked();

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::ofstream out_;
  bool stop_ = false;
  bool started_ = false;
  int64_t seq_ = 0;
  std::thread thread_;
};

}  // namespace obs
}  // namespace relm

#endif  // RELM_OBS_TELEMETRY_SINK_H_

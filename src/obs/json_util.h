#ifndef RELM_OBS_JSON_UTIL_H_
#define RELM_OBS_JSON_UTIL_H_

// Minimal JSON emission helpers shared by the metrics and trace
// exporters. Emission only — ReLM never parses JSON.

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

namespace relm {
namespace obs {

/// Quotes and escapes a string for JSON.
inline std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

/// Formats a double as a JSON number (JSON has no inf/nan; they map to
/// string sentinels that Perfetto tolerates inside "args"). The result
/// always carries a decimal point or an exponent: a gauge holding 3.0
/// must not round-trip as the integer 3, or JSONL consumers that infer
/// types lose the counter/gauge distinction.
inline std::string JsonNumber(double v) {
  if (std::isnan(v)) return "\"nan\"";
  if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  std::string out = os.str();
  if (out.find_first_of(".eE") == std::string::npos) out += ".0";
  return out;
}

}  // namespace obs
}  // namespace relm

#endif  // RELM_OBS_JSON_UTIL_H_

#include "obs/scope.h"

#include <cstdio>
#include <sstream>

#include "obs/json_util.h"
#include "obs/metrics.h"

namespace relm {
namespace obs {

namespace {

/// The binding is per thread: a JobService worker binds its job's
/// context, pool threads executing that job's kernels stay unbound
/// (they are shared across jobs and cannot claim a single owner).
thread_local const TraceContext* t_trace_context = nullptr;

}  // namespace

std::string TraceContext::ToJsonArgs() const {
  char sig[32];
  std::snprintf(sig, sizeof(sig), "0x%016llx",
                static_cast<unsigned long long>(plan_signature));
  std::ostringstream os;
  os << "\"job_id\":" << job_id << ",\"tenant\":" << JsonQuote(tenant)
     << ",\"plan_sig\":\"" << sig << "\",\"attempt\":" << attempt;
  if (!sched_decision.empty()) {
    os << ",\"sched\":" << JsonQuote(sched_decision);
  }
  return os.str();
}

const TraceContext* CurrentTraceContext() { return t_trace_context; }

ScopedTraceContext::ScopedTraceContext(TraceContext ctx)
    : ctx_(std::move(ctx)), prev_(t_trace_context) {
  t_trace_context = &ctx_;
}

ScopedTraceContext::~ScopedTraceContext() { t_trace_context = prev_; }

void MetricScope::set_context(TraceContext ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_ = std::move(ctx);
}

void MetricScope::Add(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricScope::AddShared(const std::string& name, int64_t delta) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] += delta;
  }
  MetricsRegistry::Global().GetCounter(name)->Add(delta);
}

void MetricScope::Set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

int64_t MetricScope::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricScope::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

int64_t MetricScope::Snapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

std::string MetricScope::Snapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"trace\":{" << trace.ToJsonArgs() << "},\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) os << ",";
    first = false;
    os << JsonQuote(name) << ":" << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) os << ",";
    first = false;
    os << JsonQuote(name) << ":" << JsonNumber(v);
  }
  os << "}}";
  return os.str();
}

MetricScope::Snapshot MetricScope::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.trace = ctx_;
  snap.counters = counters_;
  snap.gauges = gauges_;
  return snap;
}

}  // namespace obs
}  // namespace relm

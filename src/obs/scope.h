#ifndef RELM_OBS_SCOPE_H_
#define RELM_OBS_SCOPE_H_

// Job-scoped observability: a TraceContext identifying one unit of
// attributable work (job id, tenant, plan signature, attempt) plus a
// MetricScope that layers per-job counter/gauge deltas over the
// process-global registry.
//
// The context is carried in a thread-local slot bound RAII-style by the
// layer that mints it (JobService around each job/attempt). Everything
// downstream on the same thread — spans, instants, fault events —
// reads the slot at record time, so the exec/obs hot paths need no
// extra parameters and pay nothing when no context is bound.
//
// Layering rule (DESIGN.md §13): code below the serve tier keeps
// writing the global registry through the lock-free RELM_* macros,
// untouched. The serve tier then attributes per-job deltas explicitly
// into a MetricScope — scope-only for metrics the lower layers already
// export globally (Add), scope + global for serve-tier metrics that
// exist only per job (AddShared). The scope is an overlay, never a
// replacement, so global totals stay exact and nothing is counted
// twice.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace relm {
namespace obs {

/// Identity of one attributable unit of work. A default-constructed
/// context (job_id 0) is "unbound" and never stamped onto events.
struct TraceContext {
  uint64_t job_id = 0;
  std::string tenant;
  /// Script signature of the plan the attempt ran (0 before compile).
  uint64_t plan_signature = 0;
  /// 1-based execution attempt; 0 for job-level (pre-attempt) work.
  int attempt = 0;
  /// Scheduler decision tag for the dispatch that started this job
  /// (sched::SchedDecision::reason, e.g. "rr" or
  /// "cost_aware:slack=1.2s"); empty when the work was never queued
  /// through a scheduler. Stamped onto trace events with the rest of
  /// the context so dispatch decisions are attributable per span.
  std::string sched_decision;

  bool valid() const { return job_id != 0; }

  /// JSON object body (no braces) for embedding into trace-event args,
  /// e.g. "job_id":7,"tenant":"alpha","plan_sig":"0xabc","attempt":2.
  std::string ToJsonArgs() const;
};

/// The context bound to the calling thread, nullptr when none.
const TraceContext* CurrentTraceContext();

/// RAII binder: stores a copy of `ctx` in the thread-local slot for the
/// enclosing scope, restoring the previous binding (if any) on exit, so
/// nested bindings (job -> attempt) override and unwind naturally.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext ctx_;
  const TraceContext* prev_;
};

/// Per-job metric overlay. Thread-safe; owned by the serve tier for the
/// lifetime of one job and exported as a Snapshot on the job outcome.
class MetricScope {
 public:
  MetricScope() = default;
  explicit MetricScope(TraceContext ctx) : ctx_(std::move(ctx)) {}

  const TraceContext& context() const { return ctx_; }
  void set_context(TraceContext ctx);

  /// Records a job-scoped counter delta only. Use for metrics the
  /// producing layer already exports to the global registry (e.g. the
  /// engine's exec.* counters) — forwarding again would double count.
  void Add(const std::string& name, int64_t delta);
  /// Records the delta job-scoped AND into the global registry counter
  /// of the same name. Use for serve-tier metrics that are produced
  /// per job and have no other global export path.
  void AddShared(const std::string& name, int64_t delta);
  /// Job-scoped gauge (last write wins).
  void Set(const std::string& name, double value);

  int64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;

  /// Plain-data copy of the scope, cheap to move onto a job outcome.
  struct Snapshot {
    TraceContext trace;
    std::map<std::string, int64_t> counters;
    std::map<std::string, double> gauges;

    int64_t counter(const std::string& name) const;
    std::string ToJson() const;
  };
  Snapshot TakeSnapshot() const;

 private:
  TraceContext ctx_;
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, double> gauges_;
};

}  // namespace obs
}  // namespace relm

#endif  // RELM_OBS_SCOPE_H_

#include "obs/telemetry_sink.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/profile.h"

namespace relm {
namespace obs {

TelemetrySink::TelemetrySink(Options options)
    : options_(std::move(options)) {}

TelemetrySink::~TelemetrySink() { Stop(); }

Status TelemetrySink::EnsureOpenLocked() {
  if (out_.is_open()) return Status::OK();
  out_.open(options_.path, std::ios::out | std::ios::app);
  if (!out_.good()) {
    return Status::NotFound("cannot open telemetry output file: " +
                            options_.path);
  }
  return Status::OK();
}

Status TelemetrySink::WriteSnapshotLocked() {
  RELM_RETURN_IF_ERROR(EnsureOpenLocked());
  out_ << "{\"seq\":" << seq_
       << ",\"metrics\":" << MetricsRegistry::Global().ToJson();
  if (options_.include_profiles) {
    out_ << ",\"profiles\":" << OpProfileStore::Global().ToJson();
  }
  out_ << "}\n";
  out_.flush();
  if (!out_.good()) {
    return Status::Internal("failed writing telemetry file: " +
                            options_.path);
  }
  ++seq_;
  return Status::OK();
}

Status TelemetrySink::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return Status::OK();
  RELM_RETURN_IF_ERROR(EnsureOpenLocked());
  stop_ = false;
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void TelemetrySink::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) {
      if (out_.is_open()) out_.close();
      return;
    }
    stop_ = true;
    to_join = std::move(thread_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
  std::lock_guard<std::mutex> lock(mu_);
  // Final snapshot so the file always ends with the state at Stop().
  static_cast<void>(WriteSnapshotLocked());
  out_.close();
  started_ = false;
}

Status TelemetrySink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return WriteSnapshotLocked();
}

int64_t TelemetrySink::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

void TelemetrySink::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    const auto interval = std::chrono::duration<double>(
        options_.interval_seconds > 0 ? options_.interval_seconds : 5.0);
    if (cv_.wait_for(lock, interval, [this] { return stop_; })) break;
    static_cast<void>(WriteSnapshotLocked());
  }
}

}  // namespace obs
}  // namespace relm

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "obs/json_util.h"

namespace relm {
namespace obs {

void Histogram::Observe(double v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

int Histogram::BucketIndex(double v) {
  if (!(v >= 1.0)) return 0;  // < 1, negatives, and NaN
  if (std::isinf(v)) return kNumBuckets - 1;
  // frexp gives exact power-of-two edges (log2+floor misclassifies
  // values one ulp below a boundary): v = f * 2^exp with f in [0.5,1),
  // so [2^e, 2^(e+1)) maps to exp == e+1 and lands in bucket e+1 = exp.
  int exp = 0;
  std::frexp(v, &exp);
  if (exp >= kNumBuckets - 1) return kNumBuckets - 1;
  return exp;
}

double Histogram::BucketUpperEdge(int i) {
  if (i <= 0) return 1.0;
  if (i >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, i);  // 2^i
}

namespace {

/// Shared quantile estimate over log2 bucket counts: walk the
/// cumulative distribution to the bucket holding rank q*count, then
/// interpolate linearly between the bucket's edges. Bucket 0 (samples
/// < 1, including negatives) interpolates over [0, 1); the overflow
/// bucket has no finite upper edge, so it reports its lower edge.
double PercentileFromBuckets(const int64_t* buckets, int num_buckets,
                             int64_t count, double q) {
  if (count <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count);
  int64_t cum = 0;
  for (int i = 0; i < num_buckets; ++i) {
    if (buckets[i] == 0) continue;
    const int64_t next = cum + buckets[i];
    if (target <= static_cast<double>(next)) {
      const double lower = i == 0 ? 0.0 : Histogram::BucketUpperEdge(i - 1);
      const double upper = Histogram::BucketUpperEdge(i);
      if (std::isinf(upper)) return lower;
      const double frac = (target - static_cast<double>(cum)) /
                          static_cast<double>(buckets[i]);
      return lower + (upper - lower) * frac;
    }
    cum = next;
  }
  return Histogram::BucketUpperEdge(num_buckets - 2);
}

}  // namespace

double Histogram::Percentile(double q) const {
  int64_t copied[kNumBuckets];
  int64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    copied[i] = buckets_[i].load(std::memory_order_relaxed);
    total += copied[i];
  }
  // Sum the copied buckets rather than reading count_: under concurrent
  // Observe() the two can momentarily disagree, and the interpolation
  // needs a rank consistent with the bucket snapshot it walks.
  return PercentileFromBuckets(copied, kNumBuckets, total, q);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double MetricsSnapshot::HistogramData::Percentile(double q) const {
  int64_t total = 0;
  for (int64_t b : buckets) total += b;
  return PercentileFromBuckets(buckets.data(),
                               static_cast<int>(buckets.size()), total, q);
}

int64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) os << ",";
    first = false;
    os << JsonQuote(name) << ":" << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) os << ",";
    first = false;
    os << JsonQuote(name) << ":" << JsonNumber(v);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) os << ",";
    first = false;
    os << JsonQuote(name) << ":{\"count\":" << h.count
       << ",\"sum\":" << JsonNumber(h.sum)
       << ",\"p50\":" << JsonNumber(h.Percentile(0.50))
       << ",\"p95\":" << JsonNumber(h.Percentile(0.95))
       << ",\"p99\":" << JsonNumber(h.Percentile(0.99))
       << ",\"buckets\":[";
    // Sparse emission: [bucket_index, count] pairs for non-empty
    // buckets keeps the snapshot compact.
    bool bfirst = true;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      if (!bfirst) os << ",";
      bfirst = false;
      os << "[" << i << "," << h.buckets[i] << "]";
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    const std::string& name, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != kind) {
      std::fprintf(stderr,
                   "[FATAL] metric '%s' re-registered with a different "
                   "type\n",
                   name.c_str());
      std::abort();
    }
    return &it->second;
  }
  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return &metrics_.emplace(name, std::move(entry)).first->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return FindOrCreate(name, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return FindOrCreate(name, Kind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return FindOrCreate(name, Kind::kHistogram)->histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snap.counters[name] = entry.counter->value();
        break;
      case Kind::kGauge:
        snap.gauges[name] = entry.gauge->value();
        break;
      case Kind::kHistogram: {
        MetricsSnapshot::HistogramData data;
        data.count = entry.histogram->count();
        data.sum = entry.histogram->sum();
        data.buckets.reserve(Histogram::kNumBuckets);
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          data.buckets.push_back(entry.histogram->bucket(i));
        }
        snap.histograms[name] = std::move(data);
        break;
      }
    }
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->Reset();
        break;
      case Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

}  // namespace obs
}  // namespace relm

#include "obs/trace.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "common/string_util.h"
#include "obs/json_util.h"
#include "obs/scope.h"

namespace relm {
namespace obs {

namespace {

/// Appends the thread's bound TraceContext (if any) to an event's args,
/// so every span and instant recorded while a job context is bound
/// carries job attribution without the call site knowing about jobs.
void StampTraceContext(std::string* args_json) {
  const TraceContext* ctx = CurrentTraceContext();
  if (ctx == nullptr || !ctx->valid()) return;
  if (!args_json->empty()) *args_json += ",";
  *args_json += ctx->ToJsonArgs();
}

/// Per-thread span stack: the '/'-joined path of currently open spans.
/// Only touched while tracing is enabled, so its cost is off the
/// disabled path entirely.
thread_local std::vector<std::string> t_span_stack;

std::atomic<int> g_next_thread_id{1};
thread_local int t_thread_id = 0;

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::SetEnabled(bool enabled) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (enabled && events_.empty()) {
      epoch_ = std::chrono::steady_clock::now();
    }
  }
  enabled_.store(enabled, std::memory_order_relaxed);
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

double Tracer::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int Tracer::CurrentThreadId() {
  if (t_thread_id == 0) {
    t_thread_id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return t_thread_id;
}

void Tracer::Record(TraceEvent ev) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

void Tracer::RecordInstant(const std::string& name,
                           const std::string& args_json) {
  TraceEvent ev;
  ev.name = name;
  ev.path = name;
  ev.phase = 'i';
  ev.pid = 1;
  ev.tid = CurrentThreadId();
  ev.ts_us = NowUs();
  ev.args_json = args_json;
  StampTraceContext(&ev.args_json);
  Record(std::move(ev));
}

void Tracer::RecordSimSpan(const std::string& name, double start_s,
                           double dur_s, const std::string& args_json) {
  TraceEvent ev;
  ev.name = name;
  ev.path = name;
  ev.phase = 'X';
  ev.pid = 2;
  ev.tid = 1;  // the simulated cluster is one logical timeline
  ev.ts_us = start_s * 1e6;
  ev.dur_us = std::max(0.0, dur_s) * 1e6;
  ev.args_json = args_json;
  Record(std::move(ev));
}

void Tracer::RecordSimInstant(const std::string& name, double at_s,
                              const std::string& args_json) {
  TraceEvent ev;
  ev.name = name;
  ev.path = name;
  ev.phase = 'i';
  ev.pid = 2;
  ev.tid = 1;
  ev.ts_us = at_s * 1e6;
  ev.args_json = args_json;
  Record(std::move(ev));
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t Tracer::NumEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string Tracer::ToChromeJson(const MetricsSnapshot* metrics) const {
  std::vector<TraceEvent> events = Events();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  // Process/thread naming metadata so the viewers label the timelines.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"relm wall clock\"}},"
     << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
        "\"args\":{\"name\":\"relm simulated time\"}}";
  for (const TraceEvent& ev : events) {
    os << ",{\"name\":" << JsonQuote(ev.name) << ",\"ph\":\"" << ev.phase
       << "\",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid
       << ",\"ts\":" << JsonNumber(ev.ts_us);
    if (ev.phase == 'X') {
      os << ",\"dur\":" << JsonNumber(ev.dur_us);
    }
    if (ev.phase == 'i') {
      os << ",\"s\":\"t\"";  // instant scope: thread
    }
    os << ",\"args\":{" << ev.args_json << "}}";
  }
  os << "]";
  if (metrics != nullptr) {
    os << ",\"relmMetrics\":" << metrics->ToJson();
  }
  os << ",\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

std::string Tracer::FlamegraphSummary() const {
  struct Node {
    int64_t count = 0;
    double total_us = 0.0;
    double child_us = 0.0;
  };
  std::map<std::string, Node> nodes;  // ordered => parents before kids
  for (const TraceEvent& ev : Events()) {
    if (ev.phase != 'X' || ev.pid != 1) continue;
    Node& n = nodes[ev.path];
    ++n.count;
    n.total_us += ev.dur_us;
  }
  for (const auto& [path, node] : nodes) {
    auto slash = path.rfind('/');
    if (slash == std::string::npos) continue;
    auto parent = nodes.find(path.substr(0, slash));
    if (parent != nodes.end()) parent->second.child_us += node.total_us;
  }
  std::ostringstream os;
  os << "flamegraph (wall time)\n";
  os << "  count      total       self  span\n";
  for (const auto& [path, node] : nodes) {
    int depth = static_cast<int>(
        std::count(path.begin(), path.end(), '/'));
    std::string leaf = path.substr(path.rfind('/') + 1);
    double self_us = std::max(0.0, node.total_us - node.child_us);
    os << FormatDouble(static_cast<double>(node.count), 0);
    os << std::string(
        std::max<int>(1, 7 - static_cast<int>(
                              std::to_string(node.count).size())),
        ' ');
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%9.3fms %9.3fms  ",
                  node.total_us / 1000.0, self_us / 1000.0);
    os << buf << std::string(2 * depth, ' ') << leaf << "\n";
  }
  return os.str();
}

Status Tracer::WriteChromeTrace(const std::string& path,
                                const MetricsSnapshot* metrics) const {
  std::ofstream out(path);
  if (!out.good()) {
    return Status::NotFound("cannot open trace output file: " + path);
  }
  out << ToChromeJson(metrics);
  out.close();
  if (!out.good()) {
    return Status::Internal("failed writing trace file: " + path);
  }
  return Status::OK();
}

ScopedSpan::ScopedSpan(const char* name) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  active_ = true;
  if (t_span_stack.empty()) {
    path_ = name;
  } else {
    path_ = t_span_stack.back() + "/" + name;
  }
  t_span_stack.push_back(path_);
  start_us_ = tracer.NowUs();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  Tracer& tracer = Tracer::Global();
  t_span_stack.pop_back();
  TraceEvent ev;
  ev.path = path_;
  ev.name = path_.substr(path_.rfind('/') + 1);
  ev.phase = 'X';
  ev.pid = 1;
  ev.tid = Tracer::CurrentThreadId();
  ev.ts_us = start_us_;
  ev.dur_us = std::max(0.0, tracer.NowUs() - start_us_);
  ev.args_json = std::move(args_);
  StampTraceContext(&ev.args_json);
  tracer.Record(std::move(ev));
}

}  // namespace obs
}  // namespace relm

#ifndef RELM_OBS_METRICS_H_
#define RELM_OBS_METRICS_H_

// Process-wide metrics registry: counters, gauges, and histograms with
// fixed log-scale buckets. The hot path (incrementing an already
// resolved metric handle) is a single relaxed atomic add; name lookup
// happens once per call site (the RELM_COUNTER_* macros cache the
// handle in a function-local static). Handles are stable for the
// lifetime of the process: Reset() zeroes values but never invalidates
// pointers, so cached call-site handles stay valid across benchmark
// iterations and tests.
//
// Naming convention: dot-separated "<layer>.<what>" in snake_case,
// e.g. "optimizer.cost_invocations", "sim.task_retries",
// "rm.preemptions" (see DESIGN.md §8).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef RELM_OBS_ENABLED
#define RELM_OBS_ENABLED 1
#endif

namespace relm {
namespace obs {

/// Monotonically increasing counter. Thread-safe, lock-free.
class Counter {
 public:
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-written value. Thread-safe, lock-free.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over non-negative samples with fixed log2-scale buckets:
/// bucket 0 holds samples < 1, bucket i (1 <= i < kNumBuckets-1) holds
/// samples in [2^(i-1), 2^i), and the last bucket is the overflow. Each
/// Observe() is two relaxed atomic adds plus one atomic increment.
class Histogram {
 public:
  static constexpr int kNumBuckets = 40;

  void Observe(double v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Index of the bucket a sample lands in (exposed for tests).
  static int BucketIndex(double v);
  /// Inclusive upper edge of bucket i (infinity for the overflow).
  static double BucketUpperEdge(int i);
  /// Estimated value at quantile `q` in [0, 1] (clamped) by linear
  /// interpolation inside the log2 bucket holding the target rank;
  /// bucket 0 interpolates over [0, 1) and the overflow bucket reports
  /// its lower edge. 0 when the histogram is empty.
  double Percentile(double q) const;
  void Reset();

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  struct HistogramData {
    int64_t count = 0;
    double sum = 0.0;
    std::vector<int64_t> buckets;  // kNumBuckets entries
    /// Same interpolation as Histogram::Percentile, over the copied
    /// bucket counts.
    double Percentile(double q) const;
  };
  std::map<std::string, HistogramData> histograms;

  /// Counter value by name (0 when absent) — convenience for tests that
  /// compare the snapshot against SimResult/OptimizerStats fields.
  int64_t counter(const std::string& name) const;

  std::string ToJson() const;
};

/// Process-wide registry. Get*() registers on first use and returns a
/// stable handle; concurrent Get*() of the same name return the same
/// handle. Requesting an existing name with a different metric type
/// aborts (programming error).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  std::string ToJson() const { return Snapshot().ToJson(); }

  /// Zeroes every metric without invalidating handles.
  void Reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry* FindOrCreate(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;
};

}  // namespace obs
}  // namespace relm

// ---- call-site macros ----
//
// The enabled versions resolve the metric once (function-local static)
// and then pay only the relaxed atomic update. With observability
// compiled out (RELM_OBS_ENABLED=0) they evaluate nothing.

#if RELM_OBS_ENABLED

#define RELM_COUNTER_ADD(name, delta)                              \
  do {                                                             \
    static ::relm::obs::Counter* relm_obs_counter_ =               \
        ::relm::obs::MetricsRegistry::Global().GetCounter(name);   \
    relm_obs_counter_->Add(delta);                                 \
  } while (0)

#define RELM_COUNTER_INC(name) RELM_COUNTER_ADD(name, 1)

#define RELM_GAUGE_SET(name, value)                                \
  do {                                                             \
    static ::relm::obs::Gauge* relm_obs_gauge_ =                   \
        ::relm::obs::MetricsRegistry::Global().GetGauge(name);     \
    relm_obs_gauge_->Set(value);                                   \
  } while (0)

#define RELM_HISTOGRAM_OBSERVE(name, value)                        \
  do {                                                             \
    static ::relm::obs::Histogram* relm_obs_histogram_ =           \
        ::relm::obs::MetricsRegistry::Global().GetHistogram(name); \
    relm_obs_histogram_->Observe(value);                           \
  } while (0)

#else  // !RELM_OBS_ENABLED

#define RELM_COUNTER_ADD(name, delta) static_cast<void>(0)
#define RELM_COUNTER_INC(name) static_cast<void>(0)
#define RELM_GAUGE_SET(name, value) static_cast<void>(0)
#define RELM_HISTOGRAM_OBSERVE(name, value) static_cast<void>(0)

#endif  // RELM_OBS_ENABLED

#endif  // RELM_OBS_METRICS_H_

#include "obs/profile.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/json_util.h"

namespace relm {
namespace obs {

OpProfileStore& OpProfileStore::Global() {
  static OpProfileStore* store = new OpProfileStore();
  return *store;
}

int OpProfileStore::ShapeBucket(int64_t cells) {
  if (cells <= 1) return 0;
  int bucket = 0;
  while (cells > 1) {
    cells >>= 1;
    ++bucket;
  }
  return bucket;
}

void OpProfileStore::Record(const std::string& op, int64_t cells,
                            int64_t bytes, double flops, double seconds) {
  Key key{op, ShapeBucket(cells)};
  std::lock_guard<std::mutex> lock(mu_);
  OpProfileStats& s = stats_[std::move(key)];
  s.samples++;
  s.cells += cells;
  s.bytes += bytes;
  s.flops += flops;
  s.seconds += seconds;
}

std::map<OpProfileStore::Key, OpProfileStats> OpProfileStore::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int64_t OpProfileStore::total_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [key, s] : stats_) total += s.samples;
  return total;
}

namespace {

void AppendCellJson(std::ostringstream* os, const OpProfileStore::Key& key,
                    const OpProfileStats& s) {
  *os << "{\"op\":" << JsonQuote(key.op)
      << ",\"shape_bucket\":" << key.shape_bucket
      << ",\"samples\":" << s.samples << ",\"cells\":" << s.cells
      << ",\"bytes\":" << s.bytes
      << ",\"seconds\":" << JsonNumber(s.seconds)
      << ",\"flops\":" << JsonNumber(s.flops)
      << ",\"flops_per_second\":" << JsonNumber(s.FlopsPerSecond())
      << ",\"bytes_per_second\":" << JsonNumber(s.BytesPerSecond()) << "}";
}

}  // namespace

std::string OpProfileStore::ToJson() const {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const auto& [key, s] : Snapshot()) {
    if (!first) os << ",";
    first = false;
    AppendCellJson(&os, key, s);
  }
  os << "]";
  return os.str();
}

std::string OpProfileStore::ToJsonl() const {
  std::ostringstream os;
  for (const auto& [key, s] : Snapshot()) {
    AppendCellJson(&os, key, s);
    os << "\n";
  }
  return os.str();
}

Status OpProfileStore::WriteJsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) {
    return Status::NotFound("cannot open profile output file: " + path);
  }
  out << ToJsonl();
  out.close();
  if (!out.good()) {
    return Status::Internal("failed writing profile file: " + path);
  }
  return Status::OK();
}

void OpProfileStore::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.clear();
}

CalibratedOpRegistry CalibratedOpRegistry::FromStore(
    const OpProfileStore& store, int64_t min_samples) {
  // Aggregate across shape buckets per operator name: the cost model
  // charges flops, so a flops-weighted rate (total flops / total time)
  // is the estimate that makes the calibrated charge match the
  // measured wall time of the profiled run.
  std::map<std::string, OpProfileStats> by_op;
  for (const auto& [key, s] : store.Snapshot()) {
    OpProfileStats& agg = by_op[key.op];
    agg.samples += s.samples;
    agg.cells += s.cells;
    agg.bytes += s.bytes;
    agg.flops += s.flops;
    agg.seconds += s.seconds;
  }
  CalibratedOpRegistry out;
  for (const auto& [op, s] : by_op) {
    if (s.samples < min_samples) continue;
    if (s.flops <= 0.0 || s.seconds <= 0.0) continue;
    out.rates_[op] = s.FlopsPerSecond();
  }
  return out;
}

double CalibratedOpRegistry::FlopsPerSecond(const std::string& op,
                                            double fallback) const {
  auto it = rates_.find(op);
  return it == rates_.end() ? fallback : it->second;
}

uint64_t CalibratedOpRegistry::Fingerprint() const {
  // FNV-1a over name bytes and rate bit patterns; std::map iteration is
  // name-ordered, so equal contents hash equal regardless of insertion
  // order.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  for (const auto& [op, rate] : rates_) {
    mix(op.data(), op.size());
    uint64_t bits = 0;
    std::memcpy(&bits, &rate, sizeof(bits));
    mix(&bits, sizeof(bits));
  }
  return h;
}

std::string CalibratedOpRegistry::ToJson() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [op, rate] : rates_) {
    if (!first) os << ",";
    first = false;
    os << JsonQuote(op) << ":" << JsonNumber(rate);
  }
  os << "}";
  return os.str();
}

}  // namespace obs
}  // namespace relm

#include "runtime/interpreter.h"

#include <iostream>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace relm {

/// The control-flow driver; one instance per Run(). Statement-block
/// DAGs are handed to the exec::Engine; this class owns the symbol
/// frames, the loop constructs, and UDF call frames, wired to the
/// engine through its hooks.
class Interpreter::Impl {
 public:
  Impl(Interpreter* host)
      : host_(*host),
        engine_(host->hdfs_, &host->rng_, host->exec_options_) {
    hooks_.read_symbol = [this](const std::string& name) {
      return ReadSymbol(name);
    };
    hooks_.write_symbol = [this](const std::string& name, const Value& v) {
      return WriteSymbol(name, v);
    };
    hooks_.emit_print = [this](const std::string& line) {
      host_.printed_.push_back(line);
      if (host_.echo_) std::cout << line << std::endl;
    };
    hooks_.call_function = [this](const Hop* call, std::vector<Value> args) {
      return CallFunction(call, std::move(args));
    };
  }

  Status Run() {
    Status st = RunBlocks(host_.program_->blocks().main);
    // Materialize managed symbols (hollow matrix values point into the
    // memory manager) before the spill space is cleaned up; payloads
    // stay alive through their shared_ptrs.
    if (engine_.memory() != nullptr) {
      for (auto& [name, value] : host_.symbols_) {
        if (value.is_matrix() && value.matrix == nullptr) {
          auto fetched = engine_.memory()->FetchMatrix(ManagedKey(name));
          if (fetched.ok()) {
            value.matrix = std::move(fetched).value();
          } else if (st.ok()) {
            // A hollow symbol with no payload would surface as a null
            // dereference in any consumer of symbols(); fail the run
            // instead (keeping the original error when one exists —
            // a failed run legitimately leaves symbols unmaterialized).
            st = fetched.status();
          }
        }
      }
      engine_.memory()->DropAll();
    }
    host_.exec_stats_ = engine_.stats();
    RELM_GAUGE_SET("exec.workers", engine_.workers());
    return st;
  }

 private:
  using Env = std::map<std::string, Value>;

  std::string ManagedKey(const std::string& name) const {
    return frame_prefix_ + name;
  }

  Result<Value> ReadSymbol(const std::string& name) {
    auto sit = host_.symbols_.find(name);
    if (sit == host_.symbols_.end()) {
      return Status::RuntimeError("read of undefined variable '" + name +
                                  "'");
    }
    Value v = sit->second;
    if (v.is_matrix() && v.matrix == nullptr &&
        engine_.memory() != nullptr) {
      RELM_ASSIGN_OR_RETURN(v.matrix,
                            engine_.memory()->FetchMatrix(ManagedKey(name)));
    }
    return v;
  }

  Status WriteSymbol(const std::string& name, const Value& v) {
    if (v.is_matrix() && v.matrix != nullptr &&
        engine_.memory() != nullptr) {
      // Managed mode: the payload lives in the memory manager (which
      // may spill it); the symbol table keeps a hollow marker.
      RELM_RETURN_IF_ERROR(engine_.memory()->PinMatrix(
          ManagedKey(name), v.matrix, /*dirty=*/true));
      Value hollow = v;
      hollow.matrix = nullptr;
      host_.symbols_[name] = std::move(hollow);
    } else {
      host_.symbols_[name] = v;
    }
    return Status::OK();
  }

  Status RunBlocks(const std::vector<BlockPtr>& blocks) {
    for (const auto& blk : blocks) {
      RELM_RETURN_IF_ERROR(RunBlock(*blk));
    }
    return Status::OK();
  }

  Status RunBlock(const StatementBlock& blk) {
    RELM_TRACE_SPAN_ARGS("interp.block", [&] {
      return "\"block\":" + std::to_string(blk.id());
    });
    ++host_.blocks_executed_;
    RELM_COUNTER_INC("interp.blocks_executed");
    const MlProgram& p = *host_.program_;
    if (!p.has_ir(blk.id())) {
      return Status::RuntimeError("missing IR for block " +
                                  std::to_string(blk.id()));
    }
    const BlockIR& ir = p.ir(blk.id());
    switch (blk.kind()) {
      case BlockKind::kGeneric:
        return engine_.RunGeneric(ir.dag, hooks_);
      case BlockKind::kIf: {
        RELM_ASSIGN_OR_RETURN(double pred,
                              engine_.EvalPredicate(ir.dag, hooks_));
        if (pred != 0.0) return RunBlocks(blk.body);
        return RunBlocks(blk.else_body);
      }
      case BlockKind::kWhile: {
        int64_t guard = 0;
        while (true) {
          RELM_ASSIGN_OR_RETURN(double pred,
                                engine_.EvalPredicate(ir.dag, hooks_));
          if (pred == 0.0) break;
          if (++guard > host_.max_loop_iterations_) {
            return Status::RuntimeError("while loop exceeded iteration cap");
          }
          RELM_RETURN_IF_ERROR(RunBlocks(blk.body));
        }
        return Status::OK();
      }
      case BlockKind::kFor: {
        const auto& stmt = static_cast<const ForStmt&>(*blk.control);
        if (ir.dag.roots.size() < 2) {
          return Status::RuntimeError("malformed for-loop IR");
        }
        RELM_ASSIGN_OR_RETURN(Value from,
                              engine_.EvalRoot(ir.dag, 0, hooks_));
        RELM_ASSIGN_OR_RETURN(Value to, engine_.EvalRoot(ir.dag, 1, hooks_));
        double incr = 1.0;
        if (ir.dag.roots.size() >= 3) {
          RELM_ASSIGN_OR_RETURN(Value iv,
                                engine_.EvalRoot(ir.dag, 2, hooks_));
          incr = iv.scalar;
        }
        if (incr == 0.0) {
          return Status::RuntimeError("for-loop increment is zero");
        }
        for (double v = from.scalar;
             incr > 0 ? v <= to.scalar : v >= to.scalar; v += incr) {
          host_.symbols_[stmt.var] = Value::Number(v);
          RELM_RETURN_IF_ERROR(RunBlocks(blk.body));
        }
        return Status::OK();
      }
    }
    return Status::OK();
  }

  Result<std::vector<Value>> CallFunction(const Hop* call,
                                          std::vector<Value> args) {
    const DmlProgram& ast = host_.program_->ast();
    auto fit = ast.functions.find(call->function_name);
    if (fit == ast.functions.end()) {
      return Status::RuntimeError("unknown function '" +
                                  call->function_name + "'");
    }
    const FunctionDef& fn = fit->second;
    // Execute the body in a fresh frame; managed payloads get a fresh
    // key prefix so recursive calls cannot collide in the manager.
    Env saved = std::move(host_.symbols_);
    host_.symbols_ = Env();
    const std::string saved_prefix = frame_prefix_;
    frame_prefix_ = "f" + std::to_string(++frame_counter_) + ":";
    Status st = Status::OK();
    for (size_t i = 0; i < fn.params.size() && i < args.size(); ++i) {
      st = WriteSymbol(fn.params[i].name, args[i]);
      if (!st.ok()) break;
    }
    auto body_it =
        host_.program_->blocks().functions.find(call->function_name);
    if (st.ok() && body_it != host_.program_->blocks().functions.end()) {
      st = RunBlocks(body_it->second);
    }
    std::vector<Value> returns;
    if (st.ok()) {
      for (const auto& r : fn.returns) {
        if (host_.symbols_.find(r.name) == host_.symbols_.end()) {
          st = Status::RuntimeError("function '" + call->function_name +
                                    "' did not assign return '" + r.name +
                                    "'");
          break;
        }
        // Materializes managed payloads so the value survives the
        // frame teardown below.
        Result<Value> rv = ReadSymbol(r.name);
        if (!rv.ok()) {
          st = rv.status();
          break;
        }
        returns.push_back(std::move(rv).value());
      }
    }
    if (engine_.memory() != nullptr) {
      for (const auto& [name, value] : host_.symbols_) {
        if (value.is_matrix() && value.matrix == nullptr) {
          engine_.memory()->Drop(ManagedKey(name));
        }
      }
    }
    host_.symbols_ = std::move(saved);
    frame_prefix_ = saved_prefix;
    RELM_RETURN_IF_ERROR(st);
    return returns;
  }

  Interpreter& host_;
  exec::Engine engine_;
  exec::Engine::Hooks hooks_;
  std::string frame_prefix_ = "f0:";
  int64_t frame_counter_ = 0;
};

Interpreter::Interpreter(const MlProgram* program, SimulatedHdfs* hdfs)
    : program_(program), hdfs_(hdfs) {}

Status Interpreter::Run() {
  symbols_.clear();
  printed_.clear();
  blocks_executed_ = 0;
  exec_stats_ = exec::ExecStats();
  Impl impl(this);
  return impl.Run();
}

}  // namespace relm

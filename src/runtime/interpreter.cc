#include "runtime/interpreter.h"

#include <cmath>
#include <iostream>
#include <sstream>
#include <unordered_map>

#include "common/string_util.h"
#include "matrix/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace relm {

std::string Value::ToDisplayString() const {
  if (is_matrix()) {
    return matrix ? matrix->ToString() : "<matrix>";
  }
  if (is_string) return str;
  return FormatDouble(scalar, 6);
}

/// The actual evaluation engine; one instance per Run().
class Interpreter::Impl {
 public:
  Impl(Interpreter* host) : host_(*host) {}

  Status Run() {
    return RunBlocks(host_.program_->blocks().main);
  }

 private:
  using Env = std::map<std::string, Value>;

  Status RunBlocks(const std::vector<BlockPtr>& blocks) {
    for (const auto& blk : blocks) {
      RELM_RETURN_IF_ERROR(RunBlock(*blk));
    }
    return Status::OK();
  }

  Status RunBlock(const StatementBlock& blk) {
    RELM_TRACE_SPAN_ARGS("interp.block", [&] {
      return "\"block\":" + std::to_string(blk.id());
    });
    ++host_.blocks_executed_;
    RELM_COUNTER_INC("interp.blocks_executed");
    const MlProgram& p = *host_.program_;
    if (!p.has_ir(blk.id())) {
      return Status::RuntimeError("missing IR for block " +
                                  std::to_string(blk.id()));
    }
    const BlockIR& ir = p.ir(blk.id());
    switch (blk.kind()) {
      case BlockKind::kGeneric:
        return RunGeneric(ir);
      case BlockKind::kIf: {
        RELM_ASSIGN_OR_RETURN(double pred, EvalPredicate(ir));
        if (pred != 0.0) return RunBlocks(blk.body);
        return RunBlocks(blk.else_body);
      }
      case BlockKind::kWhile: {
        int64_t guard = 0;
        while (true) {
          RELM_ASSIGN_OR_RETURN(double pred, EvalPredicate(ir));
          if (pred == 0.0) break;
          if (++guard > host_.max_loop_iterations_) {
            return Status::RuntimeError("while loop exceeded iteration cap");
          }
          RELM_RETURN_IF_ERROR(RunBlocks(blk.body));
        }
        return Status::OK();
      }
      case BlockKind::kFor: {
        const auto& stmt = static_cast<const ForStmt&>(*blk.control);
        if (ir.dag.roots.size() < 2) {
          return Status::RuntimeError("malformed for-loop IR");
        }
        RELM_ASSIGN_OR_RETURN(Value from, Eval(ir.dag.roots[0].get()));
        RELM_ASSIGN_OR_RETURN(Value to, Eval(ir.dag.roots[1].get()));
        double incr = 1.0;
        if (ir.dag.roots.size() >= 3) {
          RELM_ASSIGN_OR_RETURN(Value iv, Eval(ir.dag.roots[2].get()));
          incr = iv.scalar;
        }
        if (incr == 0.0) {
          return Status::RuntimeError("for-loop increment is zero");
        }
        for (double v = from.scalar;
             incr > 0 ? v <= to.scalar : v >= to.scalar; v += incr) {
          host_.symbols_[stmt.var] = Value::Number(v);
          RELM_RETURN_IF_ERROR(RunBlocks(blk.body));
        }
        return Status::OK();
      }
    }
    return Status::OK();
  }

  Result<double> EvalPredicate(const BlockIR& ir) {
    cache_.clear();
    fcall_cache_.clear();
    if (ir.dag.roots.empty()) {
      return Status::RuntimeError("empty predicate DAG");
    }
    RELM_ASSIGN_OR_RETURN(Value v, Eval(ir.dag.roots[0].get()));
    return v.scalar;
  }

  Status RunGeneric(const BlockIR& ir) {
    cache_.clear();
    fcall_cache_.clear();
    // Pin block-entry values of all transient reads BEFORE any write
    // root executes: the DAG has SSA semantics, so every read must see
    // the variable's value at block entry, not a mid-block update.
    for (Hop* h : ir.dag.TopoOrder()) {
      if (h->kind() == HopKind::kTransientRead) {
        RELM_ASSIGN_OR_RETURN(Value v, Eval(h));
        (void)v;
      }
    }
    for (const auto& root : ir.dag.roots) {
      RELM_ASSIGN_OR_RETURN(Value v, Eval(root.get()));
      (void)v;
    }
    return Status::OK();
  }

  Result<Value> Eval(const Hop* h) {
    auto it = cache_.find(h);
    if (it != cache_.end()) return it->second;
    RELM_ASSIGN_OR_RETURN(Value v, EvalUncached(h));
    cache_[h] = v;
    return v;
  }

  Result<Value> EvalUncached(const Hop* h) {
    switch (h->kind()) {
      case HopKind::kLiteral:
        if (h->literal_is_string) return Value::Str(h->literal_string);
        return Value::Number(h->literal_value);

      case HopKind::kTransientRead: {
        auto sit = host_.symbols_.find(h->name());
        if (sit == host_.symbols_.end()) {
          return Status::RuntimeError("read of undefined variable '" +
                                      h->name() + "'");
        }
        return sit->second;
      }

      case HopKind::kPersistentRead: {
        RELM_ASSIGN_OR_RETURN(HdfsFile file, host_.hdfs_->Get(h->name()));
        if (file.data == nullptr) {
          return Status::RuntimeError(
              "HDFS file has no payload for real execution: " + h->name());
        }
        return Value::MatrixPtr(file.data);
      }

      case HopKind::kTransientWrite: {
        RELM_ASSIGN_OR_RETURN(Value v, Eval(h->input(0)));
        host_.symbols_[h->name()] = v;
        return v;
      }

      case HopKind::kPersistentWrite: {
        RELM_ASSIGN_OR_RETURN(Value v, Eval(h->input(0)));
        if (v.is_matrix()) {
          host_.hdfs_->PutMatrix(h->name(), *v.matrix);
        } else {
          host_.hdfs_->PutMetadata(h->name(),
                                   MatrixCharacteristics(1, 1, 1));
        }
        return v;
      }

      case HopKind::kPrint: {
        RELM_ASSIGN_OR_RETURN(Value v, Eval(h->input(0)));
        std::string line = v.ToDisplayString();
        host_.printed_.push_back(line);
        if (host_.echo_) std::cout << line << std::endl;
        return Value::Number(0);
      }

      case HopKind::kBinary:
        return EvalBinary(h);

      case HopKind::kUnary: {
        RELM_ASSIGN_OR_RETURN(Value a, Eval(h->input(0)));
        if (a.is_matrix()) {
          return Value::Matrix(ElementwiseUnary(h->un_op, *a.matrix));
        }
        return Value::Number(ApplyUnOp(h->un_op, a.scalar));
      }

      case HopKind::kAggUnary: {
        RELM_ASSIGN_OR_RETURN(Value a, Eval(h->input(0)));
        if (!a.is_matrix()) {
          return Status::RuntimeError("aggregate of a scalar");
        }
        if (h->agg_dir == AggDir::kAll) {
          RELM_ASSIGN_OR_RETURN(double v, Aggregate(h->agg_op, *a.matrix));
          return Value::Number(v);
        }
        RELM_ASSIGN_OR_RETURN(
            MatrixBlock m, AggregateAxis(h->agg_op, h->agg_dir, *a.matrix));
        return Value::Matrix(std::move(m));
      }

      case HopKind::kMatMult: {
        RELM_ASSIGN_OR_RETURN(Value a, Eval(h->input(0)));
        RELM_ASSIGN_OR_RETURN(Value b, Eval(h->input(1)));
        RELM_ASSIGN_OR_RETURN(MatrixBlock m,
                              MatMult(*a.matrix, *b.matrix));
        return Value::Matrix(std::move(m));
      }

      case HopKind::kReorg: {
        RELM_ASSIGN_OR_RETURN(Value a, Eval(h->input(0)));
        if (h->reorg_op == ReorgOp::kTranspose) {
          return Value::Matrix(Transpose(*a.matrix));
        }
        RELM_ASSIGN_OR_RETURN(MatrixBlock m, Diag(*a.matrix));
        return Value::Matrix(std::move(m));
      }

      case HopKind::kDataGen:
        return EvalDataGen(h);

      case HopKind::kTernary: {
        RELM_ASSIGN_OR_RETURN(Value a, Eval(h->input(0)));
        RELM_ASSIGN_OR_RETURN(Value b, Eval(h->input(1)));
        RELM_ASSIGN_OR_RETURN(MatrixBlock m, Table(*a.matrix, *b.matrix));
        return Value::Matrix(std::move(m));
      }

      case HopKind::kIndexing:
        return EvalIndexing(h);

      case HopKind::kLeftIndexing: {
        RELM_ASSIGN_OR_RETURN(Value target, Eval(h->input(0)));
        RELM_ASSIGN_OR_RETURN(Value value, Eval(h->input(1)));
        auto bound = [&](size_t idx, int64_t fallback) -> Result<int64_t> {
          RELM_ASSIGN_OR_RETURN(Value v, Eval(h->input(idx)));
          int64_t b = static_cast<int64_t>(std::llround(v.scalar));
          return b == -1 ? fallback : b;
        };
        const MatrixBlock& m = *target.matrix;
        RELM_ASSIGN_OR_RETURN(int64_t rl, bound(2, 1));
        RELM_ASSIGN_OR_RETURN(int64_t ru, bound(3, m.rows()));
        RELM_ASSIGN_OR_RETURN(int64_t cl, bound(4, 1));
        RELM_ASSIGN_OR_RETURN(int64_t cu, bound(5, m.cols()));
        MatrixBlock vblock;
        if (value.is_matrix()) {
          vblock = *value.matrix;
        } else {
          // Scalar value: broadcast over the target range.
          vblock = MatrixBlock::Constant(ru - rl + 1, cu - cl + 1,
                                         value.scalar);
        }
        RELM_ASSIGN_OR_RETURN(MatrixBlock out,
                              LeftIndex(m, vblock, rl, ru, cl, cu));
        return Value::Matrix(std::move(out));
      }

      case HopKind::kAppend: {
        RELM_ASSIGN_OR_RETURN(Value a, Eval(h->input(0)));
        RELM_ASSIGN_OR_RETURN(Value b, Eval(h->input(1)));
        RELM_ASSIGN_OR_RETURN(MatrixBlock m, Append(*a.matrix, *b.matrix));
        return Value::Matrix(std::move(m));
      }

      case HopKind::kSolve: {
        RELM_ASSIGN_OR_RETURN(Value a, Eval(h->input(0)));
        RELM_ASSIGN_OR_RETURN(Value b, Eval(h->input(1)));
        RELM_ASSIGN_OR_RETURN(MatrixBlock m, Solve(*a.matrix, *b.matrix));
        return Value::Matrix(std::move(m));
      }

      case HopKind::kDimExtract: {
        RELM_ASSIGN_OR_RETURN(Value a, Eval(h->input(0)));
        if (!a.is_matrix()) {
          return Status::RuntimeError("nrow/ncol of a scalar");
        }
        return Value::Number(static_cast<double>(
            h->dim_extract_rows ? a.matrix->rows() : a.matrix->cols()));
      }

      case HopKind::kCast: {
        RELM_ASSIGN_OR_RETURN(Value a, Eval(h->input(0)));
        if (h->is_matrix()) {
          if (a.is_matrix()) return a;
          MatrixBlock m(1, 1, false);
          m.Set(0, 0, a.scalar);
          return Value::Matrix(std::move(m));
        }
        if (!a.is_matrix()) return a;
        RELM_ASSIGN_OR_RETURN(double v, CastToScalar(*a.matrix));
        return Value::Number(v);
      }

      case HopKind::kFunctionCall:
        return EvalFunctionCall(h, 0);
      case HopKind::kFunctionOutput:
        return EvalFunctionCall(h->input(0), h->function_output_index);
    }
    return Status::Internal("unhandled hop kind in interpreter");
  }

  Result<Value> EvalBinary(const Hop* h) {
    RELM_ASSIGN_OR_RETURN(Value a, Eval(h->input(0)));
    RELM_ASSIGN_OR_RETURN(Value b, Eval(h->input(1)));
    // String concatenation.
    if (h->bin_op == BinOp::kAdd && (a.is_string || b.is_string)) {
      return Value::Str(Stringify(a) + Stringify(b));
    }
    if (a.is_matrix() && b.is_matrix()) {
      RELM_ASSIGN_OR_RETURN(
          MatrixBlock m, ElementwiseBinary(h->bin_op, *a.matrix, *b.matrix));
      return Value::Matrix(std::move(m));
    }
    if (a.is_matrix()) {
      return Value::Matrix(ScalarBinary(h->bin_op, *a.matrix, b.scalar));
    }
    if (b.is_matrix()) {
      return Value::Matrix(ScalarBinary(h->bin_op, *b.matrix, a.scalar,
                                        /*scalar_left=*/true));
    }
    return Value::Number(ApplyBinOp(h->bin_op, a.scalar, b.scalar));
  }

  static std::string Stringify(const Value& v) {
    if (v.is_matrix()) return v.matrix->ToString();
    if (v.is_string) return v.str;
    return FormatDouble(v.scalar, 6);
  }

  Result<Value> EvalDataGen(const Hop* h) {
    switch (h->datagen_op) {
      case DataGenOp::kConstMatrix: {
        RELM_ASSIGN_OR_RETURN(Value val, Eval(h->input(0)));
        RELM_ASSIGN_OR_RETURN(Value rows, Eval(h->input(1)));
        RELM_ASSIGN_OR_RETURN(Value cols, Eval(h->input(2)));
        return Value::Matrix(MatrixBlock::Constant(
            static_cast<int64_t>(rows.scalar),
            static_cast<int64_t>(cols.scalar), val.scalar));
      }
      case DataGenOp::kRand: {
        RELM_ASSIGN_OR_RETURN(Value minv, Eval(h->input(0)));
        RELM_ASSIGN_OR_RETURN(Value rows, Eval(h->input(1)));
        RELM_ASSIGN_OR_RETURN(Value cols, Eval(h->input(2)));
        double sparsity = 1.0;
        if (h->inputs().size() >= 4) {
          RELM_ASSIGN_OR_RETURN(Value sp, Eval(h->input(3)));
          sparsity = sp.scalar;
        }
        return Value::Matrix(MatrixBlock::Rand(
            static_cast<int64_t>(rows.scalar),
            static_cast<int64_t>(cols.scalar), sparsity, minv.scalar,
            minv.scalar + 1.0, &host_.rng_));
      }
      case DataGenOp::kSeq: {
        RELM_ASSIGN_OR_RETURN(Value from, Eval(h->input(0)));
        RELM_ASSIGN_OR_RETURN(Value to, Eval(h->input(1)));
        double incr = 1.0;
        if (h->inputs().size() >= 3) {
          RELM_ASSIGN_OR_RETURN(Value iv, Eval(h->input(2)));
          incr = iv.scalar;
        }
        return Value::Matrix(
            MatrixBlock::Seq(from.scalar, to.scalar, incr));
      }
    }
    return Status::Internal("unhandled datagen op");
  }

  Result<Value> EvalIndexing(const Hop* h) {
    RELM_ASSIGN_OR_RETURN(Value target, Eval(h->input(0)));
    auto bound = [&](size_t idx, int64_t fallback) -> Result<int64_t> {
      RELM_ASSIGN_OR_RETURN(Value v, Eval(h->input(idx)));
      int64_t b = static_cast<int64_t>(std::llround(v.scalar));
      return b == -1 ? fallback : b;
    };
    const MatrixBlock& m = *target.matrix;
    RELM_ASSIGN_OR_RETURN(int64_t rl, bound(1, 1));
    RELM_ASSIGN_OR_RETURN(int64_t ru, bound(2, m.rows()));
    RELM_ASSIGN_OR_RETURN(int64_t cl, bound(3, 1));
    RELM_ASSIGN_OR_RETURN(int64_t cu, bound(4, m.cols()));
    RELM_ASSIGN_OR_RETURN(MatrixBlock sub, RightIndex(m, rl, ru, cl, cu));
    return Value::Matrix(std::move(sub));
  }

  Result<Value> EvalFunctionCall(const Hop* call, int output_index) {
    auto cit = fcall_cache_.find(call);
    if (cit == fcall_cache_.end()) {
      const DmlProgram& ast = host_.program_->ast();
      auto fit = ast.functions.find(call->function_name);
      if (fit == ast.functions.end()) {
        return Status::RuntimeError("unknown function '" +
                                    call->function_name + "'");
      }
      const FunctionDef& fn = fit->second;
      // Evaluate arguments in the caller frame.
      std::vector<Value> args;
      for (const auto& in : call->inputs()) {
        RELM_ASSIGN_OR_RETURN(Value v, Eval(in.get()));
        args.push_back(std::move(v));
      }
      // Execute the body in a fresh frame.
      Env saved = std::move(host_.symbols_);
      host_.symbols_ = Env();
      for (size_t i = 0; i < fn.params.size() && i < args.size(); ++i) {
        host_.symbols_[fn.params[i].name] = args[i];
      }
      auto body_it = host_.program_->blocks().functions.find(
          call->function_name);
      Status st = Status::OK();
      if (body_it != host_.program_->blocks().functions.end()) {
        // Caches are per-frame: save and restore around the call.
        auto saved_cache = std::move(cache_);
        auto saved_fcalls = std::move(fcall_cache_);
        cache_.clear();
        fcall_cache_.clear();
        st = RunBlocks(body_it->second);
        cache_ = std::move(saved_cache);
        fcall_cache_ = std::move(saved_fcalls);
      }
      std::vector<Value> returns;
      if (st.ok()) {
        for (const auto& r : fn.returns) {
          auto rit = host_.symbols_.find(r.name);
          if (rit == host_.symbols_.end()) {
            st = Status::RuntimeError("function '" + call->function_name +
                                      "' did not assign return '" +
                                      r.name + "'");
            break;
          }
          returns.push_back(rit->second);
        }
      }
      host_.symbols_ = std::move(saved);
      RELM_RETURN_IF_ERROR(st);
      cit = fcall_cache_.emplace(call, std::move(returns)).first;
    }
    if (output_index < 0 ||
        output_index >= static_cast<int>(cit->second.size())) {
      return Status::RuntimeError("function output index out of range");
    }
    return cit->second[output_index];
  }

  Interpreter& host_;
  std::unordered_map<const Hop*, Value> cache_;
  std::unordered_map<const Hop*, std::vector<Value>> fcall_cache_;
};

Interpreter::Interpreter(const MlProgram* program, SimulatedHdfs* hdfs)
    : program_(program), hdfs_(hdfs) {}

Status Interpreter::Run() {
  symbols_.clear();
  printed_.clear();
  blocks_executed_ = 0;
  Impl impl(this);
  return impl.Run();
}

}  // namespace relm

#ifndef RELM_RUNTIME_INTERPRETER_H_
#define RELM_RUNTIME_INTERPRETER_H_

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "exec/engine.h"
#include "hdfs/file_system.h"
#include "hops/ml_program.h"
#include "runtime/value.h"

namespace relm {

/// Executes a compiled ML program in-process on real MatrixBlocks. This
/// is the correctness path: every operator runs its actual kernel,
/// control flow follows the data, UDFs are interpreted, and persistent
/// writes land in the (simulated) HDFS. Execution-type annotations are
/// ignored — at the small scales where real execution makes sense,
/// everything is an in-memory operation anyway; the cluster simulator
/// covers the distributed timing behaviour instead.
///
/// The interpreter itself is a thin driver: control flow (blocks, if /
/// while / for, UDF frames) lives here, while statement-block DAGs are
/// executed by the shared exec::Engine, which schedules independent
/// instructions over the worker pool and — when a memory budget is set
/// — keeps matrix-valued symbols pinned inside it, spilling to HDFS.
class Interpreter {
 public:
  /// `hdfs` must hold real payloads for every read() input and outlive
  /// the interpreter; writes are stored back into it.
  Interpreter(const MlProgram* program, SimulatedHdfs* hdfs);

  /// Runs the whole program.
  Status Run();

  /// Variable bindings after execution.
  const std::map<std::string, Value>& symbols() const { return symbols_; }

  /// Captured print() output, in order.
  const std::vector<std::string>& printed() const { return printed_; }

  /// Echo print() lines to stdout as they happen (off by default).
  void set_echo(bool echo) { echo_ = echo; }

  /// Safety cap for while-loop iterations (guards non-converging tests).
  void set_max_loop_iterations(int64_t n) { max_loop_iterations_ = n; }

  /// Engine configuration for the next Run(): instruction parallelism
  /// and the CP memory budget for pinned symbols.
  void set_exec_options(const exec::ExecOptions& options) {
    exec_options_ = options;
  }
  const exec::ExecOptions& exec_options() const { return exec_options_; }

  /// Engine counters from the last Run() (spills, parallel blocks, ...).
  const exec::ExecStats& exec_stats() const { return exec_stats_; }

  /// Total number of statement-block executions (for tests/metrics).
  int64_t blocks_executed() const { return blocks_executed_; }

 private:
  class Impl;
  friend class Impl;

  const MlProgram* program_;
  SimulatedHdfs* hdfs_;
  std::map<std::string, Value> symbols_;
  std::vector<std::string> printed_;
  bool echo_ = false;
  int64_t max_loop_iterations_ = 100000;
  int64_t blocks_executed_ = 0;
  exec::ExecOptions exec_options_;
  exec::ExecStats exec_stats_;
  Random rng_{1234};
};

}  // namespace relm

#endif  // RELM_RUNTIME_INTERPRETER_H_

#ifndef RELM_RUNTIME_VALUE_H_
#define RELM_RUNTIME_VALUE_H_

#include <memory>
#include <string>

#include "lang/ast.h"
#include "matrix/matrix_block.h"

namespace relm {

/// A runtime value: a scalar (double/boolean), a string, or a matrix.
struct Value {
  DataType dtype = DataType::kScalar;
  bool is_string = false;
  double scalar = 0.0;
  std::string str;
  std::shared_ptr<const MatrixBlock> matrix;

  static Value Number(double v) {
    Value out;
    out.scalar = v;
    return out;
  }
  static Value Str(std::string s) {
    Value out;
    out.is_string = true;
    out.str = std::move(s);
    return out;
  }
  static Value Matrix(MatrixBlock m) {
    Value out;
    out.dtype = DataType::kMatrix;
    out.matrix = std::make_shared<const MatrixBlock>(std::move(m));
    return out;
  }
  static Value MatrixPtr(std::shared_ptr<const MatrixBlock> m) {
    Value out;
    out.dtype = DataType::kMatrix;
    out.matrix = std::move(m);
    return out;
  }

  bool is_matrix() const { return dtype == DataType::kMatrix; }

  /// Renders the value like DML's print() would.
  std::string ToDisplayString() const;
};

}  // namespace relm

#endif  // RELM_RUNTIME_VALUE_H_

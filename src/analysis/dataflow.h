#ifndef RELM_ANALYSIS_DATAFLOW_H_
#define RELM_ANALYSIS_DATAFLOW_H_

// Dataflow analysis over the HOP IR: def-use chains, recomputed variable
// liveness across the statement-block tree (honoring loop back edges via
// a backward fixpoint), and static peak-memory bounds derived by walking
// each block's instructions in emission order and summing live matrix
// sizes from the propagated MatrixCharacteristics.
//
// Everything here is a pure function over a compiled MlProgram (plus an
// optional RuntimeProgram to honor CP/MR operator placement): no state is
// mutated, so summaries are safe to cache alongside the compiled program
// (PlanCache) and to consult at admission time (JobService).
//
// Two peak models are computed on purpose:
//   - resident_bytes models the execution engine as it is: every written
//     variable stays pinned in the MemoryManager until overwritten or
//     program end. This is the sound upper bound on the observed
//     high-water mark (the soundness differential asserts it).
//   - live_bytes models a liveness-disciplined engine that retains only
//     live-in variables at each block boundary: the bound an eviction
//     policy informed by this analysis could achieve, and the number the
//     memory-bound pass compares against the plan's CP budget to predict
//     spill.
// See DESIGN.md §15 for the lattice and the soundness argument.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "hops/ml_program.h"
#include "lops/runtime_program.h"

namespace relm {
namespace analysis {

/// One definition or use site of a variable: hop granularity with script
/// provenance (line/column are 0 when the hop carries none).
struct VarSite {
  int block_id = -1;
  int64_t hop_id = -1;
  int line = 0;
  int column = 0;
};

/// Def-use chain of one variable across the whole program, in walk order
/// (main pre-order, then functions).
struct VarDefUse {
  std::vector<VarSite> defs;  // transient writes
  std::vector<VarSite> uses;  // transient reads
};

/// Recomputed liveness of one statement block. Independent of the live
/// sets BuildProgramBlocks cached on the blocks, so the two derivations
/// cross-check each other (a divergence shows up as a dead materialized
/// write or an undefined transient read).
struct BlockLiveness {
  int block_id = -1;
  BlockKind kind = BlockKind::kGeneric;
  std::set<std::string> live_in;
  std::set<std::string> live_out;
};

/// An assignment whose value can never be observed: overwritten or
/// dropped on every path before any read.
struct DeadWrite {
  std::string var;
  int block_id = -1;
  int line = 0;
  int column = 0;
  /// True when the write is nonetheless materialized in the IR as a
  /// transient-write root: the runtime would compute and pin a value
  /// nobody consumes (wasted recompute, not just dead source text).
  bool materialized = false;
};

/// A read of a variable that some (or no) prior path defines.
struct UndefinedRead {
  std::string var;
  int block_id = -1;
  int64_t hop_id = -1;
  int line = 0;
  int column = 0;
  /// True: no path defines the variable before this read (error).
  /// False: at least one path misses a definition (warning).
  bool definite = false;
};

/// Static peak-memory bounds over the program, in bytes.
struct PeakMemory {
  /// Resident model (see file comment): sound vs. the engine's actual
  /// retention policy. kUnknownSizeSentinel-saturated.
  int64_t resident_bytes = 0;
  /// Liveness-disciplined model; always <= resident_bytes.
  int64_t live_bytes = 0;
  /// Largest single CP working set (op_mem): irreducible by eviction —
  /// if this exceeds the engine capacity the plan cannot run at all.
  int64_t max_op_bytes = 0;
  int64_t max_op_hop_id = -1;
  int max_op_block_id = -1;
  int max_op_line = 0;
  /// Block where the resident peak occurs.
  int peak_block_id = -1;
  /// False when unknown dimensions (or recursion) forced the
  /// kUnknownSizeSentinel worst case somewhere: the bounds then mean
  /// "unbounded" and enforcement (admission, spill prediction) must not
  /// act on them.
  bool bounded = true;
};

/// The complete result of one dataflow analysis run.
struct DataflowSummary {
  std::map<int, BlockLiveness> liveness;  // keyed by block id
  std::map<std::string, VarDefUse> def_use;
  std::vector<DeadWrite> dead_writes;
  std::vector<UndefinedRead> undefined_reads;
  PeakMemory peak;
};

/// Runs liveness, def-use, dead-write/undefined-read detection, and the
/// peak walk over `program`. With a non-null `runtime` the peak walk
/// honors the plan's CP/MR placement (MR working sets do not occupy
/// control-program memory); program-only analysis conservatively treats
/// every operator as CP, making the program-level bound cacheable
/// independently of any resource configuration.
DataflowSummary AnalyzeDataflow(const MlProgram& program,
                                const RuntimeProgram* runtime = nullptr);

}  // namespace analysis
}  // namespace relm

#endif  // RELM_ANALYSIS_DATAFLOW_H_

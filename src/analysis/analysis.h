#ifndef RELM_ANALYSIS_ANALYSIS_H_
#define RELM_ANALYSIS_ANALYSIS_H_

// Plan-integrity static analysis: a diagnostic-pass framework that audits
// every compilation artifact the resource optimizer relies on — HOP DAGs,
// propagated sizes, CP/MR operator selection, and piggybacked MR jobs.
//
// The optimizer's whole premise (Section 3) is that recompiling a program
// under a different memory budget yields a *valid* plan whose cost can be
// compared against other grid points. Nothing in the compile pipeline
// re-checks that premise; a rewrite or cache bug silently mis-costs a
// plan, and with the shared plan/what-if cache one corrupt entry poisons
// every tenant. The passes here make the invariants explicit and cheap to
// enforce at three choke points: after compilation (Session / PlanCache
// insert) and after every grid-point recompile (optimizer strict mode).
//
// Adding a pass: subclass Pass, emit Diagnostics into the report, and
// register it in Analyzer::Default() (analysis.cc). Passes must be
// read-only except for RecompileIdempotencePass, which re-runs the
// deterministic backend compile (exec-type annotations are overwritten
// by every compile, so this is observable only as CPU time).

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "hops/ml_program.h"
#include "lops/runtime_program.h"
#include "yarn/cluster_config.h"

namespace relm {
namespace analysis {

enum class Severity {
  kInfo = 0,
  kWarning,
  kError,
};

const char* SeverityName(Severity severity);

/// One finding of one pass.
struct Diagnostic {
  Severity severity = Severity::kError;
  /// Stable pass identifier ("dag-integrity", "size-consistency", ...).
  std::string pass_id;
  /// Where in the program ("block 3 hop 17 (MatMult)", "block 2 job 0").
  std::string location;
  std::string message;

  std::string ToString() const;
};

/// Everything a pass can look at. `program` is required; the plan-level
/// fields are optional — passes that need them no-op when absent (a
/// program-only analysis runs the structural passes, a plan analysis
/// runs all of them).
struct AnalysisInput {
  /// The compiled program (non-owning). Mutable only so the idempotence
  /// pass can re-run the deterministic backend compile.
  MlProgram* program = nullptr;
  /// Runtime plan to audit, with the ResourceConfig it was compiled
  /// under in runtime->resources (non-owning).
  const RuntimeProgram* runtime = nullptr;
  /// Cluster model the plan was compiled against (non-owning; required
  /// for the budget and idempotence passes).
  const ClusterConfig* cluster = nullptr;
  /// Execution-engine MemoryManager capacity the plan will run under,
  /// in bytes; < 0 means "not executing" and disables the check. The
  /// budget-conformance pass errors when this differs from the plan's
  /// CP budget: an engine pinning under a different cap than the plan
  /// was costed for silently invalidates every CP/MR decision.
  int64_t engine_memory_capacity = -1;
};

/// Collected findings of one analysis run.
class AnalysisReport {
 public:
  void Add(Severity severity, const std::string& pass_id,
           const std::string& location, const std::string& message);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  int NumErrors() const;
  int NumWarnings() const;
  bool has_errors() const { return NumErrors() > 0; }
  /// Diagnostics emitted by one pass (test introspection).
  std::vector<Diagnostic> ForPass(const std::string& pass_id) const;

  /// Human-readable multi-line listing ("[ERROR] dag-integrity ...").
  std::string ToString() const;
  /// Self-describing JSON {"errors":N,"warnings":N,"diagnostics":[...]}.
  std::string ToJson() const;

 private:
  std::vector<Diagnostic> diags_;
};

/// One analysis pass over a compiled program / runtime plan.
class Pass {
 public:
  virtual ~Pass() = default;
  /// Stable identifier recorded on every diagnostic the pass emits.
  virtual const char* id() const = 0;
  virtual void Run(const AnalysisInput& input, AnalysisReport* report) = 0;
};

/// An ordered collection of passes. Default() returns the full built-in
/// suite; tests compose narrower analyzers pass by pass.
class Analyzer {
 public:
  Analyzer() = default;

  /// All nine built-in passes, in dependency-friendly order (structural
  /// checks before the passes that assume a well-formed DAG).
  static Analyzer Default();

  Analyzer& AddPass(std::unique_ptr<Pass> pass);
  AnalysisReport Run(const AnalysisInput& input) const;

 private:
  std::vector<std::shared_ptr<Pass>> passes_;
};

// ---- built-in passes ----

/// (1) "dag-integrity": acyclicity, no null/dangling inputs, unique hop
/// ids, fused-transpose well-formedness, and topological-order closure
/// (every reachable node appears exactly once, inputs before consumers).
std::unique_ptr<Pass> MakeDagIntegrityPass();

/// (2) "size-consistency": output dims match operator semantics
/// (transpose swaps, matmult takes (A.rows, B.cols), aggregations
/// collapse the aggregated dimension), nnz never exceeds rows*cols, and
/// worst-case memory estimates never shrink below the exact statistics.
std::unique_ptr<Pass> MakeSizeConsistencyPass();

/// (3) "budget-conformance": every CP-selected MR-capable operator fits
/// the CP budget the plan was compiled under; every MR-forced operator
/// genuinely exceeds it (catches CP/MR drift under recompilation).
std::unique_ptr<Pass> MakeBudgetConformancePass();

/// (4) "piggyback-legality": operators packed into one MR job respect
/// map/shuffle/reduce phase ordering, intra-job dependencies, the
/// broadcast memory budget, and cross-instruction emission order.
std::unique_ptr<Pass> MakePiggybackLegalityPass();

/// (5) "pool-purity": the JobService pooling predicate
/// (MlProgram::IsPoolableTraceFree) is cross-checked against an
/// independent IR scan for size overrides, unknown dimensions, and
/// function calls — a poolable-but-impure program is an error.
std::unique_ptr<Pass> MakePoolPurityPass();

/// (6) "memory-bound": compares the dataflow peak bounds (analysis/
/// dataflow.h) against the plan's CP budget — errors when a CP-only
/// operation's working set cannot fit even with eviction (no MR
/// fallback exists), warns when the liveness-disciplined peak predicts
/// buffer-pool spill. No-op without a runtime plan.
std::unique_ptr<Pass> MakeMemoryBoundPass();

/// (7) "dead-write": assignments (and materialized transient-write
/// roots) whose value no path consumes before overwrite or program end
/// — wasted recompute in user scripts. Warnings only.
std::unique_ptr<Pass> MakeDeadWritePass();

/// (8) "use-liveness": transient reads of variables no prior path
/// defines (error) or that some path leaves undefined (warning) —
/// beyond what the validator catches syntactically.
std::unique_ptr<Pass> MakeUseLivenessPass();

/// (9) "recompile-idempotence": re-running the backend compile under the
/// plan's own ResourceConfig reproduces the identical plan signature.
std::unique_ptr<Pass> MakeRecompileIdempotencePass();

// ---- convenience entry points ----

/// Structural program analysis (passes 1, 2, 5). Used after compilation
/// in Session::CompileSource and on PlanCache insert.
AnalysisReport AnalyzeProgram(MlProgram* program);

/// Full analysis of a compiled runtime plan (all passes). Used by the
/// optimizer's strict mode and relm-lint. `engine_memory_capacity`
/// (bytes; < 0 skips) additionally asserts the execution engine's
/// MemoryManager capacity matches the plan's CP budget.
AnalysisReport AnalyzeRuntimePlan(MlProgram* program,
                                  const RuntimeProgram& runtime,
                                  const ClusterConfig& cluster,
                                  int64_t engine_memory_capacity = -1);

/// OK when the report has no error-severity diagnostics; otherwise an
/// Internal status carrying the report listing.
Status ReportToStatus(const AnalysisReport& report);

/// Order-insensitive-free (FNV-1a) digest of a runtime plan: resource
/// configuration, block structure, instruction kinds and order, per-hop
/// exec types / physical methods, and MR job shapes and data volumes.
/// Two plans with equal signatures are operationally identical.
uint64_t PlanSignature(const RuntimeProgram& runtime);

}  // namespace analysis
}  // namespace relm

#endif  // RELM_ANALYSIS_ANALYSIS_H_

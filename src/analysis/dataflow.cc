// Implementation of the dataflow framework (see dataflow.h). Three
// cooperating walks over the statement-block tree:
//
//   1. LivenessAnalyzer — backward AST-level liveness with a fixpoint
//      over loop back edges. Recomputed from scratch; deliberately does
//      NOT read the live sets BuildProgramBlocks cached on the blocks.
//   2. IrWalker — forward walk over the per-block HOP DAGs maintaining
//      (may-defined, must-defined) variable sets: collects def-use
//      chains, flags undefined / possibly-undefined transient reads,
//      and dead writes (AST-level backward scan per generic block plus
//      materialized transient-write roots the recomputed liveness says
//      nobody consumes).
//   3. PeakWalker — forward abstract interpretation of the resident
//      variable set: per-instruction peak candidates (resident sum plus
//      the instruction's working set), commit of transient writes at
//      block exit, branch max-merge, and a two-pass loop walk (sizes
//      that grow across the back edge were already degraded to unknown
//      by the DAG builder, so two passes reach the max fixpoint).
//
// All set lattices are finite (variable names of one script) and every
// transfer function is monotone, so the loop fixpoints terminate.

#include "analysis/dataflow.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "hops/size_propagation.h"
#include "lang/statement_block.h"
#include "lops/compiler_backend.h"
#include "matrix/matrix_characteristics.h"

namespace relm {
namespace analysis {
namespace {

using VarSet = std::set<std::string>;

VarSet SetUnion(const VarSet& a, const VarSet& b) {
  VarSet out = a;
  out.insert(b.begin(), b.end());
  return out;
}

VarSet SetMinus(const VarSet& a, const VarSet& b) {
  VarSet out;
  for (const std::string& v : a) {
    if (!b.count(v)) out.insert(v);
  }
  return out;
}

VarSet SetIntersect(const VarSet& a, const VarSet& b) {
  VarSet out;
  for (const std::string& v : a) {
    if (b.count(v)) out.insert(v);
  }
  return out;
}

/// Reachable nodes of a DAG (cycle-safe, null-safe).
std::vector<const Hop*> DagNodes(const HopDag& dag) {
  std::vector<const Hop*> out;
  std::unordered_set<const Hop*> seen;
  std::vector<const Hop*> stack;
  for (const HopPtr& root : dag.roots) {
    if (root != nullptr && seen.insert(root.get()).second) {
      stack.push_back(root.get());
    }
  }
  while (!stack.empty()) {
    const Hop* h = stack.back();
    stack.pop_back();
    out.push_back(h);
    for (const HopPtr& in : h->inputs()) {
      if (in != nullptr && seen.insert(in.get()).second) {
        stack.push_back(in.get());
      }
    }
  }
  return out;
}

const Hop* ResolveFused(const Hop* h) {
  while (h != nullptr && h->fused() && !h->inputs().empty()) {
    h = h->input(0);
  }
  return h;
}

// ---------------------------------------------------------------------
// 1. Liveness (backward, AST statement level, loop fixpoint)
// ---------------------------------------------------------------------

class LivenessAnalyzer {
 public:
  explicit LivenessAnalyzer(std::map<int, BlockLiveness>* out)
      : out_(out) {}

  /// Live-in of a block sequence given the live-out after it.
  VarSet Sequence(const std::vector<BlockPtr>& blocks, VarSet live_out) {
    for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
      live_out = Block(**it, live_out);
    }
    return live_out;
  }

 private:
  VarSet Block(const StatementBlock& blk, const VarSet& live_out) {
    VarSet live_in;
    switch (blk.kind()) {
      case BlockKind::kGeneric: {
        VarSet live = live_out;
        for (auto it = blk.statements.rbegin();
             it != blk.statements.rend(); ++it) {
          VarSet reads;
          VarSet writes;
          CollectReadsWrites(**it, &reads, &writes);
          live = SetUnion(SetMinus(live, writes), reads);
        }
        live_in = live;
        break;
      }
      case BlockKind::kIf: {
        const auto& s = static_cast<const IfStmt&>(*blk.control);
        VarSet pred;
        CollectExprReads(*s.predicate, &pred);
        VarSet then_in = Sequence(blk.body, live_out);
        VarSet else_in = Sequence(blk.else_body, live_out);
        live_in = SetUnion(pred, SetUnion(then_in, else_in));
        break;
      }
      case BlockKind::kWhile: {
        const auto& s = static_cast<const WhileStmt&>(*blk.control);
        VarSet pred;
        CollectExprReads(*s.predicate, &pred);
        live_in = LoopFixpoint(blk, pred, /*loop_var=*/"", live_out);
        break;
      }
      case BlockKind::kFor: {
        const auto& s = static_cast<const ForStmt&>(*blk.control);
        VarSet bounds;
        CollectExprReads(*s.from, &bounds);
        CollectExprReads(*s.to, &bounds);
        if (s.increment) CollectExprReads(*s.increment, &bounds);
        live_in = LoopFixpoint(blk, bounds, s.var, live_out);
        break;
      }
    }
    (*out_)[blk.id()] = BlockLiveness{blk.id(), blk.kind(), live_in,
                                      live_out};
    return live_in;
  }

  /// Backward loop liveness: iterate the body until the live set across
  /// the back edge stabilizes. `header_reads` are the predicate (while)
  /// or bound-expression (for) reads, evaluated before every iteration;
  /// `loop_var` is redefined by the loop itself on each iteration (for
  /// loops) and therefore never live across the back edge.
  VarSet LoopFixpoint(const StatementBlock& blk, const VarSet& header_reads,
                      const std::string& loop_var, const VarSet& live_out) {
    VarSet exit = SetUnion(live_out, header_reads);
    VarSet body_out = exit;
    VarSet body_in;
    while (true) {
      body_in = Sequence(blk.body, body_out);
      if (!loop_var.empty()) body_in.erase(loop_var);
      VarSet next = SetUnion(exit, body_in);
      if (next == body_out) break;
      body_out = std::move(next);
    }
    // The loop may run zero times: everything live after it stays live
    // before it, in addition to the first iteration's needs.
    return SetUnion(header_reads, SetUnion(live_out, body_in));
  }

  std::map<int, BlockLiveness>* out_;
};

// ---------------------------------------------------------------------
// 2. Def-use chains, undefined reads, dead writes
// ---------------------------------------------------------------------

class IrWalker {
 public:
  IrWalker(const MlProgram& program, DataflowSummary* sum)
      : p_(program), sum_(sum) {}

  void Run() {
    DefState st;
    WalkSeq(p_.blocks().main, &st, /*reachable=*/true);
    for (const auto& [name, blocks] : p_.blocks().functions) {
      const FunctionDef& fn = p_.ast().functions.at(name);
      DefState fst;
      for (const FunctionParam& param : fn.params) {
        fst.may.insert(param.name);
        fst.must.insert(param.name);
      }
      WalkSeq(blocks, &fst, /*reachable=*/true);
      // Return values must be defined when the function exits.
      for (const FunctionParam& ret : fn.returns) {
        if (!fst.may.count(ret.name)) {
          sum_->undefined_reads.push_back(
              UndefinedRead{ret.name, -1, -1, 0, 0, /*definite=*/true});
        } else if (!fst.must.count(ret.name)) {
          sum_->undefined_reads.push_back(
              UndefinedRead{ret.name, -1, -1, 0, 0, /*definite=*/false});
        }
      }
    }
    ScanDeadWrites(p_.blocks().main);
    for (const auto& [name, blocks] : p_.blocks().functions) {
      ScanDeadWrites(blocks);
    }
  }

 private:
  /// Forward definite-assignment state: `may` holds variables some path
  /// defined, `must` holds variables every path defined.
  struct DefState {
    VarSet may;
    VarSet must;
  };

  void WalkSeq(const std::vector<BlockPtr>& blocks, DefState* st,
               bool reachable) {
    for (const BlockPtr& blk : blocks) WalkBlock(*blk, st, reachable);
  }

  void WalkBlock(const StatementBlock& blk, DefState* st, bool reachable) {
    const BlockIR* ir =
        p_.has_ir(blk.id()) ? &p_.ir(blk.id()) : nullptr;
    switch (blk.kind()) {
      case BlockKind::kGeneric: {
        if (ir != nullptr) {
          // Transient reads in a generic block's DAG always read the
          // block-ENTRY value: in-block redefinitions are consumed via
          // direct hop edges, never through a read hop. So the whole
          // DAG is checked against the entry state, then the block's
          // transient-write roots extend it.
          CheckDagReads(blk.id(), ir->dag, *st, reachable);
          for (const HopPtr& root : ir->dag.roots) {
            if (root == nullptr ||
                root->kind() != HopKind::kTransientWrite) {
              continue;
            }
            sum_->def_use[root->name()].defs.push_back(
                VarSite{blk.id(), root->id(), root->line(),
                        root->column()});
            st->may.insert(root->name());
            st->must.insert(root->name());
          }
        }
        break;
      }
      case BlockKind::kIf: {
        if (ir != nullptr) {
          CheckDagReads(blk.id(), ir->dag, *st, reachable);
        }
        int taken = ir != nullptr ? ir->taken_branch : -1;
        DefState then_st = *st;
        DefState else_st = *st;
        WalkSeq(blk.body, &then_st, reachable && taken != 1);
        WalkSeq(blk.else_body, &else_st, reachable && taken != 0);
        if (taken == 0) {
          *st = std::move(then_st);
        } else if (taken == 1) {
          *st = std::move(else_st);
        } else {
          st->may = SetUnion(then_st.may, else_st.may);
          st->must = SetIntersect(then_st.must, else_st.must);
        }
        break;
      }
      case BlockKind::kWhile:
      case BlockKind::kFor: {
        if (ir != nullptr) {
          CheckDagReads(blk.id(), ir->dag, *st, reachable);
        }
        DefState body_st = *st;
        if (blk.kind() == BlockKind::kFor) {
          const auto& s = static_cast<const ForStmt&>(*blk.control);
          body_st.may.insert(s.var);
          body_st.must.insert(s.var);
        }
        // First-iteration semantics: body reads are checked against the
        // loop-entry state (later iterations only see more defs), and
        // the loop may run zero times, so `must` does not grow.
        WalkSeq(blk.body, &body_st, reachable);
        st->may = SetUnion(st->may, body_st.may);
        break;
      }
    }
  }

  void CheckDagReads(int block_id, const HopDag& dag, const DefState& st,
                     bool reachable) {
    for (const Hop* h : DagNodes(dag)) {
      if (h->kind() != HopKind::kTransientRead) continue;
      sum_->def_use[h->name()].uses.push_back(
          VarSite{block_id, h->id(), h->line(), h->column()});
      if (!reachable) continue;  // statically-dead branch: no findings
      if (!st.may.count(h->name())) {
        sum_->undefined_reads.push_back(
            UndefinedRead{h->name(), block_id, h->id(), h->line(),
                          h->column(), /*definite=*/true});
      } else if (!st.must.count(h->name())) {
        sum_->undefined_reads.push_back(
            UndefinedRead{h->name(), block_id, h->id(), h->line(),
                          h->column(), /*definite=*/false});
      }
    }
  }

  // ---- dead writes ----

  void ScanDeadWrites(const std::vector<BlockPtr>& blocks) {
    for (const BlockPtr& blk : blocks) {
      if (blk->kind() == BlockKind::kGeneric) {
        ScanGeneric(*blk);
        continue;
      }
      ScanDeadWrites(blk->body);
      ScanDeadWrites(blk->else_body);
    }
  }

  void ScanGeneric(const StatementBlock& blk) {
    auto lit = sum_->liveness.find(blk.id());
    VarSet live =
        lit != sum_->liveness.end() ? lit->second.live_out : VarSet{};
    // Materialized transient writes the recomputed liveness says nobody
    // consumes: the runtime computes and pins a value with no reader.
    if (p_.has_ir(blk.id())) {
      for (const HopPtr& root : p_.ir(blk.id()).dag.roots) {
        if (root != nullptr && root->kind() == HopKind::kTransientWrite &&
            !live.count(root->name())) {
          sum_->dead_writes.push_back(
              DeadWrite{root->name(), blk.id(), root->line(),
                        root->column(), /*materialized=*/true});
        }
      }
    }
    // Backward statement scan: a write whose target is dead afterwards
    // never reaches a reader. The DAG builder drops such assignments
    // entirely (unreachable from any root), so this is the only place
    // they are visible — exactly the lint users need.
    for (auto it = blk.statements.rbegin(); it != blk.statements.rend();
         ++it) {
      const Statement& s = **it;
      VarSet reads;
      VarSet writes;
      CollectReadsWrites(s, &reads, &writes);
      if (s.kind == Statement::Kind::kAssign) {
        const auto& a = static_cast<const AssignStmt&>(s);
        // A user-function call still executes for its other returns and
        // side effects; its dead targets are not wasted recompute.
        if (!ExprHasUserCall(*a.rhs)) {
          for (const std::string& target : a.targets) {
            if (!live.count(target)) {
              sum_->dead_writes.push_back(DeadWrite{
                  target, blk.id(), s.line, s.column,
                  /*materialized=*/false});
            }
          }
        }
      }
      live = SetUnion(SetMinus(live, writes), reads);
    }
  }

  bool ExprHasUserCall(const Expr& e) const {
    switch (e.kind) {
      case Expr::Kind::kLiteral:
      case Expr::Kind::kIdent:
      case Expr::Kind::kParam:
        return false;
      case Expr::Kind::kUnary:
        return ExprHasUserCall(
            *static_cast<const UnaryExpr&>(e).operand);
      case Expr::Kind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        return ExprHasUserCall(*b.lhs) || ExprHasUserCall(*b.rhs);
      }
      case Expr::Kind::kMatMult: {
        const auto& m = static_cast<const MatMultExpr&>(e);
        return ExprHasUserCall(*m.lhs) || ExprHasUserCall(*m.rhs);
      }
      case Expr::Kind::kIndex: {
        const auto& ix = static_cast<const IndexExpr&>(e);
        for (const Expr* sub :
             {ix.target.get(), ix.row_lower.get(), ix.row_upper.get(),
              ix.col_lower.get(), ix.col_upper.get()}) {
          if (sub != nullptr && ExprHasUserCall(*sub)) return true;
        }
        return false;
      }
      case Expr::Kind::kCall: {
        const auto& call = static_cast<const CallExpr&>(e);
        if (p_.ast().functions.count(call.function)) return true;
        for (const CallArg& arg : call.args) {
          if (arg.value && ExprHasUserCall(*arg.value)) return true;
        }
        return false;
      }
    }
    return false;
  }

  const MlProgram& p_;
  DataflowSummary* sum_;
};

// ---------------------------------------------------------------------
// 3. Peak-memory walk (forward abstract interpretation)
// ---------------------------------------------------------------------

class PeakWalker {
 public:
  PeakWalker(const MlProgram& program,
             const std::map<int, BlockLiveness>& liveness,
             bool honor_exec_types)
      : p_(program), live_(liveness), honor_exec_(honor_exec_types) {}

  PeakMemory Run() {
    Resident res;
    Resident liv;
    WalkSeq(p_.blocks().main, &res, &liv);
    peak_.bounded = peak_.resident_bytes < kUnknownSizeSentinel;
    return peak_;
  }

 private:
  /// Abstract resident set: variable -> pinned bytes (worst case).
  using Resident = std::map<std::string, int64_t>;

  static int64_t Sum(const Resident& r) {
    int64_t total = 0;
    for (const auto& [name, bytes] : r) {
      total = SaturatingAdd(total, bytes);
    }
    return total;
  }

  static void RestrictTo(Resident* r, const VarSet& keep) {
    for (auto it = r->begin(); it != r->end();) {
      if (keep.count(it->first)) {
        ++it;
      } else {
        it = r->erase(it);
      }
    }
  }

  /// Pointwise max over the union of keys (sound join of branch states:
  /// whichever branch ran, no variable is larger than this).
  static Resident MaxMerge(const Resident& a, const Resident& b) {
    Resident out = a;
    for (const auto& [name, bytes] : b) {
      auto [it, inserted] = out.emplace(name, bytes);
      if (!inserted) it->second = std::max(it->second, bytes);
    }
    return out;
  }

  void Candidate(int64_t bytes, int block_id) {
    if (bytes > peak_.resident_bytes) {
      peak_.resident_bytes = bytes;
      peak_.peak_block_id = block_id;
    }
  }

  void CandidateLive(int64_t bytes) {
    peak_.live_bytes = std::max(peak_.live_bytes, bytes);
  }

  void WalkSeq(const std::vector<BlockPtr>& blocks, Resident* res,
               Resident* liv) {
    for (const BlockPtr& blk : blocks) WalkBlock(*blk, res, liv);
  }

  void WalkBlock(const StatementBlock& blk, Resident* res, Resident* liv) {
    auto lit = live_.find(blk.id());
    // The liveness-disciplined model drops everything not live into the
    // block; the resident model keeps it (the engine does too).
    if (lit != live_.end()) RestrictTo(liv, lit->second.live_in);
    const BlockIR* ir =
        p_.has_ir(blk.id()) ? &p_.ir(blk.id()) : nullptr;
    switch (blk.kind()) {
      case BlockKind::kGeneric: {
        if (ir == nullptr) break;
        WalkDag(blk.id(), ir->dag, *res, *liv);
        for (const HopPtr& root : ir->dag.roots) {
          if (root == nullptr ||
              root->kind() != HopKind::kTransientWrite) {
            continue;
          }
          (*res)[root->name()] = root->output_mem();
          (*liv)[root->name()] = root->output_mem();
        }
        Candidate(Sum(*res), blk.id());
        CandidateLive(Sum(*liv));
        if (lit != live_.end()) RestrictTo(liv, lit->second.live_out);
        break;
      }
      case BlockKind::kIf: {
        if (ir != nullptr) WalkDag(blk.id(), ir->dag, *res, *liv);
        int taken = ir != nullptr ? ir->taken_branch : -1;
        if (taken == 0) {
          WalkSeq(blk.body, res, liv);
        } else if (taken == 1) {
          WalkSeq(blk.else_body, res, liv);
        } else {
          Resident res_then = *res;
          Resident liv_then = *liv;
          WalkSeq(blk.body, &res_then, &liv_then);
          Resident res_else = std::move(*res);
          Resident liv_else = std::move(*liv);
          WalkSeq(blk.else_body, &res_else, &liv_else);
          *res = MaxMerge(res_then, res_else);
          *liv = MaxMerge(liv_then, liv_else);
        }
        break;
      }
      case BlockKind::kWhile:
      case BlockKind::kFor: {
        if (ir != nullptr) WalkDag(blk.id(), ir->dag, *res, *liv);
        // Two body passes with a max-merge against the pre-loop state:
        // sizes that change across the back edge were degraded to
        // unknown by the DAG builder, so the second pass (running from
        // the merged state) reaches the abstract fixpoint.
        for (int pass = 0; pass < 2; ++pass) {
          Resident res0 = *res;
          Resident liv0 = *liv;
          WalkSeq(blk.body, res, liv);
          *res = MaxMerge(res0, *res);
          *liv = MaxMerge(liv0, *liv);
        }
        break;
      }
    }
  }

  void WalkDag(int block_id, const HopDag& dag, const Resident& res,
               const Resident& liv) {
    for (const Hop* h : DagNodes(dag)) {
      if (h->kind() == HopKind::kFunctionCall) {
        int64_t fn_extra = FunctionPeak(h->function_name);
        Candidate(SaturatingAdd(Sum(res), fn_extra), block_id);
        CandidateLive(SaturatingAdd(Sum(liv), fn_extra));
        continue;
      }
      if (!HopIsOperator(*h) || h->fused()) continue;
      if (honor_exec_ && h->exec_type() == ExecType::kMR) continue;
      if (h->op_mem() > peak_.max_op_bytes) {
        peak_.max_op_bytes = h->op_mem();
        peak_.max_op_hop_id = h->id();
        peak_.max_op_block_id = block_id;
        peak_.max_op_line = h->line();
      }
      Candidate(SaturatingAdd(Sum(res), Extra(*h, res)), block_id);
      CandidateLive(SaturatingAdd(Sum(liv), Extra(*h, liv)));
    }
  }

  /// Working-set bytes the instruction adds on top of the resident sum.
  /// op_mem counts inputs + intermediates + output; inputs that are
  /// resident variables are already in the sum, so their share is
  /// subtracted (floored at the output estimate, which is never
  /// resident before the instruction finishes).
  static int64_t Extra(const Hop& h, const Resident& resident) {
    int64_t extra = h.op_mem();
    if (extra >= kUnknownSizeSentinel) return extra;
    for (const HopPtr& raw : h.inputs()) {
      const Hop* in = ResolveFused(raw.get());
      if (in == nullptr || in->kind() != HopKind::kTransientRead) continue;
      auto it = resident.find(in->name());
      if (it == resident.end()) continue;
      if (in->output_mem() >= kUnknownSizeSentinel) continue;
      extra = std::max(h.output_mem(), extra - in->output_mem());
    }
    return extra;
  }

  /// Peak bytes one invocation of `name` holds on top of the caller's
  /// residency: the function frame pins its arguments and its own
  /// variables until the frame is torn down. Memoized; recursion (not
  /// supported by the runtime either) degrades to the sentinel.
  int64_t FunctionPeak(const std::string& name) {
    auto mit = fn_peak_.find(name);
    if (mit != fn_peak_.end()) return mit->second;
    if (fn_in_progress_.count(name)) return kUnknownSizeSentinel;
    auto fit = p_.blocks().functions.find(name);
    if (fit == p_.blocks().functions.end()) return 0;
    fn_in_progress_.insert(name);
    Resident res;
    Resident liv;
    // Frame entry: arguments are pinned under the parameter names.
    // Their sizes come from the first block's entry symbols (unknown
    // parameter characteristics saturate to the sentinel).
    if (!fit->second.empty() && p_.has_ir(fit->second.front()->id())) {
      const SymbolMap& entry =
          p_.ir(fit->second.front()->id()).entry_symbols;
      for (const auto& [var, info] : entry) {
        int64_t bytes = info.dtype == DataType::kMatrix
                            ? EstimateSizeInMemory(info.mc)
                            : static_cast<int64_t>(sizeof(double));
        res[var] = bytes;
        liv[var] = bytes;
      }
    }
    int64_t saved_resident = peak_.resident_bytes;
    int saved_block = peak_.peak_block_id;
    int64_t saved_live = peak_.live_bytes;
    peak_.resident_bytes = 0;
    peak_.live_bytes = 0;
    Candidate(Sum(res), -1);
    WalkSeq(fit->second, &res, &liv);
    int64_t fn_peak = peak_.resident_bytes;
    peak_.resident_bytes = saved_resident;
    peak_.peak_block_id = saved_block;
    peak_.live_bytes = saved_live;
    fn_in_progress_.erase(name);
    fn_peak_[name] = fn_peak;
    return fn_peak;
  }

  const MlProgram& p_;
  const std::map<int, BlockLiveness>& live_;
  bool honor_exec_;
  PeakMemory peak_;
  std::map<std::string, int64_t> fn_peak_;
  std::set<std::string> fn_in_progress_;
};

}  // namespace

DataflowSummary AnalyzeDataflow(const MlProgram& program,
                                const RuntimeProgram* runtime) {
  DataflowSummary sum;
  LivenessAnalyzer liveness(&sum.liveness);
  // Program end: nothing stays live (write() outputs are read by the
  // write statement itself, so they are live up to that point).
  liveness.Sequence(program.blocks().main, VarSet{});
  for (const auto& [name, blocks] : program.blocks().functions) {
    const FunctionDef& fn = program.ast().functions.at(name);
    VarSet returns;
    for (const FunctionParam& ret : fn.returns) returns.insert(ret.name);
    liveness.Sequence(blocks, returns);
  }
  IrWalker(program, &sum).Run();
  PeakWalker walker(program, sum.liveness,
                    /*honor_exec_types=*/runtime != nullptr);
  sum.peak = walker.Run();
  return sum;
}

}  // namespace analysis
}  // namespace relm

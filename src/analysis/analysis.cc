#include "analysis/analysis.h"

#include <sstream>
#include <utility>

#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace relm {
namespace analysis {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "INFO";
    case Severity::kWarning:
      return "WARNING";
    case Severity::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << "[" << SeverityName(severity) << "] " << pass_id;
  if (!location.empty()) os << " @ " << location;
  os << ": " << message;
  return os.str();
}

void AnalysisReport::Add(Severity severity, const std::string& pass_id,
                         const std::string& location,
                         const std::string& message) {
  diags_.push_back(Diagnostic{severity, pass_id, location, message});
}

int AnalysisReport::NumErrors() const {
  int n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

int AnalysisReport::NumWarnings() const {
  int n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == Severity::kWarning) ++n;
  }
  return n;
}

std::vector<Diagnostic> AnalysisReport::ForPass(
    const std::string& pass_id) const {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diags_) {
    if (d.pass_id == pass_id) out.push_back(d);
  }
  return out;
}

std::string AnalysisReport::ToString() const {
  std::ostringstream os;
  os << "analysis: " << NumErrors() << " error(s), " << NumWarnings()
     << " warning(s)";
  for (const Diagnostic& d : diags_) {
    os << "\n  " << d.ToString();
  }
  return os.str();
}

std::string AnalysisReport::ToJson() const {
  std::ostringstream os;
  os << "{\"errors\":" << NumErrors()
     << ",\"warnings\":" << NumWarnings() << ",\"diagnostics\":[";
  for (size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    if (i > 0) os << ",";
    os << "{\"severity\":" << obs::JsonQuote(SeverityName(d.severity))
       << ",\"pass\":" << obs::JsonQuote(d.pass_id)
       << ",\"location\":" << obs::JsonQuote(d.location)
       << ",\"message\":" << obs::JsonQuote(d.message) << "}";
  }
  os << "]}";
  return os.str();
}

Analyzer Analyzer::Default() {
  Analyzer a;
  a.AddPass(MakeDagIntegrityPass());
  a.AddPass(MakeSizeConsistencyPass());
  a.AddPass(MakeBudgetConformancePass());
  a.AddPass(MakePiggybackLegalityPass());
  a.AddPass(MakePoolPurityPass());
  a.AddPass(MakeMemoryBoundPass());
  a.AddPass(MakeDeadWritePass());
  a.AddPass(MakeUseLivenessPass());
  a.AddPass(MakeRecompileIdempotencePass());
  return a;
}

Analyzer& Analyzer::AddPass(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

AnalysisReport Analyzer::Run(const AnalysisInput& input) const {
  RELM_TRACE_SPAN("analysis.run");
  RELM_COUNTER_INC("analysis.runs");
  AnalysisReport report;
  if (input.program == nullptr) {
    report.Add(Severity::kError, "analyzer", "",
               "analysis input has no program");
    return report;
  }
  for (const auto& pass : passes_) {
    pass->Run(input, &report);
  }
  RELM_COUNTER_ADD("analysis.errors", report.NumErrors());
  RELM_COUNTER_ADD("analysis.warnings", report.NumWarnings());
  return report;
}

AnalysisReport AnalyzeProgram(MlProgram* program) {
  AnalysisInput input;
  input.program = program;
  return Analyzer()
      .AddPass(MakeDagIntegrityPass())
      .AddPass(MakeSizeConsistencyPass())
      .AddPass(MakePoolPurityPass())
      .Run(input);
}

AnalysisReport AnalyzeRuntimePlan(MlProgram* program,
                                  const RuntimeProgram& runtime,
                                  const ClusterConfig& cluster,
                                  int64_t engine_memory_capacity) {
  AnalysisInput input;
  input.program = program;
  input.runtime = &runtime;
  input.cluster = &cluster;
  input.engine_memory_capacity = engine_memory_capacity;
  return Analyzer::Default().Run(input);
}

Status ReportToStatus(const AnalysisReport& report) {
  if (!report.has_errors()) return Status::OK();
  return Status::Internal("plan integrity violated: " + report.ToString());
}

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void SigBytes(uint64_t* h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void SigInt(uint64_t* h, int64_t v) { SigBytes(h, &v, sizeof(v)); }

void SigDouble(uint64_t* h, double v) { SigBytes(h, &v, sizeof(v)); }

void SigString(uint64_t* h, const std::string& s) {
  SigBytes(h, s.data(), s.size());
  SigBytes(h, "\x1f", 1);
}

void SigHop(uint64_t* h, const Hop* hop) {
  if (hop == nullptr) {
    SigInt(h, -2);
    return;
  }
  SigInt(h, hop->id());
  SigInt(h, static_cast<int64_t>(hop->kind()));
  SigInt(h, static_cast<int64_t>(hop->exec_type()));
  SigInt(h, static_cast<int64_t>(hop->mmult_method()));
  SigInt(h, hop->broadcast_input);
}

void SigBlock(uint64_t* h, const RuntimeBlock& block) {
  SigInt(h, block.block != nullptr ? block.block->id() : -1);
  SigInt(h, static_cast<int64_t>(block.instrs.size()));
  for (const RuntimeInstr& instr : block.instrs) {
    SigInt(h, static_cast<int64_t>(instr.kind));
    if (instr.kind == RuntimeInstr::Kind::kCp) {
      SigHop(h, instr.hop);
      continue;
    }
    const MRJobInstr& job = instr.job;
    SigInt(h, static_cast<int64_t>(job.map_ops.size()));
    for (const Hop* op : job.map_ops) SigHop(h, op);
    SigInt(h, static_cast<int64_t>(job.reduce_ops.size()));
    for (const Hop* op : job.reduce_ops) SigHop(h, op);
    SigInt(h, job.has_shuffle ? 1 : 0);
    SigInt(h, job.broadcast_bytes);
    SigInt(h, job.map_input_bytes);
    SigInt(h, job.shuffle_bytes);
    SigInt(h, job.output_bytes);
    SigDouble(h, job.map_flops);
    SigDouble(h, job.reduce_flops);
    for (const auto& [name, bytes] : job.exported_inputs) {
      SigString(h, name);
      SigInt(h, bytes);
    }
  }
  for (const RuntimeBlock& child : block.body) SigBlock(h, child);
  SigInt(h, -3);  // body/else separator
  for (const RuntimeBlock& child : block.else_body) SigBlock(h, child);
}

}  // namespace

uint64_t PlanSignature(const RuntimeProgram& runtime) {
  uint64_t h = kFnvOffset;
  SigInt(&h, runtime.resources.cp_heap);
  SigInt(&h, runtime.resources.default_mr_heap);
  SigInt(&h, runtime.resources.cp_cores);
  for (const auto& [id, heap] : runtime.resources.per_block_mr_heap) {
    SigInt(&h, id);
    SigInt(&h, heap);
  }
  for (const RuntimeBlock& block : runtime.main) SigBlock(&h, block);
  for (const auto& [name, blocks] : runtime.functions) {
    SigString(&h, name);
    for (const RuntimeBlock& block : blocks) SigBlock(&h, block);
  }
  return h;
}

}  // namespace analysis
}  // namespace relm

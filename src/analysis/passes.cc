// The built-in plan-integrity passes. Each pass re-derives an invariant
// from first principles (operator semantics, the published selection
// rule, the piggybacking phase model) instead of calling back into the
// code it audits, so a bug in the compile pipeline cannot hide itself.

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/analysis.h"
#include "lops/compiler_backend.h"
#include "matrix/matrix_characteristics.h"

namespace relm {
namespace analysis {

namespace {

std::string HopLoc(int block_id, const Hop& hop) {
  std::string loc = "block " + std::to_string(block_id) + " hop " +
                    std::to_string(hop.id()) + " (" +
                    HopKindName(hop.kind()) + ")";
  if (hop.line() > 0) {
    loc += " at line " + std::to_string(hop.line()) + ":" +
           std::to_string(hop.column());
  }
  return loc;
}

std::string BlockLoc(int block_id) {
  return "block " + std::to_string(block_id);
}

/// Resolves data through fused transposes exactly like the backend: the
/// consumer streams the transpose's input directly.
const Hop* ResolveFused(const Hop* h) {
  while (h != nullptr && h->fused() && !h->inputs().empty()) {
    h = h->input(0);
  }
  return h;
}

/// Every (block id, IR) pair of the program, main and functions.
std::vector<std::pair<int, const BlockIR*>> AllIrs(const MlProgram& p) {
  std::vector<std::pair<int, const BlockIR*>> out;
  for (const StatementBlock* b : p.AllBlocksPreOrder()) {
    if (p.has_ir(b->id())) out.emplace_back(b->id(), &p.ir(b->id()));
  }
  return out;
}

/// Reachable nodes of a DAG (cycle-safe, null-safe).
std::vector<const Hop*> ReachableNodes(const HopDag& dag) {
  std::vector<const Hop*> out;
  std::unordered_set<const Hop*> seen;
  std::vector<const Hop*> stack;
  for (const HopPtr& root : dag.roots) {
    if (root != nullptr && seen.insert(root.get()).second) {
      stack.push_back(root.get());
    }
  }
  while (!stack.empty()) {
    const Hop* h = stack.back();
    stack.pop_back();
    out.push_back(h);
    for (const HopPtr& in : h->inputs()) {
      if (in != nullptr && seen.insert(in.get()).second) {
        stack.push_back(in.get());
      }
    }
  }
  return out;
}

// ---- (1) DAG structural integrity ----

class DagIntegrityPass : public Pass {
 public:
  const char* id() const override { return "dag-integrity"; }

  void Run(const AnalysisInput& input, AnalysisReport* report) override {
    for (const auto& [block_id, ir] : AllIrs(*input.program)) {
      CheckDag(block_id, ir->dag, report);
    }
  }

 private:
  void CheckDag(int block_id, const HopDag& dag, AnalysisReport* report) {
    // Null roots / null input edges (dangling references after rewrites).
    for (const HopPtr& root : dag.roots) {
      if (root == nullptr) {
        report->Add(Severity::kError, id(), BlockLoc(block_id),
                    "DAG has a null root");
      }
    }
    std::vector<const Hop*> nodes = ReachableNodes(dag);
    bool nulls = false;
    for (const Hop* h : nodes) {
      for (const HopPtr& in : h->inputs()) {
        if (in == nullptr) {
          report->Add(Severity::kError, id(), HopLoc(block_id, *h),
                      "null input edge (dangling hop reference)");
          nulls = true;
        }
      }
      if (h->id() < 0) {
        report->Add(Severity::kError, id(), HopLoc(block_id, *h),
                    "hop has no assigned id");
      }
      if (h->fused()) {
        if (h->kind() != HopKind::kReorg ||
            h->reorg_op != ReorgOp::kTranspose) {
          report->Add(Severity::kError, id(), HopLoc(block_id, *h),
                      "fused flag on a non-transpose operator");
        } else if (h->inputs().empty()) {
          report->Add(Severity::kError, id(), HopLoc(block_id, *h),
                      "fused transpose has no input to stream");
        }
      }
    }
    // Duplicate ids break plan signatures and decision logs.
    std::unordered_map<int64_t, const Hop*> by_id;
    for (const Hop* h : nodes) {
      if (h->id() < 0) continue;
      auto [it, inserted] = by_id.emplace(h->id(), h);
      if (!inserted && it->second != h) {
        report->Add(Severity::kError, id(), HopLoc(block_id, *h),
                    "duplicate hop id " + std::to_string(h->id()));
      }
    }
    if (HasCycle(block_id, dag, report)) return;
    if (nulls) return;
    // Topological-order closure: TopoOrder must enumerate every
    // reachable node exactly once, inputs strictly before consumers.
    std::vector<Hop*> topo = dag.TopoOrder();
    std::unordered_map<const Hop*, size_t> pos;
    for (size_t i = 0; i < topo.size(); ++i) {
      if (!pos.emplace(topo[i], i).second) {
        report->Add(Severity::kError, id(), HopLoc(block_id, *topo[i]),
                    "node appears twice in topological order");
      }
    }
    if (topo.size() != nodes.size()) {
      report->Add(Severity::kError, id(), BlockLoc(block_id),
                  "topological order covers " +
                      std::to_string(topo.size()) + " of " +
                      std::to_string(nodes.size()) + " reachable nodes");
    }
    for (const Hop* h : topo) {
      auto hit = pos.find(h);
      for (const HopPtr& in : h->inputs()) {
        auto iit = pos.find(in.get());
        if (iit == pos.end()) {
          report->Add(Severity::kError, id(), HopLoc(block_id, *h),
                      "input missing from topological order");
        } else if (iit->second >= hit->second) {
          report->Add(Severity::kError, id(), HopLoc(block_id, *h),
                      "input ordered at or after its consumer");
        }
      }
    }
  }

  /// Iterative three-color DFS; reports the first back edge per DAG.
  bool HasCycle(int block_id, const HopDag& dag, AnalysisReport* report) {
    enum : char { kWhite = 0, kGray, kBlack };
    std::unordered_map<const Hop*, char> color;
    struct Frame {
      const Hop* node;
      size_t next_input;
    };
    for (const HopPtr& root : dag.roots) {
      if (root == nullptr || color[root.get()] != kWhite) continue;
      std::vector<Frame> stack{{root.get(), 0}};
      color[root.get()] = kGray;
      while (!stack.empty()) {
        Frame& f = stack.back();
        if (f.next_input >= f.node->inputs().size()) {
          color[f.node] = kBlack;
          stack.pop_back();
          continue;
        }
        const Hop* in = f.node->input(f.next_input++);
        if (in == nullptr) continue;
        char c = color[in];
        if (c == kGray) {
          report->Add(Severity::kError, id(), HopLoc(block_id, *f.node),
                      "cycle: input hop " + std::to_string(in->id()) +
                          " is an ancestor of its consumer");
          return true;
        }
        if (c == kWhite) {
          color[in] = kGray;
          stack.push_back({in, 0});
        }
      }
    }
    return false;
  }
};

// ---- (2) size-propagation consistency ----

class SizeConsistencyPass : public Pass {
 public:
  const char* id() const override { return "size-consistency"; }

  void Run(const AnalysisInput& input, AnalysisReport* report) override {
    for (const auto& [block_id, ir] : AllIrs(*input.program)) {
      for (const Hop* h : ReachableNodes(ir->dag)) {
        CheckHop(block_id, *h, report);
      }
    }
  }

 private:
  void CheckHop(int block_id, const Hop& h, AnalysisReport* report) {
    for (const HopPtr& in : h.inputs()) {
      if (in == nullptr) return;  // dag-integrity's finding, not ours
    }
    if (!h.is_matrix()) return;
    const MatrixCharacteristics& mc = h.mc();
    if ((mc.rows() < 0 && mc.rows() != kUnknown) ||
        (mc.cols() < 0 && mc.cols() != kUnknown)) {
      report->Add(Severity::kError, id(), HopLoc(block_id, h),
                  "negative dimension that is not the unknown sentinel");
    }
    if (mc.fully_known() && mc.nnz() > mc.cells()) {
      report->Add(Severity::kError, id(), HopLoc(block_id, h),
                  "nnz " + std::to_string(mc.nnz()) +
                      " exceeds rows*cols " + std::to_string(mc.cells()));
    }
    CheckOpSemantics(block_id, h, report);
    CheckMemory(block_id, h, report);
  }

  void CheckOpSemantics(int block_id, const Hop& h,
                        AnalysisReport* report) {
    const MatrixCharacteristics& mc = h.mc();
    switch (h.kind()) {
      case HopKind::kReorg: {
        if (h.reorg_op != ReorgOp::kTranspose || h.inputs().empty()) break;
        const MatrixCharacteristics& in = h.input(0)->mc();
        if (in.dims_known() && mc.dims_known() &&
            (mc.rows() != in.cols() || mc.cols() != in.rows())) {
          report->Add(Severity::kError, id(), HopLoc(block_id, h),
                      "transpose output is " + Dims(mc) +
                          " but input is " + Dims(in));
        }
        if (in.nnz_known() && mc.nnz_known() && mc.nnz() != in.nnz()) {
          report->Add(Severity::kError, id(), HopLoc(block_id, h),
                      "transpose changes nnz");
        }
        break;
      }
      case HopKind::kMatMult: {
        if (h.inputs().size() < 2) break;
        // Fused transposes carry the transposed mc themselves, so the
        // direct inputs' shapes are authoritative either way.
        const MatrixCharacteristics& a = h.input(0)->mc();
        const MatrixCharacteristics& b = h.input(1)->mc();
        if (a.dims_known() && mc.rows() >= 0 && mc.rows() != a.rows()) {
          report->Add(Severity::kError, id(), HopLoc(block_id, h),
                      "matmult rows " + std::to_string(mc.rows()) +
                          " != left input rows " +
                          std::to_string(a.rows()));
        }
        if (b.dims_known() && mc.cols() >= 0 && mc.cols() != b.cols()) {
          report->Add(Severity::kError, id(), HopLoc(block_id, h),
                      "matmult cols " + std::to_string(mc.cols()) +
                          " != right input cols " +
                          std::to_string(b.cols()));
        }
        break;
      }
      case HopKind::kAggUnary: {
        if (h.inputs().empty()) break;
        const MatrixCharacteristics& in = h.input(0)->mc();
        if (h.agg_dir == AggDir::kRow && in.dims_known() &&
            mc.dims_known() &&
            (mc.rows() != in.rows() || mc.cols() != 1)) {
          report->Add(Severity::kError, id(), HopLoc(block_id, h),
                      "row aggregation must produce (" +
                          std::to_string(in.rows()) + " x 1), got " +
                          Dims(mc));
        }
        if (h.agg_dir == AggDir::kCol && in.dims_known() &&
            mc.dims_known() &&
            (mc.rows() != 1 || mc.cols() != in.cols())) {
          report->Add(Severity::kError, id(), HopLoc(block_id, h),
                      "column aggregation must produce (1 x " +
                          std::to_string(in.cols()) + "), got " +
                          Dims(mc));
        }
        break;
      }
      case HopKind::kTransientWrite:
      case HopKind::kPersistentWrite: {
        if (h.inputs().empty() || !h.input(0)->is_matrix()) break;
        const MatrixCharacteristics& in = h.input(0)->mc();
        if (in.dims_known() && mc.dims_known() &&
            (mc.rows() != in.rows() || mc.cols() != in.cols())) {
          report->Add(Severity::kError, id(), HopLoc(block_id, h),
                      "write output " + Dims(mc) +
                          " differs from written value " + Dims(in));
        }
        break;
      }
      default:
        break;
    }
  }

  void CheckMemory(int block_id, const Hop& h, AnalysisReport* report) {
    if (h.fused()) return;  // never materialized
    // Worst-case estimates may only over-approximate: once the exact
    // statistics are known, the recorded estimate must cover them.
    if (h.mc().fully_known() && h.mc().cells() >= 0) {
      int64_t exact = EstimateSizeInMemory(h.mc());
      if (exact < kUnknownSizeSentinel && h.output_mem() < exact) {
        report->Add(Severity::kError, id(), HopLoc(block_id, h),
                    "output estimate " + std::to_string(h.output_mem()) +
                        " below exact in-memory size " +
                        std::to_string(exact));
      }
    }
    if (h.output_mem() < kUnknownSizeSentinel &&
        h.op_mem() < h.output_mem()) {
      report->Add(Severity::kError, id(), HopLoc(block_id, h),
                  "operation estimate " + std::to_string(h.op_mem()) +
                      " below output estimate " +
                      std::to_string(h.output_mem()));
    }
  }

  static std::string Dims(const MatrixCharacteristics& mc) {
    return "(" + std::to_string(mc.rows()) + " x " +
           std::to_string(mc.cols()) + ")";
  }
};

// ---- (3) memory-budget conformance ----

class BudgetConformancePass : public Pass {
 public:
  const char* id() const override { return "budget-conformance"; }

  void Run(const AnalysisInput& input, AnalysisReport* report) override {
    if (input.runtime == nullptr) return;
    int64_t cp_budget = input.runtime->resources.CpBudget();
    if (input.engine_memory_capacity >= 0 &&
        input.engine_memory_capacity != cp_budget) {
      report->Add(Severity::kError, id(), "engine",
                  "execution engine memory capacity " +
                      std::to_string(input.engine_memory_capacity) +
                      " bytes does not match the plan's CP budget " +
                      std::to_string(cp_budget));
    }
    for (const RuntimeBlock& block : input.runtime->main) {
      CheckBlock(block, cp_budget, report);
    }
    for (const auto& [name, blocks] : input.runtime->functions) {
      for (const RuntimeBlock& block : blocks) {
        CheckBlock(block, cp_budget, report);
      }
    }
  }

 private:
  void CheckBlock(const RuntimeBlock& block, int64_t cp_budget,
                  AnalysisReport* report) {
    int block_id = block.block != nullptr ? block.block->id() : -1;
    for (const RuntimeInstr& instr : block.instrs) {
      if (instr.kind == RuntimeInstr::Kind::kCp) {
        CheckCp(block_id, instr.hop, cp_budget, report);
        continue;
      }
      for (const Hop* op : instr.job.map_ops) {
        CheckMr(block_id, op, cp_budget, report);
      }
      for (const Hop* op : instr.job.reduce_ops) {
        CheckMr(block_id, op, cp_budget, report);
      }
    }
    for (const RuntimeBlock& child : block.body) {
      CheckBlock(child, cp_budget, report);
    }
    for (const RuntimeBlock& child : block.else_body) {
      CheckBlock(child, cp_budget, report);
    }
  }

  void CheckCp(int block_id, const Hop* hop, int64_t cp_budget,
               AnalysisReport* report) {
    if (hop == nullptr) {
      report->Add(Severity::kError, id(), BlockLoc(block_id),
                  "CP instruction without a hop");
      return;
    }
    if (!HopIsOperator(*hop)) return;
    if (!HopIsMrCapable(*hop)) return;  // CP is its only home
    if (hop->exec_type() == ExecType::kMR) {
      report->Add(Severity::kError, id(), HopLoc(block_id, *hop),
                  "MR-annotated operator emitted as a CP instruction");
      return;
    }
    // The selection rule: CP if and only if the operation fits.
    if (hop->op_mem() > cp_budget) {
      report->Add(Severity::kError, id(), HopLoc(block_id, *hop),
                  "CP-selected operation needs " +
                      std::to_string(hop->op_mem()) +
                      " bytes but the CP budget is " +
                      std::to_string(cp_budget));
    }
  }

  void CheckMr(int block_id, const Hop* op, int64_t cp_budget,
               AnalysisReport* report) {
    if (op == nullptr) {
      report->Add(Severity::kError, id(), BlockLoc(block_id),
                  "MR job references a null hop");
      return;
    }
    if (!HopIsMrCapable(*op)) {
      report->Add(Severity::kError, id(), HopLoc(block_id, *op),
                  "operator kind is not MR-capable but was piggybacked");
      return;
    }
    if (op->exec_type() != ExecType::kMR) {
      report->Add(Severity::kError, id(), HopLoc(block_id, *op),
                  "CP-annotated operator packed into an MR job");
    }
    if (op->op_mem() <= cp_budget) {
      report->Add(Severity::kError, id(), HopLoc(block_id, *op),
                  "MR-forced operation fits the CP budget (" +
                      std::to_string(op->op_mem()) + " <= " +
                      std::to_string(cp_budget) + "): CP/MR drift");
    }
  }
};

// ---- (4) piggybacking legality ----

class PiggybackLegalityPass : public Pass {
 public:
  const char* id() const override { return "piggyback-legality"; }

  void Run(const AnalysisInput& input, AnalysisReport* report) override {
    if (input.runtime == nullptr) return;
    for (const RuntimeBlock& block : input.runtime->main) {
      CheckBlock(block, input.runtime->resources, report);
    }
    for (const auto& [name, blocks] : input.runtime->functions) {
      for (const RuntimeBlock& block : blocks) {
        CheckBlock(block, input.runtime->resources, report);
      }
    }
  }

 private:
  void CheckBlock(const RuntimeBlock& block, const ResourceConfig& rc,
                  AnalysisReport* report) {
    int block_id = block.block != nullptr ? block.block->id() : -1;
    int64_t mr_budget = rc.MrBudgetForBlock(block_id);
    // Each operator must be emitted exactly once within its block plan.
    std::unordered_set<const Hop*> emitted;
    int job_index = -1;
    for (const RuntimeInstr& instr : block.instrs) {
      if (instr.kind == RuntimeInstr::Kind::kCp) {
        CheckDepsReady(block_id, instr.hop, emitted, report);
        if (instr.hop != nullptr && !emitted.insert(instr.hop).second) {
          report->Add(Severity::kError, id(),
                      HopLoc(block_id, *instr.hop),
                      "operator emitted twice in one block plan");
        }
        continue;
      }
      ++job_index;
      CheckJob(block_id, job_index, instr.job, mr_budget, emitted,
               report);
    }
    for (const RuntimeBlock& child : block.body) {
      CheckBlock(child, rc, report);
    }
    for (const RuntimeBlock& child : block.else_body) {
      CheckBlock(child, rc, report);
    }
  }

  void CheckJob(int block_id, int job_index, const MRJobInstr& job,
                int64_t mr_budget,
                std::unordered_set<const Hop*>& emitted,
                AnalysisReport* report) {
    std::string loc =
        BlockLoc(block_id) + " job " + std::to_string(job_index);
    if (job.map_ops.empty() && job.reduce_ops.empty()) {
      report->Add(Severity::kError, id(), loc, "MR job with no operators");
      return;
    }
    if (!job.reduce_ops.empty() && !job.has_shuffle) {
      report->Add(Severity::kError, id(), loc,
                  "reduce-side operators without a shuffle phase");
    }
    // Phase positions within the job: map phase strictly precedes the
    // reduce phase; within a phase, list order is execution order.
    std::unordered_map<const Hop*, int> phase_pos;
    int pos = 0;
    for (const Hop* op : job.map_ops) phase_pos[op] = pos++;
    int first_reduce = pos;
    for (const Hop* op : job.reduce_ops) {
      auto [it, inserted] = phase_pos.emplace(op, pos++);
      if (!inserted) {
        report->Add(Severity::kError, id(),
                    HopLoc(block_id, *op),
                    "operator appears in both map and reduce phases");
      }
    }
    auto check_op = [&](const Hop* op, bool reduce_side) {
      if (op == nullptr) return;
      for (const HopPtr& raw : op->inputs()) {
        const Hop* in = ResolveFused(raw.get());
        if (in == nullptr || !HopIsOperator(*in)) continue;
        auto it = phase_pos.find(in);
        if (it != phase_pos.end()) {
          // Intra-job dependency: producer must run in an earlier slot,
          // and a map-side consumer can never see reduce-side output.
          if (!reduce_side && it->second >= first_reduce) {
            report->Add(Severity::kError, id(), HopLoc(block_id, *op),
                        "map-side operator consumes reduce-side output");
          } else if (it->second >= phase_pos[op]) {
            report->Add(Severity::kError, id(), HopLoc(block_id, *op),
                        "intra-job input ordered at or after consumer");
          }
          continue;
        }
        if (!emitted.count(in)) {
          report->Add(Severity::kError, id(), HopLoc(block_id, *op),
                      "input hop " + std::to_string(in->id()) +
                          " not produced before this MR job");
        }
      }
    };
    for (const Hop* op : job.map_ops) check_op(op, /*reduce_side=*/false);
    for (const Hop* op : job.reduce_ops) check_op(op, /*reduce_side=*/true);
    // Emission uniqueness across the block plan (the both-phases case
    // was already reported above; phase_pos holds each op once).
    for (const auto& [op, unused] : phase_pos) {
      if (!emitted.insert(op).second) {
        report->Add(Severity::kError, id(), HopLoc(block_id, *op),
                    "operator emitted twice in one block plan");
      }
    }
    // The packer admits one oversized broadcaster per job (a new job is
    // created unchecked) but never grows past the budget by joining;
    // a multi-op job over budget is suspicious, not provably illegal.
    if (job.broadcast_bytes > mr_budget &&
        job.map_ops.size() + job.reduce_ops.size() > 1) {
      report->Add(Severity::kWarning, id(), loc,
                  "job broadcasts " + std::to_string(job.broadcast_bytes) +
                      " bytes against an MR budget of " +
                      std::to_string(mr_budget));
    }
  }

  void CheckDepsReady(int block_id, const Hop* hop,
                      const std::unordered_set<const Hop*>& emitted,
                      AnalysisReport* report) {
    if (hop == nullptr) return;
    for (const HopPtr& raw : hop->inputs()) {
      const Hop* in = ResolveFused(raw.get());
      if (in == nullptr || !HopIsOperator(*in)) continue;
      if (!emitted.count(in)) {
        report->Add(Severity::kError, id(), HopLoc(block_id, *hop),
                    "input hop " + std::to_string(in->id()) +
                        " not produced before this instruction");
      }
    }
  }
};

// ---- (5) plan-cache / pool purity ----

class PoolPurityPass : public Pass {
 public:
  const char* id() const override { return "pool-purity"; }

  void Run(const AnalysisInput& input, AnalysisReport* report) override {
    const MlProgram& p = *input.program;
    // Independent evidence, gathered from the IR itself rather than the
    // cached per-block flags the pooling predicate reads.
    std::vector<std::string> impurities;
    if (!p.size_overrides().empty()) {
      impurities.push_back("carries " +
                           std::to_string(p.size_overrides().size()) +
                           " size override(s)");
    }
    if (!p.ast().functions.empty()) {
      impurities.push_back("defines " +
                           std::to_string(p.ast().functions.size()) +
                           " function(s)");
    }
    for (const auto& [block_id, ir] : AllIrs(p)) {
      for (const Hop* h : ReachableNodes(ir->dag)) {
        if (h->kind() == HopKind::kFunctionCall) {
          impurities.push_back("calls function '" + h->function_name +
                               "' in " + BlockLoc(block_id));
        }
        if (h->is_matrix() && !h->mc().dims_known()) {
          impurities.push_back("unknown dimensions at " +
                               HopLoc(block_id, *h));
        }
      }
    }
    bool poolable = p.IsPoolableTraceFree();
    if (poolable && !impurities.empty()) {
      for (const std::string& why : impurities) {
        report->Add(Severity::kError, id(), "program",
                    "pooling predicate claims trace-free, but program " +
                        why);
      }
    } else if (!poolable && impurities.empty()) {
      report->Add(Severity::kWarning, id(), "program",
                  "pooling predicate rejects a program with no "
                  "observable impurity (stale unknown-dims flags?)");
    }
  }
};

// ---- (6) recompilation idempotence ----

class RecompileIdempotencePass : public Pass {
 public:
  const char* id() const override { return "recompile-idempotence"; }

  void Run(const AnalysisInput& input, AnalysisReport* report) override {
    if (input.runtime == nullptr || input.cluster == nullptr) return;
    uint64_t expected = PlanSignature(*input.runtime);
    CompileCounters counters;
    Result<RuntimeProgram> regen =
        GenerateRuntimeProgram(input.program, *input.cluster,
                               input.runtime->resources, &counters);
    if (!regen.ok()) {
      report->Add(Severity::kError, id(), "program",
                  "recompilation under the plan's own resources failed: " +
                      regen.status().ToString());
      return;
    }
    uint64_t actual = PlanSignature(*regen);
    if (actual != expected) {
      report->Add(Severity::kError, id(), "program",
                  "recompiling under the same budget changed the plan "
                  "signature (" +
                      std::to_string(expected) + " -> " +
                      std::to_string(actual) + ")");
    }
  }
};

}  // namespace

std::unique_ptr<Pass> MakeDagIntegrityPass() {
  return std::make_unique<DagIntegrityPass>();
}
std::unique_ptr<Pass> MakeSizeConsistencyPass() {
  return std::make_unique<SizeConsistencyPass>();
}
std::unique_ptr<Pass> MakeBudgetConformancePass() {
  return std::make_unique<BudgetConformancePass>();
}
std::unique_ptr<Pass> MakePiggybackLegalityPass() {
  return std::make_unique<PiggybackLegalityPass>();
}
std::unique_ptr<Pass> MakePoolPurityPass() {
  return std::make_unique<PoolPurityPass>();
}
std::unique_ptr<Pass> MakeRecompileIdempotencePass() {
  return std::make_unique<RecompileIdempotencePass>();
}

}  // namespace analysis
}  // namespace relm
